// Benchmarks regenerating the paper's tables and figures via testing.B,
// plus native micro-benchmarks of the substrates.
//
// The paper-experiment benchmarks run the same harness as cmd/benchmocha
// but at 2% time scale with one trial per point, so `go test -bench=.`
// finishes in minutes; run `go run ./cmd/benchmocha -all` for full-scale,
// paper-comparable numbers (EXPERIMENTS.md records those).
package mocha_test

import (
	"context"
	"fmt"
	"testing"

	"mocha"
	"mocha/internal/bench"
	"mocha/internal/marshal"
	"mocha/internal/netsim"
	"mocha/internal/wire"
)

// benchCfg is the scaled-down configuration for testing.B runs.
func benchCfg() bench.Config {
	return bench.Config{Scale: 0.02, Trials: 1, MaxSites: 3}
}

// runExperiment benchmarks one harness experiment end to end.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(benchCfg()); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

// BenchmarkTable1LockAcquire regenerates Table 1 (lock acquisition, LAN
// and WAN).
func BenchmarkTable1LockAcquire(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig8Marshal regenerates Figure 8 (marshal time vs size).
func BenchmarkFig8Marshal(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9Lan1K regenerates Figure 9 (LAN, 1K dissemination).
func BenchmarkFig9Lan1K(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10Wan1K regenerates Figure 10 (WAN, 1K dissemination).
func BenchmarkFig10Wan1K(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11Lan4K regenerates Figure 11 (LAN, 4K dissemination).
func BenchmarkFig11Lan4K(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12Wan4K regenerates Figure 12 (WAN, 4K dissemination).
func BenchmarkFig12Wan4K(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13Lan256K regenerates Figure 13 (LAN, 256K dissemination).
func BenchmarkFig13Lan256K(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14Wan256K regenerates Figure 14 (WAN, 256K dissemination).
func BenchmarkFig14Wan256K(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkAppConsistency regenerates the Section 5.1 application cost
// breakdown.
func BenchmarkAppConsistency(b *testing.B) { runExperiment(b, "app") }

// BenchmarkSmallMessage regenerates the MNet-vs-TCP small-message
// comparison.
func BenchmarkSmallMessage(b *testing.B) { runExperiment(b, "smallmsg") }

// BenchmarkURSweep regenerates the availability-cost sweep.
func BenchmarkURSweep(b *testing.B) { runExperiment(b, "ur") }

// BenchmarkAblationMarshal regenerates the marshaling-library ablation.
func BenchmarkAblationMarshal(b *testing.B) { runExperiment(b, "ablate-marshal") }

// BenchmarkAblationAdaptive regenerates the adaptive-protocol ablation.
func BenchmarkAblationAdaptive(b *testing.B) { runExperiment(b, "ablate-adaptive") }

// BenchmarkAblationReuse regenerates the connection-reuse ablation.
func BenchmarkAblationReuse(b *testing.B) { runExperiment(b, "ablate-reuse") }

// BenchmarkCableModem regenerates the cable-modem home environment
// comparison from the paper's conclusion.
func BenchmarkCableModem(b *testing.B) { runExperiment(b, "cablemodem") }

// --- Native micro-benchmarks (no cost model, no simulated delays) ------

// BenchmarkMarshalJavaStyle4K measures the real byte-at-a-time codec.
func BenchmarkMarshalJavaStyle4K(b *testing.B) {
	codec := marshal.NewJavaStyle(netsim.Native())
	content := marshal.Bytes(make([]byte, 4096))
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Marshal(content); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshalFast4K measures the bulk custom codec.
func BenchmarkMarshalFast4K(b *testing.B) {
	codec := marshal.NewFast(netsim.Native())
	content := marshal.Bytes(make([]byte, 4096))
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Marshal(content); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireGrantRoundTrip measures protocol message codec throughput.
func BenchmarkWireGrantRoundTrip(b *testing.B) {
	g := &wire.Grant{Lock: 7, Thread: 99, Version: 42, Flag: wire.NeedNewVersion, Sharers: wire.NewSiteSet(1, 2, 3, 4, 5, 6)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Unmarshal(wire.Marshal(g)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLockCycleNative measures a full distributed lock/unlock cycle
// with no synthetic costs: pure protocol overhead on the in-process
// network.
func BenchmarkLockCycleNative(b *testing.B) {
	cluster, err := mocha.NewSimCluster(2, mocha.WithEnvironment(mocha.Perfect()))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	ctx := context.Background()

	bag := cluster.Home().Bag("bench")
	r, err := bag.CreateReplica("x", mocha.Ints([]int32{0}), 2)
	if err != nil {
		b.Fatal(err)
	}
	rl := bag.ReplicaLock(1)
	if err := rl.Associate(ctx, r); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rl.Lock(ctx); err != nil {
			b.Fatal(err)
		}
		r.Content().IntsData()[0]++
		if err := rl.Unlock(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSpawnNative measures spawn/result round trips with no synthetic
// costs.
func BenchmarkSpawnNative(b *testing.B) {
	cluster, err := mocha.NewSimCluster(2, mocha.WithEnvironment(mocha.Perfect()), mocha.WithMaxServers(64))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	cluster.MustRegister("Nop", func() mocha.Task {
		return mocha.TaskFunc(func(m *mocha.Mocha) { m.ReturnResults() })
	})
	ctx := context.Background()
	bag := cluster.Home().Bag("bench")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rh, err := bag.Spawn(ctx, 2, "Nop", nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rh.Wait(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDisseminationNative measures a UR=3 release cycle with no
// synthetic costs.
func BenchmarkDisseminationNative(b *testing.B) {
	cluster, err := mocha.NewSimCluster(4, mocha.WithEnvironment(mocha.Perfect()))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	ctx := context.Background()

	bag := cluster.Home().Bag("bench")
	r, err := bag.CreateReplica("x", mocha.Ints(make([]int32, 256)), 4)
	if err != nil {
		b.Fatal(err)
	}
	rl := bag.ReplicaLock(1)
	if err := rl.Associate(ctx, r); err != nil {
		b.Fatal(err)
	}
	for _, site := range []mocha.SiteID{2, 3, 4} {
		other := cluster.Site(site).Bag(fmt.Sprintf("s%d", site))
		ro, err := other.AttachReplica("x", mocha.Ints(nil))
		if err != nil {
			b.Fatal(err)
		}
		if err := other.ReplicaLock(1).Associate(ctx, ro); err != nil {
			b.Fatal(err)
		}
	}
	rl.SetUpdateReplicas(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rl.Lock(ctx); err != nil {
			b.Fatal(err)
		}
		r.Content().IntsData()[0]++
		if err := rl.Unlock(ctx); err != nil {
			b.Fatal(err)
		}
	}
}
