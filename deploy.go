package mocha

import (
	"fmt"

	"mocha/internal/hostfile"
	"mocha/internal/obs"
	"mocha/internal/runtime"
	"mocha/internal/transport"
)

// JoinCluster starts one real site in a multi-process deployment: it binds
// the UDP endpoint listed for this site in the host file and joins the
// cluster over real sockets. Every process must run the same binary (or
// binaries registering the same task classes), exactly as every JVM in the
// paper's deployment loaded the same Mocha classes.
//
// The host file format is documented in cmd/mochahosts; site 1 is the home
// site and must be started first.
func JoinCluster(hostfilePath string, id SiteID, registry *Registry, opts ...Option) (*Site, error) {
	hf, err := hostfile.Load(hostfilePath)
	if err != nil {
		return nil, fmt.Errorf("mocha: %w", err)
	}
	return JoinClusterEntries(hf.Directory(), id, registry, opts...)
}

// JoinClusterEntries is JoinCluster with an explicit site directory
// (site ID to UDP endpoint address), for callers that build the directory
// programmatically.
func JoinClusterEntries(directory map[SiteID]string, id SiteID, registry *Registry, opts ...Option) (*Site, error) {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if o.noMetrics {
		o.metrics = nil
	} else if o.metrics == nil {
		o.metrics = obs.NewRegistry()
	}
	addr, ok := directory[id]
	if !ok {
		return nil, fmt.Errorf("mocha: site %d not in host file", id)
	}
	if registry == nil {
		registry = runtime.NewRegistry()
	}

	stack, err := transport.NewRealStack(addr)
	if err != nil {
		return nil, fmt.Errorf("mocha: bind %s: %w", addr, err)
	}
	repo := runtime.NewCodeRepository()
	for _, name := range registry.Names() {
		repo.Add(name, []byte("mocha class image: "+name))
	}
	s, err := newSite(siteConfig{
		id:        id,
		stack:     stack,
		directory: directory,
		isHome:    id == HomeSite,
		registry:  registry,
		repo:      repo,
		opts:      o,
		cost:      o.cost.Scaled(o.scale),
	})
	if err != nil {
		_ = stack.Close()
		return nil, err
	}
	return s, nil
}
