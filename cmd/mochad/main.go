// Command mochad runs one Mocha site as a real process over UDP/TCP — the
// site-manager daemon of the paper's deployment model. Every site runs the
// same binary; the host file assigns identities and addresses.
//
// Start a three-site cluster on one machine:
//
//	mochahosts -n 3 -o cluster.hosts
//	mochad -hostfile cluster.hosts -site 2 &
//	mochad -hostfile cluster.hosts -site 3 &
//	mochad -hostfile cluster.hosts -site 1 -demo
//
// Remote sites serve spawned tasks until interrupted. The home site with
// -demo runs a demonstration workload: it spawns Myhello tasks at every
// remote site (remote evaluation with parameters and results), then drives
// a shared counter replica under a ReplicaLock from all sites, verifying
// entry-consistent state sharing over the real network.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mocha"
	"mocha/internal/hostfile"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		hostPath = flag.String("hostfile", "", "path to the cluster host file (required)")
		siteID   = flag.Uint("site", 0, "this process's site id from the host file (required)")
		demo     = flag.Bool("demo", false, "home site only: run the demonstration workload and exit")
		key      = flag.String("key", "", "optional shared cluster key enabling HMAC authentication")
		hybrid   = flag.Bool("hybrid", false, "use the hybrid MNet+TCP transfer protocol")
	)
	flag.Parse()
	if *hostPath == "" || *siteID == 0 {
		fmt.Fprintln(os.Stderr, "mochad: -hostfile and -site are required")
		flag.Usage()
		return 2
	}

	hf, err := hostfile.Load(*hostPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mochad: %v\n", err)
		return 1
	}

	registry := mocha.NewRegistry()
	registerDemoTasks(registry)

	opts := []mocha.Option{mocha.WithOutput(os.Stdout)}
	if *key != "" {
		opts = append(opts, mocha.WithClusterKey([]byte(*key)))
	}
	if *hybrid {
		opts = append(opts, mocha.WithTransferMode(mocha.ModeHybrid))
	}
	site, err := mocha.JoinCluster(*hostPath, mocha.SiteID(*siteID), registry, opts...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mochad: %v\n", err)
		return 1
	}
	defer func() { _ = site.Close() }()
	entry, _ := hf.Lookup(mocha.SiteID(*siteID))
	fmt.Printf("mochad: site %d (%s) up at %s\n", site.ID(), entry.Name, entry.Addr)

	if *demo {
		if site.ID() != mocha.HomeSite {
			fmt.Fprintln(os.Stderr, "mochad: -demo runs on the home site (site 1)")
			return 2
		}
		if err := runDemo(site, hf); err != nil {
			fmt.Fprintf(os.Stderr, "mochad: demo failed: %v\n", err)
			return 1
		}
		fmt.Println("mochad: demo completed successfully")
		return 0
	}

	// Serve until interrupted.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("mochad: shutting down")
	return 0
}

// registerDemoTasks installs the classes every mochad binary can link.
func registerDemoTasks(reg *mocha.Registry) {
	reg.MustRegister("Myhello", func() mocha.Task {
		return mocha.TaskFunc(func(m *mocha.Mocha) {
			start, err := m.Parameter.GetDouble("start")
			if err != nil {
				m.MochaPrintStackTrace(err)
				m.Fail(err)
				return
			}
			sum := start + 1
			m.MochaPrintf("Returning as a return value %v", sum)
			m.Result.AddDouble("returnvalue", sum)
			m.ReturnResults()
		})
	})
	reg.MustRegister("CounterWorker", func() mocha.Task {
		return mocha.TaskFunc(func(m *mocha.Mocha) {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			r, err := m.AttachReplica("counter", mocha.Ints(nil))
			if err != nil {
				m.Fail(err)
				return
			}
			rl := m.ReplicaLock(1)
			if err := rl.Associate(ctx, r); err != nil {
				m.Fail(err)
				return
			}
			n, _ := m.Parameter.GetInt("increments")
			for i := int64(0); i < n; i++ {
				if err := rl.Lock(ctx); err != nil {
					m.Fail(err)
					return
				}
				r.Content().IntsData()[0]++
				if err := rl.Unlock(ctx); err != nil {
					m.Fail(err)
					return
				}
			}
			m.Result.AddBool("done", true)
			m.ReturnResults()
		})
	})
}

// runDemo exercises remote evaluation and robust state sharing across the
// real cluster.
func runDemo(site *mocha.Site, hf *hostfile.HostFile) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	bag := site.Bag("demo-main")

	// Phase 1: remote evaluation with parameters and results (Figure 1).
	fmt.Println("mochad: phase 1 — spawning Myhello at every remote site")
	for _, remote := range hf.Sites() {
		if remote == mocha.HomeSite {
			continue
		}
		p := mocha.NewParams()
		p.AddDouble("start", float64(remote)*10)
		rh, err := bag.Spawn(ctx, remote, "Myhello", p)
		if err != nil {
			return fmt.Errorf("spawn at site %d: %w", remote, err)
		}
		res, err := rh.Wait(ctx)
		if err != nil {
			return fmt.Errorf("result from site %d: %w", remote, err)
		}
		v, _ := res.GetDouble("returnvalue")
		fmt.Printf("mochad: site %d returned %v\n", remote, v)
	}

	// Phase 2: shared counter under a ReplicaLock across all sites.
	fmt.Println("mochad: phase 2 — shared counter replica across the cluster")
	const increments = 5
	counter, err := bag.CreateReplica("counter", mocha.Ints([]int32{0}), len(hf.Entries))
	if err != nil {
		return err
	}
	rl := bag.ReplicaLock(1)
	if err := rl.Associate(ctx, counter); err != nil {
		return err
	}

	var handles []*mocha.ResultHandle
	workers := 0
	for _, remote := range hf.Sites() {
		if remote == mocha.HomeSite {
			continue
		}
		p := mocha.NewParams()
		p.AddInt("increments", increments)
		rh, err := bag.Spawn(ctx, remote, "CounterWorker", p)
		if err != nil {
			return fmt.Errorf("spawn worker at site %d: %w", remote, err)
		}
		handles = append(handles, rh)
		workers++
	}
	for i := 0; i < increments; i++ {
		if err := rl.Lock(ctx); err != nil {
			return err
		}
		counter.Content().IntsData()[0]++
		if err := rl.Unlock(ctx); err != nil {
			return err
		}
	}
	for _, rh := range handles {
		if _, err := rh.Wait(ctx); err != nil {
			return err
		}
	}

	if err := rl.Lock(ctx); err != nil {
		return err
	}
	defer func() { _ = rl.Unlock(ctx) }()
	got := counter.Content().IntsData()[0]
	want := int32((workers + 1) * increments)
	fmt.Printf("mochad: counter = %d (want %d)\n", got, want)
	if got != want {
		return fmt.Errorf("counter = %d, want %d: state sharing broken", got, want)
	}
	return nil
}
