// Command mochahosts generates a Mocha host file — "The Mocha system
// provides a tool to generate this host file."
//
//	mochahosts -n 4                          # 4 sites on 127.0.0.1:9000..9003
//	mochahosts -n 3 -host 10.0.0.7 -port 7000
//	mochahosts -n 4 -o cluster.hosts
//
// Site 1 is the home site. Each line is "<site-id> <name> <udp-address>";
// feed the file to cmd/mochad's -hostfile flag.
package main

import (
	"flag"
	"fmt"
	"os"

	"mocha/internal/hostfile"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		n    = flag.Int("n", 2, "number of sites")
		host = flag.String("host", "127.0.0.1", "host/IP for every site")
		port = flag.Int("port", 9000, "base UDP port (site i uses port+i-1)")
		out  = flag.String("o", "", "output path (default stdout)")
	)
	flag.Parse()
	if *n < 1 {
		fmt.Fprintln(os.Stderr, "mochahosts: -n must be at least 1")
		return 2
	}

	hf := hostfile.Generate(*n, *host, *port)
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mochahosts: %v\n", err)
			return 1
		}
		defer func() { _ = f.Close() }()
		w = f
	}
	if _, err := hf.WriteTo(w); err != nil {
		fmt.Fprintf(os.Stderr, "mochahosts: %v\n", err)
		return 1
	}
	return 0
}
