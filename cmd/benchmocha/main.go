// Command benchmocha regenerates the tables and figures of the paper's
// evaluation (Section 5) on the calibrated simulated environments.
//
//	benchmocha -all                # every experiment, full scale
//	benchmocha -exp fig12          # one experiment
//	benchmocha -exp table1,fig8    # a list
//	benchmocha -all -scale 0.1     # 10x faster, de-scaled results
//	benchmocha -list               # show experiment IDs
//
// Results report model time: with -scale below 1 the experiments run
// proportionally faster but the printed milliseconds remain comparable to
// the paper's. Expect minutes for the full suite at -scale 1.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mocha/internal/bench"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		all     = flag.Bool("all", false, "run every experiment")
		exp     = flag.String("exp", "", "comma-separated experiment IDs")
		scale   = flag.Float64("scale", 1.0, "time scale (1.0 = calibrated real time)")
		trials  = flag.Int("trials", 3, "measurements per data point")
		sites   = flag.Int("sites", 6, "maximum dissemination fan-out")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		jsonOut = flag.Bool("json", false, "also write each result to BENCH_<name>.json")

		loadSites = flag.Int("load-sites", 0, "load experiment: cluster size (default 100)")
		loadLocks = flag.Int("load-locks", 0, "load experiment: lock population (default 10000)")
		loadRate  = flag.Float64("load-rate", 0, "load experiment: offered ops/s (default 3000)")
		loadDur   = flag.Duration("load-duration", 0, "load experiment: arrival window (default 5s)")

		treeSites   = flag.Int("tree-sites", 0, "tree experiment: cluster size (default 200)")
		treeRegions = flag.Int("tree-regions", 0, "tree experiment: WAN regions (default 8)")

		homeSites = flag.Int("home-sites", 0, "home experiment: cluster/ring size (default 6)")
		homeLocks = flag.Int("home-locks", 0, "home experiment: lock population (default 8)")

		storeSites = flag.Int("store-sites", 0, "store experiment: cluster size (default 3)")
		storeLocks = flag.Int("store-locks", 0, "store experiment: lock population (default 6)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-16s %s\n", e.ID, e.Title)
		}
		return 0
	}

	var selected []bench.Experiment
	switch {
	case *all:
		selected = bench.All()
	case *exp != "":
		for _, id := range strings.Split(*exp, ",") {
			id = strings.TrimSpace(id)
			e, ok := bench.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "benchmocha: unknown experiment %q; available experiments:\n", id)
				for _, known := range bench.All() {
					fmt.Fprintf(os.Stderr, "  %-16s %s\n", known.ID, known.Title)
				}
				return 2
			}
			selected = append(selected, e)
		}
	default:
		flag.Usage()
		return 2
	}

	cfg := bench.Config{
		Scale: *scale, Trials: *trials, MaxSites: *sites,
		LoadSites: *loadSites, LoadLocks: *loadLocks, LoadRate: *loadRate, LoadDuration: *loadDur,
		TreeSites: *treeSites, TreeRegions: *treeRegions,
		HomeSites: *homeSites, HomeLocks: *homeLocks,
		StoreSites: *storeSites, StoreLocks: *storeLocks,
	}
	fmt.Printf("mocha benchmark harness: scale=%.3f trials=%d max-sites=%d\n\n", *scale, *trials, *sites)
	failed := 0
	for _, e := range selected {
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchmocha: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(res.String())
		fmt.Printf("(%s completed in %v wall-clock)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		if *jsonOut {
			if err := writeJSON(res); err != nil {
				fmt.Fprintf(os.Stderr, "benchmocha: writing %s result: %v\n", e.ID, err)
				failed++
			}
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// writeJSON records one result as BENCH_<name>.json in the working
// directory, stripping the "ablate-" prefix so the fan-out ablation lands
// in BENCH_fanout.json and the delta ablation in BENCH_delta.json.
func writeJSON(res bench.Result) error {
	name := strings.TrimPrefix(res.ID, "ablate-")
	path := "BENCH_" + name + ".json"
	blob, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n\n", path)
	return nil
}
