// Command mochaviz renders Mocha execution traces — the visualization
// support the paper's conclusion lists as future work ("visualization
// support to provide greater insight into the execution of wide area
// distributed applications").
//
// Traces are JSON-lines files written with Cluster.Timeline().WriteJSON
// (or assembled from forwarded event logs). mochaviz draws per-site
// swimlanes on the terminal and summarizes activity.
//
//	mochaviz -in trace.jsonl                   # full swimlane view
//	mochaviz -in trace.jsonl -cat lock,fault   # only those categories
//	mochaviz -in trace.jsonl -sites 1,3 -max 50
//	mochaviz -in trace.jsonl -summary          # counts per site/category
//	mochaviz -demo                             # run a demo and render it
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"mocha"
	"mocha/internal/trace"
	"mocha/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		in      = flag.String("in", "", "trace file (JSON lines) to render")
		cats    = flag.String("cat", "", "comma-separated category filter")
		sitesF  = flag.String("sites", "", "comma-separated site filter")
		maxRec  = flag.Int("max", 200, "maximum records to render (0 = all)")
		width   = flag.Int("width", 34, "lane width per site")
		summary = flag.Bool("summary", false, "print per-site category counts instead of lanes")
		demo    = flag.Bool("demo", false, "run a small cluster workload and render its trace")
		out     = flag.String("o", "", "also write the (filtered) trace as JSON lines to this file")
	)
	flag.Parse()

	var tl *trace.Timeline
	switch {
	case *demo:
		var err error
		tl, err = demoTimeline()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mochaviz: demo: %v\n", err)
			return 1
		}
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mochaviz: %v\n", err)
			return 1
		}
		tl, err = trace.ReadJSON(f)
		_ = f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mochaviz: %v\n", err)
			return 1
		}
	default:
		fmt.Fprintln(os.Stderr, "mochaviz: need -in <trace.jsonl> or -demo")
		flag.Usage()
		return 2
	}

	var catList []string
	if *cats != "" {
		catList = strings.Split(*cats, ",")
	}
	var siteList []wire.SiteID
	if *sitesF != "" {
		for _, s := range strings.Split(*sitesF, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 32)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mochaviz: bad site %q\n", s)
				return 2
			}
			siteList = append(siteList, wire.SiteID(v))
		}
	}
	tl = tl.Filter(catList, siteList)

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mochaviz: %v\n", err)
			return 1
		}
		if err := tl.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "mochaviz: %v\n", err)
			_ = f.Close()
			return 1
		}
		_ = f.Close()
	}

	fmt.Printf("%d records across %d sites spanning %v\n\n",
		len(tl.Records), len(tl.Sites()), tl.Span().Round(time.Millisecond))
	if *summary {
		fmt.Println(tl.Summary())
		return 0
	}
	if err := tl.Render(os.Stdout, trace.RenderOptions{LaneWidth: *width, MaxRecords: *maxRec}); err != nil {
		fmt.Fprintf(os.Stderr, "mochaviz: %v\n", err)
		return 1
	}
	return 0
}

// demoTimeline runs a short three-site workload (shared counter with a
// dissemination push and a transfer) and returns its trace.
func demoTimeline() (*trace.Timeline, error) {
	cluster, err := mocha.NewSimCluster(3, mocha.WithEnvironment(mocha.LAN()))
	if err != nil {
		return nil, err
	}
	defer func() { _ = cluster.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	bag := cluster.Home().Bag("viz-demo")
	r, err := bag.CreateReplica("counter", mocha.Ints([]int32{0}), 3)
	if err != nil {
		return nil, err
	}
	rl := bag.ReplicaLock(1)
	if err := rl.Associate(ctx, r); err != nil {
		return nil, err
	}
	for _, id := range []mocha.SiteID{2, 3} {
		other := cluster.Site(id).Bag("viz-worker")
		ro, err := other.AttachReplica("counter", mocha.Ints(nil))
		if err != nil {
			return nil, err
		}
		orl := other.ReplicaLock(1)
		if err := orl.Associate(ctx, ro); err != nil {
			return nil, err
		}
		rl.SetUpdateReplicas(2)
		if err := orl.Lock(ctx); err != nil {
			return nil, err
		}
		ro.Content().IntsData()[0]++
		if err := orl.Unlock(ctx); err != nil {
			return nil, err
		}
	}
	time.Sleep(100 * time.Millisecond)
	return cluster.Timeline(), nil
}
