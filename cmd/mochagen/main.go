// Command mochagen is the MochaGen tool: it generates a Replica wrapper
// with explicit serialization code for a Go struct, so complex objects can
// be shared "in a manner very similar to Mocha's standard Replica object".
//
//	mochagen -src app.go -type TableSetting                 # to stdout
//	mochagen -src app.go -type TableSetting -o setting_replica.go
//
// The generated type implements marshal.Serializable with field-by-field
// encoding — the optimized alternative to the reflection-based
// mocha.TypedReplica.
package main

import (
	"flag"
	"fmt"
	"os"

	"mocha/internal/gen"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		src      = flag.String("src", "", "Go source file declaring the struct")
		typeName = flag.String("type", "", "struct type to generate a Replica wrapper for")
		out      = flag.String("o", "", "output path (default stdout)")
	)
	flag.Parse()
	if *src == "" || *typeName == "" {
		fmt.Fprintln(os.Stderr, "mochagen: -src and -type are required")
		flag.Usage()
		return 2
	}

	source, err := os.ReadFile(*src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mochagen: %v\n", err)
		return 1
	}
	code, err := gen.Generate(source, *typeName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mochagen: %v\n", err)
		return 1
	}
	if *out == "" {
		_, _ = os.Stdout.Write(code)
		return 0
	}
	if err := os.WriteFile(*out, code, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mochagen: %v\n", err)
		return 1
	}
	return 0
}
