package mocha

import (
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"time"

	"mocha/internal/core"
	"mocha/internal/eventlog"
	"mocha/internal/mnet"
	"mocha/internal/netsim"
	"mocha/internal/obs"
	"mocha/internal/runtime"
	"mocha/internal/session"
	"mocha/internal/trace"
	"mocha/internal/transport"
	"mocha/internal/wire"
)

// Cluster is an in-process deployment of n Mocha sites over a simulated
// network — the form tests, examples, and the benchmark harness use. All
// sites share one task registry and code repository, since they live in
// one binary.
type Cluster struct {
	sim      *transport.SimNetwork
	registry *runtime.Registry
	repo     *runtime.CodeRepository
	sites    map[SiteID]*Site
	order    []SiteID
	opts     options
}

// NewSimCluster starts n simulated sites; site 1 is the home site.
func NewSimCluster(n int, opts ...Option) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("mocha: cluster needs at least one site")
	}
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	profile := o.profile.Scaled(o.scale)
	cost := o.cost.Scaled(o.scale)

	sim := transport.NewSimNetwork(netsim.Config{Profile: profile, Seed: o.seed})
	if o.noMetrics {
		o.metrics = nil
	} else if o.metrics == nil {
		o.metrics = obs.NewRegistry()
	}
	// History events and metric spans share the simulated network's clock,
	// so recorder ticks and span ticks land on one monotone axis and a
	// history event can be cross-referenced with the span that covers it.
	o.metrics.SetClock(sim.Clock())
	if cs, ok := o.history.(interface{ SetClock(*netsim.Clock) }); ok {
		cs.SetClock(sim.Clock())
	}
	c := &Cluster{
		sim:      sim,
		registry: runtime.NewRegistry(),
		repo:     runtime.NewCodeRepository(),
		sites:    make(map[SiteID]*Site, n),
		opts:     o,
	}

	directory := make(map[SiteID]string, n)
	stacks := make(map[SiteID]*transport.SimStack, n)
	for i := 1; i <= n; i++ {
		site := SiteID(i)
		stack, err := sim.NewStack(netsim.NodeID(i))
		if err != nil {
			_ = sim.Close()
			return nil, fmt.Errorf("mocha: site %d: %w", i, err)
		}
		stacks[site] = stack
		directory[site] = stack.Datagram().LocalAddr()
	}

	for i := 1; i <= n; i++ {
		site := SiteID(i)
		s, err := newSite(siteConfig{
			id:        site,
			stack:     stacks[site],
			directory: directory,
			isHome:    site == HomeSite,
			registry:  c.registry,
			repo:      c.repo,
			opts:      o,
			cost:      cost,
		})
		if err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("mocha: site %d: %w", i, err)
		}
		c.sites[site] = s
		c.order = append(c.order, site)
	}
	return c, nil
}

// Register binds a task class name to a factory, and stores a synthetic
// class image in the home repository so spawns exercise the code-shipping
// path.
func (c *Cluster) Register(name string, f Factory) error {
	if err := c.registry.Register(name, f); err != nil {
		return err
	}
	c.repo.Add(name, []byte("mocha class image: "+name))
	return nil
}

// MustRegister panics on registration error (for main-program setup).
func (c *Cluster) MustRegister(name string, f Factory) {
	if err := c.Register(name, f); err != nil {
		panic(err)
	}
}

// AddCode stores a demand-pullable class image in the home repository.
func (c *Cluster) AddCode(name string, code []byte) {
	c.repo.Add(name, code)
}

// Home returns the home site.
func (c *Cluster) Home() *Site { return c.sites[HomeSite] }

// Site returns a site by ID (nil if absent).
func (c *Cluster) Site(id SiteID) *Site { return c.sites[id] }

// Sites returns all sites in ID order.
func (c *Cluster) Sites() []*Site {
	out := make([]*Site, 0, len(c.order))
	for _, id := range c.order {
		out = append(out, c.sites[id])
	}
	return out
}

// Kill fail-stops a site: its node closes and the simulated network
// silences it, exactly like a remote machine reboot.
func (c *Cluster) Kill(id SiteID) {
	if s, ok := c.sites[id]; ok {
		_ = s.Close()
	}
	c.sim.Kill(netsim.NodeID(id))
}

// Partition cuts or heals both directions between two sites.
func (c *Cluster) Partition(a, b SiteID, cut bool) {
	c.sim.Underlying().Partition(netsim.NodeID(a), netsim.NodeID(b), cut)
}

// Metrics returns the cluster's observability registry (nil when the
// cluster was built WithoutMetrics). Snapshot it for JSON or Prometheus
// export, or read individual counters and histograms directly.
func (c *Cluster) Metrics() *Metrics { return c.opts.metrics }

// MetricsSnapshot captures the registry's current counters, gauges,
// histograms, and recent spans. A cluster built WithoutMetrics yields the
// zero snapshot.
func (c *Cluster) MetricsSnapshot() MetricsSnapshot { return c.opts.metrics.Snapshot() }

// NetStats returns simulated-network packet counters.
func (c *Cluster) NetStats() netsim.Stats { return c.sim.Underlying().Stats() }

// Timeline merges every site's event log into one time-ordered trace for
// the visualization tooling (cmd/mochaviz and trace.Render).
func (c *Cluster) Timeline() *trace.Timeline {
	perSite := make(map[wire.SiteID][]eventlog.Event, len(c.sites))
	for id, s := range c.sites {
		perSite[wire.SiteID(id)] = s.node.Log().Events()
	}
	return trace.Merge(perSite)
}

// Close shuts every site and the network down.
func (c *Cluster) Close() error {
	for _, s := range c.sites {
		_ = s.Close()
	}
	return c.sim.Close()
}

// Site is one Mocha site: its shared-object node plus its wide-area
// runtime.
type Site struct {
	node *core.Node
	rt   *runtime.Runtime

	sessOnce sync.Once
	sess     *session.Store
	sessErr  error
	resolver session.Resolver
}

// siteConfig gathers what newSite needs.
type siteConfig struct {
	id        SiteID
	stack     transport.Stack
	directory map[SiteID]string
	isHome    bool
	registry  *runtime.Registry
	repo      *runtime.CodeRepository
	opts      options
	cost      CostModel
}

// newSite wires one site together.
func newSite(sc siteConfig) (*Site, error) {
	mnetCfg := mnet.Config{
		Cost:    sc.cost,
		Key:     sc.opts.key,
		Metrics: sc.opts.metrics,
	}
	if sc.opts.scale < 1 {
		// Scaled environments have tiny latencies; keep retransmission
		// timers proportionate so loss tests converge quickly.
		mnetCfg.RTO = 50 * time.Millisecond
	}
	ep := mnet.NewEndpoint(sc.stack.Datagram(), mnetCfg)

	logger := eventlog.New(1 << 14)
	storeDir := ""
	if sc.opts.storeDir != "" {
		// Each site persists under its own subdirectory, so one cluster
		// root can host every site's log — and a single-site process
		// restarted on the same root finds its own state.
		storeDir = filepath.Join(sc.opts.storeDir, fmt.Sprintf("site-%d", sc.id))
	}
	node, err := core.NewNode(core.Config{
		Site:                wire.SiteID(sc.id),
		Endpoint:            ep,
		Stack:               sc.stack,
		Directory:           sc.directory,
		IsHome:              sc.isHome,
		HomePlacement:       sc.opts.placement,
		Codec:               sc.opts.codec(),
		Cost:                sc.cost,
		Mode:                sc.opts.mode,
		StreamReuse:         sc.opts.streamReuse,
		DeltaTransfer:       sc.opts.delta,
		DisseminationFanout: sc.opts.fanout,
		DisseminationTree:   sc.opts.tree,
		RequestTimeout:      sc.opts.reqTimeout,
		TransferTimeout:     sc.opts.xferTimeout,
		DefaultLease:        sc.opts.lease,
		LeaseSweep:          sc.opts.leaseSweep,
		Log:                 logger,
		History:             sc.opts.history,
		Metrics:             sc.opts.metrics,
		StoreDir:            storeDir,
		StoreMemLimit:       sc.opts.storeLimit,
	})
	if err != nil {
		return nil, err
	}
	perms := runtime.AllPermissions()
	if sc.opts.perms != nil {
		perms = *sc.opts.perms
	}
	var out io.Writer
	if sc.opts.output != nil {
		out = sc.opts.output
	}
	rt, err := runtime.New(node, runtime.Config{
		Registry:        sc.registry,
		Repo:            sc.repo,
		MaxServers:      sc.opts.maxServers,
		Output:          out,
		TaskPermissions: perms,
	})
	if err != nil {
		_ = node.Close()
		return nil, err
	}
	return &Site{node: node, rt: rt, resolver: sc.opts.resolver}, nil
}

// ID returns the site's identifier.
func (s *Site) ID() SiteID { return s.node.Site() }

// Bag builds a travel bag for a local application thread, giving main
// programs the same API as spawned tasks.
func (s *Site) Bag(name string) *Mocha { return s.rt.LocalBag(name) }

// Node exposes the shared-object layer (advanced use: surrogate failover,
// cached replicas, event log).
func (s *Site) Node() *core.Node { return s.node }

// Runtime exposes the wide-area runtime layer.
func (s *Site) Runtime() *runtime.Runtime { return s.rt }

// Snapshot captures the synchronization thread's durable state; only
// meaningful on the site currently running it.
func (s *Site) Snapshot() (SyncState, error) {
	sy := s.node.Sync()
	if sy == nil {
		return SyncState{}, fmt.Errorf("mocha: site %d runs no synchronization thread", s.ID())
	}
	return sy.Snapshot(), nil
}

// Sessions returns the site's non-synchronization-based object store,
// starting it on first use. Objects written here replicate optimistically
// with conflict resolution instead of locks — the mode the paper's
// conclusion announces as ongoing work.
func (s *Site) Sessions() (*session.Store, error) {
	s.sessOnce.Do(func() {
		s.sess, s.sessErr = session.New(session.Config{
			Site:      s.node.Site(),
			Endpoint:  s.node.Endpoint(),
			Directory: s.node.Directory(),
			Resolve:   s.resolver,
			Log:       s.node.Log(),
		})
	})
	return s.sess, s.sessErr
}

// Close shuts the site down.
func (s *Site) Close() error {
	if s.sess != nil {
		s.sess.Close()
	}
	return s.node.Close()
}
