package mocha_test

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"mocha"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestQuickstartFlow(t *testing.T) {
	cluster, err := mocha.NewSimCluster(3, mocha.WithEnvironment(mocha.Perfect()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()

	cluster.MustRegister("Myhello", func() mocha.Task {
		return mocha.TaskFunc(func(m *mocha.Mocha) {
			start, err := m.Parameter.GetDouble("start")
			if err != nil {
				m.Fail(err)
				return
			}
			m.MochaPrintf("Returning as a return value %v", start+1)
			m.Result.AddDouble("returnvalue", start+1)
			m.ReturnResults()
		})
	})

	ctx := testCtx(t)
	bag := cluster.Home().Bag("main")
	p := mocha.NewParams()
	p.AddDouble("start", 0)
	rh, err := bag.SpawnAny(ctx, "Myhello", p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rh.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := res.GetDouble("returnvalue"); v != 1 {
		t.Fatalf("returnvalue = %v", v)
	}
}

func TestTableSettingPattern(t *testing.T) {
	// The Figure 3 pattern via the public API: three index replicas and a
	// StringReplica under one ReplicaLock, shared between home and a
	// remote task.
	cluster, err := mocha.NewSimCluster(2, mocha.WithEnvironment(mocha.Perfect()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	ctx := testCtx(t)

	done := make(chan string, 1)
	cluster.MustRegister("Associate", func() mocha.Task {
		return mocha.TaskFunc(func(m *mocha.Mocha) {
			rlock := m.ReplicaLock(1)
			flatware, err := m.AttachReplica("flatwareIndex", mocha.Ints(nil))
			if err != nil {
				m.Fail(err)
				return
			}
			text, err := m.AttachReplica("text", mocha.Object(mocha.NewStringValue("")))
			if err != nil {
				m.Fail(err)
				return
			}
			taskCtx := context.Background()
			if err := rlock.Associate(taskCtx, flatware); err != nil {
				m.Fail(err)
				return
			}
			if err := rlock.Associate(taskCtx, text); err != nil {
				m.Fail(err)
				return
			}
			// Wait until the home made its update visible.
			for {
				if err := rlock.Lock(taskCtx); err != nil {
					m.Fail(err)
					return
				}
				idx := flatware.Content().IntsData()
				comment := text.Content().ObjectData().(*mocha.StringValue).Get()
				if err := rlock.Unlock(taskCtx); err != nil {
					m.Fail(err)
					return
				}
				if len(idx) > 0 && idx[0] == 1 {
					done <- comment
					m.ReturnResults()
					return
				}
				time.Sleep(10 * time.Millisecond)
			}
		})
	})

	bag := cluster.Home().Bag("home-gui")
	rlock := bag.ReplicaLock(1)
	flatware, err := bag.CreateReplica("flatwareIndex", mocha.Ints(make([]int32, 5)), 2)
	if err != nil {
		t.Fatal(err)
	}
	str := mocha.NewStringValue("Hello World")
	text, err := bag.CreateReplica("text", mocha.Object(str), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rlock.Associate(ctx, flatware); err != nil {
		t.Fatal(err)
	}
	if err := rlock.Associate(ctx, text); err != nil {
		t.Fatal(err)
	}

	rh, err := bag.Spawn(ctx, 2, "Associate", nil)
	if err != nil {
		t.Fatal(err)
	}

	if err := rlock.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	flatware.Content().IntsData()[0] = 1
	str.Set("Good Choice")
	if err := rlock.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	select {
	case comment := <-done:
		if comment != "Good Choice" {
			t.Fatalf("remote saw comment %q", comment)
		}
	case <-ctx.Done():
		t.Fatal("remote task never observed the update")
	}
	if _, err := rh.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestTypedReplica(t *testing.T) {
	type TableSetting struct {
		Flatware, Plate, Glass int
		Comment                string
	}
	cluster, err := mocha.NewSimCluster(2, mocha.WithEnvironment(mocha.Perfect()))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	ctx := testCtx(t)

	got := make(chan TableSetting, 1)
	cluster.MustRegister("Viewer", func() mocha.Task {
		return mocha.TaskFunc(func(m *mocha.Mocha) {
			tr, err := mocha.AttachTypedReplica[TableSetting](m, "setting")
			if err != nil {
				m.Fail(err)
				return
			}
			rl := m.ReplicaLock(2)
			if err := rl.Associate(context.Background(), tr.Replica()); err != nil {
				m.Fail(err)
				return
			}
			for {
				if err := rl.Lock(context.Background()); err != nil {
					m.Fail(err)
					return
				}
				v := tr.Get()
				if err := rl.Unlock(context.Background()); err != nil {
					m.Fail(err)
					return
				}
				if v.Comment != "" {
					got <- v
					m.ReturnResults()
					return
				}
				time.Sleep(5 * time.Millisecond)
			}
		})
	})

	bag := cluster.Home().Bag("main")
	tr, err := mocha.NewTypedReplica(bag, "setting", TableSetting{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rl := bag.ReplicaLock(2)
	if err := rl.Associate(ctx, tr.Replica()); err != nil {
		t.Fatal(err)
	}
	rh, err := bag.Spawn(ctx, 2, "Viewer", nil)
	if err != nil {
		t.Fatal(err)
	}

	if err := rl.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	tr.Update(func(s *TableSetting) {
		s.Flatware, s.Plate, s.Glass = 2, 3, 4
		s.Comment = "lovely"
	})
	if err := rl.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	select {
	case v := <-got:
		if v.Flatware != 2 || v.Plate != 3 || v.Glass != 4 || v.Comment != "lovely" {
			t.Fatalf("remote saw %+v", v)
		}
	case <-ctx.Done():
		t.Fatal("remote never saw typed update")
	}
	if _, err := rh.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestClusterFaultInjectionAPI(t *testing.T) {
	cluster, err := mocha.NewSimCluster(3,
		mocha.WithEnvironment(mocha.Perfect()),
		mocha.WithLease(200*time.Millisecond),
		mocha.WithLeaseSweep(50*time.Millisecond),
		mocha.WithRequestTimeout(500*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	ctx := testCtx(t)

	bagHome := cluster.Home().Bag("home")
	r, err := bagHome.CreateReplica("value", mocha.Ints([]int32{7}), 3)
	if err != nil {
		t.Fatal(err)
	}
	rlHome := bagHome.ReplicaLock(4)
	if err := rlHome.Associate(ctx, r); err != nil {
		t.Fatal(err)
	}

	bag2 := cluster.Site(2).Bag("w2")
	r2, err := bag2.AttachReplica("value", mocha.Ints(nil))
	if err != nil {
		t.Fatal(err)
	}
	rl2 := bag2.ReplicaLock(4)
	if err := rl2.Associate(ctx, r2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// Site 2 takes the lock and is killed; the home must recover.
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	cluster.Kill(2)

	if err := rlHome.Lock(ctx); err != nil {
		t.Fatalf("lock never recovered after kill: %v", err)
	}
	if got := r.Content().IntsData()[0]; got != 7 {
		t.Fatalf("value = %d", got)
	}
	if err := rlHome.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if cluster.NetStats().Sent == 0 {
		t.Fatal("no packets counted")
	}
}

func TestSurrogateViaPublicAPI(t *testing.T) {
	cluster, err := mocha.NewSimCluster(3,
		mocha.WithEnvironment(mocha.Perfect()),
		mocha.WithRequestTimeout(400*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	ctx := testCtx(t)

	bagHome := cluster.Home().Bag("home")
	r, err := bagHome.CreateReplica("v", mocha.Ints([]int32{1}), 3)
	if err != nil {
		t.Fatal(err)
	}
	rl := bagHome.ReplicaLock(4)
	if err := rl.Associate(ctx, r); err != nil {
		t.Fatal(err)
	}

	bag3 := cluster.Site(3).Bag("w3")
	r3, err := bag3.AttachReplica("v", mocha.Ints(nil))
	if err != nil {
		t.Fatal(err)
	}
	rl3 := bag3.ReplicaLock(4)
	if err := rl3.Associate(ctx, r3); err != nil {
		t.Fatal(err)
	}
	// Push state everywhere so it survives the home's death.
	rl.SetUpdateReplicas(3)
	if err := rl.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r.Content().IntsData()[0] = 9
	if err := rl.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	state, err := cluster.Home().Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Site(2).Snapshot(); err == nil {
		t.Fatal("non-home snapshot should fail")
	}
	cluster.Kill(1)
	if err := cluster.Site(2).Node().StartSurrogate(ctx, state); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	if err := rl3.Lock(ctx); err != nil {
		t.Fatalf("lock via surrogate: %v", err)
	}
	if got := r3.Content().IntsData()[0]; got != 9 {
		t.Fatalf("value after failover = %d", got)
	}
	if err := rl3.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestHMACClusterOption(t *testing.T) {
	cluster, err := mocha.NewSimCluster(2,
		mocha.WithEnvironment(mocha.Perfect()),
		mocha.WithClusterKey([]byte("shared-secret")),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	ctx := testCtx(t)

	cluster.MustRegister("Echo", func() mocha.Task {
		return mocha.TaskFunc(func(m *mocha.Mocha) {
			s, _ := m.Parameter.GetString("s")
			m.Result.AddString("s", s)
			m.ReturnResults()
		})
	})
	bag := cluster.Home().Bag("main")
	p := mocha.NewParams()
	p.AddString("s", "authentic")
	rh, err := bag.Spawn(ctx, 2, "Echo", p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rh.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if s, _ := res.GetString("s"); s != "authentic" {
		t.Fatalf("echo = %q", s)
	}
}

func TestRemotePrintOutput(t *testing.T) {
	var out syncBuffer
	cluster, err := mocha.NewSimCluster(2,
		mocha.WithEnvironment(mocha.Perfect()),
		mocha.WithOutput(&out),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	ctx := testCtx(t)

	cluster.MustRegister("Printer", func() mocha.Task {
		return mocha.TaskFunc(func(m *mocha.Mocha) {
			m.MochaPrintln("hello from afar")
			m.ReturnResults()
		})
	})
	bag := cluster.Home().Bag("main")
	rh, err := bag.Spawn(ctx, 2, "Printer", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rh.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(out.String(), "hello from afar") {
		if time.Now().After(deadline) {
			t.Fatalf("console: %q", out.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTimeScaledWANCluster(t *testing.T) {
	// A calibrated WAN environment scaled down 50x still works end to end
	// and still exhibits nontrivial latency.
	cluster, err := mocha.NewSimCluster(2,
		mocha.WithEnvironment(mocha.WAN()),
		mocha.WithCostModel(mocha.JDK1Cost()),
		mocha.WithJavaCodec(),
		mocha.WithTimeScale(0.02),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()
	ctx := testCtx(t)

	bag := cluster.Home().Bag("main")
	r, err := bag.CreateReplica("x", mocha.Ints([]int32{0}), 2)
	if err != nil {
		t.Fatal(err)
	}
	rl := bag.ReplicaLock(3)
	if err := rl.Associate(ctx, r); err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond)

	start := time.Now()
	if err := rl.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if err := rl.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	// 19ms scaled by 0.02 ~ 0.4ms; anything between 50us and 100ms shows
	// the model is engaged without being full scale.
	if elapsed < 50*time.Microsecond {
		t.Fatalf("scaled WAN lock too fast: %v", elapsed)
	}
	if elapsed > 100*time.Millisecond {
		t.Fatalf("scaled WAN lock too slow: %v", elapsed)
	}
}

// syncBuffer is a goroutine-safe strings.Builder.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
