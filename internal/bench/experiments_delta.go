package bench

import (
	"fmt"
	"time"

	"mocha/internal/core"
	"mocha/internal/netsim"
	"mocha/internal/obs"
	"mocha/internal/stats"
)

// AblateDelta evaluates delta-encoded replica transfer: instead of
// shipping the full marshaled replica on every release, the writer ships
// the byte ranges that changed since the version the receiver already
// holds, chained through a bounded per-lock update log. The ablation runs
// a two-site release cycle (UR = 2, so every release disseminates to the
// peer) over a 64K replica under two workloads: a small in-place write
// (the common case entry consistency optimizes for) and a full rewrite
// (the worst case, where the delta degenerates to the full copy and the
// sender must fall back without paying twice).
func AblateDelta(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	const size = 64 * 1024

	type workload struct {
		key     string
		name    string
		rewrite bool
	}
	workloads := []workload{
		{key: "small", name: "small-write (16 B)", rewrite: false},
		{key: "full", name: "full-rewrite", rewrite: true},
	}
	envs := []struct {
		key string
		e   env
	}{
		{key: "lan", e: lanEnv()},
		{key: "wan", e: wanEnv()},
		{key: "cable", e: env{name: "cable modem (home)", profile: netsim.CableModem()}},
	}

	table := stats.NewTable("environment", "workload",
		"bytes/release full", "bytes/release delta", "reduction",
		"release full (ms)", "release delta (ms)")
	metrics := make(map[string]float64)
	var notes []string
	for _, ev := range envs {
		for _, wl := range workloads {
			var bytesPer [2]float64
			var lat [2]time.Duration
			for i, delta := range []bool{false, true} {
				b, l, err := deltaReleaseCycle(cfg, ev.e, size, wl.rewrite, delta)
				if err != nil {
					return Result{}, fmt.Errorf("ablate-delta %s %s delta=%v: %w", ev.key, wl.key, delta, err)
				}
				bytesPer[i] = b
				lat[i] = l
			}
			reduction := 0.0
			if bytesPer[1] > 0 {
				reduction = bytesPer[0] / bytesPer[1]
			}
			table.AddRow(ev.e.name, wl.name,
				fmt.Sprintf("%.0f", bytesPer[0]), fmt.Sprintf("%.0f", bytesPer[1]),
				fmt.Sprintf("%.1fx", reduction),
				stats.Millis(lat[0]), stats.Millis(lat[1]))
			prefix := ev.key + "_" + wl.key
			metrics[prefix+"_bytes_per_release_full"] = bytesPer[0]
			metrics[prefix+"_bytes_per_release_delta"] = bytesPer[1]
			metrics[prefix+"_bytes_reduction_x"] = reduction
			metrics[prefix+"_release_ms_full"] = float64(lat[0]) / float64(time.Millisecond)
			metrics[prefix+"_release_ms_delta"] = float64(lat[1]) / float64(time.Millisecond)
		}
	}
	if r, ok := metrics["wan_small_bytes_reduction_x"]; ok {
		notes = append(notes, fmt.Sprintf(
			"WAN small-write: %.0fx fewer replica bytes on the wire per release", r))
	}
	if r, ok := metrics["wan_full_bytes_reduction_x"]; ok {
		notes = append(notes, fmt.Sprintf(
			"WAN full-rewrite: %.1fx (worth-it check falls back to the full copy, no double send)", r))
	}
	return Result{
		ID:      "ablate-delta",
		Title:   "Delta-encoded replica transfer (64K replica, UR=2 release cycle)",
		Paper:   "the prototype always 'sends the new version of the data'; shipping only the dirty byte ranges against the receiver's version cuts wide-area bytes for small updates",
		Table:   table.String(),
		Notes:   notes,
		Metrics: metrics,
	}, nil
}

// deltaReleaseCycle measures one configuration: bytes of replica-carrying
// frames per release and mean release (Unlock, including dissemination)
// latency, over cfg.Trials cycles after a warmup that brings the peer up
// to date. The custom codec keeps marshaling cost out of the measurement
// (the marshal ablation covers that axis separately).
func deltaReleaseCycle(cfg Config, e env, size int, rewrite, delta bool) (float64, time.Duration, error) {
	return deltaReleaseCycleOpts(cfg, e, size, rewrite, delta, nil)
}

// deltaReleaseCycleOpts is deltaReleaseCycle with an optional metrics
// registry attached to every site (the obs-overhead ablation).
func deltaReleaseCycleOpts(cfg Config, e env, size int, rewrite, delta bool, m *obs.Registry) (float64, time.Duration, error) {
	h, err := newHarnessOpts(cfg, e, core.ModeMNet, 2, harnessOpts{fastCodec: true, delta: delta, metrics: m})
	if err != nil {
		return 0, 0, err
	}
	defer func() { _ = h.Close() }()
	ctx, cancel := benchCtx()
	defer cancel()

	rl, err := h.setupSharedReplica(ctx, 4, "payload", size)
	if err != nil {
		return 0, 0, err
	}
	rl.SetUpdateReplicas(2)
	content := rl.Replicas()[0].Content()

	round := 0
	mutate := func() error {
		round++
		if rewrite {
			data := content.BytesData()
			for i := range data {
				data[i] = byte(i + round)
			}
			return nil
		}
		base := (round * 16) % (size - 16)
		for i := 0; i < 16; i++ {
			if err := content.SetByteAt(base+i, byte(round)); err != nil {
				return err
			}
		}
		return nil
	}
	cycle := func(timed *stats.Sample) error {
		if err := rl.Lock(ctx); err != nil {
			return err
		}
		if err := mutate(); err != nil {
			return err
		}
		start := time.Now()
		if err := rl.Unlock(ctx); err != nil {
			return err
		}
		if timed != nil {
			timed.Add(h.deScale(time.Since(start)))
		}
		return nil
	}

	// Warmup: the first release pushes a full copy (there is no base
	// version at the peer to delta against) and leaves it up to date.
	if err := cycle(nil); err != nil {
		return 0, 0, err
	}
	before := h.replicaBytesSent()
	lat := &stats.Sample{}
	for i := 0; i < h.cfg.Trials; i++ {
		if err := cycle(lat); err != nil {
			return 0, 0, err
		}
	}
	bytesPer := float64(h.replicaBytesSent()-before) / float64(h.cfg.Trials)
	return bytesPer, lat.Mean(), nil
}

// replicaBytesSent totals replica-frame bytes sent by every site.
func (h *harness) replicaBytesSent() int64 {
	var total int64
	for _, n := range h.nodes {
		total += n.ReplicaBytesSent()
	}
	return total
}
