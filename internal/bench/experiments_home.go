package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mocha/internal/check"
	"mocha/internal/core"
	"mocha/internal/eventlog"
	"mocha/internal/marshal"
	"mocha/internal/mnet"
	"mocha/internal/netsim"
	"mocha/internal/obs"
	"mocha/internal/stats"
	"mocha/internal/transport"
	"mocha/internal/wire"
)

// The home-placement ablation measures the availability hole this PR
// closes: in the paper's design every lock is managed by the single home
// site, so a dead home strands its whole lock namespace until an operator
// snapshots state onto a surrogate by hand (core/surrogate.go is exactly
// that manual path). The placement leg spreads lock homes over a
// consistent-hash ring (DESIGN S34), streams each record to its ring
// successor, and lets the successor's monitor promote the shadows when
// the home dies — so the same kill leaves every lock acquirable with no
// operator in the loop. Both legs replay their recorded history through
// the entry-consistency checker: failover that resurrects stale holds or
// loses version floors cannot pass.

// homeParams is the shape of one home-ablation run.
type homeParams struct {
	sites int // cluster size; with placement on, also the ring size
	locks int // lock population spread over the ring
}

// homeParams fills defaults: 6 manager sites sharing 8 locks.
func (c Config) homeParams() homeParams {
	hp := homeParams{sites: c.HomeSites, locks: c.HomeLocks}
	if hp.sites < 3 {
		hp.sites = 6
	}
	if hp.locks < 1 {
		hp.locks = 8
	}
	return hp
}

// Failure-detection pacing for the leg's cluster: the standby monitor
// probes its ring predecessor once per sweep and needs
// three consecutive misses (each bounded by the request timeout), so a
// kill is detected and promoted in roughly 3 × homeReqTimeout.
const (
	homeReqTimeout = 1 * time.Second
	homeLeaseSweep = 250 * time.Millisecond
)

// homeLegResult is one leg's measurement.
type homeLegResult struct {
	total       int           // locks in the namespace
	victimLocks int           // locks homed at the killed site
	acquired    int           // locks acquirable from a survivor after the kill
	stranded    int           // locks no survivor could acquire
	retries     int           // extra acquire attempts spent across all locks
	promoteWait time.Duration // kill-to-promotion latency (zero for the fixed leg)
	promotions  int64
	standbyUpds int64
	migrations  int64
	redirects   int64
	histEvents  int
}

// AblateHome kills a lock-home site under both placement strategies and
// reports how much of the lock namespace survives.
func AblateHome(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	hp := cfg.homeParams()

	fixed, err := homeLeg(cfg, hp, false)
	if err != nil {
		return Result{}, fmt.Errorf("home fixed leg: %w", err)
	}
	ring, err := homeLeg(cfg, hp, true)
	if err != nil {
		return Result{}, fmt.Errorf("home placement leg: %w", err)
	}

	table := stats.NewTable("leg", "locks", "homed at victim", "acquirable after kill", "promotions", "detect+promote")
	table.AddRow("fixed home (paper)",
		fmt.Sprintf("%d", fixed.total), fmt.Sprintf("%d", fixed.victimLocks),
		fmt.Sprintf("%d", fixed.acquired), "-", "-")
	table.AddRow("ring placement + standby",
		fmt.Sprintf("%d", ring.total), fmt.Sprintf("%d", ring.victimLocks),
		fmt.Sprintf("%d", ring.acquired), fmt.Sprintf("%d", ring.promotions),
		fmt.Sprintf("%.1fs", ring.promoteWait.Seconds()))

	metrics := map[string]float64{
		"sites":                       float64(hp.sites),
		"locks":                       float64(hp.locks),
		"fixed_victim_homed_locks":    float64(fixed.victimLocks),
		"fixed_acquirable_after_kill": float64(fixed.acquired),
		"fixed_stranded_after_kill":   float64(fixed.stranded),
		"home_victim_homed_locks":     float64(ring.victimLocks),
		"home_acquirable_after_kill":  float64(ring.acquired),
		"home_stranded_after_kill":    float64(ring.stranded),
		"home_locks_total":            float64(ring.total),
		"standby_promotions":          float64(ring.promotions),
		"standby_updates":             float64(ring.standbyUpds),
		"home_migrations":             float64(ring.migrations),
		"home_redirects":              float64(ring.redirects),
		"home_promote_wait_s":         ring.promoteWait.Seconds(),
		"home_acquire_retries":        float64(ring.retries),
	}

	notes := []string{
		fmt.Sprintf("%d sites, %d locks; each leg kills one lock-home site after the locks are exercised",
			hp.sites, hp.locks),
		fmt.Sprintf("fixed home: %d/%d locks stranded after the home dies (no surrogate started)",
			fixed.stranded, fixed.total),
		fmt.Sprintf("ring placement: %d/%d locks acquirable after killing the site homing %d of them; standby promoted in %.1fs",
			ring.acquired, ring.total, ring.victimLocks, ring.promoteWait.Seconds()),
		"entry-consistency history checker passed on both legs",
	}

	return Result{
		ID:      "ablate-home",
		Title:   "Ablation: consistent-hash lock homes with standby failover",
		Paper:   "the paper manages every lock at the single home site (Section 3), so a dead home strands its locks until an operator hand-starts a surrogate; this ablation measures what ring placement with standby promotion recovers",
		Table:   table.String(),
		Notes:   notes,
		Metrics: metrics,
	}, nil
}

// homeLeg builds a cluster, spreads and exercises the lock population,
// kills one lock-home site, and measures how much of the namespace a
// survivor can still acquire. placement selects the consistent-hash
// mobile namespace; false is the paper's fixed-home baseline.
func homeLeg(cfg Config, hp homeParams, placement bool) (homeLegResult, error) {
	const seed = 7777
	sim := transport.NewSimNetwork(netsim.Config{Profile: netsim.LANFastEthernet().Scaled(cfg.Scale), Seed: seed})
	defer func() { _ = sim.Close() }()

	reg := obs.NewRegistry()
	reg.SetClock(sim.Clock())
	rec := check.NewRecorder(64*hp.locks*hp.sites+8192, sim.Clock())

	directory := make(map[wire.SiteID]string, hp.sites)
	stacks := make(map[wire.SiteID]*transport.SimStack, hp.sites)
	for i := 1; i <= hp.sites; i++ {
		site := wire.SiteID(i)
		stack, err := sim.NewStack(netsim.NodeID(i))
		if err != nil {
			return homeLegResult{}, err
		}
		stacks[site] = stack
		directory[site] = stack.Datagram().LocalAddr()
	}

	nodes := make(map[wire.SiteID]*core.Node, hp.sites)
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	for i := 1; i <= hp.sites; i++ {
		site := wire.SiteID(i)
		ep := mnet.NewEndpoint(stacks[site].Datagram(), mnet.Config{
			Cost:    netsim.Native(),
			Metrics: reg,
			// Short retransmission timing: the kill leaves mnet sends to the
			// victim dangling, and attempts must fail within the per-attempt
			// context rather than the default RTO ladder.
			RTO:        250 * time.Millisecond,
			MaxRetries: 4,
		})
		node, err := core.NewNode(core.Config{
			Site:            site,
			Endpoint:        ep,
			Stack:           stacks[site],
			Directory:       directory,
			IsHome:          site == wire.HomeSite,
			HomePlacement:   placement,
			Codec:           marshal.NewFast(netsim.Native()),
			Cost:            netsim.Native(),
			Mode:            core.ModeMNet,
			RequestTimeout:  homeReqTimeout,
			TransferTimeout: 10 * time.Second,
			DefaultLease:    30 * time.Second,
			LeaseSweep:      homeLeaseSweep,
			Log:             eventlog.Nop(),
			Metrics:         reg,
			History:         rec,
		})
		if err != nil {
			return homeLegResult{}, err
		}
		nodes[site] = node
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Pick the victim before wiring the workload: with placement on it is
	// the non-creator site homing the most locks (the worst survivable
	// kill); the fixed leg kills the home site itself — the kill the
	// paper's design cannot survive.
	lockIDs := make([]wire.LockID, hp.locks)
	for i := range lockIDs {
		lockIDs[i] = wire.LockID(101 + i)
	}
	var res homeLegResult
	res.total = hp.locks
	victim := wire.HomeSite
	if placement {
		bySite := nodes[wire.HomeSite].Ring().LocksOf(lockIDs)
		victim, res.victimLocks = 0, 0
		for i := 2; i <= hp.sites; i++ {
			if n := len(bySite[wire.SiteID(i)]); n > res.victimLocks {
				victim, res.victimLocks = wire.SiteID(i), n
			}
		}
		if victim == 0 {
			return res, fmt.Errorf("every lock hashed to site 1; grow the lock population past %d", hp.locks)
		}
	} else {
		res.victimLocks = hp.locks
	}

	// Per lock: a worker on some non-creator site exercises it once
	// (acquire, write, release), then a prober on a site guaranteed to
	// survive the kill acquires it once so its replica is up to date —
	// post-kill attempts then measure pure lock acquisition, not the data
	// path. With placement the prober lives at site 1 (victim ≠ 1); the
	// fixed leg probes from the worker site (victim = site 1).
	workers := make([]*core.ReplicaLock, hp.locks)
	probers := make([]*core.ReplicaLock, hp.locks)
	for i, lock := range lockIDs {
		name := fmt.Sprintf("home-data-%d", i)
		r, err := nodes[wire.HomeSite].CreateReplica(name, marshal.Bytes(make([]byte, 64)), hp.sites)
		if err != nil {
			return res, err
		}
		workSite := wire.SiteID(2 + i%(hp.sites-1))
		wr, err := nodes[workSite].AttachReplica(name, marshal.Bytes(nil))
		if err != nil {
			return res, err
		}
		// The creator's association registers the initial content as the
		// lock's first up-to-date version; without it the workers' attached
		// replicas have nothing to transfer.
		creator := nodes[wire.HomeSite].NewHandle(fmt.Sprintf("creator-%d", i)).ReplicaLock(lock)
		if err := creator.Associate(ctx, r); err != nil {
			return res, err
		}
		workers[i] = nodes[workSite].NewHandle(fmt.Sprintf("worker-%d", i)).ReplicaLock(lock)
		if err := workers[i].Associate(ctx, wr); err != nil {
			return res, err
		}
		if placement {
			probers[i] = creator
		} else {
			probers[i] = nodes[workSite].NewHandle(fmt.Sprintf("prober-%d", i)).ReplicaLock(lock)
			if err := probers[i].Associate(ctx, wr); err != nil {
				return res, err
			}
		}
	}
	// Let registrations (and their standby snapshots) land.
	time.Sleep(500 * time.Millisecond)

	for i := range lockIDs {
		if err := workers[i].Lock(ctx); err != nil {
			return res, fmt.Errorf("worker acquire lock %d: %w", lockIDs[i], err)
		}
		workers[i].Replicas()[0].Content().BytesData()[0] = byte(i + 1)
		if err := workers[i].Unlock(ctx); err != nil {
			return res, fmt.Errorf("worker release lock %d: %w", lockIDs[i], err)
		}
		if err := probers[i].Lock(ctx); err != nil {
			return res, fmt.Errorf("prober warm acquire lock %d: %w", lockIDs[i], err)
		}
		if err := probers[i].Unlock(ctx); err != nil {
			return res, fmt.Errorf("prober warm release lock %d: %w", lockIDs[i], err)
		}
	}

	// Fail-stop the victim.
	killedAt := time.Now()
	_ = nodes[victim].Close()
	sim.Kill(netsim.NodeID(victim))

	if placement {
		// Wait for the victim's ring successor to declare it dead and
		// promote the shadows (3 missed probes at the sweep cadence).
		deadline := time.Now().Add(30 * time.Second)
		for reg.CounterValue(obs.CStandbyPromotions) == 0 {
			if time.Now().After(deadline) {
				return res, fmt.Errorf("standby never promoted the dead home's locks within %s", time.Since(killedAt))
			}
			time.Sleep(50 * time.Millisecond)
		}
		res.promoteWait = time.Since(killedAt)
	}

	// Attempt every lock from its surviving prober. The placement leg
	// retries within a patience window (the HomeMoved broadcast races the
	// first attempt); the fixed leg gets one bounded attempt per lock —
	// with the home dead and no surrogate started, it can only time out.
	patience, attempt := time.Duration(0), 4*time.Second
	if placement {
		patience, attempt = 30*time.Second, 3*time.Second
	}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := range lockIDs {
		wg.Add(1)
		go func(prl *core.ReplicaLock) {
			defer wg.Done()
			ok, tries := tryAcquire(prl, patience, attempt)
			mu.Lock()
			if ok {
				res.acquired++
			} else {
				res.stranded++
			}
			res.retries += tries - 1
			mu.Unlock()
		}(probers[i])
	}
	wg.Wait()

	res.promotions = reg.CounterValue(obs.CStandbyPromotions)
	res.standbyUpds = reg.CounterValue(obs.CStandbyUpdates)
	res.migrations = reg.CounterValue(obs.CHomeMigrations)
	res.redirects = reg.CounterValue(obs.CHomeRedirects)

	// A leg that does not show its strategy's availability signature is a
	// broken harness, not a result.
	if placement {
		if res.stranded != 0 {
			return res, fmt.Errorf("placement leg stranded %d/%d locks after killing site %d (homing %d)",
				res.stranded, res.total, victim, res.victimLocks)
		}
		if res.promotions == 0 {
			return res, fmt.Errorf("placement leg recovered without a standby promotion (victim homed no locks?)")
		}
	} else {
		if res.stranded != res.total {
			return res, fmt.Errorf("fixed leg acquired %d/%d locks with the home dead (stranding not reproduced)",
				res.acquired, res.total)
		}
	}

	// Quiesce, then replay the history through the entry-consistency
	// checker: failover that resurrects stale holds or loses version
	// floors must not count as availability.
	for _, n := range nodes {
		_ = n.Close()
	}
	nodes = map[wire.SiteID]*core.Node{}
	if d := rec.Dropped(); d > 0 {
		return res, fmt.Errorf("history recorder overflowed by %d events; raise its capacity", d)
	}
	events := rec.Events()
	res.histEvents = len(events)
	if v := check.Check(events); v != nil {
		return res, fmt.Errorf("entry-consistency violation: %v", v)
	}
	return res, nil
}

// tryAcquire attempts one bounded Lock/Unlock cycle, retrying until the
// patience window closes. It reports success and the attempts spent.
func tryAcquire(prl *core.ReplicaLock, patience, attempt time.Duration) (bool, int) {
	deadline := time.Now().Add(patience)
	tries := 0
	for {
		tries++
		ctx, cancel := context.WithTimeout(context.Background(), attempt)
		err := prl.Lock(ctx)
		cancel()
		if err == nil {
			ctx, cancel := context.WithTimeout(context.Background(), attempt)
			_ = prl.Unlock(ctx)
			cancel()
			return true, tries
		}
		if time.Now().After(deadline) {
			return false, tries
		}
	}
}
