package bench

import (
	"fmt"
	"io"
	"time"

	"mocha/internal/core"
	"mocha/internal/marshal"
	"mocha/internal/mnet"
	"mocha/internal/netsim"
	"mocha/internal/stats"
	"mocha/internal/transport"
)

// AppBreakdown regenerates the Section 5.1 measurement: the cost of
// keeping the table-setting application's replicas consistent in the
// wide-area environment, broken into marshaling, lock acquisition, and
// transfer, as the paper reports (3 + 19 + 44 = 66 ms).
func AppBreakdown(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	h, err := newHarness(cfg, wanEnv(), core.ModeMNet, 2)
	if err != nil {
		return Result{}, err
	}
	defer func() { _ = h.Close() }()
	ctx, cancel := benchCtx()
	defer cancel()

	// The application's shared state: three index replicas and a comment
	// string under one ReplicaLock (Figure 3).
	home := h.nodes[1]
	homeHnd := home.NewHandle("home-gui")
	homeLock := homeHnd.ReplicaLock(1)
	names := []string{"flatwareIndex", "plateIndex", "glasswareIndex"}
	var homeReplicas []*core.Replica
	for _, name := range names {
		r, err := home.CreateReplica(name, marshal.Ints(make([]int32, 5)), 2)
		if err != nil {
			return Result{}, err
		}
		if err := homeLock.Associate(ctx, r); err != nil {
			return Result{}, err
		}
		homeReplicas = append(homeReplicas, r)
	}
	text, err := home.CreateReplica("text", marshal.Object(marshal.NewStringValue("Hello World")), 2)
	if err != nil {
		return Result{}, err
	}
	if err := homeLock.Associate(ctx, text); err != nil {
		return Result{}, err
	}

	remote := h.nodes[2]
	remoteHnd := remote.NewHandle("associate-gui")
	remoteLock := remoteHnd.ReplicaLock(1)
	for _, name := range names {
		r, err := remote.AttachReplica(name, marshal.Ints(nil))
		if err != nil {
			return Result{}, err
		}
		if err := remoteLock.Associate(ctx, r); err != nil {
			return Result{}, err
		}
	}
	rtext, err := remote.AttachReplica("text", marshal.Object(marshal.NewStringValue("")))
	if err != nil {
		return Result{}, err
	}
	if err := remoteLock.Associate(ctx, rtext); err != nil {
		return Result{}, err
	}
	time.Sleep(h.settleDelay())

	// Marshaling cost of the app's four replicas.
	marshalSample, err := h.measure(true, func() error {
		for _, r := range homeReplicas {
			if _, err := h.codec.Marshal(r.Content()); err != nil {
				return err
			}
		}
		_, err := h.codec.Marshal(text.Content())
		return err
	})
	if err != nil {
		return Result{}, err
	}

	// Warm the remote copy, then measure a VERSIONOK lock acquisition.
	if err := remoteLock.Lock(ctx); err != nil {
		return Result{}, err
	}
	if err := remoteLock.Unlock(ctx); err != nil {
		return Result{}, err
	}
	lockSample := &stats.Sample{}
	for i := 0; i < cfg.Trials+1; i++ {
		start := time.Now()
		if err := remoteLock.Lock(ctx); err != nil {
			return Result{}, err
		}
		elapsed := time.Since(start)
		if err := remoteLock.Unlock(ctx); err != nil {
			return Result{}, err
		}
		if i > 0 {
			lockSample.Add(h.deScale(elapsed))
		}
	}

	// Lock acquisition with a pending transfer: home updates, remote
	// acquires. The transfer component is the difference from the
	// VERSIONOK acquisition.
	xferTotal := &stats.Sample{}
	for i := 0; i < cfg.Trials+1; i++ {
		if err := homeLock.Lock(ctx); err != nil {
			return Result{}, err
		}
		homeReplicas[0].Content().IntsData()[0]++
		if err := homeLock.Unlock(ctx); err != nil {
			return Result{}, err
		}
		start := time.Now()
		if err := remoteLock.Lock(ctx); err != nil {
			return Result{}, err
		}
		elapsed := time.Since(start)
		if err := remoteLock.Unlock(ctx); err != nil {
			return Result{}, err
		}
		if i > 0 {
			xferTotal.Add(h.deScale(elapsed))
		}
	}

	marshalMs := marshalSample.Mean()
	lockMs := lockSample.Mean()
	transferMs := xferTotal.Mean() - lockMs
	if transferMs < 0 {
		transferMs = 0
	}
	total := marshalMs + lockMs + transferMs

	table := stats.NewTable("component", "measured (ms)", "paper (ms)")
	table.AddRow("marshaling", stats.Millis(marshalMs), "3")
	table.AddRow("lock acquisition", stats.Millis(lockMs), "19")
	table.AddRow("transfer", stats.Millis(transferMs), "44")
	table.AddRow("total", stats.Millis(total), "66")
	return Result{
		ID:    "app",
		Title: "Consistency cost of the table-setting coordinator's replicas (WAN)",
		Paper: "marshal 3 ms + lock 19 ms + transfer 44 ms = 66 ms total, 'suitable for this type of application'",
		Table: table.String(),
		Notes: []string{"transfer is the lock-with-pending-update acquisition minus the VERSIONOK acquisition"},
	}, nil
}

// SmallMessages regenerates the Section 5 claim that Mocha's network
// library is about twice as fast as TCP for messages under 256 bytes,
// because it avoids connection setup and teardown.
func SmallMessages(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	cost := netsim.JDK1().Scaled(cfg.Scale)
	profile := netsim.LANFastEthernet().Scaled(cfg.Scale)

	sim := transport.NewSimNetwork(netsim.Config{Profile: profile, Seed: 5})
	defer func() { _ = sim.Close() }()
	s1, err := sim.NewStack(1)
	if err != nil {
		return Result{}, err
	}
	s2, err := sim.NewStack(2)
	if err != nil {
		return Result{}, err
	}
	e1 := mnet.NewEndpoint(s1.Datagram(), mnet.Config{Cost: cost, RTO: 2 * time.Second})
	e2 := mnet.NewEndpoint(s2.Datagram(), mnet.Config{Cost: cost, RTO: 2 * time.Second})
	defer func() { _ = e1.Close(); _ = e2.Close() }()

	sender, err := e1.OpenPort(9)
	if err != nil {
		return Result{}, err
	}
	sink, err := e2.OpenPort(5)
	if err != nil {
		return Result{}, err
	}
	sink.SetHandler(func(mnet.Message) {})

	h := &harness{cfg: cfg}
	ctx, cancel := benchCtx()
	defer cancel()

	table := stats.NewTable("size (B)", "mnet (ms)", "tcp fresh-conn (ms)", "tcp persistent (ms)", "mnet vs fresh")
	var notes []string
	for _, size := range []int{64, 128, 256} {
		payload := make([]byte, size)

		mnetSample, err := h.measure(true, func() error {
			return sender.Send(ctx, e2.PortAddr(5), payload)
		})
		if err != nil {
			return Result{}, fmt.Errorf("smallmsg mnet: %w", err)
		}

		freshSample, err := h.measure(true, func() error {
			return streamSendFresh(s1, s2, cost, payload)
		})
		if err != nil {
			return Result{}, fmt.Errorf("smallmsg fresh: %w", err)
		}

		persistent, err := newPersistentStream(s1, s2)
		if err != nil {
			return Result{}, err
		}
		persistentSample, err := h.measure(true, func() error {
			return persistent.send(cost, payload)
		})
		persistent.close()
		if err != nil {
			return Result{}, fmt.Errorf("smallmsg persistent: %w", err)
		}

		ratio := float64(freshSample.Mean()) / float64(mnetSample.Mean())
		table.AddRow(size,
			stats.Millis(mnetSample.Mean()),
			stats.Millis(freshSample.Mean()),
			stats.Millis(persistentSample.Mean()),
			fmt.Sprintf("%.1fx", ratio))
		if size == 256 {
			notes = append(notes, fmt.Sprintf("at 256 B, MNet is %.1fx faster than per-message TCP connections", ratio))
		}
	}
	return Result{
		ID:    "smallmsg",
		Title: "Small-message cost: MNet library vs TCP",
		Paper: "MNet 'approximately twice as fast as TCP for sending small (i.e., less than 256 byte) messages'",
		Table: table.String(),
		Notes: notes,
	}, nil
}

// streamSendFresh sends one payload over a fresh stream connection,
// charging the modelled setup, write, and teardown costs, and waits for a
// one-byte receiver acknowledgment.
func streamSendFresh(from, to transport.Stack, cost netsim.CostModel, payload []byte) error {
	ln, err := to.ListenStream()
	if err != nil {
		return err
	}
	defer func() { _ = ln.Close() }()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer func() { _ = c.Close() }()
		buf := make([]byte, len(payload))
		if _, err := io.ReadFull(c, buf); err != nil {
			return
		}
		_, _ = c.Write([]byte{1})
	}()

	conn, err := from.DialStream(ln.Addr())
	if err != nil {
		return err
	}
	defer func() {
		netsim.Charge(cost.StreamTeardown)
		_ = conn.Close()
	}()
	netsim.Charge(cost.StreamSetup)
	netsim.Charge(cost.StreamWriteCost(len(payload)))
	if _, err := conn.Write(payload); err != nil {
		return err
	}
	var ack [1]byte
	_ = transport.SetReadDeadlineConn(conn, 30*time.Second)
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return err
	}
	return nil
}

// persistentStream reuses one connection for many sends.
type persistentStream struct {
	conn transport.Conn
	ln   transport.Listener
	done chan struct{}
}

func newPersistentStream(from, to transport.Stack) (*persistentStream, error) {
	ln, err := to.ListenStream()
	if err != nil {
		return nil, err
	}
	ps := &persistentStream{ln: ln, done: make(chan struct{})}
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer func() { _ = c.Close() }()
		buf := make([]byte, 4096)
		for {
			select {
			case <-ps.done:
				return
			default:
			}
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if n > 0 {
				if _, err := c.Write([]byte{1}); err != nil {
					return
				}
			}
		}
	}()
	conn, err := from.DialStream(ln.Addr())
	if err != nil {
		_ = ln.Close()
		return nil, err
	}
	ps.conn = conn
	return ps, nil
}

func (ps *persistentStream) send(cost netsim.CostModel, payload []byte) error {
	netsim.Charge(cost.StreamWriteCost(len(payload)))
	if _, err := ps.conn.Write(payload); err != nil {
		return err
	}
	var ack [1]byte
	_ = transport.SetReadDeadlineConn(ps.conn, 30*time.Second)
	_, err := io.ReadFull(ps.conn, ack[:])
	return err
}

func (ps *persistentStream) close() {
	close(ps.done)
	if ps.conn != nil {
		_ = ps.conn.Close()
	}
	_ = ps.ln.Close()
}

// URSweep measures the cost of one full consistency cycle (lock, modify,
// release-with-dissemination) as UR grows — the availability/overhead
// trade-off of Section 4: "when UR = k, the value will be sent to k nodes
// even when it is not required by the consistency protocols."
func URSweep(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	h, err := newHarness(cfg, wanEnv(), core.ModeMNet, cfg.MaxSites+1)
	if err != nil {
		return Result{}, err
	}
	defer func() { _ = h.Close() }()
	ctx, cancel := benchCtx()
	defer cancel()

	rl, err := h.setupSharedReplica(ctx, 3, "precious", 4*1024)
	if err != nil {
		return Result{}, err
	}

	table := stats.NewTable("UR", "release cycle (ms)", "marginal cost of next replica (ms)")
	var notes []string
	means := make([]time.Duration, 0, cfg.MaxSites)
	for k := 1; k <= cfg.MaxSites; k++ {
		rl.SetUpdateReplicas(k)
		sample, err := h.measure(k == 1, func() error {
			if err := rl.Lock(ctx); err != nil {
				return err
			}
			return rl.Unlock(ctx)
		})
		if err != nil {
			return Result{}, err
		}
		means = append(means, sample.Mean())
	}
	for k := 1; k <= cfg.MaxSites; k++ {
		marginal := "-"
		if k >= 2 {
			marginal = stats.Millis(means[k-1] - means[k-2])
		}
		table.AddRow(k, stats.Millis(means[k-1]), marginal)
	}
	// The paper's "1 to 2 approximately doubles" statement is about the
	// dissemination series of Figure 12 (maintaining 1 vs 2 up-to-date
	// replicas doubles the transfer work); report the matching ratio:
	// dissemination cost alone is the cycle cost minus the UR=1 baseline.
	if cfg.MaxSites >= 3 {
		d2 := means[1] - means[0] // dissemination to 1 extra replica
		d3 := means[2] - means[0] // dissemination to 2 extra replicas
		if d2 > 0 {
			notes = append(notes, fmt.Sprintf(
				"dissemination work for 2 extra up-to-date replicas is %.2fx that for 1 (paper: ~2x per doubling)",
				float64(d3)/float64(d2)))
		}
	}
	return Result{
		ID:    "ur",
		Title: "Availability cost: release cycle vs number of up-to-date replicas (WAN, 4K)",
		Paper: "increasing the number of up-to-date 4K replicas from 1 to 2 approximately doubles the consistency maintenance (dissemination) overhead",
		Table: table.String(),
		Notes: notes,
	}, nil
}

// AblateMarshal compares the JDK 1.1 marshaling path against the "custom
// marshaling library that is more efficient for our needs" the paper
// plans as future work.
func AblateMarshal(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	java := marshal.NewJavaStyle(netsim.JDK1().Scaled(cfg.Scale))
	fast := marshal.NewFast(netsim.JDK1().FastMarshal().Scaled(cfg.Scale))
	h := &harness{cfg: cfg}

	table := stats.NewTable("replica size", "jdk1-generic (ms)", "mocha-custom (ms)", "speedup")
	for _, kb := range []int{1, 4, 16, 64, 256} {
		content := marshal.Bytes(make([]byte, kb*1024))
		javaSample, err := h.measure(true, func() error {
			_, err := java.Marshal(content)
			return err
		})
		if err != nil {
			return Result{}, err
		}
		fastSample, err := h.measure(true, func() error {
			_, err := fast.Marshal(content)
			return err
		})
		if err != nil {
			return Result{}, err
		}
		table.AddRow(fmt.Sprintf("%dK", kb),
			stats.Millis(javaSample.Mean()),
			stats.Millis(fastSample.Mean()),
			fmt.Sprintf("%.0fx", float64(javaSample.Mean())/float64(fastSample.Mean())))
	}
	return Result{
		ID:    "ablate-marshal",
		Title: "Marshaling: JDK 1.1 generic constructs vs custom library",
		Paper: "'In the future, we plan on providing a custom marshaling library that is more efficient for our needs.'",
		Table: table.String(),
	}, nil
}

// AblateAdaptive evaluates the adaptive transfer policy the paper's
// results imply: use MNet below the crossover size, the hybrid stream
// above it. The adaptive mode should track the winner at every size.
func AblateAdaptive(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	const fanout = 3
	sub := cfg
	sub.MaxSites = fanout

	table := stats.NewTable("size", "basic (ms)", "hybrid (ms)", "adaptive (ms)")
	var notes []string
	for _, kb := range []int{1, 4, 256} {
		spec := figSpec{e: wanEnv(), sizeK: kb}
		var means [3]time.Duration
		for i, mode := range []core.TransferMode{core.ModeMNet, core.ModeHybrid, core.ModeAdaptive} {
			series, err := disseminationSeries(sub, spec, mode)
			if err != nil {
				return Result{}, fmt.Errorf("adaptive %dK %s: %w", kb, mode, err)
			}
			means[i] = series[fanout-1].mean()
		}
		table.AddRow(fmt.Sprintf("%dK", kb), stats.Millis(means[0]), stats.Millis(means[1]), stats.Millis(means[2]))
		best := means[0]
		if means[1] < best {
			best = means[1]
		}
		if float64(means[2]) <= 1.25*float64(best) {
			notes = append(notes, fmt.Sprintf("%dK: adaptive tracks the better protocol", kb))
		} else {
			notes = append(notes, fmt.Sprintf("%dK: adaptive is %.0f%% off the better protocol", kb,
				100*(float64(means[2])/float64(best)-1)))
		}
	}
	return Result{
		ID:    "ablate-adaptive",
		Title: fmt.Sprintf("Adaptive protocol selection (WAN, %d sites)", fanout),
		Paper: "implied by Figures 9-14: the winning protocol depends on replica size",
		Table: table.String(),
		Notes: notes,
	}, nil
}

// CableModemEnv evaluates the deployment the paper's conclusion reports as
// ongoing work: "a more accurate home service environment, namely, a
// Windows 95 PC connected via a cable modem to a Unix workstation." It
// reruns the Table 1 lock measurement and a small-replica transfer on the
// cable-modem profile and compares against the campus WAN.
func CableModemEnv(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	cable := env{name: "cable modem (home)", profile: netsim.CableModem()}

	table := stats.NewTable("environment", "lock acquire (ms)", "1K transfer to 1 site (ms)")
	for _, e := range []env{wanEnv(), cable} {
		h, err := newHarness(cfg, e, core.ModeMNet, 2)
		if err != nil {
			return Result{}, err
		}
		lockSample, err := lockLatency(h)
		if err != nil {
			_ = h.Close()
			return Result{}, err
		}
		_ = h.Close()

		series, err := disseminationSeriesOpts(Config{Scale: cfg.Scale, Trials: cfg.Trials, MaxSites: 1},
			figSpec{e: e, sizeK: 1}, core.ModeMNet, harnessOpts{})
		if err != nil {
			return Result{}, err
		}
		table.AddRow(e.name, stats.Millis(lockSample.Mean()), stats.Millis(series[0].mean()))
	}
	return Result{
		ID:    "cablemodem",
		Title: "Home-service environment: cable modem vs campus WAN",
		Paper: "conclusion: 'evaluating the system in a more accurate home service environment, namely, a Windows 95 PC connected via a cable modem'",
		Table: table.String(),
		Notes: []string{"the cable-modem path adds propagation latency and loses bandwidth; lock traffic degrades mildly, bulk transfer more"},
	}, nil
}

// AblateReuse evaluates the connection-reuse extension: the paper blames
// the hybrid protocol's small-replica losses on "the higher connection and
// tear-down overheads associated with the hybrid approach", so caching
// connections should let the stream path win even at 1K.
func AblateReuse(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	const fanout = 3
	sub := cfg
	sub.MaxSites = fanout

	table := stats.NewTable("size", "basic (ms)", "hybrid (ms)", "hybrid+reuse (ms)")
	var notes []string
	for _, kb := range []int{1, 4} {
		spec := figSpec{e: wanEnv(), sizeK: kb}
		basic, err := disseminationSeriesOpts(sub, spec, core.ModeMNet, harnessOpts{})
		if err != nil {
			return Result{}, err
		}
		hybrid, err := disseminationSeriesOpts(sub, spec, core.ModeHybrid, harnessOpts{})
		if err != nil {
			return Result{}, err
		}
		reuse, err := disseminationSeriesOpts(sub, spec, core.ModeHybrid, harnessOpts{streamReuse: true})
		if err != nil {
			return Result{}, err
		}
		b, hy, re := basic[fanout-1].mean(), hybrid[fanout-1].mean(), reuse[fanout-1].mean()
		table.AddRow(fmt.Sprintf("%dK", kb), stats.Millis(b), stats.Millis(hy), stats.Millis(re))
		if kb == 1 && re < b && hy > b {
			notes = append(notes, "with connection reuse the stream path wins even at 1K, where the paper's per-transfer hybrid loses")
		}
	}
	return Result{
		ID:    "ablate-reuse",
		Title: fmt.Sprintf("Hybrid protocol with cached connections (WAN, %d sites)", fanout),
		Paper: "the hybrid protocol's 1K losses are 'attributable to the higher connection and tear-down overheads'; reuse removes them",
		Table: table.String(),
		Notes: notes,
	}, nil
}

// AblateFanout compares the paper prototype's strictly sequential update
// dissemination against the concurrent fan-out extension: with k remote
// sharers, the sequential walk pays k full round trips back to back, while
// the parallel path overlaps them and pays only the shared sender-uplink
// serialization plus one round trip.
func AblateFanout(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	const sizeK = 4

	table := stats.NewTable("environment", "sites", "sequential (ms)", "parallel (ms)", "speedup")
	var notes []string
	metrics := make(map[string]float64)
	envKeys := map[string]string{lanEnv().name: "lan", wanEnv().name: "wan"}
	for _, e := range []env{lanEnv(), wanEnv()} {
		spec := figSpec{e: e, sizeK: sizeK}
		seq, err := disseminationSeriesOpts(cfg, spec, core.ModeMNet, harnessOpts{})
		if err != nil {
			return Result{}, err
		}
		par, err := disseminationSeriesOpts(cfg, spec, core.ModeMNet, harnessOpts{fanout: -1})
		if err != nil {
			return Result{}, err
		}
		for k := 1; k <= cfg.MaxSites; k++ {
			s, p := seq[k-1].mean(), par[k-1].mean()
			table.AddRow(e.name, fmt.Sprintf("%d", k), stats.Millis(s), stats.Millis(p),
				fmt.Sprintf("%.2fx", float64(s)/float64(p)))
		}
		s, p := seq[cfg.MaxSites-1].mean(), par[cfg.MaxSites-1].mean()
		notes = append(notes, fmt.Sprintf("%s at %d sites: %.2fx", e.name, cfg.MaxSites, float64(s)/float64(p)))
		key := envKeys[e.name]
		metrics[key+"_sequential_ms"] = float64(s) / float64(time.Millisecond)
		metrics[key+"_parallel_ms"] = float64(p) / float64(time.Millisecond)
		metrics[key+"_speedup_x"] = float64(s) / float64(p)
	}
	return Result{
		ID:      "ablate-fanout",
		Title:   fmt.Sprintf("Parallel dissemination fan-out (%dK updates)", sizeK),
		Paper:   "section 4's release 'sends the new version of the data to all of the replicated sites' one site at a time; overlapping the pushes hides per-site latency without changing the protocol",
		Table:   table.String(),
		Notes:   notes,
		Metrics: metrics,
	}, nil
}
