package bench

import (
	"strings"
	"testing"
)

// TestAblateTreeSmoke runs the dissemination-tree ablation at a CI-sized
// shape: a real regional-WAN cluster, both legs, probe seeding, history
// checker on. It pins the structural claims — the tree leg's uplink cost
// is O(regions) while the flat leg's is O(sharers) — rather than an exact
// latency ratio, which at this tiny shape is noise.
func TestAblateTreeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("tree harness smoke is seconds-long")
	}
	cfg := Config{
		TreeSites:   13, // 12 sharers over 3 regions, 4 sites per region
		TreeRegions: 3,
		Trials:      2,
	}
	res, err := AblateTree(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "ablate-tree" {
		t.Fatalf("result ID = %q, want ablate-tree", res.ID)
	}
	for _, leg := range []string{"flat fan-out", "relay tree"} {
		if !strings.Contains(res.Table, leg) {
			t.Fatalf("missing %q leg:\n%s", leg, res.Table)
		}
	}
	for _, key := range []string{
		"flat_pushes_per_release", "tree_pushes_per_release",
		"flat_release_ms", "tree_release_ms", "speedup_x",
		"tree_relay_pushes", "tree_relay_acks", "tree_buckets",
		"tree_probe_samples",
	} {
		if _, ok := res.Metrics[key]; !ok {
			t.Errorf("missing metric %q", key)
		}
	}
	// Flat pushes once per sharer; the tree pushes once per locality
	// bucket, which cannot exceed the region count.
	if got, want := res.Metrics["flat_pushes_per_release"], float64(cfg.TreeSites-1); got != want {
		t.Errorf("flat pushes/release = %.1f, want %.1f (one per sharer)", got, want)
	}
	if got := res.Metrics["tree_pushes_per_release"]; got > float64(cfg.TreeRegions) {
		t.Errorf("tree pushes/release = %.1f, want <= %d (one per region)", got, cfg.TreeRegions)
	}
	if res.Metrics["tree_relay_fallbacks"] != 0 {
		t.Errorf("healthy run took %v relay fallbacks", res.Metrics["tree_relay_fallbacks"])
	}
	if res.Metrics["tree_probe_samples"] < float64(cfg.TreeSites-1) {
		t.Errorf("probe phase absorbed %.0f RTT samples, want >= %d",
			res.Metrics["tree_probe_samples"], cfg.TreeSites-1)
	}
}
