package bench

import (
	"strings"
	"testing"
)

// tinyCfg runs experiments fast: 2% scale, one trial, three-site fan-out.
func tinyCfg() Config {
	return Config{Scale: 0.02, Trials: 1, MaxSites: 3}
}

func TestAllExperimentsRegistered(t *testing.T) {
	want := []string{
		"table1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"app", "smallmsg", "ur", "cablemodem",
		"ablate-marshal", "ablate-adaptive", "ablate-reuse", "ablate-fanout",
		"ablate-delta", "ablate-syncstall", "ablate-obs", "load", "ablate-tree",
		"ablate-home", "ablate-store",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("got %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%q) failed", id)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Error("Lookup of unknown id succeeded")
	}
}

func TestTable1Shape(t *testing.T) {
	res, err := Table1(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table, "LAN") || !strings.Contains(res.Table, "WAN") {
		t.Fatalf("table:\n%s", res.Table)
	}
}

func TestFig8Shape(t *testing.T) {
	res, err := Fig8(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table, "256K") {
		t.Fatalf("table:\n%s", res.Table)
	}
}

func TestFig9SmallScale(t *testing.T) {
	// 1K: the basic protocol must win at the full fan-out.
	res, err := figure(9)(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(res.Table), "\n")
	last := lines[len(lines)-1]
	if !strings.HasSuffix(strings.TrimSpace(last), "basic") {
		t.Fatalf("1K LAN winner at max sites should be basic:\n%s", res.Table)
	}
}

func TestFig13SmallScale(t *testing.T) {
	// 256K: the hybrid protocol must win at the full fan-out.
	cfg := tinyCfg()
	cfg.MaxSites = 2
	res, err := figure(13)(cfg)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(res.Table), "\n")
	last := lines[len(lines)-1]
	if !strings.HasSuffix(strings.TrimSpace(last), "hybrid") {
		t.Fatalf("256K LAN winner should be hybrid:\n%s", res.Table)
	}
}

func TestAppBreakdownShape(t *testing.T) {
	res, err := AppBreakdown(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, comp := range []string{"marshaling", "lock acquisition", "transfer", "total"} {
		if !strings.Contains(res.Table, comp) {
			t.Fatalf("missing %q:\n%s", comp, res.Table)
		}
	}
}

func TestSmallMessagesShape(t *testing.T) {
	res, err := SmallMessages(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table, "256") {
		t.Fatalf("table:\n%s", res.Table)
	}
}

func TestURSweepShape(t *testing.T) {
	res, err := URSweep(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table, "UR") {
		t.Fatalf("table:\n%s", res.Table)
	}
}

func TestAblations(t *testing.T) {
	if _, err := AblateMarshal(tinyCfg()); err != nil {
		t.Fatal(err)
	}
	if _, err := AblateAdaptive(tinyCfg()); err != nil {
		t.Fatal(err)
	}
	res, err := AblateReuse(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table, "hybrid+reuse") {
		t.Fatalf("table:\n%s", res.Table)
	}
	fo, err := AblateFanout(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fo.Table, "sequential") || !strings.Contains(fo.Table, "parallel") {
		t.Fatalf("table:\n%s", fo.Table)
	}
}

// TestAblateDelta pins the headline result: delta transfer must cut the
// WAN small-write bytes-on-wire by at least 2x, and the full-rewrite
// fallback must not send more than ~the full copy.
func TestAblateDelta(t *testing.T) {
	res, err := AblateDelta(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table, "small-write") || !strings.Contains(res.Table, "full-rewrite") {
		t.Fatalf("table:\n%s", res.Table)
	}
	if r := res.Metrics["wan_small_bytes_reduction_x"]; r < 2 {
		t.Fatalf("WAN small-write bytes reduction %.2fx, want >= 2x\n%s", r, res.Table)
	}
	full := res.Metrics["wan_full_bytes_per_release_full"]
	if d := res.Metrics["wan_full_bytes_per_release_delta"]; full > 0 && d > 1.1*full {
		t.Fatalf("full-rewrite with delta sent %.0f B/release vs %.0f baseline: fallback paid twice", d, full)
	}
}

// TestAblateSyncStall pins the headline result: with one dead peer
// forcing transfer recoveries, the pre-S30 serial sync thread must
// inflate unrelated-lock grant latency by a clear multiple of what the
// sharded non-blocking manager shows. (The ~2x-of-healthy bound is
// checked against full-scale numbers in EXPERIMENTS.md; at tiny scale the
// healthy baseline is too noise-dominated to compare against.)
func TestAblateSyncStall(t *testing.T) {
	res, err := AblateSyncStall(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	serial := res.Metrics["dead_serial_grant_ms"]
	sharded := res.Metrics["dead_sharded_grant_ms"]
	if serial < 3*sharded {
		t.Fatalf("serial sync thread grant latency %.2f ms not clearly above sharded %.2f ms:\n%s",
			serial, sharded, res.Table)
	}
}

func TestCableModemEnv(t *testing.T) {
	res, err := CableModemEnv(tinyCfg())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table, "cable modem") {
		t.Fatalf("table:\n%s", res.Table)
	}
}
