package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mocha/internal/check"
	"mocha/internal/core"
	"mocha/internal/eventlog"
	"mocha/internal/marshal"
	"mocha/internal/mnet"
	"mocha/internal/netsim"
	"mocha/internal/obs"
	"mocha/internal/overlay"
	"mocha/internal/stats"
	"mocha/internal/transport"
	"mocha/internal/wire"
)

// The dissemination-tree ablation measures what the locality-aware relay
// overlay (DESIGN S33) buys at wide-area scale: hundreds of sites spread
// over a regional WAN geography share one update-mode replica, and every
// release must push the new version to all of them. The flat leg is the
// paper's baseline — the releaser pushes once per sharer, so O(sharers)
// replica-sized frames serialize through one uplink. The tree leg probes
// the cluster once to seed the overlay's RTT map from the acquire spans
// the observability plane already records, then releases through the
// relay tree: one push per locality bucket, re-fanned over cheap local
// links by the bucket relays. Both legs run the entry-consistency history
// checker, so a latency win that loses versions cannot pass.

// treeProbeWave bounds how many sites probe the home concurrently. The
// probe's request RTT doubles as the overlay's geography signal, so waves
// stay small enough that reply serialization on the home uplink cannot
// smear one region's RTT into the next bucket, and well under the obs
// span ring (256) that SeedFromSpans reads between waves.
const treeProbeWave = 16

// treeParams is the shape of one tree-ablation run.
type treeParams struct {
	sites    int // cluster size including the home/releasing site
	regions  int // locality clusters in the simulated WAN geography
	payload  int // replica size in bytes
	releases int // measured release cycles per leg (after one warmup)
}

// treeParams fills defaults: the ISSUE's floor of 200 sites across 8
// regions pushing a 4K replica.
func (c Config) treeParams() treeParams {
	tp := treeParams{sites: c.TreeSites, regions: c.TreeRegions, payload: 4096, releases: c.Trials}
	if tp.sites <= 1 {
		tp.sites = 200
	}
	if tp.regions <= 0 {
		tp.regions = 8
	}
	if tp.releases <= 0 {
		tp.releases = 3
	}
	return tp
}

// treeLegResult is one leg's measurement.
type treeLegResult struct {
	release      *stats.Sample // release-to-last-apply (Unlock wall time)
	uplinkPushes int64         // dissemination frames out of the releaser, measured window
	probeSamples int           // RTT samples absorbed by the overlay (tree leg)
	relayPushes  int64
	relayAcks    int64
	relayFanout  int64
	fallbacks    int64
	buckets      int64
	histEvents   int
}

// pushesPerRelease is the measured-window uplink cost of one release.
func (r treeLegResult) pushesPerRelease(releases int) float64 {
	if releases == 0 {
		return 0
	}
	return float64(r.uplinkPushes) / float64(releases)
}

// AblateTree runs the regional-WAN release workload over both
// dissemination strategies and reports uplink cost and release latency
// side by side.
func AblateTree(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	tp := cfg.treeParams()

	flat, err := treeLeg(cfg, tp, false)
	if err != nil {
		return Result{}, fmt.Errorf("tree flat leg: %w", err)
	}
	tree, err := treeLeg(cfg, tp, true)
	if err != nil {
		return Result{}, fmt.Errorf("tree relay leg: %w", err)
	}

	table := stats.NewTable("leg", "pushes/release", "release mean", "release max", "fallbacks")
	table.AddRow("flat fan-out (ablation)",
		fmt.Sprintf("%.1f", flat.pushesPerRelease(tp.releases)),
		stats.Millis(flat.release.Mean()), stats.Millis(flat.release.Max()), "-")
	table.AddRow("relay tree",
		fmt.Sprintf("%.1f", tree.pushesPerRelease(tp.releases)),
		stats.Millis(tree.release.Mean()), stats.Millis(tree.release.Max()),
		fmt.Sprintf("%d", tree.fallbacks))

	speedup := 0.0
	if tree.release.Mean() > 0 {
		speedup = float64(flat.release.Mean()) / float64(tree.release.Mean())
	}

	metrics := map[string]float64{
		"sites":                   float64(tp.sites),
		"regions":                 float64(tp.regions),
		"payload_bytes":           float64(tp.payload),
		"releases":                float64(tp.releases),
		"flat_pushes_per_release": flat.pushesPerRelease(tp.releases),
		"tree_pushes_per_release": tree.pushesPerRelease(tp.releases),
		"flat_release_ms":         float64(flat.release.Mean()) / float64(time.Millisecond),
		"tree_release_ms":         float64(tree.release.Mean()) / float64(time.Millisecond),
		"speedup_x":               speedup,
		"tree_relay_pushes":       float64(tree.relayPushes),
		"tree_relay_acks":         float64(tree.relayAcks),
		"tree_relay_fanout":       float64(tree.relayFanout),
		"tree_relay_fallbacks":    float64(tree.fallbacks),
		"tree_buckets":            float64(tree.buckets),
		"tree_probe_samples":      float64(tree.probeSamples),
	}

	notes := []string{
		fmt.Sprintf("%d sites in %d regions, %dB replica, %d measured releases per leg",
			tp.sites, tp.regions, tp.payload, tp.releases),
		fmt.Sprintf("releaser uplink: %.1f pushes/release flat (O(sharers)) vs %.1f with the relay tree (O(regions), %d buckets planned)",
			flat.pushesPerRelease(tp.releases), tree.pushesPerRelease(tp.releases), tree.buckets),
		fmt.Sprintf("release-to-last-apply %.2fx faster through the relay tree", speedup),
		"entry-consistency history checker passed on both legs",
	}

	return Result{
		ID:      "ablate-tree",
		Title:   "Ablation: locality-aware dissemination relay tree",
		Paper:   "the paper's release pushes the new version directly to every update replica (Section 4); over a regional WAN that serializes O(sharers) frames through one uplink, and this ablation measures what relay-tree dissemination recovers",
		Table:   table.String(),
		Notes:   notes,
		Metrics: metrics,
	}, nil
}

// treeLeg builds a regional-WAN cluster, drives the release workload, and
// tears down, verifying the recorded history. tree selects the relay
// overlay; false is the flat fan-out ablation baseline.
func treeLeg(cfg Config, tp treeParams, tree bool) (treeLegResult, error) {
	const seed = 424242
	workers := tp.sites - 1
	geo := netsim.RegionalWAN(tp.regions).Scaled(cfg.Scale)

	// The geography's per-link overrides carry the region structure,
	// jitter included: each hop wobbles within its own profile's range
	// (LAN links by ~100µs, backbone hops by up to 2ms — see
	// netsim.RegionalWAN), and the overlay's RTT buckets are sized to
	// absorb it. The default profile only covers links the geography
	// doesn't override.
	sim := transport.NewSimNetwork(netsim.Config{Profile: netsim.Perfect(), Seed: seed})
	defer func() { _ = sim.Close() }()

	reg := obs.NewRegistry()
	reg.SetClock(sim.Clock())
	// Each release lands a handful of history events per site (push send,
	// apply, release), plus registration and probe traffic up front.
	rec := check.NewRecorder(16*tp.sites*(tp.releases+2)+8192, sim.Clock())

	directory := make(map[wire.SiteID]string, tp.sites)
	stacks := make(map[wire.SiteID]*transport.SimStack, tp.sites)
	ids := make([]netsim.NodeID, 0, tp.sites)
	for i := 1; i <= tp.sites; i++ {
		site := wire.SiteID(i)
		stack, err := sim.NewStack(netsim.NodeID(i))
		if err != nil {
			return treeLegResult{}, err
		}
		stacks[site] = stack
		directory[site] = stack.Datagram().LocalAddr()
		ids = append(ids, netsim.NodeID(i))
	}
	geo.Apply(sim.Underlying(), ids)

	nodes := make(map[wire.SiteID]*core.Node, tp.sites)
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	for i := 1; i <= tp.sites; i++ {
		site := wire.SiteID(i)
		ep := mnet.NewEndpoint(stacks[site].Datagram(), mnet.Config{
			Cost:    netsim.Native(),
			Metrics: reg,
			// The flat leg deliberately saturates the releaser's uplink for
			// >1s per release; a generous RTO keeps queueing delay from
			// triggering spurious retransmits that would muddy the
			// comparison.
			RTO:        2 * time.Second,
			MaxRetries: 8,
			Window:     1024,
			QueueLen:   8192,
		})
		node, err := core.NewNode(core.Config{
			Site:              site,
			Endpoint:          ep,
			Stack:             stacks[site],
			Directory:         directory,
			IsHome:            site == wire.HomeSite,
			Codec:             marshal.NewFast(netsim.Native()),
			Cost:              netsim.Native(),
			Mode:              core.ModeMNet,
			DisseminationTree: tree,
			TreeMinSharers:    2,
			RequestTimeout:    30 * time.Second,
			TransferTimeout:   60 * time.Second,
			Log:               eventlog.Nop(),
			Metrics:           reg,
			History:           rec,
		})
		if err != nil {
			return treeLegResult{}, err
		}
		nodes[site] = node
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	home := nodes[wire.HomeSite]

	// Shared replica: created at home, attached everywhere, update mode so
	// every release pushes the version to all sharers.
	hnd := home.NewHandle("tree-home")
	r, err := home.CreateReplica("tree-data", marshal.Bytes(make([]byte, tp.payload)), tp.sites)
	if err != nil {
		return treeLegResult{}, err
	}
	rl := hnd.ReplicaLock(1)
	if err := rl.Associate(ctx, r); err != nil {
		return treeLegResult{}, err
	}
	setupErrs := make(chan error, workers)
	var setupWG sync.WaitGroup
	probes := make(map[wire.SiteID]*core.ReplicaLock, workers)
	var probeMu sync.Mutex
	for w := 0; w < workers; w++ {
		site := wire.SiteID(w + 2)
		setupWG.Add(1)
		go func(site wire.SiteID) {
			defer setupWG.Done()
			node := nodes[site]
			whnd := node.NewHandle(fmt.Sprintf("tree-%d", site))
			wr, err := node.AttachReplica("tree-data", marshal.Bytes(nil))
			if err != nil {
				setupErrs <- err
				return
			}
			if err := whnd.ReplicaLock(1).Associate(ctx, wr); err != nil {
				setupErrs <- err
				return
			}
			if !tree {
				return
			}
			// A private probe lock per site: acquiring it measures this
			// site's request RTT to the home, the geography signal the
			// overlay buckets by.
			pr, err := node.CreateReplica(fmt.Sprintf("probe-%d", site), marshal.Bytes([]byte("p")), 1)
			if err != nil {
				setupErrs <- err
				return
			}
			prl := whnd.ReplicaLock(wire.LockID(10000 + int(site)))
			if err := prl.Associate(ctx, pr); err != nil {
				setupErrs <- err
				return
			}
			probeMu.Lock()
			probes[site] = prl
			probeMu.Unlock()
		}(site)
	}
	setupWG.Wait()
	select {
	case err := <-setupErrs:
		return treeLegResult{}, fmt.Errorf("site setup: %w", err)
	default:
	}
	// Let replica registrations land at the synchronization thread.
	time.Sleep(500 * time.Millisecond)

	var res treeLegResult
	if tree {
		// Probe in small waves: each wave's sites acquire their private
		// lock in parallel, then the wave's acquire spans — still in the
		// obs span ring — seed the home's overlay tracker before the next
		// wave overwrites the ring.
		tracker := home.OverlayTracker()
		sites := make([]wire.SiteID, 0, workers)
		for s := range probes {
			sites = append(sites, s)
		}
		for lo := 0; lo < len(sites); lo += treeProbeWave {
			hi := lo + treeProbeWave
			if hi > len(sites) {
				hi = len(sites)
			}
			wave := sites[lo:hi]
			errs := make(chan error, len(wave))
			var wg sync.WaitGroup
			for _, s := range wave {
				wg.Add(1)
				go func(prl *core.ReplicaLock) {
					defer wg.Done()
					if err := prl.Lock(ctx); err != nil {
						errs <- err
					}
				}(probes[s])
			}
			wg.Wait()
			select {
			case err := <-errs:
				return treeLegResult{}, fmt.Errorf("probe wave: %w", err)
			default:
			}
			res.probeSamples += overlay.SeedFromSpans(tracker, reg.Spans())
			for _, s := range wave {
				wg.Add(1)
				go func(prl *core.ReplicaLock) {
					defer wg.Done()
					_ = prl.Unlock(ctx)
				}(probes[s])
			}
			wg.Wait()
		}
		if res.probeSamples < workers {
			return res, fmt.Errorf("overlay absorbed %d probe samples, want >= %d (span plumbing broken?)", res.probeSamples, workers)
		}
	}

	// Release workload: one warmup (first push has no version at the
	// sharers and warms every path), then the measured cycles.
	rl.SetUpdateReplicas(tp.sites)
	data := rl.Replicas()[0].Content()
	res.release = &stats.Sample{}
	for i := 0; i <= tp.releases; i++ {
		if err := rl.Lock(ctx); err != nil {
			return res, fmt.Errorf("release %d lock: %w", i, err)
		}
		data.BytesData()[0] = byte(i + 1)
		upBefore := home.DisseminationUplinkSends()
		start := time.Now()
		if err := rl.Unlock(ctx); err != nil {
			return res, fmt.Errorf("release %d unlock: %w", i, err)
		}
		if i > 0 {
			res.release.Add(time.Duration(float64(time.Since(start)) / cfg.Scale))
			res.uplinkPushes += home.DisseminationUplinkSends() - upBefore
		}
	}

	res.relayPushes = reg.CounterValue(obs.CRelayPushes)
	res.relayAcks = reg.CounterValue(obs.CRelayAcks)
	res.relayFanout = reg.CounterValue(obs.CRelayFanout)
	res.fallbacks = reg.CounterValue(obs.CRelayFallbacks)
	res.buckets = reg.GaugeValue(obs.GRelayBuckets)

	// A leg that never exercised its dissemination strategy is a broken
	// harness, not a fast one.
	if res.release.N() == 0 || res.uplinkPushes == 0 {
		return res, fmt.Errorf("leg recorded no dissemination pushes")
	}
	if tree && (res.relayPushes == 0 || res.relayAcks == 0) {
		return res, fmt.Errorf("tree leg recorded no relay pushes/acks (overlay not engaged?)")
	}
	if !tree && res.relayPushes != 0 {
		return res, fmt.Errorf("flat leg recorded %d relay pushes (ablation not isolated)", res.relayPushes)
	}

	// Quiesce, then replay the history through the entry-consistency
	// checker: a fast release that lost a version is worthless.
	for _, n := range nodes {
		_ = n.Close()
	}
	nodes = map[wire.SiteID]*core.Node{}
	if d := rec.Dropped(); d > 0 {
		return res, fmt.Errorf("history recorder overflowed by %d events; raise its capacity", d)
	}
	events := rec.Events()
	res.histEvents = len(events)
	if v := check.Check(events); v != nil {
		return res, fmt.Errorf("entry-consistency violation: %v", v)
	}
	return res, nil
}
