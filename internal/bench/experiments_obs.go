package bench

import (
	"fmt"
	"time"

	"mocha/internal/core"
	"mocha/internal/obs"
	"mocha/internal/stats"
)

// AblateObs measures what the observability plane costs when it is on:
// the same workloads run once with no registry attached (every
// instrumentation point is a nil-receiver no-op) and once with the full
// plane recording — counters, histograms, spans, and the instrumented
// transport. Two representative paths are covered: the parallel
// dissemination fan-out (PR 1's hot path: one release pushing to many
// sites) and the delta release cycle (PR 2's hot path: small in-place
// updates shipped as deltas). Both runs use the same seed, so the
// simulated schedules are identical and the difference is instrumentation
// cost alone.
func AblateObs(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	const sizeK = 4

	table := stats.NewTable("workload", "plane off (ms)", "plane on (ms)", "overhead")
	var notes []string
	metrics := make(map[string]float64)

	// Leg 1: dissemination fan-out, LAN, sizeK updates to MaxSites sites.
	spec := figSpec{e: lanEnv(), sizeK: sizeK}
	off, err := disseminationSeriesOpts(cfg, spec, core.ModeMNet, harnessOpts{fanout: -1})
	if err != nil {
		return Result{}, fmt.Errorf("ablate-obs fanout off: %w", err)
	}
	reg := obs.NewRegistry()
	on, err := disseminationSeriesOpts(cfg, spec, core.ModeMNet, harnessOpts{fanout: -1, metrics: reg})
	if err != nil {
		return Result{}, fmt.Errorf("ablate-obs fanout on: %w", err)
	}
	offMean, onMean := off[cfg.MaxSites-1].mean(), on[cfg.MaxSites-1].mean()
	fanPct := overheadPct(offMean, onMean)
	table.AddRow(fmt.Sprintf("fan-out (%dK, %d sites)", sizeK, cfg.MaxSites),
		stats.Millis(offMean), stats.Millis(onMean), fmt.Sprintf("%+.2f%%", fanPct))
	metrics["fanout_off_ms"] = float64(offMean) / float64(time.Millisecond)
	metrics["fanout_on_ms"] = float64(onMean) / float64(time.Millisecond)
	metrics["fanout_overhead_pct"] = fanPct

	// The instrumented leg must actually have recorded protocol activity,
	// or the "overhead" would be the cost of nothing.
	snap := reg.Snapshot()
	if snap.Counters["mocha_pushes_total"] == 0 || snap.Counters["mocha_transfer_bytes_total"] == 0 {
		return Result{}, fmt.Errorf("ablate-obs: instrumented run recorded no pushes/bytes (plane not wired?)")
	}
	metrics["fanout_pushes"] = float64(snap.Counters["mocha_pushes_total"])
	metrics["fanout_transfer_bytes"] = float64(snap.Counters["mocha_transfer_bytes_total"])

	// Leg 2: delta release cycle, LAN, 64K replica with 16-byte updates.
	const deltaSize = 64 << 10
	_, offLat, err := deltaReleaseCycleOpts(cfg, lanEnv(), deltaSize, false, true, nil)
	if err != nil {
		return Result{}, fmt.Errorf("ablate-obs delta off: %w", err)
	}
	dreg := obs.NewRegistry()
	_, onLat, err := deltaReleaseCycleOpts(cfg, lanEnv(), deltaSize, false, true, dreg)
	if err != nil {
		return Result{}, fmt.Errorf("ablate-obs delta on: %w", err)
	}
	deltaPct := overheadPct(offLat, onLat)
	table.AddRow("delta release (64K, 16B updates)",
		stats.Millis(offLat), stats.Millis(onLat), fmt.Sprintf("%+.2f%%", deltaPct))
	metrics["delta_off_ms"] = float64(offLat) / float64(time.Millisecond)
	metrics["delta_on_ms"] = float64(onLat) / float64(time.Millisecond)
	metrics["delta_overhead_pct"] = deltaPct

	dsnap := dreg.Snapshot()
	if dsnap.Counters["mocha_transfers_delta_total"] == 0 {
		return Result{}, fmt.Errorf("ablate-obs: instrumented delta run recorded no delta transfers")
	}
	metrics["delta_transfers"] = float64(dsnap.Counters["mocha_transfers_delta_total"])

	worst := fanPct
	if deltaPct > worst {
		worst = deltaPct
	}
	metrics["worst_overhead_pct"] = worst
	notes = append(notes,
		fmt.Sprintf("worst-case overhead %.2f%% (target <5%%)", worst),
		fmt.Sprintf("instrumented fan-out recorded %d pushes, %d transfer bytes",
			snap.Counters["mocha_pushes_total"], snap.Counters["mocha_transfer_bytes_total"]),
		fmt.Sprintf("instrumented delta leg recorded %d delta transfers",
			dsnap.Counters["mocha_transfers_delta_total"]))

	return Result{
		ID:      "ablate-obs",
		Title:   "Observability-plane overhead on the fan-out and delta paths",
		Paper:   "the plane serves the conclusion's call for 'greater insight into the execution of wide area distributed applications'; lock-free counters and bounded span rings keep it off the protocol's critical path",
		Table:   table.String(),
		Notes:   notes,
		Metrics: metrics,
	}, nil
}

// overheadPct is the instrumented run's cost relative to the baseline, in
// percent; negative values mean the difference was inside run-to-run noise.
func overheadPct(off, on time.Duration) float64 {
	if off <= 0 {
		return 0
	}
	return (float64(on) - float64(off)) / float64(off) * 100
}
