package bench

import (
	"strings"
	"testing"
	"time"
)

// TestAblateLoadSmoke runs the open-loop harness at a CI-sized shape: a
// real multi-site cluster, both I/O legs, history checker on. It pins
// the harness's own self-checks (operations completed, plane recorded,
// batched leg actually flushed batches) rather than a throughput
// ordering, which at this tiny shape is noise.
func TestAblateLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load harness smoke is seconds-long")
	}
	cfg := Config{
		LoadSites:    9,
		LoadLocks:    64,
		LoadRate:     400,
		LoadDuration: 1500 * time.Millisecond,
	}
	res, err := AblateLoad(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "load" {
		t.Fatalf("result ID = %q, want load", res.ID)
	}
	for _, leg := range []string{"serial I/O", "batched I/O", "online monitor"} {
		if !strings.Contains(res.Table, leg) {
			t.Fatalf("missing %q leg:\n%s", leg, res.Table)
		}
	}
	for _, key := range []string{
		"serial_completed", "batched_completed", "monitored_completed",
		"serial_tput_ops", "batched_tput_ops", "monitored_tput_ops",
		"serial_p99_ms", "batched_p99_ms",
		"batched_send_batches", "speedup",
		"monitor_events", "monitor_overhead",
	} {
		if _, ok := res.Metrics[key]; !ok {
			t.Errorf("missing metric %q", key)
		}
	}
	if res.Metrics["serial_completed"] == 0 || res.Metrics["batched_completed"] == 0 ||
		res.Metrics["monitored_completed"] == 0 {
		t.Fatalf("a leg completed zero operations:\n%s", res.Table)
	}
	// The monitored leg self-fails inside loadLeg on an empty stream; pin
	// the metric too so a silent rewire cannot slip past the smoke.
	if res.Metrics["monitor_events"] == 0 {
		t.Fatalf("online monitor saw zero events:\n%s", res.Table)
	}
	if res.Metrics["batched_send_batches"] == 0 {
		t.Fatalf("batched leg recorded no transmit flushes:\n%s", res.Table)
	}
	if res.Metrics["serial_history_events"] == 0 || res.Metrics["batched_history_events"] == 0 {
		t.Fatalf("history checker saw no events:\n%s", res.Table)
	}
}
