package bench

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"time"

	"mocha/internal/check"
	"mocha/internal/core"
	"mocha/internal/eventlog"
	"mocha/internal/marshal"
	"mocha/internal/mnet"
	"mocha/internal/netsim"
	"mocha/internal/obs"
	"mocha/internal/stats"
	"mocha/internal/transport"
	"mocha/internal/wire"
)

// The durable-store ablation measures what the write-ahead log buys at a
// site restart. In the paper's library a site manager keeps every replica
// in its address space, so a crash loses them all and recovery refetches
// each lock's data from surviving sites (Section 4). The durable leg
// restarts the same site on its log-structured store: the WAL replays, the
// site re-joins the protocol at its persisted versions, and the probe
// acquisitions come back VERSIONOK with zero replica transfers. The
// in-memory leg is the paper's baseline: the restarted site recovers
// nothing and refetches every lock. A third leg runs the durable store
// under a memory cap below the working set: cold records are evicted to
// the log and transparently refaulted on access. Every leg streams its
// history through the online entry-consistency monitor and replays it
// through the offline checker, and fencing tokens must strictly increase
// per lock across the restart — recovery that resurrects stale state or
// rewinds a fence cannot pass.

// storeParams is the shape of one store-ablation run.
type storeParams struct {
	sites   int // cluster size; site 1 is home, site 2 the restarted victim
	locks   int // lock population, all exercised from the victim
	payload int // replica payload bytes per lock
}

// storeParams fills defaults: 3 sites, 6 locks, 4KB payloads.
func (c Config) storeParams() storeParams {
	sp := storeParams{sites: c.StoreSites, locks: c.StoreLocks, payload: 4096}
	if sp.sites < 3 {
		sp.sites = 3
	}
	if sp.locks < 1 {
		sp.locks = 6
	}
	return sp
}

// storeVictim is the site that is killed and restarted: a worker, not the
// home, so the lock namespace stays managed throughout.
const storeVictim = wire.SiteID(2)

// Messaging pacing for the restart legs. GapTimeout matters here: the
// surviving sites' senders keep their sequence numbering toward the
// restarted site, whose fresh receiver state would otherwise wait forever
// for sequence zero; the gap release un-sticks delivery within one timeout.
const (
	storeReqTimeout = 2 * time.Second
	storeGapTimeout = 250 * time.Millisecond
)

// storeLegResult is one restart leg's measurement.
type storeLegResult struct {
	locks      int
	preRecords int   // store records at the victim before the kill
	recovered  int   // records replayed from the WAL at restart
	refetch    int   // post-restart fresh grants flagged NeedNewVersion
	transfers  int64 // replica transfers spent re-arming the victim
	appends    uint64
	fsyncs     uint64
	fenceMax   uint64
	histEvents int
}

// memCapResult is the eviction leg's measurement.
type memCapResult struct {
	locks     int
	memLimit  int
	records   int
	cached    int
	evictions uint64
	refaults  uint64
}

// AblateStore kills and restarts a worker site under both store backends
// and reports what each recovers, then runs the durable store under a
// memory cap below the working set.
func AblateStore(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	sp := cfg.storeParams()

	durable, err := storeLeg(cfg, sp, true)
	if err != nil {
		return Result{}, fmt.Errorf("store durable leg: %w", err)
	}
	mem, err := storeLeg(cfg, sp, false)
	if err != nil {
		return Result{}, fmt.Errorf("store in-memory leg: %w", err)
	}
	capped, err := storeMemCapLeg(cfg, sp)
	if err != nil {
		return Result{}, fmt.Errorf("store memory-cap leg: %w", err)
	}

	table := stats.NewTable("leg", "locks", "recovered at restart", "refetch grants", "transfers after restart")
	table.AddRow("in-memory store (paper)",
		fmt.Sprintf("%d", mem.locks), fmt.Sprintf("%d", mem.recovered),
		fmt.Sprintf("%d", mem.refetch), fmt.Sprintf("%d", mem.transfers))
	table.AddRow("durable store (WAL replay)",
		fmt.Sprintf("%d", durable.locks), fmt.Sprintf("%d", durable.recovered),
		fmt.Sprintf("%d", durable.refetch), fmt.Sprintf("%d", durable.transfers))

	metrics := map[string]float64{
		"sites":                     float64(sp.sites),
		"locks":                     float64(sp.locks),
		"payload_bytes":             float64(sp.payload),
		"durable_recovered":         float64(durable.recovered),
		"durable_refetch_grants":    float64(durable.refetch),
		"durable_transfers_restart": float64(durable.transfers),
		"durable_wal_appends":       float64(durable.appends),
		"durable_wal_fsyncs":        float64(durable.fsyncs),
		"memory_recovered":          float64(mem.recovered),
		"memory_refetch_grants":     float64(mem.refetch),
		"memory_transfers_restart":  float64(mem.transfers),
		"memcap_limit_bytes":        float64(capped.memLimit),
		"memcap_records":            float64(capped.records),
		"memcap_cached_bytes":       float64(capped.cached),
		"memcap_evictions":          float64(capped.evictions),
		"memcap_refaults":           float64(capped.refaults),
		"fence_max_token":           float64(durable.fenceMax),
	}

	notes := []string{
		fmt.Sprintf("%d sites, %d locks of %dB; each restart leg kills the worker site after it owns every lock's latest version",
			sp.sites, sp.locks, sp.payload),
		fmt.Sprintf("in-memory: restarted site recovered %d records, refetched %d locks over %d transfers",
			mem.recovered, mem.refetch, mem.transfers),
		fmt.Sprintf("durable: restarted site recovered %d/%d records from the WAL and re-joined with %d transfers",
			durable.recovered, durable.preRecords, durable.transfers),
		fmt.Sprintf("memory cap %dB under a %dB working set: %d evictions, %d refaults, workload completed",
			capped.memLimit, sp.locks*sp.payload, capped.evictions, capped.refaults),
		"entry-consistency monitor and history checker passed on both restart legs; fencing tokens strictly increased per lock",
	}

	return Result{
		ID:      "ablate-store",
		Title:   "Ablation: durable replica store — crash recovery vs in-memory",
		Paper:   "the paper's site manager keeps replicas in memory and refetches everything after a crash (Section 4); this ablation measures what a write-ahead log recovers at restart",
		Table:   table.String(),
		Notes:   notes,
		Metrics: metrics,
	}, nil
}

// storeLeg builds a cluster, exercises every lock from the victim site so
// it owns the latest versions, kills and restarts the victim, and measures
// what the restarted site recovers locally versus refetches. durable backs
// the victim with the file store; false is the paper's in-memory baseline.
func storeLeg(cfg Config, sp storeParams, durable bool) (storeLegResult, error) {
	var res storeLegResult
	res.locks = sp.locks

	var dir string
	if durable {
		d, err := os.MkdirTemp("", "mocha-ablate-store-*")
		if err != nil {
			return res, err
		}
		dir = d
		defer func() { _ = os.RemoveAll(d) }()
	}

	const seed = 8181
	sim := transport.NewSimNetwork(netsim.Config{Profile: netsim.LANFastEthernet().Scaled(cfg.Scale), Seed: seed})
	defer func() { _ = sim.Close() }()

	reg := obs.NewRegistry()
	reg.SetClock(sim.Clock())
	rec := check.NewRecorder(64*sp.locks*sp.sites+8192, sim.Clock())
	mon := check.NewMonitor(check.DefaultWindow)
	sink := check.MultiSink(rec, mon)

	directory := make(map[wire.SiteID]string, sp.sites)
	stacks := make(map[wire.SiteID]*transport.SimStack, sp.sites)
	for i := 1; i <= sp.sites; i++ {
		site := wire.SiteID(i)
		stack, err := sim.NewStack(netsim.NodeID(i))
		if err != nil {
			return res, err
		}
		stacks[site] = stack
		directory[site] = stack.Datagram().LocalAddr()
	}

	newEndpoint := func(stack *transport.SimStack) *mnet.Endpoint {
		return mnet.NewEndpoint(stack.Datagram(), mnet.Config{
			Cost:    netsim.Native(),
			Metrics: reg,
			// Short retransmission timing: the kill leaves sends to the victim
			// dangling, and the restart legs must not wait out the default
			// ladder. GapTimeout un-sticks the old-sender/fresh-receiver
			// sequence gap after the restart.
			RTO:        250 * time.Millisecond,
			MaxRetries: 4,
			GapTimeout: storeGapTimeout,
		})
	}
	newSiteNode := func(site wire.SiteID, stack *transport.SimStack) (*core.Node, error) {
		storeDir := ""
		if durable && site == storeVictim {
			storeDir = dir
		}
		return core.NewNode(core.Config{
			Site:            site,
			Endpoint:        newEndpoint(stack),
			Stack:           stack,
			Directory:       directory,
			IsHome:          site == wire.HomeSite,
			Codec:           marshal.NewFast(netsim.Native()),
			Cost:            netsim.Native(),
			Mode:            core.ModeMNet,
			StoreDir:        storeDir,
			RequestTimeout:  storeReqTimeout,
			TransferTimeout: 10 * time.Second,
			DefaultLease:    30 * time.Second,
			Log:             eventlog.Nop(),
			Metrics:         reg,
			History:         sink,
		})
	}

	nodes := make(map[wire.SiteID]*core.Node, sp.sites)
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	for i := 1; i <= sp.sites; i++ {
		site := wire.SiteID(i)
		node, err := newSiteNode(site, stacks[site])
		if err != nil {
			return res, err
		}
		nodes[site] = node
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// Per lock: the creator at home registers the initial content, a worker
	// at the victim attaches, acquires, writes, and releases — so the victim
	// ends the warm-up owning every lock's latest version (and, on the
	// durable leg, every version sits in its WAL).
	lockIDs := make([]wire.LockID, sp.locks)
	names := make([]string, sp.locks)
	for i := range lockIDs {
		lockIDs[i] = wire.LockID(201 + i)
		names[i] = fmt.Sprintf("store-data-%d", i)
		r, err := nodes[wire.HomeSite].CreateReplica(names[i], marshal.Bytes(make([]byte, sp.payload)), sp.sites)
		if err != nil {
			return res, err
		}
		creator := nodes[wire.HomeSite].NewHandle(fmt.Sprintf("creator-%d", i)).ReplicaLock(lockIDs[i])
		if err := creator.Associate(ctx, r); err != nil {
			return res, err
		}
		wr, err := nodes[storeVictim].AttachReplica(names[i], marshal.Bytes(nil))
		if err != nil {
			return res, err
		}
		worker := nodes[storeVictim].NewHandle(fmt.Sprintf("worker-%d", i)).ReplicaLock(lockIDs[i])
		if err := worker.Associate(ctx, wr); err != nil {
			return res, err
		}
		// UR covers the cluster so every release pushes the new version to
		// the other registered sites — the copies recovery polls fall back
		// on when a restarted site lost its state.
		worker.SetUpdateReplicas(sp.sites)
		if err := worker.Lock(ctx); err != nil {
			return res, fmt.Errorf("worker acquire lock %d: %w", lockIDs[i], err)
		}
		worker.Replicas()[0].Content().BytesData()[0] = byte(i + 1)
		if err := worker.Unlock(ctx); err != nil {
			return res, fmt.Errorf("worker release lock %d: %w", lockIDs[i], err)
		}
	}
	// Let release acknowledgements land so persisted records commit.
	time.Sleep(500 * time.Millisecond)

	// Snapshot the victim's store before the kill: the durable leg must
	// recover exactly this set.
	preStats := nodes[storeVictim].Store().Stats()
	res.preRecords = preStats.Records
	res.appends = preStats.Appends
	res.fsyncs = preStats.Fsyncs
	preVersions := make(map[wire.LockID]uint64, sp.locks)
	preBlobs := make(map[wire.LockID][]byte, sp.locks)
	if durable {
		if res.preRecords != sp.locks {
			return res, fmt.Errorf("victim store holds %d records before the kill, want %d", res.preRecords, sp.locks)
		}
		for _, lock := range lockIDs {
			r, ok, err := nodes[storeVictim].Store().Get(lock)
			if err != nil || !ok {
				return res, fmt.Errorf("victim store missing lock %d before the kill (ok=%v err=%v)", lock, ok, err)
			}
			preVersions[lock] = r.Version
			preBlobs[lock] = append([]byte(nil), r.Replicas[0].Data...)
		}
	}

	cut := rec.Len()
	transfersBefore := reg.CounterValue(obs.CTransfersFull) + reg.CounterValue(obs.CTransfersDelta)

	// Fail-stop the victim, then reboot the same machine at the same
	// address: a fresh stack, endpoint, and node over the surviving store
	// directory.
	_ = nodes[storeVictim].Close()
	delete(nodes, storeVictim)
	sim.Kill(netsim.NodeID(storeVictim))
	time.Sleep(300 * time.Millisecond)

	stack, err := sim.Restart(netsim.NodeID(storeVictim))
	if err != nil {
		return res, err
	}
	stacks[storeVictim] = stack
	reborn, err := newSiteNode(storeVictim, stack)
	if err != nil {
		return res, err
	}
	nodes[storeVictim] = reborn

	res.recovered = reborn.Store().Stats().Recovered
	if durable {
		if res.recovered != res.preRecords {
			return res, fmt.Errorf("durable restart recovered %d records, want %d", res.recovered, res.preRecords)
		}
		for _, lock := range lockIDs {
			r, ok, err := reborn.Store().Get(lock)
			if err != nil || !ok {
				return res, fmt.Errorf("recovered store missing lock %d (ok=%v err=%v)", lock, ok, err)
			}
			if r.Version != preVersions[lock] {
				return res, fmt.Errorf("lock %d recovered at v%d, persisted v%d", lock, r.Version, preVersions[lock])
			}
			if !bytes.Equal(r.Replicas[0].Data, preBlobs[lock]) {
				return res, fmt.Errorf("lock %d recovered different bytes than were persisted", lock)
			}
		}
	} else if res.recovered != 0 {
		return res, fmt.Errorf("in-memory restart recovered %d records, want 0", res.recovered)
	}

	// The rebooted application re-attaches its replicas — the recovered
	// payloads drain into them — and probes every lock with a shared
	// acquire, which transfers data only if the site's copy is stale.
	probes := make([]*core.ReplicaLock, sp.locks)
	for i := range lockIDs {
		wr, err := reborn.AttachReplica(names[i], marshal.Bytes(nil))
		if err != nil {
			return res, err
		}
		probes[i] = reborn.NewHandle(fmt.Sprintf("probe-%d", i)).ReplicaLock(lockIDs[i])
		if err := probes[i].Associate(ctx, wr); err != nil {
			return res, err
		}
	}
	time.Sleep(500 * time.Millisecond)

	for i := range lockIDs {
		if ok, _ := tryAcquireShared(probes[i], 30*time.Second, 3*time.Second); !ok {
			return res, fmt.Errorf("restarted site could not re-acquire lock %d", lockIDs[i])
		}
		if got := probes[i].Replicas()[0].Content().BytesData()[0]; got != byte(i+1) {
			return res, fmt.Errorf("lock %d read byte %d after restart, want %d", lockIDs[i], got, i+1)
		}
	}

	res.transfers = reg.CounterValue(obs.CTransfersFull) + reg.CounterValue(obs.CTransfersDelta) - transfersBefore

	// Quiesce and analyze the history.
	for _, n := range nodes {
		_ = n.Close()
	}
	nodes = map[wire.SiteID]*core.Node{}
	if d := rec.Dropped(); d > 0 {
		return res, fmt.Errorf("history recorder overflowed by %d events; raise its capacity", d)
	}
	if cx := mon.Err(); cx != nil {
		return res, fmt.Errorf("online monitor tripped: %v", cx.Violation)
	}
	events := rec.Events()
	res.histEvents = len(events)
	if v := check.Check(events); v != nil {
		return res, fmt.Errorf("entry-consistency violation: %v", v)
	}
	max, err := fenceMonotone(events)
	if err != nil {
		return res, err
	}
	res.fenceMax = max

	// Count the post-restart refetches: fresh grants to the victim flagged
	// NeedNewVersion. The durable leg re-joined at its persisted versions,
	// so it must show none — and no replica transfers either.
	if cut > len(events) {
		cut = len(events)
	}
	for _, ev := range events[cut:] {
		if ev.Kind == wire.HistGrant && ev.Site == storeVictim && !ev.Revised && ev.Flag == wire.NeedNewVersion {
			res.refetch++
		}
	}
	if durable {
		if res.refetch != 0 {
			return res, fmt.Errorf("durable leg refetched %d locks after restart; recovery should have re-joined at the persisted versions", res.refetch)
		}
		if res.transfers != 0 {
			return res, fmt.Errorf("durable leg moved %d replica transfers after restart, want 0", res.transfers)
		}
	} else {
		if res.refetch < sp.locks {
			return res, fmt.Errorf("in-memory leg refetched only %d/%d locks; the restarted site should have lost everything", res.refetch, sp.locks)
		}
		if res.transfers < int64(sp.locks) {
			return res, fmt.Errorf("in-memory leg moved %d transfers re-arming %d locks", res.transfers, sp.locks)
		}
	}
	return res, nil
}

// storeMemCapLeg runs the durable store with a memory cap below the
// working set: the workload must complete by evicting cold records to the
// log and refaulting them on access.
func storeMemCapLeg(cfg Config, sp storeParams) (memCapResult, error) {
	var res memCapResult
	res.locks = sp.locks
	// Room for two payloads and change; the working set is locks × payload.
	res.memLimit = 2*sp.payload + sp.payload/2

	dir, err := os.MkdirTemp("", "mocha-ablate-memcap-*")
	if err != nil {
		return res, err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	const seed = 8282
	sim := transport.NewSimNetwork(netsim.Config{Profile: netsim.LANFastEthernet().Scaled(cfg.Scale), Seed: seed})
	defer func() { _ = sim.Close() }()

	reg := obs.NewRegistry()
	reg.SetClock(sim.Clock())
	rec := check.NewRecorder(64*sp.locks*4+8192, sim.Clock())

	directory := make(map[wire.SiteID]string, 2)
	stacks := make(map[wire.SiteID]*transport.SimStack, 2)
	for i := 1; i <= 2; i++ {
		site := wire.SiteID(i)
		stack, err := sim.NewStack(netsim.NodeID(i))
		if err != nil {
			return res, err
		}
		stacks[site] = stack
		directory[site] = stack.Datagram().LocalAddr()
	}
	nodes := make(map[wire.SiteID]*core.Node, 2)
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	for i := 1; i <= 2; i++ {
		site := wire.SiteID(i)
		storeDir, memLimit := "", 0
		if site == storeVictim {
			storeDir, memLimit = dir, res.memLimit
		}
		node, err := core.NewNode(core.Config{
			Site:            site,
			Endpoint:        mnet.NewEndpoint(stacks[site].Datagram(), mnet.Config{Cost: netsim.Native(), Metrics: reg}),
			Stack:           stacks[site],
			Directory:       directory,
			IsHome:          site == wire.HomeSite,
			Codec:           marshal.NewFast(netsim.Native()),
			Cost:            netsim.Native(),
			Mode:            core.ModeMNet,
			StoreDir:        storeDir,
			StoreMemLimit:   memLimit,
			RequestTimeout:  storeReqTimeout,
			TransferTimeout: 10 * time.Second,
			Log:             eventlog.Nop(),
			Metrics:         reg,
			History:         rec,
		})
		if err != nil {
			return res, err
		}
		nodes[site] = node
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	lockIDs := make([]wire.LockID, sp.locks)
	for i := range lockIDs {
		lockIDs[i] = wire.LockID(301 + i)
		name := fmt.Sprintf("memcap-data-%d", i)
		r, err := nodes[wire.HomeSite].CreateReplica(name, marshal.Bytes(make([]byte, sp.payload)), 2)
		if err != nil {
			return res, err
		}
		creator := nodes[wire.HomeSite].NewHandle(fmt.Sprintf("creator-%d", i)).ReplicaLock(lockIDs[i])
		if err := creator.Associate(ctx, r); err != nil {
			return res, err
		}
		wr, err := nodes[storeVictim].AttachReplica(name, marshal.Bytes(nil))
		if err != nil {
			return res, err
		}
		worker := nodes[storeVictim].NewHandle(fmt.Sprintf("worker-%d", i)).ReplicaLock(lockIDs[i])
		if err := worker.Associate(ctx, wr); err != nil {
			return res, err
		}
		if err := worker.Lock(ctx); err != nil {
			return res, fmt.Errorf("acquire lock %d under memory cap: %w", lockIDs[i], err)
		}
		worker.Replicas()[0].Content().BytesData()[0] = byte(i + 1)
		if err := worker.Unlock(ctx); err != nil {
			return res, fmt.Errorf("release lock %d under memory cap: %w", lockIDs[i], err)
		}
		// Let the release acknowledgement commit the record: only committed
		// records are evictable, so back-to-back dirty writes would pin the
		// whole working set in memory.
		time.Sleep(50 * time.Millisecond)
	}
	time.Sleep(300 * time.Millisecond)

	st := nodes[storeVictim].Store().Stats()
	res.records = st.Records
	res.cached = st.CachedBytes
	res.evictions = st.Evictions
	if res.records != sp.locks {
		return res, fmt.Errorf("capped store holds %d records, want %d", res.records, sp.locks)
	}
	if res.evictions == 0 {
		return res, fmt.Errorf("no evictions under a %dB cap with a %dB working set", res.memLimit, sp.locks*sp.payload)
	}
	if res.cached > res.memLimit+sp.payload {
		return res, fmt.Errorf("capped store caches %dB, cap %dB", res.cached, res.memLimit)
	}

	// Touch every lock: evicted records must refault transparently from the
	// log with their bytes intact.
	for i, lock := range lockIDs {
		r, ok, err := nodes[storeVictim].Store().Get(lock)
		if err != nil || !ok {
			return res, fmt.Errorf("capped store lost lock %d (ok=%v err=%v)", lock, ok, err)
		}
		if r.Version == 0 || len(r.Replicas) == 0 {
			return res, fmt.Errorf("capped store refaulted lock %d empty", lock)
		}
		_ = i
	}
	res.refaults = nodes[storeVictim].Store().Stats().Refaults
	if res.refaults == 0 {
		return res, fmt.Errorf("evictions happened but no Get refaulted; eviction lost the records instead")
	}

	for _, n := range nodes {
		_ = n.Close()
	}
	nodes = map[wire.SiteID]*core.Node{}
	if v := check.Check(rec.Events()); v != nil {
		return res, fmt.Errorf("entry-consistency violation: %v", v)
	}
	return res, nil
}

// fenceMonotone asserts the fencing-token invariant over a full history:
// every fresh grant's token strictly exceeds every token the lock issued
// before it — across releases, handoffs, promotions, and restarts. It
// returns the highest token seen.
func fenceMonotone(events []wire.HistoryEvent) (uint64, error) {
	last := make(map[wire.LockID]uint64)
	var max uint64
	for _, ev := range events {
		if ev.Kind != wire.HistGrant || ev.AuxVersion == 0 {
			continue
		}
		if !ev.Revised {
			if ev.AuxVersion <= last[ev.Lock] {
				return 0, fmt.Errorf("fencing token regressed on lock %d: fresh grant carried %d after %d (%s)",
					ev.Lock, ev.AuxVersion, last[ev.Lock], ev.String())
			}
			last[ev.Lock] = ev.AuxVersion
		}
		if ev.AuxVersion > max {
			max = ev.AuxVersion
		}
	}
	return max, nil
}

// tryAcquireShared is tryAcquire's read-side twin: a bounded
// LockShared/Unlock cycle retried until the patience window closes. Shared
// probes never publish a new version, so they measure pure re-join cost.
func tryAcquireShared(prl *core.ReplicaLock, patience, attempt time.Duration) (bool, int) {
	deadline := time.Now().Add(patience)
	tries := 0
	for {
		tries++
		ctx, cancel := context.WithTimeout(context.Background(), attempt)
		err := prl.LockShared(ctx)
		cancel()
		if err == nil {
			ctx, cancel := context.WithTimeout(context.Background(), attempt)
			_ = prl.Unlock(ctx)
			cancel()
			return true, tries
		}
		if time.Now().After(deadline) {
			return false, tries
		}
	}
}
