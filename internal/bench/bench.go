// Package bench implements the experiment harness that regenerates every
// table and figure in the paper's evaluation (Section 5), shared by
// cmd/benchmocha and the repository's testing.B benchmarks.
//
// Environments and execution costs come from the calibrated netsim
// profiles; the Scale knob runs the same calibrated experiments with all
// delays multiplied by a factor, so CI can exercise every experiment
// quickly while cmd/benchmocha defaults to full scale for paper-comparable
// numbers (reported values are de-scaled back to model time).
package bench

import (
	"context"
	"fmt"
	"time"

	"mocha/internal/core"
	"mocha/internal/eventlog"
	"mocha/internal/marshal"
	"mocha/internal/mnet"
	"mocha/internal/netsim"
	"mocha/internal/obs"
	"mocha/internal/stats"
	"mocha/internal/transport"
	"mocha/internal/wire"
)

// Config controls a harness run.
type Config struct {
	// Scale multiplies every simulated delay and modelled cost. 1.0
	// reproduces the calibrated environment in real time.
	Scale float64
	// Trials is the number of measurements per data point (default 3).
	Trials int
	// MaxSites is the largest dissemination fan-out (default 6, matching
	// the paper's figures).
	MaxSites int

	// LoadSites, LoadLocks, LoadRate and LoadDuration shape the open-loop
	// load experiment ("load"): cluster size, lock population, offered
	// acquire/release pairs per second, and the arrival-generation window.
	// Zero values take the experiment's defaults (100 sites, 10k locks,
	// 3000 ops/s, 5s).
	LoadSites    int
	LoadLocks    int
	LoadRate     float64
	LoadDuration time.Duration

	// TreeSites and TreeRegions shape the dissemination-tree ablation
	// ("ablate-tree"): cluster size and the number of locality regions in
	// the simulated WAN geography. Zero values take the experiment's
	// defaults (200 sites, 8 regions).
	TreeSites   int
	TreeRegions int

	// HomeSites and HomeLocks shape the home-placement ablation
	// ("ablate-home"): cluster/ring size and the lock population spread
	// over it. Zero values take the experiment's defaults (6 sites, 8
	// locks).
	HomeSites int
	HomeLocks int

	// StoreSites and StoreLocks shape the durable-store ablation
	// ("ablate-store"): cluster size and the lock population the restarted
	// site owns. Zero values take the experiment's defaults (3 sites, 6
	// locks).
	StoreSites int
	StoreLocks int
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Trials <= 0 {
		c.Trials = 3
	}
	if c.MaxSites <= 0 {
		c.MaxSites = 6
	}
	return c
}

// Result is one regenerated table or figure.
type Result struct {
	// ID is the experiment identifier ("table1", "fig9", ...).
	ID string
	// Title describes the experiment.
	Title string
	// Paper states what the paper reports for this experiment.
	Paper string
	// Table is the formatted measurement output.
	Table string
	// Notes carries derived observations (ratios, crossovers).
	Notes []string
	// Metrics exposes the headline numbers for machine consumers
	// (benchmocha -json); keys are snake_case, values in the unit the
	// key names.
	Metrics map[string]float64 `json:",omitempty"`
}

// String renders the result for the console.
func (r Result) String() string {
	out := fmt.Sprintf("== %s: %s ==\npaper: %s\n\n%s", r.ID, r.Title, r.Paper, r.Table)
	for _, n := range r.Notes {
		out += "note: " + n + "\n"
	}
	return out
}

// Experiment is a runnable harness entry.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) (Result, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "Time to acquire a lock with no data transfer (Table 1)", Run: Table1},
		{ID: "fig8", Title: "Time to marshal replicas (Figure 8)", Run: Fig8},
		{ID: "fig9", Title: "LAN transfer of 1K replicas (Figure 9)", Run: figure(9)},
		{ID: "fig10", Title: "WAN transfer of 1K replicas (Figure 10)", Run: figure(10)},
		{ID: "fig11", Title: "LAN transfer of 4K replicas (Figure 11)", Run: figure(11)},
		{ID: "fig12", Title: "WAN transfer of 4K replicas (Figure 12)", Run: figure(12)},
		{ID: "fig13", Title: "LAN transfer of 256K replicas (Figure 13)", Run: figure(13)},
		{ID: "fig14", Title: "WAN transfer of 256K replicas (Figure 14)", Run: figure(14)},
		{ID: "app", Title: "Table-setting application consistency cost (Section 5.1)", Run: AppBreakdown},
		{ID: "smallmsg", Title: "MNet vs TCP for small messages (Section 5)", Run: SmallMessages},
		{ID: "ur", Title: "Availability cost: release cycle vs UR (Section 4 / Figure 12)", Run: URSweep},
		{ID: "cablemodem", Title: "Home-service environment: cable modem (conclusion's ongoing work)", Run: CableModemEnv},
		{ID: "ablate-marshal", Title: "Ablation: JDK 1.1 vs custom marshaling library", Run: AblateMarshal},
		{ID: "ablate-adaptive", Title: "Ablation: adaptive protocol selection", Run: AblateAdaptive},
		{ID: "ablate-reuse", Title: "Ablation: hybrid protocol with connection reuse", Run: AblateReuse},
		{ID: "ablate-fanout", Title: "Ablation: parallel dissemination fan-out", Run: AblateFanout},
		{ID: "ablate-delta", Title: "Ablation: delta-encoded replica transfer", Run: AblateDelta},
		{ID: "ablate-syncstall", Title: "Ablation: sharded non-blocking lock manager under a dead peer", Run: AblateSyncStall},
		{ID: "ablate-obs", Title: "Ablation: observability-plane overhead on fan-out and delta paths", Run: AblateObs},
		{ID: "load", Title: "Open-loop load at 100s of sites: serial vs batched I/O + timer wheel", Run: AblateLoad},
		{ID: "ablate-tree", Title: "Ablation: locality-aware dissemination relay tree", Run: AblateTree},
		{ID: "ablate-home", Title: "Ablation: consistent-hash lock homes with standby failover", Run: AblateHome},
		{ID: "ablate-store", Title: "Ablation: durable replica store — crash recovery vs in-memory", Run: AblateStore},
	}
}

// Lookup finds an experiment by ID.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// env is a named network environment.
type env struct {
	name    string
	profile netsim.Profile
}

func lanEnv() env { return env{name: "LAN (Fast Ethernet)", profile: netsim.LANFastEthernet()} }
func wanEnv() env { return env{name: "WAN (Internet)", profile: netsim.WANInternet97()} }

// harness is an in-process cluster built directly on the core layer.
type harness struct {
	cfg   Config
	sim   *transport.SimNetwork
	nodes map[wire.SiteID]*core.Node
	cost  netsim.CostModel
	codec marshal.Codec
}

// harnessOpts tunes optional harness features.
type harnessOpts struct {
	// fastCodec swaps in the custom marshaling library ablation.
	fastCodec bool
	// streamReuse enables the hybrid connection-reuse extension.
	streamReuse bool
	// fanout selects the dissemination concurrency: 0 keeps the
	// paper-faithful sequential fan-out every figure reproduces, -1 runs
	// fully parallel, and a positive value bounds the concurrency.
	fanout int
	// delta enables delta-encoded replica transfer.
	delta bool
	// reqTimeout overrides the control-message timeout (model time; it is
	// multiplied by cfg.Scale like every other modelled delay). 0 keeps
	// the default 30s.
	reqTimeout time.Duration
	// syncSerial reproduces the pre-S30 blocking synchronization thread
	// for the syncstall ablation baseline.
	syncSerial bool
	// metrics attaches an observability registry to every site (the
	// ablate-obs instrumented leg); nil leaves the plane disabled.
	metrics *obs.Registry
}

// disseminationFanout translates the harness convention to the core
// config's (where 0 already means fully parallel).
func (ho harnessOpts) disseminationFanout() int {
	switch {
	case ho.fanout == 0:
		return 1
	case ho.fanout < 0:
		return 0
	default:
		return ho.fanout
	}
}

// newHarness builds sites 1..n over the environment with the JDK1 cost
// model and JDK-style codec (the paper's prototype platform).
func newHarness(cfg Config, e env, mode core.TransferMode, n int) (*harness, error) {
	return newHarnessOpts(cfg, e, mode, n, harnessOpts{})
}

// newHarnessOpts is newHarness with feature switches.
func newHarnessOpts(cfg Config, e env, mode core.TransferMode, n int, ho harnessOpts) (*harness, error) {
	cost := netsim.JDK1()
	var codec marshal.Codec
	if !ho.fastCodec {
		codec = marshal.NewJavaStyle(cost.Scaled(cfg.Scale))
	} else {
		cost = cost.FastMarshal()
		codec = marshal.NewFast(netsim.Native())
	}
	scaledCost := cost.Scaled(cfg.Scale)

	reqTimeout := 30 * time.Second
	if ho.reqTimeout > 0 {
		reqTimeout = time.Duration(float64(ho.reqTimeout) * cfg.Scale)
		if reqTimeout < 100*time.Millisecond {
			reqTimeout = 100 * time.Millisecond
		}
	}

	sim := transport.NewSimNetwork(netsim.Config{Profile: e.profile.Scaled(cfg.Scale), Seed: 99})
	h := &harness{cfg: cfg, sim: sim, nodes: make(map[wire.SiteID]*core.Node), cost: scaledCost, codec: codec}

	directory := make(map[wire.SiteID]string, n)
	stacks := make(map[wire.SiteID]*transport.SimStack, n)
	for i := 1; i <= n; i++ {
		site := wire.SiteID(i)
		stack, err := sim.NewStack(netsim.NodeID(i))
		if err != nil {
			_ = sim.Close()
			return nil, err
		}
		stacks[site] = stack
		directory[site] = stack.Datagram().LocalAddr()
	}
	for i := 1; i <= n; i++ {
		site := wire.SiteID(i)
		ep := mnet.NewEndpoint(stacks[site].Datagram(), mnet.Config{
			Cost:    scaledCost,
			Metrics: ho.metrics,
			// Generous retransmission timing: the harness runs lossless
			// links, and large scaled costs must never trigger spurious
			// retransmits.
			RTO:        2 * time.Second,
			MaxRetries: 5,
			Window:     256,
		})
		node, err := core.NewNode(core.Config{
			Site:                site,
			Endpoint:            ep,
			Stack:               stacks[site],
			Directory:           directory,
			IsHome:              site == wire.HomeSite,
			Codec:               codec,
			Cost:                scaledCost,
			Mode:                mode,
			StreamReuse:         ho.streamReuse,
			DeltaTransfer:       ho.delta,
			DisseminationFanout: ho.disseminationFanout(),
			SyncSerialIO:        ho.syncSerial,
			RequestTimeout:      reqTimeout,
			TransferTimeout:     120 * time.Second,
			Log:                 eventlog.Nop(),
			Metrics:             ho.metrics,
		})
		if err != nil {
			_ = h.Close()
			return nil, err
		}
		h.nodes[site] = node
	}
	return h, nil
}

// kill fail-stops a site: its node closes and the network silences it.
func (h *harness) kill(site wire.SiteID) {
	_ = h.nodes[site].Close()
	h.sim.Kill(netsim.NodeID(site))
}

// Close tears the harness down.
func (h *harness) Close() error {
	for _, n := range h.nodes {
		_ = n.Close()
	}
	if h.sim != nil {
		return h.sim.Close()
	}
	return nil
}

// deScale converts a measured wall-clock duration back to model time.
func (h *harness) deScale(d time.Duration) time.Duration {
	return time.Duration(float64(d) / h.cfg.Scale)
}

// setupSharedReplica creates a byte replica of the given size under the
// lock at site 1 and attaches it at every other site, returning the home
// handle's ReplicaLock.
func (h *harness) setupSharedReplica(ctx context.Context, lock wire.LockID, name string, size int) (*core.ReplicaLock, error) {
	home := h.nodes[wire.HomeSite]
	hnd := home.NewHandle("bench-home")
	r, err := home.CreateReplica(name, marshal.Bytes(make([]byte, size)), len(h.nodes))
	if err != nil {
		return nil, err
	}
	rl := hnd.ReplicaLock(lock)
	if err := rl.Associate(ctx, r); err != nil {
		return nil, err
	}
	for site, node := range h.nodes {
		if site == wire.HomeSite {
			continue
		}
		hr, err := node.AttachReplica(name, marshal.Bytes(nil))
		if err != nil {
			return nil, err
		}
		hrl := node.NewHandle("bench-worker").ReplicaLock(lock)
		if err := hrl.Associate(ctx, hr); err != nil {
			return nil, err
		}
	}
	// Let registrations land at the synchronization thread.
	time.Sleep(h.settleDelay())
	return rl, nil
}

// settleDelay is a registration settling pause proportionate to scale.
func (h *harness) settleDelay() time.Duration {
	d := time.Duration(float64(200*time.Millisecond) * h.cfg.Scale)
	if d < 20*time.Millisecond {
		d = 20 * time.Millisecond
	}
	return d
}

// measure runs f cfg.Trials times after one warmup, returning the sample
// of de-scaled durations.
func (h *harness) measure(warmup bool, f func() error) (*stats.Sample, error) {
	if warmup {
		if err := f(); err != nil {
			return nil, err
		}
	}
	s := &stats.Sample{}
	for i := 0; i < h.cfg.Trials; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return nil, err
		}
		s.Add(h.deScale(time.Since(start)))
	}
	return s, nil
}

// benchCtx returns a generous context for one experiment.
func benchCtx() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 30*time.Minute)
}
