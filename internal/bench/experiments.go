package bench

import (
	"fmt"
	"time"

	"mocha/internal/core"
	"mocha/internal/marshal"
	"mocha/internal/netsim"
	"mocha/internal/stats"
	"mocha/internal/wire"
)

// Table1 regenerates Table 1: lock acquisition with no data transfer, on
// the LAN and WAN environments. The acquiring thread is the last owner of
// the lock, so the grant carries VERSIONOK and the cost is one
// request/grant round trip through the synchronization thread.
func Table1(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	table := stats.NewTable("environment", "mean (ms)", "stddev (ms)", "paper (ms)")
	paperVals := map[string]string{"LAN (Fast Ethernet)": "5", "WAN (Internet)": "19"}

	for _, e := range []env{lanEnv(), wanEnv()} {
		h, err := newHarness(cfg, e, core.ModeMNet, 2)
		if err != nil {
			return Result{}, err
		}
		sample, err := lockLatency(h)
		_ = h.Close()
		if err != nil {
			return Result{}, fmt.Errorf("table1 %s: %w", e.name, err)
		}
		table.AddRow(e.name, stats.Millis(sample.Mean()), stats.Millis(sample.Stddev()), paperVals[e.name])
	}
	return Result{
		ID:    "table1",
		Title: "Time to acquire a lock (with no data transfer)",
		Paper: "LAN 5 ms, WAN 19 ms; wide-area lock acquisition is significantly more expensive",
		Table: table.String(),
	}, nil
}

// lockLatency measures a VERSIONOK lock acquisition from site 2.
func lockLatency(h *harness) (*stats.Sample, error) {
	ctx, cancel := benchCtx()
	defer cancel()
	if _, err := h.setupSharedReplica(ctx, 1, "locked", 16); err != nil {
		return nil, err
	}
	worker := h.nodes[2].NewHandle("acquirer")
	rl := worker.ReplicaLock(1)

	// First cycle transfers the initial data; afterwards site 2 is the
	// last owner and every grant is VERSIONOK.
	if err := rl.Lock(ctx); err != nil {
		return nil, err
	}
	if err := rl.Unlock(ctx); err != nil {
		return nil, err
	}
	// Table 1 reports lock acquisition alone; the release between trials
	// stays outside the timed region.
	s := &stats.Sample{}
	for i := 0; i < h.cfg.Trials+1; i++ {
		start := time.Now()
		if err := rl.Lock(ctx); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		if err := rl.Unlock(ctx); err != nil {
			return nil, err
		}
		if i > 0 {
			s.Add(h.deScale(elapsed))
		}
	}
	return s, nil
}

// Fig8 regenerates Figure 8: time to marshal replicas into byte arrays as
// replica size grows, under the JDK 1.1 marshaling path ("dynamic arrays
// and marshal a single byte at a time").
func Fig8(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()
	codec := marshal.NewJavaStyle(netsim.JDK1().Scaled(cfg.Scale))
	table := stats.NewTable("replica size", "marshal (ms)", "unmarshal (ms)")

	h := &harness{cfg: cfg} // deScale helper only
	for _, kb := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256} {
		size := kb * 1024
		content := marshal.Bytes(make([]byte, size))
		var blob []byte
		mSample, err := h.measure(true, func() error {
			var err error
			blob, err = codec.Marshal(content)
			return err
		})
		if err != nil {
			return Result{}, err
		}
		dst := marshal.Bytes(nil)
		uSample, err := h.measure(true, func() error {
			return codec.Unmarshal(blob, dst)
		})
		if err != nil {
			return Result{}, err
		}
		table.AddRow(fmt.Sprintf("%dK", kb), stats.Millis(mSample.Mean()), stats.Millis(uSample.Mean()))
	}
	return Result{
		ID:    "fig8",
		Title: "Time to marshal replicas",
		Paper: "marshaling grows steeply with replica size and is 'somewhat expensive for large replicas' (JDK 1.1 marshals a single byte at a time); ~3 ms for the app's small replicas",
		Table: table.String(),
		Notes: []string{"the ablate-marshal experiment shows the planned custom marshaling library"},
	}, nil
}

// figSpec describes one of Figures 9-14.
type figSpec struct {
	num   int
	e     env
	sizeK int
}

func specFor(num int) figSpec {
	switch num {
	case 9:
		return figSpec{num: 9, e: lanEnv(), sizeK: 1}
	case 10:
		return figSpec{num: 10, e: wanEnv(), sizeK: 1}
	case 11:
		return figSpec{num: 11, e: lanEnv(), sizeK: 4}
	case 12:
		return figSpec{num: 12, e: wanEnv(), sizeK: 4}
	case 13:
		return figSpec{num: 13, e: lanEnv(), sizeK: 256}
	default:
		return figSpec{num: 14, e: wanEnv(), sizeK: 256}
	}
}

var figPaper = map[int]string{
	9:  "basic MNet protocol is the more efficient approach for 1K replicas on the LAN",
	10: "basic MNet protocol is the more efficient approach for 1K replicas on the WAN",
	11: "at 4K the hybrid protocol begins to perform much better on the LAN",
	12: "hybrid ~30% better than basic at 4K to 6 WAN sites; UR 1 to 2 roughly doubles the overhead",
	13: "at 256K the superiority of the hybrid protocol is clear on the LAN",
	14: "at 256K the hybrid protocol reduces WAN transfer costs by as much as ~70%",
}

// figure builds the Run function for one of Figures 9-14: time to
// disseminate replicas of the figure's size to 1..MaxSites hosts, under
// the basic (MNet-only) protocol and the hybrid protocol.
func figure(num int) func(Config) (Result, error) {
	return func(cfg Config) (Result, error) {
		cfg = cfg.WithDefaults()
		spec := specFor(num)

		basic, err := disseminationSeries(cfg, spec, core.ModeMNet)
		if err != nil {
			return Result{}, fmt.Errorf("fig%d basic: %w", num, err)
		}
		hybrid, err := disseminationSeries(cfg, spec, core.ModeHybrid)
		if err != nil {
			return Result{}, fmt.Errorf("fig%d hybrid: %w", num, err)
		}

		table := stats.NewTable("sites", "basic mocha (ms)", "hybrid (ms)", "winner")
		var notes []string
		for k := 1; k <= cfg.MaxSites; k++ {
			b, hy := basic[k-1], hybrid[k-1]
			winner := "basic"
			if hy.mean() < b.mean() {
				winner = "hybrid"
			}
			table.AddRow(k, stats.Millis(b.mean()), stats.Millis(hy.mean()), winner)
		}
		last := cfg.MaxSites
		b, hy := basic[last-1], hybrid[last-1]
		if hy.mean() < b.mean() {
			notes = append(notes, fmt.Sprintf("hybrid reduces cost by %.0f%% at %d sites",
				100*(1-float64(hy.mean())/float64(b.mean())), last))
		} else {
			notes = append(notes, fmt.Sprintf("basic protocol is %.0f%% cheaper at %d sites",
				100*(1-float64(b.mean())/float64(hy.mean())), last))
		}
		if len(basic) >= 2 && basic[0].mean() > 0 {
			notes = append(notes, fmt.Sprintf("basic protocol 1->2 sites scales by %.2fx",
				float64(basic[1].mean())/float64(basic[0].mean())))
		}

		return Result{
			ID:    fmt.Sprintf("fig%d", num),
			Title: fmt.Sprintf("%s transfer of %dK replicas to multiple hosts", spec.e.name, spec.sizeK),
			Paper: figPaper[num],
			Table: table.String(),
			Notes: notes,
		}, nil
	}
}

// sampleView pairs a sample with its convenience accessor for table
// building.
type sampleView struct {
	s *stats.Sample
}

func (v *sampleView) mean() time.Duration { return v.s.Mean() }

// disseminationSeries measures push dissemination of a sizeK replica to
// k = 1..MaxSites sites under one protocol. Marshaling happens outside the
// timed region (the paper measures it separately, Figure 8); the timed
// region is the transfer itself, from first control message to the last
// site's application acknowledgment.
func disseminationSeries(cfg Config, spec figSpec, mode core.TransferMode) ([]*sampleView, error) {
	return disseminationSeriesOpts(cfg, spec, mode, harnessOpts{})
}

// disseminationSeriesOpts is disseminationSeries with harness feature
// switches (used by the ablations).
func disseminationSeriesOpts(cfg Config, spec figSpec, mode core.TransferMode, ho harnessOpts) ([]*sampleView, error) {
	h, err := newHarnessOpts(cfg, spec.e, mode, cfg.MaxSites+1, ho)
	if err != nil {
		return nil, err
	}
	defer func() { _ = h.Close() }()

	ctx, cancel := benchCtx()
	defer cancel()
	lock := wire.LockID(2)
	if _, err := h.setupSharedReplica(ctx, lock, "payload", spec.sizeK*1024); err != nil {
		return nil, err
	}
	home := h.nodes[wire.HomeSite]

	out := make([]*sampleView, 0, cfg.MaxSites)
	for k := 1; k <= cfg.MaxSites; k++ {
		targets := make([]wire.SiteID, 0, k)
		for i := 0; i < k; i++ {
			targets = append(targets, wire.SiteID(i+2))
		}
		s := &stats.Sample{}
		for i := 0; i < h.cfg.Trials+1; i++ {
			version, payloads, err := home.PreparePush(lock)
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if _, err := home.PushPayloads(ctx, lock, version, payloads, targets); err != nil {
				return nil, err
			}
			elapsed := time.Since(start)
			if i == 0 {
				continue // warmup
			}
			s.Add(h.deScale(elapsed))
		}
		out = append(out, &sampleView{s: s})
	}
	return out, nil
}
