package bench

import (
	"fmt"
	"time"

	"mocha/internal/core"
	"mocha/internal/marshal"
	"mocha/internal/stats"
	"mocha/internal/wire"
)

// AblateSyncStall quantifies the S30 sharded non-blocking lock manager.
// One WAN site dies holding the newest version of several locks; a second
// site then acquires each of them, forcing the Section 4 transfer recovery
// (directive to the dead daemon times out, daemons are polled, the grant
// is revised). While those recoveries run, a third site continuously
// acquires and releases an unrelated lock, and we measure its grant
// latency. With the pre-S30 synchronization thread (SyncSerialIO: every
// send inline in the port dispatcher's critical section) the unrelated
// lock stalls for up to RequestTimeout per recovery; with the sharded
// manager the recoveries run on completion workers and the unrelated lock
// stays at its all-healthy latency.
func AblateSyncStall(cfg Config) (Result, error) {
	cfg = cfg.WithDefaults()

	type outcome struct {
		mean, max time.Duration
		cycles    int
	}
	configs := []struct {
		key    string
		name   string
		kill   bool
		serial bool
	}{
		{key: "healthy", name: "all sites healthy (sharded)", kill: false, serial: false},
		{key: "dead_serial", name: "one dead site, serial sync thread (pre-S30)", kill: true, serial: true},
		{key: "dead_sharded", name: "one dead site, sharded sync thread", kill: true, serial: false},
	}

	table := stats.NewTable("configuration", "unrelated-lock grant mean (ms)", "max (ms)", "vs healthy")
	metrics := make(map[string]float64)
	outcomes := make(map[string]outcome, len(configs))
	for _, c := range configs {
		mean, max, cycles, err := syncStallRun(cfg, c.kill, c.serial)
		if err != nil {
			return Result{}, fmt.Errorf("ablate-syncstall %s: %w", c.key, err)
		}
		outcomes[c.key] = outcome{mean: mean, max: max, cycles: cycles}
		metrics[c.key+"_grant_ms"] = float64(mean) / float64(time.Millisecond)
		metrics[c.key+"_grant_max_ms"] = float64(max) / float64(time.Millisecond)
	}
	healthy := outcomes["healthy"].mean
	for _, c := range configs {
		o := outcomes[c.key]
		ratio := 0.0
		if healthy > 0 {
			ratio = float64(o.mean) / float64(healthy)
		}
		metrics[c.key+"_stall_x"] = ratio
		table.AddRow(c.name, stats.Millis(o.mean), stats.Millis(o.max), fmt.Sprintf("%.2fx", ratio))
	}

	var notes []string
	if serial, sharded := metrics["dead_serial_stall_x"], metrics["dead_sharded_stall_x"]; serial > 0 {
		notes = append(notes, fmt.Sprintf(
			"dead peer inflates unrelated-lock grants %.1fx with the serial sync thread, %.2fx with the sharded one",
			serial, sharded))
	}
	return Result{
		ID:      "ablate-syncstall",
		Title:   "Sharded non-blocking lock manager: unrelated-lock grant latency under a dead peer",
		Paper:   "Section 4's failure handling (transfer directives, daemon polls) runs network I/O from the synchronization thread; done inline it head-of-line blocks every lock behind one dead peer for up to RequestTimeout",
		Table:   table.String(),
		Notes:   notes,
		Metrics: metrics,
	}, nil
}

// syncStallRun measures one configuration: mean and max grant latency on a
// healthy, unrelated lock while another site walks a set of locks whose
// newest version lives on a (possibly dead) peer. Returns de-scaled model
// time and the number of probe cycles measured.
func syncStallRun(cfg Config, kill, serial bool) (time.Duration, time.Duration, int, error) {
	const (
		stallLocks = 3
		stallBase  = wire.LockID(101)
		hotLock    = wire.LockID(200)
		doomed     = wire.SiteID(4)
		walker     = wire.SiteID(2)
		prober     = wire.SiteID(3)
	)
	h, err := newHarnessOpts(cfg, wanEnv(), core.ModeMNet, 4, harnessOpts{
		fastCodec:  true,
		reqTimeout: time.Second,
		syncSerial: serial,
	})
	if err != nil {
		return 0, 0, 0, err
	}
	defer func() { _ = h.Close() }()
	ctx, cancel := benchCtx()
	defer cancel()

	home := h.nodes[wire.HomeSite]
	homeHnd := home.NewHandle("bench-home")
	attach := func(site wire.SiteID, lock wire.LockID, name string) (*core.ReplicaLock, error) {
		r, err := h.nodes[site].AttachReplica(name, marshal.Bytes(nil))
		if err != nil {
			return nil, err
		}
		rl := h.nodes[site].NewHandle(fmt.Sprintf("bench-%d", site)).ReplicaLock(lock)
		if err := rl.Associate(ctx, r); err != nil {
			return nil, err
		}
		return rl, nil
	}

	// Stall locks: created at home, shared with the walker and the doomed
	// site. The doomed site touches each once so it becomes the sole
	// holder of the newest version (UR=1).
	walkerLocks := make([]*core.ReplicaLock, 0, stallLocks)
	for i := 0; i < stallLocks; i++ {
		lock := stallBase + wire.LockID(i)
		name := fmt.Sprintf("stall-%d", i)
		r, err := home.CreateReplica(name, marshal.Bytes(make([]byte, 64)), 3)
		if err != nil {
			return 0, 0, 0, err
		}
		rl := homeHnd.ReplicaLock(lock)
		if err := rl.Associate(ctx, r); err != nil {
			return 0, 0, 0, err
		}
		wrl, err := attach(walker, lock, name)
		if err != nil {
			return 0, 0, 0, err
		}
		walkerLocks = append(walkerLocks, wrl)
		drl, err := attach(doomed, lock, name)
		if err != nil {
			return 0, 0, 0, err
		}
		if err := drl.Lock(ctx); err != nil {
			return 0, 0, 0, err
		}
		if err := drl.Unlock(ctx); err != nil {
			return 0, 0, 0, err
		}
	}
	// The unrelated hot lock, cycled from the prober site.
	if r, err := home.CreateReplica("hot", marshal.Bytes(make([]byte, 64)), 2); err != nil {
		return 0, 0, 0, err
	} else if err := homeHnd.ReplicaLock(hotLock).Associate(ctx, r); err != nil {
		return 0, 0, 0, err
	}
	hot, err := attach(prober, hotLock, "hot")
	if err != nil {
		return 0, 0, 0, err
	}
	time.Sleep(h.settleDelay())

	cycle := func() (time.Duration, error) {
		start := time.Now()
		if err := hot.Lock(ctx); err != nil {
			return 0, err
		}
		lat := time.Since(start)
		return lat, hot.Unlock(ctx)
	}
	// Warm up: the first acquire pays the initial transfer.
	for i := 0; i < 2; i++ {
		if _, err := cycle(); err != nil {
			return 0, 0, 0, err
		}
	}

	if kill {
		h.kill(doomed)
	}
	walked := make(chan error, 1)
	go func() {
		for _, rl := range walkerLocks {
			if err := rl.Lock(ctx); err != nil {
				walked <- err
				return
			}
			if err := rl.Unlock(ctx); err != nil {
				walked <- err
				return
			}
		}
		walked <- nil
	}()

	// Cycle the unrelated lock until the walk completes (minimum three
	// cycles so the healthy run has a sample too).
	lat := &stats.Sample{}
	var max time.Duration
	cycles := 0
	walkErr := error(nil)
	walking := true
	for walking || cycles < 3 {
		d, err := cycle()
		if err != nil {
			return 0, 0, 0, err
		}
		d = h.deScale(d)
		lat.Add(d)
		if d > max {
			max = d
		}
		cycles++
		select {
		case walkErr = <-walked:
			walking = false
		default:
		}
	}
	if walking {
		walkErr = <-walked
	}
	if walkErr != nil {
		return 0, 0, 0, fmt.Errorf("stall-lock walk: %w", walkErr)
	}
	return lat.Mean(), max, cycles, nil
}
