// Package hostfile reads and writes Mocha host files. "When a new
// instance of the Mocha object is created, a hostfile is read which
// provides a list of potential sites at which remote threads may be
// spawned. The Mocha system provides a tool to generate this host file"
// (cmd/mochahosts here).
//
// The format is line-oriented:
//
//	# comment
//	<site-id> <name> <endpoint-address>
//
// Site 1 is always the home site. Endpoint addresses are transport
// addresses: "host:port" for real UDP deployments, bare node numbers for
// the in-process simulated network.
package hostfile

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"mocha/internal/wire"
)

// Entry is one site line.
type Entry struct {
	Site wire.SiteID
	Name string
	Addr string
}

// HostFile is a parsed host file.
type HostFile struct {
	Entries []Entry
}

// ErrNoHome reports a host file without site 1.
var ErrNoHome = errors.New("hostfile: no home site (site 1)")

// Parse reads host file text.
func Parse(r io.Reader) (*HostFile, error) {
	hf := &HostFile{}
	seen := make(map[wire.SiteID]bool)
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("hostfile: line %d: want \"site name address\", got %q", lineNo, line)
		}
		id, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil || id == 0 {
			return nil, fmt.Errorf("hostfile: line %d: bad site id %q", lineNo, fields[0])
		}
		site := wire.SiteID(id)
		if seen[site] {
			return nil, fmt.Errorf("hostfile: line %d: duplicate site %d", lineNo, site)
		}
		seen[site] = true
		hf.Entries = append(hf.Entries, Entry{Site: site, Name: fields[1], Addr: fields[2]})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("hostfile: read: %w", err)
	}
	if !seen[wire.HomeSite] {
		return nil, ErrNoHome
	}
	sort.Slice(hf.Entries, func(i, j int) bool { return hf.Entries[i].Site < hf.Entries[j].Site })
	return hf, nil
}

// Load reads a host file from disk.
func Load(path string) (*HostFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("hostfile: %w", err)
	}
	defer func() { _ = f.Close() }()
	return Parse(f)
}

// Directory converts the host file to the site directory Config wants.
func (hf *HostFile) Directory() map[wire.SiteID]string {
	dir := make(map[wire.SiteID]string, len(hf.Entries))
	for _, e := range hf.Entries {
		dir[e.Site] = e.Addr
	}
	return dir
}

// Home returns the home entry.
func (hf *HostFile) Home() Entry {
	for _, e := range hf.Entries {
		if e.Site == wire.HomeSite {
			return e
		}
	}
	return Entry{}
}

// Lookup finds an entry by site.
func (hf *HostFile) Lookup(site wire.SiteID) (Entry, bool) {
	for _, e := range hf.Entries {
		if e.Site == site {
			return e, true
		}
	}
	return Entry{}, false
}

// Sites lists all site IDs in order.
func (hf *HostFile) Sites() []wire.SiteID {
	out := make([]wire.SiteID, 0, len(hf.Entries))
	for _, e := range hf.Entries {
		out = append(out, e.Site)
	}
	return out
}

// WriteTo renders the host file. It implements io.WriterTo.
func (hf *HostFile) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := fmt.Fprintf(w, "# Mocha host file: site 1 is the home site\n")
	total += int64(n)
	if err != nil {
		return total, err
	}
	for _, e := range hf.Entries {
		n, err := fmt.Fprintf(w, "%d %s %s\n", e.Site, e.Name, e.Addr)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Generate builds a host file for n local sites with UDP ports starting at
// basePort — what the mochahosts tool emits for single-machine multi-
// process runs.
func Generate(n int, host string, basePort int) *HostFile {
	hf := &HostFile{}
	for i := 1; i <= n; i++ {
		name := fmt.Sprintf("site%d", i)
		if i == 1 {
			name = "home"
		}
		hf.Entries = append(hf.Entries, Entry{
			Site: wire.SiteID(i),
			Name: name,
			Addr: fmt.Sprintf("%s:%d", host, basePort+i-1),
		})
	}
	return hf
}
