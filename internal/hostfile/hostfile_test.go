package hostfile

import (
	"errors"
	"strings"
	"testing"
)

func TestParseAndWrite(t *testing.T) {
	in := `
# test cluster
2 ultra2 10.0.0.2:9000
1 home 10.0.0.1:9000

3 sparc20 10.0.0.3:9000
`
	hf, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(hf.Entries) != 3 {
		t.Fatalf("entries = %d", len(hf.Entries))
	}
	// Sorted by site.
	if hf.Entries[0].Site != 1 || hf.Entries[0].Name != "home" {
		t.Fatalf("first entry %+v", hf.Entries[0])
	}
	if hf.Home().Addr != "10.0.0.1:9000" {
		t.Fatalf("home = %+v", hf.Home())
	}
	if e, ok := hf.Lookup(3); !ok || e.Name != "sparc20" {
		t.Fatalf("lookup(3) = %+v %v", e, ok)
	}
	if _, ok := hf.Lookup(9); ok {
		t.Fatal("lookup(9) found phantom site")
	}
	dir := hf.Directory()
	if dir[2] != "10.0.0.2:9000" {
		t.Fatalf("directory = %v", dir)
	}
	if got := hf.Sites(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("sites = %v", got)
	}

	var sb strings.Builder
	if _, err := hf.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	hf2, err := Parse(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if len(hf2.Entries) != 3 || hf2.Entries[2].Addr != "10.0.0.3:9000" {
		t.Fatalf("round trip lost data: %+v", hf2.Entries)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{name: "missing fields", in: "1 home\n"},
		{name: "bad site id", in: "zero home addr\n"},
		{name: "site zero", in: "0 home addr\n"},
		{name: "duplicate", in: "1 a x\n1 b y\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(strings.NewReader(tt.in)); err == nil {
				t.Fatalf("Parse(%q) succeeded", tt.in)
			}
		})
	}
	if _, err := Parse(strings.NewReader("2 a x\n")); !errors.Is(err, ErrNoHome) {
		t.Fatalf("no-home error = %v", err)
	}
}

func TestGenerate(t *testing.T) {
	hf := Generate(4, "127.0.0.1", 9000)
	if len(hf.Entries) != 4 {
		t.Fatalf("entries = %d", len(hf.Entries))
	}
	if hf.Entries[0].Name != "home" || hf.Entries[0].Addr != "127.0.0.1:9000" {
		t.Fatalf("home = %+v", hf.Entries[0])
	}
	if hf.Entries[3].Addr != "127.0.0.1:9003" {
		t.Fatalf("site4 = %+v", hf.Entries[3])
	}
}
