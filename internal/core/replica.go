package core

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mocha/internal/marshal"
	"mocha/internal/obs"
	"mocha/internal/wire"
)

// Replica is one named shared object at one site. "All objects that are
// desired to be shared in the Mocha system must be of type Replica or
// subclass from it"; here the typed payload lives in marshal.Content and
// typed wrappers in the public API play the role of generated subclasses.
type Replica struct {
	node    *Node
	name    string
	content *marshal.Content
	copies  int
	created bool

	// cachedMu guards content for replicas registered as cached
	// (unguarded) objects, which the daemon updates outside any lock.
	cachedMu sync.Mutex
}

// ReadCached runs f with exclusive access to a cached replica's content.
// Replicas guarded by a ReplicaLock do not need this: entry consistency
// already serializes access. Cached replicas have no lock, so concurrent
// push application and reading must synchronize here.
func (r *Replica) ReadCached(f func(*marshal.Content)) {
	r.cachedMu.Lock()
	defer r.cachedMu.Unlock()
	f(r.content)
}

// CreateReplica creates a shared object with initial data at this site —
// the paper's Replica constructor that takes the data and the desired
// number of copies.
func (n *Node) CreateReplica(name string, content *marshal.Content, copies int) (*Replica, error) {
	if name == "" {
		return nil, fmt.Errorf("core: replica needs a name")
	}
	if content == nil {
		return nil, fmt.Errorf("core: replica %q needs content", name)
	}
	if copies < 1 {
		copies = 1
	}
	return &Replica{node: n, name: name, content: content, copies: copies, created: true}, nil
}

// AttachReplica obtains a local copy of an existing shared object — the
// paper's second constructor form, `new Replica("flatwareIndex", mocha)`.
// The content's kind declares the expected type; its data is replaced when
// the first consistent version arrives.
func (n *Node) AttachReplica(name string, content *marshal.Content) (*Replica, error) {
	if name == "" {
		return nil, fmt.Errorf("core: replica needs a name")
	}
	if content == nil {
		return nil, fmt.Errorf("core: replica %q needs content", name)
	}
	return &Replica{node: n, name: name, content: content}, nil
}

// Name returns the replica's cluster-wide identifier.
func (r *Replica) Name() string { return r.name }

// Content returns the replica's typed payload. Access it only between
// Lock and Unlock of the associated ReplicaLock (entry consistency).
func (r *Replica) Content() *marshal.Content { return r.content }

// Copies returns the requested replication factor (the paper's numcopies).
func (r *Replica) Copies() int { return r.copies }

// lockLocal is the per-site state shared by every ReplicaLock object with
// the same ID: the local serialization gate, the associated replicas, and
// the local data version.
type lockLocal struct {
	id wire.LockID
	// gate serializes local threads: "if another local thread currently
	// has this lock or waiting for it: wait()".
	gate chan struct{}

	mu       sync.Mutex
	replicas []*Replica
	byName   map[string]*Replica
	version  uint64
	// pending buffers payloads for names not yet associated locally.
	pending map[string]pendingPayload
	ur      int
	// cachedPayloads memoizes the marshaled form of the replicas at
	// cachedVersion, so repeated transfers of an unchanged version (a
	// release-time push followed by acquisition-driven TRANSFERREPLICA
	// directives, say) marshal once. Invalidated whenever the replica set
	// or the content behind the current version can have changed.
	cachedVersion  uint64
	cachedPayloads []wire.ReplicaPayload
	// dlog chains per-version dirty ranges for delta transfer; nil when
	// Config.DeltaTransfer is off.
	dlog *updateLog
	// prevVersion/prevPayloads hold the marshaled form of the version that
	// bumpVersionLocked retired, until the next marshal diffs against it to
	// record the version step. Cleared once consumed or invalidated.
	prevVersion  uint64
	prevPayloads []wire.ReplicaPayload
	// holder is the local thread currently holding the global lock.
	holder     wire.ThreadID
	heldGrant  *wire.Grant
	heldShared bool
	// uncommitted marks content an exclusive holder mutated in place and
	// then demonstrably failed to commit (the crash-simulating abort in
	// Unlock). While set, the daemon must neither serve the bytes as the
	// labeled version nor advertise them to recovery polls — a broken
	// hold's writes would otherwise leak as a dirty read. Holders that
	// die without running any local code (a killed thread) are covered by
	// the synchronization thread's per-lock dirty-site set instead.
	uncommitted bool
	// fence is the highest fencing token a grant has carried to this site
	// for the lock. Persisted with durable-store records so a recovered
	// site can prove how far its last hold was fenced; the authoritative
	// counter lives at the home.
	fence uint64
	// waiters are version watchers (threads waiting for transferred data).
	waiters []*versionWaiter
}

type pendingPayload struct {
	version uint64
	data    []byte
}

type versionWaiter struct {
	min uint64
	ch  chan struct{}
}

func newLockLocal(id wire.LockID, deltaDepth int) *lockLocal {
	st := &lockLocal{
		id:      id,
		gate:    make(chan struct{}, 1),
		byName:  make(map[string]*Replica),
		pending: make(map[string]pendingPayload),
		ur:      1,
	}
	if deltaDepth > 0 {
		st.dlog = newUpdateLog(deltaDepth)
	}
	return st
}

// versionReached reports whether local data is at least min, registering a
// waiter otherwise. An uncommitted copy vouches for nothing: a broken
// exclusive hold may have scribbled on the content while the version
// label stayed put, so the label alone cannot satisfy a grant — the
// waiter stands until committed bytes arrive and clear the flag.
func (st *lockLocal) versionReached(min uint64) (bool, *versionWaiter) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.version >= min && !st.uncommitted {
		return true, nil
	}
	w := &versionWaiter{min: min, ch: make(chan struct{}, 1)}
	st.waiters = append(st.waiters, w)
	return false, w
}

// notifyVersionLocked wakes waiters satisfied by the current version.
// Caller holds st.mu.
func (st *lockLocal) notifyVersionLocked() {
	kept := st.waiters[:0]
	for _, w := range st.waiters {
		if st.version >= w.min && !st.uncommitted {
			select {
			case w.ch <- struct{}{}:
			default:
			}
			continue
		}
		kept = append(kept, w)
	}
	st.waiters = kept
}

// marshalPayloadsLocked returns the marshaled form of the lock's replicas
// at the current version, serving repeated requests for an unchanged
// version from the version-keyed cache. The returned slice is shared and
// must be treated as read-only. Caller holds st.mu.
func (st *lockLocal) marshalPayloadsLocked(codec marshal.Codec) ([]wire.ReplicaPayload, error) {
	if st.cachedPayloads != nil && st.cachedVersion == st.version {
		return st.cachedPayloads, nil
	}
	payloads := make([]wire.ReplicaPayload, 0, len(st.replicas))
	for _, r := range st.replicas {
		blob, err := codec.Marshal(r.content)
		if err != nil {
			return nil, fmt.Errorf("marshal replica %q: %w", r.name, err)
		}
		payloads = append(payloads, wire.ReplicaPayload{Name: r.name, Data: blob})
	}
	st.captureStepLocked(payloads)
	st.cachedVersion = st.version
	st.cachedPayloads = payloads
	return payloads, nil
}

// captureStepLocked records the version step that produced the freshly
// marshaled payloads, diffing them against the retired predecessor that
// bumpVersionLocked saved. Each replica contributes its tracked dirty
// ranges when they are trusted and the blob kept its length; otherwise the
// two blobs are byte-diffed. Caller holds st.mu.
func (st *lockLocal) captureStepLocked(payloads []wire.ReplicaPayload) {
	if st.dlog == nil {
		return
	}
	// Snapshot and reset the per-replica dirty tracking unconditionally so
	// ranges from this epoch never bleed into the next one, even when the
	// step itself cannot be recorded.
	type dirtySnap struct {
		ranges  []marshal.Range
		trusted bool
	}
	snaps := make(map[string]dirtySnap, len(st.replicas))
	for _, r := range st.replicas {
		ranges, trusted := r.content.DirtySnapshot()
		snaps[r.name] = dirtySnap{ranges: ranges, trusted: trusted}
		r.content.ResetDirty()
	}
	prev := st.prevPayloads
	prevVersion := st.prevVersion
	st.prevPayloads = nil
	if prev == nil || prevVersion+1 != st.version {
		// No known predecessor for this version: the chain is broken.
		st.dlog.reset()
		return
	}
	base := make(map[string][]byte, len(prev))
	for _, p := range prev {
		base[p.Name] = p.Data
	}
	step := deltaStep{
		from:     prevVersion,
		to:       st.version,
		replicas: make(map[string]stepReplica, len(payloads)),
	}
	for _, p := range payloads {
		old, ok := base[p.Name]
		if !ok {
			step.replicas[p.Name] = stepReplica{full: true, newLen: len(p.Data)}
			continue
		}
		sr := stepReplica{newLen: len(p.Data)}
		if sn := snaps[p.Name]; sn.trusted && len(old) == len(p.Data) {
			sr.ranges = marshal.MergeRanges(sn.ranges, len(p.Data))
		} else {
			sr.ranges = marshal.DiffRanges(old, p.Data)
			sr.resized = len(old) != len(p.Data)
		}
		step.replicas[p.Name] = sr
	}
	st.dlog.record(step)
}

// bumpVersionLocked installs a new local version produced here (an
// exclusive release or a push preparation), retiring the old version's
// marshaled cache as the diff base for the step the next marshal records.
// Caller holds st.mu.
func (st *lockLocal) bumpVersionLocked(newVersion uint64) {
	if st.dlog != nil && st.cachedPayloads != nil && st.cachedVersion == st.version {
		st.prevVersion = st.version
		st.prevPayloads = st.cachedPayloads
	} else {
		st.prevPayloads = nil
	}
	st.version = newVersion
	st.invalidatePayloadsLocked()
}

// recordIncomingStepLocked records the version step for payloads applied
// from the network, diffing them against the marshaled cache of the
// version they replace. Caller holds st.mu; st.version is still the old
// version.
func (st *lockLocal) recordIncomingStepLocked(version uint64, payloads []wire.ReplicaPayload) {
	if st.dlog == nil {
		return
	}
	st.prevPayloads = nil
	if st.cachedPayloads == nil || st.cachedVersion != st.version || version != st.version+1 {
		st.dlog.reset()
		return
	}
	base := make(map[string][]byte, len(st.cachedPayloads))
	for _, p := range st.cachedPayloads {
		base[p.Name] = p.Data
	}
	step := deltaStep{
		from:     st.version,
		to:       version,
		replicas: make(map[string]stepReplica, len(payloads)),
	}
	for _, p := range payloads {
		old, ok := base[p.Name]
		if !ok {
			step.replicas[p.Name] = stepReplica{full: true, newLen: len(p.Data)}
			continue
		}
		step.replicas[p.Name] = stepReplica{
			newLen:  len(p.Data),
			resized: len(old) != len(p.Data),
			ranges:  marshal.DiffRanges(old, p.Data),
		}
	}
	st.dlog.record(step)
}

// updatePayloadCacheLocked installs network-applied blobs as the marshaled
// cache for the new version, so this site can itself serve deltas (and
// diff the next incoming step) without re-marshaling. The cache is only
// valid when every associated replica was covered. Caller holds st.mu.
func (st *lockLocal) updatePayloadCacheLocked(version uint64, payloads []wire.ReplicaPayload) {
	base := make(map[string][]byte, len(payloads))
	for _, p := range payloads {
		base[p.Name] = p.Data
	}
	ordered := make([]wire.ReplicaPayload, 0, len(st.replicas))
	for _, r := range st.replicas {
		data, ok := base[r.name]
		if !ok {
			st.invalidatePayloadsLocked()
			return
		}
		ordered = append(ordered, wire.ReplicaPayload{Name: r.name, Data: data})
	}
	st.cachedVersion = version
	st.cachedPayloads = ordered
}

// buildDeltaLocked assembles a ReplicaDelta upgrading a holder of fromV to
// toV, slicing patch data out of the marshaled payloads at toV. It returns
// nil when the update log cannot serve the interval or when the delta
// would not be smaller than the full transfer. Caller holds st.mu.
func (st *lockLocal) buildDeltaLocked(site wire.SiteID, fromV, toV uint64, payloads []wire.ReplicaPayload, reqID uint64, push bool) *wire.ReplicaDelta {
	if st.dlog == nil || fromV == 0 || fromV >= toV {
		return nil
	}
	composed, ok := st.dlog.compose(fromV, toV)
	if !ok {
		return nil
	}
	msg := &wire.ReplicaDelta{
		Lock:        st.id,
		From:        site,
		Version:     toV,
		FromVersion: fromV,
		RequestID:   reqID,
		Push:        push,
		Replicas:    make([]wire.DeltaPayload, 0, len(payloads)),
	}
	deltaBytes, fullBytes := 0, 0
	for _, p := range payloads {
		fullBytes += len(p.Data)
		cd, ok := composed[p.Name]
		if !ok || cd.full {
			msg.Replicas = append(msg.Replicas, wire.DeltaPayload{Name: p.Name, Full: true, Data: p.Data})
			deltaBytes += len(p.Data)
			continue
		}
		dp := wire.DeltaPayload{
			Name:     p.Name,
			NewLen:   uint32(len(p.Data)),
			Checksum: marshal.Checksum(p.Data),
		}
		for _, r := range marshal.MergeRanges(cd.ranges, len(p.Data)) {
			dp.Ops = append(dp.Ops, wire.PatchOp{Off: uint32(r.Off), Data: p.Data[r.Off:r.End()]})
			deltaBytes += r.Len + 8
		}
		msg.Replicas = append(msg.Replicas, dp)
	}
	if deltaBytes >= fullBytes {
		return nil
	}
	return msg
}

// invalidatePayloadsLocked drops the marshaled-payload cache. Called when
// the replica set changes or when content may have been rewritten behind
// an existing version number (an exclusive release, or a recovery that
// rewound the version). Caller holds st.mu.
func (st *lockLocal) invalidatePayloadsLocked() {
	st.cachedPayloads = nil
}

// dropWaiter removes a registered waiter.
func (st *lockLocal) dropWaiter(w *versionWaiter) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i, x := range st.waiters {
		if x == w {
			st.waiters = append(st.waiters[:i], st.waiters[i+1:]...)
			return
		}
	}
}

// ReplicaLock is the application-facing synchronization object. Each
// thread constructs its own ReplicaLock for a given ID (as in
// `new ReplicaLock(1, mocha)`); all ReplicaLocks with one ID at one site
// share local state.
type ReplicaLock struct {
	h    *Handle
	node *Node
	id   wire.LockID
	st   *lockLocal
}

// ReplicaLock builds this thread's view of the lock with the given ID.
func (h *Handle) ReplicaLock(id wire.LockID) *ReplicaLock {
	return &ReplicaLock{h: h, node: h.node, id: id, st: h.node.getLockLocal(id)}
}

// ID returns the lock's cluster-wide identifier.
func (rl *ReplicaLock) ID() wire.LockID { return rl.id }

// Associate binds a replica to this lock, making it part of the state the
// lock keeps consistent, and registers the site's interest with the
// synchronization thread.
func (rl *ReplicaLock) Associate(ctx context.Context, r *Replica) error {
	if r == nil {
		return fmt.Errorf("core: cannot associate nil replica")
	}
	rl.st.mu.Lock()
	if existing, dup := rl.st.byName[r.name]; dup {
		// Another local thread already associated this name (each thread
		// constructs its own Replica object, as in `new Replica("acc",
		// mocha)`). All local Replica objects for one name share the
		// site's single copy of the data.
		if existing.content.Kind() != r.content.Kind() {
			rl.st.mu.Unlock()
			return fmt.Errorf("core: replica %q is %s here, not %s",
				r.name, existing.content.Kind(), r.content.Kind())
		}
		r.content = existing.content
	} else {
		rl.st.replicas = append(rl.st.replicas, r)
		rl.st.byName[r.name] = r
		rl.st.invalidatePayloadsLocked()
		if rl.st.dlog != nil {
			// The replica set changed: recorded steps no longer describe
			// the lock's full marshaled state.
			rl.st.dlog.reset()
			rl.st.prevPayloads = nil
		}
		if r.created && rl.st.version == 0 {
			// Creating a shared object seeds version 1 locally; the
			// registration below seeds it at the synchronization thread.
			rl.st.version = 1
		}
		// Apply any payload that arrived before the association.
		if p, ok := rl.st.pending[r.name]; ok {
			delete(rl.st.pending, r.name)
			if err := rl.node.cfg.Codec.Unmarshal(p.data, r.content); err != nil {
				if rl.node.log.On() {
					rl.node.log.Logf("daemon", "apply pending payload for %q: %v", r.name, err)
				}
			}
		}
		if rl.node.histEnabled() && rl.st.version == 1 && r.created {
			// The creator's initial bytes define version 1 until the first
			// exclusive release.
			if blob, err := rl.node.cfg.Codec.Marshal(r.content); err == nil {
				rl.node.recordHist(wire.HistoryEvent{
					Kind:    wire.HistPublish,
					Site:    rl.node.cfg.Site,
					Lock:    rl.id,
					Version: 1,
					Note:    "create",
					Digests: []wire.ReplicaDigest{{Name: r.name, Sum: wire.DigestBytes(blob)}},
				})
			}
		}
	}
	rl.st.mu.Unlock()

	reg := &wire.RegisterReplica{
		Lock:    rl.id,
		Site:    rl.node.cfg.Site,
		Names:   []string{r.name},
		Creator: r.created,
	}
	if err := rl.node.client.sendToSync(ctx, reg); err != nil {
		return fmt.Errorf("core: register replica %q: %w", r.name, err)
	}
	return nil
}

// SetUpdateReplicas configures UR, the number of sites that receive the
// new object state at every release. UR = 1 disables dissemination; UR = k
// pushes the value to k-1 additional registered daemons "even when it is
// not required by the consistency protocols", buying availability with
// bandwidth (Section 4).
func (rl *ReplicaLock) SetUpdateReplicas(k int) {
	if k < 1 {
		k = 1
	}
	rl.st.mu.Lock()
	defer rl.st.mu.Unlock()
	rl.st.ur = k
}

// UpdateReplicas returns the current UR setting.
func (rl *ReplicaLock) UpdateReplicas() int {
	rl.st.mu.Lock()
	defer rl.st.mu.Unlock()
	return rl.st.ur
}

// Version returns the version of the locally held replica data.
func (rl *ReplicaLock) Version() uint64 {
	rl.st.mu.Lock()
	defer rl.st.mu.Unlock()
	return rl.st.version
}

// Fence returns the highest fencing token a grant has carried to this
// site for the lock. Read under Lock it identifies the current hold:
// tokens are minted monotonically by the lock's manager and survive
// manager failover, so an external resource that remembers the highest
// token it has seen can reject writes from a holder the manager has
// since fenced off.
func (rl *ReplicaLock) Fence() uint64 {
	rl.st.mu.Lock()
	defer rl.st.mu.Unlock()
	return rl.st.fence
}

// Lock acquires the lock exclusively. When it returns nil, the associated
// replicas are consistent with the most recent update and may be accessed
// and modified until Unlock.
func (rl *ReplicaLock) Lock(ctx context.Context) error { return rl.lock(ctx, false) }

// LockShared acquires the lock in read-only mode; multiple readers may
// hold it concurrently, and a release does not produce a new version.
func (rl *ReplicaLock) LockShared(ctx context.Context) error { return rl.lock(ctx, true) }

// lock implements Figure 5's lock() method plus the wide-area failure
// handling: request, await grant, and if NEEDNEWVERSION await the replica
// transfer (accepting revised grants when failure handling downgraded the
// available version).
// nackError maps a LockNack to the matching sentinel error.
func (rl *ReplicaLock) nackError(n *wire.LockNack) error {
	cause := ErrBanned
	if n.Code == wire.NackUnknownLock {
		cause = ErrUnknownLock
	}
	return fmt.Errorf("core: lock %d: %w: %s", rl.id, cause, n.Reason)
}

func (rl *ReplicaLock) lock(ctx context.Context, shared bool) error {
	if rl.node.isClosed() {
		return ErrClosed
	}
	span := rl.node.obs().StartSpan("acquire", uint32(rl.node.cfg.Site), uint64(rl.id))
	// Local serialization ("wait()" in the pseudocode).
	select {
	case rl.st.gate <- struct{}{}:
	case <-rl.node.done:
		return ErrClosed
	case <-ctx.Done():
		return fmt.Errorf("core: lock %d: %w", rl.id, ctx.Err())
	}
	span.Phase(obs.HQueueWait)
	rl.node.obs().Inc(obs.CAcquireRequests)
	ok := false
	defer func() {
		if !ok {
			<-rl.st.gate
		}
	}()

	grantCh := rl.node.client.expectGrant(rl.id, rl.h.id)
	defer rl.node.client.dropGrant(rl.id, rl.h.id)

	rl.st.mu.Lock()
	have := rl.st.version
	if rl.st.uncommitted {
		// An uncommitted copy cannot serve as a delta base (the bytes are
		// untrusted), so don't advertise its version to the sender.
		have = 0
	}
	rl.st.mu.Unlock()
	req := &wire.AcquireLock{
		Lock:        rl.id,
		Requester:   rl.node.cfg.Site,
		Thread:      rl.h.id,
		Shared:      shared,
		HaveVersion: have,
		LeaseMillis: uint32(rl.h.lease / time.Millisecond),
	}
	if err := rl.node.client.sendToSync(ctx, req); err != nil {
		return fmt.Errorf("core: lock %d request: %w", rl.id, err)
	}

	// Await the GRANT, chasing NackNotHome redirects when home placement
	// has moved (or is moving) the lock's manager.
	var grant *wire.Grant
	for grant == nil {
		select {
		case g := <-grantCh:
			if g.nack != nil {
				if g.nack.Code == wire.NackNotHome {
					rl.node.learnHome(rl.id, g.nack.Home, g.nack.HomeEpoch)
					// Follow the redirect even when an already-learned
					// route outranks it: the redirecting manager is
					// authoritative about not being the home, and the
					// bounce terminates once a home installs the record.
					if err := rl.node.client.sendToSite(ctx, req, g.nack.Home); err != nil {
						return fmt.Errorf("core: lock %d request: %w", rl.id, err)
					}
					continue
				}
				return rl.nackError(g.nack)
			}
			grant = g.grant
		case <-rl.node.done:
			return ErrClosed
		case <-ctx.Done():
			return fmt.Errorf("core: lock %d awaiting grant: %w", rl.id, ctx.Err())
		}
	}
	span.Phase(obs.HRequestRTT)
	span.SetVersion(grant.Version)

	// Await the data if a new version is in flight. The thread never
	// assumes replicas will arrive; it examines the flag.
	for grant.Flag == wire.NeedNewVersion {
		reached, waiter := rl.st.versionReached(grant.Version)
		if reached {
			break
		}
		select {
		case <-waiter.ch:
		case <-rl.node.done:
			rl.st.dropWaiter(waiter)
			return ErrClosed
		case g := <-grantCh:
			// A revised grant supersedes the original: the promised
			// version is lost and an older one must be accepted.
			rl.st.dropWaiter(waiter)
			if g.nack != nil {
				if g.nack.Code == wire.NackNotHome {
					// A stale redirect for a duplicate request; the
					// grant in hand already settles where the home is.
					continue
				}
				return rl.nackError(g.nack)
			}
			if g.grant.Revised {
				grant = g.grant
			}
		case <-ctx.Done():
			rl.st.dropWaiter(waiter)
			// We own the lock but never saw the data: abort the hold so
			// the system does not deadlock on us.
			rl.releaseAborted(grant, shared)
			return fmt.Errorf("core: lock %d awaiting transfer: %w", rl.id, ctx.Err())
		}
	}

	span.Phase(obs.HTransferWait)
	span.SetVersion(grant.Version)

	rl.st.mu.Lock()
	rl.st.holder = rl.h.id
	rl.st.heldGrant = grant
	rl.st.heldShared = shared
	if grant.Fence > rl.st.fence {
		rl.st.fence = grant.Fence
	}
	if grant.Version > rl.st.version && grant.Flag == wire.VersionOK {
		// VERSIONOK with a newer version means the synchronization thread
		// believes our copy is current (we are in the up-to-date set from
		// an earlier push); trust the bookkeeping.
		rl.st.version = grant.Version
	}
	if rl.node.histEnabled() {
		// What this thread sees on entering the lock: the local version and
		// the bytes behind it, against the version the grant promised.
		rl.node.recordHist(wire.HistoryEvent{
			Kind:       wire.HistObserve,
			Site:       rl.node.cfg.Site,
			Thread:     rl.h.id,
			Lock:       rl.id,
			Version:    rl.st.version,
			AuxVersion: grant.Version,
			Shared:     shared,
			Digests:    rl.node.digestReplicasLocked(rl.st),
		})
	}
	rl.st.mu.Unlock()
	rl.node.fireFault(FaultContext{
		Point: FPKillLockHolder, Lock: rl.id, Thread: rl.h.id, Version: grant.Version,
	})
	span.End(obs.HAcquireTotal)
	ok = true
	return nil
}

// Unlock releases the lock per Figure 5's unlock(): disseminate the new
// value to UR-1 registered daemons, then send the synchronization thread
// the release with the new version number and the up-to-date set.
func (rl *ReplicaLock) Unlock(ctx context.Context) error {
	rl.st.mu.Lock()
	if rl.st.holder != rl.h.id {
		rl.st.mu.Unlock()
		return ErrNotHeld
	}
	grant := rl.st.heldGrant
	shared := rl.st.heldShared
	ur := rl.st.ur
	rl.st.mu.Unlock()

	span := rl.node.obs().StartSpan("release", uint32(rl.node.cfg.Site), uint64(rl.id))
	newVersion := grant.Version
	upToDate := wire.NewSiteSet(rl.node.cfg.Site)
	if !shared {
		newVersion = grant.Version + 1
		if rl.node.fireFault(FaultContext{
			Point: FPCrashAfterReleaseBeforePush, Lock: rl.id, Thread: rl.h.id, Version: newVersion,
		}).Drop {
			// The holder "crashed" with the update applied only locally:
			// nothing is disseminated and no release is sent, so the hold
			// stands at the synchronization thread until its lease breaks.
			// The in-place writes were never committed — mark the content
			// untrusted so the daemon won't serve it as the old version.
			rl.st.mu.Lock()
			rl.st.uncommitted = true
			rl.st.holder = 0
			rl.st.heldGrant = nil
			rl.st.mu.Unlock()
			<-rl.st.gate
			return fmt.Errorf("core: unlock %d: fault injected at %s", rl.id, FPCrashAfterReleaseBeforePush)
		}
		rl.st.mu.Lock()
		// Never reuse a version number: after Section 4 recovery weakens a
		// lock to an older surviving copy, grant.Version+1 can collide with
		// a version already committed under the lost lineage — publishing
		// different bytes under an existing number. The grant's floor covers
		// versions the manager committed; the local check covers a late
		// transfer of a weakened-away version landing here mid-hold.
		if newVersion <= grant.VersionFloor {
			newVersion = grant.VersionFloor + 1
		}
		if rl.st.version >= newVersion {
			newVersion = rl.st.version + 1
		}
		// The exclusive holder may have rewritten content without the
		// version changing until now; any cached marshaled form is stale
		// (and becomes the delta base for the step the marshal records).
		rl.st.bumpVersionLocked(newVersion)
		rl.st.uncommitted = false
		rl.st.notifyVersionLocked()
		var payloads []wire.ReplicaPayload
		var pushDeltaMsg *wire.ReplicaDelta
		var err error
		if ur > 1 || rl.node.durableStore() {
			// Marshal only when disseminating: with UR = 1 the new value
			// stays here until another site's acquisition pulls it. A
			// durable store marshals regardless — the write-ahead log needs
			// the bytes now, crash or no crash.
			payloads, err = rl.marshalReplicasLocked()
			if err == nil {
				// A push delta only has to bridge the single step from the
				// version every up-to-date sharer already holds.
				pushDeltaMsg = rl.st.buildDeltaLocked(rl.node.cfg.Site, grant.Version, newVersion, payloads, 0, true)
			}
		}
		if err == nil && payloads != nil {
			// Persisted dirty: the version is published locally but its
			// release is not yet acknowledged. A crash between here and the
			// release recovers the bytes as dirty, never as committed.
			rl.node.persistReplicasLocked(rl.st, newVersion, true, payloads, pushDeltaMsg)
		}
		if err == nil && rl.node.histEnabled() {
			// The release's bytes define the new version; recorded before
			// any push leaves, so appliers are sequenced after it.
			digests := wire.DigestPayloads(payloads)
			if payloads == nil {
				digests = rl.node.digestReplicasLocked(rl.st)
			}
			rl.node.recordHist(wire.HistoryEvent{
				Kind:    wire.HistPublish,
				Site:    rl.node.cfg.Site,
				Thread:  rl.h.id,
				Lock:    rl.id,
				Version: newVersion,
				Digests: digests,
			})
		}
		rl.st.mu.Unlock()
		if err != nil {
			return fmt.Errorf("core: unlock %d: %w", rl.id, err)
		}
		if ur > 1 {
			acked := rl.node.xfer.disseminate(ctx, rl.id, newVersion, payloads, pushDeltaMsg, grant.Sharers, grant.UpToDate, ur-1)
			for _, site := range acked {
				upToDate.Add(site)
			}
			span.Phase(obs.HDisseminate)
		}
	}
	span.SetVersion(newVersion)

	rel := &wire.ReleaseLock{
		Lock:       rl.id,
		Releaser:   rl.node.cfg.Site,
		Thread:     rl.h.id,
		NewVersion: newVersion,
		UpToDate:   upToDate,
		Shared:     shared,
		Fence:      grant.Fence,
	}
	err := rl.node.client.sendToSync(ctx, rel)

	rl.st.mu.Lock()
	if err == nil && !shared {
		// The release reached the synchronization thread: the published
		// version is committed, and the persisted record can say so.
		rl.node.persistCommitLocked(rl.st, newVersion)
	}
	rl.st.holder = 0
	rl.st.heldGrant = nil
	rl.st.mu.Unlock()
	// "a local transfer is not permitted to insure lock acquisition
	// proceeds in a manner that guarantees fairness": local waiters go
	// through the home-site queue like everyone else.
	<-rl.st.gate

	if err != nil {
		return fmt.Errorf("core: unlock %d release: %w", rl.id, err)
	}
	rl.node.obs().Inc(obs.CReleases)
	span.End(obs.HReleaseTotal)
	return nil
}

// releaseAborted tells the synchronization thread we gave up without ever
// observing the granted version.
func (rl *ReplicaLock) releaseAborted(grant *wire.Grant, shared bool) {
	ctx, cancel := context.WithTimeout(context.Background(), rl.node.cfg.RequestTimeout)
	defer cancel()
	rel := &wire.ReleaseLock{
		Lock:       rl.id,
		Releaser:   rl.node.cfg.Site,
		Thread:     rl.h.id,
		NewVersion: grant.Version,
		UpToDate:   wire.SiteSet{},
		Shared:     shared,
		Aborted:    true,
		Fence:      grant.Fence,
	}
	if err := rl.node.client.sendToSync(ctx, rel); err != nil {
		if rl.node.log.On() {
			rl.node.log.Logf("lock", "abort release of lock %d failed: %v", rl.id, err)
		}
	}
}

// marshalReplicasLocked packs the lock's replicas — Figure 6's
// packReplicas() — populating the version-keyed payload cache so a later
// transfer of the same version skips the marshal. Caller holds st.mu.
func (rl *ReplicaLock) marshalReplicasLocked() ([]wire.ReplicaPayload, error) {
	return rl.st.marshalPayloadsLocked(rl.node.cfg.Codec)
}

// Replicas returns the replicas associated with this lock at this site.
func (rl *ReplicaLock) Replicas() []*Replica {
	rl.st.mu.Lock()
	defer rl.st.mu.Unlock()
	out := make([]*Replica, len(rl.st.replicas))
	copy(out, rl.st.replicas)
	return out
}
