package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mocha/internal/marshal"
	"mocha/internal/wire"
)

func TestCreateLockModifyTransfer(t *testing.T) {
	tc := newTestCluster(t, 2, defaultOpts())
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rl1, r1 := mustCreate(t, h1, 7, "flatwareIndex", []int32{10, 20, 30}, 2)

	h2 := tc.node(2).NewHandle("worker")
	rl2, r2 := mustAttach(t, h2, 7, "flatwareIndex")
	settle()

	// Site 2 acquires: the creator's data must transfer over.
	if err := rl2.Lock(ctx); err != nil {
		t.Fatalf("site2 lock: %v", err)
	}
	got := r2.Content().IntsData()
	if len(got) != 3 || got[0] != 10 || got[2] != 30 {
		t.Fatalf("site2 sees %v, want [10 20 30]", got)
	}
	got[0] = 99
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatalf("site2 unlock: %v", err)
	}

	// Site 1 reacquires: the modification must come back.
	if err := rl1.Lock(ctx); err != nil {
		t.Fatalf("site1 lock: %v", err)
	}
	if v := r1.Content().IntsData()[0]; v != 99 {
		t.Fatalf("site1 sees %d, want 99", v)
	}
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatalf("site1 unlock: %v", err)
	}
}

func TestVersionOKAvoidsTransfer(t *testing.T) {
	tc := newTestCluster(t, 2, defaultOpts())
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rl1, _ := mustCreate(t, h1, 7, "x", []int32{1}, 1)
	settle()

	// Same site relocking repeatedly: every grant after the first release
	// must be VERSIONOK (no replica traffic).
	for i := 0; i < 3; i++ {
		if err := rl1.Lock(ctx); err != nil {
			t.Fatal(err)
		}
		if err := rl1.Unlock(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if n := tc.node(1).Log().CountCategory("xfer"); n != 0 {
		t.Fatalf("same-owner relocks caused %d transfers, want 0", n)
	}
}

func TestMutualExclusionCounter(t *testing.T) {
	const sites = 4
	const increments = 8
	tc := newTestCluster(t, sites, defaultOpts())
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rl1, r1 := mustCreate(t, h1, 9, "counter", []int32{0}, sites)
	settle()

	var wg sync.WaitGroup
	errCh := make(chan error, sites)
	for i := 1; i <= sites; i++ {
		site := wire.SiteID(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			var rl *ReplicaLock
			var r *Replica
			if site == 1 {
				rl, r = rl1, r1
			} else {
				h := tc.node(site).NewHandle(fmt.Sprintf("w%d", site))
				var err error
				r, err = tc.node(site).AttachReplica("counter", marshal.Ints(nil))
				if err != nil {
					errCh <- err
					return
				}
				rl = h.ReplicaLock(9)
				if err := rl.Associate(ctx, r); err != nil {
					errCh <- err
					return
				}
			}
			for j := 0; j < increments; j++ {
				if err := rl.Lock(ctx); err != nil {
					errCh <- fmt.Errorf("site %d lock: %w", site, err)
					return
				}
				data := r.Content().IntsData()
				data[0]++
				if err := rl.Unlock(ctx); err != nil {
					errCh <- fmt.Errorf("site %d unlock: %w", site, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rl1.Unlock(ctx) }()
	if got := r1.Content().IntsData()[0]; got != sites*increments {
		t.Fatalf("counter = %d, want %d (lost updates => broken mutual exclusion)", got, sites*increments)
	}
}

func TestLocalThreadsSerialize(t *testing.T) {
	tc := newTestCluster(t, 1, defaultOpts())
	ctx := tctx(t)

	hA := tc.node(1).NewHandle("a")
	rlA, r := mustCreate(t, hA, 3, "shared", []int32{0}, 1)
	hB := tc.node(1).NewHandle("b")
	rlB := hB.ReplicaLock(3)
	settle()

	const per = 25
	var wg sync.WaitGroup
	for _, rl := range []*ReplicaLock{rlA, rlB} {
		rl := rl
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := rl.Lock(ctx); err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				r.Content().IntsData()[0]++
				if err := rl.Unlock(ctx); err != nil {
					t.Errorf("unlock: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if err := rlA.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rlA.Unlock(ctx) }()
	if got := r.Content().IntsData()[0]; got != 2*per {
		t.Fatalf("counter = %d, want %d", got, 2*per)
	}
}

func TestSharedLocksAllowConcurrentReaders(t *testing.T) {
	tc := newTestCluster(t, 3, defaultOpts())
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rl1, _ := mustCreate(t, h1, 5, "doc", []int32{42}, 3)
	settle()

	// Seed the other sites.
	h2 := tc.node(2).NewHandle("r2")
	rl2, r2 := mustAttach(t, h2, 5, "doc")
	h3 := tc.node(3).NewHandle("r3")
	rl3, r3 := mustAttach(t, h3, 5, "doc")
	settle()

	if err := rl2.LockShared(ctx); err != nil {
		t.Fatalf("reader2: %v", err)
	}
	// A second reader must be able to acquire while the first holds.
	acquired := make(chan error, 1)
	go func() {
		acquired <- rl3.LockShared(ctx)
	}()
	select {
	case err := <-acquired:
		if err != nil {
			t.Fatalf("reader3: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("second shared reader blocked behind the first")
	}
	if got := r2.Content().IntsData()[0]; got != 42 {
		t.Fatalf("reader2 sees %d", got)
	}
	if got := r3.Content().IntsData()[0]; got != 42 {
		t.Fatalf("reader3 sees %d", got)
	}

	// A writer must wait for both readers.
	wrote := make(chan error, 1)
	go func() {
		if err := rl1.Lock(ctx); err != nil {
			wrote <- err
			return
		}
		wrote <- rl1.Unlock(ctx)
	}()
	select {
	case <-wrote:
		t.Fatal("writer acquired while readers hold the lock")
	case <-time.After(150 * time.Millisecond):
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case <-wrote:
		t.Fatal("writer acquired while one reader still holds")
	case <-time.After(150 * time.Millisecond):
	}
	if err := rl3.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-wrote:
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("writer never acquired after readers released")
	}
}

func TestSharedReleaseKeepsVersion(t *testing.T) {
	tc := newTestCluster(t, 2, defaultOpts())
	ctx := tctx(t)
	h1 := tc.node(1).NewHandle("creator")
	rl1, _ := mustCreate(t, h1, 5, "doc", []int32{1}, 2)
	settle()

	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	v := rl1.Version()

	h2 := tc.node(2).NewHandle("reader")
	rl2, _ := mustAttach(t, h2, 5, "doc")
	settle()
	if err := rl2.LockShared(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if got := rl2.Version(); got != v {
		t.Fatalf("shared release moved version %d -> %d", v, got)
	}
}

func TestUnlockWithoutHold(t *testing.T) {
	tc := newTestCluster(t, 1, defaultOpts())
	h := tc.node(1).NewHandle("t")
	rl, _ := mustCreate(t, h, 2, "x", []int32{1}, 1)
	if err := rl.Unlock(tctx(t)); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("err = %v, want ErrNotHeld", err)
	}
}

func TestURDisseminationPushesUpdates(t *testing.T) {
	tc := newTestCluster(t, 3, defaultOpts())
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rl1, r1 := mustCreate(t, h1, 11, "index", []int32{0}, 3)
	h2 := tc.node(2).NewHandle("w2")
	rl2, r2 := mustAttach(t, h2, 11, "index")
	h3 := tc.node(3).NewHandle("w3")
	_, r3 := mustAttach(t, h3, 11, "index")
	settle()

	// UR=3: every release pushes the new value to both other daemons.
	rl1.SetUpdateReplicas(3)
	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r1.Content().IntsData()[0] = 77
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	// Both other sites must hold the pushed value without locking.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v2 := tc.node(2).getLockLocal(11)
		v3 := tc.node(3).getLockLocal(11)
		v2.mu.Lock()
		ver2 := v2.version
		v2.mu.Unlock()
		v3.mu.Lock()
		ver3 := v3.version
		v3.mu.Unlock()
		if ver2 >= 2 && ver3 >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("push never arrived: site2 v%d site3 v%d", ver2, ver3)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := r2.Content().IntsData()[0]; got != 77 {
		t.Fatalf("site2 pushed value = %d", got)
	}
	if got := r3.Content().IntsData()[0]; got != 77 {
		t.Fatalf("site3 pushed value = %d", got)
	}

	// A pushed site acquiring the lock must get VERSIONOK: no transfer.
	before := tc.node(1).Log().CountCategory("xfer")
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if got := r2.Content().IntsData()[0]; got != 77 {
		t.Fatalf("site2 after lock = %d", got)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	after := tc.node(1).Log().CountCategory("xfer")
	if after != before {
		t.Fatalf("pushed site still triggered %d transfers", after-before)
	}
}

func TestPendingPayloadAppliedOnAssociate(t *testing.T) {
	tc := newTestCluster(t, 2, defaultOpts())
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rl1, r1 := mustCreate(t, h1, 13, "late", []int32{5}, 2)
	settle()
	// Site 2 registers its interest for the lock only (no replica yet):
	// dissemination arrives before the replica is associated.
	h2 := tc.node(2).NewHandle("late-joiner")
	rl2 := h2.ReplicaLock(13)
	probe, err := tc.node(2).CreateReplica("probe", marshal.Ints([]int32{0}), 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = probe
	// Register site 2 as a sharer via a bare registration.
	if err := tc.node(2).client.sendToSync(ctx, &wire.RegisterReplica{
		Lock: 13, Site: 2, Names: []string{"late"},
	}); err != nil {
		t.Fatal(err)
	}
	settle()

	rl1.SetUpdateReplicas(2)
	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r1.Content().IntsData()[0] = 123
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	settle()

	// Now associate the replica: the buffered payload must be applied.
	r2, err := tc.node(2).AttachReplica("late", marshal.Ints(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := rl2.Associate(ctx, r2); err != nil {
		t.Fatal(err)
	}
	if got := r2.Content().IntsData(); len(got) != 1 || got[0] != 123 {
		t.Fatalf("pending payload not applied: %v", got)
	}
}

func TestStaleVersionIgnored(t *testing.T) {
	tc := newTestCluster(t, 1, defaultOpts())
	n := tc.node(1)
	h := n.NewHandle("t")
	_, r := mustCreate(t, h, 21, "v", []int32{1}, 1)

	blobNew, err := n.marshalContent(marshal.Ints([]int32{50}))
	if err != nil {
		t.Fatal(err)
	}
	n.applyReplicaData(&wire.ReplicaData{
		Lock: 21, From: 9, Version: 5,
		Replicas: []wire.ReplicaPayload{{Name: "v", Data: blobNew}},
	})
	if got := r.Content().IntsData()[0]; got != 50 {
		t.Fatalf("v5 not applied: %d", got)
	}
	blobOld, err := n.marshalContent(marshal.Ints([]int32{40}))
	if err != nil {
		t.Fatal(err)
	}
	n.applyReplicaData(&wire.ReplicaData{
		Lock: 21, From: 9, Version: 3,
		Replicas: []wire.ReplicaPayload{{Name: "v", Data: blobOld}},
	})
	if got := r.Content().IntsData()[0]; got != 50 {
		t.Fatalf("stale v3 overwrote v5: %d", got)
	}
}

func TestHybridModeEndToEnd(t *testing.T) {
	for _, mode := range []TransferMode{ModeHybrid, ModeAdaptive} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			opts := defaultOpts()
			opts.mode = mode
			tc := newTestCluster(t, 3, opts)
			ctx := tctx(t)

			h1 := tc.node(1).NewHandle("creator")
			big := make([]int32, 4096) // large enough for adaptive streaming
			big[0] = 7
			rl1, r1 := mustCreate(t, h1, 8, "bulk", big, 3)
			h2 := tc.node(2).NewHandle("w2")
			rl2, r2 := mustAttach(t, h2, 8, "bulk")
			settle()

			if err := rl2.Lock(ctx); err != nil {
				t.Fatalf("lock over %s: %v", mode, err)
			}
			if got := r2.Content().IntsData(); len(got) != 4096 || got[0] != 7 {
				t.Fatalf("stream transfer corrupted: len=%d", len(got))
			}
			r2.Content().IntsData()[1] = 9
			if err := rl2.Unlock(ctx); err != nil {
				t.Fatal(err)
			}

			if err := rl1.Lock(ctx); err != nil {
				t.Fatal(err)
			}
			if got := r1.Content().IntsData()[1]; got != 9 {
				t.Fatalf("return transfer lost update: %d", got)
			}
			if err := rl1.Unlock(ctx); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestCachedReplicas(t *testing.T) {
	tc := newTestCluster(t, 3, defaultOpts())
	ctx := tctx(t)

	// "The graphical images are also shared as replicas but are not
	// associated with a ReplicaLock. Thus, they are cached at each host
	// without any consistency maintenance."
	pub, err := tc.node(1).CreateReplica("image", marshal.Bytes([]byte("v1-bytes")), 3)
	if err != nil {
		t.Fatal(err)
	}
	var subs []*Replica
	for _, site := range []wire.SiteID{2, 3} {
		r, err := tc.node(site).AttachReplica("image", marshal.Bytes(nil))
		if err != nil {
			t.Fatal(err)
		}
		if err := tc.node(site).RegisterCached(r); err != nil {
			t.Fatal(err)
		}
		subs = append(subs, r)
	}

	if err := tc.node(1).PublishCached(ctx, pub, nil); err != nil {
		t.Fatal(err)
	}
	readCached := func(r *Replica) string {
		var got string
		r.ReadCached(func(c *marshal.Content) { got = string(c.BytesData()) })
		return got
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		done := true
		for _, r := range subs {
			if readCached(r) != "v1-bytes" {
				done = false
			}
		}
		if done {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cached publish never arrived: %q / %q",
				readCached(subs[0]), readCached(subs[1]))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestGrowShrinkAcrossSites(t *testing.T) {
	tc := newTestCluster(t, 2, defaultOpts())
	ctx := tctx(t)
	h1 := tc.node(1).NewHandle("creator")
	rl1, r1 := mustCreate(t, h1, 4, "elastic", []int32{1, 2}, 2)
	h2 := tc.node(2).NewHandle("w")
	rl2, r2 := mustAttach(t, h2, 4, "elastic")
	settle()

	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r1.Content().SetInts([]int32{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(r2.Content().IntsData()); got != 5 {
		t.Fatalf("grown replica transferred %d elements", got)
	}
	if err := r2.Content().SetInts([]int32{9}); err != nil {
		t.Fatal(err)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rl1.Unlock(ctx) }()
	if got := r1.Content().IntsData(); len(got) != 1 || got[0] != 9 {
		t.Fatalf("shrunk replica transferred %v", got)
	}
}

func TestClosedNodeOperations(t *testing.T) {
	tc := newTestCluster(t, 1, defaultOpts())
	h := tc.node(1).NewHandle("t")
	rl, _ := mustCreate(t, h, 2, "x", []int32{1}, 1)
	if err := tc.node(1).Close(); err != nil {
		t.Fatal(err)
	}
	if err := rl.Lock(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("Lock on closed node = %v, want ErrClosed", err)
	}
	if err := tc.node(1).RegisterCached(&Replica{name: "c", content: marshal.Bytes(nil)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("RegisterCached on closed node = %v", err)
	}
}

func TestMultipleReplicasOneLock(t *testing.T) {
	// The table-setting pattern: several replicas consistent under one
	// lock, all transferred together.
	tc := newTestCluster(t, 2, defaultOpts())
	ctx := tctx(t)
	h1 := tc.node(1).NewHandle("home")

	names := []string{"flatwareIndex", "plateIndex", "glasswareIndex"}
	rl1 := h1.ReplicaLock(1)
	var created []*Replica
	for _, name := range names {
		r, err := tc.node(1).CreateReplica(name, marshal.Ints([]int32{0, 0, 0, 0, 0}), 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := rl1.Associate(ctx, r); err != nil {
			t.Fatal(err)
		}
		created = append(created, r)
	}
	text, err := tc.node(1).CreateReplica("text", marshal.Object(marshal.NewStringValue("Hello World")), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rl1.Associate(ctx, text); err != nil {
		t.Fatal(err)
	}

	h2 := tc.node(2).NewHandle("associate")
	rl2 := h2.ReplicaLock(1)
	var attached []*Replica
	for _, name := range names {
		r, err := tc.node(2).AttachReplica(name, marshal.Ints(nil))
		if err != nil {
			t.Fatal(err)
		}
		if err := rl2.Associate(ctx, r); err != nil {
			t.Fatal(err)
		}
		attached = append(attached, r)
	}
	text2, err := tc.node(2).AttachReplica("text", marshal.Object(marshal.NewStringValue("")))
	if err != nil {
		t.Fatal(err)
	}
	if err := rl2.Associate(ctx, text2); err != nil {
		t.Fatal(err)
	}
	settle()

	// Home updates all four under one lock.
	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	created[0].Content().IntsData()[0] = 1
	created[1].Content().IntsData()[0] = 2
	created[2].Content().IntsData()[0] = 3
	text.Content().ObjectData().(*marshal.StringValue).Set("Good Choice")
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rl2.Unlock(ctx) }()
	for i, want := range []int32{1, 2, 3} {
		if got := attached[i].Content().IntsData()[0]; got != want {
			t.Fatalf("replica %s = %d, want %d", names[i], got, want)
		}
	}
	if got := text2.Content().ObjectData().(*marshal.StringValue).Get(); got != "Good Choice" {
		t.Fatalf("string replica = %q", got)
	}
}

func TestTwoLocalThreadsSameReplicaName(t *testing.T) {
	// Each thread constructs its own Replica object for the same name
	// (the paper's `new Replica("acc", mocha)` at two threads of one
	// server); both must observe the site's single copy of the data.
	tc := newTestCluster(t, 2, defaultOpts())
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rl1, _ := mustCreate(t, h1, 15, "acc", []int32{5}, 2)
	settle()

	hA := tc.node(2).NewHandle("worker-a")
	rlA, rA := mustAttach(t, hA, 15, "acc")
	hB := tc.node(2).NewHandle("worker-b")
	rB, err := tc.node(2).AttachReplica("acc", marshal.Ints(nil))
	if err != nil {
		t.Fatal(err)
	}
	rlB := hB.ReplicaLock(15)
	if err := rlB.Associate(ctx, rB); err != nil {
		t.Fatal(err)
	}
	settle()

	// Worker A pulls the data; worker B's object must see it too.
	if err := rlA.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	rA.Content().IntsData()[0] = 6
	if err := rlA.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rlB.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if got := rB.Content().IntsData(); len(got) != 1 || got[0] != 6 {
		t.Fatalf("worker B sees %v, want [6]", got)
	}
	if err := rlB.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	_ = rl1

	// A kind mismatch on the same name must be rejected.
	bad, err := tc.node(2).AttachReplica("acc", marshal.Floats(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := hB.ReplicaLock(15).Associate(ctx, bad); err == nil {
		t.Fatal("kind-mismatched association accepted")
	}
}

func TestAccessors(t *testing.T) {
	opts := defaultOpts()
	opts.mode = ModeHybrid
	tc := newTestCluster(t, 2, opts)
	n := tc.node(2)

	if n.Site() != 2 {
		t.Errorf("Site = %d", n.Site())
	}
	if n.Endpoint() == nil {
		t.Error("Endpoint nil")
	}
	if n.Mode() != ModeHybrid {
		t.Errorf("Mode = %v", n.Mode())
	}
	if got := n.Mode().String(); got != "hybrid" {
		t.Errorf("Mode.String = %q", got)
	}
	if ModeMNet.String() != "mocha-basic" || ModeAdaptive.String() != "adaptive" || TransferMode(99).String() == "" {
		t.Error("mode names wrong")
	}
	if n.SyncAddr() == "" || n.SyncEpoch() != 1 {
		t.Errorf("sync addr/epoch = %q/%d", n.SyncAddr(), n.SyncEpoch())
	}
	if n.RequestTimeout() <= 0 {
		t.Error("RequestTimeout zero")
	}
	if got := n.Sites(); len(got) != 2 || got[0] != 1 {
		t.Errorf("Sites = %v", got)
	}
	if got := n.Directory(); len(got) != 2 || got[1] == "" {
		t.Errorf("Directory = %v", got)
	}
	if addr, err := n.RuntimeAddr(1); err != nil || addr == "" {
		t.Errorf("RuntimeAddr = %q, %v", addr, err)
	}
	if _, err := n.RuntimeAddr(99); err == nil {
		t.Error("RuntimeAddr(99) succeeded")
	}
	select {
	case <-n.Done():
		t.Error("Done closed early")
	default:
	}

	h := n.NewHandle("t")
	h.SetLease(time.Second)
	h.SetLease(-1) // ignored
	if h.Node() != n || h.ID().Site() != 2 {
		t.Error("handle accessors wrong")
	}
	r, err := n.CreateReplica("acc-test", marshal.Ints([]int32{1, 2}), 3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "acc-test" || r.Copies() != 3 {
		t.Errorf("replica accessors: %q %d", r.Name(), r.Copies())
	}
	rl := h.ReplicaLock(4)
	if rl.ID() != 4 {
		t.Errorf("lock ID = %d", rl.ID())
	}
	rl.SetUpdateReplicas(3)
	if rl.UpdateReplicas() != 3 {
		t.Errorf("UpdateReplicas = %d", rl.UpdateReplicas())
	}
	rl.SetUpdateReplicas(0) // clamps to 1
	if rl.UpdateReplicas() != 1 {
		t.Errorf("clamped UpdateReplicas = %d", rl.UpdateReplicas())
	}

	// Bad constructor arguments.
	if _, err := n.CreateReplica("", marshal.Ints(nil), 1); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := n.CreateReplica("x", nil, 1); err == nil {
		t.Error("nil content accepted")
	}
	if _, err := n.AttachReplica("", marshal.Ints(nil)); err == nil {
		t.Error("empty attach name accepted")
	}
	if _, err := n.AttachReplica("x", nil); err == nil {
		t.Error("nil attach content accepted")
	}
	if err := rl.Associate(tctx(t), nil); err == nil {
		t.Error("nil associate accepted")
	}
	if _, ok := n.CachedReplica("ghost"); ok {
		t.Error("phantom cached replica found")
	}
}

func TestNewNodeValidation(t *testing.T) {
	if _, err := NewNode(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	tc := newTestCluster(t, 1, defaultOpts())
	ep := tc.node(1).Endpoint()
	if _, err := NewNode(Config{Endpoint: ep}); err == nil {
		t.Error("config without site accepted")
	}
	if _, err := NewNode(Config{Endpoint: ep, Site: 2}); err == nil {
		t.Error("config without directory accepted")
	}
	if _, err := NewNode(Config{Endpoint: ep, Site: 2, Directory: map[wire.SiteID]string{2: "x"}}); err == nil {
		t.Error("directory without home accepted")
	}
	if _, err := NewNode(Config{Endpoint: ep, Site: 2, Directory: map[wire.SiteID]string{1: "x"}, Mode: ModeHybrid}); err == nil {
		t.Error("hybrid without stack accepted")
	}
}
