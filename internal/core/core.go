// Package core implements Mocha's robust shared-object model — the paper's
// primary contribution. It provides Replica and ReplicaLock objects with
// entry-consistency semantics (Section 2.1), the basic consistency
// algorithm of Section 3 (application threads, a daemon thread per site,
// and a synchronization thread at the home site), and the fault-tolerance
// refinements of Section 4 (push-based update dissemination with a
// configurable number of up-to-date replicas, failure detection through
// message timeouts and lock leases, lock breaking, banning of failed
// threads, and recovery to the most recent surviving version).
//
// A Node is one site's view of the shared-object system. Nodes exchange
// control messages over the mnet library and replica data over either mnet
// (the paper's first prototype) or the hybrid MNet+TCP protocol (the
// second prototype), selected by Config.Mode.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"mocha/internal/eventlog"
	"mocha/internal/marshal"
	"mocha/internal/mnet"
	"mocha/internal/netsim"
	"mocha/internal/obs"
	"mocha/internal/placement"
	"mocha/internal/store"
	"mocha/internal/transport"
	"mocha/internal/wire"
)

// Well-known logical ports on every site's endpoint.
const (
	// PortSync is where the synchronization thread listens (home site).
	PortSync uint16 = 1
	// PortDaemon is the daemon thread's mailbox.
	PortDaemon uint16 = 2
	// PortClient receives grants and acks addressed to application
	// threads.
	PortClient uint16 = 3
	// PortSyncAux is the synchronization thread's outbound probe port
	// (heartbeats, polls, transfer directives during failure handling),
	// kept separate so probe replies never deadlock the main handler.
	PortSyncAux uint16 = 5
	// PortXfer carries hybrid-protocol control traffic and push updates.
	PortXfer uint16 = 6
	// PortRuntime is used by the wide-area runtime (package runtime).
	PortRuntime uint16 = 7
)

// TransferMode selects how replica data moves between daemons.
type TransferMode int

// Transfer modes: the paper's two prototypes plus an adaptive policy its
// results directly suggest (use the stream only above the size where it
// wins).
const (
	// ModeMNet sends replica data as MNet messages (first prototype).
	ModeMNet TransferMode = iota + 1
	// ModeHybrid propagates a stream address over MNet and sends replica
	// data over the TCP-style stream (second prototype).
	ModeHybrid
	// ModeAdaptive uses MNet below AdaptiveThreshold bytes and the hybrid
	// path above it.
	ModeAdaptive
)

// String names the mode as the paper does.
func (m TransferMode) String() string {
	switch m {
	case ModeMNet:
		return "mocha-basic"
	case ModeHybrid:
		return "hybrid"
	case ModeAdaptive:
		return "adaptive"
	default:
		return fmt.Sprintf("TransferMode(%d)", int(m))
	}
}

// Config parameterizes a Node.
type Config struct {
	// Site is this node's identity; the home site is wire.HomeSite.
	Site wire.SiteID
	// Endpoint is the node's MNet endpoint. The node owns it and closes
	// it on Close.
	Endpoint *mnet.Endpoint
	// Stack provides stream listeners/dialers for the hybrid protocol.
	// Required for ModeHybrid and ModeAdaptive.
	Stack transport.Stack
	// Directory maps every site to its endpoint address, as read from the
	// host file.
	Directory map[wire.SiteID]string
	// IsHome starts the synchronization thread on this node.
	IsHome bool
	// HomePlacement replaces the fixed home site with a consistent-hash
	// ring over ManagerSites: every manager runs a synchronization thread
	// for its slice of the lock namespace, lock homes migrate toward
	// observed access locality, and each home streams record deltas to
	// its ring successor for standby failover. Off by default — the
	// paper's fixed-home baseline.
	HomePlacement bool
	// ManagerSites lists the ring members when HomePlacement is on.
	// Empty means every site in the directory.
	ManagerSites []wire.SiteID
	// Codec marshals replica content; all sites must agree.
	Codec marshal.Codec
	// Cost is the execution-cost model for stream operations (MNet costs
	// are charged inside the endpoint's own model).
	Cost netsim.CostModel
	// Mode selects the replica transfer protocol.
	Mode TransferMode
	// AdaptiveThreshold is the ModeAdaptive cutover size in bytes
	// (default 2048).
	AdaptiveThreshold int
	// StreamReuse caches hybrid-protocol connections per destination
	// instead of setting up and tearing down per transfer — the obvious
	// extension to the paper's second prototype, whose per-transfer
	// "connection and tear-down overheads" cost it the small-message
	// races.
	StreamReuse bool
	// DeltaTransfer ships replica updates as byte-range patches against
	// the version the receiver already holds, when the holder's update log
	// still covers the gap; any break in the chain falls back to a full
	// copy. Off by default: the paper's prototypes always transfer the
	// whole marshaled replica.
	DeltaTransfer bool
	// DeltaLogDepth bounds how many consecutive version steps the per-lock
	// update log retains for delta composition (default 8). Requesters more
	// than this many versions behind get a full transfer.
	DeltaLogDepth int
	// DisseminationFanout bounds how many push transfers run concurrently
	// when a release (or PushPayloads) disseminates a new version to
	// several sites. 0 (the default) runs all targets in parallel,
	// overlapping their round trips; 1 reproduces the paper prototype's
	// strictly sequential fan-out, where each of the k transfers completes
	// before the next begins.
	DisseminationFanout int
	// DisseminationTree routes full-UR release pushes through the
	// locality overlay (internal/overlay): sharers are bucketed by
	// measured RTT, one relay per bucket receives the version and re-fans
	// it locally, so the releaser's uplink carries O(regions) frames per
	// release instead of O(sharers). Off by default — the paper's flat
	// fan-out — and ignored below TreeMinSharers or for partial-UR
	// dissemination, which keep the §4 replacement walk.
	DisseminationTree bool
	// TreeMinSharers is the sharer count below which DisseminationTree
	// keeps the flat fan-out (default 8): with few targets a relay hop
	// only adds latency.
	TreeMinSharers int
	// SyncShards is the number of independent shards the synchronization
	// thread's lock table is split across (default 32). Locks hash to a
	// shard by ID; traffic on one lock never waits on another lock's
	// shard, and network I/O (grants, transfer directives, polls,
	// heartbeats) never runs under any shard or lock mutex.
	SyncShards int
	// SyncSerialIO reproduces the pre-S30 synchronization thread for
	// ablation: a single shard, with every grant delivery, transfer
	// directive, and daemon poll performed inline in the port dispatcher's
	// critical path, so one dead peer stalls lock traffic for every lock.
	// Off by default.
	SyncSerialIO bool
	// RequestTimeout bounds control-message sends (default 5s).
	RequestTimeout time.Duration
	// TransferTimeout bounds replica data transfers (default 60s).
	TransferTimeout time.Duration
	// DefaultLease is the lock lease used when a handle does not declare
	// one (default 30s).
	DefaultLease time.Duration
	// LeaseSweep is how often the synchronization thread scans for
	// expired leases (default 500ms).
	LeaseSweep time.Duration
	// LeaseSkew offsets this site's view of hold ages when sweeping
	// leases, modelling clock drift between a manager's lease timer and
	// the holder's. A positive skew makes the manager's clock run fast —
	// it ages holds by the skew and may break leases the holder believes
	// are still live; a negative skew makes it break them late. Fault
	// exploration perturbs this to surface interleavings that only occur
	// when the two timers disagree. Zero (the default) is perfect clocks.
	LeaseSkew time.Duration
	// Log receives protocol events; nil means a no-op logger.
	Log *eventlog.Logger
	// Metrics, when non-nil, receives protocol counters, per-phase
	// latency histograms, and operation spans (see internal/obs). Nil
	// disables the plane; every instrument site is nil-safe.
	Metrics *obs.Registry
	// History, when non-nil, receives a totally ordered record of protocol
	// events (grants, releases, transfers, breaks, recoveries) for offline
	// entry-consistency checking. See internal/check.
	History HistorySink
	// FaultHook, when non-nil, is consulted at every registered FaultPoint
	// and may fail or delay the operation there. Test-only.
	FaultHook FaultHook
	// StoreDir, when non-empty, backs replica state with the log-structured
	// durable store rooted at that directory: every install, patch, and
	// commit is written through to a write-ahead log, and a restarted node
	// replays it to re-join the protocol at the persisted version instead
	// of refetching everything. Empty (the default) keeps the paper's
	// in-memory baseline — nothing survives a restart.
	StoreDir string
	// StoreMemLimit caps the payload bytes the durable store keeps cached
	// in memory; past it, cold replicas are evicted least-recently-used
	// and refault from the log. 0 means unlimited. Ignored without
	// StoreDir.
	StoreMemLimit int
}

func (c Config) withDefaults() Config {
	if c.Codec == nil {
		c.Codec = marshal.NewFast(netsim.Native())
	}
	if c.Mode == 0 {
		c.Mode = ModeMNet
	}
	if c.AdaptiveThreshold <= 0 {
		c.AdaptiveThreshold = 2048
	}
	if c.DeltaLogDepth <= 0 {
		c.DeltaLogDepth = 8
	}
	if c.TreeMinSharers <= 0 {
		c.TreeMinSharers = 8
	}
	if c.SyncShards <= 0 {
		c.SyncShards = 32
	}
	if c.SyncSerialIO {
		c.SyncShards = 1
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.TransferTimeout <= 0 {
		c.TransferTimeout = 60 * time.Second
	}
	if c.DefaultLease <= 0 {
		c.DefaultLease = 30 * time.Second
	}
	if c.LeaseSweep <= 0 {
		c.LeaseSweep = 500 * time.Millisecond
	}
	if c.Log == nil {
		c.Log = eventlog.Nop()
	}
	return c
}

// fanoutBound returns the effective dissemination concurrency for n
// targets: at least 1, at most n, honoring DisseminationFanout (0 means
// fully parallel).
func (c Config) fanoutBound(n int) int {
	b := c.DisseminationFanout
	if b <= 0 || b > n {
		b = n
	}
	if b < 1 {
		b = 1
	}
	return b
}

// Core errors.
var (
	// ErrNotHeld reports Unlock by a thread that does not hold the lock.
	ErrNotHeld = errors.New("core: lock not held by this thread")
	// ErrBanned reports that the synchronization thread refused the
	// request because the thread was banned after a detected failure.
	ErrBanned = errors.New("core: thread banned by synchronization thread")
	// ErrUnknownLock reports an acquire for a lock ID no daemon has ever
	// registered; the synchronization thread refuses to fabricate a
	// record for it.
	ErrUnknownLock = errors.New("core: lock never registered with synchronization thread")
	// ErrClosed reports use of a closed node.
	ErrClosed = errors.New("core: node closed")
	// ErrNoSync reports that the synchronization thread is unreachable.
	ErrNoSync = errors.New("core: synchronization thread unreachable")
)

// Node is one site's shared-object runtime: its daemon thread, client-side
// lock machinery, transfer service, and (on the home site) the
// synchronization thread.
type Node struct {
	cfg     Config
	ep      *mnet.Endpoint
	log     *eventlog.Logger
	metrics *obs.Registry // nil when the observability plane is off

	daemon *daemon
	client *client
	xfer   *transferService
	sync   *syncThread // nil unless home or surrogate

	// store is the replica-state store behind the daemon: the in-memory
	// baseline by default, the durable write-ahead log when StoreDir is
	// set (see internal/store).
	store store.Store

	done chan struct{}

	// ring partitions the lock namespace across manager sites when home
	// placement is on; nil means the fixed-home baseline.
	ring *placement.Ring

	mu         sync.Mutex
	closed     bool
	syncAddr   string
	syncEpoch  uint32
	nextThread uint32
	lockLocals map[wire.LockID]*lockLocal
	cached     map[string]*Replica

	// homeMu guards homeOverrides: per-lock home routes learned from
	// NackNotHome redirects, HomeHints, and HomeMoved broadcasts. They
	// override the ring default when their epoch is at least as new.
	homeMu        sync.Mutex
	homeOverrides map[wire.LockID]homeOverride
}

// homeOverride is one learned per-lock home route.
type homeOverride struct {
	to    wire.SiteID
	epoch uint32
}

// NewNode builds and starts a site.
func NewNode(cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Endpoint == nil {
		return nil, errors.New("core: config needs an endpoint")
	}
	if cfg.Site == 0 {
		return nil, errors.New("core: config needs a site id")
	}
	if len(cfg.Directory) == 0 {
		return nil, errors.New("core: config needs a site directory")
	}
	home, ok := cfg.Directory[wire.HomeSite]
	if !ok {
		return nil, errors.New("core: directory has no home site")
	}
	if (cfg.Mode == ModeHybrid || cfg.Mode == ModeAdaptive) && cfg.Stack == nil {
		return nil, errors.New("core: hybrid transfer needs a transport stack")
	}

	if cfg.Metrics != nil && cfg.Stack != nil {
		// Count hybrid stream dials/accepts and bytes at the transport
		// seam, so stream-path cost is attributed even when the payload
		// framing above changes.
		cfg.Stack = transport.Instrument(cfg.Stack, cfg.Metrics)
	}

	n := &Node{
		cfg:        cfg,
		done:       make(chan struct{}),
		ep:         cfg.Endpoint,
		log:        cfg.Log,
		metrics:    cfg.Metrics,
		syncAddr:   mnet.JoinAddr(home, PortSync),
		syncEpoch:  1,
		lockLocals: make(map[wire.LockID]*lockLocal),
		cached:     make(map[string]*Replica),
	}
	if cfg.HomePlacement {
		members := cfg.ManagerSites
		if len(members) == 0 {
			for site := range cfg.Directory {
				members = append(members, site)
			}
		}
		n.ring = placement.New(members, placement.DefaultVirtualNodes)
		n.homeOverrides = make(map[wire.LockID]homeOverride)
	}

	// The store opens — and replays its log — before the daemon starts, so
	// a version poll can never observe a half-recovered site.
	if err := n.openStore(); err != nil {
		return nil, err
	}

	var err error
	if n.daemon, err = newDaemon(n); err != nil {
		return nil, fmt.Errorf("core: start daemon: %w", err)
	}
	if n.client, err = newClient(n); err != nil {
		return nil, fmt.Errorf("core: start client: %w", err)
	}
	if n.xfer, err = newTransferService(n); err != nil {
		return nil, fmt.Errorf("core: start transfer service: %w", err)
	}
	if cfg.IsHome || (n.ring != nil && n.ring.Contains(cfg.Site)) {
		if n.sync, err = newSyncThread(n, nil); err != nil {
			return nil, fmt.Errorf("core: start synchronization thread: %w", err)
		}
	}
	return n, nil
}

// Site returns this node's site ID.
func (n *Node) Site() wire.SiteID { return n.cfg.Site }

// Endpoint returns the node's MNet endpoint (for stats and runtime use).
func (n *Node) Endpoint() *mnet.Endpoint { return n.ep }

// Log returns the node's event logger.
func (n *Node) Log() *eventlog.Logger { return n.log }

// Mode returns the replica transfer mode.
func (n *Node) Mode() TransferMode { return n.cfg.Mode }

// Sync returns the local synchronization thread, or nil if this node is
// not (currently) the home.
func (n *Node) Sync() *syncThread {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sync
}

// Close shuts the node down. In-flight operations fail with ErrClosed.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	close(n.done)
	s := n.sync
	n.mu.Unlock()
	if s != nil {
		s.stop()
	}
	n.xfer.close()
	err := n.ep.Close()
	if n.store != nil {
		// After the endpoint: no protocol goroutine appends once sends and
		// arrivals are dead, and Close fsyncs the tail.
		if serr := n.store.Close(); err == nil {
			err = serr
		}
	}
	return err
}

// isClosed reports whether Close has run.
func (n *Node) isClosed() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.closed
}

// currentSyncAddr returns the synchronization thread's address, which can
// change when a surrogate takes over.
func (n *Node) currentSyncAddr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.syncAddr
}

// SyncAddr exposes the current synchronization-thread address.
func (n *Node) SyncAddr() string { return n.currentSyncAddr() }

// SyncEpoch exposes the current synchronization-thread epoch.
func (n *Node) SyncEpoch() uint32 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.syncEpoch
}

// Done is closed when the node shuts down.
func (n *Node) Done() <-chan struct{} { return n.done }

// setSyncAddr installs a new synchronization-thread location (SyncMoved).
// Stale epochs are ignored.
func (n *Node) setSyncAddr(addr string, epoch uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if epoch < n.syncEpoch {
		return
	}
	n.syncAddr = addr
	n.syncEpoch = epoch
	if n.log.On() {
		n.log.Logf("sync", "synchronization thread moved to %s (epoch %d)", addr, epoch)
	}
}

// endpointAddr resolves a site's endpoint address from the directory.
func (n *Node) endpointAddr(site wire.SiteID) (string, error) {
	addr, ok := n.cfg.Directory[site]
	if !ok {
		return "", fmt.Errorf("core: site %d not in directory", site)
	}
	return addr, nil
}

// daemonAddr resolves a site's daemon port address.
func (n *Node) daemonAddr(site wire.SiteID) (string, error) {
	ep, err := n.endpointAddr(site)
	if err != nil {
		return "", err
	}
	return mnet.JoinAddr(ep, PortDaemon), nil
}

// clientAddr resolves a site's client port address.
func (n *Node) clientAddr(site wire.SiteID) (string, error) {
	ep, err := n.endpointAddr(site)
	if err != nil {
		return "", err
	}
	return mnet.JoinAddr(ep, PortClient), nil
}

// xferAddr resolves a site's transfer-control port address.
func (n *Node) xferAddr(site wire.SiteID) (string, error) {
	ep, err := n.endpointAddr(site)
	if err != nil {
		return "", err
	}
	return mnet.JoinAddr(ep, PortXfer), nil
}

// syncAddrOf resolves a site's synchronization-thread port address (home
// placement: any manager site can run one).
func (n *Node) syncAddrOf(site wire.SiteID) (string, error) {
	ep, err := n.endpointAddr(site)
	if err != nil {
		return "", err
	}
	return mnet.JoinAddr(ep, PortSync), nil
}

// Ring exposes the home-placement ring (nil when placement is off).
func (n *Node) Ring() *placement.Ring { return n.ring }

// learnHome installs a per-lock home route learned from a redirect, hint,
// or promotion broadcast. Routes with an epoch at least as new win; ring
// defaults travel as epoch 0 and so never displace a learned route.
func (n *Node) learnHome(lock wire.LockID, home wire.SiteID, epoch uint32) {
	if n.ring == nil || home == 0 {
		return
	}
	n.homeMu.Lock()
	cur, ok := n.homeOverrides[lock]
	if !ok || epoch >= cur.epoch {
		n.homeOverrides[lock] = homeOverride{to: home, epoch: epoch}
	}
	n.homeMu.Unlock()
}

// homeOf resolves a lock's current best-known home site and route epoch.
// With placement off it is always the fixed home site.
func (n *Node) homeOf(lock wire.LockID) (wire.SiteID, uint32) {
	if n.ring == nil {
		return wire.HomeSite, 0
	}
	n.homeMu.Lock()
	ov, ok := n.homeOverrides[lock]
	n.homeMu.Unlock()
	if ok {
		return ov.to, ov.epoch
	}
	return n.ring.Home(lock), 0
}

// RuntimeAddr resolves a site's runtime port address (used by package
// runtime).
func (n *Node) RuntimeAddr(site wire.SiteID) (string, error) {
	ep, err := n.endpointAddr(site)
	if err != nil {
		return "", err
	}
	return mnet.JoinAddr(ep, PortRuntime), nil
}

// RequestTimeout exposes the configured control-message timeout.
func (n *Node) RequestTimeout() time.Duration { return n.cfg.RequestTimeout }

// Directory returns a copy of the site directory.
func (n *Node) Directory() map[wire.SiteID]string {
	out := make(map[wire.SiteID]string, len(n.cfg.Directory))
	for k, v := range n.cfg.Directory {
		out[k] = v
	}
	return out
}

// Sites lists every site in the directory in ascending order.
func (n *Node) Sites() []wire.SiteID {
	out := make([]wire.SiteID, 0, len(n.cfg.Directory))
	for site := range n.cfg.Directory {
		out = append(out, site)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Handle identifies one application thread to the shared-object system.
// The travel-bag Mocha object of the runtime layer wraps a Handle, so
// every remotely evaluated task gets its own.
type Handle struct {
	node  *Node
	id    wire.ThreadID
	name  string
	lease time.Duration
}

// NewHandle registers an application thread.
func (n *Node) NewHandle(name string) *Handle {
	n.mu.Lock()
	n.nextThread++
	local := n.nextThread
	n.mu.Unlock()
	return &Handle{
		node:  n,
		id:    wire.MakeThreadID(n.cfg.Site, local),
		name:  name,
		lease: n.cfg.DefaultLease,
	}
}

// ID returns the cluster-unique thread ID.
func (h *Handle) ID() wire.ThreadID { return h.id }

// Node returns the handle's site node.
func (h *Handle) Node() *Node { return h.node }

// SetLease declares how long this thread expects to hold locks — the
// paper's "threads indicate approximately how long they need to hold a
// lock", which drives lock-breaking failure detection.
func (h *Handle) SetLease(d time.Duration) {
	if d > 0 {
		h.lease = d
	}
}

// getLockLocal returns (creating if needed) the per-site shared state for
// a lock ID.
func (n *Node) getLockLocal(id wire.LockID) *lockLocal {
	n.mu.Lock()
	defer n.mu.Unlock()
	st, ok := n.lockLocals[id]
	if !ok {
		depth := 0
		if n.cfg.DeltaTransfer {
			depth = n.cfg.DeltaLogDepth
		}
		st = newLockLocal(id, depth)
		n.lockLocals[id] = st
	}
	return st
}
