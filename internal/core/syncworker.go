package core

import (
	"context"
	"sync"
	"time"

	"mocha/internal/obs"
	"mocha/internal/wire"
)

// This file holds the synchronization thread's completion workers: every
// network send the protocol needs — grant delivery, transfer directives,
// daemon polls, the revised grants of Section 4 recovery — runs here,
// outside all lock-table mutexes, and re-enters the per-lock state
// machine with the outcome. Workers carry the *holderInfo of the grant
// session they serve and re-validate it (pointer identity) before acting
// on lock state, so a session whose hold was released, broken, or
// re-granted while its I/O was in flight dies without side effects.

// timeoutCtx is shorthand for a background context with a deadline.
func timeoutCtx(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// deliverGrant sends a GRANT and, when needed, directs the transfer of
// the newest replicas to the grantee. A failed delivery means the
// requester died: the worker re-enters the state machine, removes the
// optimistically installed hold, and grants the next requester.
func (s *syncThread) deliverGrant(l *syncLock, req *lockRequest, h *holderInfo, g *wire.Grant) {
	deliverStart := time.Now()
	if hs := s.home; hs != nil {
		// Stream the hold to the standby before the grant leaves: once
		// the client holds the lock, the ring successor must already be
		// able to restore the lease if this home dies.
		hs.streamHoldSync(l)
	}
	crashed := s.node.fireFault(FaultContext{
		Point: FPCrashBeforeGrant, Peer: req.site, Lock: l.id, Thread: req.thread, Version: g.Version,
	}).Drop
	if crashed || !s.sendToClient(req.site, g) {
		if s.node.log.On() {
			s.node.log.Logf("fault", "grant of lock %d undeliverable to site %d; skipping requester", l.id, req.site)
		}
		l.mu.Lock()
		var actions []func()
		if s.dropHoldLocked(l, h) {
			s.node.recordHist(wire.HistoryEvent{
				Kind: wire.HistGrantDropped, Site: req.site, Thread: req.thread, Lock: l.id,
			})
			actions = s.tryGrantLocked(l)
			if hs := s.home; hs != nil {
				// The standby already streamed this hold; retract it, or
				// a promotion would restore a hold nobody received and
				// sit on its lease.
				actions = append(actions, hs.standbyActionLocked(l))
			}
		}
		l.mu.Unlock()
		s.run(actions)
		return
	}
	s.node.obs().Inc(obs.CGrants)
	s.node.obs().Observe(obs.HGrantDeliver, time.Since(deliverStart))
	// The standby already knows this hold (streamed above), so a hook may
	// kill the home here — the window the failover must cover.
	s.node.fireFault(FaultContext{
		Point: FPKillLockHome, Peer: req.site, Lock: l.id, Thread: req.thread, Version: g.Version,
	})
	if s.node.log.On() {
		s.node.log.Log("sync", "granted lock",
			obs.I("lock", int64(l.id)), obs.I("version", int64(g.Version)),
			obs.I("thread", int64(req.thread)), obs.I("site", int64(req.site)),
			obs.S("flag", g.Flag.String()))
	}

	if g.Flag == wire.NeedNewVersion {
		s.directTransfer(l, req, h)
	}
}

// directTransfer orders the daemon holding the newest replicas to send a
// copy to the grantee's site; on failure it runs the Section 4 recovery:
// poll the remaining daemons for "the most recent version of the replicas
// available" and, if only an older version survives, downgrade the grant.
func (s *syncThread) directTransfer(l *syncLock, req *lockRequest, h *holderInfo) {
	l.mu.Lock()
	src := l.lastOwner
	version := l.version
	srcClean := l.upToDate.Contains(src)
	l.mu.Unlock()
	if !srcClean {
		// The last owner's copy was contaminated by a broken hold (its
		// daemon would refuse the directive anyway): go straight to the
		// recovery poll, where dirty sites answer HasData=false.
		if s.node.log.On() {
			s.node.log.Logf("fault", "transfer source %d for lock %d holds no clean copy; polling daemons", src, l.id)
		}
		s.recoverTransfer(l, req, h, map[wire.SiteID]bool{})
		return
	}
	if err := s.sendDirective(l.id, src, req.site, req.have, version); err == nil {
		return
	}
	if s.node.log.On() {
		s.node.log.Logf("fault", "transfer directive for lock %d to daemon %d timed out; polling daemons", l.id, src)
	}
	s.recoverTransfer(l, req, h, map[wire.SiteID]bool{src: true})
}

// sendDirective sends one TRANSFERREPLICA to a daemon. destVersion is the
// version the destination reported holding, letting the source offer a
// delta covering just the gap.
func (s *syncThread) sendDirective(lock wire.LockID, src, dest wire.SiteID, destVersion, version uint64) error {
	addr, err := s.node.daemonAddr(src)
	if err != nil {
		return err
	}
	dir := &wire.TransferReplica{
		Lock:        lock,
		Dest:        dest,
		Version:     version,
		DestVersion: destVersion,
		RequestID:   s.nextNonce.Add(1),
	}
	ctx, cancel := timeoutCtx(s.node.cfg.RequestTimeout)
	defer cancel()
	return s.aux.Send(ctx, addr, wire.Marshal(dir))
}

// recoverTransfer handles a dead transfer source. dead accumulates every
// source that has failed this session so the recovery terminates even if
// fallback daemons keep dying. The poll runs outside all mutexes; the
// version rewrite applies only if the grant session is still current.
func (s *syncThread) recoverTransfer(l *syncLock, req *lockRequest, h *holderInfo, dead map[wire.SiteID]bool) {
	best, found := s.pollDaemons(l, dead)

	l.mu.Lock()
	if !s.holdCurrentLocked(l, h) {
		// The grantee released (or was broken) while we polled; whoever
		// is granted next will rerun recovery against current state.
		l.mu.Unlock()
		if s.node.log.On() {
			s.node.log.Logf("fault", "abandoning transfer recovery for lock %d: hold by thread %d ended", l.id, req.thread)
		}
		return
	}
	if !found {
		// No surviving copy anywhere: tell the grantee to proceed with
		// whatever it has.
		l.lastOwner = req.site
		l.upToDate = wire.NewSiteSet(req.site)
		g := s.buildGrantLocked(l, req, l.version, wire.VersionOK, true, h.fence)
		s.node.recordHist(wire.HistoryEvent{
			Kind: wire.HistRecover, Site: req.site, Lock: l.id, Version: l.version, Note: "weakened-local",
		})
		s.recordGrant(l, g, req.site)
		l.mu.Unlock()
		if s.node.log.On() {
			s.node.log.Logf("fault", "no surviving copy of lock %d replicas; weakening to local state at site %d", l.id, req.site)
		}
		s.sendToClient(req.site, g)
		return
	}

	if best.Version < l.version {
		if s.node.log.On() {
			s.node.log.Logf("fault", "newest copy of lock %d lost; falling back to v%d at site %d (weakened consistency)",
				l.id, best.Version, best.Site)
		}
	}
	l.version = best.Version
	l.lastOwner = best.Site
	l.upToDate = wire.NewSiteSet(best.Site)
	s.node.recordHist(wire.HistoryEvent{
		Kind: wire.HistRecover, Site: best.Site, Lock: l.id, Version: best.Version, Note: "poll-best",
	})

	if best.Site == req.site {
		// The grantee itself holds the best surviving copy.
		g := s.buildGrantLocked(l, req, best.Version, wire.VersionOK, true, h.fence)
		s.recordGrant(l, g, req.site)
		l.mu.Unlock()
		s.sendToClient(req.site, g)
		return
	}
	g := s.buildGrantLocked(l, req, best.Version, wire.NeedNewVersion, true, h.fence)
	s.recordGrant(l, g, req.site)
	l.mu.Unlock()
	s.sendToClient(req.site, g)
	if err := s.sendDirective(l.id, best.Site, req.site, req.have, best.Version); err != nil {
		// The fallback daemon died too; recurse on the remaining set.
		if s.node.log.On() {
			s.node.log.Logf("fault", "fallback transfer source %d for lock %d also failed", best.Site, l.id)
		}
		dead[best.Site] = true
		s.recoverTransfer(l, req, h, dead)
	}
}

// pollDaemons queries every registered daemon except the known-dead ones
// for its local version. The probes fan out concurrently under one shared
// RequestTimeout deadline (the pre-S30 serial loop paid a fresh timeout
// per sharer, making recovery O(n × timeout)), and the reply channel is
// sized to the number of daemons asked so no reply is ever dropped. The
// reduction is deterministic: highest version wins, ties broken by lowest
// site ID.
func (s *syncThread) pollDaemons(l *syncLock, dead map[wire.SiteID]bool) (*wire.PollVersionReply, bool) {
	pollStart := time.Now()
	defer func() {
		s.node.obs().Observe(obs.HDaemonPoll, time.Since(pollStart))
	}()
	l.mu.Lock()
	sites := l.sharers.Sites()
	dirty := l.dirty.Clone()
	l.mu.Unlock()

	type target struct {
		site wire.SiteID
		addr string
	}
	targets := make([]target, 0, len(sites))
	for _, site := range sites {
		if dead[site] || dirty.Contains(site) {
			// A site whose broken hold contaminated its copy would answer
			// with uncommitted bytes under its stale version label.
			continue
		}
		addr, err := s.node.daemonAddr(site)
		if err != nil {
			continue
		}
		targets = append(targets, target{site: site, addr: addr})
	}
	if len(targets) == 0 {
		return nil, false
	}

	nonce := s.nextNonce.Add(1)
	ch := make(chan *wire.PollVersionReply, len(targets))
	s.pollMu.Lock()
	s.pollWaiters[nonce] = ch
	s.pollMu.Unlock()
	defer func() {
		s.pollMu.Lock()
		delete(s.pollWaiters, nonce)
		s.pollMu.Unlock()
	}()

	ctx, cancel := timeoutCtx(s.node.cfg.RequestTimeout)
	defer cancel()
	poll := wire.Marshal(&wire.PollVersion{Lock: l.id, Nonce: nonce})
	var delivered int32
	var deliveredMu sync.Mutex
	var wg sync.WaitGroup
	for _, t := range targets {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.node.obs().Inc(obs.CDaemonPolls)
			if err := s.aux.Send(ctx, t.addr, poll); err != nil {
				if s.node.log.On() {
					s.node.log.Logf("fault", "poll of daemon %d failed: %v", t.site, err)
				}
				return
			}
			deliveredMu.Lock()
			delivered++
			deliveredMu.Unlock()
		}()
	}
	sendsDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(sendsDone)
	}()

	// Collect until every asked daemon replied, every delivered poll has
	// been answered, or the shared deadline passes.
	var replies []*wire.PollVersionReply
	sendsComplete := false
collect:
	for len(replies) < len(targets) {
		if sendsComplete {
			deliveredMu.Lock()
			done := len(replies) >= int(delivered)
			deliveredMu.Unlock()
			if done {
				break
			}
		}
		select {
		case r := <-ch:
			replies = append(replies, r)
		case <-sendsDone:
			sendsComplete = true
			sendsDone = nil // select on nil blocks: fires once
		case <-ctx.Done():
			break collect
		}
	}

	var best *wire.PollVersionReply
	for _, r := range replies {
		if !r.HasData {
			continue
		}
		if best == nil || r.Version > best.Version ||
			(r.Version == best.Version && r.Site < best.Site) {
			best = r
		}
	}
	return best, best != nil
}

// sendToClient delivers a message to a site's client port, reporting
// success. A failed send is the failure-detection signal for requesters.
func (s *syncThread) sendToClient(site wire.SiteID, p wire.Payload) bool {
	addr, err := s.node.clientAddr(site)
	if err != nil {
		return false
	}
	ctx, cancel := timeoutCtx(s.node.cfg.RequestTimeout)
	defer cancel()
	// Grants and nacks are small fixed-layout frames on the hottest
	// control path; encode them straight into the packet buffer.
	return s.port.SendAppender(ctx, addr, wire.Appender{P: p}) == nil
}
