package core

import (
	"testing"
	"time"

	"mocha/internal/wire"
)

// TestLocksWhoseStandbyDiedStayUnreplicated pins the standby
// re-replication gap in the consistent-hash home placement: a manager's
// standby target (hs.succ) is computed once at startup and never again
// (see newHomeState), and a standby's death triggers promotion of the
// locks it *homed* but nothing for the locks it *shadowed*. So when site
// V dies, the survivor W promotes V's own slice — but every lock homed
// at V's predecessor P had its only shadow on V, and P keeps streaming
// StandbyUpdates into the void. Those locks run with no live replica of
// their manager state until a migration moves them to a manager with a
// live successor; a second failure (of P) in that window strands them.
//
// TRACKING: this test asserts today's behavior on purpose. When
// re-replication after standby death lands (P recomputes its successor
// over the live ring and re-streams its records — or promotion fans the
// dead site's shadow set onward), flip the expectations below: P's
// standby target should move off the dead site and W should hold a
// shadow of the P-homed lock at the post-kill version.
func TestLocksWhoseStandbyDiedStayUnreplicated(t *testing.T) {
	const sites = 3
	const lockP = wire.LockID(33)
	tc := newTestCluster(t, sites, placementOpts())
	ctx := tctx(t)

	// Ring geometry: lockP is homed at P, whose successor (= standby) is
	// the victim; the victim's own successor is the third site W, which
	// will promote the victim's slice.
	home, _ := tc.node(1).homeOf(lockP)
	victim := tc.node(1).Ring().Successor(home)
	third := otherSite(t, sites, home, victim)

	// A second lock homed at the victim contrasts the two fates: the
	// victim's own locks survive through promotion, while the locks it
	// merely shadowed do not get a replacement standby.
	var lockV wire.LockID
	for id := wire.LockID(100); id < 600; id++ {
		if h, _ := tc.node(1).homeOf(id); h == victim {
			lockV = id
			break
		}
	}
	if lockV == 0 {
		t.Fatal("no lock hashes to the victim site")
	}

	hcP := tc.node(home).NewHandle("creator-p")
	mustCreate(t, hcP, lockP, "shadowed", []int32{1}, sites)
	hcV := tc.node(victim).NewHandle("creator-v")
	mustCreate(t, hcV, lockV, "promoted", []int32{1}, sites)
	hw := tc.node(third).NewHandle("writer")
	rlP, repP := mustAttach(t, hw, lockP, "shadowed")
	rlV, repV := mustAttach(t, hw, lockV, "promoted")
	settle()

	// Commit one write on each so both homes stream real shadows: lockP's
	// shadow lands on the victim, lockV's on W.
	for _, w := range []struct {
		rl  *ReplicaLock
		rep *Replica
	}{{rlP, repP}, {rlV, repV}} {
		if err := w.rl.Lock(ctx); err != nil {
			t.Fatal(err)
		}
		w.rep.Content().IntsData()[0] = 2
		if err := w.rl.Unlock(ctx); err != nil {
			t.Fatal(err)
		}
	}
	recP := tc.node(home).Sync().lookupLock(lockP)
	if recP == nil {
		t.Fatal("no record at lockP's home")
	}
	recP.mu.Lock()
	preVersion := recP.version
	recP.mu.Unlock()
	recV := tc.node(victim).Sync().lookupLock(lockV)
	if recV == nil {
		t.Fatal("no record at lockV's home")
	}
	recV.mu.Lock()
	committedV := recV.version
	recV.mu.Unlock()

	// Shadow streaming is asynchronous; wait until both standbys hold the
	// committed versions before pulling the plug, so the promotion below
	// restores current state rather than a stale in-flight snapshot.
	if waitShadow(t, tc.node(victim), lockP, preVersion) == nil {
		t.Fatalf("victim never received a v%d shadow of lock %d from its predecessor", preVersion, lockP)
	}
	if waitShadow(t, tc.node(third), lockV, committedV) == nil {
		t.Fatalf("site %d never received a v%d shadow of lock %d from the victim", third, committedV, lockV)
	}

	// Fail-stop the victim and promote its slice, as the standby monitor
	// would after missed probes.
	tc.kill(victim)
	tc.node(third).PromoteStandby(victim)
	settle()

	// The victim's own locks live on: W serves lockV from the promoted
	// shadow, content intact.
	if err := rlV.Lock(ctx); err != nil {
		t.Fatalf("acquire promoted lock %d: %v", lockV, err)
	}
	if got := repV.Content().IntsData()[0]; got != 2 {
		t.Fatalf("promoted lock read = %d, want 2", got)
	}
	repV.Content().IntsData()[0] = 3
	if err := rlV.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	// Commit a new version of lockP through its (still live) home. The
	// home streams the standby update to its dead successor, where it is
	// silently lost.
	if err := rlP.Lock(ctx); err != nil {
		t.Fatalf("acquire lock %d at surviving home: %v", lockP, err)
	}
	repP.Content().IntsData()[0] = 3
	if err := rlP.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	settle()
	time.Sleep(200 * time.Millisecond)

	recP.mu.Lock()
	postVersion := recP.version
	recP.mu.Unlock()
	if postVersion <= preVersion {
		t.Fatalf("lockP's home never committed past v%d", preVersion)
	}

	// The gap itself. First half: the home's standby target still points
	// at the dead site — nothing recomputes hs.succ over the live ring.
	// (Flip to a live site once successor recomputation exists.)
	hsP := tc.node(home).Sync().home
	if hsP.succ != victim {
		t.Fatalf("home's standby target moved from dead site %d to %d: "+
			"successor recomputation appeared — update this test's expectations",
			victim, hsP.succ)
	}

	// Second half: no live site shadows lockP, so v%d exists only at its
	// home. (Flip to a non-nil shadow at W carrying postVersion once
	// re-replication after standby death exists.)
	if sh := shadowOf(tc.node(third), lockP); sh != nil {
		t.Fatalf("site %d holds a shadow of lock %d (v%d): re-replication "+
			"appeared — update this test's expectations", third, lockP, sh.rec.Version)
	}
	if sh := shadowOf(tc.node(home), lockP); sh != nil {
		t.Fatalf("lockP's own home holds a shadow of it (v%d)?", sh.rec.Version)
	}
}

// shadowOf reads one entry of a node's standby shadow table.
func shadowOf(n *Node, lock wire.LockID) *shadowRecord {
	hs := n.Sync().home
	hs.mu.Lock()
	defer hs.mu.Unlock()
	return hs.shadows[lock]
}

// waitShadow polls for the (asynchronous) arrival of a shadow carrying
// at least the given version.
func waitShadow(t *testing.T, n *Node, lock wire.LockID, version uint64) *shadowRecord {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if sh := shadowOf(n, lock); sh != nil && sh.rec.Version >= version {
			return sh
		}
		if time.Now().After(deadline) {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}
