package core

import (
	"context"
	"fmt"

	"mocha/internal/mnet"
	"mocha/internal/wire"
)

// This file implements the synchronization-thread recovery the paper
// sketches at the end of Section 4: "Failure detection and handling of the
// synchronization thread could be handled by logging its state and
// employing a recovery protocol whereby a new synchronization thread is
// spawned which informs the daemon threads of its existence."
//
// The state log is a snapshot of the durable lock bookkeeping (versions,
// last owners, up-to-date sets, sharer sets, bans). Transient state —
// in-flight holds and queued requests — is deliberately not recovered:
// threads waiting on the dead manager time out, query their local daemon
// for the surrogate's address (which the SyncMoved broadcast installed),
// and re-issue their requests.

// SyncState is a serializable snapshot of the synchronization thread.
type SyncState struct {
	Epoch  uint32
	Locks  map[wire.LockID]LockSnapshot
	Banned map[wire.ThreadID]BanRecord
}

// BanRecord is the compact durable form of one ban: which lock's lease
// expired and which site's heartbeat went unanswered. The human-readable
// reason string is reconstructed on demand — the only ban cause is a
// lease break, so two integers carry the whole story.
type BanRecord struct {
	Lock wire.LockID
	Site wire.SiteID
}

// LockSnapshot is one lock's durable record.
type LockSnapshot struct {
	Version uint64
	// HighWater is the highest version ever committed (≥ Version; they
	// differ after recovery weakened the lock to an older copy).
	HighWater uint64
	LastOwner wire.SiteID
	UpToDate  wire.SiteSet
	Dirty     wire.SiteSet
	Sharers   wire.SiteSet
	Names     []string
}

// Snapshot captures the manager's durable state — the "logging its state"
// half of the recovery protocol. It walks the shards one at a time, so a
// snapshot never stalls lock traffic table-wide.
func (s *syncThread) Snapshot() SyncState {
	out := SyncState{
		Epoch:  s.epoch,
		Locks:  make(map[wire.LockID]LockSnapshot),
		Banned: make(map[wire.ThreadID]BanRecord),
	}
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id, l := range sh.locks {
			l.mu.Lock()
			names := make([]string, 0, len(l.names))
			for n := range l.names {
				names = append(names, n)
			}
			out.Locks[id] = LockSnapshot{
				Version:   l.version,
				HighWater: l.highWater,
				LastOwner: l.lastOwner,
				UpToDate:  l.upToDate.Clone(),
				Dirty:     l.dirty.Clone(),
				Sharers:   l.sharers.Clone(),
				Names:     names,
			}
			l.mu.Unlock()
		}
		sh.mu.Unlock()
	}
	s.bannedMu.Lock()
	for t, rec := range s.banned {
		out.Banned[t] = BanRecord{Lock: rec.lock, Site: rec.site}
	}
	s.bannedMu.Unlock()
	return out
}

// restore loads a snapshot into a fresh manager with a bumped epoch. It
// runs before the ports are wired up, but takes the shard and record
// mutexes anyway for uniformity.
func (s *syncThread) restore(st *SyncState) {
	s.epoch = st.Epoch + 1
	for id, snap := range st.Locks {
		l := s.ensureLock(id)
		l.mu.Lock()
		l.version = snap.Version
		l.highWater = snap.HighWater
		if l.highWater < snap.Version {
			l.highWater = snap.Version
		}
		l.lastOwner = snap.LastOwner
		l.upToDate = snap.UpToDate.Clone()
		l.dirty = snap.Dirty.Clone()
		l.sharers = snap.Sharers.Clone()
		for _, n := range snap.Names {
			l.names[n] = true
		}
		s.node.recordHist(wire.HistoryEvent{
			Kind: wire.HistRecover, Site: s.node.cfg.Site, Lock: id,
			Version: snap.Version, Sites: snap.UpToDate.Clone(), Note: "surrogate-restore",
		})
		l.mu.Unlock()
	}
	for t, rec := range st.Banned {
		s.ban(t, rec.Lock, rec.Site)
	}
}

// StartSurrogate spawns a surrogate synchronization thread on this node
// from a logged snapshot and informs every daemon in the directory of its
// existence. The node becomes the new home for lock management.
func (n *Node) StartSurrogate(ctx context.Context, state SyncState) error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return ErrClosed
	}
	if n.sync != nil {
		n.mu.Unlock()
		return fmt.Errorf("core: site %d already runs a synchronization thread", n.cfg.Site)
	}
	n.mu.Unlock()

	s, err := newSyncThread(n, &state)
	if err != nil {
		return fmt.Errorf("core: start surrogate: %w", err)
	}
	newAddr := mnet.JoinAddr(n.ep.Addr(), PortSync)

	n.mu.Lock()
	n.sync = s
	n.syncAddr = newAddr
	n.syncEpoch = s.epoch
	n.mu.Unlock()
	if n.log.On() {
		n.log.Logf("sync", "surrogate synchronization thread started (epoch %d)", s.epoch)
	}

	// Inform the daemon threads of its existence.
	moved := wire.Marshal(&wire.SyncMoved{Addr: newAddr, Epoch: s.epoch})
	for site := range n.cfg.Directory {
		if site == n.cfg.Site {
			continue
		}
		addr, err := n.daemonAddr(site)
		if err != nil {
			continue
		}
		sendCtx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
		if err := s.aux.Send(sendCtx, addr, moved); err != nil {
			if n.log.On() {
				n.log.Logf("sync", "SyncMoved to site %d failed: %v", site, err)
			}
		}
		cancel()
	}
	return nil
}
