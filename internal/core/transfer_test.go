package core

import (
	"fmt"
	"testing"
	"time"

	"mocha/internal/transport"
	"mocha/internal/wire"
)

// transferCycle performs one write-at-A, read-at-B cycle and verifies the
// value moved.
func transferCycle(t *testing.T, rlA, rlB *ReplicaLock, rA, rB *Replica, value int32) {
	t.Helper()
	ctx := tctx(t)
	if err := rlA.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	rA.Content().IntsData()[0] = value
	if err := rlA.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rlB.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if got := rB.Content().IntsData()[0]; got != value {
		t.Fatalf("transferred value = %d, want %d", got, value)
	}
	if err := rlB.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestStreamReuseCachesConnections(t *testing.T) {
	run := func(reuse bool) (int64, int64) {
		opts := defaultOpts()
		opts.mode = ModeHybrid
		opts.reuse = reuse
		tc := newTestCluster(t, 2, opts)

		h1 := tc.node(1).NewHandle("a")
		rl1, r1 := mustCreate(t, h1, 5, "v", []int32{0}, 2)
		h2 := tc.node(2).NewHandle("b")
		rl2, r2 := mustAttach(t, h2, 5, "v")
		settle()

		const cycles = 3
		for i := 0; i < cycles; i++ {
			transferCycle(t, rl1, rl2, r1, r2, int32(10+i))
			transferCycle(t, rl2, rl1, r2, r1, int32(20+i))
		}
		return tc.node(1).StreamsEstablished(), tc.node(2).StreamsEstablished()
	}

	e1, e2 := run(false)
	if e1 < 3 || e2 < 3 {
		t.Fatalf("per-transfer mode established %d/%d connections, want >= 3 each", e1, e2)
	}
	r1, r2 := run(true)
	if r1 != 1 || r2 != 1 {
		t.Fatalf("reuse mode established %d/%d connections, want exactly 1 each", r1, r2)
	}
}

// brokenDialStack wraps a stack whose outbound stream dials always fail,
// simulating a hybrid path broken by firewalls or a dead TCP stack while
// MNet still works.
type brokenDialStack struct {
	transport.Stack
}

func (b *brokenDialStack) DialStream(string) (transport.Conn, error) {
	return nil, fmt.Errorf("simulated dial failure")
}

func TestHybridFallsBackToMNet(t *testing.T) {
	opts := defaultOpts()
	opts.mode = ModeHybrid
	opts.xferTO = 2 * time.Second
	opts.wrapStack = func(site wire.SiteID, s transport.Stack) transport.Stack {
		return &brokenDialStack{Stack: s}
	}
	tc := newTestCluster(t, 2, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("a")
	rl1, r1 := mustCreate(t, h1, 5, "v", []int32{1}, 2)
	h2 := tc.node(2).NewHandle("b")
	rl2, r2 := mustAttach(t, h2, 5, "v")
	settle()
	_ = rl1
	_ = r1

	// The stream path is dead; the transfer must still complete over MNet.
	if err := rl2.Lock(ctx); err != nil {
		t.Fatalf("lock with broken stream path: %v", err)
	}
	if got := r2.Content().IntsData()[0]; got != 1 {
		t.Fatalf("fallback transfer value = %d, want 1", got)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if tc.node(1).Log().CountCategory("fault") == 0 {
		t.Fatal("fallback not logged as a fault event")
	}
}

func TestAdaptiveThresholdRouting(t *testing.T) {
	opts := defaultOpts()
	opts.mode = ModeAdaptive
	tc := newTestCluster(t, 2, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("a")
	// Small replica: below the 2048-byte default threshold -> MNet path,
	// no stream establishment.
	rlSmall, rSmall := mustCreate(t, h1, 5, "small", []int32{1}, 2)
	h2 := tc.node(2).NewHandle("b")
	rl2, r2 := mustAttach(t, h2, 5, "small")
	settle()
	_ = rlSmall
	_ = rSmall
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if got := tc.node(1).StreamsEstablished(); got != 0 {
		t.Fatalf("small transfer used %d streams, want 0", got)
	}
	_ = r2

	// Large replica: above the threshold -> stream path.
	rlBig, _ := mustCreate(t, h1, 6, "big", make([]int32, 4096), 2)
	h2b := tc.node(2).NewHandle("c")
	rlBig2, _ := mustAttach(t, h2b, 6, "big")
	settle()
	_ = rlBig
	if err := rlBig2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rlBig2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if got := tc.node(1).StreamsEstablished(); got != 1 {
		t.Fatalf("large transfer used %d streams, want 1", got)
	}
}
