package core

import (
	"context"
	"fmt"

	"mocha/internal/marshal"
	"mocha/internal/mnet"
	"mocha/internal/wire"
)

// daemon is the Go form of the paper's daemon thread (Figure 6): a single
// dispatcher that owns access to the site's shared replicas, transfers
// them to remote sites on request, and applies arriving updates. It runs
// as the handler of the daemon port, so its work is serialized exactly
// like the maximum-priority Java thread in the prototype.
type daemon struct {
	node *Node
	port *mnet.Port
}

func newDaemon(n *Node) (*daemon, error) {
	port, err := n.ep.OpenPort(PortDaemon)
	if err != nil {
		return nil, err
	}
	d := &daemon{node: n, port: port}
	port.SetHandler(d.handle)
	return d, nil
}

// handle processes one daemon-port message.
func (d *daemon) handle(m mnet.Message) {
	p, err := wire.Unmarshal(m.Data)
	if err != nil {
		d.node.log.Logf("daemon", "bad message: %v", err)
		return
	}
	switch msg := p.(type) {
	case *wire.TransferReplica:
		// "when a daemon thread receives a request for its copy of
		// replicas, the thread identifies the replicas associated with
		// the lock identifier it receives, marshals those replicas and
		// sends them to the mandated destination."
		if err := d.node.xfer.sendReplicas(msg); err != nil {
			d.node.log.Logf("daemon", "transfer of lock %d to site %d failed: %v", msg.Lock, msg.Dest, err)
		}
	case *wire.ReplicaData:
		d.node.applyReplicaData(msg)
	case *wire.PushUpdate:
		d.node.applyPush(msg)
		ack := &wire.PushAck{Lock: msg.Lock, Site: d.node.cfg.Site, Version: msg.Version}
		d.replyTo(m.From, ack)
	case *wire.PollVersion:
		st := d.node.getLockLocal(msg.Lock)
		st.mu.Lock()
		version := st.version
		st.mu.Unlock()
		reply := &wire.PollVersionReply{
			Lock:    msg.Lock,
			Site:    d.node.cfg.Site,
			Nonce:   msg.Nonce,
			Version: version,
			HasData: version > 0,
		}
		d.replyTo(m.From, reply)
	case *wire.Heartbeat:
		d.replyTo(m.From, &wire.HeartbeatAck{Nonce: msg.Nonce, Site: d.node.cfg.Site})
	case *wire.SyncMoved:
		d.node.setSyncAddr(msg.Addr, msg.Epoch)
	default:
		d.node.log.Logf("daemon", "unhandled %s on daemon port", p.Kind())
	}
}

// replyTo sends a response back to the message's origin port.
func (d *daemon) replyTo(to string, p wire.Payload) {
	ctx, cancel := context.WithTimeout(context.Background(), d.node.cfg.RequestTimeout)
	defer cancel()
	if err := d.port.Send(ctx, to, wire.Marshal(p)); err != nil {
		d.node.log.Logf("daemon", "reply %s to %s failed: %v", p.Kind(), to, err)
	}
}

// applyReplicaData installs a transferred replica version, waking any
// thread blocked in lock() waiting for it. Stale versions are ignored, so
// duplicate deliveries and overtaken pushes are harmless.
func (n *Node) applyReplicaData(rd *wire.ReplicaData) {
	n.applyPayloads(rd.Lock, rd.Version, rd.Replicas, "transfer", rd.From)
}

// applyPush installs a disseminated update. Lock 0 is the cached-replica
// namespace: unguarded replicas updated best-effort without consistency
// maintenance, like the image replicas of the table-setting application.
func (n *Node) applyPush(pu *wire.PushUpdate) {
	if pu.Lock == CachedLock {
		n.applyCached(pu)
		return
	}
	n.applyPayloads(pu.Lock, pu.Version, pu.Replicas, "push", pu.From)
}

// applyPayloads is the shared update-application path.
func (n *Node) applyPayloads(lock wire.LockID, version uint64, payloads []wire.ReplicaPayload, how string, from wire.SiteID) {
	st := n.getLockLocal(lock)
	st.mu.Lock()
	defer st.mu.Unlock()
	if version <= st.version {
		n.log.Logf("daemon", "stale %s of lock %d v%d from site %d (have v%d)", how, lock, version, from, st.version)
		return
	}
	for _, p := range payloads {
		r, ok := st.byName[p.Name]
		if !ok {
			// Replica not associated here yet: hold the payload until it
			// is.
			st.pending[p.Name] = pendingPayload{version: version, data: p.Data}
			continue
		}
		if err := n.cfg.Codec.Unmarshal(p.Data, r.content); err != nil {
			n.log.Logf("daemon", "unmarshal %q v%d: %v", p.Name, version, err)
			return
		}
	}
	st.version = version
	st.notifyVersionLocked()
	n.log.Logf("daemon", "applied %s of lock %d v%d from site %d (%d replicas)", how, lock, version, from, len(payloads))
}

// CachedLock is the reserved lock ID for unguarded cached replicas:
// shared objects deliberately not associated with any ReplicaLock, "cached
// at each host without any consistency maintenance being performed on
// them".
const CachedLock wire.LockID = 0

// RegisterCached installs a local unguarded replica that receives
// best-effort push updates by name.
func (n *Node) RegisterCached(r *Replica) error {
	if r == nil {
		return fmt.Errorf("core: nil cached replica")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	n.cached[r.name] = r
	return nil
}

// CachedReplica looks up a registered cached replica.
func (n *Node) CachedReplica(name string) (*Replica, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.cached[name]
	return r, ok
}

// applyCached applies a cached-namespace push: last writer wins, no
// version discipline — the non-synchronization-based sharing mode.
func (n *Node) applyCached(pu *wire.PushUpdate) {
	for _, p := range pu.Replicas {
		n.mu.Lock()
		r, ok := n.cached[p.Name]
		n.mu.Unlock()
		if !ok {
			n.log.Logf("daemon", "cached push for unregistered %q ignored", p.Name)
			continue
		}
		r.cachedMu.Lock()
		err := n.cfg.Codec.Unmarshal(p.Data, r.content)
		r.cachedMu.Unlock()
		if err != nil {
			n.log.Logf("daemon", "cached unmarshal %q: %v", p.Name, err)
		}
	}
}

// PublishCached pushes a cached replica's current content to the listed
// sites (all directory sites when targets is nil), best-effort: failures
// are logged and skipped, and no ordering is enforced.
func (n *Node) PublishCached(ctx context.Context, r *Replica, targets []wire.SiteID) error {
	r.cachedMu.Lock()
	blob, err := n.cfg.Codec.Marshal(r.content)
	r.cachedMu.Unlock()
	if err != nil {
		return fmt.Errorf("core: marshal cached %q: %w", r.name, err)
	}
	if targets == nil {
		for site := range n.cfg.Directory {
			if site != n.cfg.Site {
				targets = append(targets, site)
			}
		}
	}
	pu := &wire.PushUpdate{
		Lock:     CachedLock,
		From:     n.cfg.Site,
		Version:  1,
		Replicas: []wire.ReplicaPayload{{Name: r.name, Data: blob}},
	}
	msg := wire.Marshal(pu)
	for _, site := range targets {
		addr, err := n.daemonAddr(site)
		if err != nil {
			n.log.Logf("daemon", "cached publish: %v", err)
			continue
		}
		sendCtx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
		if err := n.xfer.port.Send(sendCtx, addr, msg); err != nil {
			n.log.Logf("daemon", "cached publish of %q to site %d failed: %v", r.name, site, err)
		}
		cancel()
	}
	return nil
}

// Marshal content helper used by the runtime layer.
func (n *Node) marshalContent(c *marshal.Content) ([]byte, error) {
	return n.cfg.Codec.Marshal(c)
}
