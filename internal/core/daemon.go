package core

import (
	"context"
	"fmt"

	"time"

	"mocha/internal/marshal"
	"mocha/internal/mnet"
	"mocha/internal/obs"
	"mocha/internal/wire"
)

// daemon is the Go form of the paper's daemon thread (Figure 6): a single
// dispatcher that owns access to the site's shared replicas, transfers
// them to remote sites on request, and applies arriving updates. It runs
// as the handler of the daemon port, so its work is serialized exactly
// like the maximum-priority Java thread in the prototype.
type daemon struct {
	node *Node
	port *mnet.Port
}

func newDaemon(n *Node) (*daemon, error) {
	port, err := n.ep.OpenPort(PortDaemon)
	if err != nil {
		return nil, err
	}
	d := &daemon{node: n, port: port}
	port.SetHandler(d.handle)
	return d, nil
}

// handle processes one daemon-port message.
func (d *daemon) handle(m mnet.Message) {
	p, err := wire.Unmarshal(m.Data)
	if err != nil {
		if d.node.log.On() {
			d.node.log.Logf("daemon", "bad message: %v", err)
		}
		return
	}
	switch msg := p.(type) {
	case *wire.TransferReplica:
		// "when a daemon thread receives a request for its copy of
		// replicas, the thread identifies the replicas associated with
		// the lock identifier it receives, marshals those replicas and
		// sends them to the mandated destination."
		if err := d.node.xfer.sendReplicas(msg); err != nil {
			if d.node.log.On() {
				d.node.log.Logf("daemon", "transfer of lock %d to site %d failed: %v", msg.Lock, msg.Dest, err)
			}
		}
	case *wire.ReplicaData:
		d.node.applyReplicaData(msg)
	case *wire.ReplicaDelta:
		// Delta transfers arrive on the daemon port like full ReplicaData.
		d.node.handleDeltaArrival(msg, m.From, d.port)
	case *wire.DeltaNack:
		d.node.xfer.handleDeltaNack(msg)
	case *wire.PushUpdate:
		d.node.applyPush(msg)
		ack := &wire.PushAck{Lock: msg.Lock, Site: d.node.cfg.Site, Version: msg.Version}
		d.replyTo(m.From, ack)
	case *wire.PollVersion:
		st := d.node.getLockLocal(msg.Lock)
		st.mu.Lock()
		version := st.version
		// Content a broken exclusive hold may have scribbled on cannot be
		// offered to recovery as the labeled version.
		dirty := st.uncommitted
		st.mu.Unlock()
		if d.node.fireFault(FaultContext{
			Point: FPDelayDaemonPoll, Lock: msg.Lock, Version: version,
		}).Drop {
			// The daemon's reply is lost; past the poll deadline this
			// site's copy is treated as unavailable.
			return
		}
		reply := &wire.PollVersionReply{
			Lock:    msg.Lock,
			Site:    d.node.cfg.Site,
			Nonce:   msg.Nonce,
			Version: version,
			HasData: version > 0 && !dirty,
		}
		d.replyTo(m.From, reply)
	case *wire.Heartbeat:
		d.replyTo(m.From, &wire.HeartbeatAck{Nonce: msg.Nonce, Site: d.node.cfg.Site})
	case *wire.SyncMoved:
		d.node.setSyncAddr(msg.Addr, msg.Epoch)
	case *wire.HomeHint:
		d.node.learnHome(msg.Lock, msg.Home, msg.Epoch)
	case *wire.HomeMoved:
		for _, lock := range msg.Locks {
			d.node.learnHome(lock, msg.To, msg.Epoch)
		}
		if d.node.log.On() {
			d.node.log.Logf("daemon", "home for %d locks moved from site %d to site %d (epoch %d)",
				len(msg.Locks), msg.From, msg.To, msg.Epoch)
		}
	default:
		if d.node.log.On() {
			d.node.log.Logf("daemon", "unhandled %s on daemon port", p.Kind())
		}
	}
}

// replyTo sends a response back to the message's origin port, encoding
// directly into the packet buffer (acks and version replies all fit one
// fragment).
func (d *daemon) replyTo(to string, p wire.Payload) {
	ctx, cancel := context.WithTimeout(context.Background(), d.node.cfg.RequestTimeout)
	defer cancel()
	if err := d.port.SendAppender(ctx, to, wire.Appender{P: p}); err != nil {
		if d.node.log.On() {
			d.node.log.Logf("daemon", "reply %s to %s failed: %v", p.Kind(), to, err)
		}
	}
}

// applyReplicaData installs a transferred replica version, waking any
// thread blocked in lock() waiting for it. Stale versions are ignored, so
// duplicate deliveries and overtaken pushes are harmless.
func (n *Node) applyReplicaData(rd *wire.ReplicaData) {
	n.applyPayloads(rd.Lock, rd.Version, rd.Replicas, "transfer", rd.From)
}

// applyPush installs a disseminated update. Lock 0 is the cached-replica
// namespace: unguarded replicas updated best-effort without consistency
// maintenance, like the image replicas of the table-setting application.
func (n *Node) applyPush(pu *wire.PushUpdate) {
	if pu.Lock == CachedLock {
		n.applyCached(pu)
		return
	}
	n.applyPayloads(pu.Lock, pu.Version, pu.Replicas, "push", pu.From)
}

// applyPayloads is the shared update-application path.
func (n *Node) applyPayloads(lock wire.LockID, version uint64, payloads []wire.ReplicaPayload, how string, from wire.SiteID) {
	applyStart := time.Now()
	st := n.getLockLocal(lock)
	st.mu.Lock()
	defer st.mu.Unlock()
	// A re-delivery of the version the local label already claims is
	// normally stale — but when the copy is uncommitted, the label is a
	// lie (a broken hold scribbled on the bytes) and the arriving
	// committed bytes are exactly the repair a blocked acquirer waits on.
	if version < st.version || (version == st.version && !st.uncommitted) {
		if n.log.On() {
			n.log.Logf("daemon", "stale %s of lock %d v%d from site %d (have v%d)", how, lock, version, from, st.version)
		}
		return
	}
	if n.applyBlobsLocked(st, lock, version, payloads, how, from, nil) {
		n.obs().Inc(obs.CApplies)
		n.obs().Observe(obs.HApply, time.Since(applyStart))
	}
}

// applyBlobsLocked installs marshaled blobs as the lock's new local
// version: unmarshal into the associated replicas (holding unknown names
// as pending), record the version step in the delta log, advance the
// version, and wake waiters. Caller holds st.mu and has already rejected
// stale versions. delta, when non-nil, is the S29 delta the blobs were
// patched from, so the store can log the patch instead of the full bytes.
// Reports whether the version was installed.
func (n *Node) applyBlobsLocked(st *lockLocal, lock wire.LockID, version uint64, payloads []wire.ReplicaPayload, how string, from wire.SiteID, delta *wire.ReplicaDelta) bool {
	// Recorded against the outgoing version's cache, so it must run before
	// the unmarshal loop replaces the content.
	st.recordIncomingStepLocked(version, payloads)
	for _, p := range payloads {
		r, ok := st.byName[p.Name]
		if !ok {
			// Replica not associated here yet: hold the payload until it
			// is.
			st.pending[p.Name] = pendingPayload{version: version, data: p.Data}
			continue
		}
		if err := n.cfg.Codec.Unmarshal(p.Data, r.content); err != nil {
			if n.log.On() {
				n.log.Logf("daemon", "unmarshal %q v%d: %v", p.Name, version, err)
			}
			// The loop may have replaced some replicas already while the
			// version stays put: the marshaled cache no longer describes
			// the content, and neither does any recorded delta chain.
			st.invalidatePayloadsLocked()
			if st.dlog != nil {
				st.dlog.reset()
				st.prevPayloads = nil
			}
			return false
		}
	}
	st.version = version
	if st.holder == 0 || st.heldShared {
		// The arriving committed bytes replaced the content wholesale; any
		// earlier broken hold's dirty writes are gone. With a live exclusive
		// hold the flag must stand — the holder keeps mutating in place.
		st.uncommitted = false
	}
	// Applied bytes are poll-adoptable (recovery can rebase on a pushed
	// version), so they persist as committed state.
	n.persistReplicasLocked(st, version, false, payloads, delta)
	if st.dlog != nil {
		// Keep the arriving blobs as this version's marshaled cache so
		// this site can serve deltas (and diff the next incoming step)
		// without re-marshaling.
		st.updatePayloadCacheLocked(version, payloads)
	}
	st.notifyVersionLocked()
	if n.histEnabled() {
		// Recorded under st.mu before the daemon acknowledges, so the
		// apply precedes any release claiming this site is up to date.
		n.recordHist(wire.HistoryEvent{
			Kind:    wire.HistApply,
			Site:    n.cfg.Site,
			Lock:    lock,
			Version: version,
			Digests: wire.DigestPayloads(payloads),
			Note:    how,
		})
	}
	if n.log.On() {
		n.log.Log("daemon", "applied update",
			obs.S("how", how), obs.I("lock", int64(lock)), obs.I("version", int64(version)),
			obs.I("from", int64(from)), obs.I("replicas", int64(len(payloads))))
	}
	return true
}

// applyDelta applies a ReplicaDelta: resolve the base blobs for the
// delta's FromVersion, patch and verify each replica, and install the
// result like a full update. A non-nil error means the receiver needs a
// full copy instead (the sender's fallback trigger); a stale delta is
// dropped without error, like a stale full update.
func (n *Node) applyDelta(rd *wire.ReplicaDelta) error {
	applyStart := time.Now()
	st := n.getLockLocal(rd.Lock)
	st.mu.Lock()
	defer st.mu.Unlock()
	if rd.Version < st.version || (rd.Version == st.version && !st.uncommitted) {
		if n.log.On() {
			n.log.Logf("daemon", "stale delta of lock %d v%d from site %d (have v%d)", rd.Lock, rd.Version, rd.From, st.version)
		}
		return nil
	}
	var base map[string][]byte
	switch {
	case st.cachedPayloads != nil && st.cachedVersion == rd.FromVersion:
		base = make(map[string][]byte, len(st.cachedPayloads))
		for _, p := range st.cachedPayloads {
			base[p.Name] = p.Data
		}
	case st.version == rd.FromVersion && !st.uncommitted:
		// No marshaled cache of the base, but the live content is at the
		// base version: marshal it on demand.
		base = make(map[string][]byte, len(st.replicas))
		for _, r := range st.replicas {
			blob, err := n.cfg.Codec.Marshal(r.content)
			if err != nil {
				return fmt.Errorf("marshal base %q: %w", r.name, err)
			}
			base[r.name] = blob
		}
	default:
		return fmt.Errorf("base v%d unavailable (have v%d)", rd.FromVersion, st.version)
	}

	blobs := make([]wire.ReplicaPayload, 0, len(rd.Replicas))
	for i := range rd.Replicas {
		dp := &rd.Replicas[i]
		if dp.Full {
			blobs = append(blobs, wire.ReplicaPayload{Name: dp.Name, Data: dp.Data})
			continue
		}
		old, ok := base[dp.Name]
		if !ok {
			return fmt.Errorf("no base blob for %q at v%d", dp.Name, rd.FromVersion)
		}
		ops := make([]marshal.PatchOp, len(dp.Ops))
		for j, op := range dp.Ops {
			ops[j] = marshal.PatchOp{Off: int(op.Off), Data: op.Data}
		}
		patched, err := marshal.ApplyPatch(old, int(dp.NewLen), ops)
		if err != nil {
			return fmt.Errorf("patch %q: %w", dp.Name, err)
		}
		if marshal.Checksum(patched) != dp.Checksum {
			return fmt.Errorf("checksum mismatch patching %q to v%d", dp.Name, rd.Version)
		}
		blobs = append(blobs, wire.ReplicaPayload{Name: dp.Name, Data: patched})
	}

	how := "delta transfer"
	if rd.Push {
		how = "delta push"
	}
	if !n.applyBlobsLocked(st, rd.Lock, rd.Version, blobs, how, rd.From, rd) {
		return fmt.Errorf("apply patched blobs of lock %d v%d failed", rd.Lock, rd.Version)
	}
	n.obs().Inc(obs.CApplies)
	n.obs().Observe(obs.HApply, time.Since(applyStart))
	return nil
}

// handleDeltaArrival applies a delta arriving over mnet and sends the
// protocol response back through the receiving port: a PushAck when an
// applied delta was a push, a DeltaNack when the delta could not be
// applied. Applied (or stale) transfer deltas need no reply — the waiting
// acquirer is woken through the version waiters, like a full transfer.
func (n *Node) handleDeltaArrival(rd *wire.ReplicaDelta, replyTo string, port *mnet.Port) {
	err := n.applyDelta(rd)
	var reply wire.Payload
	switch {
	case err == nil && rd.Push:
		reply = &wire.PushAck{Lock: rd.Lock, Site: n.cfg.Site, Version: rd.Version}
	case err == nil:
		return
	default:
		if n.log.On() {
			n.log.Logf("daemon", "delta of lock %d v%d from site %d rejected: %v", rd.Lock, rd.Version, rd.From, err)
		}
		reply = &wire.DeltaNack{
			Lock:      rd.Lock,
			Site:      n.cfg.Site,
			Version:   rd.Version,
			RequestID: rd.RequestID,
			Push:      rd.Push,
			Reason:    err.Error(),
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.RequestTimeout)
	defer cancel()
	if err := port.Send(ctx, replyTo, wire.Marshal(reply)); err != nil {
		if n.log.On() {
			n.log.Logf("daemon", "delta reply to %s failed: %v", replyTo, err)
		}
	}
}

// CachedLock is the reserved lock ID for unguarded cached replicas:
// shared objects deliberately not associated with any ReplicaLock, "cached
// at each host without any consistency maintenance being performed on
// them".
const CachedLock wire.LockID = 0

// RegisterCached installs a local unguarded replica that receives
// best-effort push updates by name.
func (n *Node) RegisterCached(r *Replica) error {
	if r == nil {
		return fmt.Errorf("core: nil cached replica")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return ErrClosed
	}
	n.cached[r.name] = r
	return nil
}

// CachedReplica looks up a registered cached replica.
func (n *Node) CachedReplica(name string) (*Replica, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	r, ok := n.cached[name]
	return r, ok
}

// applyCached applies a cached-namespace push: last writer wins, no
// version discipline — the non-synchronization-based sharing mode.
func (n *Node) applyCached(pu *wire.PushUpdate) {
	for _, p := range pu.Replicas {
		n.mu.Lock()
		r, ok := n.cached[p.Name]
		n.mu.Unlock()
		if !ok {
			if n.log.On() {
				n.log.Logf("daemon", "cached push for unregistered %q ignored", p.Name)
			}
			continue
		}
		r.cachedMu.Lock()
		err := n.cfg.Codec.Unmarshal(p.Data, r.content)
		r.cachedMu.Unlock()
		if err != nil {
			if n.log.On() {
				n.log.Logf("daemon", "cached unmarshal %q: %v", p.Name, err)
			}
		}
	}
}

// PublishCached pushes a cached replica's current content to the listed
// sites (all directory sites when targets is nil), best-effort: failures
// are logged and skipped, and no ordering is enforced.
func (n *Node) PublishCached(ctx context.Context, r *Replica, targets []wire.SiteID) error {
	r.cachedMu.Lock()
	blob, err := n.cfg.Codec.Marshal(r.content)
	r.cachedMu.Unlock()
	if err != nil {
		return fmt.Errorf("core: marshal cached %q: %w", r.name, err)
	}
	if targets == nil {
		for site := range n.cfg.Directory {
			if site != n.cfg.Site {
				targets = append(targets, site)
			}
		}
	}
	pu := &wire.PushUpdate{
		Lock:     CachedLock,
		From:     n.cfg.Site,
		Version:  1,
		Replicas: []wire.ReplicaPayload{{Name: r.name, Data: blob}},
	}
	msg := wire.Marshal(pu)
	for _, site := range targets {
		addr, err := n.daemonAddr(site)
		if err != nil {
			if n.log.On() {
				n.log.Logf("daemon", "cached publish: %v", err)
			}
			continue
		}
		sendCtx, cancel := context.WithTimeout(ctx, n.cfg.RequestTimeout)
		if err := n.xfer.port.Send(sendCtx, addr, msg); err != nil {
			if n.log.On() {
				n.log.Logf("daemon", "cached publish of %q to site %d failed: %v", r.name, site, err)
			}
		}
		cancel()
	}
	return nil
}

// Marshal content helper used by the runtime layer.
func (n *Node) marshalContent(c *marshal.Content) ([]byte, error) {
	return n.cfg.Codec.Marshal(c)
}
