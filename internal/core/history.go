package core

import (
	"sort"

	"mocha/internal/obs"
	"mocha/internal/wire"
)

// HistorySink receives protocol history events. The concrete sink lives in
// internal/check (a lock-free recorder); core only knows this interface so
// the checker can depend on core's wire events without an import cycle.
//
// Record is called inside the protocol's per-lock critical sections — the
// synchronization thread's record mutex and each site's lock-local mutex —
// so implementations must be non-blocking and safe for concurrent use.
// Events recorded under one mutex are sequenced exactly as the state
// machine applied them.
type HistorySink interface {
	Record(ev wire.HistoryEvent)
}

// recordHist forwards one event to the configured sink, if any. Callers
// must invoke it while still holding the mutex that serialized the state
// transition the event describes.
// A nil receiver is a no-op: unit tests drive protocol components with no
// enclosing node.
func (n *Node) recordHist(ev wire.HistoryEvent) {
	if n != nil && n.cfg.History != nil {
		n.cfg.History.Record(ev)
	}
}

// histEnabled reports whether history recording is on, so call sites can
// skip digest computation entirely when it is not.
func (n *Node) histEnabled() bool { return n != nil && n.cfg.History != nil }

// obs returns the node's metrics registry. A nil receiver (unit tests
// drive protocol components with no enclosing node) and a nil registry
// both yield nil, which every obs.Registry method treats as the disabled
// observability plane.
func (n *Node) obs() *obs.Registry {
	if n == nil {
		return nil
	}
	return n.metrics
}

// digestReplicasLocked checksums the marshaled form of every replica
// associated with the lock. It marshals independently of the payload cache
// (marshalPayloadsLocked has delta-log side effects that must not fire on
// behalf of observation). Caller holds st.mu. Returns nil on any marshal
// error: a missing digest weakens the oracle for one event rather than
// failing the protocol operation.
func (n *Node) digestReplicasLocked(st *lockLocal) []wire.ReplicaDigest {
	out := make([]wire.ReplicaDigest, 0, len(st.replicas))
	for _, r := range st.replicas {
		blob, err := n.cfg.Codec.Marshal(r.content)
		if err != nil {
			return nil
		}
		out = append(out, wire.ReplicaDigest{Name: r.name, Sum: wire.DigestBytes(blob)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
