package core

import (
	"testing"
	"time"

	"mocha/internal/wire"
)

// TestDuplicateAcquireSuppression replays the client-retry races the
// explorer surfaced under a home failover: a re-sent ACQUIRE from the
// current holder must re-issue the existing hold as a revised grant (not
// queue the holder behind itself), and a re-sent ACQUIRE from a thread
// already queued must not enqueue a second entry. The cluster's history
// checker verifies the recorded trace at cleanup — a double queue or a
// non-revised duplicate grant would trip ErrHolderQueued/ErrOrphanGrant.
func TestDuplicateAcquireSuppression(t *testing.T) {
	const sites = 3
	const lockID = wire.LockID(40)
	tc := newTestCluster(t, sites, placementOpts())
	ctx := tctx(t)

	home, _ := tc.node(1).homeOf(lockID)
	holderSite := otherSite(t, sites, home)

	hc := tc.node(home).NewHandle("creator")
	rlC, _ := mustCreate(t, hc, lockID, "dup", []int32{1}, sites)
	_ = rlC
	hh := tc.node(holderSite).NewHandle("holder")
	rlH, _ := mustAttach(t, hh, lockID, "dup")
	settle()

	if err := rlH.Lock(ctx); err != nil {
		t.Fatal(err)
	}

	sHome := tc.node(home).Sync()
	l := sHome.lookupLock(lockID)
	if l == nil {
		t.Fatal("no record at home")
	}

	// The holder's retry: must be answered with a revised grant re-issuing
	// the hold, leaving the holder in place and the queue empty.
	sHome.onAcquire(&wire.AcquireLock{Lock: lockID, Requester: holderSite, Thread: hh.ID()})
	settle()
	l.mu.Lock()
	holder := l.holder
	queueLen := len(l.queue)
	l.mu.Unlock()
	if holder == nil || holder.thread != hh.ID() {
		t.Fatalf("holder after duplicate acquire = %+v, want thread %d", holder, hh.ID())
	}
	if queueLen != 0 {
		t.Fatalf("queue depth after holder's duplicate acquire = %d, want 0", queueLen)
	}

	// A waiter's retry: the second copy must ride the first one's queue
	// entry, never duplicate it.
	waiter := wire.ThreadID(uint64(holderSite)<<32 | 99)
	req := &wire.AcquireLock{Lock: lockID, Requester: holderSite, Thread: waiter}
	sHome.onAcquire(req)
	sHome.onAcquire(req)
	l.mu.Lock()
	entries := 0
	for _, q := range l.queue {
		if q.thread == waiter {
			entries++
		}
	}
	l.mu.Unlock()
	if entries != 1 {
		t.Fatalf("queue entries for retried waiter = %d, want 1", entries)
	}

	if err := rlH.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestReleaseRetryAfterPromotionIsStale pins the double-commit bug the
// stream-first ordering closes: a release processed by a dying home may
// never be acked to the client, which then retries it at the promoted
// standby. Because the release streamed to the successor before it was
// recorded, the promoted record already shows the hold cleared — the
// retry must read as stale and leave the version untouched. A second
// commit would be caught at cleanup by the checker (ErrVersionRegress:
// the release would re-commit an already-committed version).
func TestReleaseRetryAfterPromotionIsStale(t *testing.T) {
	const sites = 3
	const lockID = wire.LockID(41)
	tc := newTestCluster(t, sites, placementOpts())
	ctx := tctx(t)

	home, _ := tc.node(1).homeOf(lockID)
	succ := tc.node(1).Ring().Successor(home)
	holderSite := otherSite(t, sites, home)

	hc := tc.node(home).NewHandle("creator")
	rlC, _ := mustCreate(t, hc, lockID, "retry", []int32{1}, sites)
	_ = rlC
	hh := tc.node(holderSite).NewHandle("holder")
	rlH, repH := mustAttach(t, hh, lockID, "retry")
	settle()

	if err := rlH.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	repH.Content().IntsData()[0] = 2
	if err := rlH.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	settle()

	tc.kill(home)
	tc.node(succ).PromoteStandby(home)
	settle()

	sNew := tc.node(succ).Sync()
	l := sNew.lookupLock(lockID)
	if l == nil {
		t.Fatal("promotion installed no record at the standby")
	}
	l.mu.Lock()
	version := l.version
	l.mu.Unlock()

	// The client's retry of the already-committed release, landing at the
	// promoted home.
	sNew.onRelease(&wire.ReleaseLock{
		Lock:       lockID,
		Releaser:   holderSite,
		Thread:     hh.ID(),
		NewVersion: version,
		UpToDate:   wire.NewSiteSet(holderSite),
	})
	time.Sleep(50 * time.Millisecond)

	l.mu.Lock()
	after := l.version
	holder := l.holder
	l.mu.Unlock()
	if after != version {
		t.Fatalf("retried release moved the version: v%d -> v%d", version, after)
	}
	if holder != nil {
		t.Fatalf("retried release resurrected a holder: %+v", holder)
	}

	// The lock stays usable at the promoted home.
	third := otherSite(t, sites, home, holderSite)
	h2 := tc.node(third).NewHandle("after")
	rl2, rep2 := mustAttach(t, h2, lockID, "retry")
	settle()
	if err := rl2.Lock(ctx); err != nil {
		t.Fatalf("acquire after retried release: %v", err)
	}
	if data := rep2.Content().IntsData(); len(data) == 0 || data[0] != 2 {
		t.Fatalf("post-retry read = %v, want [2]", data)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
}
