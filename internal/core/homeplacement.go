package core

import (
	"time"

	"sync"

	"mocha/internal/obs"
	"mocha/internal/placement"
	"mocha/internal/wire"
)

// This file implements the mobile lock namespace. With home placement on,
// the lock namespace is partitioned across manager sites by a consistent-
// hash ring (internal/placement) instead of pinned to the paper's single
// home site, and a lock's home can move at runtime:
//
//   - Migration: the sweep watches per-site acquire tallies and, when a
//     remote site dominates an idle lock's traffic, freezes the record,
//     ships it to that site in a HandoffRecord, and leaves a redirecting
//     tombstone behind. Clients chasing the old home get NackNotHome with
//     the new address and re-route.
//   - Standby failover: every home streams record deltas to its ring
//     successor. The successor probes its predecessor and, after enough
//     missed heartbeats, promotes its shadows — leases, version floors,
//     and dirty sets survive the home's death, so no lock is stranded.
//
// Everything here is reached only through a non-nil *homeState; a nil one
// (placement off) preserves the fixed-home baseline byte for byte.

const (
	// migrateMinAcquires is the tally a lock must accumulate before the
	// sweep considers moving its home; tallies halve each time they are
	// considered, so a stale burst decays instead of triggering forever.
	migrateMinAcquires = 8
	// handoffAttempts bounds HandoffRecord (re)sends per migration.
	handoffAttempts = 3
	// standbyMissThreshold is how many consecutive failed predecessor
	// probes the standby monitor tolerates before promoting.
	standbyMissThreshold = 3
)

// homeRoute is a forwarding address for a migrated lock: where it went
// and at what per-lock epoch. to and epoch are immutable; rec (re-ship
// insurance, see below) has its own lock.
type homeRoute struct {
	to    wire.SiteID
	epoch uint32

	// recMu guards rec: a marshaled HandoffRecord retained when a
	// migration committed without an application-level ack (the MNet ack
	// proved delivery of the packet, not the install). Each redirect
	// re-ships it until a late HandoffAck clears it, so a target that
	// dropped the install under queue pressure still converges.
	recMu sync.Mutex
	rec   []byte
}

func (r *homeRoute) setRec(data []byte) {
	r.recMu.Lock()
	r.rec = data
	r.recMu.Unlock()
}

func (r *homeRoute) getRec() []byte {
	r.recMu.Lock()
	defer r.recMu.Unlock()
	return r.rec
}

// shadowRecord is a standby's copy of one of its predecessor's records.
type shadowRecord struct {
	from  wire.SiteID
	epoch uint32
	seq   uint64
	rec   wire.LockRecord
}

// homeState is the per-manager mobile-namespace bookkeeping. Its mutex is
// a leaf: never held while taking a shard or record mutex, and vice versa
// code paths release one before taking the other.
type homeState struct {
	s    *syncThread
	ring *placement.Ring
	self wire.SiteID
	succ wire.SiteID // ring successor: this manager's standby (0 if alone)

	mu sync.Mutex
	// adopted marks locks this manager serves even though the ring hashes
	// them elsewhere (installed by handoff or promotion). Adoption
	// survives record GC so a re-register recreates the record here
	// instead of ping-ponging between managers.
	adopted map[wire.LockID]bool
	// moved keeps forwarding routes for migrated-away locks after their
	// tombstone records are collected.
	moved   map[wire.LockID]*homeRoute
	shadows map[wire.LockID]*shadowRecord
	// waiters delivers HandoffAcks to in-flight migrations, keyed by lock
	// (a frozen lock has at most one migration).
	waiters  map[wire.LockID]chan *wire.HandoffAck
	promoted map[wire.SiteID]bool
}

func newHomeState(s *syncThread) *homeState {
	hs := &homeState{
		s:        s,
		ring:     s.node.ring,
		self:     s.node.cfg.Site,
		adopted:  make(map[wire.LockID]bool),
		moved:    make(map[wire.LockID]*homeRoute),
		shadows:  make(map[wire.LockID]*shadowRecord),
		waiters:  make(map[wire.LockID]chan *wire.HandoffAck),
		promoted: make(map[wire.SiteID]bool),
	}
	if succ := hs.ring.Successor(hs.self); succ != hs.self {
		hs.succ = succ
	}
	return hs
}

// start launches the standby monitor once the ports are wired up.
func (hs *homeState) start() {
	pred := hs.ring.Predecessor(hs.self)
	if pred == 0 || pred == hs.self {
		return
	}
	hs.s.sweepWG.Add(1)
	go hs.monitor(pred)
}

func (hs *homeState) routeFor(lock wire.LockID) *homeRoute {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	return hs.moved[lock]
}

func (hs *homeState) isAdopted(lock wire.LockID) bool {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	return hs.adopted[lock]
}

func (hs *homeState) adopt(lock wire.LockID) {
	hs.mu.Lock()
	hs.adopted[lock] = true
	delete(hs.moved, lock)
	hs.mu.Unlock()
}

// ---- request routing -------------------------------------------------

// redirectIfNotHome answers an acquire with NackNotHome when this manager
// should not serve the lock, reporting whether the request was consumed.
// When the manager will serve it, a stale restored hold by the same
// requester is broken first so the checker never sees a holder queue
// behind its own ghost.
func (hs *homeState) redirectIfNotHome(msg *wire.AcquireLock) bool {
	s := hs.s
	l := s.lookupLock(msg.Lock)
	if l == nil {
		if route := hs.routeFor(msg.Lock); route != nil {
			hs.redirectTo(msg, route)
			return true
		}
		if rh := hs.ring.Home(msg.Lock); rh != hs.self && !hs.isAdopted(msg.Lock) {
			hs.redirectTo(msg, &homeRoute{to: rh})
			return true
		}
		return false // ours: onAcquire refuses it as unknown
	}
	l.mu.Lock()
	if route := l.moved; route != nil {
		l.mu.Unlock()
		hs.redirectTo(msg, route)
		return true
	}
	hs.breakStaleRestoredLocked(l, msg.Thread)
	l.mu.Unlock()
	return false
}

// redirectTo sends the NackNotHome and, when the route still carries
// re-ship insurance, re-sends the handoff record to the new home.
func (hs *homeState) redirectTo(msg *wire.AcquireLock, route *homeRoute) {
	s := hs.s
	s.node.obs().Inc(obs.CHomeRedirects)
	nack := &wire.LockNack{
		Lock: msg.Lock, Thread: msg.Thread, Code: wire.NackNotHome,
		Reason: "lock is homed elsewhere", Home: route.to, HomeEpoch: route.epoch,
	}
	site := msg.Requester
	s.spawn(func() { s.sendToClient(site, nack) })
	if data := route.getRec(); data != nil {
		to := route.to
		s.spawn(func() { hs.sendToManager(to, data) })
	}
}

// breakStaleRestoredLocked drops a restored hold owned by the requesting
// thread; the caller holds l.mu. A restored hold is a best guess shipped
// by the old home — if its owner shows up asking again, the release was
// lost with the old home and the ghost must not block the queue.
func (hs *homeState) breakStaleRestoredLocked(l *syncLock, thread wire.ThreadID) {
	drop := func(h *holderInfo) {
		hs.s.node.recordHist(wire.HistoryEvent{
			Kind: wire.HistBreak, Site: h.site, Thread: h.thread, Lock: l.id,
			Note: "stale-restored-hold",
		})
	}
	if h := l.holder; h != nil && h.restored && h.thread == thread {
		l.holder = nil
		drop(h)
	}
	if h := l.readers[thread]; h != nil && h.restored {
		delete(l.readers, thread)
		drop(h)
	}
}

// forwardReleaseIfMoved re-routes a release for a lock this manager no
// longer (or never) homed, reporting whether the message was consumed.
// Only authoritative knowledge forwards — a moved tombstone or route. A
// release for a lock that plainly is not ours is dropped rather than
// bounced off the ring: releases are best-effort (lease expiry is the
// backstop) and a server-side forwarding loop would never terminate.
func (hs *homeState) forwardReleaseIfMoved(l *syncLock, msg *wire.ReleaseLock) bool {
	var route *homeRoute
	if l != nil {
		l.mu.Lock()
		route = l.moved
		l.mu.Unlock()
		if route == nil {
			return false // live record: serve here
		}
	} else {
		route = hs.routeFor(msg.Lock)
		if route == nil {
			if rh := hs.ring.Home(msg.Lock); rh == hs.self || hs.isAdopted(msg.Lock) {
				return false // ours: onRelease ignores the unknown lock
			}
			return true // not ours, no route: drop
		}
	}
	if route.to == hs.self {
		return false
	}
	rec := route.getRec()
	data := wire.Marshal(msg)
	to := route.to
	hs.s.spawn(func() {
		// Ship the insurance record first so the release finds an
		// installed record at the new home.
		if rec != nil {
			hs.sendToManager(to, rec)
		}
		hs.sendToManager(to, data)
	})
	return true
}

// forwardRegisterIfNotHome re-routes a register toward the lock's home,
// reporting whether the message was consumed. The origin daemon also gets
// a HomeHint when the route is a learned (post-migration) one, so its
// clients skip the detour next time.
func (hs *homeState) forwardRegisterIfNotHome(msg *wire.RegisterReplica) bool {
	s := hs.s
	if l := s.lookupLock(msg.Lock); l != nil {
		l.mu.Lock()
		route := l.moved
		l.mu.Unlock()
		if route == nil {
			return false
		}
		hs.forwardRegister(msg, route.to, route.epoch)
		return true
	}
	if route := hs.routeFor(msg.Lock); route != nil {
		hs.forwardRegister(msg, route.to, route.epoch)
		return true
	}
	if hs.isAdopted(msg.Lock) {
		return false
	}
	if rh := hs.ring.Home(msg.Lock); rh != hs.self {
		hs.forwardRegister(msg, rh, 0)
		return true
	}
	return false
}

func (hs *homeState) forwardRegister(msg *wire.RegisterReplica, to wire.SiteID, epoch uint32) {
	if to == 0 || to == hs.self {
		return
	}
	n := hs.s.node
	data := wire.Marshal(msg)
	origin := msg.Site
	hs.s.spawn(func() {
		hs.sendToManager(to, data)
		if epoch == 0 {
			return // ring default; nothing worth hinting
		}
		hint := wire.Marshal(&wire.HomeHint{Lock: msg.Lock, Home: to, Epoch: epoch})
		if addr, err := n.daemonAddr(origin); err == nil {
			ctx, cancel := timeoutCtx(n.cfg.RequestTimeout)
			defer cancel()
			_ = hs.s.aux.Send(ctx, addr, hint)
		}
	})
}

// sendToManager delivers one frame to another manager's sync port.
func (hs *homeState) sendToManager(to wire.SiteID, data []byte) bool {
	n := hs.s.node
	addr, err := n.syncAddrOf(to)
	if err != nil {
		return false
	}
	ctx, cancel := timeoutCtx(n.cfg.RequestTimeout)
	defer cancel()
	return hs.s.aux.Send(ctx, addr, data) == nil
}

// ---- bookkeeping hooks from the synchronization thread ---------------

// noteCreated stamps a freshly created record as homed here.
func (hs *homeState) noteCreated(l *syncLock) {
	l.mu.Lock()
	if l.homeEpoch == 0 {
		l.homeEpoch = 1
	}
	epoch := l.homeEpoch
	l.mu.Unlock()
	n := hs.s.node
	n.recordHist(wire.HistoryEvent{
		Kind: wire.HistHome, Site: hs.self, Lock: l.id, AuxVersion: uint64(epoch), Note: "register",
	})
	n.obs().HomeLockAdd(uint32(hs.self), 1)
}

// noteAcquireLocked tallies one acquire for locality tracking; the caller
// holds l.mu.
func (hs *homeState) noteAcquireLocked(l *syncLock, msg *wire.AcquireLock) {
	if l.acq == nil {
		l.acq = make(map[wire.SiteID]uint64)
	}
	l.acq[msg.Requester]++
	l.acqTotal++
}

// noteCollected settles the books when the sweep collects a record. A
// moved tombstone already paid its gauge and standby delete at commit
// time; adoption is deliberately kept (see homeState.adopted).
func (hs *homeState) noteCollected(id wire.LockID, wasMoved bool) {
	if wasMoved {
		return
	}
	hs.s.node.obs().HomeLockAdd(uint32(hs.self), -1)
	hs.streamDelete(id)
}

// ---- migration -------------------------------------------------------

// migrationTargetLocked decides whether a lock's home should move, and
// where; the caller holds l.mu. Only an idle record moves (no holds, no
// queue), and only toward a ring member whose tally dominates — weighted
// by observed RTT, so far-away heavy users pull harder than near ones.
func (hs *homeState) migrationTargetLocked(l *syncLock) (wire.SiteID, bool) {
	if l.frozen || l.moved != nil || l.holder != nil || len(l.readers) > 0 || len(l.queue) > 0 {
		return 0, false
	}
	if l.acqTotal < migrateMinAcquires {
		return 0, false
	}
	total := l.acqTotal
	defer func() {
		for site := range l.acq {
			l.acq[site] /= 2
		}
		l.acqTotal /= 2
	}()
	tracker := hs.s.node.OverlayTracker()
	var best wire.SiteID
	var bestScore, bestCount uint64
	for site, count := range l.acq {
		if site == hs.self || !hs.ring.Contains(site) {
			continue
		}
		weight := uint64(1)
		if tracker != nil {
			if rtt, ok := tracker.RTT(site); ok {
				if ms := uint64(rtt / time.Millisecond); ms > 1 {
					weight = ms
				}
			}
		}
		if score := count * weight; score > bestScore {
			best, bestScore, bestCount = site, score, count
		}
	}
	if best == 0 || bestCount*2 < total {
		return 0, false
	}
	return best, true
}

// migrate runs the two-phase handoff for one frozen lock. Phase one
// (freeze) happened in the sweep; phase two ships the record snapshot and
// waits for the application-level ack. Outcomes:
//
//   - ack OK: commit — tombstone installed, queue drained with redirects.
//   - explicit refusal: abort — the target deliberately did not install.
//   - no send ever left: abort — nobody can have the record.
//   - sent but never acked: commit with re-ship insurance. The MNet ack
//     means the target received the frame; if its handler dropped it, the
//     insurance re-ships on every redirect until a late ack lands. An
//     uninstalled target is harmless in the meantime — no client routes
//     to it except through our tombstone, which carries the insurance.
func (hs *homeState) migrate(l *syncLock, to wire.SiteID) {
	s := hs.s
	n := s.node
	if d := n.fireFault(FaultContext{Point: FPDelayHandoff, Peer: to, Lock: l.id}); d.Drop {
		hs.unfreeze(l)
		return
	}
	l.mu.Lock()
	if l.moved != nil || !l.frozen {
		l.mu.Unlock()
		return
	}
	epoch := l.homeEpoch
	rec := snapshotRecordLocked(l, time.Now())
	l.mu.Unlock()
	data := wire.Marshal(&wire.HandoffRecord{From: hs.self, Epoch: epoch, Record: rec})

	ch := make(chan *wire.HandoffAck, handoffAttempts+1)
	hs.mu.Lock()
	hs.waiters[l.id] = ch
	hs.mu.Unlock()
	defer func() {
		hs.mu.Lock()
		delete(hs.waiters, l.id)
		hs.mu.Unlock()
	}()

	n.recordHist(wire.HistoryEvent{
		Kind: wire.HistHandoff, Site: hs.self, Lock: l.id,
		Sites: wire.NewSiteSet(to), AuxVersion: uint64(epoch),
	})
	n.obs().Inc(obs.CHandoffsOut)
	if n.log.On() {
		n.log.Logf("sync", "migrating lock %d home to site %d (epoch %d)", l.id, to, epoch)
	}

	sent := false
	for attempt := 0; attempt < handoffAttempts; attempt++ {
		if hs.sendToManager(to, data) {
			sent = true
		}
		select {
		case ack := <-ch:
			if ack.OK && ack.To == to {
				hs.commitMove(l, to, epoch+1, nil)
			} else {
				hs.unfreeze(l)
			}
			return
		case <-time.After(n.cfg.RequestTimeout):
		case <-s.stopCh:
			hs.unfreeze(l)
			return
		}
	}
	if sent {
		hs.commitMove(l, to, epoch+1, data)
	} else {
		hs.unfreeze(l)
	}
}

// unfreeze aborts a migration: the record resumes granting here.
func (hs *homeState) unfreeze(l *syncLock) {
	s := hs.s
	l.mu.Lock()
	s.recordDeferredLocked(l)
	l.frozen = false
	actions := s.tryGrantLocked(l)
	l.mu.Unlock()
	s.run(actions)
}

// commitMove installs the tombstone for a migrated-away lock and drains
// its queue with redirects. insurance is the marshaled HandoffRecord to
// keep re-shipping (nil when the target acked the install).
func (hs *homeState) commitMove(l *syncLock, to wire.SiteID, newEpoch uint32, insurance []byte) {
	s := hs.s
	n := s.node
	route := &homeRoute{to: to, epoch: newEpoch}
	if insurance != nil {
		route.setRec(insurance)
	}
	l.mu.Lock()
	l.moved = route
	l.frozen = false
	drained := l.queue
	l.queue = nil
	l.mu.Unlock()
	for range drained {
		n.obs().GaugeAdd(obs.GSyncQueueDepth, -1)
		n.obs().ShardDepthAdd(int(uint32(l.id)%uint32(len(s.shards))), -1)
	}
	hs.mu.Lock()
	hs.moved[l.id] = route
	delete(hs.adopted, l.id)
	hs.mu.Unlock()
	n.obs().Inc(obs.CHomeMigrations)
	n.obs().HomeLockAdd(uint32(hs.self), -1)
	hs.streamDelete(l.id)
	for _, req := range drained {
		msg := &wire.AcquireLock{Lock: l.id, Requester: req.site, Thread: req.thread, Shared: req.shared}
		s.recordRequest(l.id, req)
		s.recordNack(msg, "lock moved to new home")
		hs.redirectTo(msg, route)
	}
	if n.log.On() {
		n.log.Logf("sync", "lock %d home moved to site %d (epoch %d)", l.id, to, newEpoch)
	}
}

// onHandoff installs a shipped lock record, making this manager the
// lock's home, and acks the old home. Installs are idempotent: a re-ship
// of an already-installed record just re-acks.
func (s *syncThread) onHandoff(msg *wire.HandoffRecord) {
	hs := s.home
	lock := msg.Record.Lock
	ok := hs != nil && hs.install(msg)
	ack := wire.Marshal(&wire.HandoffAck{Lock: lock, To: s.node.cfg.Site, Epoch: msg.Epoch, OK: ok})
	from := msg.From
	s.spawn(func() {
		if hs != nil {
			hs.sendToManager(from, ack)
			return
		}
		if addr, err := s.node.syncAddrOf(from); err == nil {
			ctx, cancel := timeoutCtx(s.node.cfg.RequestTimeout)
			defer cancel()
			_ = s.aux.Send(ctx, addr, ack)
		}
	})
}

func (hs *homeState) install(msg *wire.HandoffRecord) bool {
	s := hs.s
	n := s.node
	newEpoch := msg.Epoch + 1
	l, created := s.ensureLockCreated(msg.Record.Lock)
	l.mu.Lock()
	if !created && l.moved == nil && l.homeEpoch >= newEpoch {
		// A duplicate of a record already installed (or one we since
		// re-homed at a higher epoch): just re-ack.
		l.mu.Unlock()
		return true
	}
	becameHome := created || l.moved != nil
	l.moved = nil
	l.frozen = false
	s.installRecordLocked(l, &msg.Record, newEpoch)
	n.recordHist(wire.HistoryEvent{
		Kind: wire.HistHome, Site: hs.self, Lock: l.id, AuxVersion: uint64(newEpoch), Note: "handoff-install",
	})
	standby := hs.standbyActionLocked(l)
	l.mu.Unlock()
	hs.adopt(l.id)
	n.obs().Inc(obs.CHandoffsIn)
	if becameHome {
		n.obs().HomeLockAdd(uint32(hs.self), 1)
	}
	s.spawn(standby)
	if n.log.On() {
		n.log.Logf("sync", "installed lock %d from site %d (epoch %d)", l.id, msg.From, newEpoch)
	}
	return true
}

// onHandoffAck routes an ack to the waiting migration, or — when the
// migration already committed on timeout — retires its re-ship insurance.
func (hs *homeState) onHandoffAck(msg *wire.HandoffAck) {
	hs.mu.Lock()
	ch := hs.waiters[msg.Lock]
	route := hs.moved[msg.Lock]
	hs.mu.Unlock()
	if ch != nil {
		select {
		case ch <- msg:
		default:
		}
		return
	}
	if msg.OK && route != nil && route.to == msg.To {
		route.setRec(nil)
	}
}

// ---- standby replication and failover --------------------------------

// standbyActionLocked snapshots the record for the ring successor; the
// caller holds l.mu. The returned action performs the send (never nil,
// possibly a no-op).
func (hs *homeState) standbyActionLocked(l *syncLock) func() {
	if hs.succ == 0 || l.moved != nil {
		return func() {}
	}
	l.standbySeq++
	upd := &wire.StandbyUpdate{From: hs.self, Epoch: l.homeEpoch, Seq: l.standbySeq, Record: snapshotRecordLocked(l, time.Now())}
	data := wire.Marshal(upd)
	return func() {
		if hs.sendToManager(hs.succ, data) {
			hs.s.node.obs().Inc(obs.CStandbyUpdates)
		}
	}
}

// streamHoldSync streams the record to the standby synchronously. Called
// by deliverGrant before the grant leaves, closing the window where a
// client could hold a lock no standby knows about.
func (hs *homeState) streamHoldSync(l *syncLock) {
	l.mu.Lock()
	action := hs.standbyActionLocked(l)
	l.mu.Unlock()
	action()
}

// streamDelete retires the successor's shadow of a collected record.
func (hs *homeState) streamDelete(lock wire.LockID) {
	if hs.succ == 0 {
		return
	}
	data := wire.Marshal(&wire.StandbyUpdate{From: hs.self, Delete: true, Record: wire.LockRecord{Lock: lock}})
	hs.s.spawn(func() {
		if hs.sendToManager(hs.succ, data) {
			hs.s.node.obs().Inc(obs.CStandbyUpdates)
		}
	})
}

// onStandbyUpdate applies one predecessor record delta to the shadow
// table.
func (hs *homeState) onStandbyUpdate(msg *wire.StandbyUpdate) {
	if msg.From == hs.self {
		return
	}
	lock := msg.Record.Lock
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if msg.Delete {
		// Deletes carry no snapshot sequence: the home GC'd the record, so
		// any shadow it streamed is obsolete regardless of ordering.
		if old := hs.shadows[lock]; old != nil && old.from == msg.From {
			delete(hs.shadows, lock)
		}
		return
	}
	if old := hs.shadows[lock]; old != nil && old.from == msg.From &&
		(old.epoch > msg.Epoch || (old.epoch == msg.Epoch && old.seq >= msg.Seq)) {
		return
	}
	hs.shadows[lock] = &shadowRecord{from: msg.From, epoch: msg.Epoch, seq: msg.Seq, rec: msg.Record}
}

// monitor probes the ring predecessor and promotes its shadows once it is
// declared dead. One-shot: after a promotion the monitor retires (the
// static ring has no rejoin protocol).
func (hs *homeState) monitor(pred wire.SiteID) {
	s := hs.s
	defer s.sweepWG.Done()
	t := time.NewTicker(s.node.cfg.LeaseSweep)
	defer t.Stop()
	misses := 0
	for {
		select {
		case <-t.C:
		case <-s.stopCh:
			return
		}
		addr, err := s.node.daemonAddr(pred)
		if err != nil {
			continue
		}
		if s.probe(addr) {
			misses = 0
			continue
		}
		misses++
		if misses >= standbyMissThreshold {
			hs.promoteFrom(pred)
			return
		}
	}
}

// promoteFrom installs every shadow streamed by a dead predecessor,
// making this manager home for its locks, and broadcasts the new routes.
// Restored holds are re-anchored on this site's clock with their shipped
// remaining leases; version floors and dirty sets carry over unchanged.
func (hs *homeState) promoteFrom(pred wire.SiteID) {
	s := hs.s
	n := s.node
	hs.mu.Lock()
	if hs.promoted[pred] {
		hs.mu.Unlock()
		return
	}
	hs.promoted[pred] = true
	var shadows []*shadowRecord
	for lock, sh := range hs.shadows {
		if sh.from == pred {
			shadows = append(shadows, sh)
			delete(hs.shadows, lock)
		}
	}
	hs.mu.Unlock()
	n.obs().Inc(obs.CStandbyPromotions)
	if n.log.On() {
		n.log.Logf("fault", "promoting %d standby records from dead site %d", len(shadows), pred)
	}

	var locks []wire.LockID
	var maxEpoch uint32
	var standbys []func()
	for _, sh := range shadows {
		newEpoch := sh.epoch + 1
		l, created := s.ensureLockCreated(sh.rec.Lock)
		l.mu.Lock()
		if !created && l.moved == nil && l.homeEpoch >= newEpoch {
			l.mu.Unlock()
			continue
		}
		l.moved = nil
		l.frozen = false
		s.installRecordLocked(l, &sh.rec, newEpoch)
		var holderThread wire.ThreadID
		if sh.rec.HasHolder {
			holderThread = sh.rec.Holder.Thread
		}
		n.recordHist(wire.HistoryEvent{
			Kind: wire.HistRecover, Site: hs.self, Lock: l.id, Version: sh.rec.Version,
			Thread: holderThread, Sites: sh.rec.UpToDate.Clone(), Note: "standby-promote",
		})
		n.recordHist(wire.HistoryEvent{
			Kind: wire.HistHome, Site: hs.self, Lock: l.id, AuxVersion: uint64(newEpoch), Note: "standby-promote",
		})
		standbys = append(standbys, hs.standbyActionLocked(l))
		l.mu.Unlock()
		hs.adopt(l.id)
		n.obs().HomeLockAdd(uint32(hs.self), 1)
		locks = append(locks, l.id)
		if newEpoch > maxEpoch {
			maxEpoch = newEpoch
		}
	}
	if len(locks) == 0 {
		return
	}
	for _, lk := range locks {
		n.learnHome(lk, hs.self, maxEpoch)
	}
	moved := wire.Marshal(&wire.HomeMoved{From: pred, To: hs.self, Epoch: maxEpoch, Locks: locks})
	for site := range n.cfg.Directory {
		if site == hs.self {
			continue
		}
		site := site
		s.spawn(func() {
			if addr, err := n.daemonAddr(site); err == nil {
				ctx, cancel := timeoutCtx(n.cfg.RequestTimeout)
				defer cancel()
				_ = s.aux.Send(ctx, addr, moved)
			}
		})
	}
	for _, f := range standbys {
		s.spawn(f)
	}
}

// ---- record serialization --------------------------------------------

// snapshotRecordLocked serializes a record for handoff or standby
// streaming; the caller holds l.mu. Queued requests are not carried —
// waiters re-issue after a redirect or timeout.
func snapshotRecordLocked(l *syncLock, now time.Time) wire.LockRecord {
	rec := wire.LockRecord{
		Lock:      l.id,
		Version:   l.version,
		HighWater: l.highWater,
		LastOwner: l.lastOwner,
		Fence:     l.fence,
		UpToDate:  l.upToDate.Clone(),
		Dirty:     l.dirty.Clone(),
		Sharers:   l.sharers.Clone(),
	}
	for name := range l.names {
		rec.Names = append(rec.Names, name)
	}
	if h := l.holder; h != nil {
		rec.HasHolder = true
		rec.Holder = heldLease(h, now)
	}
	for _, h := range l.readers {
		rec.Readers = append(rec.Readers, heldLease(h, now))
	}
	return rec
}

func heldLease(h *holderInfo, now time.Time) wire.HeldLease {
	remaining := h.lease - now.Sub(h.grantedAt)
	if remaining < 0 {
		remaining = 0
	}
	return wire.HeldLease{
		Thread: h.thread, Site: h.site, Shared: h.shared,
		RemainingMillis: uint32(remaining / time.Millisecond),
	}
}

// installRecordLocked overwrites a record from a shipped snapshot; the
// caller holds l.mu. Holds are re-anchored on the local clock with their
// remaining leases and marked restored.
func (s *syncThread) installRecordLocked(l *syncLock, rec *wire.LockRecord, homeEpoch uint32) {
	l.version = rec.Version
	l.highWater = rec.HighWater
	if l.highWater < l.version {
		l.highWater = l.version
	}
	l.lastOwner = rec.LastOwner
	if rec.Fence > l.fence {
		l.fence = rec.Fence
	}
	l.upToDate = rec.UpToDate.Clone()
	l.dirty = rec.Dirty.Clone()
	l.sharers = rec.Sharers.Clone()
	if l.names == nil {
		l.names = make(map[string]bool)
	}
	for _, name := range rec.Names {
		l.names[name] = true
	}
	l.homeEpoch = homeEpoch
	l.holder = nil
	if l.readers == nil {
		l.readers = make(map[wire.ThreadID]*holderInfo)
	} else {
		for k := range l.readers {
			delete(l.readers, k)
		}
	}
	now := time.Now()
	restored := func(h *wire.HeldLease) *holderInfo {
		return &holderInfo{
			site: h.Site, thread: h.Thread, shared: h.Shared,
			grantedAt: now,
			lease:     time.Duration(h.RemainingMillis) * time.Millisecond,
			restored:  true,
		}
	}
	if rec.HasHolder {
		l.holder = restored(&rec.Holder)
		// The original token travelled with the grant the holder already
		// has; mint a fresh one under the new epoch so any revised grant
		// issued from here carries a strictly larger fence.
		l.holder.fence = s.mintFenceLocked(l)
	}
	for i := range rec.Readers {
		h := restored(&rec.Readers[i])
		h.fence = s.mintFenceLocked(l)
		l.readers[h.thread] = h
	}
}

// PromoteStandby forces this site's manager to promote the shadows it
// holds for one predecessor, as if the standby monitor had declared it
// dead. For tests and operational tooling.
func (n *Node) PromoteStandby(from wire.SiteID) {
	n.mu.Lock()
	s := n.sync
	n.mu.Unlock()
	if s == nil || s.home == nil {
		return
	}
	s.home.promoteFrom(from)
}
