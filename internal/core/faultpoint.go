package core

import (
	"time"

	"mocha/internal/store"
	"mocha/internal/wire"
)

// FaultPoint names one injection site in the protocol. The points form a
// registry: a test's FaultHook is consulted at each by name and decides
// whether the run takes the failure path there. The names are stable
// identifiers — fault schedules printed by the seeded explorer refer to
// them, so replaying a seed re-injects the same faults at the same points.
type FaultPoint string

// The registered fault points.
const (
	// FPCrashBeforeGrant fires at the synchronization thread just before a
	// grant is delivered. Drop models the requester crashing first: the
	// grant is undeliverable, the optimistic hold is dropped, and the next
	// requester is granted.
	FPCrashBeforeGrant FaultPoint = "crash-before-grant"
	// FPCrashAfterReleaseBeforePush fires in Unlock after the new version
	// is committed locally but before dissemination and the release
	// message. Drop models the holder crashing at that instant: nothing is
	// pushed, the release never reaches the synchronization thread, and the
	// lock must be broken by lease expiry.
	FPCrashAfterReleaseBeforePush FaultPoint = "crash-after-release-before-push"
	// FPDropMidTransfer fires in the transfer service before a replica-
	// carrying frame (directive-driven transfer or dissemination push)
	// leaves the site. Drop fails that transfer, exercising the push
	// replacement walk and the acquirer-side abort paths.
	FPDropMidTransfer FaultPoint = "drop-mid-transfer"
	// FPDelayDaemonPoll fires in the daemon just before it answers a
	// PollVersion. Delay holds the reply back; past the poll deadline the
	// daemon's copy is treated as lost and recovery falls back to an older
	// surviving version.
	FPDelayDaemonPoll FaultPoint = "delay-daemon-poll"
	// FPKillLockHolder fires in an application thread immediately after it
	// installs a granted hold. The hook's owner kills the site (or simply
	// never releases), so the lease sweep must detect the dead holder,
	// break the lock, and ban the thread.
	FPKillLockHolder FaultPoint = "kill-lock-holder"
	// FPDropRelayFan fires on a bucket relay as a RelayPush arrives,
	// before anything is applied or re-fanned. Drop models the relay
	// dying mid-push: no apply, no re-fan, no ack — the origin's
	// relay-ack wait times out and the bucket falls back to direct
	// pushes. Peer is the push's origin site.
	FPDropRelayFan FaultPoint = "drop-relay-fan"
	// FPKillLockHome fires at a lock's home manager just after a grant was
	// delivered — the window where the standby must already know the
	// holder. The hook's owner kills the manager site, so the ring
	// successor's promotion must restore the lease, version floor, and
	// dirty set for the lock to stay acquirable.
	FPKillLockHome FaultPoint = "kill-lock-home"
	// FPDelayHandoff fires at an old home just before it ships a frozen
	// lock record to the new home. Delay stalls the migration with the
	// lock frozen (requests queue behind it); Drop aborts the migration
	// and the old home unfreezes and keeps serving.
	FPDelayHandoff FaultPoint = "delay-handoff"
	// FPCrashBeforeFsync fires in the durable store as a WAL record is
	// about to be appended. Drop loses the record as if the site died
	// after the protocol action but before the log write reached disk —
	// recovery must come up at the previous durable state and re-join
	// from there. The names match internal/store's fault constants.
	FPCrashBeforeFsync FaultPoint = FaultPoint(store.FaultCrashBeforeFsync)
	// FPTornWALTail fires in the durable store as a WAL record is framed.
	// Drop writes only a prefix of the frame — the torn tail a mid-write
	// power cut leaves — and recovery must truncate it cleanly.
	FPTornWALTail FaultPoint = FaultPoint(store.FaultTornWALTail)
)

// FaultPoints lists the registry in a stable order.
func FaultPoints() []FaultPoint {
	return []FaultPoint{
		FPCrashBeforeGrant,
		FPCrashAfterReleaseBeforePush,
		FPDropMidTransfer,
		FPDelayDaemonPoll,
		FPKillLockHolder,
		FPDropRelayFan,
		FPKillLockHome,
		FPDelayHandoff,
		FPCrashBeforeFsync,
		FPTornWALTail,
	}
}

// FaultContext tells a hook where the protocol is when a point fires.
type FaultContext struct {
	Point   FaultPoint
	Site    wire.SiteID // the site executing the point
	Peer    wire.SiteID // the other party, when one exists (0 otherwise)
	Lock    wire.LockID
	Thread  wire.ThreadID
	Version uint64
}

// FaultDecision is a hook's verdict: take the failure path (Drop), stall
// the operation first (Delay), or both. The zero value means proceed
// normally.
type FaultDecision struct {
	Drop  bool
	Delay time.Duration
}

// FaultHook decides, per firing, whether an injection point takes its
// failure path. Hooks run on protocol goroutines and must not block beyond
// the Delay they return; they may have side effects (the explorer kills
// sites from inside crash hooks).
type FaultHook func(FaultContext) FaultDecision

// fireFault consults the node's hook at one injection point, records the
// injection in the history when it changes behavior, and performs the
// requested delay. Callers must not hold protocol mutexes across the call
// (the delay sleeps, and hooks may call back into the node).
func (n *Node) fireFault(fc FaultContext) FaultDecision {
	if n == nil || n.cfg.FaultHook == nil {
		return FaultDecision{}
	}
	fc.Site = n.cfg.Site
	d := n.cfg.FaultHook(fc)
	if d.Drop || d.Delay > 0 {
		ev := wire.HistoryEvent{
			Kind:    wire.HistFault,
			Site:    fc.Site,
			Thread:  fc.Thread,
			Lock:    fc.Lock,
			Version: fc.Version,
			Note:    string(fc.Point),
		}
		if fc.Peer != 0 {
			ev.Sites = wire.NewSiteSet(fc.Peer)
		}
		n.recordHist(ev)
	}
	if d.Delay > 0 {
		time.Sleep(d.Delay)
	}
	return d
}
