package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mocha/internal/mnet"
	"mocha/internal/obs"
	"mocha/internal/wire"
)

// banRecord is the compact in-memory form of one permanent ban: which
// lock's lease expired and which site's heartbeat went unanswered. Bans
// are forever — "an application thread that fails in this manner is
// prevented from making future requests" — so the table must not evict;
// keeping two integers per thread instead of a reason string makes
// permanence affordable (the FIFO-evicting table this replaces silently
// un-banned the oldest threads once it overflowed).
type banRecord struct {
	lock wire.LockID
	site wire.SiteID
}

// banReason reconstructs the human-readable reason for a ban on demand.
// Lease breaks are the only ban cause, so the record determines the text.
func banReason(r banRecord) string {
	return fmt.Sprintf("lease expired on lock %d and heartbeat to site %d failed", r.lock, r.site)
}

// syncThread is the synchronization thread of Figure 7: the home-site
// manager "responsible for granting locks, queuing requests, and deducing
// whether a new version of replicas must be sent to an application
// thread", extended with the Section 4 refinements: up-to-date set
// tracking from push dissemination, transfer-failure recovery by polling
// daemons, lock leases with heartbeat-confirmed breaking, and banning of
// failed threads.
//
// The lock table is sharded by LockID, and each syncLock is a small state
// machine serialized by its own mutex. Protocol decisions (queueing, grant
// choice, version bookkeeping) run under that mutex; every network send —
// grant delivery, transfer directives, daemon polls, heartbeats — runs on
// completion-style workers that re-enter the state machine with the
// outcome. No mutex is ever held across network I/O, so the port
// dispatcher never blocks on a peer and a dead grantee on one lock cannot
// delay traffic on any other lock (S30).
type syncThread struct {
	node   *Node
	port   *mnet.Port // main handler: ACQUIRELOCK / RELEASELOCK / REGISTERREPLICA
	aux    *mnet.Port // outbound probes: transfer directives, polls, heartbeats
	epoch  uint32
	serial bool // SyncSerialIO: run workers inline in the dispatcher (ablation)

	shards []*syncShard

	// home carries the mobile-namespace state when consistent-hash home
	// placement is on; nil reproduces the paper's fixed-home baseline.
	home *homeState

	bannedMu sync.Mutex
	banned   map[wire.ThreadID]banRecord

	pollMu      sync.Mutex
	pollWaiters map[uint64]chan *wire.PollVersionReply
	nextNonce   atomic.Uint64

	stopOnce sync.Once
	stopCh   chan struct{}
	sweepWG  sync.WaitGroup
}

// syncLock is the per-lock record ("Lock object") at the home site. Its
// mutex serializes all state transitions; holders of mu must not perform
// network I/O or take any other lock-table mutex.
type syncLock struct {
	id wire.LockID

	mu      sync.Mutex
	version uint64
	// highWater is the highest version ever committed for this lock. It
	// never decreases: Section 4 recovery may rewrite version downward to
	// the best surviving copy, but grants carry highWater as a floor so
	// the recovered lineage never reuses a committed version number.
	highWater uint64
	lastOwner wire.SiteID
	upToDate  wire.SiteSet
	// dirty is the set of sites whose copy a broken exclusive hold may
	// have scribbled on (the holder died mid-hold without a committed
	// release). Recovery polls skip them: such a site would label
	// uncommitted bytes with its stale version number. A site leaves the
	// set when a committed release lists it as up to date again.
	dirty   wire.SiteSet
	sharers wire.SiteSet
	names   map[string]bool
	// fence is the fencing-token counter: the highest token ever minted
	// for this lock. Tokens compose the manager epoch (high 32 bits) with
	// a per-epoch sequence, so a promotion or handoff — whose shadow of
	// this counter may be stale — mints under its strictly larger epoch
	// and can never re-issue or regress a token the old home handed out.
	fence uint64

	holder  *holderInfo
	readers map[wire.ThreadID]*holderInfo
	queue   []*lockRequest

	// Home-placement state; all zero when placement is off.
	//
	// frozen marks a record mid-handoff: requests still queue behind it
	// but nothing is granted until the migration commits or aborts. moved
	// is the tombstone left by a committed handoff — the record stays in
	// the table (redirecting under its own mutex, which makes the
	// commit/acquire race airtight) until the sweep collects it.
	frozen    bool
	moved     *homeRoute
	homeEpoch uint32
	// acq tallies acquires per requesting site since the last decay; the
	// sweep migrates the home toward a site with a dominant tally.
	acq      map[wire.SiteID]uint64
	acqTotal uint64
	// standbySeq orders this record's standby snapshots: streams run
	// outside l.mu, so a late stale snapshot must not overwrite a newer
	// one at the standby.
	standbySeq uint64
}

// holderInfo records one granted hold. Workers keep the pointer as a
// session token: before acting on a completion outcome they re-validate
// that this exact hold is still installed, so a release, break, or
// re-grant that happened while the I/O was in flight voids the session.
type holderInfo struct {
	site      wire.SiteID
	thread    wire.ThreadID
	grantedAt time.Time
	lease     time.Duration
	shared    bool
	// probing marks an in-flight lease-expiry heartbeat so overlapping
	// sweeps do not double-probe the same hold. Guarded by the lock's mu.
	probing bool
	// restored marks a hold re-installed from a handoff record or standby
	// shadow rather than granted here. The client may have released it
	// into the dead home; if the same thread re-acquires, the stale hold
	// is broken instead of deadlocking the queue behind a ghost.
	restored bool
	// fence is the fencing token minted for this hold; a revised grant
	// re-issuing the hold carries the same token.
	fence uint64
}

type lockRequest struct {
	site   wire.SiteID
	thread wire.ThreadID
	shared bool
	// have is the replica version the requester reported holding, passed
	// through to the transfer source so it can ship a delta.
	have  uint64
	lease time.Duration
	// recorded reports whether the request's HistAcquire has been
	// written. Requests queued against a frozen record defer it: the
	// release or break whose standby stream froze the record must be
	// recorded first, or the history would show this acquire (possibly by
	// the very thread mid-release) sequenced before the release it
	// follows. recordRequest backfills it at unfreeze or grant time.
	recorded bool
}

// recordRequest backfills the deferred HistAcquire of a request queued
// while its record was frozen. Callers either hold l.mu or own the
// request exclusively (a drained queue entry).
func (s *syncThread) recordRequest(lock wire.LockID, q *lockRequest) {
	if q.recorded {
		return
	}
	q.recorded = true
	s.node.recordHist(wire.HistoryEvent{
		Kind:    wire.HistAcquire,
		Site:    q.site,
		Thread:  q.thread,
		Lock:    lock,
		Version: q.have,
		Shared:  q.shared,
	})
}

// recordDeferredLocked backfills every deferred acquire in queue order;
// the caller holds l.mu and has just recorded the transition that froze
// the record.
func (s *syncThread) recordDeferredLocked(l *syncLock) {
	for _, q := range l.queue {
		s.recordRequest(l.id, q)
	}
}

// newSyncThread starts the manager, optionally restoring surrogate state.
func newSyncThread(n *Node, restore *SyncState) (*syncThread, error) {
	port, err := n.ep.OpenPort(PortSync)
	if err != nil {
		return nil, err
	}
	aux, err := n.ep.OpenPort(PortSyncAux)
	if err != nil {
		return nil, err
	}
	s := &syncThread{
		node:        n,
		port:        port,
		aux:         aux,
		epoch:       1,
		serial:      n.cfg.SyncSerialIO,
		shards:      newShards(n.cfg.SyncShards),
		banned:      make(map[wire.ThreadID]banRecord),
		pollWaiters: make(map[uint64]chan *wire.PollVersionReply),
		stopCh:      make(chan struct{}),
	}
	if n.ring != nil && n.ring.Contains(n.cfg.Site) {
		s.home = newHomeState(s)
	}
	if restore != nil {
		s.restore(restore)
	}
	port.SetHandler(s.handle)
	aux.SetHandler(s.handleAux)
	s.sweepWG.Add(1)
	go s.leaseSweep()
	if s.home != nil {
		s.home.start()
	}
	return s, nil
}

// stop terminates the sweep goroutine. Outstanding completion workers are
// not waited for: their sends fail fast once the endpoint closes, and
// re-entering the state machine afterwards only touches memory.
func (s *syncThread) stop() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.sweepWG.Wait()
}

// Epoch returns the manager's incarnation number.
func (s *syncThread) Epoch() uint32 { return s.epoch }

// run executes completion actions produced by a state transition. The
// default spawns one goroutine per action; SyncSerialIO mode runs them
// inline on the caller (the port dispatcher), faithfully reproducing the
// pre-S30 head-of-line blocking for the ablation baseline. Actions must
// only be run after every lock mutex is released.
func (s *syncThread) run(actions []func()) {
	for _, f := range actions {
		s.spawn(f)
	}
}

// spawn runs one completion action per the serial/concurrent policy.
func (s *syncThread) spawn(f func()) {
	if s.serial {
		f()
		return
	}
	go f()
}

// handle is the main dispatcher loop body of Figure 7. It must never
// block on a peer: every arm ends by handing I/O to completion workers.
func (s *syncThread) handle(m mnet.Message) {
	p, err := wire.Unmarshal(m.Data)
	if err != nil {
		if s.node.log.On() {
			s.node.log.Logf("sync", "bad message: %v", err)
		}
		return
	}
	switch msg := p.(type) {
	case *wire.AcquireLock:
		s.onAcquire(msg)
	case *wire.ReleaseLock:
		s.onRelease(msg)
	case *wire.RegisterReplica:
		s.onRegister(msg)
	case *wire.HandoffRecord:
		s.onHandoff(msg)
	case *wire.HandoffAck:
		if s.home != nil {
			s.home.onHandoffAck(msg)
		}
	case *wire.StandbyUpdate:
		if s.home != nil {
			s.home.onStandbyUpdate(msg)
		}
	default:
		if s.node.log.On() {
			s.node.log.Logf("sync", "unhandled %s on sync port", p.Kind())
		}
	}
}

// handleAux routes probe replies.
func (s *syncThread) handleAux(m mnet.Message) {
	p, err := wire.Unmarshal(m.Data)
	if err != nil {
		return
	}
	switch msg := p.(type) {
	case *wire.PollVersionReply:
		s.pollMu.Lock()
		ch := s.pollWaiters[msg.Nonce]
		s.pollMu.Unlock()
		if ch != nil {
			// The waiter sizes the channel to the number of daemons it
			// asked, so one reply per daemon always fits; the default arm
			// only discards duplicates and stragglers past the deadline.
			select {
			case ch <- msg:
			default:
			}
		}
	case *wire.HeartbeatAck:
		// Liveness is established by the probe send being acknowledged at
		// the MNet level; the explicit ack needs no routing.
	default:
	}
}

// onAcquire implements the ACQUIRELOCK arm of Figure 7, extended with
// mobile-home routing: a manager that is not (or no longer) the lock's
// home answers NackNotHome with the best forwarding address instead of
// serving, so a client chasing a migrated lock converges in one hop.
func (s *syncThread) onAcquire(msg *wire.AcquireLock) {
	if hs := s.home; hs != nil && hs.redirectIfNotHome(msg) {
		return
	}
	l := s.lookupLock(msg.Lock)
	if l == nil {
		s.recordAcquire(msg)
		if reason, isBanned := s.bannedReason(msg.Thread); isBanned {
			s.refuseBanned(msg, reason)
			return
		}
		// No daemon has ever registered this lock: refuse rather than
		// fabricate a record an arbitrary acquirer could grow forever.
		if s.node.log.On() {
			s.node.log.Logf("sync", "refusing acquire of unregistered lock %d by thread %d", msg.Lock, msg.Thread)
		}
		s.recordNack(msg, "lock never registered")
		s.spawn(s.nackAction(msg, wire.NackUnknownLock, "lock never registered"))
		return
	}
	lease := s.node.cfg.DefaultLease
	if msg.LeaseMillis > 0 {
		lease = time.Duration(msg.LeaseMillis) * time.Millisecond
	}
	l.mu.Lock()
	// Duplicate suppression, checked before the acquire is recorded so a
	// re-sent request never queues twice. A client whose request was
	// already served re-sends it when the answer (or the transport ack)
	// was lost — most often chasing a lock across a home failover. A
	// request from the current holder is answered with a revised grant
	// re-issuing the existing hold; a request already queued rides the
	// grant the first copy will get (same delivery key at the client).
	if h := s.holdOfLocked(l, msg.Thread); h != nil {
		req := &lockRequest{site: msg.Requester, thread: msg.Thread, shared: h.shared, have: msg.HaveVersion, lease: h.lease}
		if msg.HaveVersion < l.version && l.upToDate.Contains(msg.Requester) {
			// Same demotion as tryGrantLocked: the requester knows its
			// own replicas better than our bookkeeping does.
			l.upToDate.Remove(msg.Requester)
		}
		flag := wire.VersionOK
		if l.version > 0 && !l.upToDate.Contains(msg.Requester) {
			flag = wire.NeedNewVersion
		}
		g := s.buildGrantLocked(l, req, l.version, flag, true, h.fence)
		s.recordGrant(l, g, msg.Requester)
		l.mu.Unlock()
		if s.node.log.On() {
			s.node.log.Logf("sync", "re-issuing held lock %d to thread %d as a revised grant", msg.Lock, msg.Thread)
		}
		s.spawn(func() { s.deliverGrant(l, req, h, g) })
		return
	}
	for _, q := range l.queue {
		if q.thread == msg.Thread {
			l.mu.Unlock()
			return
		}
	}
	// Recorded before the ban check, so an acquire that slips past a
	// concurrent ban is correctly sequenced before it — but deferred
	// while the record is frozen mid-stream: the pending release or break
	// record must land first to keep the history in protocol order.
	if !l.frozen {
		s.recordAcquire(msg)
	}
	if reason, isBanned := s.bannedReason(msg.Thread); isBanned {
		frozen := l.frozen
		l.mu.Unlock()
		if frozen {
			s.recordAcquire(msg)
		}
		s.refuseBanned(msg, reason)
		return
	}
	if hs := s.home; hs != nil {
		// Re-checked under l.mu: a commitMove that raced this acquire set
		// the tombstone before draining the queue, so either the drain
		// nacks this request or this check does — never neither.
		if route := l.moved; route != nil {
			l.mu.Unlock()
			s.recordNack(msg, "lock moved to new home")
			hs.redirectTo(msg, route)
			return
		}
		hs.noteAcquireLocked(l, msg)
	}
	l.queue = append(l.queue, &lockRequest{
		site:     msg.Requester,
		thread:   msg.Thread,
		shared:   msg.Shared,
		have:     msg.HaveVersion,
		lease:    lease,
		recorded: !l.frozen,
	})
	s.node.obs().GaugeAdd(obs.GSyncQueueDepth, 1)
	s.node.obs().ShardDepthAdd(int(uint32(msg.Lock)%uint32(len(s.shards))), 1)
	actions := s.tryGrantLocked(l)
	l.mu.Unlock()
	s.run(actions)
}

// recordAcquire adds an ACQUIRELOCK to the history. For queued requests the
// caller holds the lock's mu, so the event is sequenced against the grants
// and releases of the same lock.
func (s *syncThread) recordAcquire(msg *wire.AcquireLock) {
	s.node.recordHist(wire.HistoryEvent{
		Kind:    wire.HistAcquire,
		Site:    msg.Requester,
		Thread:  msg.Thread,
		Lock:    msg.Lock,
		Version: msg.HaveVersion,
		Shared:  msg.Shared,
	})
}

// recordNack adds a refusal to the history, closing the acquire it answers.
func (s *syncThread) recordNack(msg *wire.AcquireLock, reason string) {
	s.node.recordHist(wire.HistoryEvent{
		Kind:   wire.HistNack,
		Site:   msg.Requester,
		Thread: msg.Thread,
		Lock:   msg.Lock,
		Note:   reason,
	})
}

// nackAction builds a deferred LockNack delivery.
func (s *syncThread) nackAction(msg *wire.AcquireLock, code wire.NackCode, reason string) func() {
	nack := &wire.LockNack{Lock: msg.Lock, Thread: msg.Thread, Code: code, Reason: reason}
	site := msg.Requester
	return func() { s.sendToClient(site, nack) }
}

// onRelease implements the RELEASELOCK arm of Figure 7, with the Section 4
// refinement that the release carries the set of daemons holding the new
// version from push dissemination.
func (s *syncThread) onRelease(msg *wire.ReleaseLock) {
	l := s.lookupLock(msg.Lock)
	if hs := s.home; hs != nil && hs.forwardReleaseIfMoved(l, msg) {
		return
	}
	if l == nil {
		return
	}
	l.mu.Lock()
	switch {
	case l.holder != nil && l.holder.thread == msg.Thread:
		l.holder = nil
	case l.readers[msg.Thread] != nil:
		delete(l.readers, msg.Thread)
	default:
		// A stale release: the lock was broken while this thread held it.
		l.mu.Unlock()
		if s.node.log.On() {
			s.node.log.Logf("sync", "ignoring stale release of lock %d by thread %d", msg.Lock, msg.Thread)
		}
		return
	}

	relSites := msg.UpToDate
	if !msg.Aborted && !msg.Shared {
		l.version = msg.NewVersion
		if msg.NewVersion > l.highWater {
			l.highWater = msg.NewVersion
		}
		l.lastOwner = msg.Releaser
		up := msg.UpToDate.Clone()
		up.Add(msg.Releaser)
		l.upToDate = up
		relSites = up
		// Every site holding the newly committed version has had its
		// content replaced wholesale; earlier contamination is gone.
		for _, site := range up.Sites() {
			l.dirty.Remove(site)
		}
		if s.node.log.On() {
			s.node.log.Log("sync", "lock released",
				obs.I("lock", int64(msg.Lock)), obs.I("version", int64(l.version)),
				obs.I("site", int64(msg.Releaser)), obs.S("up_to_date", l.upToDate.String()))
		}
	}
	relEv := wire.HistoryEvent{
		Kind:    wire.HistRelease,
		Site:    msg.Releaser,
		Thread:  msg.Thread,
		Lock:    msg.Lock,
		Version: msg.NewVersion,
		Shared:  msg.Shared,
		Aborted: msg.Aborted,
		Sites:   relSites,
	}
	if hs := s.home; hs != nil && hs.succ != 0 && l.moved == nil && !l.frozen {
		// Stream-first: the successor must hold this state before the
		// release is durable. Recording first would open a window where
		// the home dies with the release committed but the standby still
		// showing the old holder and version — promotion would then
		// restore a stale version floor (re-issuing a committed number)
		// and accept the client's retried release a second time. Frozen
		// blocks grants (and migration) until the record lands; the send
		// happens off the dispatcher, outside every mutex.
		l.frozen = true
		push := hs.standbyActionLocked(l)
		l.mu.Unlock()
		s.spawn(func() {
			push()
			l.mu.Lock()
			s.node.recordHist(relEv)
			s.recordDeferredLocked(l)
			l.frozen = false
			actions := s.tryGrantLocked(l)
			l.mu.Unlock()
			s.run(actions)
		})
		return
	}
	s.node.recordHist(relEv)
	actions := s.tryGrantLocked(l)
	if hs := s.home; hs != nil {
		actions = append(actions, hs.standbyActionLocked(l))
	}
	l.mu.Unlock()
	s.run(actions)
}

// onRegister implements REGISTERREPLICA: startup and initialization. This
// is the only client-driven message that creates lock records.
func (s *syncThread) onRegister(msg *wire.RegisterReplica) {
	if hs := s.home; hs != nil && hs.forwardRegisterIfNotHome(msg) {
		return
	}
	l, created := s.ensureLockCreated(msg.Lock)
	if created {
		if hs := s.home; hs != nil {
			hs.noteCreated(l)
		}
	}
	l.mu.Lock()
	l.sharers.Add(msg.Site)
	for _, name := range msg.Names {
		l.names[name] = true
	}
	seeded := false
	if msg.Creator && l.version == 0 {
		l.version = 1
		if l.highWater < 1 {
			l.highWater = 1
		}
		l.lastOwner = msg.Site
		l.upToDate = wire.NewSiteSet(msg.Site)
		s.node.recordHist(wire.HistoryEvent{
			Kind: wire.HistRegister, Site: msg.Site, Lock: msg.Lock, Version: 1, Note: "creator",
		})
		seeded = true
	} else {
		s.node.recordHist(wire.HistoryEvent{Kind: wire.HistRegister, Site: msg.Site, Lock: msg.Lock})
	}
	var standby func()
	if hs := s.home; hs != nil {
		standby = hs.standbyActionLocked(l)
	}
	l.mu.Unlock()
	if standby != nil {
		s.spawn(standby)
	}
	if seeded && s.node.log.On() {
		s.node.log.Logf("sync", "lock %d seeded at v1 by creator site %d", msg.Lock, msg.Site)
	}
}

// debugIgnoreHolder is a test-only switch that re-introduces a double-grant
// bug — granting the head of the queue while a holder is still installed —
// so the regression fixture can prove the history checker catches exactly
// this class of defect. Never set outside tests.
var debugIgnoreHolder bool

// tryGrantLocked hands the lock to the next compatible queued requests.
// The caller holds l.mu. Holds are installed optimistically and the grant
// deliveries returned as completion actions; an undeliverable grant
// re-enters through onGrantFailed, which removes the hold and tries the
// next requester.
func (s *syncThread) tryGrantLocked(l *syncLock) []func() {
	var actions []func()
	// A frozen record is mid-handoff and a moved one is a tombstone:
	// neither may grant (the new home will, once the client re-routes).
	for !l.frozen && l.moved == nil && len(l.queue) > 0 && (l.holder == nil || debugIgnoreHolder) {
		head := l.queue[0]
		if !head.shared && len(l.readers) > 0 {
			break
		}
		l.queue = l.queue[1:]
		s.node.obs().GaugeAdd(obs.GSyncQueueDepth, -1)
		s.node.obs().ShardDepthAdd(int(uint32(l.id)%uint32(len(s.shards))), -1)
		h := &holderInfo{
			site: head.site, thread: head.thread,
			grantedAt: time.Now(), lease: head.lease, shared: head.shared,
			fence: s.mintFenceLocked(l),
		}
		if head.shared {
			l.readers[head.thread] = h
		} else {
			l.holder = h
		}
		if head.have < l.version && l.upToDate.Contains(head.site) {
			// The requester reports an older version than the bookkeeping
			// credits it with: it restarted and lost (some of) its state,
			// or its uncommitted copy disqualified itself (have=0). The
			// requester is authoritative about its own replicas — stale
			// up-to-date entries otherwise grant VERSIONOK to an empty
			// site, which would read bytes that are not the version's.
			l.upToDate.Remove(head.site)
		}
		flag := wire.VersionOK
		if l.version > 0 && !l.upToDate.Contains(head.site) {
			// "The synchronization thread relies on the method
			// lastLockOwner() to determine the value of the flag" — here
			// generalized to the up-to-date set, which always contains
			// the last owner.
			flag = wire.NeedNewVersion
		}
		g := s.buildGrantLocked(l, head, l.version, flag, false, h.fence)
		s.recordRequest(l.id, head)
		s.recordGrant(l, g, head.site)
		req := head
		actions = append(actions, func() { s.deliverGrant(l, req, h, g) })
		if !head.shared {
			break
		}
	}
	return actions
}

// recordGrant adds a GRANT to the history; the caller holds l.mu, so the
// event sits exactly where the hold was installed in the lock's timeline.
// AuxVersion carries the fencing token so the checker can enforce that
// tokens never regress across grants, handoffs, and promotions.
func (s *syncThread) recordGrant(l *syncLock, g *wire.Grant, site wire.SiteID) {
	s.node.recordHist(wire.HistoryEvent{
		Kind:       wire.HistGrant,
		Site:       site,
		Thread:     g.Thread,
		Lock:       l.id,
		Version:    g.Version,
		AuxVersion: g.Fence,
		Flag:       g.Flag,
		Shared:     g.Shared,
		Revised:    g.Revised,
		Sites:      g.UpToDate,
	})
}

// mintFenceLocked issues the lock's next fencing token: the manager epoch
// in the high 32 bits, a per-epoch sequence below. Within one epoch the
// counter increments; after a handoff or standby promotion the strictly
// larger epoch jumps the token past everything the old home could have
// minted — even when the promoted standby's shadow of the counter was
// stale. The caller holds l.mu.
func (s *syncThread) mintFenceLocked(l *syncLock) uint64 {
	epoch := uint64(s.epoch)
	if uint64(l.homeEpoch) > epoch {
		epoch = uint64(l.homeEpoch)
	}
	next := l.fence + 1
	if floor := epoch<<32 | 1; next < floor {
		next = floor
	}
	l.fence = next
	return next
}

// buildGrantLocked assembles a GRANT from the lock's current state; the
// caller holds l.mu. fence is the hold's fencing token: freshly minted for
// a new hold, the hold's existing token for a revised re-issue.
func (s *syncThread) buildGrantLocked(l *syncLock, req *lockRequest, version uint64, flag wire.VersionFlag, revised bool, fence uint64) *wire.Grant {
	return &wire.Grant{
		Lock:         l.id,
		Thread:       req.thread,
		Version:      version,
		Flag:         flag,
		Shared:       req.shared,
		Epoch:        s.epoch,
		Sharers:      l.sharers.Clone(),
		UpToDate:     l.upToDate.Clone(),
		Revised:      revised,
		VersionFloor: l.highWater,
		Fence:        fence,
	}
}

// holdOfLocked returns the thread's current hold on l, exclusive or
// shared, or nil; the caller holds l.mu.
func (s *syncThread) holdOfLocked(l *syncLock, t wire.ThreadID) *holderInfo {
	if l.holder != nil && l.holder.thread == t {
		return l.holder
	}
	return l.readers[t]
}

// refuseBanned nacks a request from a banned thread — "an application
// thread that fails in this manner is prevented from making future
// requests."
func (s *syncThread) refuseBanned(msg *wire.AcquireLock, reason string) {
	if s.node.log.On() {
		s.node.log.Logf("sync", "refusing banned thread %d: %s", msg.Thread, reason)
	}
	s.recordNack(msg, reason)
	s.spawn(s.nackAction(msg, wire.NackBanned, reason))
}

// holdCurrentLocked reports whether the hold h is still the installed one;
// the caller holds l.mu. Pointer identity distinguishes this grant session
// from any later re-grant to the same thread.
func (s *syncThread) holdCurrentLocked(l *syncLock, h *holderInfo) bool {
	if h.shared {
		return l.readers[h.thread] == h
	}
	return l.holder == h
}

// dropHoldLocked removes the hold h if it is still installed, reporting
// whether it was; the caller holds l.mu.
func (s *syncThread) dropHoldLocked(l *syncLock, h *holderInfo) bool {
	if !s.holdCurrentLocked(l, h) {
		return false
	}
	if h.shared {
		delete(l.readers, h.thread)
	} else {
		l.holder = nil
	}
	return true
}

// leaseSweep periodically scans held locks for expired leases: "The
// synchronization thread can periodically peruse its list of held locks to
// determine if any threads are holding locks for an extraordinary amount
// of time and therefore a candidate for being a failed thread."
func (s *syncThread) leaseSweep() {
	defer s.sweepWG.Done()
	t := time.NewTicker(s.node.cfg.LeaseSweep)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sweepOnce()
		case <-s.stopCh:
			return
		}
	}
}

// sweepOnce collects expired-lease suspects under the lock mutexes, then
// probes them on completion workers — the heartbeat never runs under any
// mutex, and the worker re-validates the hold before breaking it. It also
// garbage-collects empty lock records (no sharers, holds, or queue), which
// surrogate restores can leave behind.
func (s *syncThread) sweepOnce() {
	now := time.Now()
	type suspect struct {
		l *syncLock
		h *holderInfo
	}
	var suspects []suspect
	// The manager judges hold age on its own clock; LeaseSkew models that
	// clock running fast (positive) or slow (negative) relative to the
	// holder's lease timer.
	skew := s.node.cfg.LeaseSkew
	expired := func(l *syncLock, h *holderInfo) bool {
		if now.Sub(h.grantedAt)+skew <= h.lease || h.probing {
			return false
		}
		h.probing = true
		suspects = append(suspects, suspect{l, h})
		return true
	}
	type departure struct {
		l  *syncLock
		to wire.SiteID
	}
	var departures []departure
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id, l := range sh.locks {
			l.mu.Lock()
			if l.emptyLocked() {
				wasMoved := l.moved != nil
				delete(sh.locks, id)
				s.node.obs().GaugeAdd(obs.GSyncLocks, -1)
				l.mu.Unlock()
				if hs := s.home; hs != nil {
					hs.noteCollected(id, wasMoved)
				}
				if s.node.log.On() {
					s.node.log.Logf("sync", "collected empty record for lock %d", id)
				}
				continue
			}
			if hs := s.home; hs != nil {
				if to, ok := hs.migrationTargetLocked(l); ok {
					l.frozen = true
					departures = append(departures, departure{l, to})
				}
			}
			if h := l.holder; h != nil {
				expired(l, h)
			}
			for _, h := range l.readers {
				expired(l, h)
			}
			l.mu.Unlock()
		}
		sh.mu.Unlock()
	}
	for _, sp := range suspects {
		sp := sp
		s.spawn(func() { s.checkHolder(sp.l, sp.h) })
	}
	for _, d := range departures {
		d := d
		s.spawn(func() { s.home.migrate(d.l, d.to) })
	}
}

// emptyLocked reports whether a lock record carries no state worth
// keeping; the caller holds the record's mu. A moved tombstone is
// collectible once its queue has drained regardless of the durable
// fields — the home-state moved map keeps routing for it — while a
// frozen record is never collected (a migration owns it).
func (l *syncLock) emptyLocked() bool {
	if l.moved != nil {
		return len(l.queue) == 0
	}
	if l.frozen {
		return false
	}
	return l.holder == nil && len(l.readers) == 0 && len(l.queue) == 0 &&
		l.sharers.Len() == 0 && len(l.names) == 0 && l.version == 0
}

// checkHolder confirms a lease-expiry suspicion with a heartbeat and
// breaks the lock if the holder is dead. The heartbeat runs outside all
// mutexes; the outcome is applied only if the same hold is still
// installed.
func (s *syncThread) checkHolder(l *syncLock, h *holderInfo) {
	addr, addrErr := s.node.daemonAddr(h.site)
	alive := false
	if addrErr == nil {
		alive = s.probe(addr)
	}

	l.mu.Lock()
	h.probing = false
	if !s.holdCurrentLocked(l, h) {
		// Released, broken, or re-granted while the probe was in flight.
		l.mu.Unlock()
		return
	}
	if addrErr != nil {
		l.mu.Unlock()
		return
	}
	if alive {
		// Alive but slow: extend one more lease rather than break a
		// healthy hold.
		h.grantedAt = time.Now()
		l.mu.Unlock()
		if s.node.log.On() {
			s.node.log.Logf("sync", "lock %d holder %d over lease but alive; extended", l.id, h.thread)
		}
		return
	}
	// "the synchronization thread can assume the application thread has
	// failed ... the synchronization thread can simply break the lock and
	// give it to the next application thread that desires it."
	s.dropHoldLocked(l, h)
	if !h.shared {
		// The dead holder may have mutated its replicas in place without a
		// committed release: its site's copy no longer vouches for the
		// committed version. Evict it from the up-to-date set and, if it
		// was the transfer source, redirect to a surviving clean copy.
		l.upToDate.Remove(h.site)
		l.dirty.Add(h.site)
		if l.lastOwner == h.site {
			if sites := l.upToDate.Sites(); len(sites) > 0 {
				l.lastOwner = sites[0]
			}
		}
	}
	s.node.obs().Inc(obs.CLeaseBreaks)
	breakEv := wire.HistoryEvent{
		Kind: wire.HistBreak, Site: h.site, Thread: h.thread, Lock: l.id,
	}
	var actions []func()
	if hs := s.home; hs != nil && hs.succ != 0 && l.moved == nil && !l.frozen {
		// Stream-first, mirroring onRelease: the successor must see the
		// hold cleared and the site marked dirty before the break is
		// durable, or a promotion could resurrect the broken hold and
		// direct transfers from the contaminated copy. This worker runs
		// outside every mutex, so the acked send can block inline.
		l.frozen = true
		push := hs.standbyActionLocked(l)
		l.mu.Unlock()
		push()
		l.mu.Lock()
		s.node.recordHist(breakEv)
		s.recordDeferredLocked(l)
		l.frozen = false
		actions = s.tryGrantLocked(l)
	} else {
		s.node.recordHist(breakEv)
		actions = s.tryGrantLocked(l)
		if hs := s.home; hs != nil {
			actions = append(actions, hs.standbyActionLocked(l))
		}
	}
	l.mu.Unlock()
	s.ban(h.thread, l.id, h.site)
	if s.node.log.On() {
		s.node.log.Logf("fault", "broke lock %d held by dead thread %d at site %d", l.id, h.thread, h.site)
	}
	s.run(actions)
}

// probe sends one heartbeat, reporting whether the MNet-level ack arrived.
func (s *syncThread) probe(addr string) bool {
	hb := wire.Marshal(&wire.Heartbeat{Nonce: s.nextNonce.Add(1)})
	ctx, cancel := timeoutCtx(s.node.cfg.RequestTimeout)
	defer cancel()
	return s.aux.Send(ctx, addr, hb) == nil
}

// ban permanently records a failed thread. The table never evicts: a ban
// costs two integers, so even a long-lived home can afford every thread
// it has ever had to break.
func (s *syncThread) ban(t wire.ThreadID, lock wire.LockID, site wire.SiteID) {
	s.bannedMu.Lock()
	defer s.bannedMu.Unlock()
	if _, known := s.banned[t]; known {
		return
	}
	rec := banRecord{lock: lock, site: site}
	// Recorded under bannedMu: any acquire refused because of this ban
	// is sequenced after it.
	s.node.obs().Inc(obs.CBans)
	s.node.recordHist(wire.HistoryEvent{Kind: wire.HistBan, Thread: t, Note: banReason(rec)})
	s.banned[t] = rec
}

// bannedReason looks a thread up in the banned table.
func (s *syncThread) bannedReason(t wire.ThreadID) (string, bool) {
	s.bannedMu.Lock()
	defer s.bannedMu.Unlock()
	rec, ok := s.banned[t]
	if !ok {
		return "", false
	}
	return banReason(rec), true
}

// Banned reports whether a thread has been banned (for tests and tools).
func (s *syncThread) Banned(t wire.ThreadID) bool {
	_, ok := s.bannedReason(t)
	return ok
}

// checkInvariants verifies the protocol invariants over every lock record
// (used by tests after stress runs): at most one exclusive holder and
// never alongside readers, no holder or reader still queued, and the
// up-to-date set contained in the sharer set.
func (s *syncThread) checkInvariants() error {
	for _, sh := range s.shards {
		sh.mu.Lock()
		for id, l := range sh.locks {
			l.mu.Lock()
			err := l.checkInvariantsLocked()
			l.mu.Unlock()
			if err != nil {
				sh.mu.Unlock()
				return fmt.Errorf("lock %d: %w", id, err)
			}
		}
		sh.mu.Unlock()
	}
	return nil
}

func (l *syncLock) checkInvariantsLocked() error {
	if h := l.holder; h != nil {
		if h.shared {
			return errors.New("exclusive holder slot occupied by a shared hold")
		}
		if len(l.readers) > 0 {
			return fmt.Errorf("exclusive holder %d coexists with %d readers", h.thread, len(l.readers))
		}
	}
	for _, q := range l.queue {
		if l.holder != nil && q.thread == l.holder.thread {
			return fmt.Errorf("holder %d still queued", q.thread)
		}
		if _, ok := l.readers[q.thread]; ok {
			return fmt.Errorf("reader %d still queued", q.thread)
		}
	}
	for _, site := range l.upToDate.Sites() {
		if !l.sharers.Contains(site) {
			return fmt.Errorf("up-to-date site %d is not a sharer", site)
		}
	}
	return nil
}
