package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mocha/internal/mnet"
	"mocha/internal/wire"
)

// syncThread is the synchronization thread of Figure 7: the home-site
// manager "responsible for granting locks, queuing requests, and deducing
// whether a new version of replicas must be sent to an application
// thread", extended with the Section 4 refinements: up-to-date set
// tracking from push dissemination, transfer-failure recovery by polling
// daemons, lock leases with heartbeat-confirmed breaking, and banning of
// failed threads.
type syncThread struct {
	node  *Node
	port  *mnet.Port // main handler: ACQUIRELOCK / RELEASELOCK / REGISTERREPLICA
	aux   *mnet.Port // outbound probes: transfer directives, polls, heartbeats
	epoch uint32

	mu     sync.Mutex
	locks  map[wire.LockID]*syncLock
	banned map[wire.ThreadID]string

	pollMu      sync.Mutex
	pollWaiters map[uint64]chan *wire.PollVersionReply
	nextNonce   atomic.Uint64

	stopOnce sync.Once
	stopCh   chan struct{}
	sweepWG  sync.WaitGroup
}

// syncLock is the per-lock record ("Lock object") at the home site.
type syncLock struct {
	id        wire.LockID
	version   uint64
	lastOwner wire.SiteID
	upToDate  wire.SiteSet
	sharers   wire.SiteSet
	names     map[string]bool

	holder  *holderInfo
	readers map[wire.ThreadID]*holderInfo
	queue   []*lockRequest
}

type holderInfo struct {
	site      wire.SiteID
	thread    wire.ThreadID
	grantedAt time.Time
	lease     time.Duration
	shared    bool
}

type lockRequest struct {
	site   wire.SiteID
	thread wire.ThreadID
	shared bool
	// have is the replica version the requester reported holding, passed
	// through to the transfer source so it can ship a delta.
	have  uint64
	lease time.Duration
}

// newSyncThread starts the manager, optionally restoring surrogate state.
func newSyncThread(n *Node, restore *SyncState) (*syncThread, error) {
	port, err := n.ep.OpenPort(PortSync)
	if err != nil {
		return nil, err
	}
	aux, err := n.ep.OpenPort(PortSyncAux)
	if err != nil {
		return nil, err
	}
	s := &syncThread{
		node:        n,
		port:        port,
		aux:         aux,
		epoch:       1,
		locks:       make(map[wire.LockID]*syncLock),
		banned:      make(map[wire.ThreadID]string),
		pollWaiters: make(map[uint64]chan *wire.PollVersionReply),
		stopCh:      make(chan struct{}),
	}
	if restore != nil {
		s.restore(restore)
	}
	port.SetHandler(s.handle)
	aux.SetHandler(s.handleAux)
	s.sweepWG.Add(1)
	go s.leaseSweep()
	return s, nil
}

// stop terminates the sweep goroutine.
func (s *syncThread) stop() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.sweepWG.Wait()
}

// Epoch returns the manager's incarnation number.
func (s *syncThread) Epoch() uint32 { return s.epoch }

// getLock returns (creating if needed) a lock record — "determines if the
// lock exists and creates a Lock object if necessary".
func (s *syncThread) getLock(id wire.LockID) *syncLock {
	l, ok := s.locks[id]
	if !ok {
		l = &syncLock{
			id:      id,
			names:   make(map[string]bool),
			readers: make(map[wire.ThreadID]*holderInfo),
		}
		s.locks[id] = l
	}
	return l
}

// handle is the main dispatcher loop body of Figure 7.
func (s *syncThread) handle(m mnet.Message) {
	p, err := wire.Unmarshal(m.Data)
	if err != nil {
		s.node.log.Logf("sync", "bad message: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch msg := p.(type) {
	case *wire.AcquireLock:
		s.onAcquire(msg)
	case *wire.ReleaseLock:
		s.onRelease(msg)
	case *wire.RegisterReplica:
		s.onRegister(msg)
	default:
		s.node.log.Logf("sync", "unhandled %s on sync port", p.Kind())
	}
}

// handleAux routes probe replies.
func (s *syncThread) handleAux(m mnet.Message) {
	p, err := wire.Unmarshal(m.Data)
	if err != nil {
		return
	}
	switch msg := p.(type) {
	case *wire.PollVersionReply:
		s.pollMu.Lock()
		ch := s.pollWaiters[msg.Nonce]
		s.pollMu.Unlock()
		if ch != nil {
			select {
			case ch <- msg:
			default:
			}
		}
	case *wire.HeartbeatAck:
		// Liveness is established by the probe send being acknowledged at
		// the MNet level; the explicit ack needs no routing.
	default:
	}
}

// onAcquire implements the ACQUIRELOCK arm of Figure 7.
func (s *syncThread) onAcquire(msg *wire.AcquireLock) {
	if reason, isBanned := s.banned[msg.Thread]; isBanned {
		// "an application thread that fails in this manner is prevented
		// from making future requests."
		s.node.log.Logf("sync", "refusing banned thread %d: %s", msg.Thread, reason)
		nack := &wire.LockNack{Lock: msg.Lock, Thread: msg.Thread, Reason: reason}
		s.sendToClient(msg.Requester, nack)
		return
	}
	l := s.getLock(msg.Lock)
	lease := s.node.cfg.DefaultLease
	if msg.LeaseMillis > 0 {
		lease = time.Duration(msg.LeaseMillis) * time.Millisecond
	}
	l.queue = append(l.queue, &lockRequest{
		site:   msg.Requester,
		thread: msg.Thread,
		shared: msg.Shared,
		have:   msg.HaveVersion,
		lease:  lease,
	})
	s.tryGrant(l)
}

// onRelease implements the RELEASELOCK arm of Figure 7, with the Section 4
// refinement that the release carries the set of daemons holding the new
// version from push dissemination.
func (s *syncThread) onRelease(msg *wire.ReleaseLock) {
	l, ok := s.locks[msg.Lock]
	if !ok {
		return
	}
	switch {
	case l.holder != nil && l.holder.thread == msg.Thread:
		l.holder = nil
	case l.readers[msg.Thread] != nil:
		delete(l.readers, msg.Thread)
	default:
		// A stale release: the lock was broken while this thread held it.
		s.node.log.Logf("sync", "ignoring stale release of lock %d by thread %d", msg.Lock, msg.Thread)
		return
	}

	if !msg.Aborted && !msg.Shared {
		l.version = msg.NewVersion
		l.lastOwner = msg.Releaser
		up := msg.UpToDate.Clone()
		up.Add(msg.Releaser)
		l.upToDate = up
		s.node.log.Logf("sync", "lock %d released at v%d by site %d, up-to-date %s",
			msg.Lock, l.version, msg.Releaser, l.upToDate)
	}
	s.tryGrant(l)
}

// onRegister implements REGISTERREPLICA: startup and initialization.
func (s *syncThread) onRegister(msg *wire.RegisterReplica) {
	l := s.getLock(msg.Lock)
	l.sharers.Add(msg.Site)
	for _, name := range msg.Names {
		l.names[name] = true
	}
	if msg.Creator && l.version == 0 {
		l.version = 1
		l.lastOwner = msg.Site
		l.upToDate = wire.NewSiteSet(msg.Site)
		s.node.log.Logf("sync", "lock %d seeded at v1 by creator site %d", msg.Lock, msg.Site)
	}
}

// tryGrant hands the lock to the next compatible queued requests.
func (s *syncThread) tryGrant(l *syncLock) {
	for len(l.queue) > 0 {
		if l.holder != nil {
			return
		}
		head := l.queue[0]
		if head.shared {
			l.queue = l.queue[1:]
			if s.grantOne(l, head) {
				l.readers[head.thread] = &holderInfo{
					site: head.site, thread: head.thread,
					grantedAt: time.Now(), lease: head.lease, shared: true,
				}
			}
			continue
		}
		if len(l.readers) > 0 {
			return
		}
		l.queue = l.queue[1:]
		if s.grantOne(l, head) {
			l.holder = &holderInfo{
				site: head.site, thread: head.thread,
				grantedAt: time.Now(), lease: head.lease,
			}
			return
		}
		// Grant undeliverable (requester died): fall through to the next
		// queued request.
	}
}

// grantOne sends a GRANT and, when needed, directs the transfer of the
// newest replicas to the grantee. It reports whether the grant was
// delivered.
func (s *syncThread) grantOne(l *syncLock, req *lockRequest) bool {
	flag := wire.VersionOK
	if l.version > 0 && !l.upToDate.Contains(req.site) {
		// "The synchronization thread relies on the method
		// lastLockOwner() to determine the value of the flag" — here
		// generalized to the up-to-date set, which always contains the
		// last owner.
		flag = wire.NeedNewVersion
	}
	g := &wire.Grant{
		Lock:     l.id,
		Thread:   req.thread,
		Version:  l.version,
		Flag:     flag,
		Shared:   req.shared,
		Epoch:    s.epoch,
		Sharers:  l.sharers.Clone(),
		UpToDate: l.upToDate.Clone(),
	}
	if !s.sendToClient(req.site, g) {
		s.node.log.Logf("fault", "grant of lock %d undeliverable to site %d; skipping requester", l.id, req.site)
		return false
	}
	s.node.log.Logf("sync", "granted lock %d v%d to thread %d at site %d (%s)",
		l.id, l.version, req.thread, req.site, flag)

	if flag == wire.NeedNewVersion {
		s.directTransfer(l, req)
	}
	return true
}

// directTransfer orders the daemon holding the newest replicas to send a
// copy to the grantee's site; on failure it runs the Section 4 recovery:
// poll the remaining daemons for "the most recent version of the replicas
// available" and, if only an older version survives, downgrade the grant.
func (s *syncThread) directTransfer(l *syncLock, req *lockRequest) {
	src := l.lastOwner
	if err := s.sendDirective(l, src, req.site, req.have); err == nil {
		return
	}
	s.node.log.Logf("fault", "transfer directive for lock %d to daemon %d timed out; polling daemons", l.id, src)
	s.recoverTransfer(l, req, src)
}

// sendDirective sends one TRANSFERREPLICA to a daemon. destVersion is the
// version the destination reported holding, letting the source offer a
// delta covering just the gap.
func (s *syncThread) sendDirective(l *syncLock, src wire.SiteID, dest wire.SiteID, destVersion uint64) error {
	addr, err := s.node.daemonAddr(src)
	if err != nil {
		return err
	}
	dir := &wire.TransferReplica{
		Lock:        l.id,
		Dest:        dest,
		Version:     l.version,
		DestVersion: destVersion,
		RequestID:   s.nextNonce.Add(1),
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.node.cfg.RequestTimeout)
	defer cancel()
	return s.aux.Send(ctx, addr, wire.Marshal(dir))
}

// recoverTransfer handles a dead transfer source.
func (s *syncThread) recoverTransfer(l *syncLock, req *lockRequest, deadSrc wire.SiteID) {
	best, found := s.pollDaemons(l, deadSrc)
	if !found {
		// No surviving copy anywhere: tell the grantee to proceed with
		// whatever it has.
		s.node.log.Logf("fault", "no surviving copy of lock %d replicas; weakening to local state at site %d", l.id, req.site)
		l.lastOwner = req.site
		l.upToDate = wire.NewSiteSet(req.site)
		s.sendRevisedGrant(l, req, l.version, wire.VersionOK)
		return
	}

	if best.Version < l.version {
		s.node.log.Logf("fault", "newest copy of lock %d lost; falling back to v%d at site %d (weakened consistency)",
			l.id, best.Version, best.Site)
	}
	l.version = best.Version
	l.lastOwner = best.Site
	l.upToDate = wire.NewSiteSet(best.Site)

	if best.Site == req.site {
		// The grantee itself holds the best surviving copy.
		s.sendRevisedGrant(l, req, best.Version, wire.VersionOK)
		return
	}
	s.sendRevisedGrant(l, req, best.Version, wire.NeedNewVersion)
	if err := s.sendDirective(l, best.Site, req.site, req.have); err != nil {
		// The fallback daemon died too; recurse on the remaining set.
		s.node.log.Logf("fault", "fallback transfer source %d for lock %d also failed", best.Site, l.id)
		s.recoverTransfer(l, req, best.Site)
	}
}

// sendRevisedGrant supersedes an earlier grant after failure recovery.
func (s *syncThread) sendRevisedGrant(l *syncLock, req *lockRequest, version uint64, flag wire.VersionFlag) {
	g := &wire.Grant{
		Lock:     l.id,
		Thread:   req.thread,
		Version:  version,
		Flag:     flag,
		Shared:   req.shared,
		Epoch:    s.epoch,
		Sharers:  l.sharers.Clone(),
		UpToDate: l.upToDate.Clone(),
		Revised:  true,
	}
	s.sendToClient(req.site, g)
}

// pollDaemons queries every registered daemon except the known-dead one
// for its local version, returning the best reply.
func (s *syncThread) pollDaemons(l *syncLock, exclude wire.SiteID) (*wire.PollVersionReply, bool) {
	nonce := s.nextNonce.Add(1)
	ch := make(chan *wire.PollVersionReply, 64)
	s.pollMu.Lock()
	s.pollWaiters[nonce] = ch
	s.pollMu.Unlock()
	defer func() {
		s.pollMu.Lock()
		delete(s.pollWaiters, nonce)
		s.pollMu.Unlock()
	}()

	poll := wire.Marshal(&wire.PollVersion{Lock: l.id, Nonce: nonce})
	asked := 0
	for _, site := range l.sharers.Sites() {
		if site == exclude {
			continue
		}
		addr, err := s.node.daemonAddr(site)
		if err != nil {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), s.node.cfg.RequestTimeout)
		err = s.aux.Send(ctx, addr, poll)
		cancel()
		if err != nil {
			s.node.log.Logf("fault", "poll of daemon %d failed: %v", site, err)
			continue
		}
		asked++
	}

	var best *wire.PollVersionReply
	deadline := time.After(s.node.cfg.RequestTimeout)
	for got := 0; got < asked; {
		select {
		case r := <-ch:
			got++
			if r.HasData && (best == nil || r.Version > best.Version) {
				best = r
			}
		case <-deadline:
			got = asked
		}
	}
	return best, best != nil
}

// sendToClient delivers a message to a site's client port, reporting
// success. A failed send is the failure-detection signal for requesters.
func (s *syncThread) sendToClient(site wire.SiteID, p wire.Payload) bool {
	addr, err := s.node.clientAddr(site)
	if err != nil {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.node.cfg.RequestTimeout)
	defer cancel()
	if err := s.port.Send(ctx, addr, wire.Marshal(p)); err != nil {
		return false
	}
	return true
}

// leaseSweep periodically scans held locks for expired leases: "The
// synchronization thread can periodically peruse its list of held locks to
// determine if any threads are holding locks for an extraordinary amount
// of time and therefore a candidate for being a failed thread."
func (s *syncThread) leaseSweep() {
	defer s.sweepWG.Done()
	t := time.NewTicker(s.node.cfg.LeaseSweep)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.sweepOnce()
		case <-s.stopCh:
			return
		}
	}
}

// sweepOnce checks every held lock once.
func (s *syncThread) sweepOnce() {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := time.Now()
	for _, l := range s.locks {
		if h := l.holder; h != nil && now.Sub(h.grantedAt) > h.lease {
			s.checkHolder(l, h, false)
		}
		for _, h := range l.readers {
			if now.Sub(h.grantedAt) > h.lease {
				s.checkHolder(l, h, true)
			}
		}
	}
}

// checkHolder confirms a lease-expiry suspicion with a heartbeat and
// breaks the lock if the holder is dead.
func (s *syncThread) checkHolder(l *syncLock, h *holderInfo, shared bool) {
	addr, err := s.node.daemonAddr(h.site)
	if err != nil {
		return
	}
	hb := wire.Marshal(&wire.Heartbeat{Nonce: s.nextNonce.Add(1)})
	ctx, cancel := context.WithTimeout(context.Background(), s.node.cfg.RequestTimeout)
	err = s.aux.Send(ctx, addr, hb)
	cancel()
	if err == nil {
		// Alive but slow: extend one more lease rather than break a
		// healthy hold.
		h.grantedAt = time.Now()
		s.node.log.Logf("sync", "lock %d holder %d over lease but alive; extended", l.id, h.thread)
		return
	}
	// "the synchronization thread can assume the application thread has
	// failed ... the synchronization thread can simply break the lock and
	// give it to the next application thread that desires it."
	s.banned[h.thread] = fmt.Sprintf("lease expired on lock %d and heartbeat to site %d failed", l.id, h.site)
	if shared {
		delete(l.readers, h.thread)
	} else {
		l.holder = nil
	}
	s.node.log.Logf("fault", "broke lock %d held by dead thread %d at site %d", l.id, h.thread, h.site)
	s.tryGrant(l)
}

// Banned reports whether a thread has been banned (for tests and tools).
func (s *syncThread) Banned(t wire.ThreadID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.banned[t]
	return ok
}
