package core

import (
	"sync"

	"mocha/internal/obs"
	"mocha/internal/wire"
)

// syncShard is one slice of the synchronization thread's lock table. The
// shard mutex only guards table membership (lookup, create, collect);
// per-lock protocol state is serialized by each syncLock's own mutex, so
// traffic on one lock never contends with another lock's transitions even
// within a shard. Lock order is shard.mu before syncLock.mu, and neither
// is ever held across network I/O.
type syncShard struct {
	mu    sync.Mutex
	locks map[wire.LockID]*syncLock
}

// newShards allocates an n-way sharded lock table.
func newShards(n int) []*syncShard {
	if n < 1 {
		n = 1
	}
	shards := make([]*syncShard, n)
	for i := range shards {
		shards[i] = &syncShard{locks: make(map[wire.LockID]*syncLock)}
	}
	return shards
}

// shardFor maps a lock ID to its shard.
func (s *syncThread) shardFor(id wire.LockID) *syncShard {
	return s.shards[uint32(id)%uint32(len(s.shards))]
}

// lookupLock returns the record for a lock, or nil if no daemon has ever
// registered it. Acquires and releases use this: they never create
// records ("getLock creates a syncLock for any LockID an acquirer names"
// was the unbounded-growth bug this replaces).
func (s *syncThread) lookupLock(id wire.LockID) *syncLock {
	sh := s.shardFor(id)
	sh.mu.Lock()
	l := sh.locks[id]
	sh.mu.Unlock()
	return l
}

// ensureLock returns the record for a lock, creating it if necessary —
// "determines if the lock exists and creates a Lock object if necessary".
// Only registration (and surrogate restore, handoff install, or standby
// promotion) may create records.
func (s *syncThread) ensureLock(id wire.LockID) *syncLock {
	l, _ := s.ensureLockCreated(id)
	return l
}

// ensureLockCreated is ensureLock plus a report of whether this call
// created the record — home placement uses it to record a HistHome event
// and bump the per-home lock gauge exactly once per record.
func (s *syncThread) ensureLockCreated(id wire.LockID) (*syncLock, bool) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	l, ok := sh.locks[id]
	if !ok {
		l = &syncLock{
			id:      id,
			names:   make(map[string]bool),
			readers: make(map[wire.ThreadID]*holderInfo),
		}
		sh.locks[id] = l
		s.node.obs().GaugeAdd(obs.GSyncLocks, 1)
	}
	sh.mu.Unlock()
	return l, !ok
}

// lockCount reports how many lock records exist across all shards (for
// tests).
func (s *syncThread) lockCount() int {
	total := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		total += len(sh.locks)
		sh.mu.Unlock()
	}
	return total
}
