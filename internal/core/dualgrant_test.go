package core

import (
	"errors"
	"strings"
	"testing"
	"time"

	"mocha/internal/check"
	"mocha/internal/eventlog"
	"mocha/internal/marshal"
	"mocha/internal/mnet"
	"mocha/internal/netsim"
	"mocha/internal/transport"
	"mocha/internal/wire"
)

// provokeDoubleGrant re-introduces a double-grant bug via the
// debugIgnoreHolder switch and drives a two-site cluster into it: site 1's
// thread acquires exclusively, then site 2's acquire is granted while the
// first hold is still live. Every protocol event flows into sink. The
// cluster is built by hand (not newTestCluster) because the shared harness
// fails any test whose history violates entry consistency, which is the
// callers' point.
func provokeDoubleGrant(t *testing.T, sink HistorySink) {
	t.Helper()
	debugIgnoreHolder = true
	defer func() { debugIgnoreHolder = false }()

	sn := transport.NewSimNetwork(netsim.Config{Profile: netsim.Perfect(), Seed: 5})
	defer func() { _ = sn.Close() }()

	const n = 2
	directory := make(map[wire.SiteID]string, n)
	stacks := make(map[wire.SiteID]*transport.SimStack, n)
	for i := 1; i <= n; i++ {
		stack, err := sn.NewStack(netsim.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		stacks[wire.SiteID(i)] = stack
		directory[wire.SiteID(i)] = stack.Datagram().LocalAddr()
	}
	nodes := make(map[wire.SiteID]*Node, n)
	for i := 1; i <= n; i++ {
		site := wire.SiteID(i)
		ep := mnet.NewEndpoint(stacks[site].Datagram(), mnet.Config{RTO: 25 * time.Millisecond, MaxRetries: 4})
		node, err := NewNode(Config{
			Site:            site,
			Endpoint:        ep,
			Stack:           stacks[site],
			Directory:       directory,
			IsHome:          site == wire.HomeSite,
			RequestTimeout:  2 * time.Second,
			TransferTimeout: 5 * time.Second,
			DefaultLease:    30 * time.Second,
			LeaseSweep:      50 * time.Millisecond,
			Log:             eventlog.New(1 << 14),
			History:         sink,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[site] = node
	}
	defer func() {
		for _, node := range nodes {
			_ = node.Close()
		}
	}()

	ctx := tctx(t)
	hA := nodes[1].NewHandle("first")
	rlA, _ := mustCreate(t, hA, 50, "dual", []int32{0}, n)
	settle()
	if err := rlA.Lock(ctx); err != nil {
		t.Fatal(err)
	}

	// With the bug re-introduced, site 2's acquire is granted while site 1's
	// thread still holds the lock exclusively.
	hB := nodes[2].NewHandle("second")
	rB, err := nodes[2].AttachReplica("dual", marshal.Ints(nil))
	if err != nil {
		t.Fatal(err)
	}
	rlB := hB.ReplicaLock(50)
	if err := rlB.Associate(ctx, rB); err != nil {
		t.Fatal(err)
	}
	if err := rlB.Lock(ctx); err != nil {
		t.Fatalf("buggy grant path did not grant: %v", err)
	}
}

// TestCheckerCatchesDoubleGrant asserts the offline history checker flags
// a seeded double-grant run with ErrDualHolder — the regression fixture
// proving the oracle would catch this defect class if it ever crept back
// in.
func TestCheckerCatchesDoubleGrant(t *testing.T) {
	rec := check.NewRecorder(0, nil)
	provokeDoubleGrant(t, rec)

	v := check.Check(rec.Events())
	if v == nil {
		t.Fatal("checker passed a double-grant history")
	}
	if !errors.Is(v, check.ErrDualHolder) {
		t.Fatalf("checker flagged %v, want ErrDualHolder", v)
	}
}

// TestMonitorCatchesSeededDoubleGrantOnline runs the same seeded violation
// with the online monitor in the live event stream: the breach must latch
// as it happens — no end-of-run pass — and the counterexample must carry
// the offending window and the registered one-command replay handle.
func TestMonitorCatchesSeededDoubleGrantOnline(t *testing.T) {
	const replay = "go test ./internal/core -run TestMonitorCatchesSeededDoubleGrantOnline"
	mon := check.NewMonitor(check.DefaultWindow)
	mon.SetReplay(replay)
	rec := check.NewRecorder(0, nil)
	provokeDoubleGrant(t, check.MultiSink(rec, mon))

	cx := mon.Err()
	if cx == nil {
		t.Fatal("online monitor missed the seeded double grant")
	}
	if !errors.Is(cx, check.ErrDualHolder) {
		t.Fatalf("monitor latched %v, want ErrDualHolder", cx.Violation)
	}
	if cx.Replay != replay {
		t.Fatalf("counterexample replay = %q, want the registered command", cx.Replay)
	}
	if len(cx.Window) == 0 {
		t.Fatal("counterexample carries no event window")
	}
	// The window ends at the violating event: the second GRANT of the lock
	// both threads were given.
	last := cx.Window[len(cx.Window)-1]
	if last.Kind != wire.HistGrant || last.Lock != 50 {
		t.Fatalf("window ends at %v, want the violating grant of lock 50", last)
	}
	if !strings.Contains(cx.Error(), "replay: "+replay) {
		t.Fatalf("rendered counterexample lacks the replay line:\n%s", cx)
	}
	// The full recorded history agrees with the online verdict.
	if v := check.Check(rec.Events()); !errors.Is(v, check.ErrDualHolder) {
		t.Fatalf("offline checker disagrees with the monitor: %v", v)
	}
}
