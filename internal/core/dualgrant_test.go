package core

import (
	"errors"
	"testing"
	"time"

	"mocha/internal/check"
	"mocha/internal/eventlog"
	"mocha/internal/marshal"
	"mocha/internal/mnet"
	"mocha/internal/netsim"
	"mocha/internal/transport"
	"mocha/internal/wire"
)

// TestCheckerCatchesDoubleGrant re-introduces a double-grant bug via the
// debugIgnoreHolder switch and asserts the history checker flags the run
// with ErrDualHolder — the regression fixture proving the oracle would
// catch this defect class if it ever crept back in. The cluster is built by
// hand (not newTestCluster) because the shared harness fails any test whose
// history violates entry consistency, which is this test's point.
func TestCheckerCatchesDoubleGrant(t *testing.T) {
	debugIgnoreHolder = true
	defer func() { debugIgnoreHolder = false }()

	sn := transport.NewSimNetwork(netsim.Config{Profile: netsim.Perfect(), Seed: 5})
	defer func() { _ = sn.Close() }()
	rec := check.NewRecorder(0, sn.Clock())

	const n = 2
	directory := make(map[wire.SiteID]string, n)
	stacks := make(map[wire.SiteID]*transport.SimStack, n)
	for i := 1; i <= n; i++ {
		stack, err := sn.NewStack(netsim.NodeID(i))
		if err != nil {
			t.Fatal(err)
		}
		stacks[wire.SiteID(i)] = stack
		directory[wire.SiteID(i)] = stack.Datagram().LocalAddr()
	}
	nodes := make(map[wire.SiteID]*Node, n)
	for i := 1; i <= n; i++ {
		site := wire.SiteID(i)
		ep := mnet.NewEndpoint(stacks[site].Datagram(), mnet.Config{RTO: 25 * time.Millisecond, MaxRetries: 4})
		node, err := NewNode(Config{
			Site:            site,
			Endpoint:        ep,
			Stack:           stacks[site],
			Directory:       directory,
			IsHome:          site == wire.HomeSite,
			RequestTimeout:  2 * time.Second,
			TransferTimeout: 5 * time.Second,
			DefaultLease:    30 * time.Second,
			LeaseSweep:      50 * time.Millisecond,
			Log:             eventlog.New(1 << 14),
			History:         rec,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[site] = node
	}
	defer func() {
		for _, node := range nodes {
			_ = node.Close()
		}
	}()

	ctx := tctx(t)
	hA := nodes[1].NewHandle("first")
	rlA, _ := mustCreate(t, hA, 50, "dual", []int32{0}, n)
	settle()
	if err := rlA.Lock(ctx); err != nil {
		t.Fatal(err)
	}

	// With the bug re-introduced, site 2's acquire is granted while site 1's
	// thread still holds the lock exclusively.
	hB := nodes[2].NewHandle("second")
	rB, err := nodes[2].AttachReplica("dual", marshal.Ints(nil))
	if err != nil {
		t.Fatal(err)
	}
	rlB := hB.ReplicaLock(50)
	if err := rlB.Associate(ctx, rB); err != nil {
		t.Fatal(err)
	}
	if err := rlB.Lock(ctx); err != nil {
		t.Fatalf("buggy grant path did not grant: %v", err)
	}

	v := check.Check(rec.Events())
	if v == nil {
		t.Fatal("checker passed a double-grant history")
	}
	if !errors.Is(v, check.ErrDualHolder) {
		t.Fatalf("checker flagged %v, want ErrDualHolder", v)
	}
}
