package core

import (
	"testing"
	"time"

	"mocha/internal/marshal"
	"mocha/internal/wire"
)

// TestDeltaTransferEndToEnd ping-pongs an exclusive lock between two sites
// with small writes into a large replica: after the first full transfer
// seeds both sides, every acquisition-driven transfer must go out in delta
// encoding, and the delta bytes must be far below the full-copy bytes.
func TestDeltaTransferEndToEnd(t *testing.T) {
	opts := defaultOpts()
	opts.delta = true
	tc := newTestCluster(t, 2, opts)
	ctx := tctx(t)

	data := make([]int32, 16384) // 64 KiB marshaled
	h1 := tc.node(1).NewHandle("w1")
	rl1, r1 := mustCreate(t, h1, 3, "big", data, 2)
	h2 := tc.node(2).NewHandle("w2")
	rl2, r2 := mustAttach(t, tc.node(2).NewHandle("r"), 3, "big")
	_ = h2
	settle()

	// Round 0: site 2's first acquisition has no base; it must get a full
	// transfer.
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if got := len(r2.Content().IntsData()); got != len(data) {
		t.Fatalf("site 2 got %d ints, want %d", got, len(data))
	}
	if err := r2.Content().SetIntAt(7, 100); err != nil {
		t.Fatal(err)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if got := tc.node(1).DeltaTransfersSent() + tc.node(2).DeltaTransfersSent(); got != 0 {
		t.Fatalf("first round already sent %d deltas, want 0", got)
	}

	// Subsequent rounds alternate single-element writes; each transfer
	// bridges exactly one version and must ship as a delta.
	locks := map[wire.SiteID]*ReplicaLock{1: rl1, 2: rl2}
	reps := map[wire.SiteID]*Replica{1: r1, 2: r2}
	var turn wire.SiteID = 1
	for round := 1; round <= 6; round++ {
		rl, r := locks[turn], reps[turn]
		if err := rl.Lock(ctx); err != nil {
			t.Fatalf("round %d site %d: %v", round, turn, err)
		}
		if got := r.Content().IntsData()[7]; got != int32(99+round) {
			t.Fatalf("round %d site %d sees value %d, want %d", round, turn, got, 99+round)
		}
		// Site 1's content was handed out raw above (IntsData), so its
		// captures exercise the byte-diff fallback; site 2 stays on the
		// trusted tracked-range path.
		if turn == 1 {
			r.Content().IntsData()[7] = int32(100 + round)
		} else if err := r.Content().SetIntAt(7, int32(100+round)); err != nil {
			t.Fatal(err)
		}
		if err := rl.Unlock(ctx); err != nil {
			t.Fatalf("round %d site %d unlock: %v", round, turn, err)
		}
		turn = 3 - turn
	}

	deltas := tc.node(1).DeltaTransfersSent() + tc.node(2).DeltaTransfersSent()
	if deltas != 6 {
		t.Fatalf("sent %d delta transfers over 6 ping-pong rounds, want 6", deltas)
	}
	if fb := tc.node(1).DeltaFallbacks() + tc.node(2).DeltaFallbacks(); fb != 0 {
		t.Fatalf("%d delta fallbacks on an unbroken chain, want 0", fb)
	}
	// Bytes on the wire: 6 deltas of a few hundred bytes vs 64 KiB fulls.
	bytes := tc.node(1).ReplicaBytesSent() + tc.node(2).ReplicaBytesSent()
	fullSize := int64(len(data)*4 + 5)
	if bytes > 2*fullSize {
		t.Fatalf("total replica bytes %d; deltas should keep this near one full copy (%d)", bytes, fullSize)
	}
}

// TestDeltaDisabledBaseline pins the default-off paper baseline: with
// DeltaTransfer unset the same workload must never emit a delta frame.
func TestDeltaDisabledBaseline(t *testing.T) {
	tc := newTestCluster(t, 2, defaultOpts())
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("w1")
	rl1, r1 := mustCreate(t, h1, 3, "v", make([]int32, 1024), 2)
	rl2, r2 := mustAttach(t, tc.node(2).NewHandle("r"), 3, "v")
	settle()

	locks := map[wire.SiteID]*ReplicaLock{1: rl1, 2: rl2}
	reps := map[wire.SiteID]*Replica{1: r1, 2: r2}
	var turn wire.SiteID = 2
	for round := 0; round < 4; round++ {
		rl, r := locks[turn], reps[turn]
		if err := rl.Lock(ctx); err != nil {
			t.Fatal(err)
		}
		if err := r.Content().SetIntAt(0, int32(round)); err != nil {
			t.Fatal(err)
		}
		if err := rl.Unlock(ctx); err != nil {
			t.Fatal(err)
		}
		turn = 3 - turn
	}
	if got := tc.node(1).DeltaTransfersSent() + tc.node(2).DeltaTransfersSent(); got != 0 {
		t.Fatalf("baseline sent %d deltas, want 0", got)
	}
	if got := tc.node(1).FullTransfersSent() + tc.node(2).FullTransfersSent(); got == 0 {
		t.Fatal("baseline sent no full transfers at all")
	}
}

// TestDeltaFallbackEvictedLog bounds the update log at depth 2 and lets a
// site fall 5 versions behind: its next acquisition cannot be served from
// the chain and must arrive as a full copy — with the right data.
func TestDeltaFallbackEvictedLog(t *testing.T) {
	opts := defaultOpts()
	opts.delta = true
	opts.deltaDepth = 2
	tc := newTestCluster(t, 2, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("w1")
	rl1, r1 := mustCreate(t, h1, 4, "v", make([]int32, 4096), 2)
	rl2, r2 := mustAttach(t, tc.node(2).NewHandle("r"), 4, "v")
	settle()

	// Site 2 seeds itself at the current version.
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	// Site 1 produces 5 consecutive versions; the depth-2 log forgets the
	// early steps.
	for i := 0; i < 5; i++ {
		if err := rl1.Lock(ctx); err != nil {
			t.Fatal(err)
		}
		if err := r1.Content().SetIntAt(i, int32(1000+i)); err != nil {
			t.Fatal(err)
		}
		if err := rl1.Unlock(ctx); err != nil {
			t.Fatal(err)
		}
	}

	before := tc.node(1).FullTransfersSent()
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if got := r2.Content().IntsData()[i]; got != int32(1000+i) {
			t.Fatalf("site 2 index %d = %d, want %d", i, got, 1000+i)
		}
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if got := tc.node(1).FullTransfersSent() - before; got != 1 {
		t.Fatalf("stale site got %d full transfers, want 1 (chain evicted)", got)
	}
}

// TestDeltaRejectionPaths drives applyDelta directly with deltas a
// receiver must refuse — unavailable base version, corrupted patch — and
// verifies refusal leaves the local state untouched and a full update
// still lands afterwards.
func TestDeltaRejectionPaths(t *testing.T) {
	opts := defaultOpts()
	opts.delta = true
	tc := newTestCluster(t, 2, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("w")
	rl1, r1 := mustCreate(t, h1, 6, "v", []int32{1, 2, 3, 4}, 2)
	rl2, _ := mustAttach(t, tc.node(2).NewHandle("r"), 6, "v")
	settle()

	// Seed site 2 at v1.
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	n2 := tc.node(2)
	st := n2.getLockLocal(6)
	st.mu.Lock()
	baseVersion := st.version
	st.mu.Unlock()

	// A delta from a version site 2 never held must be refused.
	badBase := &wire.ReplicaDelta{
		Lock: 6, From: 1, Version: baseVersion + 5, FromVersion: baseVersion + 4,
		Replicas: []wire.DeltaPayload{{Name: "v", NewLen: 21, Checksum: 1, Ops: nil}},
	}
	if err := n2.applyDelta(badBase); err == nil {
		t.Fatal("delta against unknown base version accepted")
	}

	// A patch whose checksum does not match the sender's blob must be
	// refused before any state changes.
	goodBase, err := n2.cfg.Codec.Marshal(marshal.Ints([]int32{1, 2, 3, 4}))
	if err != nil {
		t.Fatal(err)
	}
	corrupt := &wire.ReplicaDelta{
		Lock: 6, From: 1, Version: baseVersion + 1, FromVersion: baseVersion,
		Replicas: []wire.DeltaPayload{{
			Name: "v", NewLen: uint32(len(goodBase)),
			Checksum: marshal.Checksum(goodBase) + 1, // deliberately wrong
			Ops:      []wire.PatchOp{{Off: 5, Data: []byte{0xFF}}},
		}},
	}
	if err := n2.applyDelta(corrupt); err == nil {
		t.Fatal("corrupted delta accepted")
	}
	st.mu.Lock()
	if st.version != baseVersion {
		st.mu.Unlock()
		t.Fatalf("rejected delta moved version to %d", st.version)
	}
	st.mu.Unlock()

	// A stale delta is dropped without error, like a stale full update.
	stale := &wire.ReplicaDelta{Lock: 6, From: 1, Version: baseVersion, FromVersion: baseVersion - 1}
	if err := n2.applyDelta(stale); err != nil {
		t.Fatalf("stale delta errored: %v", err)
	}

	// The protocol recovers: a real release still reaches site 2 in full
	// or delta form.
	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := r1.Content().SetIntAt(0, 42); err != nil {
		t.Fatal(err)
	}
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	rl2st := n2.getLockLocal(6)
	rl2st.mu.Lock()
	r, ok := rl2st.byName["v"]
	rl2st.mu.Unlock()
	if !ok || r.Content().IntsData()[0] != 42 {
		t.Fatal("site 2 did not converge after rejected deltas")
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDeltaNackTriggersFullResend wrecks the receiver's delta base by hand
// (simulating divergence the checksum must catch) and verifies the wire
// protocol's nack/fallback loop converges on the sender's state.
func TestDeltaNackTriggersFullResend(t *testing.T) {
	opts := defaultOpts()
	opts.delta = true
	tc := newTestCluster(t, 2, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("w")
	rl1, r1 := mustCreate(t, h1, 8, "v", make([]int32, 2048), 2)
	rl2, r2 := mustAttach(t, tc.node(2).NewHandle("r"), 8, "v")
	settle()

	// Seed site 2, then pull the lock back to site 1: serving that
	// transfer leaves site 2 with a marshaled cache of the version it
	// last held — the base the next delta will patch.
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}

	// Corrupt site 2's cached base behind the protocol's back: the next
	// delta patches against garbage, fails the checksum, and must be
	// nacked and replaced by a full copy.
	st2 := tc.node(2).getLockLocal(8)
	st2.mu.Lock()
	if st2.cachedPayloads == nil {
		st2.mu.Unlock()
		t.Fatal("site 2 has no cached base to corrupt")
	}
	blob := st2.cachedPayloads[0].Data
	for i := headerBytes; i < len(blob); i++ {
		blob[i] ^= 0x5A
	}
	st2.mu.Unlock()

	if err := r1.Content().SetIntAt(9, 77); err != nil {
		t.Fatal(err)
	}
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if got := r2.Content().IntsData()[9]; got != 77 {
		t.Fatalf("site 2 value %d after nacked delta, want 77", got)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if fb := tc.node(1).DeltaFallbacks(); fb == 0 {
		t.Fatal("corrupted base produced no delta fallback")
	}
}

// headerBytes mirrors the marshaled-blob header so the corruption test
// skips the kind/count prefix.
const headerBytes = 5

// TestAdaptiveThresholdBoundary pins useStream's size policy: at exactly
// the threshold the mnet path must win (the stream only pays off above
// it), and an unset threshold must default to 2048.
func TestAdaptiveThresholdBoundary(t *testing.T) {
	opts := defaultOpts()
	opts.mode = ModeAdaptive
	tc := newTestCluster(t, 2, opts)

	x := tc.node(1).xfer
	const def = 2048 // withDefaults fills AdaptiveThreshold for the unset config
	if tc.node(1).cfg.AdaptiveThreshold != def {
		t.Fatalf("unset threshold defaulted to %d, want %d", tc.node(1).cfg.AdaptiveThreshold, def)
	}
	cases := []struct {
		size int
		want bool
	}{
		{0, false},
		{def - 1, false},
		{def, false}, // boundary: strictly greater-than switches to the stream
		{def + 1, true},
	}
	for _, c := range cases {
		if got := x.useStream(c.size); got != c.want {
			t.Errorf("useStream(%d) = %v, want %v", c.size, got, c.want)
		}
	}
}

// TestStreamCacheEviction exercises the reuse cache's lifecycle: a cached
// connection appears after the first transfer, is evicted (not just
// closed) when the destination dies, and Node.Close drops every entry.
func TestStreamCacheEviction(t *testing.T) {
	opts := defaultOpts()
	opts.mode = ModeHybrid
	opts.reuse = true
	opts.xferTO = 2 * time.Second
	tc := newTestCluster(t, 3, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("w")
	mustCreate(t, h1, 2, "v", make([]int32, 512), 3)
	for i := wire.SiteID(2); i <= 3; i++ {
		mustAttach(t, tc.node(i).NewHandle("r"), 2, "v")
	}
	settle()

	home := tc.node(1)
	version, payloads, err := home.PreparePush(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := home.PushPayloads(ctx, 2, version, payloads, []wire.SiteID{2, 3}); err != nil {
		t.Fatal(err)
	}
	if got := home.xfer.cachedConnCount(); got != 2 {
		t.Fatalf("cached %d connections after pushing to 2 sites, want 2", got)
	}

	// Kill site 2: the next push must fail AND evict its cache slot, so a
	// dead destination does not pin a broken entry forever.
	tc.kill(2)
	version, payloads, err = home.PreparePush(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := home.PushPayloads(ctx, 2, version, payloads, []wire.SiteID{2}); err == nil {
		t.Fatal("push to killed site succeeded")
	}
	if got := home.xfer.cachedConnCount(); got != 1 {
		t.Fatalf("cache holds %d entries after failed push, want 1 (dead site evicted)", got)
	}

	// Close tears down the rest.
	if err := home.Close(); err != nil {
		t.Fatal(err)
	}
	if got := home.xfer.cachedConnCount(); got != 0 {
		t.Fatalf("cache holds %d entries after Close, want 0", got)
	}
}
