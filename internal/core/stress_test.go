package core

import (
	"fmt"
	"sync"
	"testing"

	"mocha/internal/marshal"
	"mocha/internal/wire"
)

// TestStressManyLocksManySites drives several independent locks from every
// site concurrently, mixing exclusive increments with shared reads, and
// verifies no update is lost and no reader observes a torn value.
func TestStressManyLocksManySites(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		sites      = 4
		locks      = 3
		increments = 6
	)
	tc := newTestCluster(t, sites, defaultOpts())
	ctx := tctx(t)

	// Home creates every counter; counters carry (value, value*2) so a
	// torn read is detectable.
	h1 := tc.node(1).NewHandle("creator")
	creatorLocks := make([]*ReplicaLock, locks)
	for l := 0; l < locks; l++ {
		rl, _ := mustCreate(t, h1, wire.LockID(20+l), fmt.Sprintf("ctr%d", l), []int32{0, 0}, sites)
		creatorLocks[l] = rl
	}
	settle()

	var wg sync.WaitGroup
	errCh := make(chan error, sites*locks)
	for s := 1; s <= sites; s++ {
		site := wire.SiteID(s)
		for l := 0; l < locks; l++ {
			l := l
			wg.Add(1)
			go func() {
				defer wg.Done()
				h := tc.node(site).NewHandle(fmt.Sprintf("w%d-%d", site, l))
				r, err := tc.node(site).AttachReplica(fmt.Sprintf("ctr%d", l), marshal.Ints(nil))
				if err != nil {
					errCh <- err
					return
				}
				rl := h.ReplicaLock(wire.LockID(20 + l))
				if err := rl.Associate(ctx, r); err != nil {
					errCh <- err
					return
				}
				for i := 0; i < increments; i++ {
					// Exclusive increment.
					if err := rl.Lock(ctx); err != nil {
						errCh <- fmt.Errorf("site %d lock %d: %w", site, l, err)
						return
					}
					data := r.Content().IntsData()
					data[0]++
					data[1] = data[0] * 2
					if err := rl.Unlock(ctx); err != nil {
						errCh <- err
						return
					}
					// Shared read: the invariant must hold.
					if err := rl.LockShared(ctx); err != nil {
						errCh <- err
						return
					}
					d := r.Content().IntsData()
					if d[1] != d[0]*2 {
						errCh <- fmt.Errorf("torn read at site %d lock %d: %v", site, l, d)
						_ = rl.Unlock(ctx)
						return
					}
					if err := rl.Unlock(ctx); err != nil {
						errCh <- err
						return
					}
				}
				errCh <- nil
			}()
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	for l, rl := range creatorLocks {
		if err := rl.Lock(ctx); err != nil {
			t.Fatal(err)
		}
		replicas := rl.Replicas()
		got := replicas[0].Content().IntsData()
		want := int32(sites * increments)
		if got[0] != want || got[1] != want*2 {
			t.Fatalf("lock %d: final = %v, want [%d %d]", l, got, want, want*2)
		}
		if err := rl.Unlock(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStressDisseminationUnderContention mixes UR>1 releases with
// concurrent acquisitions from pushed sites.
func TestStressDisseminationUnderContention(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const sites = 4
	tc := newTestCluster(t, sites, defaultOpts())
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rl1, _ := mustCreate(t, h1, 30, "pushy", []int32{0}, sites)
	_ = rl1
	settle()

	var wg sync.WaitGroup
	errCh := make(chan error, sites)
	for s := 1; s <= sites; s++ {
		site := wire.SiteID(s)
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := tc.node(site).NewHandle(fmt.Sprintf("p%d", site))
			var r *Replica
			var err error
			if site == 1 {
				r = rl1.Replicas()[0]
			} else {
				r, err = tc.node(site).AttachReplica("pushy", marshal.Ints(nil))
				if err != nil {
					errCh <- err
					return
				}
			}
			rl := h.ReplicaLock(30)
			if site != 1 {
				if err := rl.Associate(ctx, r); err != nil {
					errCh <- err
					return
				}
			}
			rl.SetUpdateReplicas(sites) // full dissemination on every release
			for i := 0; i < 4; i++ {
				if err := rl.Lock(ctx); err != nil {
					errCh <- fmt.Errorf("site %d: %w", site, err)
					return
				}
				r.Content().IntsData()[0]++
				if err := rl.Unlock(ctx); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = rl1.Unlock(ctx) }()
	if got := rl1.Replicas()[0].Content().IntsData()[0]; got != sites*4 {
		t.Fatalf("final counter = %d, want %d", got, sites*4)
	}
}
