package core

import (
	"fmt"

	"mocha/internal/store"
	"mocha/internal/wire"
)

// This file is the seam between the protocol and the pluggable replica
// store (internal/store). The store is a write-behind record of the
// daemon's replica state: every full install, delta patch, and commit is
// written through, and on restart the write-ahead log is replayed to
// pre-load the site at its persisted versions. A persist failure degrades
// durability, never correctness — the protocol's in-memory state remains
// the operational truth, so errors are logged and the operation proceeds.

// openStore builds the node's store backend and installs any recovered
// records. Called from NewNode before the daemon starts, so a version
// poll can never observe a half-recovered site.
func (n *Node) openStore() error {
	if n.cfg.StoreDir == "" {
		n.store = store.NewMemory()
		return nil
	}
	hook := func(point string, lock wire.LockID, version uint64) bool {
		return n.fireFault(FaultContext{Point: FaultPoint(point), Lock: lock, Version: version}).Drop
	}
	fs, err := store.Open(n.cfg.StoreDir, store.Options{
		MemLimit:  n.cfg.StoreMemLimit,
		FaultHook: hook,
	})
	if err != nil {
		return fmt.Errorf("core: open durable store: %w", err)
	}
	n.store = fs
	recs, err := fs.Recover()
	if err != nil {
		return fmt.Errorf("core: recover durable store: %w", err)
	}
	for _, rec := range recs {
		n.installRecovered(rec)
	}
	if len(recs) > 0 && n.log.On() {
		n.log.Logf("store", "recovered %d replica records from %s", len(recs), n.cfg.StoreDir)
	}
	return nil
}

// Store exposes the node's replica store (for harness assertions).
func (n *Node) Store() store.Store { return n.store }

// durableStore reports whether persisted records survive a restart — the
// signal for paths that only marshal payloads when someone will keep them.
func (n *Node) durableStore() bool { return n.store != nil && n.store.Durable() }

// installRecovered pre-loads one recovered record into the lock's local
// state. The marshaled payloads go into the pending table — the same path
// a payload arriving before its replica is associated takes — and flow
// into live content when the application re-attaches its replicas. A
// record persisted dirty reads as dirty here too: its release never
// committed durably, so the daemon must not advertise the version to
// recovery polls, and committed bytes must arrive to clear it. The
// version itself re-enters the protocol through the existing
// PollVersion/VersionFloor machinery.
func (n *Node) installRecovered(rec store.Record) {
	st := n.getLockLocal(rec.Lock)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.version = rec.Version
	st.uncommitted = rec.Dirty
	st.fence = rec.Fence
	for _, p := range rec.Replicas {
		st.pending[p.Name] = pendingPayload{version: rec.Version, data: p.Data}
	}
}

// persistReplicasLocked writes one replica-state change through to the
// store: a delta append when the S29 delta machinery produced one, a full
// put otherwise. Caller holds st.mu; payloads are the marshaled blobs at
// version (treated as immutable by the store).
func (n *Node) persistReplicasLocked(st *lockLocal, version uint64, dirty bool, payloads []wire.ReplicaPayload, delta *wire.ReplicaDelta) {
	if n.store == nil {
		return
	}
	rec := store.Record{Lock: st.id, Version: version, Dirty: dirty, Fence: st.fence, Replicas: payloads}
	if delta != nil {
		err := n.store.AppendDelta(delta.FromVersion, rec, delta.Replicas)
		if err == nil {
			return
		}
		if err != store.ErrBadDeltaBase && n.log.On() {
			n.log.Logf("store", "delta append of lock %d v%d failed: %v", st.id, version, err)
		}
		// Fall through to a full put: the store's base diverged (it may
		// have been behind a fault injection) and a checkpoint resyncs it.
	}
	if err := n.store.Put(rec); err != nil && n.log.On() {
		n.log.Logf("store", "persist of lock %d v%d failed: %v", st.id, version, err)
	}
}

// persistCommitLocked marks a persisted version committed. Caller holds
// st.mu.
func (n *Node) persistCommitLocked(st *lockLocal, version uint64) {
	if n.store == nil {
		return
	}
	if err := n.store.Commit(st.id, version); err != nil && err != store.ErrUnknownLock && n.log.On() {
		n.log.Logf("store", "commit of lock %d v%d failed: %v", st.id, version, err)
	}
}
