package core

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"mocha/internal/mnet"
	"mocha/internal/netsim"
	"mocha/internal/obs"
	"mocha/internal/overlay"
	"mocha/internal/transport"
	"mocha/internal/wire"
)

// transferService moves replica data between daemons using the paper's two
// protocols. "In the first system, all communication is performed using
// Mocha's network object library. ... For the second prototype, small
// 'control' messages used for lock acquisition and directing data
// transfers are sent using Mocha's network object library. For the actual
// transfer of replica data ... Mocha's network communication is used for
// establishing a TCP connection (i.e., propagating TCP port numbers) and
// the actual transfer of replica data is done using TCP."
type transferService struct {
	node *Node
	port *mnet.Port

	nextReq atomic.Uint64
	// established counts stream connection setups, exposed for tests and
	// the connection-reuse ablation.
	established atomic.Int64
	// pushMarshals counts PushUpdate wire marshals — the hook the
	// marshal-once pipeline is verified against: one per dissemination,
	// however many sites receive the blob.
	pushMarshals atomic.Int64
	// abandonedListeners counts stream listeners whose dialer never
	// connected before the transfer timeout (stranded handshakes).
	abandonedListeners atomic.Int64
	// replicaBytes counts the bytes of replica-carrying frames this node
	// has sent (full and delta alike) — the bytes-on-wire metric of the
	// delta-transfer ablation.
	replicaBytes atomic.Int64
	// deltaSends / fullSends count replica frames sent as deltas vs full
	// copies; deltaFallbacks counts deltas the receiver could not apply
	// (or refused), answered with a full copy.
	deltaSends     atomic.Int64
	fullSends      atomic.Int64
	deltaFallbacks atomic.Int64

	// tracker is the locality overlay behind Config.DisseminationTree:
	// it buckets sharers by measured RTT, elects bucket relays, and
	// scores them by observed ack latency and loss.
	tracker *overlay.Tracker
	// spanCursor marks how far into the obs span ring the tracker feed
	// has read; each dissemination drains the acquire spans recorded
	// since, so RTT estimates refresh continuously instead of only from
	// an initial probe phase.
	spanMu     sync.Mutex
	spanCursor uint64
	// uplinkSends counts dissemination pushes initiated from this node's
	// own uplink (direct pushes and relay pushes alike). The tree
	// ablation's O(regions)-vs-O(sharers) claim is measured against it.
	uplinkSends atomic.Int64

	// relayAcks demultiplexes aggregated RelayAcks back to the
	// dissemination round waiting on them, keyed like push acks by
	// (lock, version, relay site).
	relayMu   sync.Mutex
	relayAcks map[pushKey]chan *wire.RelayAck

	mu      sync.Mutex
	streams map[uint64]chan string // RequestID -> remote stream address
	// conns caches established streams per destination when the
	// connection-reuse extension is enabled.
	conns map[wire.SiteID]*cachedStream
}

// cachedStream serializes frames over one reused connection.
type cachedStream struct {
	mu   sync.Mutex
	conn transport.Conn
}

func newTransferService(n *Node) (*transferService, error) {
	port, err := n.ep.OpenPort(PortXfer)
	if err != nil {
		return nil, err
	}
	t := &transferService{
		node:      n,
		port:      port,
		tracker:   overlay.NewTracker(overlay.Config{Metrics: n.cfg.Metrics}),
		relayAcks: make(map[pushKey]chan *wire.RelayAck),
		streams:   make(map[uint64]chan string),
		conns:     make(map[wire.SiteID]*cachedStream),
	}
	port.SetHandler(t.handle)
	return t, nil
}

// handle processes transfer-control traffic.
func (t *transferService) handle(m mnet.Message) {
	p, err := wire.Unmarshal(m.Data)
	if err != nil {
		if t.node.log.On() {
			t.node.log.Logf("xfer", "bad message: %v", err)
		}
		return
	}
	switch msg := p.(type) {
	case *wire.OpenStreamRequest:
		t.acceptStream(m.From, msg)
	case *wire.OpenStreamReply:
		t.mu.Lock()
		ch := t.streams[msg.RequestID]
		t.mu.Unlock()
		if ch != nil {
			select {
			case ch <- msg.Addr:
			default:
			}
		}
	case *wire.PushUpdate:
		// Push updates may arrive here when sent over the transfer port;
		// apply and acknowledge exactly as the daemon does.
		t.node.applyPush(msg)
		if msg.Lock != CachedLock {
			ack := &wire.PushAck{Lock: msg.Lock, Site: t.node.cfg.Site, Version: msg.Version}
			ctx, cancel := context.WithTimeout(context.Background(), t.node.cfg.RequestTimeout)
			if err := t.port.Send(ctx, m.From, wire.Marshal(ack)); err != nil {
				if t.node.log.On() {
					t.node.log.Logf("xfer", "push ack to %s failed: %v", m.From, err)
				}
			}
			cancel()
		}
	case *wire.ReplicaDelta:
		// Delta pushes arrive on the transfer port like full PushUpdates.
		t.node.handleDeltaArrival(msg, m.From, t.port)
	case *wire.DeltaNack:
		t.handleDeltaNack(msg)
	case *wire.PushAck:
		t.node.client.handle(m)
	case *wire.RelayPush:
		// Re-fanning a bucket takes member round trips; never block the
		// dispatch goroutine on it.
		go t.relayFan(msg, m.From)
	case *wire.RelayAck:
		t.deliverRelayAck(msg)
	default:
		if t.node.log.On() {
			t.node.log.Logf("xfer", "unhandled %s on transfer port", p.Kind())
		}
	}
}

// useStream decides per transfer whether the hybrid stream path applies.
func (t *transferService) useStream(size int) bool {
	switch t.node.cfg.Mode {
	case ModeHybrid:
		return true
	case ModeAdaptive:
		return size > t.node.cfg.AdaptiveThreshold
	default:
		return false
	}
}

// sendReplicas executes a TransferReplica directive from the
// synchronization thread: marshal the lock's local replicas and move them
// to the destination daemon. It runs inside the daemon dispatcher, so its
// marshaling and sending costs serialize with the site's other daemon
// work, as in the prototype.
func (t *transferService) sendReplicas(dir *wire.TransferReplica) error {
	if t.node.fireFault(FaultContext{
		Point: FPDropMidTransfer, Peer: dir.Dest, Lock: dir.Lock, Version: dir.Version,
	}).Drop {
		return fmt.Errorf("core: transfer of lock %d to site %d: fault injected at %s", dir.Lock, dir.Dest, FPDropMidTransfer)
	}
	st := t.node.getLockLocal(dir.Lock)
	st.mu.Lock()
	if st.uncommitted {
		// An exclusive hold mutated this content in place and never
		// committed (live hold, crash, or lease break): the bytes no
		// longer vouch for the labeled version. Serving them would leak a
		// dirty read to the grantee.
		st.mu.Unlock()
		return fmt.Errorf("core: transfer of lock %d to site %d refused: local replicas carry uncommitted writes", dir.Lock, dir.Dest)
	}
	version := st.version
	payloads, marshalErr := st.marshalPayloadsLocked(t.node.cfg.Codec)
	var delta *wire.ReplicaDelta
	if marshalErr == nil && t.node.cfg.DeltaTransfer && dir.DestVersion > 0 && dir.DestVersion < version {
		delta = st.buildDeltaLocked(t.node.cfg.Site, dir.DestVersion, version, payloads, dir.RequestID, false)
	}
	st.mu.Unlock()
	if marshalErr != nil {
		return marshalErr
	}
	if t.node.histEnabled() {
		t.node.recordHist(wire.HistoryEvent{
			Kind: wire.HistTransferSend, Site: t.node.cfg.Site, Lock: dir.Lock,
			Version: version, AuxVersion: dir.DestVersion,
			Sites: wire.NewSiteSet(dir.Dest), Note: "directive",
		})
	}

	ctx, cancel := context.WithTimeout(context.Background(), t.node.cfg.TransferTimeout)
	defer cancel()

	if delta != nil {
		applied, err := t.sendDeltaTransfer(ctx, dir, delta)
		if err == nil && applied {
			return nil
		}
		if err != nil {
			if t.node.log.On() {
				t.node.log.Logf("fault", "delta transfer of lock %d to site %d failed (%v); sending full copy", dir.Lock, dir.Dest, err)
			}
		} else {
			// The receiver could not apply the patch; ship the full copy.
			t.deltaFallbacks.Add(1)
			t.node.obs().Inc(obs.CDeltaFallbacks)
		}
	}

	rd := &wire.ReplicaData{
		Lock:      dir.Lock,
		From:      t.node.cfg.Site,
		Version:   version,
		RequestID: dir.RequestID,
		Replicas:  payloads,
	}
	blob := wire.Marshal(rd)

	if t.useStream(len(blob)) {
		_, err := t.sendOverStream(ctx, dir.Dest, blob)
		if err == nil {
			t.node.obs().Inc(obs.CTransfersHybrid)
			t.countReplicaSend(len(blob), false)
			if t.node.log.On() {
				t.node.log.Log("xfer", "hybrid transfer",
					obs.I("lock", int64(dir.Lock)), obs.I("version", int64(version)),
					obs.I("dest", int64(dir.Dest)), obs.I("bytes", int64(len(blob))))
			}
			return nil
		}
		// The stream path failed (listener unreachable, broken
		// connection); fall back to the basic protocol rather than strand
		// the waiting acquirer.
		if t.node.log.On() {
			t.node.log.Logf("fault", "hybrid transfer of lock %d to site %d failed (%v); falling back to mnet", dir.Lock, dir.Dest, err)
		}
	}

	addr, err := t.node.daemonAddr(dir.Dest)
	if err != nil {
		return err
	}
	if err := t.node.daemon.port.Send(ctx, addr, blob); err != nil {
		return fmt.Errorf("mnet transfer to site %d: %w", dir.Dest, err)
	}
	t.node.obs().Inc(obs.CTransfersMNet)
	t.countReplicaSend(len(blob), false)
	if t.node.log.On() {
		t.node.log.Log("xfer", "mnet transfer",
			obs.I("lock", int64(dir.Lock)), obs.I("version", int64(version)),
			obs.I("dest", int64(dir.Dest)), obs.I("bytes", int64(len(blob))))
	}
	return nil
}

// sendDeltaTransfer ships a ReplicaDelta for a TransferReplica directive.
// applied=false with a nil error means the receiver (synchronously, over
// the stream path) asked for a full copy. Over mnet the delta is
// fire-and-forget like a full ReplicaData: a rejection comes back later as
// a DeltaNack and handleDeltaNack resends the full copy, so mnet deltas
// report applied=true optimistically.
func (t *transferService) sendDeltaTransfer(ctx context.Context, dir *wire.TransferReplica, delta *wire.ReplicaDelta) (applied bool, err error) {
	blob := wire.Marshal(delta)
	if t.useStream(len(blob)) {
		ack, err := t.sendOverStream(ctx, dir.Dest, blob)
		if err != nil {
			return false, err
		}
		if ack != ackApplied {
			return false, nil
		}
		t.node.obs().Inc(obs.CTransfersHybrid)
		t.countReplicaSend(len(blob), true)
		if t.node.log.On() {
			t.node.log.Log("xfer", "hybrid delta transfer",
				obs.I("lock", int64(dir.Lock)), obs.I("from_version", int64(delta.FromVersion)),
				obs.I("version", int64(delta.Version)), obs.I("dest", int64(dir.Dest)),
				obs.I("bytes", int64(len(blob))))
		}
		return true, nil
	}
	addr, err := t.node.daemonAddr(dir.Dest)
	if err != nil {
		return false, err
	}
	if err := t.node.daemon.port.Send(ctx, addr, blob); err != nil {
		return false, fmt.Errorf("mnet delta transfer to site %d: %w", dir.Dest, err)
	}
	t.node.obs().Inc(obs.CTransfersMNet)
	t.countReplicaSend(len(blob), true)
	if t.node.log.On() {
		t.node.log.Log("xfer", "mnet delta transfer",
			obs.I("lock", int64(dir.Lock)), obs.I("from_version", int64(delta.FromVersion)),
			obs.I("version", int64(delta.Version)), obs.I("dest", int64(dir.Dest)),
			obs.I("bytes", int64(len(blob))))
	}
	return true, nil
}

// countReplicaSend tallies one replica-carrying frame on the wire, in
// the service's own counters and in the observability plane.
func (t *transferService) countReplicaSend(n int, isDelta bool) {
	t.replicaBytes.Add(int64(n))
	t.node.obs().Add(obs.CTransferBytes, int64(n))
	if isDelta {
		t.deltaSends.Add(1)
		t.node.obs().Inc(obs.CTransfersDelta)
	} else {
		t.fullSends.Add(1)
		t.node.obs().Inc(obs.CTransfersFull)
	}
}

// handleDeltaNack reacts to a receiver that could not apply a delta: a
// rejected push is reported to the waiting pushTo via the push-ack
// channel; a rejected transfer is answered with a full retransfer, since
// the directive's sender has moved on.
func (t *transferService) handleDeltaNack(msg *wire.DeltaNack) {
	if t.node.log.On() {
		t.node.log.Logf("xfer", "delta of lock %d v%d rejected by site %d: %s", msg.Lock, msg.Version, msg.Site, msg.Reason)
	}
	if msg.Push {
		// pushTo counts the fallback when it resends the full copy.
		t.node.client.deliverPushResult(msg.Lock, msg.Version, msg.Site, pushResult{needFull: true})
		return
	}
	t.deltaFallbacks.Add(1)
	t.node.obs().Inc(obs.CDeltaFallbacks)
	go t.resendFull(msg)
}

// resendFull answers a rejected transfer delta with a full copy of the
// lock's current state (which may meanwhile exceed the rejected version;
// any version at or above it satisfies the waiting acquirer).
func (t *transferService) resendFull(msg *wire.DeltaNack) {
	dir := &wire.TransferReplica{Lock: msg.Lock, Dest: msg.Site, Version: msg.Version, RequestID: msg.RequestID}
	if err := t.sendReplicas(dir); err != nil {
		if t.node.log.On() {
			t.node.log.Logf("fault", "full retransfer of lock %d to site %d failed: %v", msg.Lock, msg.Site, err)
		}
	}
}

// sendOverStream performs the hybrid protocol's bulk move: propagate a
// stream address over MNet, dial, write one length-prefixed frame, await
// the receiver's application acknowledgment, and tear the connection down.
// With the connection-reuse extension enabled, established connections are
// cached per destination and the per-transfer setup/teardown the paper
// identifies as the hybrid protocol's weakness disappears after the first
// transfer. Execution costs for the stream path are charged from the cost
// model's kernel-speed parameters.
func (t *transferService) sendOverStream(ctx context.Context, dest wire.SiteID, frame []byte) (byte, error) {
	if t.node.cfg.Stack == nil {
		return 0, fmt.Errorf("no stream stack configured")
	}
	if !t.node.cfg.StreamReuse {
		conn, err := t.establishStream(ctx, dest)
		if err != nil {
			return 0, err
		}
		defer func() {
			netsim.Charge(t.node.cfg.Cost.StreamTeardown)
			_ = conn.Close()
		}()
		return t.writeFrame(ctx, conn, frame)
	}

	// Connection-reuse path: one cached stream per destination. A slot
	// whose transfers keep failing is evicted from the cache entirely, so
	// a dead destination does not pin a broken entry (and its connection)
	// until node shutdown.
	cs := t.cached(dest)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for attempt := 0; attempt < 2; attempt++ {
		if cs.conn == nil {
			conn, err := t.establishStream(ctx, dest)
			if err != nil {
				t.evictCached(dest, cs)
				return 0, err
			}
			cs.conn = conn
		}
		ack, err := t.writeFrame(ctx, cs.conn, frame)
		if err != nil {
			// The cached connection broke; drop it and retry once with a
			// fresh one.
			netsim.Charge(t.node.cfg.Cost.StreamTeardown)
			_ = cs.conn.Close()
			cs.conn = nil
			continue
		}
		return ack, nil
	}
	t.evictCached(dest, cs)
	return 0, fmt.Errorf("stream to site %d failed after reconnect", dest)
}

// evictCached removes a destination's cache slot (closing any remaining
// connection) so the next transfer starts from a clean slate. The caller
// holds cs.mu; the slot is only removed if it is still the current one.
func (t *transferService) evictCached(dest wire.SiteID, cs *cachedStream) {
	if cs.conn != nil {
		_ = cs.conn.Close()
		cs.conn = nil
	}
	t.mu.Lock()
	if t.conns[dest] == cs {
		delete(t.conns, dest)
	}
	t.mu.Unlock()
}

// close tears down every cached stream connection; called from Node.Close.
func (t *transferService) close() {
	t.mu.Lock()
	conns := t.conns
	t.conns = make(map[wire.SiteID]*cachedStream)
	t.mu.Unlock()
	for _, cs := range conns {
		cs.mu.Lock()
		if cs.conn != nil {
			_ = cs.conn.Close()
			cs.conn = nil
		}
		cs.mu.Unlock()
	}
}

// cachedConnCount reports how many destinations currently have a cache
// slot (for tests).
func (t *transferService) cachedConnCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.conns)
}

// cached returns the destination's stream cache slot.
func (t *transferService) cached(dest wire.SiteID) *cachedStream {
	t.mu.Lock()
	defer t.mu.Unlock()
	cs, ok := t.conns[dest]
	if !ok {
		cs = &cachedStream{}
		t.conns[dest] = cs
	}
	return cs
}

// establishStream performs the hybrid handshake: propagate a listener
// address over MNet, dial it, and charge the modelled socket-setup cost.
func (t *transferService) establishStream(ctx context.Context, dest wire.SiteID) (transport.Conn, error) {
	reqID := t.nextReq.Add(1)
	ch := make(chan string, 1)
	t.mu.Lock()
	t.streams[reqID] = ch
	t.mu.Unlock()
	defer func() {
		t.mu.Lock()
		delete(t.streams, reqID)
		t.mu.Unlock()
	}()

	xferAddr, err := t.node.xferAddr(dest)
	if err != nil {
		return nil, err
	}
	req := &wire.OpenStreamRequest{RequestID: reqID, From: t.node.cfg.Site}
	if err := t.port.Send(ctx, xferAddr, wire.Marshal(req)); err != nil {
		return nil, fmt.Errorf("propagate stream address: %w", err)
	}

	var streamAddr string
	select {
	case streamAddr = <-ch:
	case <-ctx.Done():
		return nil, fmt.Errorf("await stream address: %w", ctx.Err())
	}

	conn, err := t.node.cfg.Stack.DialStream(streamAddr)
	if err != nil {
		return nil, fmt.Errorf("dial stream: %w", err)
	}
	t.established.Add(1)
	netsim.Charge(t.node.cfg.Cost.StreamSetup)
	return conn, nil
}

// StreamsEstablished reports how many stream connections this node has set
// up as a sender.
func (n *Node) StreamsEstablished() int64 { return n.xfer.established.Load() }

// AbandonedStreamListeners reports how many hybrid-protocol stream
// listeners timed out without the dialer ever connecting.
func (n *Node) AbandonedStreamListeners() int64 { return n.xfer.abandonedListeners.Load() }

// PushUpdateMarshals reports how many PushUpdate wire blobs this node has
// marshaled for dissemination — exactly one per dissemination round,
// regardless of how many sites the blob fans out to.
func (n *Node) PushUpdateMarshals() int64 { return n.xfer.pushMarshals.Load() }

// Stream application-ack values: the receiver applied the frame, or (for
// delta frames) could not and wants a full copy instead.
const (
	ackNeedFull byte = 0
	ackApplied  byte = 1
)

// writeFrame sends one length-prefixed frame and awaits the receiver's
// one-byte application ack, so the measured transfer includes remote
// processing, matching the MNet path's semantics. The ack byte is
// returned: full frames always come back ackApplied, delta frames may
// come back ackNeedFull.
func (t *transferService) writeFrame(ctx context.Context, conn transport.Conn, frame []byte) (byte, error) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(frame)))
	netsim.Charge(t.node.cfg.Cost.StreamWriteCost(len(frame) + 4))
	if _, err := conn.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("write frame header: %w", err)
	}
	if _, err := conn.Write(frame); err != nil {
		return 0, fmt.Errorf("write frame: %w", err)
	}
	if deadline, ok := ctx.Deadline(); ok {
		_ = conn.SetReadDeadline(deadline)
	} else {
		_ = transport.SetReadDeadlineConn(conn, t.node.cfg.TransferTimeout)
	}
	var ack [1]byte
	if _, err := io.ReadFull(conn, ack[:]); err != nil {
		return 0, fmt.Errorf("await stream ack: %w", err)
	}
	return ack[0], nil
}

// acceptStream services an OpenStreamRequest: open a fresh listener,
// start a goroutine that receives one frame on it, and propagate the
// listener address back over MNet.
func (t *transferService) acceptStream(replyTo string, req *wire.OpenStreamRequest) {
	if t.node.cfg.Stack == nil {
		if t.node.log.On() {
			t.node.log.Logf("xfer", "stream request from site %d but no stack configured", req.From)
		}
		return
	}
	ln, err := t.node.cfg.Stack.ListenStream()
	if err != nil {
		if t.node.log.On() {
			t.node.log.Logf("xfer", "listen for site %d: %v", req.From, err)
		}
		return
	}
	go t.receiveStream(ln)

	reply := &wire.OpenStreamReply{RequestID: req.RequestID, Addr: ln.Addr()}
	ctx, cancel := context.WithTimeout(context.Background(), t.node.cfg.RequestTimeout)
	defer cancel()
	if err := t.port.Send(ctx, replyTo, wire.Marshal(reply)); err != nil {
		if t.node.log.On() {
			t.node.log.Logf("xfer", "stream reply to %s failed: %v", replyTo, err)
		}
		_ = ln.Close()
	}
}

// receiveStream accepts one connection and serves frames on it until the
// peer closes (one frame for the per-transfer protocol, many when the
// sender reuses connections), applying and acknowledging each.
func (t *transferService) receiveStream(ln transport.Listener) {
	// Bound how long an abandoned listener lingers. The deadline sits on
	// the shared timer wheel: transfer timeouts are coarse (seconds), so
	// a tick of wheel slack is free and the runtime heap stays clear of
	// one-shot timers that almost always cancel.
	var timedOut atomic.Bool
	timer := netsim.DefaultWheel().AfterFunc(t.node.cfg.TransferTimeout, func() {
		timedOut.Store(true)
		_ = ln.Close()
	})
	conn, err := ln.Accept()
	timer.Stop()
	_ = ln.Close()
	if err != nil {
		if timedOut.Load() {
			// The dialer propagated a handshake but never connected
			// (firewalled, crashed, or fell back to MNet); make the
			// stranded listener visible instead of exiting silently.
			t.abandonedListeners.Add(1)
			if t.node.log.On() {
				t.node.log.Logf("fault", "stream listener %s abandoned: no connection within %v", ln.Addr(), t.node.cfg.TransferTimeout)
			}
		}
		return
	}
	defer func() { _ = conn.Close() }()

	for {
		if !t.serveFrame(conn) {
			return
		}
	}
}

// serveFrame reads, applies, and acknowledges one frame, reporting whether
// the connection is still usable.
func (t *transferService) serveFrame(conn transport.Conn) bool {
	// Reused connections may idle between transfers indefinitely; bound
	// each frame read generously rather than the connection lifetime.
	idle := 10 * t.node.cfg.TransferTimeout
	_ = transport.SetReadDeadlineConn(conn, idle)
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return false
	}
	size := binary.BigEndian.Uint32(hdr[:])
	const maxFrame = 64 << 20
	if size > maxFrame {
		if t.node.log.On() {
			t.node.log.Logf("xfer", "stream frame of %d bytes rejected", size)
		}
		return false
	}
	frame := make([]byte, size)
	if _, err := io.ReadFull(conn, frame); err != nil {
		if t.node.log.On() {
			t.node.log.Logf("xfer", "stream frame read: %v", err)
		}
		return false
	}

	p, err := wire.Unmarshal(frame)
	if err != nil {
		if t.node.log.On() {
			t.node.log.Logf("xfer", "stream frame decode: %v", err)
		}
		return false
	}
	ack := ackApplied
	switch msg := p.(type) {
	case *wire.ReplicaData:
		t.node.applyReplicaData(msg)
	case *wire.PushUpdate:
		t.node.applyPush(msg)
	case *wire.ReplicaDelta:
		if err := t.node.applyDelta(msg); err != nil {
			if t.node.log.On() {
				t.node.log.Logf("xfer", "stream delta of lock %d v%d rejected: %v", msg.Lock, msg.Version, err)
			}
			ack = ackNeedFull
		}
	default:
		if t.node.log.On() {
			t.node.log.Logf("xfer", "unexpected %s over stream", p.Kind())
		}
		return false
	}
	// One-byte application ack: data received and applied (or, for a
	// delta the receiver could not use, a request for the full copy).
	if _, err := conn.Write([]byte{ack}); err != nil {
		return false
	}
	return true
}

// PreparePush advances the lock's local version and marshals its replicas,
// returning the new version and payloads. It is the marshaling half of a
// push-based dissemination, split out so the benchmark harness can time
// marshaling (Figure 8) separately from transfer (Figures 9-14), as the
// paper's evaluation does.
func (n *Node) PreparePush(lock wire.LockID) (uint64, []wire.ReplicaPayload, error) {
	st := n.getLockLocal(lock)
	st.mu.Lock()
	defer st.mu.Unlock()
	st.bumpVersionLocked(st.version + 1)
	version := st.version
	payloads, err := st.marshalPayloadsLocked(n.cfg.Codec)
	if err != nil {
		return 0, nil, fmt.Errorf("core: %w", err)
	}
	st.notifyVersionLocked()
	return version, payloads, nil
}

// pushBlob is one marshal-once dissemination payload: the PushUpdate wire
// blob encoded once and shared, read-only, by every target of one
// dissemination round. When delta transfer is on and the update log
// covers the step from the previous version, delta carries the (much
// smaller) ReplicaDelta encoding of the same update, offered first to
// targets believed to hold the previous version.
type pushBlob struct {
	lock    wire.LockID
	version uint64
	blob    []byte
	delta   []byte
}

// preparePushBlob marshals the PushUpdate exactly once per dissemination.
func (t *transferService) preparePushBlob(lock wire.LockID, version uint64, payloads []wire.ReplicaPayload) *pushBlob {
	pu := &wire.PushUpdate{Lock: lock, From: t.node.cfg.Site, Version: version, Replicas: payloads}
	t.pushMarshals.Add(1)
	return &pushBlob{lock: lock, version: version, blob: wire.Marshal(pu)}
}

// PushPayloads disseminates prepared payloads to the target sites over the
// configured transfer protocol, returning the sites that confirmed
// application. The wire blob is marshaled once for all targets; transfers
// run concurrently under Config.DisseminationFanout (1 = the paper's
// sequential fan-out, where this is the transfer operation Figures 9-14
// measure). Per-site failures are collected rather than aborting the
// remaining targets.
func (n *Node) PushPayloads(ctx context.Context, lock wire.LockID, version uint64, payloads []wire.ReplicaPayload, targets []wire.SiteID) ([]wire.SiteID, error) {
	if len(targets) == 0 {
		return nil, nil
	}
	pb := n.xfer.preparePushBlob(lock, version, payloads)
	if n.cfg.DeltaTransfer && version > 1 {
		// Optimistically offer every target the single-step delta; a
		// target that is further behind rejects it and gets the full copy.
		st := n.getLockLocal(lock)
		st.mu.Lock()
		if msg := st.buildDeltaLocked(n.cfg.Site, version-1, version, payloads, 0, true); msg != nil {
			pb.delta = wire.Marshal(msg)
		}
		st.mu.Unlock()
	}
	bound := n.cfg.fanoutBound(len(targets))

	if bound == 1 {
		// Paper-faithful sequential fan-out: each transfer (including the
		// remote apply and its acknowledgment) completes before the next
		// begins, and the first failure stops the walk.
		var acked []wire.SiteID
		for _, site := range targets {
			if err := n.xfer.pushTo(ctx, site, pb, pb.delta != nil); err != nil {
				return acked, fmt.Errorf("core: push to site %d: %w", site, err)
			}
			acked = append(acked, site)
		}
		return acked, nil
	}

	errs := make([]error, len(targets))
	sem := make(chan struct{}, bound)
	var wg sync.WaitGroup
	for i, site := range targets {
		sem <- struct{}{} // launch in target order under the bound
		wg.Add(1)
		go func(i int, site wire.SiteID) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := n.xfer.pushTo(ctx, site, pb, pb.delta != nil); err != nil {
				errs[i] = fmt.Errorf("core: push to site %d: %w", site, err)
			}
		}(i, site)
	}
	wg.Wait()

	acked := make([]wire.SiteID, 0, len(targets))
	for i, site := range targets {
		if errs[i] == nil {
			acked = append(acked, site)
		}
	}
	return acked, errors.Join(errs...)
}

// feedTracker drains the acquire spans recorded since the last
// dissemination and turns each one's request RTT into an overlay sample
// against the lock's manager — the peer the round trip actually measured.
// The probe phase a harness may run seeds the tracker; this keeps it fed
// for the rest of the run, so RTT drift (route changes, migrated homes)
// reaches the relay plan without re-probing.
func (t *transferService) feedTracker() {
	reg := t.node.obs()
	t.spanMu.Lock()
	recs, cur := reg.SpansSince(t.spanCursor)
	t.spanCursor = cur
	t.spanMu.Unlock()
	if len(recs) == 0 {
		return
	}
	self := t.node.cfg.Site
	phase := obs.HRequestRTT.PhaseName()
	for i := range recs {
		sp := &recs[i]
		// The registry may be shared across sites (benchmarks do this);
		// only this site's own acquires measured a round trip from here.
		if sp.Op != "acquire" || wire.SiteID(sp.Site) != self {
			continue
		}
		peer, _ := t.node.homeOf(wire.LockID(sp.Lock))
		if peer == 0 || peer == self {
			continue
		}
		for _, ph := range sp.Phases {
			if ph.Name == phase && ph.Dur > 0 {
				t.tracker.Observe(peer, ph.Dur)
			}
		}
	}
}

// disseminate implements the push-based update scheme of Section 4: send
// the new version to `want` additional registered daemons, working through
// the candidate set so that "the failure ... can be handled by choosing
// another daemon thread at another site to receive a copy of the new
// version of replicas". Up to Config.DisseminationFanout transfers are in
// flight at once; workers claim candidates in deterministic set order, so
// the §4 replacement walk is preserved — a failed site is simply passed
// over and the next candidate claimed. It returns the sites that confirmed
// application, in candidate order.
func (t *transferService) disseminate(ctx context.Context, lock wire.LockID, version uint64, payloads []wire.ReplicaPayload, delta *wire.ReplicaDelta, sharers wire.SiteSet, upToDate wire.SiteSet, want int) []wire.SiteID {
	if want <= 0 {
		return nil
	}
	t.feedTracker()
	var candidates []wire.SiteID
	for _, site := range sharers.Sites() {
		if site != t.node.cfg.Site {
			candidates = append(candidates, site)
		}
	}
	pb := t.preparePushBlob(lock, version, payloads)
	if delta != nil {
		// Marshaled once, like the full blob, and offered to the targets
		// the grant reported as holding the previous version.
		pb.delta = wire.Marshal(delta)
	}

	// The relay tree replaces the flat fan-out only when every candidate
	// is a target (want covers them all): a partial-UR dissemination keeps
	// the flat walk so §4's replacement semantics — claim the next
	// candidate when one fails — are untouched. Below TreeMinSharers the
	// relay hop costs more than it saves, and with the tree disabled this
	// path is the paper-baseline ablation leg.
	if t.node.cfg.DisseminationTree && want >= len(candidates) && len(candidates) >= t.node.cfg.TreeMinSharers {
		return t.disseminateTree(ctx, pb, payloads, candidates, upToDate)
	}

	var (
		mu     sync.Mutex
		next   int
		ackedN int
		okAt   = make([]bool, len(candidates))
	)
	workers := t.node.cfg.fanoutBound(want)
	if workers > len(candidates) {
		workers = len(candidates)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if ackedN >= want || next >= len(candidates) {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				site := candidates[i]
				if err := t.pushTo(ctx, site, pb, pb.delta != nil && upToDate.Contains(site)); err != nil {
					if t.node.log.On() {
						t.node.log.Logf("fault", "dissemination of lock %d v%d to site %d failed: %v", lock, version, site, err)
					}
					continue
				}
				mu.Lock()
				okAt[i] = true
				ackedN++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	var acked []wire.SiteID
	for i, ok := range okAt {
		if ok {
			acked = append(acked, candidates[i])
		}
	}
	if len(acked) < want {
		if t.node.log.On() {
			t.node.log.Logf("fault", "dissemination of lock %d v%d reached %d of %d sites", lock, version, len(acked), want)
		}
	}
	return acked
}

// disseminateTree routes one release's dissemination through the locality
// overlay: one RelayPush per bucket (the relay applies the version and
// re-fans it to the bucket's members over its local links), direct pushes
// for sites the overlay cannot cluster. A bucket whose relay fails, times
// out, or misses members is routed around with direct pushes, so every
// reachable sharer still receives the version — the tree changes who
// carries the frames, never the guarantee. Returns acked sites in
// candidate order, like the flat walk.
func (t *transferService) disseminateTree(ctx context.Context, pb *pushBlob, payloads []wire.ReplicaPayload, candidates []wire.SiteID, upToDate wire.SiteSet) []wire.SiteID {
	plan := t.tracker.Plan(candidates)

	var (
		mu   sync.Mutex
		okAt = make(map[wire.SiteID]bool, len(candidates))
	)
	confirm := func(sites ...wire.SiteID) {
		mu.Lock()
		for _, s := range sites {
			okAt[s] = true
		}
		mu.Unlock()
	}
	pushDirect := func(site wire.SiteID) {
		if err := t.pushTo(ctx, site, pb, pb.delta != nil && upToDate.Contains(site)); err != nil {
			if t.node.log.On() {
				t.node.log.Logf("fault", "dissemination of lock %d v%d to site %d failed: %v", pb.lock, pb.version, site, err)
			}
			return
		}
		confirm(site)
	}

	tasks := make([]func(), 0, len(plan.Groups)+len(plan.Direct))
	for _, g := range plan.Groups {
		g := g
		tasks = append(tasks, func() { t.pushViaRelay(ctx, pb, payloads, g, pushDirect, confirm) })
	}
	for _, site := range plan.Direct {
		site := site
		tasks = append(tasks, func() { pushDirect(site) })
	}

	bound := t.node.cfg.fanoutBound(len(tasks))
	sem := make(chan struct{}, bound)
	var wg sync.WaitGroup
	for _, task := range tasks {
		sem <- struct{}{}
		wg.Add(1)
		go func(task func()) {
			defer wg.Done()
			defer func() { <-sem }()
			task()
		}(task)
	}
	wg.Wait()

	var acked []wire.SiteID
	for _, site := range candidates {
		if okAt[site] {
			acked = append(acked, site)
		}
	}
	if len(acked) < len(candidates) {
		if t.node.log.On() {
			t.node.log.Logf("fault", "tree dissemination of lock %d v%d reached %d of %d sites", pb.lock, pb.version, len(acked), len(candidates))
		}
	}
	return acked
}

// pushViaRelay sends one bucket's RelayPush and waits for the aggregated
// ack. The relay's ack latency and losses feed its quality score; a relay
// that fails is routed around with direct pushes to the whole bucket, and
// members the relay could not reach are direct-pushed individually —
// either way a sick relay degrades its bucket to flat fan-out instead of
// losing the version (a re-push of an already-applied version is dropped
// as stale by the receiver, so the overlap is harmless).
func (t *transferService) pushViaRelay(ctx context.Context, pb *pushBlob, payloads []wire.ReplicaPayload, g overlay.Group, pushDirect func(wire.SiteID), confirm func(...wire.SiteID)) {
	reg := t.node.obs()
	fallback := func() {
		reg.Inc(obs.CRelayFallbacks)
		var wg sync.WaitGroup
		for _, site := range append([]wire.SiteID{g.Relay}, g.Members...) {
			wg.Add(1)
			go func(site wire.SiteID) {
				defer wg.Done()
				pushDirect(site)
			}(site)
		}
		wg.Wait()
	}
	addr, err := t.node.xferAddr(g.Relay)
	if err != nil {
		fallback()
		return
	}
	msg := &wire.RelayPush{
		Lock:     pb.lock,
		Origin:   t.node.cfg.Site,
		Version:  pb.version,
		Replicas: payloads,
		Targets:  wire.NewSiteSet(g.Members...),
	}
	// Register before sending: on a zero-delay network the aggregated ack
	// can arrive inside the Send call.
	ackCh := t.expectRelayAck(pb.lock, pb.version, g.Relay)
	defer t.dropRelayAck(pb.lock, pb.version, g.Relay)

	// The wait is bounded by the control-message timeout, not the transfer
	// timeout: a dead relay should cost one fast timeout before its bucket
	// degrades, not stall the release for a bulk-transfer grace period.
	sendCtx, cancel := context.WithTimeout(ctx, t.node.cfg.RequestTimeout)
	defer cancel()
	start := time.Now()
	t.uplinkSends.Add(1)
	reg.Inc(obs.CRelayPushes)
	if err := t.port.Send(sendCtx, addr, wire.Marshal(msg)); err != nil {
		t.tracker.ObserveLoss(g.Relay)
		fallback()
		return
	}
	select {
	case ack := <-ackCh:
		lat := time.Since(start)
		t.tracker.ObserveAck(g.Relay, lat)
		reg.Inc(obs.CRelayAcks)
		reg.Observe(obs.HRelayHop, lat)
		inBucket := make(map[wire.SiteID]bool, len(g.Members)+1)
		inBucket[g.Relay] = true
		for _, m := range g.Members {
			inBucket[m] = true
		}
		for _, s := range ack.Acked.Sites() {
			if inBucket[s] {
				confirm(s)
			}
		}
		// Route around members the relay could not reach.
		var missed []wire.SiteID
		if !ack.Acked.Contains(g.Relay) {
			missed = append(missed, g.Relay)
		}
		for _, m := range g.Members {
			if !ack.Acked.Contains(m) {
				missed = append(missed, m)
			}
		}
		if len(missed) > 0 {
			reg.Inc(obs.CRelayFallbacks)
			for _, site := range missed {
				pushDirect(site)
			}
		}
	case <-sendCtx.Done():
		t.tracker.ObserveLoss(g.Relay)
		fallback()
	}
}

// relayFan services a RelayPush on the bucket relay: apply the version
// locally, re-fan it to the bucket's remaining members as ordinary
// PushUpdates, and answer the origin with the aggregated set of sites that
// confirmed application. Runs on its own goroutine — the re-fan takes
// member round trips and must not stall the transfer port's dispatcher.
func (t *transferService) relayFan(msg *wire.RelayPush, replyTo string) {
	n := t.node
	if n.fireFault(FaultContext{
		Point: FPDropRelayFan, Peer: msg.Origin, Lock: msg.Lock, Version: msg.Version,
	}).Drop {
		// The relay "dies" mid-push: nothing applied, nothing re-fanned,
		// no ack — the origin times out and direct-pushes the bucket.
		return
	}
	reg := n.obs()
	n.applyPayloads(msg.Lock, msg.Version, msg.Replicas, "relay", msg.Origin)

	var (
		ackMu sync.Mutex
		acked wire.SiteSet
	)
	st := n.getLockLocal(msg.Lock)
	st.mu.Lock()
	// Count this site only if the apply actually installed the version (or
	// it was already held): an unmarshal failure must not be reported
	// upstream as an up-to-date copy.
	if st.version >= msg.Version {
		acked.Add(n.cfg.Site)
	}
	st.mu.Unlock()

	members := make([]wire.SiteID, 0, msg.Targets.Len())
	for _, s := range msg.Targets.Sites() {
		if s != n.cfg.Site && s != msg.Origin {
			members = append(members, s)
		}
	}
	if n.histEnabled() {
		n.recordHist(wire.HistoryEvent{
			Kind: wire.HistRelay, Site: n.cfg.Site, Lock: msg.Lock,
			Version: msg.Version, Sites: wire.NewSiteSet(members...),
			Note: "re-fan",
		})
	}

	if len(members) > 0 {
		pb := t.preparePushBlob(msg.Lock, msg.Version, msg.Replicas)
		bound := n.cfg.fanoutBound(len(members))
		sem := make(chan struct{}, bound)
		var wg sync.WaitGroup
		for _, site := range members {
			sem <- struct{}{}
			wg.Add(1)
			go func(site wire.SiteID) {
				defer wg.Done()
				defer func() { <-sem }()
				if err := t.pushTo(context.Background(), site, pb, false); err != nil {
					if n.log.On() {
						n.log.Logf("fault", "relay re-fan of lock %d v%d to site %d failed: %v", msg.Lock, msg.Version, site, err)
					}
					return
				}
				reg.Inc(obs.CRelayFanout)
				ackMu.Lock()
				acked.Add(site)
				ackMu.Unlock()
			}(site)
		}
		wg.Wait()
	}

	ack := &wire.RelayAck{Lock: msg.Lock, Relay: n.cfg.Site, Version: msg.Version, Acked: acked}
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.RequestTimeout)
	defer cancel()
	if err := t.port.Send(ctx, replyTo, wire.Marshal(ack)); err != nil {
		if n.log.On() {
			n.log.Logf("fault", "relay ack of lock %d v%d to %s failed: %v", msg.Lock, msg.Version, replyTo, err)
		}
	}
}

// expectRelayAck registers a waiter for one relay's aggregated ack.
func (t *transferService) expectRelayAck(lock wire.LockID, version uint64, relay wire.SiteID) chan *wire.RelayAck {
	ch := make(chan *wire.RelayAck, 1)
	t.relayMu.Lock()
	t.relayAcks[pushKey{lock: lock, version: version, site: relay}] = ch
	t.relayMu.Unlock()
	return ch
}

// deliverRelayAck routes an arriving RelayAck to its waiter, if any is
// still registered (a late ack after fallback is dropped harmlessly).
func (t *transferService) deliverRelayAck(msg *wire.RelayAck) {
	t.relayMu.Lock()
	ch := t.relayAcks[pushKey{lock: msg.Lock, version: msg.Version, site: msg.Relay}]
	t.relayMu.Unlock()
	if ch != nil {
		select {
		case ch <- msg:
		default:
		}
	}
}

// dropRelayAck unregisters a relay-ack waiter.
func (t *transferService) dropRelayAck(lock wire.LockID, version uint64, relay wire.SiteID) {
	t.relayMu.Lock()
	delete(t.relayAcks, pushKey{lock: lock, version: version, site: relay})
	t.relayMu.Unlock()
}

// pushTo sends one pre-marshaled push update to one site and waits for its
// application acknowledgment, over whichever protocol the mode selects.
// With tryDelta set, the delta encoding is offered first; a receiver that
// cannot apply it answers need-full (stream ack byte or DeltaNack) and the
// full blob follows on the same call. Safe for concurrent callers pushing
// the same blob to distinct sites.
func (t *transferService) pushTo(ctx context.Context, site wire.SiteID, pb *pushBlob, tryDelta bool) error {
	t.uplinkSends.Add(1)
	t.node.obs().Inc(obs.CPushes)
	if t.node.fireFault(FaultContext{
		Point: FPDropMidTransfer, Peer: site, Lock: pb.lock, Version: pb.version,
	}).Drop {
		return fmt.Errorf("core: push of lock %d to site %d: fault injected at %s", pb.lock, site, FPDropMidTransfer)
	}
	sendCtx, cancel := context.WithTimeout(ctx, t.node.cfg.TransferTimeout)
	defer cancel()

	if tryDelta && pb.delta != nil {
		applied, err := t.sendPushFrame(sendCtx, site, pb, pb.delta)
		if err != nil {
			// A transport-level failure would sink the full copy too.
			return err
		}
		if applied {
			t.countReplicaSend(len(pb.delta), true)
			return nil
		}
		t.deltaFallbacks.Add(1)
		t.node.obs().Inc(obs.CDeltaFallbacks)
	}

	applied, err := t.sendPushFrame(sendCtx, site, pb, pb.blob)
	if err != nil {
		return err
	}
	if !applied {
		return fmt.Errorf("site %d refused full push of lock %d v%d", site, pb.lock, pb.version)
	}
	t.countReplicaSend(len(pb.blob), false)
	return nil
}

// sendPushFrame moves one push frame (full or delta encoding) to a site
// and reports whether the receiver applied it.
func (t *transferService) sendPushFrame(ctx context.Context, site wire.SiteID, pb *pushBlob, blob []byte) (applied bool, err error) {
	if t.useStream(len(blob)) {
		// The stream path's one-byte frame ack is the application
		// acknowledgment.
		ack, err := t.sendOverStream(ctx, site, blob)
		if err != nil {
			return false, err
		}
		t.node.obs().Inc(obs.CTransfersHybrid)
		return ack == ackApplied, nil
	}

	addr, err := t.node.xferAddr(site)
	if err != nil {
		return false, err
	}
	// Register before sending: on a zero-delay network the ack can arrive
	// inside the Send call.
	ackCh := t.node.client.expectPushAck(pb.lock, pb.version, site)
	defer t.node.client.dropPushAck(pb.lock, pb.version, site)
	if err := t.port.Send(ctx, addr, blob); err != nil {
		return false, err
	}
	t.node.obs().Inc(obs.CTransfersMNet)
	select {
	case res := <-ackCh:
		return !res.needFull, nil
	case <-ctx.Done():
		return false, fmt.Errorf("await push ack from site %d: %w", site, ctx.Err())
	}
}

// ReplicaBytesSent reports the total bytes of replica-carrying frames
// (full copies and deltas) this node has sent.
func (n *Node) ReplicaBytesSent() int64 { return n.xfer.replicaBytes.Load() }

// DeltaTransfersSent reports how many replica frames went out in delta
// encoding.
func (n *Node) DeltaTransfersSent() int64 { return n.xfer.deltaSends.Load() }

// FullTransfersSent reports how many replica frames went out as full
// copies.
func (n *Node) FullTransfersSent() int64 { return n.xfer.fullSends.Load() }

// DeltaFallbacks reports how many delta offers were answered with a
// request for (or fallback to) the full copy.
func (n *Node) DeltaFallbacks() int64 { return n.xfer.deltaFallbacks.Load() }

// OverlayTracker exposes the dissemination overlay's peer tracker so
// harnesses can seed it with measured RTTs (e.g. from the obs span ring)
// and tests can inspect relay scores.
func (n *Node) OverlayTracker() *overlay.Tracker { return n.xfer.tracker }

// DisseminationUplinkSends reports how many dissemination pushes (direct
// PushUpdates plus RelayPushes) this node has initiated from its own
// uplink. Under the relay tree a releaser's per-release delta here is
// O(regions) instead of O(sharers).
func (n *Node) DisseminationUplinkSends() int64 { return n.xfer.uplinkSends.Load() }
