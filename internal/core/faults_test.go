package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"mocha/internal/mnet"
	"mocha/internal/wire"
)

// TestLockHolderFailureBreaksLock exercises "Failure of Lock Owning
// Application Thread": the holder dies, the lease expires, the heartbeat
// times out, the synchronization thread breaks the lock and gives it to
// the next thread, and the dead thread is banned.
func TestLockHolderFailureBreaksLock(t *testing.T) {
	opts := defaultOpts()
	opts.lease = 200 * time.Millisecond
	opts.sweep = 50 * time.Millisecond
	opts.reqTO = 500 * time.Millisecond
	tc := newTestCluster(t, 3, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rl1, r1 := mustCreate(t, h1, 6, "held", []int32{1}, 3)
	h2 := tc.node(2).NewHandle("doomed")
	rl2, _ := mustAttach(t, h2, 6, "held")
	settle()

	// Site 2 takes the lock and dies holding it.
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	doomedThread := h2.ID()
	tc.kill(2)

	// Site 1 must eventually get the lock via lease breaking.
	lockCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	start := time.Now()
	if err := rl1.Lock(lockCtx); err != nil {
		t.Fatalf("lock never broken: %v", err)
	}
	t.Logf("lock broken and reacquired after %v", time.Since(start))
	// The most recent *released* state is still v1 from the creator.
	if got := r1.Content().IntsData()[0]; got != 1 {
		t.Fatalf("data after break = %d, want 1", got)
	}
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	if !tc.node(1).Sync().Banned(doomedThread) {
		t.Fatal("dead holder was not banned")
	}
	if tc.node(1).Log().CountCategory("fault") == 0 {
		t.Fatal("no fault events logged for the break")
	}
}

// TestBannedThreadNacked verifies that a banned thread's future requests
// are refused.
func TestBannedThreadNacked(t *testing.T) {
	opts := defaultOpts()
	opts.reqTO = 500 * time.Millisecond
	tc := newTestCluster(t, 2, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rl1, _ := mustCreate(t, h1, 6, "x", []int32{1}, 2)
	settle()
	_ = rl1

	// Ban site 2's thread directly (the break path is covered above).
	h2 := tc.node(2).NewHandle("banned")
	tc.node(1).Sync().ban(h2.ID(), 6, 2)

	rl2, _ := mustAttach(t, h2, 6, "x")
	settle()
	err := rl2.Lock(ctx)
	if !errors.Is(err, ErrBanned) {
		t.Fatalf("banned thread Lock = %v, want ErrBanned", err)
	}
}

// TestTransferSourceFailureWithoutDissemination exercises "Failure of
// Non-Lock Owning Application Thread" with UR=1: the site holding the only
// copy of the newest version dies, so the synchronization thread polls the
// surviving daemons and forwards "the most recently available old version"
// — weakened consistency.
func TestTransferSourceFailureWithoutDissemination(t *testing.T) {
	opts := defaultOpts()
	opts.reqTO = 400 * time.Millisecond
	tc := newTestCluster(t, 3, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rl1, r1 := mustCreate(t, h1, 6, "fragile", []int32{100}, 3)
	_ = rl1
	_ = r1
	h2 := tc.node(2).NewHandle("writer")
	rl2, r2 := mustAttach(t, h2, 6, "fragile")
	h3 := tc.node(3).NewHandle("reader")
	rl3, r3 := mustAttach(t, h3, 6, "fragile")
	settle()

	// Site 2 produces v2 (value 200) that nobody else has, then dies.
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r2.Content().IntsData()[0] = 200
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	tc.kill(2)

	// Site 3 acquires: the newest version is lost; it must receive the
	// creator's v1 (value 100) instead of hanging.
	lockCtx, cancel := context.WithTimeout(ctx, 20*time.Second)
	defer cancel()
	if err := rl3.Lock(lockCtx); err != nil {
		t.Fatalf("recovery lock failed: %v", err)
	}
	defer func() { _ = rl3.Unlock(ctx) }()
	if got := r3.Content().IntsData()[0]; got != 100 {
		t.Fatalf("recovered value = %d, want 100 (most recent surviving old version)", got)
	}
}

// TestTransferSourceFailureWithDissemination is the headline availability
// result: with UR=2 the newest version survives the writer's death because
// it was pushed to another daemon at release time.
func TestTransferSourceFailureWithDissemination(t *testing.T) {
	opts := defaultOpts()
	opts.reqTO = 400 * time.Millisecond
	tc := newTestCluster(t, 4, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	_, _ = mustCreate(t, h1, 6, "precious", []int32{100}, 4)
	h2 := tc.node(2).NewHandle("writer")
	rl2, r2 := mustAttach(t, h2, 6, "precious")
	h3 := tc.node(3).NewHandle("backup")
	_, _ = mustAttach(t, h3, 6, "precious")
	h4 := tc.node(4).NewHandle("reader")
	rl4, r4 := mustAttach(t, h4, 6, "precious")
	settle()

	// Site 2 writes v2=200 with UR=2 (pushed to one more daemon), then
	// dies.
	rl2.SetUpdateReplicas(2)
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r2.Content().IntsData()[0] = 200
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	tc.kill(2)

	// Site 4 acquires. The synchronization thread's up-to-date set knows
	// another daemon holds v2, or at worst the poll finds it: the newest
	// value must survive.
	lockCtx, cancel := context.WithTimeout(ctx, 20*time.Second)
	defer cancel()
	if err := rl4.Lock(lockCtx); err != nil {
		t.Fatalf("recovery lock failed: %v", err)
	}
	defer func() { _ = rl4.Unlock(ctx) }()
	if got := r4.Content().IntsData()[0]; got != 200 {
		t.Fatalf("recovered value = %d, want 200 (dissemination must preserve the newest version)", got)
	}
}

// TestDisseminationTargetFailure: pushing to a dead daemon must not wedge
// the release; the releaser picks another candidate.
func TestDisseminationTargetFailure(t *testing.T) {
	opts := defaultOpts()
	opts.reqTO = 400 * time.Millisecond
	tc := newTestCluster(t, 4, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rl1, r1 := mustCreate(t, h1, 6, "robust", []int32{0}, 4)
	h2 := tc.node(2).NewHandle("s2")
	_, _ = mustAttach(t, h2, 6, "robust")
	h3 := tc.node(3).NewHandle("s3")
	_, r3 := mustAttach(t, h3, 6, "robust")
	settle()

	// Kill site 2 (an eligible push target, lowest ID so tried first).
	tc.kill(2)

	rl1.SetUpdateReplicas(2)
	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r1.Content().IntsData()[0] = 31
	start := time.Now()
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatalf("unlock with dead push target: %v", err)
	}
	t.Logf("release with failover took %v", time.Since(start))

	// The push must have fallen over to site 3.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if r3.Content().IntsData() != nil && len(r3.Content().IntsData()) > 0 && r3.Content().IntsData()[0] == 31 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("failover push never reached site 3: %v", r3.Content().IntsData())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if tc.node(1).Log().CountCategory("fault") == 0 {
		t.Fatal("dissemination failure not logged")
	}
}

// TestSurrogateSyncThread exercises the Section 4 recovery sketch: the
// home site dies, a surrogate restores from the logged state, informs the
// daemons, and lock traffic continues against the new manager.
func TestSurrogateSyncThread(t *testing.T) {
	opts := defaultOpts()
	opts.reqTO = 400 * time.Millisecond
	tc := newTestCluster(t, 3, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("home")
	rl1, r1 := mustCreate(t, h1, 6, "state", []int32{0}, 3)
	h2 := tc.node(2).NewHandle("backup")
	_, _ = mustAttach(t, h2, 6, "state")
	h3 := tc.node(3).NewHandle("worker")
	rl3, r3 := mustAttach(t, h3, 6, "state")
	settle()

	// Produce v2 and push it everywhere so state survives the home.
	rl1.SetUpdateReplicas(3)
	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r1.Content().IntsData()[0] = 55
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	// Log the state, then lose the home site.
	state := tc.node(1).Sync().Snapshot()
	tc.kill(1)

	// Site 2 spawns the surrogate and informs the daemons.
	if err := tc.node(2).StartSurrogate(ctx, state); err != nil {
		t.Fatal(err)
	}
	settle()

	// Site 3's lock traffic must now succeed against the surrogate.
	lockCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	if err := rl3.Lock(lockCtx); err != nil {
		t.Fatalf("lock via surrogate: %v", err)
	}
	if got := r3.Content().IntsData()[0]; got != 55 {
		t.Fatalf("value after failover = %d, want 55", got)
	}
	r3.Content().IntsData()[0] = 56
	if err := rl3.Unlock(ctx); err != nil {
		t.Fatalf("unlock via surrogate: %v", err)
	}
	if got := tc.node(2).Sync().Epoch(); got != state.Epoch+1 {
		t.Fatalf("surrogate epoch = %d, want %d", got, state.Epoch+1)
	}
}

// TestAbandonedGrantAutoReleased: a requester whose context expires while
// waiting must not leave the lock permanently held by a phantom.
func TestAbandonedGrantAutoReleased(t *testing.T) {
	opts := defaultOpts()
	tc := newTestCluster(t, 2, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("holder")
	rl1, _ := mustCreate(t, h1, 6, "x", []int32{1}, 2)
	h2 := tc.node(2).NewHandle("impatient")
	rl2, _ := mustAttach(t, h2, 6, "x")
	settle()

	// Site 1 holds the lock while site 2's request times out in queue.
	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	shortCtx, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	err := rl2.Lock(shortCtx)
	cancel()
	if err == nil {
		t.Fatal("queued lock acquired while held elsewhere")
	}

	// Site 1 releases; the grant goes to the departed site-2 thread,
	// which must auto-release it so site 1 can reacquire.
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	lockCtx, cancel2 := context.WithTimeout(ctx, 10*time.Second)
	defer cancel2()
	if err := rl1.Lock(lockCtx); err != nil {
		t.Fatalf("lock stuck with phantom holder: %v", err)
	}
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestDeadRequesterSkipped: a queued requester that dies before its grant
// must not stall the queue behind it.
func TestDeadRequesterSkipped(t *testing.T) {
	opts := defaultOpts()
	opts.reqTO = 300 * time.Millisecond
	tc := newTestCluster(t, 3, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("holder")
	rl1, _ := mustCreate(t, h1, 6, "q", []int32{1}, 3)
	h2 := tc.node(2).NewHandle("dies-queued")
	rl2, _ := mustAttach(t, h2, 6, "q")
	h3 := tc.node(3).NewHandle("patient")
	rl3, _ := mustAttach(t, h3, 6, "q")
	settle()

	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	// Site 2 queues up, then dies.
	queued := make(chan error, 1)
	go func() { queued <- rl2.Lock(ctx) }()
	time.Sleep(100 * time.Millisecond)
	tc.kill(2)

	// Site 3 queues behind the dead requester.
	got3 := make(chan error, 1)
	go func() { got3 <- rl3.Lock(ctx) }()
	time.Sleep(50 * time.Millisecond)

	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got3:
		if err != nil {
			t.Fatalf("site 3 lock: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("queue stalled behind a dead requester")
	}
	_ = rl3.Unlock(ctx)
	<-queued // site 2's goroutine fails via closed node; drain it
}

// TestWireSiteSetInGrant sanity-checks that sharer sets round-trip through
// real grants (regression guard for the bit-vector encoding in context).
func TestWireSiteSetInGrant(t *testing.T) {
	tc := newTestCluster(t, 3, defaultOpts())
	ctx := tctx(t)
	h1 := tc.node(1).NewHandle("a")
	rl1, _ := mustCreate(t, h1, 6, "s", []int32{1}, 3)
	h2 := tc.node(2).NewHandle("b")
	_, _ = mustAttach(t, h2, 6, "s")
	settle()

	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	grant := func() *wire.Grant {
		rl1.st.mu.Lock()
		defer rl1.st.mu.Unlock()
		return rl1.st.heldGrant
	}()
	if !grant.Sharers.Contains(1) || !grant.Sharers.Contains(2) {
		t.Fatalf("grant sharers = %s, want {1,2}", grant.Sharers)
	}
	_ = rl1.Unlock(ctx)
}

// TestAbortDuringTransferWait: an acquirer whose context expires while
// waiting for replica data (grant already held) must hand the lock back
// (Aborted release) so the system recovers without lease-breaking it.
func TestAbortDuringTransferWait(t *testing.T) {
	opts := defaultOpts()
	opts.reqTO = 2 * time.Second
	// Slow failure detection (long retransmit schedule) so recovery takes
	// longer than the acquirer is willing to wait.
	opts.mnetCfg = mnet.Config{RTO: 400 * time.Millisecond, MaxRetries: 5}
	tc := newTestCluster(t, 3, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rl1, r1 := mustCreate(t, h1, 17, "fragile", []int32{10}, 3)
	h2 := tc.node(2).NewHandle("writer")
	rl2, r2 := mustAttach(t, h2, 17, "fragile")
	h3 := tc.node(3).NewHandle("impatient")
	rl3, _ := mustAttach(t, h3, 17, "fragile")
	settle()

	// Site 2 produces the newest version, then dies: the next transfer
	// directive will hang until the sync thread's timeout.
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r2.Content().IntsData()[0] = 20
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	tc.kill(2)

	// Site 3 acquires with less patience than the recovery path needs:
	// it gets the grant, waits for data that cannot arrive in time, and
	// aborts.
	shortCtx, cancel := context.WithTimeout(ctx, 400*time.Millisecond)
	err := rl3.Lock(shortCtx)
	cancel()
	if err == nil {
		t.Fatal("impatient lock succeeded without data")
	}

	// The aborted hold must not wedge the lock: the creator reacquires
	// (recovery eventually falls back to its v1 copy).
	lockCtx, cancel2 := context.WithTimeout(ctx, 20*time.Second)
	defer cancel2()
	if err := rl1.Lock(lockCtx); err != nil {
		t.Fatalf("lock wedged after aborted acquisition: %v", err)
	}
	if got := r1.Content().IntsData()[0]; got != 10 {
		t.Fatalf("value = %d, want the surviving 10", got)
	}
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
}
