package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mocha/internal/marshal"
	"mocha/internal/mnet"
	"mocha/internal/wire"
)

// assertSyncInvariants fails the test if the home site's lock table
// violates a protocol invariant.
func assertSyncInvariants(t *testing.T, tc *testCluster) {
	t.Helper()
	if err := tc.node(1).Sync().checkInvariants(); err != nil {
		t.Fatalf("sync invariant violated: %v", err)
	}
}

// TestDeadPeerDoesNotStallUnrelatedLock is the S30 regression test: a
// grant on lock A whose transfer source is dead forces the Section 4
// recovery (directive timeout + daemon poll), but an acquire on unrelated
// lock B during that window must stay within a small multiple of the
// healthy baseline instead of queueing behind the stalled recovery for up
// to RequestTimeout.
func TestDeadPeerDoesNotStallUnrelatedLock(t *testing.T) {
	opts := defaultOpts()
	opts.reqTO = 1 * time.Second
	// Patient retransmission: sends to the dead site fail only at the
	// RequestTimeout deadline, reproducing the worst-case stall the old
	// inline-I/O dispatcher imposed on every lock.
	opts.mnetCfg = mnet.Config{RTO: 2 * time.Second, MaxRetries: 5}
	tc := newTestCluster(t, 4, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rlA1, _ := mustCreate(t, h1, 40, "stalled", []int32{1}, 3)
	_, _ = mustCreate(t, h1, 41, "healthy", []int32{1}, 2)
	_ = rlA1
	h4 := tc.node(4).NewHandle("doomed")
	rlA4, rA4 := mustAttach(t, h4, 40, "stalled")
	h2 := tc.node(2).NewHandle("recoverer")
	rlA2, _ := mustAttach(t, h2, 40, "stalled")
	h3 := tc.node(3).NewHandle("prober")
	rlB3, _ := mustAttach(t, h3, 41, "healthy")
	settle()

	// Site 4 becomes the sole holder of lock A's newest version (UR=1).
	if err := rlA4.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	rA4.Content().IntsData()[0] = 2
	if err := rlA4.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	cycleB := func() time.Duration {
		t.Helper()
		start := time.Now()
		if err := rlB3.Lock(ctx); err != nil {
			t.Fatalf("lock B: %v", err)
		}
		lat := time.Since(start)
		if err := rlB3.Unlock(ctx); err != nil {
			t.Fatalf("unlock B: %v", err)
		}
		return lat
	}
	// Warm up (first acquire pays the initial transfer), then baseline.
	cycleB()
	cycleB()
	var baseline time.Duration
	for i := 0; i < 3; i++ {
		baseline += cycleB()
	}
	baseline /= 3

	// Kill the transfer source and drive lock A's recovery from site 2.
	tc.kill(4)
	recovered := make(chan error, 1)
	go func() {
		if err := rlA2.Lock(ctx); err != nil {
			recovered <- err
			return
		}
		recovered <- rlA2.Unlock(ctx)
	}()
	// Let the acquire reach the home site and enter the directive stall.
	time.Sleep(150 * time.Millisecond)

	// Grant latency on the unrelated lock during the stall window.
	for i := 0; i < 3; i++ {
		lat := cycleB()
		if lat > opts.reqTO/2 {
			t.Fatalf("unrelated lock grant took %v during recovery of lock 40 (healthy baseline %v): head-of-line blocking",
				lat, baseline)
		}
	}

	if err := <-recovered; err != nil {
		t.Fatalf("recovery acquire of lock 40: %v", err)
	}
	assertSyncInvariants(t, tc)
}

// TestUnknownLockNacked verifies that acquiring a lock ID no daemon ever
// registered is refused with ErrUnknownLock and fabricates no record.
func TestUnknownLockNacked(t *testing.T) {
	opts := defaultOpts()
	opts.reqTO = 500 * time.Millisecond
	tc := newTestCluster(t, 2, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rl1, _ := mustCreate(t, h1, 6, "real", []int32{1}, 2)
	_ = rl1
	settle()

	before := tc.node(1).Sync().lockCount()
	h2 := tc.node(2).NewHandle("guesser")
	err := h2.ReplicaLock(99).Lock(ctx)
	if !errors.Is(err, ErrUnknownLock) {
		t.Fatalf("Lock(99) = %v, want ErrUnknownLock", err)
	}
	if got := tc.node(1).Sync().lockCount(); got != before {
		t.Fatalf("lock table grew from %d to %d records on a refused acquire", before, got)
	}

	// The registered lock still works for the same (unbanned) thread.
	rl2, _ := mustAttach(t, h2, 6, "real")
	settle()
	if err := rl2.Lock(ctx); err != nil {
		t.Fatalf("registered lock after nack: %v", err)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	assertSyncInvariants(t, tc)
}

// TestEmptyLockRecordsCollected verifies the lease sweep garbage-collects
// lock records that carry no state (as a surrogate restore can leave
// behind) while keeping live records.
func TestEmptyLockRecordsCollected(t *testing.T) {
	tc := newTestCluster(t, 1, defaultOpts())
	s := tc.node(1).Sync()

	s.ensureLock(77) // empty: no sharers, holds, queue, names, version
	live := s.ensureLock(78)
	live.mu.Lock()
	live.sharers.Add(1)
	live.version = 1
	live.mu.Unlock()

	deadline := time.Now().Add(2 * time.Second)
	for s.lookupLock(77) != nil && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if s.lookupLock(77) != nil {
		t.Fatal("empty lock record 77 survived the sweep")
	}
	if s.lookupLock(78) == nil {
		t.Fatal("live lock record 78 was collected")
	}
}

// TestBannedTablePermanent verifies bans never age out: the FIFO eviction
// the table once had let a banned thread return from the dead after enough
// other failures pushed its record off the end. Overflowing the old bound
// must leave the earliest ban enforced, and a re-ban must not alter the
// record (each ban is two integers, so the table can afford them all).
func TestBannedTablePermanent(t *testing.T) {
	s := &syncThread{banned: make(map[wire.ThreadID]banRecord)}
	const n = 1500
	for i := 1; i <= n; i++ {
		s.ban(wire.MakeThreadID(2, uint32(i)), wire.LockID(i), 3)
	}
	if got := len(s.banned); got != n {
		t.Fatalf("banned table has %d entries, want %d", got, n)
	}
	if !s.Banned(wire.MakeThreadID(2, 1)) {
		t.Fatal("earliest ban evicted; bans must be permanent")
	}
	if !s.Banned(wire.MakeThreadID(2, n)) {
		t.Fatal("newest ban missing")
	}
	reason, ok := s.bannedReason(wire.MakeThreadID(2, 1))
	if !ok || reason != banReason(banRecord{lock: 1, site: 3}) {
		t.Fatalf("earliest ban reason = %q, %v", reason, ok)
	}
	// Re-banning an already-banned thread keeps the original record.
	s.ban(wire.MakeThreadID(2, 1), 999, 9)
	if got, _ := s.bannedReason(wire.MakeThreadID(2, 1)); got != reason {
		t.Fatalf("re-ban rewrote record: %q, want %q", got, reason)
	}
	if got := len(s.banned); got != n {
		t.Fatalf("banned table has %d entries after re-ban, want %d", got, n)
	}
}

// TestSerialIOModeFunctional verifies the SyncSerialIO ablation baseline
// still implements the protocol correctly (it only re-serializes I/O).
func TestSerialIOModeFunctional(t *testing.T) {
	opts := defaultOpts()
	opts.syncSerial = true
	tc := newTestCluster(t, 2, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rl1, r1 := mustCreate(t, h1, 12, "serial", []int32{5}, 2)
	h2 := tc.node(2).NewHandle("peer")
	rl2, r2 := mustAttach(t, h2, 12, "serial")
	settle()

	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r1.Content().IntsData()[0] = 6
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if got := r2.Content().IntsData()[0]; got != 6 {
		t.Fatalf("serial-mode transfer: got %d, want 6", got)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	assertSyncInvariants(t, tc)
}

// TestStressShardedSync hammers several locks across shards from three
// sites while a fourth site dies holding a lock, mixing acquire/release
// traffic with a concurrent lease-break; run under -race by `make race`.
// Afterwards the protocol invariants must hold and no increment may be
// lost.
func TestStressShardedSync(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		workers    = 3
		locks      = 6
		increments = 5
	)
	opts := defaultOpts()
	opts.syncShards = 4 // force cross-shard collisions
	tc := newTestCluster(t, 4, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	creatorLocks := make([]*ReplicaLock, locks)
	for l := 0; l < locks; l++ {
		rl, _ := mustCreate(t, h1, wire.LockID(50+l), fmt.Sprintf("sctr%d", l), []int32{0}, 3)
		creatorLocks[l] = rl
	}
	// Lock 60 will be held by site 4 when it dies.
	_, _ = mustCreate(t, h1, 60, "breakme", []int32{0}, 2)
	h4 := tc.node(4).NewHandle("doomed")
	h4.SetLease(150 * time.Millisecond)
	rl4, _ := mustAttach(t, h4, 60, "breakme")
	settle()

	if err := rl4.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	tc.kill(4) // dies holding lock 60

	var wg sync.WaitGroup
	errCh := make(chan error, workers*locks+1)
	for s := 1; s <= workers; s++ {
		site := wire.SiteID(s)
		for l := 0; l < locks; l++ {
			l := l
			wg.Add(1)
			go func() {
				defer wg.Done()
				h := tc.node(site).NewHandle(fmt.Sprintf("sw%d-%d", site, l))
				var r *Replica
				rl := h.ReplicaLock(wire.LockID(50 + l))
				if site == 1 {
					r = creatorLocks[l].Replicas()[0]
				} else {
					var err error
					r, err = tc.node(site).AttachReplica(fmt.Sprintf("sctr%d", l), marshal.Ints(nil))
					if err != nil {
						errCh <- err
						return
					}
					if err := rl.Associate(ctx, r); err != nil {
						errCh <- err
						return
					}
				}
				for i := 0; i < increments; i++ {
					if err := rl.Lock(ctx); err != nil {
						errCh <- fmt.Errorf("site %d lock %d: %w", site, l, err)
						return
					}
					r.Content().IntsData()[0]++
					if err := rl.Unlock(ctx); err != nil {
						errCh <- err
						return
					}
				}
				errCh <- nil
			}()
		}
	}
	// Concurrently, site 2 waits out the lease break of lock 60.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := tc.node(2).NewHandle("taker")
		r, err := tc.node(2).AttachReplica("breakme", marshal.Ints(nil))
		if err != nil {
			errCh <- err
			return
		}
		rl := h.ReplicaLock(60)
		if err := rl.Associate(ctx, r); err != nil {
			errCh <- err
			return
		}
		if err := rl.Lock(ctx); err != nil {
			errCh <- fmt.Errorf("acquire after lease break: %w", err)
			return
		}
		errCh <- rl.Unlock(ctx)
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	if !tc.node(1).Sync().Banned(h4.ID()) {
		t.Fatal("dead holder of lock 60 was not banned")
	}
	for l, rl := range creatorLocks {
		if err := rl.Lock(ctx); err != nil {
			t.Fatal(err)
		}
		if got := rl.Replicas()[0].Content().IntsData()[0]; got != workers*increments {
			t.Fatalf("lock %d: final = %d, want %d", 50+l, got, workers*increments)
		}
		if err := rl.Unlock(ctx); err != nil {
			t.Fatal(err)
		}
	}
	assertSyncInvariants(t, tc)
}
