package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mocha/internal/marshal"
	"mocha/internal/netsim"
	"mocha/internal/transport"
	"mocha/internal/wire"
)

// countingCodec counts Marshal calls to observe the payload cache.
type countingCodec struct {
	marshal.Codec
	calls atomic.Int64
}

func (c *countingCodec) Marshal(ct *marshal.Content) ([]byte, error) {
	c.calls.Add(1)
	return c.Codec.Marshal(ct)
}

func TestPayloadCacheKeyedByVersion(t *testing.T) {
	codec := &countingCodec{Codec: marshal.NewFast(netsim.Native())}
	st := newLockLocal(7, 0)
	st.replicas = []*Replica{
		{name: "a", content: marshal.Ints([]int32{1, 2, 3})},
		{name: "b", content: marshal.Bytes([]byte("payload"))},
	}
	st.version = 3
	st.mu.Lock()
	defer st.mu.Unlock()

	first, err := st.marshalPayloadsLocked(codec)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 2 || codec.calls.Load() != 2 {
		t.Fatalf("cold marshal: %d payloads, %d codec calls", len(first), codec.calls.Load())
	}
	if _, err := st.marshalPayloadsLocked(codec); err != nil {
		t.Fatal(err)
	}
	if codec.calls.Load() != 2 {
		t.Fatalf("same-version request re-marshaled: %d codec calls", codec.calls.Load())
	}

	st.version++
	if _, err := st.marshalPayloadsLocked(codec); err != nil {
		t.Fatal(err)
	}
	if codec.calls.Load() != 4 {
		t.Fatalf("version bump did not miss the cache: %d codec calls", codec.calls.Load())
	}

	// Content rewritten behind an unchanged version (an exclusive release,
	// or a recovery rewind) must invalidate explicitly.
	st.invalidatePayloadsLocked()
	if _, err := st.marshalPayloadsLocked(codec); err != nil {
		t.Fatal(err)
	}
	if codec.calls.Load() != 6 {
		t.Fatalf("invalidate did not miss the cache: %d codec calls", codec.calls.Load())
	}
}

// TestPushPayloadsMarshalOnce verifies the marshal-once pipeline: one
// PushUpdate wire marshal per dissemination round, however many sites the
// blob fans out to.
func TestPushPayloadsMarshalOnce(t *testing.T) {
	tc := newTestCluster(t, 6, defaultOpts())
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("w")
	mustCreate(t, h1, 5, "v", []int32{0}, 6)
	for i := wire.SiteID(2); i <= 6; i++ {
		mustAttach(t, tc.node(i).NewHandle("r"), 5, "v")
	}
	settle()

	home := tc.node(1)
	for _, targets := range [][]wire.SiteID{{2}, {2, 3, 4, 5, 6}} {
		before := home.PushUpdateMarshals()
		version, payloads, err := home.PreparePush(5)
		if err != nil {
			t.Fatal(err)
		}
		acked, err := home.PushPayloads(ctx, 5, version, payloads, targets)
		if err != nil {
			t.Fatalf("push to %d sites: %v", len(targets), err)
		}
		if len(acked) != len(targets) {
			t.Fatalf("acked %v, want %v", acked, targets)
		}
		if got := home.PushUpdateMarshals() - before; got != 1 {
			t.Fatalf("pushed to %d sites with %d PushUpdate marshals, want exactly 1", len(targets), got)
		}
	}
}

// TestSequentialFanoutOrder pins the paper-faithful mode: with
// DisseminationFanout=1, PushPayloads must still ack every target and stay
// marshal-once.
func TestSequentialFanoutOrder(t *testing.T) {
	opts := defaultOpts()
	opts.fanout = 1
	tc := newTestCluster(t, 4, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("w")
	mustCreate(t, h1, 5, "v", []int32{0}, 4)
	for i := wire.SiteID(2); i <= 4; i++ {
		mustAttach(t, tc.node(i).NewHandle("r"), 5, "v")
	}
	settle()

	home := tc.node(1)
	before := home.PushUpdateMarshals()
	version, payloads, err := home.PreparePush(5)
	if err != nil {
		t.Fatal(err)
	}
	targets := []wire.SiteID{2, 3, 4}
	acked, err := home.PushPayloads(ctx, 5, version, payloads, targets)
	if err != nil {
		t.Fatal(err)
	}
	for i, site := range targets {
		if i >= len(acked) || acked[i] != site {
			t.Fatalf("sequential fan-out acked %v, want %v in order", acked, targets)
		}
	}
	if got := home.PushUpdateMarshals() - before; got != 1 {
		t.Fatalf("sequential fan-out marshaled %d times, want 1", got)
	}
}

// TestParallelDisseminationWithFaults pushes one update to five sharers in
// parallel while one link is lossy and another is cut: every reachable
// site must land on the released version, and the RELEASELOCK's up-to-date
// bit vector at the synchronization thread must match exactly the sites
// that acknowledged.
func TestParallelDisseminationWithFaults(t *testing.T) {
	opts := defaultOpts()
	opts.mnetCfg.MaxRetries = 8
	opts.xferTO = 2 * time.Second
	tc := newTestCluster(t, 6, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("writer")
	rl1, r1 := mustCreate(t, h1, 9, "v", []int32{0}, 6)
	remotes := make(map[wire.SiteID]*ReplicaLock)
	contents := make(map[wire.SiteID]*Replica)
	for i := wire.SiteID(2); i <= 6; i++ {
		rl, r := mustAttach(t, tc.node(i).NewHandle("reader"), 9, "v")
		remotes[i] = rl
		contents[i] = r
	}
	settle()

	// Degrade the 1<->4 link and cut 1<->6 entirely: the parallel fan-out
	// must ride out retransmissions on one transfer while another target is
	// plain unreachable.
	net := tc.sn.Underlying()
	lossy := netsim.Perfect().Lossy(0.3)
	net.SetLinkProfile(1, 4, lossy)
	net.SetLinkProfile(4, 1, lossy)
	net.Partition(1, 6, true)

	rl1.SetUpdateReplicas(6)
	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r1.Content().IntsData()[0] = 42
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	released := rl1.Version()
	if released == 0 {
		t.Fatal("home version still 0 after exclusive release")
	}
	for i := wire.SiteID(2); i <= 5; i++ {
		if got := remotes[i].Version(); got != released {
			t.Fatalf("site %d at version %d, want %d", i, got, released)
		}
		if got := contents[i].Content().IntsData()[0]; got != 42 {
			t.Fatalf("site %d value %d, want 42", i, got)
		}
	}
	if got := remotes[6].Version(); got >= released {
		t.Fatalf("partitioned site 6 at version %d, want < %d", got, released)
	}

	// The release carries the acked set plus the releaser; the manager's
	// up-to-date bit vector must be exactly {1,2,3,4,5}. The release is
	// processed asynchronously by the sync thread, so poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		up := tc.node(1).Sync().Snapshot().Locks[9].UpToDate
		ok := up.Len() == 5
		for i := wire.SiteID(1); i <= 5; i++ {
			ok = ok && up.Contains(i)
		}
		if ok && !up.Contains(6) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("up-to-date set %v, want {1,2,3,4,5}", up)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestHybridConcurrentPushStreamDemux runs two dissemination rounds of
// different locks concurrently over the hybrid protocol. Each round
// performs stream handshakes with the same peers at the same time; a
// handshake reply routed to the wrong waiter would deliver one lock's blob
// over the other's connection and corrupt the remote contents.
func TestHybridConcurrentPushStreamDemux(t *testing.T) {
	opts := defaultOpts()
	opts.mode = ModeHybrid
	tc := newTestCluster(t, 3, opts)
	ctx := tctx(t)

	markers := map[wire.LockID]int32{5: 111, 6: 222}
	names := map[wire.LockID]string{5: "a", 6: "b"}
	h1 := tc.node(1).NewHandle("w")
	for lock, marker := range markers {
		data := make([]int32, 2048)
		for i := range data {
			data[i] = marker
		}
		mustCreate(t, h1, lock, names[lock], data, 3)
	}
	attached := make(map[wire.SiteID]map[wire.LockID]*Replica)
	for i := wire.SiteID(2); i <= 3; i++ {
		attached[i] = make(map[wire.LockID]*Replica)
		h := tc.node(i).NewHandle("r")
		for lock, name := range names {
			_, r := mustAttach(t, h, lock, name)
			attached[i][lock] = r
		}
	}
	settle()

	home := tc.node(1)
	targets := []wire.SiteID{2, 3}
	errs := make(map[wire.LockID]error)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for lock := range markers {
		wg.Add(1)
		go func(lock wire.LockID) {
			defer wg.Done()
			version, payloads, err := home.PreparePush(lock)
			if err == nil {
				_, err = home.PushPayloads(ctx, lock, version, payloads, targets)
			}
			mu.Lock()
			errs[lock] = err
			mu.Unlock()
		}(lock)
	}
	wg.Wait()
	for lock, err := range errs {
		if err != nil {
			t.Fatalf("concurrent push of lock %d: %v", lock, err)
		}
	}

	for i := wire.SiteID(2); i <= 3; i++ {
		for lock, marker := range markers {
			data := attached[i][lock].Content().IntsData()
			if len(data) != 2048 {
				t.Fatalf("site %d lock %d: %d ints, want 2048", i, lock, len(data))
			}
			for _, v := range data {
				if v != marker {
					t.Fatalf("site %d lock %d received value %d, want %d: stream replies crossed", i, lock, v, marker)
				}
			}
		}
	}
}

// TestAbandonedStreamListenerObserved forces the hybrid dial to fail so
// the receiver's one-shot listener is never connected: the timeout must
// surface as a fault log entry and a counter, not a silent goroutine exit.
func TestAbandonedStreamListenerObserved(t *testing.T) {
	opts := defaultOpts()
	opts.mode = ModeHybrid
	opts.xferTO = 500 * time.Millisecond
	opts.wrapStack = func(site wire.SiteID, s transport.Stack) transport.Stack {
		return &brokenDialStack{Stack: s}
	}
	tc := newTestCluster(t, 2, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("a")
	mustCreate(t, h1, 5, "v", []int32{1}, 2)
	rl2, _ := mustAttach(t, tc.node(2).NewHandle("b"), 5, "v")
	settle()

	// Site 2's acquisition makes site 1 dial a stream to site 2; the dial
	// fails and the transfer falls back to MNet, leaving site 2's listener
	// to time out.
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for tc.node(2).AbandonedStreamListeners() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned stream listener never counted")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if tc.node(2).Log().CountCategory("fault") == 0 {
		t.Fatal("abandoned listener not logged as a fault event")
	}
}
