package core

import (
	"testing"
	"time"

	"mocha/internal/netsim"
	"mocha/internal/wire"
)

// TestRejoinedManagerDoesNotReclaimSlice pins the ring-membership gap in
// the consistent-hash home placement: standby promotion is one-shot and
// the static ring has no rejoin protocol (see homeState.monitor), so a
// manager that was partitioned away and later heals never reclaims its
// lock slice from the promoted standby. The standby keeps serving, and
// the rejoined manager is left holding a stale record that nothing ever
// reconciles or garbage-collects.
//
// TRACKING: this test asserts today's behavior on purpose. When a rejoin
// protocol lands (the healed manager reclaims its slice — or cleanly
// drops its records and defers to the promoted standby), flip the two
// expectations below: the stale record should then either carry the
// advanced version or be gone entirely.
func TestRejoinedManagerDoesNotReclaimSlice(t *testing.T) {
	const sites = 3
	const lockID = wire.LockID(33)
	tc := newTestCluster(t, sites, placementOpts())
	ctx := tctx(t)

	home, _ := tc.node(1).homeOf(lockID)
	succ := tc.node(1).Ring().Successor(home)
	third := otherSite(t, sites, home, succ)

	hc := tc.node(home).NewHandle("creator")
	rlC, _ := mustCreate(t, hc, lockID, "slice", []int32{1}, sites)
	_ = rlC
	hw := tc.node(third).NewHandle("writer")
	rlW, repW := mustAttach(t, hw, lockID, "slice")
	settle()

	// Commit one write through the original home so its record (and the
	// standby shadow streamed to succ) carries a real committed version.
	if err := rlW.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	repW.Content().IntsData()[0] = 2
	if err := rlW.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	settle()

	staleRec := tc.node(home).Sync().lookupLock(lockID)
	if staleRec == nil {
		t.Fatal("no record at the original home")
	}
	staleRec.mu.Lock()
	staleVersion := staleRec.version
	staleRec.mu.Unlock()

	// Partition the home from the rest of the cluster (both directions —
	// a dead-to-the-world manager, but one that can come back, which
	// tc.kill cannot model) and promote its standby.
	net := tc.sn.Underlying()
	for i := 1; i <= sites; i++ {
		if wire.SiteID(i) != home {
			net.Partition(netsim.NodeID(home), netsim.NodeID(i), true)
		}
	}
	tc.node(succ).PromoteStandby(home)
	settle()

	// The promoted standby serves the slice: a write from the third site
	// lands at succ and advances the version past the partitioned
	// manager's record.
	if err := rlW.Lock(ctx); err != nil {
		t.Fatalf("acquire via promoted standby: %v", err)
	}
	repW.Content().IntsData()[0] = 3
	if err := rlW.Unlock(ctx); err != nil {
		t.Fatalf("release into promoted standby: %v", err)
	}

	// Heal: the original manager rejoins the network intact, records and
	// all. Give housekeeping a few sweeps to do whatever it is going to
	// do — which, today, is nothing.
	for i := 1; i <= sites; i++ {
		if wire.SiteID(i) != home {
			net.Partition(netsim.NodeID(home), netsim.NodeID(i), false)
		}
	}
	settle()
	time.Sleep(200 * time.Millisecond)

	// The standby still owns the slice after the heal: acquires keep
	// resolving to succ's record and its version keeps advancing.
	if err := rlW.Lock(ctx); err != nil {
		t.Fatalf("acquire after heal: %v", err)
	}
	if got := repW.Content().IntsData()[0]; got != 3 {
		t.Fatalf("post-heal read = %d, want 3", got)
	}
	repW.Content().IntsData()[0] = 4
	if err := rlW.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
	settle()

	succRec := tc.node(succ).Sync().lookupLock(lockID)
	if succRec == nil {
		t.Fatal("promoted standby lost the record")
	}
	succRec.mu.Lock()
	succVersion := succRec.version
	succRec.mu.Unlock()
	if succVersion <= staleVersion {
		t.Fatalf("standby record version %d never advanced past the pre-partition %d",
			succVersion, staleVersion)
	}

	// The gap itself: the rejoined manager still holds its pre-partition
	// record, frozen at the stale version — no reclaim, no reconciliation,
	// no GC. (Flip to == succVersion, or to a nil lookup, once a rejoin
	// protocol exists.)
	rejoined := tc.node(home).Sync().lookupLock(lockID)
	if rejoined == nil {
		t.Fatal("rejoined manager dropped its record: a rejoin protocol " +
			"appeared — update this test's expectations")
	}
	rejoined.mu.Lock()
	rejoinedVersion := rejoined.version
	rejoined.mu.Unlock()
	if rejoinedVersion != staleVersion {
		t.Fatalf("rejoined manager's record moved from v%d to v%d: reconciliation "+
			"appeared — update this test's expectations", staleVersion, rejoinedVersion)
	}
}
