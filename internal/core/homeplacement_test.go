package core

import (
	"testing"
	"time"

	"mocha/internal/obs"
	"mocha/internal/wire"
)

// placementOpts is the cluster configuration the home-placement tests
// share: mobile namespace on, short sweeps so migrations and failovers
// resolve quickly, and a shared metrics registry for counter assertions.
func placementOpts() clusterOpts {
	opts := defaultOpts()
	opts.placement = true
	opts.lease = 5 * time.Second
	opts.metrics = obs.NewRegistry()
	return opts
}

// otherSite returns a live site different from every excluded one.
func otherSite(t *testing.T, n int, exclude ...wire.SiteID) wire.SiteID {
	t.Helper()
next:
	for i := 1; i <= n; i++ {
		site := wire.SiteID(i)
		for _, ex := range exclude {
			if site == ex {
				continue next
			}
		}
		return site
	}
	t.Fatal("no site left")
	return 0
}

// TestStandbyPromotionPreservesLockState kills a lock's home while a
// client holds the lock and verifies the ring successor's promoted record
// carries the hold (with a live remaining lease), the committed version,
// the version floor, and the dirty set — and that the lock remains fully
// usable: the surviving holder releases into the new home and another
// thread acquires.
func TestStandbyPromotionPreservesLockState(t *testing.T) {
	const sites = 3
	const lockID = wire.LockID(30)
	tc := newTestCluster(t, sites, placementOpts())
	ctx := tctx(t)

	home, _ := tc.node(1).homeOf(lockID)
	succ := tc.node(1).Ring().Successor(home)
	holderSite := otherSite(t, sites, home)

	// Create at the home's own site so setup survives the later kill
	// cleanly, then attach the holder.
	hc := tc.node(home).NewHandle("creator")
	rlC, _ := mustCreate(t, hc, lockID, "mobile", []int32{7}, sites)
	_ = rlC
	hh := tc.node(holderSite).NewHandle("survivor")
	rlH, repH := mustAttach(t, hh, lockID, "mobile")
	settle()

	if err := rlH.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	repH.Content().IntsData()[0] = 8

	// Decorate the home's record with a dirty marker and re-stream, so the
	// test proves the shadow carries the dirty set, not just the hold.
	sHome := tc.node(home).Sync()
	l := sHome.lookupLock(lockID)
	if l == nil {
		t.Fatal("no record at home")
	}
	l.mu.Lock()
	l.dirty.Add(9)
	wantVersion, wantFloor := l.version, l.highWater
	l.mu.Unlock()
	sHome.home.streamHoldSync(l)

	tc.kill(home)
	tc.node(succ).PromoteStandby(home)
	settle()

	got := tc.node(succ).Sync().lookupLock(lockID)
	if got == nil {
		t.Fatal("promotion installed no record at the standby")
	}
	got.mu.Lock()
	h := got.holder
	version, floor := got.version, got.highWater
	dirty := got.dirty.Clone()
	got.mu.Unlock()
	if h == nil || h.thread != hh.ID() {
		t.Fatalf("promoted record holder = %+v, want thread %d", h, hh.ID())
	}
	if !h.restored {
		t.Fatal("promoted hold not marked restored")
	}
	if remaining := h.lease - time.Since(h.grantedAt); remaining <= 0 {
		t.Fatalf("promoted hold's lease already expired (remaining %v)", remaining)
	}
	if version != wantVersion || floor < wantFloor {
		t.Fatalf("promoted record v%d floor %d, want v%d floor >= %d", version, floor, wantVersion, wantFloor)
	}
	if !dirty.Contains(9) {
		t.Fatalf("promoted record dirty set %v lost the streamed marker", dirty.Sites())
	}
	if v := tc.node(succ).metrics.CounterValue(obs.CStandbyPromotions); v < 1 {
		t.Fatalf("CStandbyPromotions = %d, want >= 1", v)
	}

	// The survivor's release must land at the new home (the HomeMoved
	// broadcast taught its daemon the route), and a fresh thread must be
	// able to acquire and read the held write.
	if err := rlH.Unlock(ctx); err != nil {
		t.Fatalf("release into promoted home: %v", err)
	}
	third := otherSite(t, sites, home, holderSite)
	if third == 0 {
		third = succ
	}
	h2 := tc.node(third).NewHandle("after")
	rl2, rep2 := mustAttach(t, h2, lockID, "mobile")
	settle()
	if err := rl2.Lock(ctx); err != nil {
		t.Fatalf("acquire after promotion: %v", err)
	}
	if data := rep2.Content().IntsData(); len(data) == 0 || data[0] != 8 {
		t.Fatalf("post-promotion read = %v, want [8]", data)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestHomeMigratesTowardLocality drives every acquire of a lock from one
// remote site and verifies the sweep hands the lock's home to it: the
// accessor ends up adopted as home, the migration counter moves, and the
// lock stays acquirable from the old home's site afterwards.
func TestHomeMigratesTowardLocality(t *testing.T) {
	const sites = 3
	const lockID = wire.LockID(31)
	opts := placementOpts()
	tc := newTestCluster(t, sites, opts)
	ctx := tctx(t)

	home, _ := tc.node(1).homeOf(lockID)
	accessor := otherSite(t, sites, home)

	hc := tc.node(home).NewHandle("creator")
	rlC, _ := mustCreate(t, hc, lockID, "drifter", []int32{0}, sites)
	_ = rlC
	ha := tc.node(accessor).NewHandle("local")
	rlA, repA := mustAttach(t, ha, lockID, "drifter")
	settle()

	for i := 0; i < 2*migrateMinAcquires; i++ {
		if err := rlA.Lock(ctx); err != nil {
			t.Fatalf("acquire %d: %v", i, err)
		}
		repA.Content().IntsData()[0]++
		if err := rlA.Unlock(ctx); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}

	// The sweep migrates once the record is idle with a dominant tally.
	hs := tc.node(accessor).Sync().home
	deadline := time.Now().Add(5 * time.Second)
	for !hs.isAdopted(lockID) && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if !hs.isAdopted(lockID) {
		t.Fatal("home never migrated to the dominant accessor")
	}
	if v := opts.metrics.CounterValue(obs.CHomeMigrations); v < 1 {
		t.Fatalf("CHomeMigrations = %d, want >= 1", v)
	}

	// The old home redirects: an acquire from its own site must still work.
	ho := tc.node(home).NewHandle("behind")
	rlO, repO := mustAttach(t, ho, lockID, "drifter")
	settle()
	if err := rlO.Lock(ctx); err != nil {
		t.Fatalf("acquire after migration: %v", err)
	}
	if data := repO.Content().IntsData(); len(data) == 0 || data[0] != int32(2*migrateMinAcquires) {
		t.Fatalf("post-migration read = %v, want [%d]", data, 2*migrateMinAcquires)
	}
	if err := rlO.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
}
