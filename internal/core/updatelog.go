package core

// The update log backs delta replica transfer: for each lock, the sites
// that produce or apply new versions remember which byte ranges of each
// replica's marshaled form changed at every version step. A transfer to a
// requester holding version F of data now at version T can then ship just
// the bytes in the union of the F→F+1, ..., T-1→T steps instead of the
// whole marshaled state. The log is deliberately forgetful — bounded
// depth, reset on any discontinuity — because the protocol always has the
// full transfer to fall back on.

import "mocha/internal/marshal"

// stepReplica describes how one replica's marshaled blob changed across a
// single version step.
type stepReplica struct {
	// full marks a replica with no usable range description for this step
	// (it appeared this step, or the diff was not computed); any chain
	// through this step ships the replica in full.
	full bool
	// resized marks a length change. A resize splices the tail, so range
	// unions across multiple steps are only valid when every earlier step
	// left the length alone; composition falls back to full otherwise.
	resized bool
	// newLen is the blob's length after the step.
	newLen int
	// ranges are the changed byte ranges in new-blob coordinates.
	ranges []marshal.Range
}

// deltaStep records one version transition for all of a lock's replicas.
type deltaStep struct {
	from, to uint64
	replicas map[string]stepReplica
}

// composedDelta is the result of folding a chain of steps for one replica.
type composedDelta struct {
	full   bool
	ranges []marshal.Range
}

// updateLog is the bounded version-chained history for one lock. The
// owning lockLocal's mutex guards it.
type updateLog struct {
	max   int
	steps []deltaStep
}

func newUpdateLog(max int) *updateLog {
	return &updateLog{max: max}
}

// record appends a version step. A step that does not continue the chain
// (its from is not the last step's to) resets the log first: the log only
// ever describes one contiguous version interval.
func (ul *updateLog) record(s deltaStep) {
	if n := len(ul.steps); n > 0 && ul.steps[n-1].to != s.from {
		ul.steps = ul.steps[:0]
	}
	ul.steps = append(ul.steps, s)
	if len(ul.steps) > ul.max {
		ul.steps = append(ul.steps[:0], ul.steps[len(ul.steps)-ul.max:]...)
	}
}

// reset forgets the chain, e.g. when the replica set changes, a version
// arrives without a known predecessor, or an unmarshal failure leaves the
// local state uncertain.
func (ul *updateLog) reset() {
	ul.steps = ul.steps[:0]
}

// depth reports how many steps the log currently holds (for tests).
func (ul *updateLog) depth() int { return len(ul.steps) }

// compose folds the steps covering (from, to] into one per-replica delta
// description. It fails (ok = false) when the log does not cover the
// interval. Replicas missing from any step of the chain, or resized before
// its final step, compose to full.
func (ul *updateLog) compose(from, to uint64) (map[string]composedDelta, bool) {
	if from >= to || len(ul.steps) == 0 {
		return nil, false
	}
	last := len(ul.steps) - 1
	if ul.steps[last].to != to {
		return nil, false
	}
	first := last
	for ul.steps[first].from != from {
		if first == 0 || ul.steps[first].from < from {
			return nil, false
		}
		first--
	}

	final := ul.steps[last].replicas
	out := make(map[string]composedDelta, len(final))
	for name, fin := range final {
		cd := composedDelta{full: fin.full}
		for i := first; i <= last && !cd.full; i++ {
			sr, ok := ul.steps[i].replicas[name]
			switch {
			case !ok || sr.full:
				cd = composedDelta{full: true}
			case sr.resized && i < last:
				// An early resize moved the tail; later same-length steps
				// recorded ranges against the new layout, but the
				// requester's base predates the splice.
				cd = composedDelta{full: true}
			case sr.newLen != fin.newLen && !sr.resized:
				// Defensive: lengths along a resize-free suffix must agree.
				cd = composedDelta{full: true}
			default:
				cd.ranges = append(cd.ranges, sr.ranges...)
			}
		}
		if !cd.full {
			cd.ranges = marshal.MergeRanges(cd.ranges, fin.newLen)
		}
		out[name] = cd
	}
	return out, true
}
