package core

import (
	"context"
	"strings"
	"testing"
	"time"

	"mocha/internal/wire"
)

// TestCrashedHoldMarksContentUncommitted pins down the dirty-read leak the
// seeded explorer found: an exclusive holder mutates its replicas in place,
// crashes between the local commit point and dissemination, and the site's
// daemon — still reachable — must not serve the scribbled bytes under the
// stale version label. After the site dies and the lease breaks, the
// manager must evict it from the up-to-date set so recovery hands the next
// holder the last committed version.
func TestCrashedHoldMarksContentUncommitted(t *testing.T) {
	opts := defaultOpts()
	opts.lease = 200 * time.Millisecond
	opts.sweep = 50 * time.Millisecond
	opts.reqTO = 500 * time.Millisecond
	opts.faultHooks = map[wire.SiteID]FaultHook{
		2: func(fc FaultContext) FaultDecision {
			if fc.Point == FPCrashAfterReleaseBeforePush {
				return FaultDecision{Drop: true}
			}
			return FaultDecision{}
		},
	}
	tc := newTestCluster(t, 3, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	rl1, r1 := mustCreate(t, h1, 7, "dirty", []int32{1}, 1)
	h2 := tc.node(2).NewHandle("crasher")
	rl2, r2 := mustAttach(t, h2, 7, "dirty")
	settle()

	// Site 2 acquires, rewrites the content in place, and "crashes" at the
	// injection point: nothing is disseminated, no release is sent, and
	// Unlock reports the injected failure.
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r2.Content().IntsData()[0] = 99
	if err := rl2.Unlock(ctx); err == nil {
		t.Fatal("unlock succeeded despite injected crash")
	}

	rl2.st.mu.Lock()
	dirty := rl2.st.uncommitted
	rl2.st.mu.Unlock()
	if !dirty {
		t.Fatal("aborted exclusive release did not mark content uncommitted")
	}

	// The daemon refuses transfer directives while the content is dirty:
	// serving it would publish uncommitted bytes as the committed version.
	err := tc.node(2).xfer.sendReplicas(&wire.TransferReplica{
		Lock: 7, Dest: 3, Version: 1, RequestID: 1,
	})
	if err == nil || !strings.Contains(err.Error(), "uncommitted") {
		t.Fatalf("transfer from dirty site = %v, want uncommitted refusal", err)
	}

	// Site 2 dies for real; the lease break must contaminate its copy at
	// the manager and recovery must give site 1 the committed v1.
	tc.kill(2)
	lockCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	if err := rl1.Lock(lockCtx); err != nil {
		t.Fatalf("lock never broken: %v", err)
	}
	if got := r1.Content().IntsData()[0]; got != 1 {
		t.Fatalf("data after break = %d, want committed 1", got)
	}
	l := tc.node(1).Sync().ensureLock(7)
	l.mu.Lock()
	dirtySet := l.dirty.Clone()
	upToDate := l.upToDate.Clone()
	l.mu.Unlock()
	if !dirtySet.Contains(2) {
		t.Fatal("manager did not mark the broken holder's site dirty")
	}
	if upToDate.Contains(2) {
		t.Fatal("manager left the broken holder's site in the up-to-date set")
	}
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestGrantCarriesCommittedVersionFloor verifies the manager's defense
// against version-number reuse: every grant carries the per-lock high-water
// committed version, and releases publish strictly above it, so a lineage
// recovered from an older surviving copy climbs past the numbers the lost
// lineage already committed instead of re-issuing them.
func TestGrantCarriesCommittedVersionFloor(t *testing.T) {
	tc := newTestCluster(t, 2, defaultOpts())
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("writer")
	rl1, r1 := mustCreate(t, h1, 9, "floor", []int32{5}, 2)
	h2 := tc.node(2).NewHandle("reader")
	rl2, _ := mustAttach(t, h2, 9, "floor")
	settle()

	// Two exclusive commits move the lock to v3; the manager's high-water
	// mark must follow.
	for i := 0; i < 2; i++ {
		if err := rl1.Lock(ctx); err != nil {
			t.Fatal(err)
		}
		r1.Content().IntsData()[0]++
		if err := rl1.Unlock(ctx); err != nil {
			t.Fatal(err)
		}
	}

	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	rl2.st.mu.Lock()
	floor := rl2.st.heldGrant.VersionFloor
	version := rl2.st.version
	rl2.st.mu.Unlock()
	if version != 3 {
		t.Fatalf("version after two commits = %d, want 3", version)
	}
	if floor != 3 {
		t.Fatalf("grant floor = %d, want the committed high-water 3", floor)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	// The release travels to the manager asynchronously; wait for the
	// high-water mark to follow the commit.
	l := tc.node(1).Sync().ensureLock(9)
	deadline := time.Now().Add(5 * time.Second)
	for {
		l.mu.Lock()
		hw := l.highWater
		l.mu.Unlock()
		if hw == 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("high-water after site 2's commit = %d, want 4", hw)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
