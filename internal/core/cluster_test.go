package core

import (
	"context"
	"testing"
	"time"

	"mocha/internal/check"
	"mocha/internal/eventlog"
	"mocha/internal/marshal"
	"mocha/internal/mnet"
	"mocha/internal/netsim"
	"mocha/internal/obs"
	"mocha/internal/transport"
	"mocha/internal/wire"
)

// testCluster is an in-process multi-site deployment over the simulated
// network, with fast timeouts suitable for failure-injection tests.
type testCluster struct {
	sn    *transport.SimNetwork
	nodes map[wire.SiteID]*Node
}

type clusterOpts struct {
	mode    TransferMode
	profile netsim.Profile
	lease   time.Duration
	sweep   time.Duration
	reqTO   time.Duration
	mnetCfg mnet.Config
	reuse   bool
	fanout  int
	xferTO  time.Duration
	// delta enables delta replica transfer; deltaDepth overrides the
	// update-log depth (0 = default).
	delta      bool
	deltaDepth int
	// wrapStack lets fault tests interpose on a site's transport stack.
	wrapStack func(site wire.SiteID, s transport.Stack) transport.Stack
	// syncShards overrides the synchronization thread's shard count
	// (0 = default).
	syncShards int
	// syncSerial reproduces the pre-S30 blocking synchronization thread.
	syncSerial bool
	// faultHooks installs a per-site FaultHook (missing sites get none).
	faultHooks map[wire.SiteID]FaultHook
	// tree enables locality-aware dissemination; treeMin overrides the
	// sharer threshold (0 = default).
	tree    bool
	treeMin int
	// metrics, when non-nil, is shared by every site.
	metrics *obs.Registry
	// placement enables the consistent-hash mobile lock namespace.
	placement bool
}

func defaultOpts() clusterOpts {
	return clusterOpts{
		mode:    ModeMNet,
		profile: netsim.Perfect(),
		lease:   30 * time.Second,
		sweep:   50 * time.Millisecond,
		reqTO:   2 * time.Second,
		mnetCfg: mnet.Config{RTO: 25 * time.Millisecond, MaxRetries: 4},
	}
}

// newTestCluster starts n sites; site 1 is home. Every cluster records its
// protocol history and replays it through the entry-consistency checker at
// cleanup, so each integration test doubles as an invariant check. The
// network seed honors MOCHA_TEST_SEED and is logged for replay.
func newTestCluster(t *testing.T, n int, opts clusterOpts) *testCluster {
	t.Helper()
	seed := netsim.SeedFromEnv(17)
	t.Logf("cluster network seed %d (set %s to replay)", seed, netsim.SeedEnv)
	sn := transport.NewSimNetwork(netsim.Config{Profile: opts.profile, Seed: seed})
	rec := check.NewRecorder(0, sn.Clock())
	tc := &testCluster{sn: sn, nodes: make(map[wire.SiteID]*Node)}

	directory := make(map[wire.SiteID]string, n)
	stacks := make(map[wire.SiteID]*transport.SimStack, n)
	for i := 1; i <= n; i++ {
		site := wire.SiteID(i)
		stack, err := sn.NewStack(netsim.NodeID(i))
		if err != nil {
			t.Fatalf("stack %d: %v", i, err)
		}
		stacks[site] = stack
		directory[site] = stack.Datagram().LocalAddr()
	}
	for i := 1; i <= n; i++ {
		site := wire.SiteID(i)
		ep := mnet.NewEndpoint(stacks[site].Datagram(), opts.mnetCfg)
		var stack transport.Stack = stacks[site]
		if opts.wrapStack != nil {
			stack = opts.wrapStack(site, stack)
		}
		xferTO := opts.xferTO
		if xferTO == 0 {
			xferTO = 10 * time.Second
		}
		node, err := NewNode(Config{
			Site:                site,
			Endpoint:            ep,
			Stack:               stack,
			Directory:           directory,
			IsHome:              site == wire.HomeSite,
			HomePlacement:       opts.placement,
			Mode:                opts.mode,
			StreamReuse:         opts.reuse,
			DeltaTransfer:       opts.delta,
			DeltaLogDepth:       opts.deltaDepth,
			DisseminationFanout: opts.fanout,
			DisseminationTree:   opts.tree,
			TreeMinSharers:      opts.treeMin,
			SyncShards:          opts.syncShards,
			SyncSerialIO:        opts.syncSerial,
			Metrics:             opts.metrics,
			FaultHook:           opts.faultHooks[site],
			RequestTimeout:      opts.reqTO,
			TransferTimeout:     xferTO,
			DefaultLease:        opts.lease,
			LeaseSweep:          opts.sweep,
			Log:                 eventlog.New(1 << 14),
			History:             rec,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		tc.nodes[site] = node
	}
	t.Cleanup(func() {
		for _, node := range tc.nodes {
			_ = node.Close()
		}
		_ = sn.Close()
		if v := check.Check(rec.Events()); v != nil {
			t.Errorf("history violates entry consistency (seed %d): %v", seed, v)
		}
	})
	return tc
}

// node returns the node for a site.
func (tc *testCluster) node(site wire.SiteID) *Node { return tc.nodes[site] }

// kill fail-stops a site: its node closes and the network silences it.
func (tc *testCluster) kill(site wire.SiteID) {
	_ = tc.nodes[site].Close()
	tc.sn.Kill(netsim.NodeID(site))
}

// tctx returns a generous test context.
func tctx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	t.Cleanup(cancel)
	return ctx
}

// mustCreate creates and associates an int replica under a fresh lock for
// a handle, returning the lock and replica.
func mustCreate(t *testing.T, h *Handle, lockID wire.LockID, name string, data []int32, copies int) (*ReplicaLock, *Replica) {
	t.Helper()
	r, err := h.Node().CreateReplica(name, marshal.Ints(data), copies)
	if err != nil {
		t.Fatal(err)
	}
	rl := h.ReplicaLock(lockID)
	if err := rl.Associate(tctx(t), r); err != nil {
		t.Fatal(err)
	}
	return rl, r
}

// mustAttach attaches to an existing replica at another site.
func mustAttach(t *testing.T, h *Handle, lockID wire.LockID, name string) (*ReplicaLock, *Replica) {
	t.Helper()
	r, err := h.Node().AttachReplica(name, marshal.Ints(nil))
	if err != nil {
		t.Fatal(err)
	}
	rl := h.ReplicaLock(lockID)
	if err := rl.Associate(tctx(t), r); err != nil {
		t.Fatal(err)
	}
	return rl, r
}

// settle gives asynchronous registrations time to reach the home site.
func settle() { time.Sleep(30 * time.Millisecond) }
