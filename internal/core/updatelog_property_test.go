package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mocha/internal/marshal"
)

// The delta-transfer soundness property: composing a chain of update-log
// steps into one range set and patching those ranges of the newest blob
// over any older base must reproduce the newest blob byte for byte — the
// same outcome as applying every step in sequence. chainScript generates
// random replica evolutions (in-place mutations, resizes, no-op steps,
// forced-full steps) and the property replays them through the same
// compose/MergeRanges/ApplyPatch path the transfer layer uses.

// replicaEvolution is one replica's marshaled blob at every version of a
// chain, plus the steps on which the recording site had no usable range
// description (forcing a full transfer through that step).
type replicaEvolution struct {
	name  string
	blobs [][]byte
	full  []bool
}

// chainScript is a randomly generated multi-replica version chain.
type chainScript struct {
	baseVersion uint64
	replicas    []replicaEvolution
	steps       int
}

func randomBlob(r *rand.Rand, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(r.Intn(256))
	}
	return b
}

// mutateBlob produces the next version of a blob: usually a few in-place
// range overwrites, sometimes a resize (splice or truncate), sometimes no
// change at all.
func mutateBlob(r *rand.Rand, prev []byte) []byte {
	switch r.Intn(10) {
	case 0: // no-op step
		return append([]byte(nil), prev...)
	case 1, 2: // resize: keep a random prefix, regrow a random tail
		keep := r.Intn(len(prev) + 1)
		tail := r.Intn(48)
		next := append([]byte(nil), prev[:keep]...)
		return append(next, randomBlob(r, tail)...)
	default: // overwrite 1-3 random ranges in place
		next := append([]byte(nil), prev...)
		for k := 0; k < 1+r.Intn(3); k++ {
			if len(next) == 0 {
				break
			}
			off := r.Intn(len(next))
			n := 1 + r.Intn(len(next)-off)
			copy(next[off:], randomBlob(r, n))
		}
		return next
	}
}

func (chainScript) Generate(r *rand.Rand, _ int) reflect.Value {
	cs := chainScript{
		baseVersion: uint64(1 + r.Intn(100)),
		steps:       1 + r.Intn(8),
	}
	for i := 0; i < 1+r.Intn(3); i++ {
		ev := replicaEvolution{
			name:  fmt.Sprintf("rep%d", i),
			blobs: [][]byte{randomBlob(r, 1+r.Intn(64))},
			full:  make([]bool, cs.steps),
		}
		for s := 0; s < cs.steps; s++ {
			ev.blobs = append(ev.blobs, mutateBlob(r, ev.blobs[s]))
			ev.full[s] = r.Intn(12) == 0
		}
		cs.replicas = append(cs.replicas, ev)
	}
	return reflect.ValueOf(cs)
}

// record builds the update log exactly as a site applying each version
// step would: diffed ranges in new-blob coordinates, resize flags, and
// the occasional full-only step.
func (cs chainScript) record() *updateLog {
	ul := newUpdateLog(16)
	for s := 0; s < cs.steps; s++ {
		step := deltaStep{
			from:     cs.baseVersion + uint64(s),
			to:       cs.baseVersion + uint64(s+1),
			replicas: make(map[string]stepReplica, len(cs.replicas)),
		}
		for _, ev := range cs.replicas {
			prev, cur := ev.blobs[s], ev.blobs[s+1]
			step.replicas[ev.name] = stepReplica{
				full:    ev.full[s],
				resized: len(prev) != len(cur),
				newLen:  len(cur),
				ranges:  marshal.DiffRanges(prev, cur),
			}
		}
		ul.record(step)
	}
	return ul
}

func TestUpdateLogComposePatchEquivalence(t *testing.T) {
	property := func(cs chainScript) bool {
		ul := cs.record()
		to := cs.baseVersion + uint64(cs.steps)
		for f := 0; f < cs.steps; f++ {
			composed, ok := ul.compose(cs.baseVersion+uint64(f), to)
			if !ok {
				t.Logf("compose(%d, %d) failed on a contiguous %d-step chain",
					cs.baseVersion+uint64(f), to, cs.steps)
				return false
			}
			for _, ev := range cs.replicas {
				cd, ok := composed[ev.name]
				if !ok {
					t.Logf("compose dropped replica %s", ev.name)
					return false
				}
				final := ev.blobs[cs.steps]
				if cd.full {
					// A full transfer ships the newest blob verbatim;
					// nothing to verify.
					continue
				}
				var ops []marshal.PatchOp
				for _, r := range marshal.MergeRanges(cd.ranges, len(final)) {
					ops = append(ops, marshal.PatchOp{Off: r.Off, Data: final[r.Off:r.End()]})
				}
				got, err := marshal.ApplyPatch(ev.blobs[f], len(final), ops)
				if err != nil {
					t.Logf("ApplyPatch from v+%d: %v", f, err)
					return false
				}
				if !bytes.Equal(got, final) {
					t.Logf("replica %s: patched blob from base v+%d diverges from the final blob\nbase  %x\npatch %x\nwant  %x",
						ev.name, f, ev.blobs[f], got, final)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestUpdateLogComposeRejectsGaps pins the safety side: a log whose chain
// does not cover the requested interval must refuse to compose rather
// than produce a delta from the wrong base.
func TestUpdateLogComposeRejectsGaps(t *testing.T) {
	property := func(cs chainScript) bool {
		ul := cs.record()
		to := cs.baseVersion + uint64(cs.steps)
		if _, ok := ul.compose(cs.baseVersion-1, to); ok {
			return false // base predates the chain
		}
		if _, ok := ul.compose(cs.baseVersion, to+1); ok {
			return false // target beyond the newest step
		}
		if _, ok := ul.compose(to, to); ok {
			return false // empty interval
		}
		ul.reset()
		_, ok := ul.compose(cs.baseVersion, to)
		return !ok
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
