package core

import (
	"context"
	"fmt"
	"sync"

	"mocha/internal/mnet"
	"mocha/internal/obs"
	"mocha/internal/wire"
)

// client owns the node's client port: it sends application-thread requests
// to the synchronization thread and routes grants, nacks, and
// dissemination acks back to the waiting threads.
type client struct {
	node *Node
	port *mnet.Port

	mu       sync.Mutex
	grants   map[grantKey]chan grantOrNack
	pushAcks map[pushKey]chan pushResult
}

// pushResult is what a waiting push sender learns about one target:
// either the update was applied, or the target needs a full copy because
// it could not use the offered delta.
type pushResult struct {
	needFull bool
}

type grantKey struct {
	lock   wire.LockID
	thread wire.ThreadID
}

// pushKey identifies one awaited dissemination acknowledgment. Keying by
// site (not just lock and version) lets concurrent pushes of the same
// version to different sites each wait on their own channel; a shared
// channel would misroute acks between the parallel senders.
type pushKey struct {
	lock    wire.LockID
	version uint64
	site    wire.SiteID
}

// grantOrNack is the client port's delivery to a waiting Lock call.
type grantOrNack struct {
	grant *wire.Grant
	nack  *wire.LockNack
}

func newClient(n *Node) (*client, error) {
	port, err := n.ep.OpenPort(PortClient)
	if err != nil {
		return nil, err
	}
	c := &client{
		node:     n,
		port:     port,
		grants:   make(map[grantKey]chan grantOrNack),
		pushAcks: make(map[pushKey]chan pushResult),
	}
	port.SetHandler(c.handle)
	return c, nil
}

// handle routes one message arriving on the client port.
func (c *client) handle(m mnet.Message) {
	p, err := wire.Unmarshal(m.Data)
	if err != nil {
		if c.node.log.On() {
			c.node.log.Logf("client", "bad message: %v", err)
		}
		return
	}
	switch msg := p.(type) {
	case *wire.Grant:
		c.mu.Lock()
		ch := c.grants[grantKey{msg.Lock, msg.Thread}]
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- grantOrNack{grant: msg}:
			default:
				if c.node.log.On() {
					c.node.log.Logf("client", "grant channel full for lock %d", msg.Lock)
				}
			}
			return
		}
		// No thread is waiting for this grant. Either it is a late
		// revision of an acquisition that already completed (the thread
		// currently holds the lock locally — ignore it), or the requester
		// abandoned the acquisition and the lock must be handed back so
		// it is not stuck with a phantom holder.
		st := c.node.getLockLocal(msg.Lock)
		st.mu.Lock()
		holding := st.holder == msg.Thread
		st.mu.Unlock()
		if holding {
			return
		}
		if c.node.log.On() {
			c.node.log.Logf("client", "returning unwanted grant of lock %d for thread %d", msg.Lock, msg.Thread)
		}
		go c.autoRelease(msg)
	case *wire.LockNack:
		c.mu.Lock()
		ch := c.grants[grantKey{msg.Lock, msg.Thread}]
		c.mu.Unlock()
		if ch != nil {
			select {
			case ch <- grantOrNack{nack: msg}:
			default:
			}
		}
	case *wire.PushAck:
		c.node.obs().Inc(obs.CPushAcks)
		c.deliverPushResult(msg.Lock, msg.Version, msg.Site, pushResult{})
	default:
		if c.node.log.On() {
			c.node.log.Logf("client", "unhandled %s on client port", p.Kind())
		}
	}
}

// expectGrant registers interest in grants for (lock, thread). The channel
// is buffered to absorb revised grants.
func (c *client) expectGrant(lock wire.LockID, thread wire.ThreadID) chan grantOrNack {
	ch := make(chan grantOrNack, 4)
	c.mu.Lock()
	c.grants[grantKey{lock, thread}] = ch
	c.mu.Unlock()
	return ch
}

// dropGrant unregisters interest.
func (c *client) dropGrant(lock wire.LockID, thread wire.ThreadID) {
	c.mu.Lock()
	delete(c.grants, grantKey{lock, thread})
	c.mu.Unlock()
}

// expectPushAck registers interest in one site's acknowledgment of one
// disseminated version. Each waiter owns its channel, so no ack is ever
// consumed by the wrong sender.
func (c *client) expectPushAck(lock wire.LockID, version uint64, site wire.SiteID) chan pushResult {
	ch := make(chan pushResult, 1)
	c.mu.Lock()
	c.pushAcks[pushKey{lock, version, site}] = ch
	c.mu.Unlock()
	return ch
}

// deliverPushResult hands one target's response (applied, or needs the
// full copy) to the sender waiting on it, if any.
func (c *client) deliverPushResult(lock wire.LockID, version uint64, site wire.SiteID, res pushResult) {
	c.mu.Lock()
	ch := c.pushAcks[pushKey{lock, version, site}]
	c.mu.Unlock()
	if ch != nil {
		select {
		case ch <- res:
		default:
		}
	}
}

// dropPushAck unregisters a waiter.
func (c *client) dropPushAck(lock wire.LockID, version uint64, site wire.SiteID) {
	c.mu.Lock()
	delete(c.pushAcks, pushKey{lock, version, site})
	c.mu.Unlock()
}

// autoRelease hands back a grant nobody is waiting for.
func (c *client) autoRelease(g *wire.Grant) {
	ctx, cancel := context.WithTimeout(context.Background(), c.node.cfg.RequestTimeout)
	defer cancel()
	rel := &wire.ReleaseLock{
		Lock:       g.Lock,
		Releaser:   c.node.cfg.Site,
		Thread:     g.Thread,
		NewVersion: g.Version,
		Shared:     g.Shared,
		Aborted:    true,
	}
	if err := c.sendToSync(ctx, rel); err != nil {
		if c.node.log.On() {
			c.node.log.Logf("client", "auto-release of lock %d failed: %v", g.Lock, err)
		}
	}
}

// sendToSync delivers a control message to the synchronization thread,
// retrying once against a refreshed address if the current one is
// unreachable — "application threads which time out attempting to contact
// the failed synchronization thread can query the local daemon thread to
// obtain the location of the newly created surrogate".
func (c *client) sendToSync(ctx context.Context, p wire.Payload) error {
	if c.node.ring != nil {
		if lock, ok := lockOfPayload(p); ok {
			return c.sendToHome(ctx, p, lock)
		}
	}
	// Control requests fit one fragment; let mnet encode them in place
	// instead of marshalling to an intermediate blob.
	app := wire.Appender{P: p}
	addr := c.node.currentSyncAddr()

	sendCtx, cancel := context.WithTimeout(ctx, c.node.cfg.RequestTimeout)
	err := c.port.SendAppender(sendCtx, addr, app)
	cancel()
	if err == nil {
		return nil
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}

	refreshed := c.node.currentSyncAddr()
	if refreshed == addr {
		return fmt.Errorf("%w: %v", ErrNoSync, err)
	}
	if c.node.log.On() {
		c.node.log.Logf("client", "retrying %s against surrogate at %s", p.Kind(), refreshed)
	}
	sendCtx, cancel = context.WithTimeout(ctx, c.node.cfg.RequestTimeout)
	defer cancel()
	if err := c.port.SendAppender(sendCtx, refreshed, app); err != nil {
		return fmt.Errorf("%w: %v", ErrNoSync, err)
	}
	return nil
}

// lockOfPayload extracts the lock a control message is about, for
// per-lock home routing.
func lockOfPayload(p wire.Payload) (wire.LockID, bool) {
	switch m := p.(type) {
	case *wire.AcquireLock:
		return m.Lock, true
	case *wire.ReleaseLock:
		return m.Lock, true
	case *wire.RegisterReplica:
		return m.Lock, true
	}
	return 0, false
}

// sendToHome routes a control message to the lock's current best-known
// home manager. An unreachable home is retried against a re-resolved
// route (a HomeMoved broadcast may have landed meanwhile) and finally
// against the home's ring successor — its standby, which either has
// promoted the lock already or will shortly.
func (c *client) sendToHome(ctx context.Context, p wire.Payload, lock wire.LockID) error {
	app := wire.Appender{P: p}
	try := func(site wire.SiteID) error {
		addr, err := c.node.syncAddrOf(site)
		if err != nil {
			return err
		}
		sendCtx, cancel := context.WithTimeout(ctx, c.node.cfg.RequestTimeout)
		defer cancel()
		return c.port.SendAppender(sendCtx, addr, app)
	}
	home, _ := c.node.homeOf(lock)
	err := try(home)
	if err == nil {
		return nil
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if re, _ := c.node.homeOf(lock); re != home {
		home = re
		if err = try(home); err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	if succ := c.node.ring.Successor(home); succ != 0 && succ != home {
		if c.node.log.On() {
			c.node.log.Logf("client", "retrying %s for lock %d against standby site %d", p.Kind(), lock, succ)
		}
		if err2 := try(succ); err2 == nil {
			return nil
		}
	}
	return fmt.Errorf("%w: %v", ErrNoSync, err)
}

// sendToSite delivers a control message to one specific manager site,
// bypassing route resolution (used to follow a NackNotHome redirect).
func (c *client) sendToSite(ctx context.Context, p wire.Payload, site wire.SiteID) error {
	addr, err := c.node.syncAddrOf(site)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrNoSync, err)
	}
	sendCtx, cancel := context.WithTimeout(ctx, c.node.cfg.RequestTimeout)
	defer cancel()
	if err := c.port.SendAppender(sendCtx, addr, wire.Appender{P: p}); err != nil {
		return fmt.Errorf("%w: %v", ErrNoSync, err)
	}
	return nil
}
