package core

import (
	"testing"
	"time"

	"mocha/internal/obs"
	"mocha/internal/wire"
)

// treeCluster starts n sites with the dissemination tree enabled and the
// home tracker seeded with a two-band RTT geography: sites in nearBand at
// 5ms, sites in farBand at 52ms (distinct overlay buckets at the default
// 10ms width). With equal scores the lowest site ID in each band is the
// relay.
func treeCluster(t *testing.T, n int, opts clusterOpts, near, far []wire.SiteID) *testCluster {
	t.Helper()
	opts.tree = true
	opts.treeMin = 2
	tc := newTestCluster(t, n, opts)
	tr := tc.node(1).OverlayTracker()
	for _, s := range near {
		tr.Observe(s, 5*time.Millisecond)
	}
	for _, s := range far {
		tr.Observe(s, 52*time.Millisecond)
	}
	return tc
}

func TestDisseminateTreeRelays(t *testing.T) {
	opts := defaultOpts()
	opts.metrics = obs.NewRegistry()
	tc := treeCluster(t, 7, opts, []wire.SiteID{2, 3, 4}, []wire.SiteID{5, 6, 7})
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("w")
	rl1, r1 := mustCreate(t, h1, 9, "v", []int32{0}, 7)
	remotes := map[wire.SiteID]*ReplicaLock{}
	contents := map[wire.SiteID]*Replica{}
	for i := wire.SiteID(2); i <= 7; i++ {
		rl, r := mustAttach(t, tc.node(i).NewHandle("r"), 9, "v")
		remotes[i] = rl
		contents[i] = r
	}
	settle()

	rl1.SetUpdateReplicas(7)
	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r1.Content().IntsData()[0] = 42
	uplinkBefore := tc.node(1).DisseminationUplinkSends()
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	// One frame per locality bucket left the releaser's uplink, not one
	// per sharer.
	if got := tc.node(1).DisseminationUplinkSends() - uplinkBefore; got != 2 {
		t.Errorf("releaser uplink sends = %d, want 2 (one per bucket)", got)
	}
	reg := opts.metrics
	if got := reg.CounterValue(obs.CRelayPushes); got != 2 {
		t.Errorf("relay pushes = %d, want 2", got)
	}
	if got := reg.CounterValue(obs.CRelayAcks); got != 2 {
		t.Errorf("relay acks = %d, want 2", got)
	}
	// Each relay re-fanned to its two bucket mates.
	if got := reg.CounterValue(obs.CRelayFanout); got != 4 {
		t.Errorf("relay fanout pushes = %d, want 4", got)
	}
	if got := reg.CounterValue(obs.CRelayFallbacks); got != 0 {
		t.Errorf("relay fallbacks = %d, want 0", got)
	}
	if got := reg.Hist(obs.HRelayHop).Count; got != 2 {
		t.Errorf("relay hop observations = %d, want 2", got)
	}

	// Every sharer — relays and re-fanned members alike — applied the
	// version.
	released := rl1.Version()
	for i := wire.SiteID(2); i <= 7; i++ {
		if got := remotes[i].Version(); got != released {
			t.Errorf("site %d at version %d, want %d", i, got, released)
		}
		if got := contents[i].Content().IntsData()[0]; got != 42 {
			t.Errorf("site %d value %d, want 42", i, got)
		}
	}
}

func TestTreeDisabledBelowThreshold(t *testing.T) {
	opts := defaultOpts()
	opts.metrics = obs.NewRegistry()
	opts.tree = true
	opts.treeMin = 20 // sharer count stays below the threshold
	tc := newTestCluster(t, 4, opts)
	tr := tc.node(1).OverlayTracker()
	for _, s := range []wire.SiteID{2, 3, 4} {
		tr.Observe(s, 5*time.Millisecond)
	}
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("w")
	rl1, r1 := mustCreate(t, h1, 9, "v", []int32{0}, 4)
	remotes := map[wire.SiteID]*ReplicaLock{}
	for i := wire.SiteID(2); i <= 4; i++ {
		rl, _ := mustAttach(t, tc.node(i).NewHandle("r"), 9, "v")
		remotes[i] = rl
	}
	settle()

	rl1.SetUpdateReplicas(4)
	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r1.Content().IntsData()[0] = 7
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	if got := opts.metrics.CounterValue(obs.CRelayPushes); got != 0 {
		t.Errorf("relay pushes below threshold = %d, want 0 (flat fan-out)", got)
	}
	released := rl1.Version()
	for i := wire.SiteID(2); i <= 4; i++ {
		if got := remotes[i].Version(); got != released {
			t.Errorf("site %d at version %d, want %d", i, got, released)
		}
	}
}

// TestRelayFailureFallsBackToDirect is the deterministic relay-death
// fault test: the near bucket's relay (site 2, the lowest ID) swallows
// the RelayPush — no apply, no re-fan, no ack. The origin's relay-ack
// wait must time out, the bucket must degrade to direct pushes, and every
// sharer must still apply the published version. The cluster's cleanup
// replays the full history through the entry-consistency checker.
func TestRelayFailureFallsBackToDirect(t *testing.T) {
	opts := defaultOpts()
	opts.metrics = obs.NewRegistry()
	opts.reqTO = 500 * time.Millisecond // one fast relay-ack timeout
	opts.faultHooks = map[wire.SiteID]FaultHook{
		2: func(fc FaultContext) FaultDecision {
			if fc.Point == FPDropRelayFan {
				return FaultDecision{Drop: true}
			}
			return FaultDecision{}
		},
	}
	tc := treeCluster(t, 7, opts, []wire.SiteID{2, 3, 4}, []wire.SiteID{5, 6, 7})
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("w")
	rl1, r1 := mustCreate(t, h1, 9, "v", []int32{0}, 7)
	remotes := map[wire.SiteID]*ReplicaLock{}
	contents := map[wire.SiteID]*Replica{}
	for i := wire.SiteID(2); i <= 7; i++ {
		rl, r := mustAttach(t, tc.node(i).NewHandle("r"), 9, "v")
		remotes[i] = rl
		contents[i] = r
	}
	settle()

	rl1.SetUpdateReplicas(7)
	if err := rl1.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r1.Content().IntsData()[0] = 42
	if err := rl1.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	reg := opts.metrics
	if got := reg.CounterValue(obs.CRelayFallbacks); got < 1 {
		t.Errorf("relay fallbacks = %d, want >= 1", got)
	}
	// The dead relay's bucket was direct-pushed: every sharer, including
	// the relay that dropped the RelayPush, applied the version.
	released := rl1.Version()
	for i := wire.SiteID(2); i <= 7; i++ {
		if got := remotes[i].Version(); got != released {
			t.Errorf("site %d at version %d, want %d", i, got, released)
		}
		if got := contents[i].Content().IntsData()[0]; got != 42 {
			t.Errorf("site %d value %d, want 42", i, got)
		}
	}
	// The timeout counted as a loss against the relay: its score dropped
	// and the next plan elects a better-scored bucket mate instead.
	tr := tc.node(1).OverlayTracker()
	if got := tr.Score(2); got >= 1 {
		t.Errorf("failed relay score = %.3f, want < 1", got)
	}
	plan := tr.Plan([]wire.SiteID{2, 3, 4})
	if len(plan.Groups) != 1 || plan.Groups[0].Relay == 2 {
		t.Errorf("plan after failure = %+v, want a relay other than 2", plan)
	}
}
