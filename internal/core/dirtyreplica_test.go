package core

import (
	"sync/atomic"
	"testing"
	"time"

	"mocha/internal/wire"
)

// TestBrokenHoldDirtyBytesRefetched is the regression test for a stale
// read the coverage-guided explorer found: a holder crashes after
// committing locally (crash-after-release-before-push), leaving its
// site's replica bytes scribbled on while the version label stays at the
// committed number. After the lease break evicts the site from the
// up-to-date set, the next acquirer at that same site used to satisfy its
// NEEDNEWVERSION wait from the local version label alone and observe the
// dead thread's dirty bytes. The uncommitted flag must hold the acquirer
// until the committed bytes are re-fetched from a clean copy.
func TestBrokenHoldDirtyBytesRefetched(t *testing.T) {
	var armed atomic.Bool
	opts := defaultOpts()
	opts.lease = 200 * time.Millisecond
	opts.sweep = 50 * time.Millisecond
	opts.reqTO = 500 * time.Millisecond
	opts.faultHooks = map[wire.SiteID]FaultHook{
		2: func(fc FaultContext) FaultDecision {
			if fc.Point == FPCrashAfterReleaseBeforePush && armed.CompareAndSwap(true, false) {
				return FaultDecision{Drop: true}
			}
			return FaultDecision{}
		},
	}
	tc := newTestCluster(t, 3, opts)
	ctx := tctx(t)

	h1 := tc.node(1).NewHandle("creator")
	_, _ = mustCreate(t, h1, 6, "cash", []int32{100}, 3)
	h2 := tc.node(2).NewHandle("writer")
	rl2, r2 := mustAttach(t, h2, 6, "cash")
	settle()

	// Site 2 commits v2 = 200 with UR=2, so a second site (the push
	// target) holds the committed bytes and survives site 2 going dirty.
	rl2.SetUpdateReplicas(2)
	if err := rl2.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r2.Content().IntsData()[0] = 200
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}

	// A second thread at site 2 takes the lock, scribbles on the replica
	// in place, and crashes before releasing: the local version label
	// still says v2, but the bytes under it are the dead thread's.
	h2b := tc.node(2).NewHandle("victim")
	rl2b := h2b.ReplicaLock(6)
	if err := rl2b.Lock(ctx); err != nil {
		t.Fatal(err)
	}
	r2.Content().IntsData()[0] = 999
	armed.Store(true)
	if err := rl2b.Unlock(ctx); err == nil {
		t.Fatal("crash fault did not fire")
	}

	// Cut home→site-2 so the heartbeat probe fails and the lease sweep
	// breaks the dead hold (a live site answers probes, so without the
	// cut the sweep would extend the lease forever).
	tc.sn.Underlying().PartitionOneWay(1, 2, true)
	deadline := time.Now().Add(10 * time.Second)
	for !tc.node(1).Sync().Banned(h2b.ID()) {
		if time.Now().After(deadline) {
			t.Fatal("lease break never banned the dead holder")
		}
		time.Sleep(20 * time.Millisecond)
	}
	tc.sn.Underlying().PartitionOneWay(1, 2, false)

	// The writer reacquires at the dirty site. The break evicted site 2
	// from the up-to-date set, so the grant is NEEDNEWVERSION: the
	// acquirer must block until the committed v2 bytes arrive from the
	// clean copy, not trust the local label and read 999.
	if err := rl2.Lock(ctx); err != nil {
		t.Fatalf("reacquire at dirty site: %v", err)
	}
	if got := r2.Content().IntsData()[0]; got != 200 {
		t.Fatalf("observed %d at reacquire, want committed 200 (dirty bytes served)", got)
	}
	if err := rl2.Unlock(ctx); err != nil {
		t.Fatal(err)
	}
}
