package core

import "testing"

// TestFenceTokensAdvancePerHold exercises the public fencing-token
// surface: each exclusive hold observes a token strictly above the
// previous hold's, so an external resource comparing tokens can order
// holders even across manager failover.
func TestFenceTokensAdvancePerHold(t *testing.T) {
	tc := newTestCluster(t, 2, defaultOpts())
	ctx := tctx(t)

	hc := tc.node(1).NewHandle("creator")
	rlC, _ := mustCreate(t, hc, 71, "fenced", []int32{0}, 2)
	hw := tc.node(2).NewHandle("worker")
	rlW, _ := mustAttach(t, hw, 71, "fenced")
	settle()

	var last uint64
	for hold, rl := range []*ReplicaLock{rlC, rlW, rlC} {
		if err := rl.Lock(ctx); err != nil {
			t.Fatalf("hold %d: %v", hold, err)
		}
		token := rl.Fence()
		if token <= last {
			t.Fatalf("hold %d observed fence %d, not above the previous hold's %d",
				hold, token, last)
		}
		last = token
		if err := rl.Unlock(ctx); err != nil {
			t.Fatalf("release %d: %v", hold, err)
		}
	}
}
