package mnet

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"

	"mocha/internal/netsim"
)

// Packet types on the datagram substrate.
const (
	ptData byte = iota + 1
	ptAck
)

// Header layout for data packets (big-endian):
//
//	off 0  type      u8
//	off 1  flags     u8
//	off 2  srcPort   u16
//	off 4  dstPort   u16
//	off 6  msgID     u64   unique per sending endpoint; acks match on it
//	off 14 seq       u64   per (destination, dstPort) delivery sequence
//	off 22 fragIdx   u32
//	off 26 fragCount u32
//	off 30 boot      u32   sender incarnation; a change resets peer RX state
//	off 34 payload...
//
// Ack packets (boot echoes the acknowledged data packet's incarnation, so
// an ack surviving from before a sender restarted cannot confirm one of
// the restarted sender's messages):
//
//	off 0  type    u8
//	off 1  flags   u8
//	off 2  msgID   u64
//	off 10 fragIdx u32
//	off 14 boot    u32
//
// When the endpoint is configured with an authentication key, every packet
// carries a truncated HMAC-SHA256 trailer.
const (
	dataHeaderLen = 34
	ackLen        = 18
	macLen        = 8
)

// errBadPacket reports an unparseable or unauthenticated packet; such
// packets are silently counted and dropped, as a datagram service must.
var errBadPacket = errors.New("mnet: bad packet")

// getPktBuf returns a pooled buffer sliced to length n with undefined
// contents; the encoder must overwrite every byte it emits. The buffers
// come from the stack-wide pool in netsim, shared with the transport
// bindings, so a fragment buffer released here is immediately reusable for
// the next receive or tagged frame at any layer.
func getPktBuf(n int) *[]byte { return netsim.GetBuf(n) }

// putPktBuf returns a buffer to the pool. The packet must no longer be
// referenced by any pending or in-flight transmit.
func putPktBuf(bp *[]byte) { netsim.PutBuf(bp) }

// macSize is the length of the MAC trailer for the given key.
func macSize(key []byte) int {
	if len(key) == 0 {
		return 0
	}
	return macLen
}

type dataPacket struct {
	srcPort   uint16
	dstPort   uint16
	msgID     uint64
	seq       uint64
	fragIdx   uint32
	fragCount uint32
	boot      uint32
	payload   []byte
}

// writeDataHeader fills the fixed data-packet header at the front of buf
// (which must be at least dataHeaderLen long); p.payload is ignored, so
// the payload may already sit in place after the header.
func writeDataHeader(buf []byte, p dataPacket) {
	buf[0] = ptData
	buf[1] = 0 // flags; pooled buffers arrive dirty
	binary.BigEndian.PutUint16(buf[2:4], p.srcPort)
	binary.BigEndian.PutUint16(buf[4:6], p.dstPort)
	binary.BigEndian.PutUint64(buf[6:14], p.msgID)
	binary.BigEndian.PutUint64(buf[14:22], p.seq)
	binary.BigEndian.PutUint32(buf[22:26], p.fragIdx)
	binary.BigEndian.PutUint32(buf[26:30], p.fragCount)
	binary.BigEndian.PutUint32(buf[30:34], p.boot)
}

// encodeData builds a data packet in a pooled buffer, appending the MAC
// trailer if key is set. The caller releases it with putPktBuf once the
// packet can no longer be (re)transmitted.
func encodeData(p dataPacket, key []byte) *[]byte {
	n := dataHeaderLen + len(p.payload)
	bp := getPktBuf(n + macSize(key))
	buf := (*bp)[:n]
	writeDataHeader(buf, p)
	copy(buf[dataHeaderLen:], p.payload)
	*bp = appendMAC(buf, key)
	return bp
}

// decodeData parses and authenticates a data packet.
func decodeData(b []byte, key []byte) (dataPacket, error) {
	body, err := verifyMAC(b, key)
	if err != nil {
		return dataPacket{}, err
	}
	if len(body) < dataHeaderLen || body[0] != ptData {
		return dataPacket{}, errBadPacket
	}
	p := dataPacket{
		srcPort:   binary.BigEndian.Uint16(body[2:4]),
		dstPort:   binary.BigEndian.Uint16(body[4:6]),
		msgID:     binary.BigEndian.Uint64(body[6:14]),
		seq:       binary.BigEndian.Uint64(body[14:22]),
		fragIdx:   binary.BigEndian.Uint32(body[22:26]),
		fragCount: binary.BigEndian.Uint32(body[26:30]),
		boot:      binary.BigEndian.Uint32(body[30:34]),
	}
	if p.fragCount == 0 || p.fragIdx >= p.fragCount {
		return dataPacket{}, fmt.Errorf("%w: fragment %d/%d", errBadPacket, p.fragIdx, p.fragCount)
	}
	p.payload = make([]byte, len(body)-dataHeaderLen)
	copy(p.payload, body[dataHeaderLen:])
	return p, nil
}

// encodeAck builds an ack packet for one received fragment in a pooled
// buffer; release with putPktBuf after handing it to the transport. boot
// echoes the acknowledged data packet's sender incarnation.
func encodeAck(msgID uint64, fragIdx uint32, boot uint32, key []byte) *[]byte {
	bp := getPktBuf(ackLen + macSize(key))
	buf := (*bp)[:ackLen]
	buf[0] = ptAck
	buf[1] = 0 // flags; pooled buffers arrive dirty
	binary.BigEndian.PutUint64(buf[2:10], msgID)
	binary.BigEndian.PutUint32(buf[10:14], fragIdx)
	binary.BigEndian.PutUint32(buf[14:18], boot)
	*bp = appendMAC(buf, key)
	return bp
}

// decodeAck parses and authenticates an ack packet.
func decodeAck(b []byte, key []byte) (msgID uint64, fragIdx uint32, boot uint32, err error) {
	body, err := verifyMAC(b, key)
	if err != nil {
		return 0, 0, 0, err
	}
	if len(body) < ackLen || body[0] != ptAck {
		return 0, 0, 0, errBadPacket
	}
	return binary.BigEndian.Uint64(body[2:10]), binary.BigEndian.Uint32(body[10:14]),
		binary.BigEndian.Uint32(body[14:18]), nil
}

// appendMAC appends a truncated HMAC-SHA256 trailer when key is non-empty.
func appendMAC(b, key []byte) []byte {
	if len(key) == 0 {
		return b
	}
	m := hmac.New(sha256.New, key)
	m.Write(b)
	return append(b, m.Sum(nil)[:macLen]...)
}

// verifyMAC checks and strips the trailer, returning the packet body.
func verifyMAC(b, key []byte) ([]byte, error) {
	if len(key) == 0 {
		return b, nil
	}
	if len(b) < macLen {
		return nil, fmt.Errorf("%w: short packet", errBadPacket)
	}
	body, tag := b[:len(b)-macLen], b[len(b)-macLen:]
	m := hmac.New(sha256.New, key)
	m.Write(body)
	if !hmac.Equal(tag, m.Sum(nil)[:macLen]) {
		return nil, fmt.Errorf("%w: bad MAC", errBadPacket)
	}
	return body, nil
}
