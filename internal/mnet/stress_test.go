package mnet

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mocha/internal/netsim"
	"mocha/internal/transport"
)

// hubNet builds one hub endpoint plus n peer endpoints on a simulated
// network with the given profile.
func hubNet(t *testing.T, profile netsim.Profile, cfg Config, n int) (*Endpoint, []*Endpoint) {
	t.Helper()
	seed := netsim.SeedFromEnv(11)
	t.Logf("network seed %d (set %s to replay)", seed, netsim.SeedEnv)
	sn := transport.NewSimNetwork(netsim.Config{Profile: profile, Seed: seed})
	eps := make([]*Endpoint, 0, n+1)
	for i := 0; i <= n; i++ {
		s, err := sn.NewStack(netsim.NodeID(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		eps = append(eps, NewEndpoint(s.Datagram(), cfg))
	}
	t.Cleanup(func() {
		for _, e := range eps {
			_ = e.Close()
		}
		_ = sn.Close()
	})
	return eps[0], eps[1:]
}

// stressPayload builds a verifiable payload: every byte carries the
// (peer, message) identity, so a recycled or crossed packet buffer shows
// up as corruption at the receiver.
func stressPayload(peer, msg, size int) []byte {
	b := make([]byte, size)
	v := byte(peer*31 + msg*7 + 1)
	for i := range b {
		b[i] = v
	}
	return b
}

// runHubStress fires senders*msgs concurrent Sends from one hub endpoint
// to distinct peers and verifies every delivery byte-for-byte. The
// zero-delay Perfect profile makes the transport deliver synchronously
// inside Send, racing the initial transmit against its own ack; lossy
// profiles race the retransmit path against ack-time buffer recycling.
func runHubStress(t *testing.T, profile netsim.Profile, cfg Config, peers, msgs, maxSize int) Stats {
	t.Helper()
	hub, remotes := hubNet(t, profile, cfg, peers)

	var delivered atomic.Int64
	var corrupt atomic.Int64
	for _, ep := range remotes {
		p, err := ep.OpenPort(7)
		if err != nil {
			t.Fatal(err)
		}
		p.SetHandler(func(m Message) {
			if len(m.Data) == 0 {
				corrupt.Add(1)
				return
			}
			want := m.Data[0]
			for _, b := range m.Data {
				if b != want {
					corrupt.Add(1)
					return
				}
			}
			delivered.Add(1)
		})
	}
	sender, err := hub.OpenPort(9)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, peers*msgs)
	for pi := range remotes {
		for k := 0; k < msgs; k++ {
			wg.Add(1)
			go func(pi, k int) {
				defer wg.Done()
				size := 1 + (pi*1709+k*523)%maxSize
				if err := sender.Send(ctx, remotes[pi].PortAddr(7), stressPayload(pi, k, size)); err != nil {
					errs <- err
				}
			}(pi, k)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent send: %v", err)
	}

	total := int64(peers * msgs)
	deadline := time.Now().Add(20 * time.Second)
	for delivered.Load()+corrupt.Load() < total {
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d of %d", delivered.Load(), total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if corrupt.Load() != 0 {
		t.Fatalf("%d corrupted deliveries: pooled packet buffers crossed", corrupt.Load())
	}
	st := hub.Stats()
	if st.MessagesSent != total {
		t.Fatalf("MessagesSent = %d, want %d", st.MessagesSent, total)
	}
	if st.SendFailures != 0 {
		t.Fatalf("SendFailures = %d, want 0", st.SendFailures)
	}
	return st
}

// TestConcurrentSendDistinctPeers hammers one endpoint with parallel
// Sends to six peers over a zero-delay network — acks re-enter the sender
// synchronously inside dg.Send, exercising the pooled-buffer handshake.
// Run under -race in CI.
func TestConcurrentSendDistinctPeers(t *testing.T) {
	runHubStress(t, netsim.Perfect(), Config{RTO: 50 * time.Millisecond, MaxRetries: 8}, 6, 40, 6000)
}

// TestConcurrentSendLossyRetransmit adds loss so the sweep goroutine's
// retransmissions race concurrent sends and ack-time buffer recycling.
func TestConcurrentSendLossyRetransmit(t *testing.T) {
	cfg := Config{RTO: 20 * time.Millisecond, MaxRetries: 40, Window: 32}
	st := runHubStress(t, netsim.Perfect().Lossy(0.25), cfg, 4, 15, 4000)
	if st.Retransmits == 0 {
		t.Fatal("lossy stress saw no retransmits; loss injection broken")
	}
}
