package mnet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"mocha/internal/netsim"
	"mocha/internal/transport"
)

// pairConfig builds two endpoints on a simulated network.
func pairConfig(t *testing.T, profile netsim.Profile, cfg Config) (*Endpoint, *Endpoint, *transport.SimNetwork) {
	t.Helper()
	seed := netsim.SeedFromEnv(3)
	t.Logf("network seed %d (set %s to replay)", seed, netsim.SeedEnv)
	sn := transport.NewSimNetwork(netsim.Config{Profile: profile, Seed: seed})
	s1, err := sn.NewStack(1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := sn.NewStack(2)
	if err != nil {
		t.Fatal(err)
	}
	e1 := NewEndpoint(s1.Datagram(), cfg)
	e2 := NewEndpoint(s2.Datagram(), cfg)
	t.Cleanup(func() {
		_ = e1.Close()
		_ = e2.Close()
		_ = sn.Close()
	})
	return e1, e2, sn
}

func pair(t *testing.T) (*Endpoint, *Endpoint, *transport.SimNetwork) {
	return pairConfig(t, netsim.Perfect(), Config{})
}

// collect opens a port that forwards messages to a channel.
func collect(t *testing.T, e *Endpoint, portNum uint16) (<-chan Message, *Port) {
	t.Helper()
	p, err := e.OpenPort(portNum)
	if err != nil {
		t.Fatal(err)
	}
	ch := make(chan Message, 256)
	p.SetHandler(func(m Message) { ch <- m })
	return ch, p
}

func sendOK(t *testing.T, p *Port, to string, data []byte) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := p.Send(ctx, to, data); err != nil {
		t.Fatalf("Send: %v", err)
	}
}

func TestRoundTrip(t *testing.T) {
	e1, e2, _ := pair(t)
	ch, _ := collect(t, e2, 5)
	sender, err := e1.OpenPort(9)
	if err != nil {
		t.Fatal(err)
	}
	sendOK(t, sender, e2.PortAddr(5), []byte("hello mocha"))
	select {
	case m := <-ch:
		if string(m.Data) != "hello mocha" {
			t.Fatalf("data %q", m.Data)
		}
		if m.From != e1.PortAddr(9) {
			t.Fatalf("from %q, want %q", m.From, e1.PortAddr(9))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestEndpointRestartNotShadowed(t *testing.T) {
	// An endpoint that restarts at the same address begins its sequence
	// numbers and message IDs anew. Without the boot incarnation in the
	// data header, the surviving peer would ack the reborn endpoint's
	// packets (so its sends "succeed") while silently discarding them as
	// stale duplicates of the previous incarnation — the worst failure
	// mode a rebooted site could hit.
	e1, e2, sn := pair(t)
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)
	for i := 0; i < 5; i++ {
		sendOK(t, sender, e2.PortAddr(5), []byte(fmt.Sprintf("pre-%d", i)))
	}
	for i := 0; i < 5; i++ {
		<-ch
	}

	// Reboot site 1: close the endpoint, restart the machine at the same
	// address, and build a fresh endpoint on the new stack.
	_ = e1.Close()
	s1, err := sn.Restart(1)
	if err != nil {
		t.Fatal(err)
	}
	e1b := NewEndpoint(s1.Datagram(), Config{})
	t.Cleanup(func() { _ = e1b.Close() })
	sender2, _ := e1b.OpenPort(9)

	sendOK(t, sender2, e2.PortAddr(5), []byte("post-restart"))
	select {
	case m := <-ch:
		if string(m.Data) != "post-restart" {
			t.Fatalf("data %q", m.Data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("restarted endpoint's message never delivered (shadowed by its predecessor's sequence state)")
	}
}

func TestDelayedPredecessorPacketDoesNotResetPeerState(t *testing.T) {
	// A packet from a sender's previous incarnation can arrive after the
	// receiver has already switched to the restarted incarnation (it sat
	// in a queue or took the slow path). It must be dropped: if it were
	// treated as "the sender restarted again", the receiver would wipe
	// the live incarnation's ordering and duplicate state, restart
	// ordering.next at 0 while the live sender is past it, and park all
	// subsequent messages in pending — a permanent delivery stall, since
	// the fragments were already acked and will never be retransmitted.
	e1, e2, _ := pair(t)
	ch, _ := collect(t, e2, 5)
	from := e1.Addr()
	inject := func(boot uint32, msgID, seq uint64, payload string) {
		bp := encodeData(dataPacket{
			srcPort: 9, dstPort: 5, msgID: msgID, seq: seq,
			fragIdx: 0, fragCount: 1, boot: boot, payload: []byte(payload),
		}, nil)
		e2.receive(from, *bp)
		putPktBuf(bp)
	}
	recv := func(want string) {
		t.Helper()
		select {
		case m := <-ch:
			if string(m.Data) != want {
				t.Fatalf("delivered %q, want %q", m.Data, want)
			}
		case <-time.After(time.Second):
			t.Fatalf("%q never delivered", want)
		}
	}

	const oldBoot, newBoot = 111, 222
	inject(oldBoot, 1, 0, "pre-restart")
	recv("pre-restart")

	// The sender restarts: new boot, sequence numbers and msgIDs anew.
	inject(newBoot, 1, 0, "post-0")
	inject(newBoot, 2, 1, "post-1")
	recv("post-0")
	recv("post-1")

	// A delayed packet from the dead incarnation surfaces. It must not be
	// delivered and must not reset the live incarnation's receive state.
	inject(oldBoot, 2, 1, "stale-straggler")

	// The live sender continues at its current sequence position; the
	// message must be delivered promptly, not parked behind a phantom gap
	// until the gap timeout fires.
	inject(newBoot, 3, 2, "post-2")
	recv("post-2")

	select {
	case m := <-ch:
		t.Fatalf("stale incarnation's packet delivered: %q", m.Data)
	default:
	}
}

func TestReplyUsingFromAddress(t *testing.T) {
	e1, e2, _ := pair(t)
	replies, client := collect(t, e1, 4)
	_, server := collect(t, e2, 5)
	server.SetHandler(func(m Message) {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := server.Send(ctx, m.From, append([]byte("re: "), m.Data...)); err != nil {
			t.Errorf("reply: %v", err)
		}
	})
	sendOK(t, client, e2.PortAddr(5), []byte("ping"))
	select {
	case m := <-replies:
		if string(m.Data) != "re: ping" {
			t.Fatalf("reply %q", m.Data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reply")
	}
}

func TestLargeMessageFragmentation(t *testing.T) {
	e1, e2, _ := pair(t)
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)

	payload := make([]byte, 300*1024)
	rand.New(rand.NewSource(4)).Read(payload)
	sendOK(t, sender, e2.PortAddr(5), payload)
	select {
	case m := <-ch:
		if !bytes.Equal(m.Data, payload) {
			t.Fatalf("corrupted: got %d bytes", len(m.Data))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no delivery")
	}
	st := e1.Stats()
	if st.FragmentsSent < 200 {
		t.Fatalf("FragmentsSent = %d, expected >200 for 300KiB", st.FragmentsSent)
	}
}

func TestEmptyMessage(t *testing.T) {
	e1, e2, _ := pair(t)
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)
	sendOK(t, sender, e2.PortAddr(5), nil)
	select {
	case m := <-ch:
		if len(m.Data) != 0 {
			t.Fatalf("data %q", m.Data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
}

func TestLossRecovery(t *testing.T) {
	cfg := Config{RTO: 30 * time.Millisecond, MaxRetries: 50}
	e1, e2, _ := pairConfig(t, netsim.Perfect().Lossy(0.3), cfg)
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)

	payload := make([]byte, 40*1024)
	rand.New(rand.NewSource(5)).Read(payload)
	sendOK(t, sender, e2.PortAddr(5), payload)
	select {
	case m := <-ch:
		if !bytes.Equal(m.Data, payload) {
			t.Fatal("corrupted under loss")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("never recovered from loss")
	}
	if st := e1.Stats(); st.Retransmits == 0 {
		t.Fatal("expected retransmissions under 30% loss")
	}
}

func TestSequencedDelivery(t *testing.T) {
	// Jitter reorders packets; per-port delivery order must match send
	// order regardless.
	cfg := Config{}
	e1, e2, _ := pairConfig(t, netsim.Profile{PropDelay: time.Millisecond, Jitter: 4 * time.Millisecond}, cfg)
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)

	const n = 60
	var wg sync.WaitGroup
	// Sends happen from one goroutine (sequence numbers are assigned at
	// send time), but completion acks interleave arbitrarily.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			sendOK(t, sender, e2.PortAddr(5), []byte{byte(i)})
		}
	}()
	for i := 0; i < n; i++ {
		select {
		case m := <-ch:
			if int(m.Data[0]) != i {
				t.Fatalf("out of order: got %d at position %d", m.Data[0], i)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("missing message %d", i)
		}
	}
	wg.Wait()
}

func TestSendToDeadPeerFails(t *testing.T) {
	cfg := Config{RTO: 20 * time.Millisecond, MaxRetries: 3}
	e1, _, sn := pairConfig(t, netsim.Perfect(), cfg)
	sn.Kill(2)
	sender, _ := e1.OpenPort(9)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := sender.Send(ctx, "2/5", []byte("are you there"))
	if !errors.Is(err, ErrSendFailed) {
		t.Fatalf("Send to dead peer = %v, want ErrSendFailed", err)
	}
	if st := e1.Stats(); st.SendFailures == 0 {
		t.Fatal("SendFailures not counted")
	}
}

func TestSendContextTimeout(t *testing.T) {
	cfg := Config{RTO: time.Hour} // retransmission never fires
	e1, _, sn := pairConfig(t, netsim.Perfect(), cfg)
	sn.Kill(2)
	sender, _ := e1.OpenPort(9)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := sender.Send(ctx, "2/5", []byte("x"))
	if err == nil {
		t.Fatal("send to dead peer succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("context timeout not honored promptly")
	}
}

func TestGapRelease(t *testing.T) {
	// A message abandoned mid-delivery (partition + exhausted retries)
	// must not stall later messages forever.
	cfg := Config{RTO: 15 * time.Millisecond, MaxRetries: 2, GapTimeout: 150 * time.Millisecond}
	e1, e2, sn := pairConfig(t, netsim.Perfect(), cfg)
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)

	sn.Underlying().Partition(1, 2, true)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sender.Send(ctx, e2.PortAddr(5), []byte("lost")); err == nil {
		t.Fatal("send across partition succeeded")
	}
	sn.Underlying().Partition(1, 2, false)

	sendOK(t, sender, e2.PortAddr(5), []byte("after-heal"))
	select {
	case m := <-ch:
		if string(m.Data) != "after-heal" {
			t.Fatalf("data %q", m.Data)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("gap was never released")
	}
}

func TestHMACRejectsForeignTraffic(t *testing.T) {
	sn := transport.NewSimNetwork(netsim.Config{Profile: netsim.Perfect(), Seed: 3})
	t.Cleanup(func() { _ = sn.Close() })
	s1, _ := sn.NewStack(1)
	s2, _ := sn.NewStack(2)
	cfgGood := Config{Key: []byte("cluster-secret"), RTO: 20 * time.Millisecond, MaxRetries: 2}
	cfgEvil := Config{Key: []byte("wrong-key"), RTO: 20 * time.Millisecond, MaxRetries: 2}
	good := NewEndpoint(s2.Datagram(), cfgGood)
	evil := NewEndpoint(s1.Datagram(), cfgEvil)
	t.Cleanup(func() { _ = good.Close(); _ = evil.Close() })

	ch, _ := collect(t, good, 5)
	sender, _ := evil.OpenPort(9)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := sender.Send(ctx, good.PortAddr(5), []byte("spoof")); err == nil {
		t.Fatal("unauthenticated send was acknowledged")
	}
	select {
	case <-ch:
		t.Fatal("unauthenticated message delivered")
	case <-time.After(100 * time.Millisecond):
	}
	if st := good.Stats(); st.BadPackets == 0 {
		t.Fatal("bad packets not counted")
	}
}

func TestHMACMatchedKeysDeliver(t *testing.T) {
	cfg := Config{Key: []byte("cluster-secret")}
	e1, e2, _ := pairConfig(t, netsim.Perfect(), cfg)
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)
	sendOK(t, sender, e2.PortAddr(5), []byte("authentic"))
	select {
	case m := <-ch:
		if string(m.Data) != "authentic" {
			t.Fatalf("data %q", m.Data)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("authenticated message not delivered")
	}
}

func TestUpwardMultiplexing(t *testing.T) {
	// Many logical ports share one endpoint — the library's scalability
	// claim. Each port must receive exactly its own traffic.
	e1, e2, _ := pair(t)
	const ports = 16
	chans := make([]<-chan Message, ports)
	for i := 0; i < ports; i++ {
		chans[i], _ = collect(t, e2, uint16(10+i))
	}
	sender, _ := e1.OpenPort(9)
	for i := 0; i < ports; i++ {
		sendOK(t, sender, e2.PortAddr(uint16(10+i)), []byte{byte(i)})
	}
	for i := 0; i < ports; i++ {
		select {
		case m := <-chans[i]:
			if int(m.Data[0]) != i {
				t.Fatalf("port %d received %d", 10+i, m.Data[0])
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("port %d received nothing", 10+i)
		}
	}
}

func TestWindowDoesNotDeadlock(t *testing.T) {
	cfg := Config{Window: 4}
	e1, e2, _ := pairConfig(t, netsim.Perfect(), cfg)
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)
	payload := make([]byte, 100*1400) // 100 fragments through a window of 4
	sendOK(t, sender, e2.PortAddr(5), payload)
	select {
	case m := <-ch:
		if len(m.Data) != len(payload) {
			t.Fatalf("got %d bytes", len(m.Data))
		}
	case <-time.After(10 * time.Second):
		t.Fatal("windowed send never completed")
	}
}

func TestConcurrentSenders(t *testing.T) {
	e1, e2, _ := pair(t)
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)

	const goroutines = 8
	const perG = 20
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				err := sender.Send(ctx, e2.PortAddr(5), []byte(fmt.Sprintf("%d-%d", g, i)))
				cancel()
				if err != nil {
					t.Errorf("send %d-%d: %v", g, i, err)
				}
			}
		}(g)
	}
	wg.Wait()
	got := 0
	deadline := time.After(10 * time.Second)
	for got < goroutines*perG {
		select {
		case <-ch:
			got++
		case <-deadline:
			t.Fatalf("received %d of %d", got, goroutines*perG)
		}
	}
}

func TestDuplicatePortRejected(t *testing.T) {
	e1, _, _ := pair(t)
	if _, err := e1.OpenPort(5); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.OpenPort(5); !errors.Is(err, ErrPortInUse) {
		t.Fatalf("err = %v, want ErrPortInUse", err)
	}
}

func TestClosedEndpoint(t *testing.T) {
	e1, e2, _ := pair(t)
	sender, _ := e1.OpenPort(9)
	if err := e1.Close(); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := sender.Send(ctx, e2.PortAddr(5), []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	if _, err := e1.OpenPort(6); !errors.Is(err, ErrClosed) {
		t.Fatalf("OpenPort after close = %v, want ErrClosed", err)
	}
	if err := e1.Close(); err != nil {
		t.Fatalf("double close = %v", err)
	}
}

func TestAddrParsing(t *testing.T) {
	tests := []struct {
		addr     string
		endpoint string
		port     uint16
		wantErr  bool
	}{
		{addr: "7/2", endpoint: "7", port: 2},
		{addr: "127.0.0.1:9000/65535", endpoint: "127.0.0.1:9000", port: 65535},
		{addr: "no-port", wantErr: true},
		{addr: "x/notanumber", wantErr: true},
		{addr: "x/70000", wantErr: true},
	}
	for _, tt := range tests {
		ep, port, err := SplitAddr(tt.addr)
		if tt.wantErr {
			if err == nil {
				t.Errorf("SplitAddr(%q) succeeded", tt.addr)
			}
			continue
		}
		if err != nil {
			t.Errorf("SplitAddr(%q): %v", tt.addr, err)
			continue
		}
		if ep != tt.endpoint || port != tt.port {
			t.Errorf("SplitAddr(%q) = (%q,%d)", tt.addr, ep, port)
		}
		if got := JoinAddr(ep, port); got != tt.addr {
			t.Errorf("JoinAddr round trip = %q, want %q", got, tt.addr)
		}
	}
}

func TestQuickSplitReassembles(t *testing.T) {
	f := func(data []byte, mssRaw uint16) bool {
		mss := int(mssRaw%2000) + 1
		chunks := split(data, mss)
		if len(chunks) == 0 {
			return false
		}
		var total []byte
		for _, c := range chunks {
			if len(c) > mss {
				return false
			}
			total = append(total, c...)
		}
		return bytes.Equal(total, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(6))}); err != nil {
		t.Fatal(err)
	}
}

func TestPacketCodecRoundTrip(t *testing.T) {
	keys := [][]byte{nil, []byte("k")}
	for _, key := range keys {
		p := dataPacket{srcPort: 3, dstPort: 9, msgID: 77, seq: 5, fragIdx: 2, fragCount: 4, boot: 11, payload: []byte("abc")}
		got, err := decodeData(*encodeData(p, key), key)
		if err != nil {
			t.Fatalf("key=%q decode: %v", key, err)
		}
		if got.srcPort != 3 || got.dstPort != 9 || got.msgID != 77 || got.seq != 5 || got.fragIdx != 2 || got.fragCount != 4 || got.boot != 11 || string(got.payload) != "abc" {
			t.Fatalf("key=%q round trip mismatch: %+v", key, got)
		}
		id, idx, boot, err := decodeAck(*encodeAck(42, 7, 11, key), key)
		if err != nil || id != 42 || idx != 7 || boot != 11 {
			t.Fatalf("key=%q ack round trip: id=%d idx=%d boot=%d err=%v", key, id, idx, boot, err)
		}
	}
	// Tampered packet with MAC must be rejected.
	pkt := *encodeData(dataPacket{fragCount: 1, payload: []byte("x")}, []byte("k"))
	pkt[len(pkt)-1] ^= 0xFF
	if _, err := decodeData(pkt, []byte("k")); err == nil {
		t.Fatal("tampered packet accepted")
	}
	// Invalid fragment metadata rejected.
	if _, err := decodeData(*encodeData(dataPacket{fragCount: 0}, nil), nil); err == nil {
		t.Fatal("fragCount=0 accepted")
	}
}

func TestCostModelCharged(t *testing.T) {
	// With a synthetic per-fragment cost, a multi-fragment send must take
	// at least the modelled time on both sides.
	cost := netsim.CostModel{FragmentPerPacket: 5 * time.Millisecond, ReassemblePerPacket: 5 * time.Millisecond}
	cfg := Config{Cost: cost}
	e1, e2, _ := pairConfig(t, netsim.Perfect(), cfg)
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)
	payload := make([]byte, 4*1400) // at least 4 fragments
	start := time.Now()
	sendOK(t, sender, e2.PortAddr(5), payload)
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatal("no delivery")
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("elapsed %v, want >= 40ms of modelled cost", elapsed)
	}
}

func TestStatsAccounting(t *testing.T) {
	e1, e2, _ := pair(t)
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)
	payload := make([]byte, 3000) // 3 fragments
	sendOK(t, sender, e2.PortAddr(5), payload)
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
	s1 := e1.Stats()
	if s1.MessagesSent != 1 {
		t.Errorf("MessagesSent = %d", s1.MessagesSent)
	}
	if s1.FragmentsSent != 3 {
		t.Errorf("FragmentsSent = %d", s1.FragmentsSent)
	}
	s2 := e2.Stats()
	if s2.FragmentsRecv != 3 {
		t.Errorf("FragmentsRecv = %d", s2.FragmentsRecv)
	}
	if s2.MessagesDelivered != 1 {
		t.Errorf("MessagesDelivered = %d", s2.MessagesDelivered)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// Force retransmissions by delaying acks behind a high-latency return
	// path: the receiver must deliver the message exactly once.
	sn := transport.NewSimNetwork(netsim.Config{Profile: netsim.Perfect(), Seed: 3})
	t.Cleanup(func() { _ = sn.Close() })
	s1, _ := sn.NewStack(1)
	s2, _ := sn.NewStack(2)
	// Acks (2 -> 1) crawl; data (1 -> 2) flies, so the sender retransmits
	// data the receiver already has.
	sn.Underlying().SetLinkProfile(2, 1, netsim.Profile{PropDelay: 120 * time.Millisecond})
	cfg := Config{RTO: 30 * time.Millisecond, MaxRetries: 20}
	e1 := NewEndpoint(s1.Datagram(), cfg)
	e2 := NewEndpoint(s2.Datagram(), cfg)
	t.Cleanup(func() { _ = e1.Close(); _ = e2.Close() })

	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)
	sendOK(t, sender, e2.PortAddr(5), []byte("once"))

	delivered := 0
	timeout := time.After(500 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-ch:
			delivered++
		case <-timeout:
			done = true
		}
	}
	if delivered != 1 {
		t.Fatalf("delivered %d times, want exactly 1", delivered)
	}
	if st := e1.Stats(); st.Retransmits == 0 {
		t.Fatal("expected retransmissions under slow acks")
	}
	if st := e2.Stats(); st.Duplicates == 0 {
		t.Fatal("expected duplicate suppression to trigger")
	}
}

func TestInterleavedLargeAndSmall(t *testing.T) {
	// A large transfer in progress must not corrupt or starve small
	// messages multiplexed onto the same endpoint (a different port).
	e1, e2, _ := pair(t)
	bigCh, _ := collect(t, e2, 5)
	smallCh, _ := collect(t, e2, 6)
	bigSender, _ := e1.OpenPort(9)
	smallSender, _ := e1.OpenPort(10)

	big := make([]byte, 500*1024)
	rand.New(rand.NewSource(7)).Read(big)
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		done <- bigSender.Send(ctx, e2.PortAddr(5), big)
	}()
	for i := 0; i < 20; i++ {
		sendOK(t, smallSender, e2.PortAddr(6), []byte{byte(i)})
	}
	for i := 0; i < 20; i++ {
		select {
		case m := <-smallCh:
			if int(m.Data[0]) != i {
				t.Fatalf("small message order broken: %d at %d", m.Data[0], i)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("small messages starved by bulk transfer")
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("bulk send: %v", err)
	}
	select {
	case m := <-bigCh:
		if !bytes.Equal(m.Data, big) {
			t.Fatal("bulk payload corrupted")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("bulk payload never delivered")
	}
}

func TestLossyBidirectionalStress(t *testing.T) {
	cfg := Config{RTO: 20 * time.Millisecond, MaxRetries: 60}
	e1, e2, _ := pairConfig(t, netsim.Perfect().Lossy(0.2), cfg)
	ch1, p1 := collect(t, e1, 5)
	ch2, p2 := collect(t, e2, 5)

	const n = 40
	errs := make(chan error, 2)
	go func() {
		for i := 0; i < n; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			err := p1.Send(ctx, e2.PortAddr(5), []byte{byte(i)})
			cancel()
			if err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	go func() {
		for i := 0; i < n; i++ {
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			err := p2.Send(ctx, e1.PortAddr(5), []byte{byte(i)})
			cancel()
			if err != nil {
				errs <- err
				return
			}
		}
		errs <- nil
	}()
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		select {
		case m := <-ch1:
			if int(m.Data[0]) != i {
				t.Fatalf("e1 order: got %d at %d", m.Data[0], i)
			}
		case <-time.After(20 * time.Second):
			t.Fatalf("e1 missing message %d", i)
		}
		select {
		case m := <-ch2:
			if int(m.Data[0]) != i {
				t.Fatalf("e2 order: got %d at %d", m.Data[0], i)
			}
		case <-time.After(20 * time.Second):
			t.Fatalf("e2 missing message %d", i)
		}
	}
}
