package mnet

import (
	"bytes"
	"context"
	"encoding/binary"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mocha/internal/netsim"
	"mocha/internal/obs"
)

// TestSerialIOAblation checks the pre-batching path is preserved intact
// behind Config.SerialIO: round trip, loss recovery, and the sweep-loop
// retransmit all still work.
func TestSerialIOAblation(t *testing.T) {
	cfg := Config{SerialIO: true, RTO: 30 * time.Millisecond, MaxRetries: 50}
	e1, e2, _ := pairConfig(t, netsim.Perfect().Lossy(0.3), cfg)
	if e1.fl != nil || e1.wheel != nil {
		t.Fatal("SerialIO endpoint built a flusher or wheel")
	}
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)
	payload := make([]byte, 20*1024)
	rand.New(rand.NewSource(11)).Read(payload)
	sendOK(t, sender, e2.PortAddr(5), payload)
	select {
	case m := <-ch:
		if !bytes.Equal(m.Data, payload) {
			t.Fatal("corrupted under loss")
		}
	case <-time.After(20 * time.Second):
		t.Fatal("never recovered from loss")
	}
	if st := e1.Stats(); st.Retransmits == 0 {
		t.Fatal("expected sweep-loop retransmissions under 30% loss")
	}
}

// TestFlusherBatchesUnderLoad drives concurrent senders at one peer and
// checks the flusher actually coalesced packets: the batch counters must
// show more packets than flushes somewhere in the system.
func TestFlusherBatchesUnderLoad(t *testing.T) {
	reg := obs.NewRegistry()
	e1, e2, _ := pairConfig(t, netsim.Perfect(), Config{Metrics: reg})
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)

	const msgs = 200
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < msgs/8; i++ {
				sendOK(t, sender, e2.PortAddr(5), []byte{byte(g), byte(i)})
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < msgs; i++ {
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatalf("delivered %d/%d", i, msgs)
		}
	}
	batches := reg.CounterValue(obs.CSendBatches)
	pkts := reg.CounterValue(obs.CSendBatchPkts)
	if batches == 0 {
		t.Fatal("no flushes recorded")
	}
	// Every data fragment and every ack crosses a flusher; 200 messages
	// produce >=400 packets. If no flush ever carried more than one
	// packet, batching never engaged.
	if pkts <= batches {
		t.Fatalf("no coalescing: %d packets over %d flushes", pkts, batches)
	}
	if drops := e1.Stats().FlushDrops + e2.Stats().FlushDrops; drops != 0 {
		t.Fatalf("unexpected flush drops: %d", drops)
	}
}

// appenderMsg is a self-encoding test message.
type appenderMsg struct {
	n    int  // encoded payload size
	hint int  // claimed size (may lie low to test the fallback)
	fill byte // payload byte
}

func (a appenderMsg) EncodedSizeHint() int { return a.hint }

func (a appenderMsg) AppendEncode(buf []byte) []byte {
	var l [4]byte
	binary.BigEndian.PutUint32(l[:], uint32(a.n))
	buf = append(buf, l[:]...)
	for i := 0; i < a.n; i++ {
		buf = append(buf, a.fill)
	}
	return buf
}

// TestSendAppenderSingleFragment checks the zero-copy path: a message
// that fits one fragment is encoded in place and arrives byte-identical
// to its AppendEncode output, costing exactly one fragment.
func TestSendAppenderSingleFragment(t *testing.T) {
	e1, e2, _ := pair(t)
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)

	msg := appenderMsg{n: 100, hint: 104, fill: 0xAB}
	before := e1.Stats().FragmentsSent
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sender.SendAppender(ctx, e2.PortAddr(5), msg); err != nil {
		t.Fatal(err)
	}
	want := msg.AppendEncode(nil)
	select {
	case m := <-ch:
		if !bytes.Equal(m.Data, want) {
			t.Fatalf("delivered %d bytes, want %d byte-identical", len(m.Data), len(want))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
	if sent := e1.Stats().FragmentsSent - before; sent != 1 {
		t.Fatalf("single-fragment appender sent %d fragments", sent)
	}
}

// TestSendAppenderFallbacks covers the two escape hatches: an encoding
// larger than one fragment refragments transparently, and a hint that
// underestimates still delivers correctly.
func TestSendAppenderFallbacks(t *testing.T) {
	e1, e2, _ := pair(t)
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)

	for _, msg := range []appenderMsg{
		{n: 8000, hint: 8004, fill: 0x5C}, // multi-fragment
		{n: 600, hint: 8, fill: 0x77},     // lying hint, still one fragment
	} {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := sender.SendAppender(ctx, e2.PortAddr(5), msg); err != nil {
			cancel()
			t.Fatal(err)
		}
		cancel()
		want := msg.AppendEncode(nil)
		select {
		case m := <-ch:
			if !bytes.Equal(m.Data, want) {
				t.Fatalf("n=%d hint=%d: corrupted delivery", msg.n, msg.hint)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("n=%d hint=%d: no delivery", msg.n, msg.hint)
		}
	}
}

// TestSendAppenderWithMAC checks in-place encoding composes with the
// authentication trailer.
func TestSendAppenderWithMAC(t *testing.T) {
	cfg := Config{Key: []byte("batch-test-key")}
	e1, e2, _ := pairConfig(t, netsim.Perfect(), cfg)
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)
	msg := appenderMsg{n: 64, hint: 68, fill: 0x3E}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := sender.SendAppender(ctx, e2.PortAddr(5), msg); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-ch:
		if !bytes.Equal(m.Data, msg.AppendEncode(nil)) {
			t.Fatal("corrupted authenticated delivery")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery")
	}
}

// TestWheelGaugeSampled checks the endpoint's recurring gap job reports
// wheel occupancy through the metrics plane while sends are in flight.
func TestWheelGaugeSampled(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := Config{Metrics: reg, RTO: 20 * time.Millisecond}
	e1, e2, _ := pairConfig(t, netsim.Profile{Name: "delay-5ms", PropDelay: 5 * time.Millisecond}, cfg)
	ch, _ := collect(t, e2, 5)
	sender, _ := e1.OpenPort(9)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			sendOK(t, sender, e2.PortAddr(5), []byte("tick"))
		}
	}()
	for i := 0; i < 50; i++ {
		select {
		case <-ch:
		case <-time.After(10 * time.Second):
			t.Fatalf("delivered %d/50", i)
		}
	}
	<-done
	deadline := time.Now().Add(2 * time.Second)
	for reg.GaugeValue(obs.GWheelTimers) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("wheel gauge never sampled above zero")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
