package mnet

import (
	"time"

	"mocha/internal/obs"
)

// deliveredRingCap bounds the per-peer duplicate-suppression memory.
const deliveredRingCap = 4096

// reasmExpiry bounds how long a partial message waits for its missing
// fragments before being discarded (its sender died or gave up).
const reasmExpiry = 30 * time.Second

// receive is the datagram handler: it classifies raw packets.
func (e *Endpoint) receive(from string, pkt []byte) {
	if len(pkt) == 0 {
		return
	}
	switch pkt[0] {
	case ptData:
		e.handleData(from, pkt)
	case ptAck:
		e.handleAck(pkt)
	default:
		e.stats.badPackets.Add(1)
	}
}

// handleData processes one arriving data fragment: acknowledge,
// reassemble, deduplicate, restore order, and queue for dispatch.
func (e *Endpoint) handleData(from string, pkt []byte) {
	p, err := decodeData(pkt, e.cfg.Key)
	if err != nil {
		e.stats.badPackets.Add(1)
		return
	}
	// Always acknowledge, even duplicates: the sender may have missed the
	// previous ack. Batched mode hands the ack to the flusher (which owns
	// the buffer and coalesces same-peer acks into one transport batch);
	// the serial path sends inline — the transport copies synchronously,
	// so the pooled buffer goes straight back.
	ack := encodeAck(p.msgID, p.fragIdx, p.boot, e.cfg.Key)
	if e.fl != nil {
		e.fl.enqueue(from, ack)
	} else {
		_ = e.dg.Send(from, *ack)
		putPktBuf(ack)
	}

	e.stats.fragmentsRecv.Add(1)

	pr := e.getPeer(from)
	pr.mu.Lock()
	defer pr.mu.Unlock()

	if pr.rxBoot != p.boot {
		if pr.staleBoot(p.boot) {
			// A delayed packet from a superseded incarnation. Dropping it
			// is the point of remembering old boots: treating it as "the
			// sender restarted" would wipe the live incarnation's ordering
			// and duplicate state — ordering.next would restart at 0 while
			// the live sender (whose fragments were already acked) is at
			// seq N, parking its messages in pending forever, and the
			// cleared delivered map would re-admit old duplicates.
			e.countDuplicate()
			return
		}
		if pr.rxBoot != 0 {
			// The sender restarted: its sequence numbers and message IDs
			// begin anew. Keep only our transmit state toward it; the old
			// incarnation's ordering, reassembly, and duplicate memory
			// would silently swallow everything the reborn endpoint says.
			pr.rememberStaleBoot(pr.rxBoot)
			pr.order = make(map[uint16]*ordering)
			pr.reasm = make(map[uint64]*reassembly)
			pr.delivered = make(map[uint64]struct{})
			pr.deliveredRing = nil
		}
		pr.rxBoot = p.boot
	}

	if _, dup := pr.delivered[p.msgID]; dup {
		e.countDuplicate()
		return
	}
	if p.fragCount == 1 {
		// Single-fragment fast path (every control message): copy the
		// payload out of the transport's delivery buffer — recycled the
		// moment this handler returns — straight into the message.
		pr.markDelivered(p.msgID)
		q := queued{from: from, srcPort: p.srcPort, data: append([]byte(nil), p.payload...), frags: 1}
		e.deliverInOrder(pr, p.dstPort, p.seq, q)
		return
	}
	r, ok := pr.reasm[p.msgID]
	if !ok {
		r = &reassembly{
			frags:   make([][]byte, p.fragCount),
			total:   int(p.fragCount),
			srcPort: p.srcPort,
			dstPort: p.dstPort,
			seq:     p.seq,
			started: time.Now(),
		}
		pr.reasm[p.msgID] = r
	}
	if int(p.fragCount) != r.total || int(p.fragIdx) >= r.total {
		// Inconsistent fragmentation metadata; drop the fragment.
		e.stats.badPackets.Add(1)
		return
	}
	if r.frags[p.fragIdx] != nil {
		e.countDuplicate()
		return
	}
	// The payload aliases the transport's delivery buffer, which is
	// recycled the moment this handler returns; a fragment that must
	// outlive the call (await its siblings) needs its own copy. The
	// single-fragment path below copies into the assembled message
	// before returning either way.
	r.frags[p.fragIdx] = append([]byte(nil), p.payload...)
	r.have++
	r.bytes += len(p.payload)
	if r.have < r.total {
		return
	}

	// Message complete.
	delete(pr.reasm, p.msgID)
	pr.markDelivered(p.msgID)
	data := make([]byte, 0, r.bytes)
	for _, f := range r.frags {
		data = append(data, f...)
	}
	q := queued{from: from, srcPort: r.srcPort, data: data, frags: r.total}
	e.deliverInOrder(pr, r.dstPort, r.seq, q)
}

// countDuplicate increments the duplicate counter.
func (e *Endpoint) countDuplicate() {
	e.stats.duplicates.Add(1)
}

// staleBootsCap bounds how many superseded sender incarnations a peer
// remembers. Delayed packets from an incarnation older than the cap's
// reach would reset receive state spuriously, but that needs more than
// staleBootsCap restarts of one sender while such a packet is in flight.
const staleBootsCap = 4

// staleBoot reports whether b is a superseded incarnation of this sender.
// Caller holds pr.mu.
func (pr *peer) staleBoot(b uint32) bool {
	for _, s := range pr.staleBoots {
		if s == b {
			return true
		}
	}
	return false
}

// rememberStaleBoot records a superseded incarnation so its delayed
// packets are dropped instead of mistaken for yet another restart. Caller
// holds pr.mu.
func (pr *peer) rememberStaleBoot(b uint32) {
	if len(pr.staleBoots) >= staleBootsCap {
		copy(pr.staleBoots, pr.staleBoots[1:])
		pr.staleBoots = pr.staleBoots[:staleBootsCap-1]
	}
	pr.staleBoots = append(pr.staleBoots, b)
}

// markDelivered records a completed msgID, evicting the oldest once the
// ring is full. Caller holds pr.mu.
func (pr *peer) markDelivered(msgID uint64) {
	pr.delivered[msgID] = struct{}{}
	pr.deliveredRing = append(pr.deliveredRing, msgID)
	if len(pr.deliveredRing) > deliveredRingCap {
		evict := pr.deliveredRing[0]
		pr.deliveredRing = pr.deliveredRing[1:]
		delete(pr.delivered, evict)
	}
}

// deliverInOrder implements the library's "sequenced delivery": messages
// from one sender to one port are handed up in send order. Caller holds
// pr.mu.
func (e *Endpoint) deliverInOrder(pr *peer, dstPort uint16, seq uint64, q queued) {
	ord, ok := pr.order[dstPort]
	if !ok {
		ord = &ordering{pending: make(map[uint64]pendingMsg)}
		pr.order[dstPort] = ord
	}
	if seq < ord.next {
		// Sequence already delivered: a late duplicate.
		e.countDuplicate()
		return
	}
	ord.pending[seq] = pendingMsg{msg: q, arrived: time.Now()}
	e.drainOrdering(ord, dstPort)
}

// drainOrdering hands consecutive pending messages to the port queue.
// Caller holds pr.mu.
func (e *Endpoint) drainOrdering(ord *ordering, dstPort uint16) {
	for {
		pm, ok := ord.pending[ord.next]
		if !ok {
			return
		}
		delete(ord.pending, ord.next)
		ord.next++
		e.enqueue(dstPort, pm.msg)
	}
}

// enqueue places a complete in-order message on its port queue, dropping
// (and counting) if the port is missing or its queue is full — exactly the
// overload behaviour of a bounded daemon mailbox.
func (e *Endpoint) enqueue(dstPort uint16, q queued) {
	e.mu.Lock()
	port := e.ports[dstPort]
	e.mu.Unlock()
	if port == nil {
		e.stats.queueDrops.Add(1)
		e.cfg.Metrics.Inc(obs.CQueueDrops)
		return
	}
	select {
	case port.queue <- q:
	default:
		e.stats.queueDrops.Add(1)
		e.cfg.Metrics.Inc(obs.CQueueDrops)
	}
}

// releaseGaps skips sequence numbers whose messages will never arrive (the
// sender failed or abandoned the send) and expires stale partial
// reassemblies. Without this, one lost message from a dead sender would
// stall the port forever.
func (e *Endpoint) releaseGaps() {
	e.mu.Lock()
	peers := make([]*peer, 0, len(e.peers))
	for _, pr := range e.peers {
		peers = append(peers, pr)
	}
	gap := e.cfg.GapTimeout
	e.mu.Unlock()

	now := time.Now()
	for _, pr := range peers {
		pr.mu.Lock()
		for dstPort, ord := range pr.order {
			if len(ord.pending) == 0 {
				continue
			}
			if _, ok := ord.pending[ord.next]; ok {
				// Head of line present; drain may simply not have run.
				e.drainOrdering(ord, dstPort)
				continue
			}
			var oldest time.Time
			minSeq := uint64(0)
			first := true
			for seq, pm := range ord.pending {
				if first || seq < minSeq {
					minSeq = seq
				}
				if first || pm.arrived.Before(oldest) {
					oldest = pm.arrived
				}
				first = false
			}
			if now.Sub(oldest) >= gap {
				ord.next = minSeq
				e.drainOrdering(ord, dstPort)
			}
		}
		for id, r := range pr.reasm {
			if now.Sub(r.started) >= reasmExpiry {
				delete(pr.reasm, id)
			}
		}
		pr.mu.Unlock()
	}
}
