package mnet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mocha/internal/netsim"
	"mocha/internal/obs"
)

// outMsg tracks one in-flight reliable message.
type outMsg struct {
	id       uint64
	peerAddr string
	peer     *peer

	// remaining counts fragments not yet acknowledged (zeroed on failure).
	// The retransmit sweep reads it to skip settled messages without
	// taking their mutex.
	remaining atomic.Int32

	mu     sync.Mutex
	frags  map[uint32]*outFrag // sent but unacknowledged
	total  int
	acked  int
	failed bool
	// timer is the message's retransmission deadline on the wheel
	// (batched mode only); stopped when the message settles.
	timer netsim.WheelTimer
	done  chan error // buffered(1); receives nil on full ack or the failure
}

type outFrag struct {
	buf      *[]byte // pooled encoded packet; nil once released
	lastSent time.Time
	retries  int
	// sending marks the initial transmit as in progress outside m.mu; the
	// packet buffer must then be released by the sending goroutine, never
	// by the acker, so the transport never reads a recycled buffer.
	sending bool
	// release asks the in-flight sender to return the buffer: the frag was
	// acked (or the message failed) while its first transmit was underway.
	release bool
}

// ackFrag records an acknowledgment. It reports whether the message is now
// fully acknowledged.
func (m *outMsg) ackFrag(idx uint32) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed {
		return false
	}
	f, ok := m.frags[idx]
	if !ok {
		return false
	}
	delete(m.frags, idx)
	m.releaseFragLocked(f)
	m.releaseTokenLocked()
	m.remaining.Add(-1)
	m.acked++
	if m.acked == m.total {
		m.timer.Stop()
		m.done <- nil
		return true
	}
	return false
}

// fail marks the message failed, releases its window tokens and packet
// buffers, and signals the waiting sender. Idempotent.
func (m *outMsg) fail(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed || m.acked == m.total {
		return
	}
	m.failed = true
	m.timer.Stop()
	for _, f := range m.frags {
		m.releaseTokenLocked()
		m.releaseFragLocked(f)
	}
	m.frags = map[uint32]*outFrag{}
	m.remaining.Store(0)
	m.done <- err
}

// releaseFragLocked returns a fragment's packet buffer to the pool, or
// defers that to the in-flight initial transmit. Caller holds m.mu.
func (m *outMsg) releaseFragLocked(f *outFrag) {
	if f.sending {
		f.release = true
		return
	}
	if f.buf != nil {
		putPktBuf(f.buf)
		f.buf = nil
	}
}

// releaseTokenLocked frees one window slot.
func (m *outMsg) releaseTokenLocked() {
	select {
	case <-m.peer.window:
	default:
	}
}

// Appender is a message that can encode itself directly into the
// transmit buffer, skipping the intermediate flat []byte a plain Send
// requires. When the encoding fits one fragment, SendAppender writes it
// straight after the packet header in a pooled buffer — the zero-copy
// grant/push path. wire.Appender adapts any wire payload to this
// interface.
type Appender interface {
	// EncodedSizeHint returns the expected encoded size; it sizes the
	// packet buffer and picks the single-fragment fast path. An
	// underestimate only costs a fallback copy, never corruption.
	EncodedSizeHint() int
	// AppendEncode appends the encoded message to buf and returns the
	// extended slice.
	AppendEncode(buf []byte) []byte
}

// Send transmits one message reliably to a full MNet address
// ("endpoint/port"). It fragments the message, charges the modelled
// user-level fragmentation cost, transmits under the per-peer window, and
// blocks until every fragment is acknowledged, the context expires, or
// retransmissions are exhausted. A returned error therefore means the peer
// did not confirm the message — the failure-detection signal Section 4 of
// the paper builds on.
func (p *Port) Send(ctx context.Context, to string, data []byte) error {
	return p.sendMsg(ctx, to, data, nil)
}

// SendAppender is Send for self-encoding messages: the message marshals
// itself directly into the packet buffer when it fits one fragment,
// eliminating the intermediate encode allocation and payload copy on the
// grant and push hot paths. Larger messages fall back to the fragmenting
// path transparently.
func (p *Port) SendAppender(ctx context.Context, to string, msg Appender) error {
	return p.sendMsg(ctx, to, nil, msg)
}

func (p *Port) sendMsg(ctx context.Context, to string, data []byte, app Appender) error {
	e := p.ep
	peerAddr, dstPort, err := SplitAddr(to)
	if err != nil {
		return err
	}

	id := e.nextMsg.Add(1)

	pr := e.getPeer(peerAddr)
	pr.mu.Lock()
	seq := pr.nextSeq[dstPort]
	pr.nextSeq[dstPort] = seq + 1
	pr.mu.Unlock()

	mss := e.dg.MTU() - dataHeaderLen
	if len(e.cfg.Key) > 0 {
		mss -= macLen
	}

	hdr := dataPacket{
		srcPort:   p.num,
		dstPort:   dstPort,
		msgID:     id,
		seq:       seq,
		fragCount: 1,
		boot:      e.boot,
	}

	// pre is the single-fragment packet encoded in place by an Appender;
	// when the encoding overflows one fragment, flatten and fall back.
	var pre *[]byte
	if app != nil {
		bp := getPktBuf(dataHeaderLen + app.EncodedSizeHint() + macSize(e.cfg.Key))
		buf := app.AppendEncode((*bp)[:dataHeaderLen])
		payloadLen := len(buf) - dataHeaderLen
		if payloadLen <= mss {
			netsim.Charge(e.cfg.Cost.FragmentCost(payloadLen))
			writeDataHeader(buf, hdr)
			*bp = appendMAC(buf, e.cfg.Key)
			pre = bp
		} else {
			data = append([]byte(nil), buf[dataHeaderLen:]...)
			putPktBuf(bp)
		}
	}
	var chunks [][]byte
	if pre == nil {
		chunks = split(data, mss)
	} else {
		chunks = [][]byte{nil} // placeholder; the packet is already built
	}
	hdr.fragCount = uint32(len(chunks))

	m := &outMsg{
		id:       id,
		peerAddr: peerAddr,
		peer:     pr,
		frags:    make(map[uint32]*outFrag, len(chunks)),
		total:    len(chunks),
		done:     make(chan error, 1),
	}
	m.remaining.Store(int32(len(chunks)))
	// Register under the same critical section as the closed check, so a
	// concurrent Close cannot miss the message and leave it unfailed.
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		if pre != nil {
			putPktBuf(pre)
		}
		return ErrClosed
	}
	e.outMsgs[id] = m
	e.mu.Unlock()
	e.stats.messagesSent.Add(1)
	e.cfg.Metrics.Inc(obs.CMsgsSent)
	defer func() {
		e.mu.Lock()
		delete(e.outMsgs, id)
		e.mu.Unlock()
	}()

	if e.wheel != nil {
		// One wheel timer covers the whole message: each firing
		// retransmits whatever is overdue and rearms, so settled
		// messages cost the wheel nothing.
		m.mu.Lock()
		if !m.failed {
			m.timer = e.wheel.AfterFunc(e.cfg.RTO, func() { e.msgTimeout(m) })
		}
		m.mu.Unlock()
	}

	for i := range chunks {
		if pre == nil {
			// The paper's library fragments "at user level running as
			// interpreted byte code"; the cost model makes that visible.
			netsim.Charge(e.cfg.Cost.FragmentCost(len(chunks[i])))
		}

		select {
		case pr.window <- struct{}{}:
		case <-ctx.Done():
			m.fail(ctx.Err())
			return fmt.Errorf("mnet: send to %s: %w", to, ctx.Err())
		case <-e.done:
			m.fail(ErrClosed)
			return ErrClosed
		}

		var bp *[]byte
		if pre != nil {
			bp = pre
		} else {
			hdr.fragIdx = uint32(i)
			hdr.payload = chunks[i]
			bp = encodeData(hdr, e.cfg.Key)
		}

		var cp *[]byte
		if e.fl != nil {
			// Batched path: hand the flusher its own pooled copy so the
			// original stays pinned for retransmission — no release
			// dance, and Send never blocks on the transport. Copy before
			// the frag is published: once it sits in m.frags, an ack or a
			// wheel-fired failure may recycle bp concurrently.
			cp = getPktBuf(len(*bp))
			copy(*cp, *bp)
		}

		m.mu.Lock()
		if m.failed {
			m.mu.Unlock()
			putPktBuf(bp)
			if cp != nil {
				putPktBuf(cp)
			}
			select {
			case <-m.peer.window:
			default:
			}
			break
		}
		f := &outFrag{buf: bp, lastSent: time.Now()}
		if e.fl == nil {
			f.sending = true
		}
		m.frags[uint32(i)] = f
		m.mu.Unlock()

		if e.fl != nil {
			e.fl.enqueue(peerAddr, cp)
			e.stats.fragmentsSent.Add(1)
			continue
		}

		// Transmit outside m.mu: on a zero-delay simulated network the
		// transport delivers synchronously, and the resulting ack re-enters
		// ackFrag on this very goroutine.
		sendErr := e.dg.Send(peerAddr, *bp)

		m.mu.Lock()
		f.sending = false
		if f.release {
			// Acked (or failed) while the transmit was in flight; the
			// buffer is now ours to return.
			f.release = false
			putPktBuf(bp)
			f.buf = nil
		}
		m.mu.Unlock()

		if sendErr != nil {
			// An address the transport rejects outright will never be
			// acknowledged; fail fast instead of waiting out retries.
			m.fail(fmt.Errorf("mnet: transmit: %w", sendErr))
			break
		}
		e.stats.fragmentsSent.Add(1)
	}

	select {
	case err := <-m.done:
		if err != nil {
			e.stats.sendFailures.Add(1)
			e.cfg.Metrics.Inc(obs.CSendFailures)
			return fmt.Errorf("mnet: send to %s: %w", to, err)
		}
		return nil
	case <-ctx.Done():
		m.fail(ctx.Err())
		e.stats.sendFailures.Add(1)
		e.cfg.Metrics.Inc(obs.CSendFailures)
		return fmt.Errorf("mnet: send to %s: %w", to, ctx.Err())
	case <-e.done:
		return ErrClosed
	}
}

// split cuts data into MSS-sized chunks, always returning at least one
// chunk so empty messages work.
func split(data []byte, mss int) [][]byte {
	if len(data) == 0 {
		return [][]byte{nil}
	}
	chunks := make([][]byte, 0, (len(data)+mss-1)/mss)
	for len(data) > 0 {
		n := len(data)
		if n > mss {
			n = mss
		}
		chunks = append(chunks, data[:n])
		data = data[n:]
	}
	return chunks
}

// retransmit resends overdue fragments and fails messages that exhausted
// their retries.
func (e *Endpoint) retransmit() {
	e.mu.Lock()
	msgs := make([]*outMsg, 0, len(e.outMsgs))
	for _, m := range e.outMsgs {
		msgs = append(msgs, m)
	}
	rto := e.cfg.RTO
	maxRetries := e.cfg.MaxRetries
	e.mu.Unlock()

	now := time.Now()
	for _, m := range msgs {
		if m.remaining.Load() == 0 {
			// Fully acked (or already failed): skip without taking the
			// message mutex, so a sweep over a large in-flight window does
			// not contend with senders on settled messages.
			continue
		}
		m.mu.Lock()
		var resend []*[]byte
		gaveUp := false
		for _, f := range m.frags {
			if now.Sub(f.lastSent) < rto {
				continue
			}
			if f.retries >= maxRetries {
				gaveUp = true
				break
			}
			f.retries++
			f.lastSent = now
			// Copy the packet: once m.mu drops, an ack may recycle f.buf
			// while the resend below is still reading it.
			cp := getPktBuf(len(*f.buf))
			copy(*cp, *f.buf)
			resend = append(resend, cp)
		}
		m.mu.Unlock()

		if gaveUp {
			for _, cp := range resend {
				putPktBuf(cp)
			}
			m.fail(ErrSendFailed)
			e.mu.Lock()
			delete(e.outMsgs, m.id)
			e.mu.Unlock()
			continue
		}
		for _, cp := range resend {
			_ = e.dg.Send(m.peerAddr, *cp)
			putPktBuf(cp)
		}
		if len(resend) > 0 {
			e.stats.retransmits.Add(int64(len(resend)))
			e.cfg.Metrics.Add(obs.CRetransmits, int64(len(resend)))
		}
	}
}

// msgTimeout is the wheel-fired retransmission deadline for one message
// (batched mode). It resends whatever is overdue, fails the message once
// a fragment exhausts its retries, and rearms itself while fragments
// remain in flight — so retransmission work is proportional to the
// traffic that actually timed out, not to the whole in-flight window.
func (e *Endpoint) msgTimeout(m *outMsg) {
	if m.remaining.Load() == 0 {
		return
	}
	rto := e.cfg.RTO
	// The wheel rounds deadlines up, and fragments are stamped slightly
	// after the timer is armed; a strict age >= RTO check would skip the
	// first firing and double the effective timeout.
	due := rto - rto/4
	now := time.Now()

	m.mu.Lock()
	if m.failed || m.acked == m.total {
		m.mu.Unlock()
		return
	}
	var resend []*[]byte
	gaveUp := false
	for _, f := range m.frags {
		if now.Sub(f.lastSent) < due {
			continue
		}
		if f.retries >= e.cfg.MaxRetries {
			gaveUp = true
			break
		}
		f.retries++
		f.lastSent = now
		// Copy the packet: once m.mu drops, an ack may recycle f.buf
		// while the flusher is still reading the resend.
		cp := getPktBuf(len(*f.buf))
		copy(*cp, *f.buf)
		resend = append(resend, cp)
	}
	if !gaveUp {
		m.timer = e.wheel.AfterFunc(rto, func() { e.msgTimeout(m) })
	}
	m.mu.Unlock()

	if gaveUp {
		for _, cp := range resend {
			putPktBuf(cp)
		}
		m.fail(ErrSendFailed)
		e.mu.Lock()
		delete(e.outMsgs, m.id)
		e.mu.Unlock()
		return
	}
	if len(resend) > 0 {
		for _, cp := range resend {
			e.fl.enqueue(m.peerAddr, cp)
		}
		e.stats.retransmits.Add(int64(len(resend)))
		e.cfg.Metrics.Add(obs.CRetransmits, int64(len(resend)))
	}
}

// handleAck processes an acknowledgment packet. An ack echoing another
// incarnation's boot was earned by a predecessor endpoint's packet — a
// delayed duplicate from before a restart — and must not confirm one of
// this incarnation's messages that happens to reuse the message ID.
func (e *Endpoint) handleAck(pkt []byte) {
	msgID, fragIdx, boot, err := decodeAck(pkt, e.cfg.Key)
	if err != nil {
		e.stats.badPackets.Add(1)
		return
	}
	if boot != e.boot {
		return
	}
	e.mu.Lock()
	m := e.outMsgs[msgID]
	e.mu.Unlock()
	if m == nil {
		return
	}
	m.ackFrag(fragIdx)
}
