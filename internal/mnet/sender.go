package mnet

import (
	"context"
	"fmt"
	"sync"
	"time"

	"mocha/internal/netsim"
)

// outMsg tracks one in-flight reliable message.
type outMsg struct {
	id       uint64
	peerAddr string
	peer     *peer

	mu     sync.Mutex
	frags  map[uint32]*outFrag // sent but unacknowledged
	total  int
	acked  int
	failed bool
	done   chan error // buffered(1); receives nil on full ack or the failure
}

type outFrag struct {
	pkt      []byte
	lastSent time.Time
	retries  int
}

// ackFrag records an acknowledgment. It reports whether the message is now
// fully acknowledged.
func (m *outMsg) ackFrag(idx uint32) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed {
		return false
	}
	if _, ok := m.frags[idx]; !ok {
		return false
	}
	delete(m.frags, idx)
	m.releaseTokenLocked()
	m.acked++
	if m.acked == m.total {
		m.done <- nil
		return true
	}
	return false
}

// fail marks the message failed, releases its window tokens, and signals
// the waiting sender. Idempotent.
func (m *outMsg) fail(err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed || m.acked == m.total {
		return
	}
	m.failed = true
	for range m.frags {
		m.releaseTokenLocked()
	}
	m.frags = map[uint32]*outFrag{}
	m.done <- err
}

// releaseTokenLocked frees one window slot.
func (m *outMsg) releaseTokenLocked() {
	select {
	case <-m.peer.window:
	default:
	}
}

// Send transmits one message reliably to a full MNet address
// ("endpoint/port"). It fragments the message, charges the modelled
// user-level fragmentation cost, transmits under the per-peer window, and
// blocks until every fragment is acknowledged, the context expires, or
// retransmissions are exhausted. A returned error therefore means the peer
// did not confirm the message — the failure-detection signal Section 4 of
// the paper builds on.
func (p *Port) Send(ctx context.Context, to string, data []byte) error {
	e := p.ep
	peerAddr, dstPort, err := SplitAddr(to)
	if err != nil {
		return err
	}

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.nextMsg++
	id := e.nextMsg
	e.stats.MessagesSent++
	e.mu.Unlock()

	pr := e.getPeer(peerAddr)
	pr.mu.Lock()
	seq := pr.nextSeq[dstPort]
	pr.nextSeq[dstPort] = seq + 1
	pr.mu.Unlock()

	mss := e.dg.MTU() - dataHeaderLen
	if len(e.cfg.Key) > 0 {
		mss -= macLen
	}
	chunks := split(data, mss)

	m := &outMsg{
		id:       id,
		peerAddr: peerAddr,
		peer:     pr,
		frags:    make(map[uint32]*outFrag, len(chunks)),
		total:    len(chunks),
		done:     make(chan error, 1),
	}
	e.mu.Lock()
	e.outMsgs[id] = m
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.outMsgs, id)
		e.mu.Unlock()
	}()

	for i, chunk := range chunks {
		// The paper's library fragments "at user level running as
		// interpreted byte code"; the cost model makes that visible.
		netsim.Charge(e.cfg.Cost.FragmentCost(len(chunk)))

		select {
		case pr.window <- struct{}{}:
		case <-ctx.Done():
			m.fail(ctx.Err())
			return fmt.Errorf("mnet: send to %s: %w", to, ctx.Err())
		case <-e.done:
			m.fail(ErrClosed)
			return ErrClosed
		}

		pkt := encodeData(dataPacket{
			srcPort:   p.num,
			dstPort:   dstPort,
			msgID:     id,
			seq:       seq,
			fragIdx:   uint32(i),
			fragCount: uint32(len(chunks)),
			payload:   chunk,
		}, e.cfg.Key)

		m.mu.Lock()
		if m.failed {
			m.mu.Unlock()
			select {
			case <-m.peer.window:
			default:
			}
			break
		}
		m.frags[uint32(i)] = &outFrag{pkt: pkt, lastSent: time.Now()}
		m.mu.Unlock()

		if err := e.dg.Send(peerAddr, pkt); err != nil {
			// An address the transport rejects outright will never be
			// acknowledged; fail fast instead of waiting out retries.
			m.fail(fmt.Errorf("mnet: transmit: %w", err))
			break
		}
		e.mu.Lock()
		e.stats.FragmentsSent++
		e.mu.Unlock()
	}

	select {
	case err := <-m.done:
		if err != nil {
			e.mu.Lock()
			e.stats.SendFailures++
			e.mu.Unlock()
			return fmt.Errorf("mnet: send to %s: %w", to, err)
		}
		return nil
	case <-ctx.Done():
		m.fail(ctx.Err())
		e.mu.Lock()
		e.stats.SendFailures++
		e.mu.Unlock()
		return fmt.Errorf("mnet: send to %s: %w", to, ctx.Err())
	case <-e.done:
		return ErrClosed
	}
}

// split cuts data into MSS-sized chunks, always returning at least one
// chunk so empty messages work.
func split(data []byte, mss int) [][]byte {
	if len(data) == 0 {
		return [][]byte{nil}
	}
	chunks := make([][]byte, 0, (len(data)+mss-1)/mss)
	for len(data) > 0 {
		n := len(data)
		if n > mss {
			n = mss
		}
		chunks = append(chunks, data[:n])
		data = data[n:]
	}
	return chunks
}

// retransmit resends overdue fragments and fails messages that exhausted
// their retries.
func (e *Endpoint) retransmit() {
	e.mu.Lock()
	msgs := make([]*outMsg, 0, len(e.outMsgs))
	for _, m := range e.outMsgs {
		msgs = append(msgs, m)
	}
	rto := e.cfg.RTO
	maxRetries := e.cfg.MaxRetries
	e.mu.Unlock()

	now := time.Now()
	for _, m := range msgs {
		m.mu.Lock()
		var resend [][]byte
		gaveUp := false
		for _, f := range m.frags {
			if now.Sub(f.lastSent) < rto {
				continue
			}
			if f.retries >= maxRetries {
				gaveUp = true
				break
			}
			f.retries++
			f.lastSent = now
			resend = append(resend, f.pkt)
		}
		m.mu.Unlock()

		if gaveUp {
			m.fail(ErrSendFailed)
			e.mu.Lock()
			delete(e.outMsgs, m.id)
			e.mu.Unlock()
			continue
		}
		for _, pkt := range resend {
			_ = e.dg.Send(m.peerAddr, pkt)
		}
		if len(resend) > 0 {
			e.mu.Lock()
			e.stats.Retransmits += int64(len(resend))
			e.mu.Unlock()
		}
	}
}

// handleAck processes an acknowledgment packet.
func (e *Endpoint) handleAck(pkt []byte) {
	msgID, fragIdx, err := decodeAck(pkt, e.cfg.Key)
	if err != nil {
		e.mu.Lock()
		e.stats.BadPackets++
		e.mu.Unlock()
		return
	}
	e.mu.Lock()
	m := e.outMsgs[msgID]
	e.mu.Unlock()
	if m == nil {
		return
	}
	m.ackFrag(fragIdx)
}
