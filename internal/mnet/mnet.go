// Package mnet is the Go reproduction of Mocha's network object library:
// the custom communication substrate the paper builds all control traffic
// on. Quoting Section 5, the library "implements reliable, sequenced,
// delivery of messages as well as performing fragmentation and reassembly.
// It is scalable in the number of hosts that communicate with the library
// because it performs its own upward multiplexing of packets. It is
// particularly well suited for sending small messages as it avoids the
// heavy connection and tear-down overheads associated with other transport
// protocols such as TCP."
//
// An Endpoint owns one datagram socket and multiplexes any number of
// logical Ports onto it. Port.Send fragments a message, transmits the
// fragments under a per-peer sliding window, retransmits until each
// fragment is acknowledged, and returns when the whole message has been
// acknowledged — so a Send whose context times out doubles as the failure
// detector the paper's Section 4 relies on ("the send message will time
// out. The failure has been detected"). Receivers reassemble fragments,
// deduplicate, restore per-(sender, port) sequence order, and hand
// complete messages to the port's handler on a dedicated dispatcher
// goroutine, mirroring the single daemon thread of the paper's runtime.
//
// When the endpoint is built from the JDK1 cost model, fragmentation and
// reassembly charge the interpreted-bytecode costs that made the real
// library lose to kernel TCP for large transfers (Figures 11-14).
package mnet

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mocha/internal/netsim"
	"mocha/internal/obs"
	"mocha/internal/transport"
)

// Config parameterizes an Endpoint.
type Config struct {
	// Cost is the execution-cost model charged for fragmentation and
	// reassembly. The zero value charges nothing.
	Cost netsim.CostModel
	// RTO is the retransmission timeout for unacknowledged fragments.
	RTO time.Duration
	// MaxRetries bounds per-fragment retransmissions before the message
	// send fails.
	MaxRetries int
	// Window is the maximum number of unacknowledged fragments in flight
	// to one peer.
	Window int
	// GapTimeout bounds how long in-order delivery waits for a missing
	// sequence number before skipping it (the sender either failed or gave
	// up).
	GapTimeout time.Duration
	// Key, when non-empty, enables HMAC authentication of every packet.
	// All endpoints of a cluster must share the key.
	Key []byte
	// QueueLen is the per-port inbound queue length.
	QueueLen int
	// Metrics, when non-nil, mirrors the endpoint's reliability counters
	// (sends, deliveries, retransmits, failures, queue drops) into the
	// shared observability plane alongside the endpoint-local Stats.
	Metrics *obs.Registry
	// SerialIO restores the pre-batching I/O path: one transport send
	// per packet on the sender's goroutine, and a ticker-driven sweep
	// that scans every in-flight message for overdue fragments. The
	// default (false) routes outbound packets through a per-endpoint
	// flusher that coalesces same-peer packets into transport batch
	// sends, and schedules retransmissions on a hashed timer wheel so
	// only due messages are touched. SerialIO is the ablation baseline
	// for the load harness.
	SerialIO bool
	// Wheel overrides the timer wheel used for retransmission timeouts
	// and gap sweeps when batching is enabled. Nil uses the shared
	// process-wide wheel.
	Wheel *netsim.Wheel
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.RTO <= 0 {
		c.RTO = 200 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.GapTimeout <= 0 {
		c.GapTimeout = 2 * time.Second
	}
	if c.QueueLen <= 0 {
		c.QueueLen = 1024
	}
	return c
}

// Stats counts endpoint activity.
type Stats struct {
	MessagesSent      int64
	MessagesDelivered int64
	FragmentsSent     int64
	FragmentsRecv     int64
	Retransmits       int64
	Duplicates        int64
	SendFailures      int64
	BadPackets        int64
	QueueDrops        int64
	FlushDrops        int64
}

// atomicStats is the endpoint's lock-free counter block; Stats snapshots
// it. Keeping the counters out of the endpoint mutex stops bookkeeping
// from serializing concurrent Sends.
type atomicStats struct {
	messagesSent      atomic.Int64
	messagesDelivered atomic.Int64
	fragmentsSent     atomic.Int64
	fragmentsRecv     atomic.Int64
	retransmits       atomic.Int64
	duplicates        atomic.Int64
	sendFailures      atomic.Int64
	badPackets        atomic.Int64
	queueDrops        atomic.Int64
	flushDrops        atomic.Int64
}

// ErrSendFailed reports that a message exhausted its retransmissions — the
// peer is unreachable or dead.
var ErrSendFailed = errors.New("mnet: send failed after retries")

// ErrClosed reports use of a closed endpoint or port.
var ErrClosed = errors.New("mnet: closed")

// ErrPortInUse reports a duplicate OpenPort.
var ErrPortInUse = errors.New("mnet: port in use")

// Message is one delivered application message.
type Message struct {
	// From is the sender's full MNet address ("endpoint/port"), directly
	// usable as a reply address.
	From string
	// Data is the reassembled message body; the receiver owns it.
	Data []byte
}

// Handler consumes delivered messages. Each port's handler runs on one
// dispatcher goroutine, so invocations for a port never overlap.
type Handler func(m Message)

// Endpoint multiplexes logical ports over one datagram endpoint.
type Endpoint struct {
	cfg Config
	dg  transport.Datagram

	// wheel schedules retransmission timeouts and the gap sweep when
	// batching is enabled; nil under Config.SerialIO.
	wheel *netsim.Wheel
	// fl coalesces outbound packets into per-peer transport batches;
	// nil under Config.SerialIO.
	fl     *flusher
	gapJob netsim.WheelTimer

	// boot is this endpoint's incarnation, stamped on every data packet.
	// A peer that sees it change knows the endpoint restarted (its
	// sequence numbers and message IDs began anew) and resets its receive
	// state for this sender instead of shadowing the reborn endpoint with
	// its predecessor's ordering.
	boot uint32

	nextMsg atomic.Uint64
	stats   atomicStats

	mu      sync.Mutex
	closed  bool
	ports   map[uint16]*Port
	peers   map[string]*peer
	outMsgs map[uint64]*outMsg
	done    chan struct{}
	sweepWG sync.WaitGroup
}

// bootSeq distinguishes endpoint incarnations created in one process; the
// time term distinguishes incarnations across process restarts.
var bootSeq atomic.Uint32

// newBoot derives a fresh endpoint incarnation, never zero (zero marks
// "no incarnation seen yet" in peer state).
func newBoot() uint32 {
	b := uint32(time.Now().UnixNano())*2654435761 + bootSeq.Add(1)
	if b == 0 {
		b = 1
	}
	return b
}

// NewEndpoint wraps a datagram endpoint. The Endpoint takes ownership and
// closes the datagram on Close.
func NewEndpoint(dg transport.Datagram, cfg Config) *Endpoint {
	e := &Endpoint{
		cfg:     cfg.withDefaults(),
		dg:      dg,
		boot:    newBoot(),
		ports:   make(map[uint16]*Port),
		peers:   make(map[string]*peer),
		outMsgs: make(map[uint64]*outMsg),
		done:    make(chan struct{}),
	}
	if e.cfg.SerialIO {
		e.sweepWG.Add(1)
		go e.sweepLoop()
		// The handler registers only once the endpoint is fully built: a
		// real socket's read loop delivers from a concurrent goroutine the
		// moment it has somewhere to deliver to.
		dg.SetHandler(e.receive)
		return e
	}
	e.wheel = e.cfg.Wheel
	if e.wheel == nil {
		e.wheel = netsim.DefaultWheel()
	}
	e.fl = newFlusher(e)
	e.sweepWG.Add(1)
	go e.fl.run()
	// Gap release and reassembly expiry are periodic housekeeping, not
	// per-message deadlines: one recurring wheel job replaces the old
	// sweep ticker. It also samples the wheel-occupancy gauge.
	interval := e.cfg.RTO / 2
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	e.gapJob = e.wheel.Every(interval, func() {
		e.releaseGaps()
		e.cfg.Metrics.GaugeSet(obs.GWheelTimers, int64(e.wheel.Len()))
	})
	// Registered last: see the SerialIO branch.
	dg.SetHandler(e.receive)
	return e
}

// Addr returns the endpoint's datagram address.
func (e *Endpoint) Addr() string { return e.dg.LocalAddr() }

// PortAddr returns the full MNet address of a port on this endpoint.
func (e *Endpoint) PortAddr(port uint16) string {
	return JoinAddr(e.Addr(), port)
}

// Stats returns a snapshot of the endpoint counters.
func (e *Endpoint) Stats() Stats {
	return Stats{
		MessagesSent:      e.stats.messagesSent.Load(),
		MessagesDelivered: e.stats.messagesDelivered.Load(),
		FragmentsSent:     e.stats.fragmentsSent.Load(),
		FragmentsRecv:     e.stats.fragmentsRecv.Load(),
		Retransmits:       e.stats.retransmits.Load(),
		Duplicates:        e.stats.duplicates.Load(),
		SendFailures:      e.stats.sendFailures.Load(),
		BadPackets:        e.stats.badPackets.Load(),
		QueueDrops:        e.stats.queueDrops.Load(),
		FlushDrops:        e.stats.flushDrops.Load(),
	}
}

// OpenPort creates a logical port. Messages addressed to it queue until a
// handler is set.
func (e *Endpoint) OpenPort(port uint16) (*Port, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return nil, ErrClosed
	}
	if _, ok := e.ports[port]; ok {
		return nil, fmt.Errorf("%w: %d", ErrPortInUse, port)
	}
	p := &Port{
		ep:    e,
		num:   port,
		queue: make(chan queued, e.cfg.QueueLen),
	}
	e.ports[port] = p
	go p.dispatch()
	return p, nil
}

// Close shuts the endpoint down: all pending sends fail, dispatchers stop,
// and the underlying datagram endpoint is closed.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	for _, m := range e.outMsgs {
		m.fail(ErrClosed)
	}
	e.outMsgs = make(map[uint64]*outMsg)
	close(e.done)
	e.mu.Unlock()
	e.gapJob.Stop()
	e.sweepWG.Wait()
	return e.dg.Close()
}

// peer tracks per-remote-endpoint state: the send window, delivery
// sequencing, reassembly, and duplicate suppression.
type peer struct {
	window chan struct{}

	mu sync.Mutex
	// nextSeq assigns outbound sequence numbers per destination port.
	nextSeq map[uint16]uint64
	// rxBoot is the sender incarnation the peer's data packets last
	// carried; zero until the first packet. A previously unseen boot means
	// the remote endpoint restarted and its receive-side state below is
	// void; superseded boots are kept in staleBoots so a delayed packet
	// from a dead incarnation is dropped rather than mistaken for yet
	// another restart (which would wipe the live incarnation's state).
	rxBoot     uint32
	staleBoots []uint32
	// order restores inbound per-source-port sequence order.
	order map[uint16]*ordering
	// reasm holds partially received messages by msgID.
	reasm map[uint64]*reassembly
	// delivered suppresses redelivery of completed msgIDs.
	delivered     map[uint64]struct{}
	deliveredRing []uint64
}

// ordering is the in-order delivery state for one (peer, port) pair.
type ordering struct {
	next    uint64
	pending map[uint64]pendingMsg
}

type pendingMsg struct {
	msg     queued
	arrived time.Time
}

// reassembly collects the fragments of one message.
type reassembly struct {
	frags   [][]byte
	have    int
	total   int
	bytes   int
	srcPort uint16
	dstPort uint16
	seq     uint64
	started time.Time
}

// queued is one complete message waiting in a port queue.
type queued struct {
	from    string
	srcPort uint16
	data    []byte
	frags   int
}

// getPeer returns (creating if needed) the state for a remote endpoint.
func (e *Endpoint) getPeer(addr string) *peer {
	e.mu.Lock()
	defer e.mu.Unlock()
	p, ok := e.peers[addr]
	if !ok {
		p = &peer{
			window:    make(chan struct{}, e.cfg.Window),
			nextSeq:   make(map[uint16]uint64),
			order:     make(map[uint16]*ordering),
			reasm:     make(map[uint64]*reassembly),
			delivered: make(map[uint64]struct{}),
		}
		e.peers[addr] = p
	}
	return p
}

// Port is one logical endpoint multiplexed onto the Endpoint's socket.
type Port struct {
	ep  *Endpoint
	num uint16

	mu      sync.Mutex
	handler Handler
	queue   chan queued
}

// Num returns the port number.
func (p *Port) Num() uint16 { return p.num }

// Addr returns the port's full MNet address.
func (p *Port) Addr() string { return p.ep.PortAddr(p.num) }

// SetHandler installs the message handler. Messages received before a
// handler is set wait in the port queue.
func (p *Port) SetHandler(h Handler) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handler = h
}

// dispatch delivers queued messages to the handler one at a time, charging
// the modelled reassembly cost — the work the paper's library performed
// "at user level running as interpreted byte code".
func (p *Port) dispatch() {
	for {
		select {
		case q := <-p.queue:
			netsim.Charge(p.ep.cfg.Cost.ReassembleMessageCost(q.frags, len(q.data)))
			p.mu.Lock()
			h := p.handler
			p.mu.Unlock()
			if h != nil {
				h(Message{From: JoinAddr(q.from, q.srcPort), Data: q.data})
				p.ep.stats.messagesDelivered.Add(1)
				p.ep.cfg.Metrics.Inc(obs.CMsgsDelivered)
				continue
			}
			// No handler yet: requeue and back off briefly so early
			// traffic is not lost during startup.
			select {
			case p.queue <- q:
			default:
			}
			time.Sleep(time.Millisecond)
		case <-p.ep.done:
			return
		}
	}
}

// JoinAddr builds a full MNet address from an endpoint address and port.
func JoinAddr(endpoint string, port uint16) string {
	return endpoint + "/" + strconv.FormatUint(uint64(port), 10)
}

// SplitAddr splits a full MNet address into endpoint address and port.
func SplitAddr(addr string) (string, uint16, error) {
	i := strings.LastIndexByte(addr, '/')
	if i < 0 {
		return "", 0, fmt.Errorf("mnet: address %q missing port", addr)
	}
	port, err := strconv.ParseUint(addr[i+1:], 10, 16)
	if err != nil {
		return "", 0, fmt.Errorf("mnet: address %q: %w", addr, err)
	}
	return addr[:i], uint16(port), nil
}

// sweepLoop periodically retransmits unacked fragments, expires stale
// reassembly state, and releases in-order delivery gaps. It runs only
// under Config.SerialIO; the batched path arms one wheel timer per
// in-flight message instead, so a sweep never scans settled traffic.
func (e *Endpoint) sweepLoop() {
	defer e.sweepWG.Done()
	interval := e.cfg.RTO / 2
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			e.retransmit()
			e.releaseGaps()
		case <-e.done:
			return
		}
	}
}

// Ctx is a convenience wrapper building a send context with timeout.
func Ctx(timeout time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), timeout)
}
