package mnet

import (
	"sync"

	"mocha/internal/obs"
	"mocha/internal/transport"
)

// flushQueueCap bounds outbound packets buffered across all peers. Beyond
// it new packets are dropped and counted; the retransmission machinery
// (for data) and duplicate re-acking (for acks) recover them, exactly as
// they would recover a network loss.
const flushQueueCap = 4096

// flusher coalesces outbound packets into per-peer batches. Senders hand
// it pooled packet copies (ownership transfers) and return immediately;
// one goroutine drains the queues, pushing each peer's accumulated run
// through the transport's batch path in a single call. Batches form only
// under backpressure — while the flusher is inside one transport send,
// everything newly enqueued piles up for the next round — so an idle
// endpoint still transmits each packet near-immediately, and a saturated
// one amortizes the per-send cost (routing-lock acquisition on the
// simulated network, syscall entry on real UDP) over the whole run.
type flusher struct {
	e  *Endpoint
	bs transport.BatchSender // nil when the transport has no batch path

	mu      sync.Mutex
	queues  map[string][]*[]byte
	order   []string // peers with pending packets, round order
	pending int
	closed  bool
	wake    chan struct{}

	scratch [][]byte // reused batch view, owned by the run goroutine
}

func newFlusher(e *Endpoint) *flusher {
	bs, _ := e.dg.(transport.BatchSender)
	return &flusher{
		e:      e,
		bs:     bs,
		queues: make(map[string][]*[]byte),
		wake:   make(chan struct{}, 1),
	}
}

// enqueue hands one pooled packet to the flusher, which now owns the
// buffer. Never blocks: over capacity the packet is dropped and counted.
func (f *flusher) enqueue(peer string, bp *[]byte) {
	f.mu.Lock()
	if f.closed || f.pending >= flushQueueCap {
		f.mu.Unlock()
		putPktBuf(bp)
		if !f.closed {
			f.e.stats.flushDrops.Add(1)
			f.e.cfg.Metrics.Inc(obs.CFlushDrops)
		}
		return
	}
	q := f.queues[peer]
	if len(q) == 0 {
		f.order = append(f.order, peer)
	}
	f.queues[peer] = append(q, bp)
	f.pending++
	f.mu.Unlock()
	select {
	case f.wake <- struct{}{}:
	default:
	}
}

// run drains the queues until the endpoint closes.
func (f *flusher) run() {
	defer f.e.sweepWG.Done()
	for {
		select {
		case <-f.wake:
			for {
				peer, pkts := f.next()
				if peer == "" {
					break
				}
				f.send(peer, pkts)
			}
		case <-f.e.done:
			f.drain()
			return
		}
	}
}

// next pops one peer's entire accumulated run.
func (f *flusher) next() (string, []*[]byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.order) == 0 {
		return "", nil
	}
	peer := f.order[0]
	f.order = f.order[1:]
	pkts := f.queues[peer]
	delete(f.queues, peer)
	f.pending -= len(pkts)
	f.e.cfg.Metrics.GaugeSet(obs.GFlushQueue, int64(f.pending))
	return peer, pkts
}

// send pushes one peer's run through the transport and returns the
// buffers to the pool. Transport errors are ignored: an unreachable peer
// surfaces as a retransmission timeout, same as a lost datagram.
func (f *flusher) send(peer string, pkts []*[]byte) {
	if f.bs != nil && len(pkts) > 1 {
		if cap(f.scratch) < len(pkts) {
			f.scratch = make([][]byte, len(pkts))
		}
		batch := f.scratch[:len(pkts)]
		for i, bp := range pkts {
			batch[i] = *bp
		}
		_ = f.bs.SendBatch(peer, batch)
	} else {
		for _, bp := range pkts {
			_ = f.e.dg.Send(peer, *bp)
		}
	}
	for _, bp := range pkts {
		putPktBuf(bp)
	}
	f.e.cfg.Metrics.Inc(obs.CSendBatches)
	f.e.cfg.Metrics.Add(obs.CSendBatchPkts, int64(len(pkts)))
}

// drain frees everything still queued at close.
func (f *flusher) drain() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closed = true
	for _, q := range f.queues {
		for _, bp := range q {
			putPktBuf(bp)
		}
	}
	f.queues = map[string][]*[]byte{}
	f.order = nil
	f.pending = 0
}
