// Package wire defines the binary message formats exchanged between Mocha
// sites: lock protocol traffic between application threads and the home
// site's synchronization thread, replica transfer directives and payloads
// between daemon threads, and runtime traffic (spawn, code shipping, remote
// printing, heartbeats).
//
// Every message is a Payload with a Kind byte followed by a fixed,
// big-endian field layout written and read with Writer and Reader. The
// format is deliberately simple and self-contained: Mocha predates (and the
// paper's network library replaces) any general-purpose RPC layer, so the
// wire package is the single source of truth for what crosses the network.
package wire

import (
	"errors"
	"fmt"
	"sync"
)

// Kind identifies a message type on the wire.
type Kind uint8

// Message kinds. The lock-protocol kinds correspond directly to the message
// types named in the paper's pseudocode (Figures 5-7): ACQUIRELOCK,
// RELEASELOCK, GRANT, TRANSFERREPLICA and REGISTERREPLICA. The remaining
// kinds carry the fault-tolerance refinements (Section 4) and the wide-area
// runtime traffic (Section 2).
const (
	KindInvalid Kind = iota

	// Lock protocol (Figures 5-7).
	KindAcquireLock
	KindGrant
	KindReleaseLock
	KindTransferReplica
	KindRegisterReplica
	KindReplicaData

	// Fault-tolerance refinements (Section 4).
	KindPushUpdate
	KindPushAck
	KindPollVersion
	KindPollVersionReply
	KindHeartbeat
	KindHeartbeatAck
	KindLockNack
	KindSyncMoved

	// Hybrid protocol control (Section 5).
	KindOpenStreamRequest
	KindOpenStreamReply

	// Runtime: spawn, remote evaluation, travel-bag traffic (Section 2).
	KindSpawn
	KindSpawnAck
	KindTaskResult
	KindCodeRequest
	KindCodeReply
	KindPrint
	KindStackDump
	KindEvent
	KindJoin
	KindJoinAck

	// Delta replica transfer (appended so earlier kind values stay stable).
	KindReplicaDelta
	KindDeltaNack

	// Dissemination relay tree (appended so earlier kind values stay
	// stable).
	KindRelayPush
	KindRelayAck

	// Home placement: migration handoff and standby failover (appended so
	// earlier kind values stay stable).
	KindHomeHint
	KindHandoffRecord
	KindHandoffAck
	KindStandbyUpdate
	KindHomeMoved

	// Durable store write-ahead log record (appended so earlier kind values
	// stay stable). Never sent over the network: the store frames it on
	// disk, reusing the wire codec so torn tails decode as ErrTruncated.
	KindWALRecord

	kindSentinel // keep last
)

var kindNames = map[Kind]string{
	KindInvalid:           "INVALID",
	KindAcquireLock:       "ACQUIRELOCK",
	KindGrant:             "GRANT",
	KindReleaseLock:       "RELEASELOCK",
	KindTransferReplica:   "TRANSFERREPLICA",
	KindRegisterReplica:   "REGISTERREPLICA",
	KindReplicaData:       "REPLICADATA",
	KindPushUpdate:        "PUSHUPDATE",
	KindPushAck:           "PUSHACK",
	KindPollVersion:       "POLLVERSION",
	KindPollVersionReply:  "POLLVERSIONREPLY",
	KindHeartbeat:         "HEARTBEAT",
	KindHeartbeatAck:      "HEARTBEATACK",
	KindLockNack:          "LOCKNACK",
	KindSyncMoved:         "SYNCMOVED",
	KindOpenStreamRequest: "OPENSTREAMREQUEST",
	KindOpenStreamReply:   "OPENSTREAMREPLY",
	KindSpawn:             "SPAWN",
	KindSpawnAck:          "SPAWNACK",
	KindTaskResult:        "TASKRESULT",
	KindCodeRequest:       "CODEREQUEST",
	KindCodeReply:         "CODEREPLY",
	KindPrint:             "PRINT",
	KindStackDump:         "STACKDUMP",
	KindEvent:             "EVENT",
	KindJoin:              "JOIN",
	KindJoinAck:           "JOINACK",
	KindReplicaDelta:      "REPLICADELTA",
	KindDeltaNack:         "DELTANACK",
	KindRelayPush:         "RELAYPUSH",
	KindRelayAck:          "RELAYACK",
	KindHomeHint:          "HOMEHINT",
	KindHandoffRecord:     "HANDOFFRECORD",
	KindHandoffAck:        "HANDOFFACK",
	KindStandbyUpdate:     "STANDBYUPDATE",
	KindHomeMoved:         "HOMEMOVED",
	KindWALRecord:         "WALRECORD",
}

// String returns the protocol name of the kind, matching the names used in
// the paper's pseudocode where one exists.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// SiteID identifies a participating site (a Mocha server). Site IDs are
// assigned from the host file: the home site is always site 1.
type SiteID uint32

// HomeSite is the SiteID of the node where the initial application thread
// executes and where the synchronization thread runs.
const HomeSite SiteID = 1

// LockID identifies a ReplicaLock. IDs are chosen by the application, as in
// the paper's `new ReplicaLock(1, mocha)`.
type LockID uint32

// ThreadID identifies an application thread within the cluster. The high 32
// bits hold the SiteID of the thread's server, the low 32 bits a per-site
// counter, so IDs are unique without coordination.
type ThreadID uint64

// MakeThreadID builds a cluster-unique thread ID.
func MakeThreadID(site SiteID, local uint32) ThreadID {
	return ThreadID(uint64(site)<<32 | uint64(local))
}

// Site returns the site component of the thread ID.
func (t ThreadID) Site() SiteID { return SiteID(t >> 32) }

// VersionFlag is the GRANT flag telling an acquiring thread whether its
// local replicas are already current (VERSIONOK) or whether a new version is
// in flight from another daemon (NEEDNEWVERSION).
type VersionFlag uint8

// GRANT version flags from Figure 5.
const (
	VersionOK VersionFlag = iota + 1
	NeedNewVersion
)

// String returns the pseudocode name of the flag.
func (f VersionFlag) String() string {
	switch f {
	case VersionOK:
		return "VERSIONOK"
	case NeedNewVersion:
		return "NEEDNEWVERSION"
	default:
		return fmt.Sprintf("VersionFlag(%d)", uint8(f))
	}
}

// Payload is implemented by every wire message.
type Payload interface {
	// Kind reports the message type.
	Kind() Kind
	// encode appends the message body (everything after the kind byte).
	encode(w *Writer)
	// decode parses the message body.
	decode(r *Reader) error
}

// ErrUnknownKind is returned by Unmarshal for a kind byte with no
// registered message type.
var ErrUnknownKind = errors.New("wire: unknown message kind")

// ErrTruncated is returned when a message body ends before all declared
// fields have been read.
var ErrTruncated = errors.New("wire: truncated message")

// sizedPayload is implemented by the bulk replica frames (ReplicaData,
// PushUpdate, ReplicaDelta), whose size is dominated by payload data and
// therefore worth computing exactly before encoding.
type sizedPayload interface {
	encodedSize() int
}

// EncodedSizeHint reports the buffer capacity Marshal reserves for p: the
// exact frame size for messages that implement an encodedSize hint, and a
// small default for the fixed-layout control messages.
func EncodedSizeHint(p Payload) int {
	if s, ok := p.(sizedPayload); ok {
		return 1 + s.encodedSize()
	}
	return 64
}

// Marshal encodes a message, kind byte first. Bulk replica frames are
// encoded into an exactly-sized buffer so multi-hundred-kilobyte payloads
// allocate once instead of regrowing through doubling.
func Marshal(p Payload) []byte {
	w := NewWriter(EncodedSizeHint(p))
	w.U8(uint8(p.Kind()))
	p.encode(w)
	return w.Bytes()
}

// writerPool recycles Writer headers for MarshalAppend: the Writer
// escapes through the Payload.encode interface call, and pooling it keeps
// the in-place encode path allocation-free.
var writerPool = sync.Pool{New: func() any { return new(Writer) }}

// MarshalAppend encodes a message onto the end of buf, kind byte first,
// and returns the extended slice. Handed a buffer with enough spare
// capacity (EncodedSizeHint bytes), it allocates nothing — the zero-copy
// path mnet's SendAppender builds on.
func MarshalAppend(p Payload, buf []byte) []byte {
	w := writerPool.Get().(*Writer)
	w.buf = buf
	w.initCap = cap(buf)
	w.U8(uint8(p.Kind()))
	p.encode(w)
	out := w.buf
	w.buf = nil
	writerPool.Put(w)
	return out
}

// Appender adapts a wire payload to mnet's structural Appender interface
// (EncodedSizeHint / AppendEncode), so senders can have the message
// encoded directly into the outgoing packet buffer instead of through an
// intermediate Marshal allocation.
type Appender struct{ P Payload }

// EncodedSizeHint reports the buffer capacity the encoding expects.
func (a Appender) EncodedSizeHint() int { return EncodedSizeHint(a.P) }

// AppendEncode appends the encoded message to buf and returns it.
func (a Appender) AppendEncode(buf []byte) []byte { return MarshalAppend(a.P, buf) }

// Unmarshal decodes a message produced by Marshal.
func Unmarshal(b []byte) (Payload, error) {
	if len(b) == 0 {
		return nil, ErrTruncated
	}
	k := Kind(b[0])
	p := newPayload(k)
	if p == nil {
		return nil, fmt.Errorf("%w: %d", ErrUnknownKind, uint8(k))
	}
	r := NewReader(b[1:])
	if err := p.decode(r); err != nil {
		return nil, fmt.Errorf("wire: decode %s: %w", k, err)
	}
	return p, nil
}

// newPayload returns a zero value of the message type for k, or nil.
func newPayload(k Kind) Payload {
	switch k {
	case KindAcquireLock:
		return &AcquireLock{}
	case KindGrant:
		return &Grant{}
	case KindReleaseLock:
		return &ReleaseLock{}
	case KindTransferReplica:
		return &TransferReplica{}
	case KindRegisterReplica:
		return &RegisterReplica{}
	case KindReplicaData:
		return &ReplicaData{}
	case KindPushUpdate:
		return &PushUpdate{}
	case KindPushAck:
		return &PushAck{}
	case KindPollVersion:
		return &PollVersion{}
	case KindPollVersionReply:
		return &PollVersionReply{}
	case KindHeartbeat:
		return &Heartbeat{}
	case KindHeartbeatAck:
		return &HeartbeatAck{}
	case KindLockNack:
		return &LockNack{}
	case KindSyncMoved:
		return &SyncMoved{}
	case KindOpenStreamRequest:
		return &OpenStreamRequest{}
	case KindOpenStreamReply:
		return &OpenStreamReply{}
	case KindSpawn:
		return &Spawn{}
	case KindSpawnAck:
		return &SpawnAck{}
	case KindTaskResult:
		return &TaskResult{}
	case KindCodeRequest:
		return &CodeRequest{}
	case KindCodeReply:
		return &CodeReply{}
	case KindPrint:
		return &Print{}
	case KindStackDump:
		return &StackDump{}
	case KindEvent:
		return &Event{}
	case KindJoin:
		return &Join{}
	case KindJoinAck:
		return &JoinAck{}
	case KindReplicaDelta:
		return &ReplicaDelta{}
	case KindDeltaNack:
		return &DeltaNack{}
	case KindRelayPush:
		return &RelayPush{}
	case KindRelayAck:
		return &RelayAck{}
	case KindHomeHint:
		return &HomeHint{}
	case KindHandoffRecord:
		return &HandoffRecord{}
	case KindHandoffAck:
		return &HandoffAck{}
	case KindStandbyUpdate:
		return &StandbyUpdate{}
	case KindHomeMoved:
		return &HomeMoved{}
	case KindWALRecord:
		return &WALRecord{}
	default:
		return nil
	}
}
