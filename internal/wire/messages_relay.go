package wire

// This file defines the dissemination relay-tree messages. At release time
// a holder with many wide-area sharers no longer pushes one PushUpdate per
// site: the locality overlay (internal/overlay) buckets sharers by
// measured RTT, and the releaser sends one RelayPush per bucket to an
// elected relay. The relay applies the version itself, re-fans ordinary
// PushUpdates to the bucket's remaining members over its (local, cheap)
// links, and answers with one RelayAck aggregating every member that
// confirmed application — so the releaser's uplink carries O(regions)
// frames per release instead of O(sharers).

// RelayPush asks a bucket relay to apply a new replica version and re-fan
// it to Targets on the origin's behalf. Targets is the full bucket
// membership (the relay excludes itself and the origin when re-fanning, so
// a stale plan cannot make it push back upstream).
type RelayPush struct {
	Lock     LockID
	Origin   SiteID
	Version  uint64
	Replicas []ReplicaPayload
	Targets  SiteSet
}

// Kind implements Payload.
func (*RelayPush) Kind() Kind { return KindRelayPush }

func (m *RelayPush) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U32(uint32(m.Origin))
	w.U64(m.Version)
	encodePayloads(w, m.Replicas)
	m.Targets.encode(w)
}

func (m *RelayPush) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.Origin = SiteID(r.U32())
	m.Version = r.U64()
	m.Replicas = decodePayloads(r)
	m.Targets = decodeSiteSet(r)
	return r.Err()
}

func (m *RelayPush) encodedSize() int {
	return 4 + 4 + 8 + payloadsSize(m.Replicas) + m.Targets.encodedSize()
}

// RelayAck is the relay's aggregated answer to a RelayPush: Acked is the
// set of sites — the relay itself plus every re-fanned member whose
// PushAck arrived — that confirmed application of Version. The origin
// counts Acked into the up-to-date set and direct-pushes any member the
// relay could not reach.
type RelayAck struct {
	Lock    LockID
	Relay   SiteID
	Version uint64
	Acked   SiteSet
}

// Kind implements Payload.
func (*RelayAck) Kind() Kind { return KindRelayAck }

func (m *RelayAck) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U32(uint32(m.Relay))
	w.U64(m.Version)
	m.Acked.encode(w)
}

func (m *RelayAck) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.Relay = SiteID(r.U32())
	m.Version = r.U64()
	m.Acked = decodeSiteSet(r)
	return r.Err()
}
