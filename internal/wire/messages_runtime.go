package wire

import "mocha/internal/obs"

// This file defines the wide-area runtime messages: remote spawning with
// code shipping (the paper's remote-evaluation support, "an initial push of
// application code followed by demand pulling of new application code
// object classes"), travel-bag traffic (results, remote printing, stack
// dumps), event logging, and site-manager membership.

// Spawn asks a remote Mocha server to instantiate and run a task. It
// carries the initial push of the class image plus the marshaled Parameter
// object from the spawning thread.
type Spawn struct {
	// SpawnID is unique per spawning site and correlates SpawnAck,
	// TaskResult and travel-bag traffic.
	SpawnID uint64
	// Home is the site the task reports back to.
	Home SiteID
	// ClassName names the task class to instantiate.
	ClassName string
	// ClassImage is the pushed code for ClassName (see
	// runtime.CodeRepository for what an "image" is in this port).
	ClassImage []byte
	// Params is the marshaled Parameter object.
	Params []byte
}

// Kind implements Payload.
func (*Spawn) Kind() Kind { return KindSpawn }

func (m *Spawn) encode(w *Writer) {
	w.U64(m.SpawnID)
	w.U32(uint32(m.Home))
	w.String16(m.ClassName)
	w.Bytes32(m.ClassImage)
	w.Bytes32(m.Params)
}

func (m *Spawn) decode(r *Reader) error {
	m.SpawnID = r.U64()
	m.Home = SiteID(r.U32())
	m.ClassName = r.String16()
	m.ClassImage = r.Bytes32()
	m.Params = r.Bytes32()
	return r.Err()
}

// SpawnAck reports whether the server accepted, linked, and started the
// task.
type SpawnAck struct {
	SpawnID uint64
	Site    SiteID
	OK      bool
	Err     string
}

// Kind implements Payload.
func (*SpawnAck) Kind() Kind { return KindSpawnAck }

func (m *SpawnAck) encode(w *Writer) {
	w.U64(m.SpawnID)
	w.U32(uint32(m.Site))
	w.Bool(m.OK)
	w.String16(m.Err)
}

func (m *SpawnAck) decode(r *Reader) error {
	m.SpawnID = r.U64()
	m.Site = SiteID(r.U32())
	m.OK = r.Bool()
	m.Err = r.String16()
	return r.Err()
}

// TaskResult returns a finished task's marshaled Result object (or its
// terminal error) to the home site, fulfilling mocha.returnResults().
type TaskResult struct {
	SpawnID uint64
	Site    SiteID
	Result  []byte
	Err     string
}

// Kind implements Payload.
func (*TaskResult) Kind() Kind { return KindTaskResult }

func (m *TaskResult) encode(w *Writer) {
	w.U64(m.SpawnID)
	w.U32(uint32(m.Site))
	w.Bytes32(m.Result)
	w.String16(m.Err)
}

func (m *TaskResult) decode(r *Reader) error {
	m.SpawnID = r.U64()
	m.Site = SiteID(r.U32())
	m.Result = r.Bytes32()
	m.Err = r.String16()
	return r.Err()
}

// CodeRequest demand-pulls a class image the running task needs but the
// local server has not cached.
type CodeRequest struct {
	SpawnID   uint64
	Site      SiteID
	ClassName string
}

// Kind implements Payload.
func (*CodeRequest) Kind() Kind { return KindCodeRequest }

func (m *CodeRequest) encode(w *Writer) {
	w.U64(m.SpawnID)
	w.U32(uint32(m.Site))
	w.String16(m.ClassName)
}

func (m *CodeRequest) decode(r *Reader) error {
	m.SpawnID = r.U64()
	m.Site = SiteID(r.U32())
	m.ClassName = r.String16()
	return r.Err()
}

// CodeReply answers a CodeRequest from the home site's code repository.
type CodeReply struct {
	SpawnID   uint64
	ClassName string
	Found     bool
	Image     []byte
}

// Kind implements Payload.
func (*CodeReply) Kind() Kind { return KindCodeReply }

func (m *CodeReply) encode(w *Writer) {
	w.U64(m.SpawnID)
	w.String16(m.ClassName)
	w.Bool(m.Found)
	w.Bytes32(m.Image)
}

func (m *CodeReply) decode(r *Reader) error {
	m.SpawnID = r.U64()
	m.ClassName = r.String16()
	m.Found = r.Bool()
	m.Image = r.Bytes32()
	return r.Err()
}

// Print routes a task's mochaPrintln output to the home site's console.
type Print struct {
	SpawnID uint64
	Site    SiteID
	Text    string
}

// Kind implements Payload.
func (*Print) Kind() Kind { return KindPrint }

func (m *Print) encode(w *Writer) {
	w.U64(m.SpawnID)
	w.U32(uint32(m.Site))
	w.String16(m.Text)
}

func (m *Print) decode(r *Reader) error {
	m.SpawnID = r.U64()
	m.Site = SiteID(r.U32())
	m.Text = r.String16()
	return r.Err()
}

// StackDump routes a task's mochaPrintStackTrace output home, giving the
// application developer insight into failures at remote locations.
type StackDump struct {
	SpawnID uint64
	Site    SiteID
	Reason  string
	Stack   []byte
}

// Kind implements Payload.
func (*StackDump) Kind() Kind { return KindStackDump }

func (m *StackDump) encode(w *Writer) {
	w.U64(m.SpawnID)
	w.U32(uint32(m.Site))
	w.String16(m.Reason)
	w.Bytes32(m.Stack)
}

func (m *StackDump) decode(r *Reader) error {
	m.SpawnID = r.U64()
	m.Site = SiteID(r.U32())
	m.Reason = r.String16()
	m.Stack = r.Bytes32()
	return r.Err()
}

// Event ships one structured event-log record to the home site's
// collector (the paper's "basic debugging and event logging facilities").
type Event struct {
	Site SiteID
	Seq  uint64
	// UnixNanos is the site-local wall-clock timestamp.
	UnixNanos int64
	Category  string
	// Text is a legacy pre-rendered message ("" for typed events).
	Text string
	// Msg and Fields ship a typed event's structure, so the collector
	// re-emits it into its own typed stream instead of flattening to
	// text at the sending site.
	Msg    string
	Fields []obs.Field
}

// Kind implements Payload.
func (*Event) Kind() Kind { return KindEvent }

func (m *Event) encode(w *Writer) {
	w.U32(uint32(m.Site))
	w.U64(m.Seq)
	w.U64(uint64(m.UnixNanos))
	w.String16(m.Category)
	w.String16(m.Text)
	w.String16(m.Msg)
	w.U16(uint16(len(m.Fields)))
	for _, f := range m.Fields {
		w.String16(f.Key)
		w.Bool(f.IsInt)
		if f.IsInt {
			w.U64(uint64(f.Int))
		} else {
			w.String16(f.Str)
		}
	}
}

func (m *Event) decode(r *Reader) error {
	m.Site = SiteID(r.U32())
	m.Seq = r.U64()
	m.UnixNanos = int64(r.U64())
	m.Category = r.String16()
	m.Text = r.String16()
	m.Msg = r.String16()
	if n := int(r.U16()); n > 0 && r.Err() == nil {
		m.Fields = make([]obs.Field, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			f := obs.Field{Key: r.String16(), IsInt: r.Bool()}
			if f.IsInt {
				f.Int = int64(r.U64())
			} else {
				f.Str = r.String16()
			}
			m.Fields = append(m.Fields, f)
		}
	}
	return r.Err()
}

// Join registers a site manager with the home site, announcing the
// address of its daemon endpoint.
type Join struct {
	Site SiteID
	Name string
	// DaemonAddr is the MNet address of the site's daemon thread.
	DaemonAddr string
}

// Kind implements Payload.
func (*Join) Kind() Kind { return KindJoin }

func (m *Join) encode(w *Writer) {
	w.U32(uint32(m.Site))
	w.String16(m.Name)
	w.String16(m.DaemonAddr)
}

func (m *Join) decode(r *Reader) error {
	m.Site = SiteID(r.U32())
	m.Name = r.String16()
	m.DaemonAddr = r.String16()
	return r.Err()
}

// JoinAck confirms membership and tells the joiner where the
// synchronization thread lives.
type JoinAck struct {
	Site     SiteID
	OK       bool
	Err      string
	SyncAddr string
	Epoch    uint32
}

// Kind implements Payload.
func (*JoinAck) Kind() Kind { return KindJoinAck }

func (m *JoinAck) encode(w *Writer) {
	w.U32(uint32(m.Site))
	w.Bool(m.OK)
	w.String16(m.Err)
	w.String16(m.SyncAddr)
	w.U32(m.Epoch)
}

func (m *JoinAck) decode(r *Reader) error {
	m.Site = SiteID(r.U32())
	m.OK = r.Bool()
	m.Err = r.String16()
	m.SyncAddr = r.String16()
	m.Epoch = r.U32()
	return r.Err()
}
