package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer appends big-endian fields to a growing buffer. It never fails:
// encoding is total for every value the message structs can hold, except
// for strings and byte slices longer than 4 GiB, which panic (a programming
// error, not a runtime condition).
type Writer struct {
	buf     []byte
	initCap int
}

// NewWriter returns a Writer with the given initial capacity hint.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity), initCap: capacity}
}

// Bytes returns the encoded buffer. The Writer must not be reused after.
func (w *Writer) Bytes() []byte { return w.buf }

// Len reports the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Regrew reports whether appends outgrew the initial capacity hint,
// forcing at least one reallocation.
func (w *Writer) Regrew() bool { return cap(w.buf) > w.initCap }

// U8 appends a byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.U8(1)
	} else {
		w.U8(0)
	}
}

// U16 appends a big-endian uint16.
func (w *Writer) U16(v uint16) {
	w.buf = binary.BigEndian.AppendUint16(w.buf, v)
}

// U32 appends a big-endian uint32.
func (w *Writer) U32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// U64 appends a big-endian uint64.
func (w *Writer) U64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// F64 appends a float64 as its IEEE-754 bits.
func (w *Writer) F64(v float64) { w.U64(math.Float64bits(v)) }

// Bytes32 appends a uint32 length prefix followed by the bytes.
func (w *Writer) Bytes32(b []byte) {
	if uint64(len(b)) > math.MaxUint32 {
		panic(fmt.Sprintf("wire: byte field too large: %d", len(b)))
	}
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// String16 appends a uint16 length prefix followed by the string bytes.
// Names on the wire (replica names, class names, hosts) are short.
func (w *Writer) String16(s string) {
	if len(s) > math.MaxUint16 {
		panic(fmt.Sprintf("wire: string field too large: %d", len(s)))
	}
	w.U16(uint16(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader consumes big-endian fields from a buffer. The first decoding error
// sticks: subsequent reads return zero values, and Err reports the failure.
// This lets message decode methods read all fields unconditionally and
// check the error once, per the style guide's handle-errors-once rule.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader does not copy b.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the first error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads a byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a one-byte bool.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// U16 reads a big-endian uint16.
func (r *Reader) U16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

// U32 reads a big-endian uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// U64 reads a big-endian uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// F64 reads an IEEE-754 float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bytes32 reads a uint32-length-prefixed byte slice. The returned slice is
// a copy, so callers may retain it after the underlying buffer is reused.
func (r *Reader) Bytes32() []byte {
	n := r.U32()
	b := r.take(int(n))
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

// String16 reads a uint16-length-prefixed string.
func (r *Reader) String16() string {
	n := r.U16()
	b := r.take(int(n))
	if b == nil {
		return ""
	}
	return string(b)
}
