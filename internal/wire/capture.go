package wire

import (
	"fmt"
	"hash/crc32"
	"sort"
)

// This file defines the history-capture types shared by the core protocol
// hooks and the offline entry-consistency checker (internal/check). They
// live in wire — the bottom layer — so that core can record events and
// check can replay them without either importing the other.

// HistoryKind classifies one recorded protocol event.
type HistoryKind uint8

// History event kinds. Sync-side events (acquire, grant, release, register,
// break, ban, recover) are recorded under the per-lock record mutex at the
// home site, so their relative order is the order the state machine applied
// them in. Node-side events (publish, observe, apply, transfer) are
// recorded under the site's per-lock state mutex.
const (
	HistInvalid HistoryKind = iota
	// HistAcquire: an ACQUIRELOCK was queued at the synchronization thread.
	HistAcquire
	// HistGrant: a GRANT was issued (Version, Flag, Shared, Revised,
	// Sites = the grant's up-to-date set).
	HistGrant
	// HistGrantDropped: an undeliverable grant's hold was rescinded.
	HistGrantDropped
	// HistNack: an acquire was refused (Note carries the reason).
	HistNack
	// HistRelease: a RELEASELOCK was applied (Version = new version,
	// Sites = the up-to-date set the synchronization thread installed).
	HistRelease
	// HistRegister: a creator registration seeded the lock at version 1.
	HistRegister
	// HistApply: a site installed transferred/pushed payloads as Version.
	HistApply
	// HistPublish: a releaser (or creator) produced the bytes of Version.
	HistPublish
	// HistObserve: a thread holding the lock observed its local replica
	// state (Version = local version, AuxVersion = grant version).
	HistObserve
	// HistTransferSend: a daemon shipped replica data (Note: transfer,
	// delta, push or push-delta; Sites = destination).
	HistTransferSend
	// HistBreak: the synchronization thread broke an expired hold.
	HistBreak
	// HistBan: a thread was banned after a detected failure.
	HistBan
	// HistRecover: daemon polling rewrote the committed version/up-to-date
	// set (Version = surviving version, Site = surviving site; Note
	// distinguishes a poll verdict from the weakened local fallback).
	HistRecover
	// HistCrash: the harness fail-stopped a site.
	HistCrash
	// HistFault: a registered fault point fired (Note = point name).
	HistFault
	// HistRelay: a bucket relay re-fanned a pushed version on an origin's
	// behalf (Sites = the bucket members it pushed to). Context only — the
	// members' own HistApply events carry the version-discipline claims.
	HistRelay
	// HistHome: a site became (or confirmed itself as) a lock's manager —
	// on registration, a migration install, or a standby promotion. Site
	// is the manager site, AuxVersion its home epoch, Note how it got the
	// lock ("register", "handoff-install", "standby-promote"). The checker
	// uses the chain of these to enforce single-home-per-lock.
	HistHome
	// HistHandoff: an old home shipped a lock's record away (Site = the
	// old home, Sites = {new home}, AuxVersion = epoch). Context for the
	// home chain: the next HistHome for the lock must name the site this
	// event shipped to, unless a crash intervened.
	HistHandoff
)

var histKindNames = map[HistoryKind]string{
	HistAcquire:      "ACQUIRE",
	HistGrant:        "GRANT",
	HistGrantDropped: "GRANT-DROPPED",
	HistNack:         "NACK",
	HistRelease:      "RELEASE",
	HistRegister:     "REGISTER",
	HistApply:        "APPLY",
	HistPublish:      "PUBLISH",
	HistObserve:      "OBSERVE",
	HistTransferSend: "TRANSFER-SEND",
	HistBreak:        "BREAK",
	HistBan:          "BAN",
	HistRecover:      "RECOVER",
	HistCrash:        "CRASH",
	HistFault:        "FAULT",
	HistRelay:        "RELAY",
	HistHome:         "HOME",
	HistHandoff:      "HANDOFF",
}

// String names the event kind.
func (k HistoryKind) String() string {
	if s, ok := histKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("HistoryKind(%d)", uint8(k))
}

// ReplicaDigest is a checksum of one replica's marshaled bytes, letting the
// checker byte-compare replica states across sites without retaining the
// payloads themselves.
type ReplicaDigest struct {
	Name string
	Sum  uint32
}

// HistoryEvent is one recorded protocol event. Seq and Tick are assigned by
// the recorder: Seq is the record order (the history's total order), Tick a
// reading of the shared netsim clock.
type HistoryEvent struct {
	Seq  uint64
	Tick uint64
	Kind HistoryKind

	Site   SiteID
	Thread ThreadID
	Lock   LockID

	// Version is the event's primary version (grant version, release's new
	// version, applied version, ...). AuxVersion carries a secondary one:
	// the grant version for HistObserve, the destination's version for
	// HistTransferSend, the fencing token for HistGrant.
	Version    uint64
	AuxVersion uint64

	Flag    VersionFlag
	Shared  bool
	Aborted bool
	Revised bool

	// Sites carries the event's site-set claim: the up-to-date set for
	// grants and releases, the destination for transfer sends.
	Sites SiteSet

	// Digests checksums the replica bytes the event produced or observed.
	Digests []ReplicaDigest

	// Note carries the fault-point name, nack reason, transfer encoding, or
	// recovery verdict.
	Note string
}

// String renders the event compactly for violation reports.
func (e HistoryEvent) String() string {
	s := fmt.Sprintf("#%d %s lock=%d site=%d", e.Seq, e.Kind, e.Lock, e.Site)
	if e.Thread != 0 {
		s += fmt.Sprintf(" thread=%d", e.Thread)
	}
	s += fmt.Sprintf(" v%d", e.Version)
	if e.AuxVersion != 0 {
		s += fmt.Sprintf(" (aux v%d)", e.AuxVersion)
	}
	if e.Flag != 0 {
		s += " " + e.Flag.String()
	}
	if e.Shared {
		s += " shared"
	}
	if e.Aborted {
		s += " aborted"
	}
	if e.Revised {
		s += " revised"
	}
	if e.Sites.Len() > 0 {
		s += " sites=" + e.Sites.String()
	}
	if e.Note != "" {
		s += " [" + e.Note + "]"
	}
	return s
}

// DigestBytes checksums one marshaled replica blob.
func DigestBytes(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// DigestPayloads checksums a payload set, sorted by name so digests from
// different sites compare positionally.
func DigestPayloads(ps []ReplicaPayload) []ReplicaDigest {
	out := make([]ReplicaDigest, 0, len(ps))
	for _, p := range ps {
		out = append(out, ReplicaDigest{Name: p.Name, Sum: DigestBytes(p.Data)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
