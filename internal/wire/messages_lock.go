package wire

// This file defines the lock-protocol and replica-transfer messages from
// the paper's Figures 5-7, plus the fault-tolerance refinements of
// Section 4 (push updates, version polling, heartbeats, lock nacks, and
// synchronization-thread migration).

// AcquireLock is the REQUEST message an application thread sends to the
// synchronization thread when it calls ReplicaLock.lock().
type AcquireLock struct {
	Lock      LockID
	Requester SiteID
	Thread    ThreadID
	// Shared requests a read-only (shared) lock, the extension the paper
	// notes the basic exclusive algorithm "can easily be modified" to
	// support.
	Shared bool
	// LeaseMillis is the thread's declared estimate of how long it will
	// hold the lock, used by the synchronization thread's lock-breaking
	// failure detector (Section 4). Zero means the cluster default.
	LeaseMillis uint32
	// HaveVersion advertises the replica version the requesting site
	// already holds, so the transferring daemon can decide between a delta
	// and a full replica transfer. Zero means no usable local copy.
	HaveVersion uint64
}

// Kind implements Payload.
func (*AcquireLock) Kind() Kind { return KindAcquireLock }

func (m *AcquireLock) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U32(uint32(m.Requester))
	w.U64(uint64(m.Thread))
	w.Bool(m.Shared)
	w.U32(m.LeaseMillis)
	w.U64(m.HaveVersion)
}

func (m *AcquireLock) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.Requester = SiteID(r.U32())
	m.Thread = ThreadID(r.U64())
	m.Shared = r.Bool()
	m.LeaseMillis = r.U32()
	m.HaveVersion = r.U64()
	return r.Err()
}

// Grant is the synchronization thread's response awarding the lock. It
// carries the new version number of the associated replicas and the flag
// telling the acquirer whether fresh replica data is on its way.
type Grant struct {
	Lock    LockID
	Thread  ThreadID
	Version uint64
	Flag    VersionFlag
	// Shared reports whether the grant is for a read-only lock.
	Shared bool
	// Epoch identifies the synchronization-thread incarnation that issued
	// the grant; it changes when a surrogate takes over (Section 4).
	Epoch uint32
	// Sharers is the set of sites whose daemons are registered for this
	// lock's replicas; the holder picks push-update targets from it when
	// UR > 1.
	Sharers SiteSet
	// UpToDate is the set of sites the synchronization thread believes
	// hold the granted version; the releaser uses it to decide which
	// dissemination targets can accept a delta against that version.
	UpToDate SiteSet
	// Revised marks a follow-up grant that supersedes an earlier one for
	// the same acquisition — sent when failure handling discovered that
	// the promised version is lost and an older version must be accepted
	// (the paper's "most recently available old version").
	Revised bool
	// VersionFloor is the highest version number the synchronization
	// thread has ever committed for this lock. After Section 4 recovery
	// weakens the lock to an older surviving copy, Version drops below
	// this mark; an exclusive releaser must still publish strictly above
	// it so a version number is never reused for different bytes.
	VersionFloor uint64
	// Fence is the monotonic fencing token minted by the lock's home for
	// this hold. Tokens strictly increase per lock across grants, home
	// handoffs and standby promotions (the record carries the counter), so
	// downstream systems can reject writes stamped with the token of a
	// lease-broken ex-holder. A revised grant re-carries the hold's
	// original token. The field is unconditionally on the wire — adding
	// it changed the Grant format — and a minted token is never zero.
	Fence uint64
}

// Kind implements Payload.
func (*Grant) Kind() Kind { return KindGrant }

func (m *Grant) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U64(uint64(m.Thread))
	w.U64(m.Version)
	w.U8(uint8(m.Flag))
	w.Bool(m.Shared)
	w.U32(m.Epoch)
	m.Sharers.encode(w)
	m.UpToDate.encode(w)
	w.Bool(m.Revised)
	w.U64(m.VersionFloor)
	w.U64(m.Fence)
}

func (m *Grant) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.Thread = ThreadID(r.U64())
	m.Version = r.U64()
	m.Flag = VersionFlag(r.U8())
	m.Shared = r.Bool()
	m.Epoch = r.U32()
	m.Sharers = decodeSiteSet(r)
	m.UpToDate = decodeSiteSet(r)
	m.Revised = r.Bool()
	m.VersionFloor = r.U64()
	m.Fence = r.U64()
	return r.Err()
}

// NackCode classifies why an AcquireLock was refused, so the requester can
// map the refusal to the right error.
type NackCode uint8

const (
	// NackBanned: the requesting thread was banned after a detected
	// failure.
	NackBanned NackCode = 0
	// NackUnknownLock: the lock ID has never been registered by any
	// daemon; the synchronization thread refuses to fabricate a record
	// for it.
	NackUnknownLock NackCode = 1
	// NackNotHome: this site is not (or is no longer) the lock's home;
	// Home/HomeEpoch name the manager the requester should retry against.
	// Sent by an old home after a migration handed the lock away, and by
	// ring members that receive traffic routed with a stale placement
	// view.
	NackNotHome NackCode = 2
)

// LockNack refuses an AcquireLock, e.g. because the requesting thread was
// banned after a detected failure ("an application thread that fails in
// this manner is prevented from making future requests", Section 4), or
// because the named lock was never registered.
type LockNack struct {
	Lock   LockID
	Thread ThreadID
	Code   NackCode
	Reason string
	// Home and HomeEpoch accompany NackNotHome: the manager site the
	// requester should retry against, and that home's epoch so stale
	// redirects lose races (zero otherwise).
	Home      SiteID
	HomeEpoch uint32
}

// Kind implements Payload.
func (*LockNack) Kind() Kind { return KindLockNack }

func (m *LockNack) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U64(uint64(m.Thread))
	w.U8(uint8(m.Code))
	w.String16(m.Reason)
	w.U32(uint32(m.Home))
	w.U32(m.HomeEpoch)
}

func (m *LockNack) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.Thread = ThreadID(r.U64())
	m.Code = NackCode(r.U8())
	m.Reason = r.String16()
	m.Home = SiteID(r.U32())
	m.HomeEpoch = r.U32()
	return r.Err()
}

// ReleaseLock is sent by ReplicaLock.unlock(). With the fault-tolerance
// refinements it also carries the set of daemons that now hold an
// up-to-date copy, because the releasing thread may have pushed its new
// version to several sites (UR dissemination).
type ReleaseLock struct {
	Lock       LockID
	Releaser   SiteID
	Thread     ThreadID
	NewVersion uint64
	// UpToDate is the bit vector of daemon sites holding NewVersion,
	// including the releaser itself.
	UpToDate SiteSet
	// Shared reports that a read-only hold is being released.
	Shared bool
	// Aborted reports that the holder never observed the granted version
	// (it gave up waiting for the transfer); the synchronization thread
	// keeps its version and last-owner bookkeeping unchanged.
	Aborted bool
	// Fence echoes the fencing token the matching Grant carried, so
	// downstream consumers of the release can correlate the commit with
	// the hold's token. Like Grant.Fence, the field is unconditionally on
	// the wire.
	Fence uint64
}

// Kind implements Payload.
func (*ReleaseLock) Kind() Kind { return KindReleaseLock }

func (m *ReleaseLock) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U32(uint32(m.Releaser))
	w.U64(uint64(m.Thread))
	w.U64(m.NewVersion)
	m.UpToDate.encode(w)
	w.Bool(m.Shared)
	w.Bool(m.Aborted)
	w.U64(m.Fence)
}

func (m *ReleaseLock) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.Releaser = SiteID(r.U32())
	m.Thread = ThreadID(r.U64())
	m.NewVersion = r.U64()
	m.UpToDate = decodeSiteSet(r)
	m.Shared = r.Bool()
	m.Aborted = r.Bool()
	m.Fence = r.U64()
	return r.Err()
}

// TransferReplica is the synchronization thread's directive to the daemon
// holding the most recent replicas: send your copy for this lock to the
// destination site. Replica data itself flows daemon-to-daemon (never
// through the synchronization thread), so the directive carries everything
// the sending daemon needs to reach the destination.
type TransferReplica struct {
	Lock LockID
	// Dest is the site whose daemon should receive the replicas.
	Dest SiteID
	// Version is the replica version being requested, used by the
	// destination to match arriving data to the grant it received.
	Version uint64
	// RequestID correlates the directive, any hybrid stream setup, and the
	// final ReplicaData.
	RequestID uint64
	// DestVersion is the replica version the destination advertised in its
	// AcquireLock, letting the sending daemon ship a delta when its update
	// log still covers DestVersion..Version. Zero means no usable copy, so
	// the sender must transfer the full replicas.
	DestVersion uint64
}

// Kind implements Payload.
func (*TransferReplica) Kind() Kind { return KindTransferReplica }

func (m *TransferReplica) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U32(uint32(m.Dest))
	w.U64(m.Version)
	w.U64(m.RequestID)
	w.U64(m.DestVersion)
}

func (m *TransferReplica) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.Dest = SiteID(r.U32())
	m.Version = r.U64()
	m.RequestID = r.U64()
	m.DestVersion = r.U64()
	return r.Err()
}

// RegisterReplica announces to the synchronization thread that a site's
// daemon now manages replicas for a lock ("All objects that the
// application threads wish to share are registered with the local daemon
// thread"). The home site uses registrations to know which daemons can
// accept push updates and answer version polls.
type RegisterReplica struct {
	Lock LockID
	Site SiteID
	// Names lists the replica names associated with the lock at this site.
	Names []string
	// Creator marks the registration that created the shared object (the
	// constructor with initial data), which seeds version 1.
	Creator bool
}

// Kind implements Payload.
func (*RegisterReplica) Kind() Kind { return KindRegisterReplica }

func (m *RegisterReplica) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U32(uint32(m.Site))
	w.U16(uint16(len(m.Names)))
	for _, n := range m.Names {
		w.String16(n)
	}
	w.Bool(m.Creator)
}

func (m *RegisterReplica) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.Site = SiteID(r.U32())
	n := int(r.U16())
	m.Names = make([]string, 0, n)
	for i := 0; i < n; i++ {
		m.Names = append(m.Names, r.String16())
	}
	m.Creator = r.Bool()
	return r.Err()
}

// ReplicaPayload is one replica's marshaled state inside a ReplicaData or
// PushUpdate message.
type ReplicaPayload struct {
	Name string
	Data []byte
}

func encodePayloads(w *Writer, ps []ReplicaPayload) {
	w.U16(uint16(len(ps)))
	for _, p := range ps {
		w.String16(p.Name)
		w.Bytes32(p.Data)
	}
}

func decodePayloads(r *Reader) []ReplicaPayload {
	n := int(r.U16())
	out := make([]ReplicaPayload, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ReplicaPayload{Name: r.String16(), Data: r.Bytes32()})
	}
	return out
}

// ReplicaData carries the marshaled replicas associated with a lock from
// one daemon to another, either in response to a TransferReplica directive
// or over the hybrid protocol's stream.
type ReplicaData struct {
	Lock      LockID
	From      SiteID
	Version   uint64
	RequestID uint64
	Replicas  []ReplicaPayload
}

// Kind implements Payload.
func (*ReplicaData) Kind() Kind { return KindReplicaData }

func (m *ReplicaData) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U32(uint32(m.From))
	w.U64(m.Version)
	w.U64(m.RequestID)
	encodePayloads(w, m.Replicas)
}

func (m *ReplicaData) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.From = SiteID(r.U32())
	m.Version = r.U64()
	m.RequestID = r.U64()
	m.Replicas = decodePayloads(r)
	return r.Err()
}

func (m *ReplicaData) encodedSize() int {
	return 4 + 4 + 8 + 8 + payloadsSize(m.Replicas)
}

func payloadsSize(ps []ReplicaPayload) int {
	n := 2
	for _, p := range ps {
		n += 2 + len(p.Name) + 4 + len(p.Data)
	}
	return n
}

// PushUpdate disseminates a new replica version to a registered daemon at
// unlock time (the push-based update scheme of Section 4). The receiving
// daemon applies the update directly to its local replicas.
type PushUpdate struct {
	Lock     LockID
	From     SiteID
	Version  uint64
	Replicas []ReplicaPayload
}

// Kind implements Payload.
func (*PushUpdate) Kind() Kind { return KindPushUpdate }

func (m *PushUpdate) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U32(uint32(m.From))
	w.U64(m.Version)
	encodePayloads(w, m.Replicas)
}

func (m *PushUpdate) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.From = SiteID(r.U32())
	m.Version = r.U64()
	m.Replicas = decodePayloads(r)
	return r.Err()
}

func (m *PushUpdate) encodedSize() int {
	return 4 + 4 + 8 + payloadsSize(m.Replicas)
}

// PatchOp overwrites the bytes at Off in a replica's marshaled state with
// Data. Offsets are in the coordinates of the new (patched) blob.
type PatchOp struct {
	Off  uint32
	Data []byte
}

// DeltaPayload is one replica's update inside a ReplicaDelta: either a
// patch (NewLen, Ops, Checksum over the patched blob) against the blob the
// receiver holds at FromVersion, or — when Full is set — a complete
// marshaled copy, the per-replica fallback for replicas whose delta would
// not pay off (rewritten, resized mid-chain, or newly associated).
type DeltaPayload struct {
	Name string
	Full bool
	// Data is the complete marshaled state when Full is set.
	Data []byte
	// NewLen is the patched blob's length when Full is not set.
	NewLen uint32
	// Checksum is an IEEE CRC-32 over the patched blob; a mismatch after
	// applying Ops means the receiver's base diverged and it must request
	// a full transfer.
	Checksum uint32
	Ops      []PatchOp
}

func (p *DeltaPayload) encode(w *Writer) {
	w.String16(p.Name)
	w.Bool(p.Full)
	if p.Full {
		w.Bytes32(p.Data)
		return
	}
	w.U32(p.NewLen)
	w.U32(p.Checksum)
	w.U16(uint16(len(p.Ops)))
	for _, op := range p.Ops {
		w.U32(op.Off)
		w.Bytes32(op.Data)
	}
}

func (p *DeltaPayload) decode(r *Reader) {
	p.Name = r.String16()
	p.Full = r.Bool()
	if p.Full {
		p.Data = r.Bytes32()
		return
	}
	p.NewLen = r.U32()
	p.Checksum = r.U32()
	n := int(r.U16())
	p.Ops = make([]PatchOp, 0, n)
	for i := 0; i < n; i++ {
		p.Ops = append(p.Ops, PatchOp{Off: r.U32(), Data: r.Bytes32()})
	}
}

func (p *DeltaPayload) encodedSize() int {
	n := 2 + len(p.Name) + 1
	if p.Full {
		return n + 4 + len(p.Data)
	}
	n += 4 + 4 + 2
	for _, op := range p.Ops {
		n += 4 + 4 + len(op.Data)
	}
	return n
}

// ReplicaDelta is the delta-capable counterpart of ReplicaData (Push=false,
// answering a TransferReplica directive) and PushUpdate (Push=true, UR
// dissemination at release). It upgrades the receiver's replicas from
// FromVersion to Version by patching the marshaled state the receiver
// already holds. A receiver that cannot apply it (wrong base version,
// checksum mismatch) answers with a DeltaNack and the sender falls back to
// a full transfer.
type ReplicaDelta struct {
	Lock        LockID
	From        SiteID
	Version     uint64
	FromVersion uint64
	// RequestID correlates a transfer delta with its directive; zero for
	// pushes.
	RequestID uint64
	Push      bool
	Replicas  []DeltaPayload
}

// Kind implements Payload.
func (*ReplicaDelta) Kind() Kind { return KindReplicaDelta }

func (m *ReplicaDelta) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U32(uint32(m.From))
	w.U64(m.Version)
	w.U64(m.FromVersion)
	w.U64(m.RequestID)
	w.Bool(m.Push)
	w.U16(uint16(len(m.Replicas)))
	for i := range m.Replicas {
		m.Replicas[i].encode(w)
	}
}

func (m *ReplicaDelta) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.From = SiteID(r.U32())
	m.Version = r.U64()
	m.FromVersion = r.U64()
	m.RequestID = r.U64()
	m.Push = r.Bool()
	n := int(r.U16())
	m.Replicas = make([]DeltaPayload, n)
	for i := 0; i < n; i++ {
		m.Replicas[i].decode(r)
	}
	return r.Err()
}

func (m *ReplicaDelta) encodedSize() int {
	n := 4 + 4 + 8 + 8 + 8 + 1 + 2
	for i := range m.Replicas {
		n += m.Replicas[i].encodedSize()
	}
	return n
}

// DeltaNack tells the sender of a ReplicaDelta that the receiver could not
// apply it (stale or missing base version, or a checksum mismatch after
// patching) and needs a full transfer of Version instead.
type DeltaNack struct {
	Lock LockID
	// Site is the receiver that rejected the delta.
	Site      SiteID
	Version   uint64
	RequestID uint64
	Push      bool
	Reason    string
}

// Kind implements Payload.
func (*DeltaNack) Kind() Kind { return KindDeltaNack }

func (m *DeltaNack) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U32(uint32(m.Site))
	w.U64(m.Version)
	w.U64(m.RequestID)
	w.Bool(m.Push)
	w.String16(m.Reason)
}

func (m *DeltaNack) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.Site = SiteID(r.U32())
	m.Version = r.U64()
	m.RequestID = r.U64()
	m.Push = r.Bool()
	m.Reason = r.String16()
	return r.Err()
}

// PushAck confirms application of a PushUpdate so the releasing thread can
// count the site into the up-to-date set (and detect failed daemons by the
// ack timing out).
type PushAck struct {
	Lock    LockID
	Site    SiteID
	Version uint64
}

// Kind implements Payload.
func (*PushAck) Kind() Kind { return KindPushAck }

func (m *PushAck) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U32(uint32(m.Site))
	w.U64(m.Version)
}

func (m *PushAck) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.Site = SiteID(r.U32())
	m.Version = r.U64()
	return r.Err()
}

// PollVersion asks a daemon which version of a lock's replicas it holds.
// The synchronization thread polls after a transfer timeout to locate the
// most recent surviving copy (Section 4).
type PollVersion struct {
	Lock  LockID
	Nonce uint64
}

// Kind implements Payload.
func (*PollVersion) Kind() Kind { return KindPollVersion }

func (m *PollVersion) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U64(m.Nonce)
}

func (m *PollVersion) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.Nonce = r.U64()
	return r.Err()
}

// PollVersionReply reports the replying daemon's local version for the
// lock's replicas. HasData is false when the daemon never received a copy.
type PollVersionReply struct {
	Lock    LockID
	Site    SiteID
	Nonce   uint64
	Version uint64
	HasData bool
}

// Kind implements Payload.
func (*PollVersionReply) Kind() Kind { return KindPollVersionReply }

func (m *PollVersionReply) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U32(uint32(m.Site))
	w.U64(m.Nonce)
	w.U64(m.Version)
	w.Bool(m.HasData)
}

func (m *PollVersionReply) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.Site = SiteID(r.U32())
	m.Nonce = r.U64()
	m.Version = r.U64()
	m.HasData = r.Bool()
	return r.Err()
}

// Heartbeat probes a daemon suspected of having failed, e.g. when a lock
// has been held past its lease (Section 4).
type Heartbeat struct {
	Nonce uint64
}

// Kind implements Payload.
func (*Heartbeat) Kind() Kind { return KindHeartbeat }

func (m *Heartbeat) encode(w *Writer) { w.U64(m.Nonce) }

func (m *Heartbeat) decode(r *Reader) error {
	m.Nonce = r.U64()
	return r.Err()
}

// HeartbeatAck answers a Heartbeat.
type HeartbeatAck struct {
	Nonce uint64
	Site  SiteID
}

// Kind implements Payload.
func (*HeartbeatAck) Kind() Kind { return KindHeartbeatAck }

func (m *HeartbeatAck) encode(w *Writer) {
	w.U64(m.Nonce)
	w.U32(uint32(m.Site))
}

func (m *HeartbeatAck) decode(r *Reader) error {
	m.Nonce = r.U64()
	m.Site = SiteID(r.U32())
	return r.Err()
}

// SyncMoved informs daemons that a surrogate synchronization thread has
// taken over after a home-site failure (the recovery protocol the paper
// sketches in Section 4). Addr is the surrogate's MNet address and Epoch
// its incarnation number; messages from older epochs are ignored.
type SyncMoved struct {
	Addr  string
	Epoch uint32
}

// Kind implements Payload.
func (*SyncMoved) Kind() Kind { return KindSyncMoved }

func (m *SyncMoved) encode(w *Writer) {
	w.String16(m.Addr)
	w.U32(m.Epoch)
}

func (m *SyncMoved) decode(r *Reader) error {
	m.Addr = r.String16()
	m.Epoch = r.U32()
	return r.Err()
}

// OpenStreamRequest asks the destination daemon to accept a bulk replica
// transfer over the hybrid protocol's stream transport. MNet carries this
// control message; the reply propagates the TCP-style listen address
// ("Mocha's network communication is used for establishing a TCP
// connection, i.e., propagating TCP port numbers").
type OpenStreamRequest struct {
	RequestID uint64
	From      SiteID
}

// Kind implements Payload.
func (*OpenStreamRequest) Kind() Kind { return KindOpenStreamRequest }

func (m *OpenStreamRequest) encode(w *Writer) {
	w.U64(m.RequestID)
	w.U32(uint32(m.From))
}

func (m *OpenStreamRequest) decode(r *Reader) error {
	m.RequestID = r.U64()
	m.From = SiteID(r.U32())
	return r.Err()
}

// OpenStreamReply carries the destination's stream listen address back to
// the sender, which then dials it and writes the replica payload.
type OpenStreamReply struct {
	RequestID uint64
	Addr      string
}

// Kind implements Payload.
func (*OpenStreamReply) Kind() Kind { return KindOpenStreamReply }

func (m *OpenStreamReply) encode(w *Writer) {
	w.U64(m.RequestID)
	w.String16(m.Addr)
}

func (m *OpenStreamReply) decode(r *Reader) error {
	m.RequestID = r.U64()
	m.Addr = r.String16()
	return r.Err()
}
