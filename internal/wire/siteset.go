package wire

import (
	"sort"
	"strconv"
	"strings"
)

// SiteSet is the bit vector of site identifiers that the fault-tolerance
// refinements attach to RELEASELOCK messages: the set of daemons that hold
// an up-to-date copy of the replicas after push-based dissemination
// (Section 4). The synchronization thread consults it to decide whether a
// granted thread needs a transfer at all.
type SiteSet struct {
	bits []uint64
}

// NewSiteSet returns a set containing the given sites.
func NewSiteSet(sites ...SiteID) SiteSet {
	var s SiteSet
	for _, id := range sites {
		s.Add(id)
	}
	return s
}

// Add inserts a site into the set.
func (s *SiteSet) Add(id SiteID) {
	word := int(id / 64)
	for len(s.bits) <= word {
		s.bits = append(s.bits, 0)
	}
	s.bits[word] |= 1 << (id % 64)
}

// Remove deletes a site from the set.
func (s *SiteSet) Remove(id SiteID) {
	word := int(id / 64)
	if word < len(s.bits) {
		s.bits[word] &^= 1 << (id % 64)
	}
}

// Contains reports whether the set holds the site.
func (s SiteSet) Contains(id SiteID) bool {
	word := int(id / 64)
	return word < len(s.bits) && s.bits[word]&(1<<(id%64)) != 0
}

// Len reports the number of sites in the set.
func (s SiteSet) Len() int {
	n := 0
	for _, w := range s.bits {
		for ; w != 0; w &= w - 1 {
			n++
		}
	}
	return n
}

// Sites returns the members in ascending order.
func (s SiteSet) Sites() []SiteID {
	out := make([]SiteID, 0, s.Len())
	for wi, w := range s.bits {
		for b := 0; b < 64; b++ {
			if w&(1<<b) != 0 {
				out = append(out, SiteID(wi*64+b))
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Clone returns an independent copy of the set.
func (s SiteSet) Clone() SiteSet {
	bits := make([]uint64, len(s.bits))
	copy(bits, s.bits)
	return SiteSet{bits: bits}
}

// String renders the set as "{1,3,5}".
func (s SiteSet) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range s.Sites() {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(id), 10))
	}
	b.WriteByte('}')
	return b.String()
}

// encode writes the bit vector with a word-count prefix.
func (s SiteSet) encode(w *Writer) {
	// Trim trailing zero words so equal sets encode identically.
	bits := s.bits
	for len(bits) > 0 && bits[len(bits)-1] == 0 {
		bits = bits[:len(bits)-1]
	}
	w.U16(uint16(len(bits)))
	for _, word := range bits {
		w.U64(word)
	}
}

// encodedSize reports the bytes encode writes: the word-count prefix plus
// the trailing-zero-trimmed words (so it matches encode exactly).
func (s SiteSet) encodedSize() int {
	bits := s.bits
	for len(bits) > 0 && bits[len(bits)-1] == 0 {
		bits = bits[:len(bits)-1]
	}
	return 2 + 8*len(bits)
}

// decodeSiteSet reads a bit vector written by encode.
func decodeSiteSet(r *Reader) SiteSet {
	n := int(r.U16())
	bits := make([]uint64, 0, n)
	for i := 0; i < n; i++ {
		bits = append(bits, r.U64())
	}
	return SiteSet{bits: bits}
}
