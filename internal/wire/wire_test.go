package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"mocha/internal/obs"
)

// allMessages returns one populated instance of every message kind, used by
// the exhaustive round-trip test. Keeping the list in one place means a new
// kind that is not added here fails TestEveryKindCovered.
func allMessages() []Payload {
	return []Payload{
		&AcquireLock{Lock: 7, Requester: 3, Thread: MakeThreadID(3, 9), Shared: true, LeaseMillis: 1500, HaveVersion: 41},
		&Grant{Lock: 7, Thread: MakeThreadID(3, 9), Version: 42, Flag: NeedNewVersion, Shared: true, Epoch: 2, Sharers: NewSiteSet(2, 4), UpToDate: NewSiteSet(1, 2), Revised: true, VersionFloor: 45, Fence: 11},
		&ReleaseLock{Lock: 7, Releaser: 3, Thread: MakeThreadID(3, 9), NewVersion: 43, UpToDate: NewSiteSet(1, 3, 5), Shared: false, Aborted: true, Fence: 11},
		&TransferReplica{Lock: 7, Dest: 4, Version: 43, RequestID: 99, DestVersion: 41},
		&RegisterReplica{Lock: 7, Site: 4, Names: []string{"flatwareIndex", "plateIndex"}, Creator: true},
		&ReplicaData{Lock: 7, From: 2, Version: 43, RequestID: 99, Replicas: []ReplicaPayload{{Name: "a", Data: []byte{1, 2, 3}}, {Name: "b", Data: nil}}},
		&PushUpdate{Lock: 7, From: 2, Version: 44, Replicas: []ReplicaPayload{{Name: "text", Data: []byte("Good Choice")}}},
		&PushAck{Lock: 7, Site: 5, Version: 44},
		&PollVersion{Lock: 7, Nonce: 123456},
		&PollVersionReply{Lock: 7, Site: 5, Nonce: 123456, Version: 40, HasData: true},
		&Heartbeat{Nonce: 77},
		&HeartbeatAck{Nonce: 77, Site: 6},
		&LockNack{Lock: 7, Thread: MakeThreadID(6, 1), Code: NackUnknownLock, Reason: "banned after lease expiry"},
		&SyncMoved{Addr: "sim://2/sync", Epoch: 3},
		&OpenStreamRequest{RequestID: 99, From: 2},
		&OpenStreamReply{RequestID: 99, Addr: "127.0.0.1:40404"},
		&Spawn{SpawnID: 5, Home: 1, ClassName: "Myhello", ClassImage: []byte{0xCA, 0xFE}, Params: []byte("start=0")},
		&SpawnAck{SpawnID: 5, Site: 2, OK: false, Err: "no such class"},
		&TaskResult{SpawnID: 5, Site: 2, Result: []byte("returnvalue=1"), Err: ""},
		&CodeRequest{SpawnID: 5, Site: 2, ClassName: "Myhelper"},
		&CodeReply{SpawnID: 5, ClassName: "Myhelper", Found: true, Image: []byte{1}},
		&Print{SpawnID: 5, Site: 2, Text: "Returning as a return value 1"},
		&StackDump{SpawnID: 5, Site: 2, Reason: "MochaParameterException", Stack: []byte("goroutine 1 [running]")},
		&Event{Site: 2, Seq: 10, UnixNanos: 1234567890, Category: "lock", Text: "grant",
			Msg: "granted lock", Fields: []obs.Field{
				{Key: "lock", Int: 7, IsInt: true},
				{Key: "flag", Str: "NeedNewVersion"},
				{Key: "neg", Int: -3, IsInt: true},
			}},
		&Join{Site: 2, Name: "ultra1", DaemonAddr: "sim://2/daemon"},
		&JoinAck{Site: 2, OK: true, SyncAddr: "sim://1/sync", Epoch: 1},
		&ReplicaDelta{Lock: 7, From: 2, Version: 44, FromVersion: 43, RequestID: 99, Push: true, Replicas: []DeltaPayload{
			{Name: "a", NewLen: 9, Checksum: 0xDEADBEEF, Ops: []PatchOp{{Off: 5, Data: []byte{1, 2}}, {Off: 0, Data: []byte{3}}}},
			{Name: "b", Full: true, Data: []byte("whole blob")},
		}},
		&DeltaNack{Lock: 7, Site: 5, Version: 44, RequestID: 99, Push: false, Reason: "base version 41 unavailable"},
		&RelayPush{Lock: 7, Origin: 1, Version: 44, Replicas: []ReplicaPayload{{Name: "a", Data: []byte("payload")}}, Targets: NewSiteSet(3, 4, 70)},
		&RelayAck{Lock: 7, Relay: 3, Version: 44, Acked: NewSiteSet(3, 4)},
		&HomeHint{Lock: 7, Home: 4, Epoch: 6},
		&HandoffRecord{From: 2, Epoch: 5, Record: LockRecord{
			Lock: 7, Version: 44, HighWater: 46, LastOwner: 3,
			UpToDate: NewSiteSet(1, 3), Dirty: NewSiteSet(5), Sharers: NewSiteSet(3, 4),
			Names:     []string{"flatwareIndex", "plateIndex"},
			Fence:     11,
			HasHolder: true,
			Holder:    HeldLease{Thread: MakeThreadID(3, 9), Site: 3, Shared: false, RemainingMillis: 800},
			Readers: []HeldLease{
				{Thread: MakeThreadID(4, 1), Site: 4, Shared: true, RemainingMillis: 500},
				{Thread: MakeThreadID(6, 2), Site: 6, Shared: true, RemainingMillis: 0},
			},
		}},
		&HandoffAck{Lock: 7, To: 4, Epoch: 6, OK: true},
		&StandbyUpdate{From: 2, Epoch: 5, Delete: true, Record: LockRecord{
			Lock: 7, Version: 44, HighWater: 44,
			UpToDate: NewSiteSet(2), Dirty: NewSiteSet(9), Sharers: NewSiteSet(2, 9),
		}},
		&HomeMoved{From: 2, To: 3, Epoch: 7, Locks: []LockID{7, 9, 13}},
		&WALRecord{Op: WALDelta, Lock: 7, FromVersion: 43, Version: 44, Dirty: true, Fence: 12, Replicas: []DeltaPayload{
			{Name: "a", NewLen: 9, Checksum: 0xDEADBEEF, Ops: []PatchOp{{Off: 5, Data: []byte{1, 2}}}},
			{Name: "b", Full: true, Data: []byte("whole blob")},
		}},
	}
}

func TestEveryKindCovered(t *testing.T) {
	seen := map[Kind]bool{}
	for _, m := range allMessages() {
		seen[m.Kind()] = true
	}
	for k := KindInvalid + 1; k < kindSentinel; k++ {
		if !seen[k] {
			t.Errorf("kind %s has no round-trip coverage in allMessages", k)
		}
	}
}

func TestRoundTripAllKinds(t *testing.T) {
	for _, msg := range allMessages() {
		msg := msg
		t.Run(msg.Kind().String(), func(t *testing.T) {
			b := Marshal(msg)
			got, err := Unmarshal(b)
			if err != nil {
				t.Fatalf("Unmarshal: %v", err)
			}
			normalize(msg)
			normalize(got)
			if !reflect.DeepEqual(msg, got) {
				t.Fatalf("round trip mismatch:\n sent %#v\n got  %#v", msg, got)
			}
		})
	}
}

// normalize maps empty and nil byte slices / site sets to a canonical form
// so DeepEqual compares semantic content.
func normalize(p Payload) {
	v := reflect.ValueOf(p).Elem()
	normalizeValue(v)
}

func normalizeValue(v reflect.Value) {
	switch v.Kind() {
	case reflect.Slice:
		if v.Len() == 0 {
			v.Set(reflect.Zero(v.Type()))
			return
		}
		for i := 0; i < v.Len(); i++ {
			normalizeValue(v.Index(i))
		}
	case reflect.Struct:
		for i := 0; i < v.NumField(); i++ {
			if v.Field(i).CanSet() {
				normalizeValue(v.Field(i))
			} else if v.Type().Field(i).Name == "bits" {
				// SiteSet's unexported bit slice is normalized via
				// reflection on the addressable parent in practice; the
				// encode path already trims trailing zero words.
				continue
			}
		}
	default:
	}
}

// TestEncodedSizeHintExact verifies the size hints are exact frame sizes,
// so Marshal's single allocation is never regrown for bulk frames.
func TestEncodedSizeHintExact(t *testing.T) {
	big := make([]byte, 256<<10)
	for i := range big {
		big[i] = byte(i)
	}
	frames := []Payload{
		&ReplicaData{Lock: 1, From: 2, Version: 3, RequestID: 4, Replicas: []ReplicaPayload{{Name: "big", Data: big}, {Name: "small", Data: []byte{1}}}},
		&PushUpdate{Lock: 1, From: 2, Version: 3, Replicas: []ReplicaPayload{{Name: "big", Data: big}}},
		&ReplicaDelta{Lock: 1, From: 2, Version: 3, FromVersion: 2, Replicas: []DeltaPayload{
			{Name: "patched", NewLen: uint32(len(big)), Checksum: 9, Ops: []PatchOp{{Off: 100, Data: big[:4096]}}},
			{Name: "full", Full: true, Data: big},
		}},
	}
	for _, p := range frames {
		b := Marshal(p)
		if got, want := len(b), EncodedSizeHint(p); got != want {
			t.Errorf("%s: Marshal produced %d bytes, hint was %d", p.Kind(), got, want)
		}
		w := NewWriter(EncodedSizeHint(p))
		w.U8(uint8(p.Kind()))
		p.encode(w)
		if w.Regrew() {
			t.Errorf("%s: Writer regrew past the size hint", p.Kind())
		}
	}
	// Control messages fall back to the small default hint.
	if got := EncodedSizeHint(&PushAck{}); got != 64 {
		t.Errorf("control-message hint = %d, want 64", got)
	}
}

// BenchmarkMarshalReplicaData exercises the single-allocation encode path
// for a large frame and fails if the writer ever regrows.
func BenchmarkMarshalReplicaData(b *testing.B) {
	blob := make([]byte, 256<<10)
	msg := &ReplicaData{Lock: 1, From: 2, Version: 3, RequestID: 4, Replicas: []ReplicaPayload{{Name: "payload", Data: blob}}}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := NewWriter(EncodedSizeHint(msg))
		w.U8(uint8(msg.Kind()))
		msg.encode(w)
		if w.Regrew() {
			b.Fatal("Writer regrew past the size hint")
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	tests := []struct {
		name string
		in   []byte
		want error
	}{
		{name: "empty", in: nil, want: ErrTruncated},
		{name: "unknown kind", in: []byte{0xEE}, want: ErrUnknownKind},
		{name: "truncated body", in: []byte{byte(KindGrant), 0x00}, want: ErrTruncated},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Unmarshal(tt.in)
			if !errors.Is(err, tt.want) {
				t.Fatalf("Unmarshal(%v) error = %v, want %v", tt.in, err, tt.want)
			}
		})
	}
}

func TestTruncationAtEveryBoundary(t *testing.T) {
	// Chopping a valid message at any interior byte must yield an error,
	// never a panic or silent success.
	for _, msg := range allMessages() {
		b := Marshal(msg)
		for i := 1; i < len(b); i++ {
			if _, err := Unmarshal(b[:i]); err == nil {
				// Some prefixes decode cleanly when the chopped tail is a
				// zero-length trailing field; that is acceptable only if
				// re-marshaling produces the same prefix semantics. Require
				// hard failure instead: decode must consume exact layouts.
				// Fixed-width layouts make every strict prefix invalid
				// unless the cut lands exactly after the final field.
				t.Fatalf("%s: truncation at %d/%d decoded without error", msg.Kind(), i, len(b))
			}
		}
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{0x01})
	_ = r.U32() // fails: only one byte
	if r.Err() == nil {
		t.Fatal("expected error after short read")
	}
	if got := r.U64(); got != 0 {
		t.Fatalf("read after error = %d, want 0", got)
	}
	if r.String16() != "" {
		t.Fatal("string read after error should be empty")
	}
}

func TestWriterReaderPrimitives(t *testing.T) {
	w := NewWriter(0)
	w.U8(200)
	w.Bool(true)
	w.U16(65535)
	w.U32(1 << 30)
	w.U64(1 << 60)
	w.F64(3.25)
	w.Bytes32([]byte{9, 8, 7})
	w.String16("glasswareIndex")

	r := NewReader(w.Bytes())
	if got := r.U8(); got != 200 {
		t.Errorf("U8 = %d", got)
	}
	if !r.Bool() {
		t.Error("Bool = false")
	}
	if got := r.U16(); got != 65535 {
		t.Errorf("U16 = %d", got)
	}
	if got := r.U32(); got != 1<<30 {
		t.Errorf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.F64(); got != 3.25 {
		t.Errorf("F64 = %v", got)
	}
	if got := r.Bytes32(); !reflect.DeepEqual(got, []byte{9, 8, 7}) {
		t.Errorf("Bytes32 = %v", got)
	}
	if got := r.String16(); got != "glasswareIndex" {
		t.Errorf("String16 = %q", got)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d, want 0", r.Remaining())
	}
}

func TestBytes32ReturnsCopy(t *testing.T) {
	w := NewWriter(0)
	w.Bytes32([]byte{1, 2, 3})
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.Bytes32()
	buf[4] = 0xFF // mutate the underlying buffer
	if got[0] != 1 {
		t.Fatal("Bytes32 result aliases the input buffer")
	}
}

// TestQuickReplicaDataRoundTrip property-tests the most structurally
// complex message with arbitrary payload contents.
func TestQuickReplicaDataRoundTrip(t *testing.T) {
	f := func(lock uint32, from uint32, version, reqID uint64, names []string, blobs [][]byte) bool {
		n := len(names)
		if len(blobs) < n {
			n = len(blobs)
		}
		if n > 100 {
			n = 100
		}
		msg := &ReplicaData{
			Lock:      LockID(lock),
			From:      SiteID(from),
			Version:   version,
			RequestID: reqID,
		}
		for i := 0; i < n; i++ {
			name := names[i]
			if len(name) > 1000 {
				name = name[:1000]
			}
			msg.Replicas = append(msg.Replicas, ReplicaPayload{Name: name, Data: blobs[i]})
		}
		got, err := Unmarshal(Marshal(msg))
		if err != nil {
			return false
		}
		rd, ok := got.(*ReplicaData)
		if !ok || rd.Lock != msg.Lock || rd.From != msg.From || rd.Version != msg.Version || rd.RequestID != msg.RequestID || len(rd.Replicas) != len(msg.Replicas) {
			return false
		}
		for i := range rd.Replicas {
			if rd.Replicas[i].Name != msg.Replicas[i].Name {
				return false
			}
			if string(rd.Replicas[i].Data) != string(msg.Replicas[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAcquireLockRoundTrip(t *testing.T) {
	f := func(lock, req uint32, thread uint64, shared bool, lease uint32) bool {
		msg := &AcquireLock{Lock: LockID(lock), Requester: SiteID(req), Thread: ThreadID(thread), Shared: shared, LeaseMillis: lease}
		got, err := Unmarshal(Marshal(msg))
		if err != nil {
			return false
		}
		al, ok := got.(*AcquireLock)
		return ok && *al == *msg
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}); err != nil {
		t.Fatal(err)
	}
}

func TestThreadID(t *testing.T) {
	id := MakeThreadID(42, 7)
	if id.Site() != 42 {
		t.Fatalf("Site() = %d, want 42", id.Site())
	}
	if uint32(id) != 7 {
		t.Fatalf("local part = %d, want 7", uint32(id))
	}
}

func TestKindString(t *testing.T) {
	if got := KindGrant.String(); got != "GRANT" {
		t.Errorf("KindGrant.String() = %q", got)
	}
	if got := Kind(250).String(); got != "Kind(250)" {
		t.Errorf("unknown kind String() = %q", got)
	}
	if got := VersionOK.String(); got != "VERSIONOK" {
		t.Errorf("VersionOK.String() = %q", got)
	}
	if got := NeedNewVersion.String(); got != "NEEDNEWVERSION" {
		t.Errorf("NeedNewVersion.String() = %q", got)
	}
	if got := VersionFlag(9).String(); got != "VersionFlag(9)" {
		t.Errorf("unknown flag String() = %q", got)
	}
}

func TestQuickSiteSetRoundTrip(t *testing.T) {
	f := func(ids []uint16) bool {
		var s SiteSet
		for _, id := range ids {
			s.Add(SiteID(id % 500))
		}
		// Round trip through a ReleaseLock message.
		msg := &ReleaseLock{Lock: 1, UpToDate: s}
		got, err := Unmarshal(Marshal(msg))
		if err != nil {
			return false
		}
		rl, ok := got.(*ReleaseLock)
		if !ok {
			return false
		}
		want := s.Sites()
		have := rl.UpToDate.Sites()
		if len(want) != len(have) {
			return false
		}
		for i := range want {
			if want[i] != have[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

func TestSiteSetOperations(t *testing.T) {
	s := NewSiteSet(1, 3, 130)
	if !s.Contains(1) || !s.Contains(130) || s.Contains(2) {
		t.Fatal("membership wrong")
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Remove(3)
	if s.Contains(3) || s.Len() != 2 {
		t.Fatal("Remove failed")
	}
	s.Remove(999) // out of range: no-op, no panic
	clone := s.Clone()
	clone.Add(7)
	if s.Contains(7) {
		t.Fatal("Clone aliases original")
	}
	if got := s.String(); got != "{1,130}" {
		t.Fatalf("String = %q", got)
	}
	var empty SiteSet
	if empty.Len() != 0 || len(empty.Sites()) != 0 || empty.String() != "{}" {
		t.Fatal("empty set misbehaves")
	}
}

// TestMarshalAppendMatchesMarshal checks the in-place encoder produces
// byte-identical frames for every message kind, both onto an empty buffer
// and after an existing prefix.
func TestMarshalAppendMatchesMarshal(t *testing.T) {
	for _, m := range allMessages() {
		want := Marshal(m)
		if got := MarshalAppend(m, nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: MarshalAppend(nil) diverges from Marshal", m.Kind())
		}
		prefix := []byte{0xDE, 0xAD}
		got := MarshalAppend(m, prefix)
		if len(got) != 2+len(want) || !reflect.DeepEqual(got[2:], want) {
			t.Fatalf("%s: MarshalAppend(prefix) diverges from Marshal", m.Kind())
		}
		a := Appender{P: m}
		if a.EncodedSizeHint() != EncodedSizeHint(m) {
			t.Fatalf("%s: Appender hint mismatch", m.Kind())
		}
		if got := a.AppendEncode(nil); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Appender encode diverges from Marshal", m.Kind())
		}
	}
}

// TestMarshalAppendAllocs pins the zero-copy property: encoding into a
// buffer that already has the hinted capacity performs no allocations.
// This is the regression gate for the SendAppender grant/push path.
func TestMarshalAppendAllocs(t *testing.T) {
	grant := &Grant{Lock: 7, Thread: MakeThreadID(3, 9), Version: 42, Shared: true,
		Sharers: NewSiteSet(2, 4), UpToDate: NewSiteSet(1, 2)}
	push := &PushUpdate{Lock: 7, From: 2, Version: 44,
		Replicas: []ReplicaPayload{{Name: "text", Data: make([]byte, 4096)}}}
	for _, tc := range []struct {
		name string
		p    Payload
	}{
		{"grant", grant}, {"push", push},
	} {
		need := len(Marshal(tc.p))
		hint := EncodedSizeHint(tc.p)
		if hint < need {
			t.Fatalf("%s: hint %d below actual size %d", tc.name, hint, need)
		}
		buf := make([]byte, 0, hint)
		allocs := testing.AllocsPerRun(100, func() {
			out := MarshalAppend(tc.p, buf)
			if len(out) != need {
				t.Fatalf("%s: encoded %d bytes, want %d", tc.name, len(out), need)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: MarshalAppend allocates %.1f into a pre-sized buffer, want 0", tc.name, allocs)
		}
	}
}
