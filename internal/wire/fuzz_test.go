package wire

import (
	"bytes"
	"testing"
)

// fuzzSeeds builds one representative marshaled packet per message kind,
// plus populated variants exercising the variable-length fields (site
// sets, replica payloads, delta ops). These seed the fuzzer and double as
// the checked-in corpus under testdata/fuzz/FuzzUnmarshal.
func fuzzSeeds() [][]byte {
	var seeds [][]byte
	// A zero value of every registered kind: the decoder must accept its
	// own encoder's output for every message, however empty.
	for k := 1; k < 64; k++ {
		if p := newPayload(Kind(k)); p != nil {
			seeds = append(seeds, Marshal(p))
		}
	}
	populated := []Payload{
		&AcquireLock{Lock: 7, Requester: 3, Thread: MakeThreadID(3, 9), Shared: true,
			HaveVersion: 41, LeaseMillis: 500},
		&Grant{Lock: 7, Thread: MakeThreadID(3, 9), Version: 42, Flag: NeedNewVersion,
			Shared: true, Epoch: 2, Sharers: NewSiteSet(2, 4), UpToDate: NewSiteSet(1, 2),
			Revised: true, VersionFloor: 45, Fence: 6},
		&ReleaseLock{Lock: 7, Releaser: 3, Thread: MakeThreadID(3, 9), NewVersion: 43,
			UpToDate: NewSiteSet(1, 3), Aborted: true, Fence: 6},
		&ReplicaData{Lock: 7, From: 2, Version: 42, Replicas: []ReplicaPayload{
			{Name: "table", Data: []byte{1, 2, 3, 4}},
			{Name: "", Data: nil},
		}},
		&ReplicaDelta{Lock: 7, From: 2, FromVersion: 41, Version: 42, Push: true,
			Replicas: []DeltaPayload{
				{Name: "table", NewLen: 8, Checksum: 0xdeadbeef,
					Ops: []PatchOp{{Off: 0, Data: []byte{9, 9}}, {Off: 6, Data: []byte{1}}}},
				{Name: "whole", Full: true, Data: []byte{5, 6, 7}},
			}},
		&LockNack{Lock: 7, Code: NackNotHome, Home: 4, HomeEpoch: 3, Reason: "moved"},
		&WALRecord{Op: WALDelta, Lock: 7, FromVersion: 41, Version: 42, Dirty: true,
			Fence: 6, Replicas: []DeltaPayload{
				{Name: "table", NewLen: 8, Checksum: 0xfeedface,
					Ops: []PatchOp{{Off: 2, Data: []byte{3, 4}}}},
			}},
	}
	for _, p := range populated {
		seeds = append(seeds, Marshal(p))
	}
	return seeds
}

// FuzzUnmarshal drives arbitrary bytes through the packet decoder and, for
// anything it accepts, requires the re-marshal to be a fixed point: encode
// and decode again, and the bytes must be identical. This pins down both
// crash-safety on garbage (truncations, wild lengths) and canonical
// encoding — a decoded message that re-encodes differently would break
// retransmit dedup and history fingerprints.
func FuzzUnmarshal(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return // rejected input: only crash-safety is at stake
		}
		b2 := MarshalAppend(p, nil)
		p2, err := Unmarshal(b2)
		if err != nil {
			t.Fatalf("re-decode of re-marshaled %s failed: %v", p.Kind(), err)
		}
		b3 := MarshalAppend(p2, nil)
		if !bytes.Equal(b2, b3) {
			t.Fatalf("%s re-marshal is not a fixed point:\n first %x\nsecond %x", p.Kind(), b2, b3)
		}
	})
}
