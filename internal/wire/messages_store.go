package wire

// Durable-store record. The log-structured replica store (internal/store)
// frames its write-ahead log with the wire codec: each on-disk record is a
// Marshal'ed WALRecord inside a length+CRC frame, reusing the S29 delta
// encoding (DeltaPayload) as the record body so a delta append costs the
// same bytes on disk as it did on the network. The message never crosses
// the network — it is registered as a Kind so the decoder, the fuzzer, and
// the fixed-point re-marshal property cover it like every wire message.

// WALOp classifies one write-ahead log record.
type WALOp uint8

const (
	// WALPut installs a complete replica set for a lock at Version
	// (payloads are Full DeltaPayloads).
	WALPut WALOp = 1
	// WALDelta patches the lock's replicas from FromVersion to Version
	// (payloads carry patch ops against the FromVersion blobs).
	WALDelta WALOp = 2
	// WALCommit marks Version as committed (clears the dirty flag) without
	// carrying payloads.
	WALCommit WALOp = 3
)

// WALRecord is one durable-store log record: a full replica-set install, a
// delta against the previous version, or a commit mark. Dirty records replay
// as uncommitted state — a recovered daemon reports them as dirty to version
// polls, never as committed.
type WALRecord struct {
	Op   WALOp
	Lock LockID
	// FromVersion is the delta base for WALDelta records, zero otherwise.
	FromVersion uint64
	Version     uint64
	// Dirty marks state whose commit was not yet durable when the record
	// was written.
	Dirty bool
	// Fence is the highest fencing token persisted with the lock's record.
	Fence uint64
	// Replicas carries the replica bytes: Full payloads for WALPut, patch
	// ops for WALDelta, empty for WALCommit.
	Replicas []DeltaPayload
}

// Kind implements Payload.
func (*WALRecord) Kind() Kind { return KindWALRecord }

func (m *WALRecord) encode(w *Writer) {
	w.U8(uint8(m.Op))
	w.U32(uint32(m.Lock))
	w.U64(m.FromVersion)
	w.U64(m.Version)
	w.Bool(m.Dirty)
	w.U64(m.Fence)
	w.U16(uint16(len(m.Replicas)))
	for i := range m.Replicas {
		m.Replicas[i].encode(w)
	}
}

func (m *WALRecord) decode(r *Reader) error {
	m.Op = WALOp(r.U8())
	m.Lock = LockID(r.U32())
	m.FromVersion = r.U64()
	m.Version = r.U64()
	m.Dirty = r.Bool()
	m.Fence = r.U64()
	n := int(r.U16())
	m.Replicas = make([]DeltaPayload, n)
	for i := 0; i < n; i++ {
		m.Replicas[i].decode(r)
	}
	return r.Err()
}

func (m *WALRecord) encodedSize() int {
	n := 1 + 4 + 8 + 8 + 1 + 8 + 2
	for i := range m.Replicas {
		n += m.Replicas[i].encodedSize()
	}
	return n
}
