package wire

// Home placement messages. With consistent-hash lock placement enabled the
// lock namespace is partitioned across manager sites and a lock's home can
// move at runtime — migrating toward its observed access locality, or
// failing over to the ring-successor standby when the home dies. These
// messages carry the moves: HOMEHINT redirects a client that asked the
// wrong manager, HANDOFF ships a frozen lock record between managers,
// STANDBY streams record deltas to the ring successor, and HOMEMOVED
// broadcasts a promotion so every site updates its routing table.

// HeldLease is a hold (exclusive holder or reader) serialized inside a
// LockRecord. The lease is carried as a remaining duration, not a deadline:
// the receiver re-anchors it on its own clock, so a handoff or promotion
// never inherits clock skew from the old home.
type HeldLease struct {
	Thread ThreadID
	Site   SiteID
	Shared bool
	// RemainingMillis is how much of the lease was left when the record
	// was snapshotted (0 = already expired; the new home's sweep probes
	// it immediately).
	RemainingMillis uint32
}

func (h *HeldLease) encode(w *Writer) {
	w.U64(uint64(h.Thread))
	w.U32(uint32(h.Site))
	w.Bool(h.Shared)
	w.U32(h.RemainingMillis)
}

func (h *HeldLease) decode(r *Reader) {
	h.Thread = ThreadID(r.U64())
	h.Site = SiteID(r.U32())
	h.Shared = r.Bool()
	h.RemainingMillis = r.U32()
}

// LockRecord is one lock's complete manager-side record: the durable
// bookkeeping a surrogate snapshot carries (version, high water, last
// owner, up-to-date/dirty/sharer sets, names) plus the live hold state
// (holder and readers with remaining leases) that a migration or standby
// promotion must preserve. Queued requests are deliberately absent —
// waiters re-issue against the new home after a NACK redirect or timeout.
type LockRecord struct {
	Lock      LockID
	Version   uint64
	HighWater uint64
	LastOwner SiteID
	UpToDate  SiteSet
	Dirty     SiteSet
	Sharers   SiteSet
	Names     []string
	// Holder is the exclusive holder when HasHolder is set.
	HasHolder bool
	Holder    HeldLease
	Readers   []HeldLease
	// Fence is the lock's fencing-token counter: the highest token the
	// record's home has minted. Carried so handoff and standby promotion
	// keep minting strictly above every token ever issued for the lock.
	Fence uint64
}

func (rec *LockRecord) encode(w *Writer) {
	w.U32(uint32(rec.Lock))
	w.U64(rec.Version)
	w.U64(rec.HighWater)
	w.U32(uint32(rec.LastOwner))
	rec.UpToDate.encode(w)
	rec.Dirty.encode(w)
	rec.Sharers.encode(w)
	w.U16(uint16(len(rec.Names)))
	for _, n := range rec.Names {
		w.String16(n)
	}
	w.Bool(rec.HasHolder)
	if rec.HasHolder {
		rec.Holder.encode(w)
	}
	w.U16(uint16(len(rec.Readers)))
	for i := range rec.Readers {
		rec.Readers[i].encode(w)
	}
	w.U64(rec.Fence)
}

func (rec *LockRecord) decode(r *Reader) {
	rec.Lock = LockID(r.U32())
	rec.Version = r.U64()
	rec.HighWater = r.U64()
	rec.LastOwner = SiteID(r.U32())
	rec.UpToDate = decodeSiteSet(r)
	rec.Dirty = decodeSiteSet(r)
	rec.Sharers = decodeSiteSet(r)
	if n := int(r.U16()); n > 0 && r.Err() == nil {
		rec.Names = make([]string, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			rec.Names = append(rec.Names, r.String16())
		}
	}
	rec.HasHolder = r.Bool()
	if rec.HasHolder {
		rec.Holder.decode(r)
	}
	if n := int(r.U16()); n > 0 && r.Err() == nil {
		rec.Readers = make([]HeldLease, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			var h HeldLease
			h.decode(r)
			rec.Readers = append(rec.Readers, h)
		}
	}
	rec.Fence = r.U64()
}

// HomeHint tells a site where a lock's manager now lives. Sent by an old
// home when a request for a migrated lock arrives on a stale route, and
// broadcast inside HomeMoved after a failover promotion. Receivers ignore
// hints whose Epoch is not newer than what they already know.
type HomeHint struct {
	Lock LockID
	Home SiteID
	// Epoch is the home's manager epoch; monotonically increasing across
	// migrations and promotions, so stale hints lose races.
	Epoch uint32
}

// Kind implements Payload.
func (*HomeHint) Kind() Kind { return KindHomeHint }

func (m *HomeHint) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U32(uint32(m.Home))
	w.U32(m.Epoch)
}

func (m *HomeHint) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.Home = SiteID(r.U32())
	m.Epoch = r.U32()
	return r.Err()
}

// HandoffRecord is phase two of a home migration: after freezing the lock
// (no new grants, arrivals queued), the old home ships the complete record
// to the new home. The new home installs it, bumps its epoch bookkeeping,
// and answers with a HandoffAck; only then does the old home start
// redirecting traffic.
type HandoffRecord struct {
	// From is the shipping (old home) manager site.
	From SiteID
	// Epoch is the old home's manager epoch at snapshot time; the new
	// home's install must record a strictly larger epoch for the lock.
	Epoch  uint32
	Record LockRecord
}

// Kind implements Payload.
func (*HandoffRecord) Kind() Kind { return KindHandoffRecord }

func (m *HandoffRecord) encode(w *Writer) {
	w.U32(uint32(m.From))
	w.U32(m.Epoch)
	m.Record.encode(w)
}

func (m *HandoffRecord) decode(r *Reader) error {
	m.From = SiteID(r.U32())
	m.Epoch = r.U32()
	m.Record.decode(r)
	return r.Err()
}

// HandoffAck confirms (or refuses) a HandoffRecord install. Until the ack
// arrives the old home still owns the lock: on refusal or timeout it
// unfreezes and resumes granting, so a lost handoff never strands the lock
// between homes.
type HandoffAck struct {
	Lock LockID
	// To is the accepting (new home) manager site.
	To    SiteID
	Epoch uint32
	OK    bool
}

// Kind implements Payload.
func (*HandoffAck) Kind() Kind { return KindHandoffAck }

func (m *HandoffAck) encode(w *Writer) {
	w.U32(uint32(m.Lock))
	w.U32(uint32(m.To))
	w.U32(m.Epoch)
	w.Bool(m.OK)
}

func (m *HandoffAck) decode(r *Reader) error {
	m.Lock = LockID(r.U32())
	m.To = SiteID(r.U32())
	m.Epoch = r.U32()
	m.OK = r.Bool()
	return r.Err()
}

// StandbyUpdate streams one lock record from a home to its ring-successor
// standby after a state-changing operation. Best-effort and idempotent:
// the standby just overwrites its shadow copy, and a promotion installs
// whatever shadows it holds. Delete retires a shadow when the home GCs an
// empty record.
type StandbyUpdate struct {
	// From is the home whose record this is; a standby keys its shadow
	// table by (From, Record.Lock).
	From SiteID
	// Epoch is the home's manager epoch, so a standby ignores updates
	// from a demoted predecessor incarnation.
	Epoch uint32
	// Seq orders snapshots of one lock within an epoch: updates stream
	// from concurrent operations, and an older snapshot arriving late must
	// not overwrite a newer one (it could erase a streamed hold).
	Seq    uint64
	Delete bool
	Record LockRecord
}

// Kind implements Payload.
func (*StandbyUpdate) Kind() Kind { return KindStandbyUpdate }

func (m *StandbyUpdate) encode(w *Writer) {
	w.U32(uint32(m.From))
	w.U32(m.Epoch)
	w.U64(m.Seq)
	w.Bool(m.Delete)
	m.Record.encode(w)
}

func (m *StandbyUpdate) decode(r *Reader) error {
	m.From = SiteID(r.U32())
	m.Epoch = r.U32()
	m.Seq = r.U64()
	m.Delete = r.Bool()
	m.Record.decode(r)
	return r.Err()
}

// HomeMoved announces that To now manages the listed locks, after a
// standby promotion (From died) or a bulk migration. Broadcast to every
// daemon; receivers install per-lock routes and drop stale ones by epoch
// comparison.
type HomeMoved struct {
	From  SiteID
	To    SiteID
	Epoch uint32
	Locks []LockID
}

// Kind implements Payload.
func (*HomeMoved) Kind() Kind { return KindHomeMoved }

func (m *HomeMoved) encode(w *Writer) {
	w.U32(uint32(m.From))
	w.U32(uint32(m.To))
	w.U32(m.Epoch)
	w.U16(uint16(len(m.Locks)))
	for _, id := range m.Locks {
		w.U32(uint32(id))
	}
}

func (m *HomeMoved) decode(r *Reader) error {
	m.From = SiteID(r.U32())
	m.To = SiteID(r.U32())
	m.Epoch = r.U32()
	if n := int(r.U16()); n > 0 && r.Err() == nil {
		m.Locks = make([]LockID, 0, n)
		for i := 0; i < n && r.Err() == nil; i++ {
			m.Locks = append(m.Locks, LockID(r.U32()))
		}
	}
	return r.Err()
}
