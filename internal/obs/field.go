package obs

import "strconv"

// Field is one structured key/value pair attached to a typed event or a
// span. Values are either strings or integers — the two shapes every
// protocol event reduces to (sites, locks, versions, byte counts, modes)
// — so events can be stored, forwarded, and merged without formatting
// anything until a human actually looks.
type Field struct {
	Key string `json:"k"`
	Str string `json:"s,omitempty"`
	Int int64  `json:"i,omitempty"`
	// IsInt distinguishes I(k, 0) from S(k, ""); kept explicit so JSON
	// round trips are lossless.
	IsInt bool `json:"n,omitempty"`
}

// S builds a string field.
func S(key, val string) Field { return Field{Key: key, Str: val} }

// I builds an integer field.
func I(key string, val int64) Field { return Field{Key: key, Int: val, IsInt: true} }

// Value renders the field's value as text.
func (f Field) Value() string {
	if f.IsInt {
		return strconv.FormatInt(f.Int, 10)
	}
	return f.Str
}

// AppendFields appends " k=v" pairs to b — the lazy formatting path used
// when a typed event finally meets a writer or renderer.
func AppendFields(b []byte, fields []Field) []byte {
	for _, f := range fields {
		b = append(b, ' ')
		b = append(b, f.Key...)
		b = append(b, '=')
		if f.IsInt {
			b = strconv.AppendInt(b, f.Int, 10)
		} else {
			b = append(b, f.Str...)
		}
	}
	return b
}

// FormatFields renders "msg k=v k2=v2".
func FormatFields(msg string, fields []Field) string {
	if len(fields) == 0 {
		return msg
	}
	b := make([]byte, 0, len(msg)+16*len(fields))
	b = append(b, msg...)
	return string(AppendFields(b, fields))
}
