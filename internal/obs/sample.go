package obs

import (
	"math"
	"sort"
	"time"
)

// Sample is a set of duration measurements with exact (non-bucketed)
// statistics — the histogram math the benchmark harness reports with.
// It lives here so benchmocha and the runtime share one implementation
// with the registry's bucketed histograms; internal/stats aliases it.
// Unlike Registry instruments, a Sample is not safe for concurrent use.
type Sample struct {
	values []time.Duration
}

// Add appends a measurement.
func (s *Sample) Add(d time.Duration) { s.values = append(s.values, d) }

// N reports the number of measurements.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean.
func (s *Sample) Mean() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	var total time.Duration
	for _, v := range s.values {
		total += v
	}
	return total / time.Duration(len(s.values))
}

// Min returns the smallest measurement.
func (s *Sample) Min() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest measurement.
func (s *Sample) Max() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() time.Duration {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := float64(s.Mean())
	var sum float64
	for _, v := range s.values {
		d := float64(v) - mean
		sum += d * d
	}
	return time.Duration(math.Sqrt(sum / float64(n-1)))
}

// Median returns the middle measurement.
func (s *Sample) Median() time.Duration {
	return s.Percentile(50)
}

// Percentile returns the p-th percentile (nearest rank).
func (s *Sample) Percentile(p float64) time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(s.values))
	copy(sorted, s.values)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
