package obs

import (
	"testing"
	"time"
)

func TestSampleEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 ||
		s.Stddev() != 0 || s.Median() != 0 || s.Percentile(99) != 0 {
		t.Fatal("empty sample must report zeros everywhere")
	}
}

func TestSampleSingleValue(t *testing.T) {
	var s Sample
	s.Add(7 * time.Millisecond)
	if s.N() != 1 {
		t.Fatalf("N = %d", s.N())
	}
	want := 7 * time.Millisecond
	if s.Mean() != want || s.Min() != want || s.Max() != want || s.Median() != want {
		t.Fatal("single-value stats must all equal the value")
	}
	if s.Stddev() != 0 {
		t.Fatalf("single-value stddev = %v, want 0", s.Stddev())
	}
	for _, p := range []float64{0, 0.1, 50, 99.9, 100} {
		if got := s.Percentile(p); got != want {
			t.Fatalf("P%v = %v, want %v", p, got, want)
		}
	}
}

func TestSampleStats(t *testing.T) {
	var s Sample
	for _, ms := range []int{5, 1, 3, 2, 4} {
		s.Add(time.Duration(ms) * time.Millisecond)
	}
	if s.Mean() != 3*time.Millisecond {
		t.Fatalf("mean = %v", s.Mean())
	}
	if s.Min() != time.Millisecond || s.Max() != 5*time.Millisecond {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
	if s.Median() != 3*time.Millisecond {
		t.Fatalf("median = %v", s.Median())
	}
	// Sample stddev of 1..5ms is sqrt(2.5) ms ≈ 1.581ms.
	sd := s.Stddev()
	if sd < 1500*time.Microsecond || sd > 1700*time.Microsecond {
		t.Fatalf("stddev = %v, want ~1.58ms", sd)
	}
}

func TestSamplePercentileBoundaries(t *testing.T) {
	var s Sample
	for i := 1; i <= 100; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, time.Millisecond}, // rank clamps up to 1
		{1, time.Millisecond}, // nearest rank: ceil(1) = 1
		{50, 50 * time.Millisecond},
		{50.5, 51 * time.Millisecond}, // ceil(50.5) = 51
		{99, 99 * time.Millisecond},
		{100, 100 * time.Millisecond},
		{200, 100 * time.Millisecond}, // rank clamps down to N
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	// Percentile must not mutate the sample's insertion order semantics.
	if s.Min() != time.Millisecond || s.N() != 100 {
		t.Fatal("percentile mutated the sample")
	}
}
