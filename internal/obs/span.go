package obs

import "time"

// spanRingSize bounds the registry's ring of completed spans.
const spanRingSize = 256

// SpanPhase is one named sub-interval of a completed span.
type SpanPhase struct {
	Name string        `json:"name"`
	Dur  time.Duration `json:"dur_ns"`
}

// SpanRecord is one completed operation with its (site, lock, version)
// tags and phase decomposition. StartTick/EndTick come from the shared
// simulation clock when one is set, putting spans on the same monotonic
// axis as check.Recorder history events.
type SpanRecord struct {
	Op        string        `json:"op"`
	Site      uint32        `json:"site"`
	Lock      uint64        `json:"lock"`
	Version   uint64        `json:"version,omitempty"`
	StartTick uint64        `json:"start_tick,omitempty"`
	EndTick   uint64        `json:"end_tick,omitempty"`
	Total     time.Duration `json:"total_ns"`
	Phases    []SpanPhase   `json:"phases,omitempty"`
}

// Span tracks one in-flight operation. Obtain one from StartSpan, mark
// phase boundaries with Phase, and finish with End; each boundary feeds
// the matching phase histogram and the completed record lands in the
// registry's span ring. A nil *Span (from a nil registry) is the
// disabled path: every method is a no-op. A Span is owned by one
// goroutine and must not be shared.
type Span struct {
	r     *Registry
	rec   SpanRecord
	start time.Time
	mark  time.Time
}

// StartSpan opens a span for one operation, stamping the shared-clock
// tick. Returns nil — the free no-op span — on a nil registry.
func (r *Registry) StartSpan(op string, site uint32, lock uint64) *Span {
	if r == nil {
		return nil
	}
	now := time.Now()
	return &Span{
		r:     r,
		rec:   SpanRecord{Op: op, Site: site, Lock: lock, StartTick: r.tick()},
		start: now,
		mark:  now,
	}
}

// SetVersion tags the span with the version the operation settled on.
func (s *Span) SetVersion(v uint64) {
	if s == nil {
		return
	}
	s.rec.Version = v
}

// Phase closes the current sub-interval: the time since the previous
// boundary (or the start) is observed into h and recorded under h's
// phase name.
func (s *Span) Phase(h HistID) {
	if s == nil {
		return
	}
	now := time.Now()
	d := now.Sub(s.mark)
	s.mark = now
	s.r.Observe(h, d)
	s.rec.Phases = append(s.rec.Phases, SpanPhase{Name: h.PhaseName(), Dur: d})
}

// End completes the span: the total duration since StartSpan is observed
// into h and the record is published to the registry's span ring.
// Abandoning a span without End (an errored operation) records nothing.
func (s *Span) End(h HistID) {
	if s == nil {
		return
	}
	s.rec.Total = time.Since(s.start)
	s.rec.EndTick = s.r.tick()
	s.r.Observe(h, s.rec.Total)
	i := s.r.spanHead.Add(1) - 1
	rec := s.rec
	s.r.spans[i%spanRingSize].Store(&rec)
}

// Spans returns the retained completed spans, oldest first. The ring
// keeps the most recent spanRingSize records.
func (r *Registry) Spans() []SpanRecord {
	if r == nil {
		return nil
	}
	head := r.spanHead.Load()
	n := head
	if n > spanRingSize {
		n = spanRingSize
	}
	out := make([]SpanRecord, 0, n)
	for i := uint64(0); i < n; i++ {
		idx := i
		if head > spanRingSize {
			idx = (head + i) % spanRingSize
		}
		if p := r.spans[idx].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// SpansSince returns the completed spans published after a cursor
// previously returned by SpansSince (0 for "from the beginning"), oldest
// first, along with the new cursor. A consumer polling with its last
// cursor sees each span at most once; spans that rolled off the ring
// between polls are silently skipped. Nil-safe.
func (r *Registry) SpansSince(cursor uint64) ([]SpanRecord, uint64) {
	if r == nil {
		return nil, cursor
	}
	head := r.spanHead.Load()
	if head <= cursor {
		return nil, head
	}
	from := cursor
	if head-from > spanRingSize {
		from = head - spanRingSize
	}
	out := make([]SpanRecord, 0, head-from)
	for i := from; i < head; i++ {
		if p := r.spans[i%spanRingSize].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out, head
}
