package obs

import (
	"strings"
	"sync"
	"testing"
	"time"

	"mocha/internal/netsim"
)

func TestNilRegistryIsDisabledPlane(t *testing.T) {
	var r *Registry
	r.Inc(CGrants)
	r.Add(CTransferBytes, 100)
	r.GaugeAdd(GSyncQueueDepth, 1)
	r.GaugeSet(GSyncLocks, 5)
	r.ShardDepthAdd(3, 1)
	r.Observe(HApply, time.Millisecond)
	r.SetClock(&netsim.Clock{})
	if r.CounterValue(CGrants) != 0 || r.GaugeValue(GSyncLocks) != 0 {
		t.Fatal("nil registry reported nonzero values")
	}
	if h := r.Hist(HApply); h.Count != 0 {
		t.Fatal("nil registry reported observations")
	}
	if r.Spans() != nil {
		t.Fatal("nil registry reported spans")
	}
	s := r.StartSpan("acquire", 1, 9)
	if s != nil {
		t.Fatal("nil registry handed out a non-nil span")
	}
	s.SetVersion(3)
	s.Phase(HQueueWait)
	s.End(HAcquireTotal)
	snap := r.Snapshot()
	if snap.Tick != 0 || snap.Counters != nil {
		t.Fatal("nil registry snapshot not zero")
	}
	if r.now() != 0 {
		t.Fatal("nil registry now() not zero")
	}
}

func TestCountersGaugesShardDepths(t *testing.T) {
	r := NewRegistry()
	r.Inc(CAcquireRequests)
	r.Add(CAcquireRequests, 2)
	if got := r.CounterValue(CAcquireRequests); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	r.GaugeAdd(GSyncQueueDepth, 4)
	r.GaugeAdd(GSyncQueueDepth, -1)
	if got := r.GaugeValue(GSyncQueueDepth); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	r.GaugeSet(GSyncLocks, 7)
	if got := r.GaugeValue(GSyncLocks); got != 7 {
		t.Fatalf("gauge set = %d, want 7", got)
	}
	// Shard indices fold into the fixed array; negatives must not panic.
	r.ShardDepthAdd(NumShardDepths+2, 1)
	r.ShardDepthAdd(2, 1)
	r.ShardDepthAdd(-2, 1)
	snap := r.Snapshot()
	if snap.ShardDepths["2"] != 3 {
		t.Fatalf("shard 2 depth = %d, want 3 (folded)", snap.ShardDepths["2"])
	}
}

func TestCounterAndGaugeNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < numCounters; c++ {
		name := c.Name()
		if name == "" || !strings.HasPrefix(name, "mocha_") || !strings.HasSuffix(name, "_total") {
			t.Errorf("counter %d has bad name %q", c, name)
		}
		if seen[name] {
			t.Errorf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	for g := Gauge(0); g < numGauges; g++ {
		if g.Name() == "" || !strings.HasPrefix(g.Name(), "mocha_") {
			t.Errorf("gauge %d has bad name %q", g, g.Name())
		}
	}
	for h := HistID(0); h < numHists; h++ {
		if h.Name() == "" || h.PhaseName() == "" {
			t.Errorf("hist %d missing name/phase", h)
		}
	}
}

func TestHistObserveAndSnapshot(t *testing.T) {
	r := NewRegistry()
	if s := r.Hist(HApply); s.Count != 0 || s.Buckets != nil || s.Mean() != 0 {
		t.Fatal("fresh histogram not empty")
	}
	r.Observe(HApply, 30*time.Microsecond)  // bucket 0 (<=50µs)
	r.Observe(HApply, 50*time.Microsecond)  // bucket 0 (inclusive bound)
	r.Observe(HApply, 700*time.Microsecond) // bucket 4 (<=1ms)
	r.Observe(HApply, time.Minute)          // +Inf bucket
	r.Observe(HApply, -time.Second)         // clamps to 0, bucket 0
	s := r.Hist(HApply)
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if len(s.Buckets) != NumBuckets {
		t.Fatalf("bucket slice length %d, want %d", len(s.Buckets), NumBuckets)
	}
	if s.Buckets[0] != 3 {
		t.Fatalf("bucket 0 = %d, want 3", s.Buckets[0])
	}
	if s.Buckets[NumBuckets-1] != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", s.Buckets[NumBuckets-1])
	}
	wantSum := 30*time.Microsecond + 50*time.Microsecond + 700*time.Microsecond + time.Minute
	if s.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", s.Sum, wantSum)
	}
	if s.Mean() != wantSum/5 {
		t.Fatalf("mean = %v, want %v", s.Mean(), wantSum/5)
	}
}

func TestHistQuantile(t *testing.T) {
	var empty HistSnapshot
	if empty.Quantile(50) != 0 {
		t.Fatal("empty quantile not 0")
	}
	r := NewRegistry()
	for i := 0; i < 99; i++ {
		r.Observe(HRequestRTT, time.Millisecond) // bucket le=1ms
	}
	r.Observe(HRequestRTT, 20*time.Second) // bucket le=30s
	s := r.Hist(HRequestRTT)
	if q := s.Quantile(50); q != time.Millisecond {
		t.Fatalf("p50 = %v, want 1ms", q)
	}
	if q := s.Quantile(99); q != time.Millisecond {
		t.Fatalf("p99 = %v, want 1ms", q)
	}
	if q := s.Quantile(100); q != 30*time.Second {
		t.Fatalf("p100 = %v, want 30s", q)
	}
	// Tiny p clamps to rank 1, not rank 0.
	if q := s.Quantile(0.0001); q != time.Millisecond {
		t.Fatalf("p~0 = %v, want 1ms", q)
	}
	// All observations past the last bound report the largest bound.
	r2 := NewRegistry()
	r2.Observe(HApply, time.Hour)
	if q := r2.Hist(HApply).Quantile(50); q != BucketBounds[len(BucketBounds)-1] {
		t.Fatalf("overflow quantile = %v, want %v", q, BucketBounds[len(BucketBounds)-1])
	}
}

func TestSpanLifecycle(t *testing.T) {
	r := NewRegistry()
	clock := &netsim.Clock{}
	clock.Tick() // advance so StartTick is nonzero
	r.SetClock(clock)

	sp := r.StartSpan("acquire", 2, 77)
	sp.Phase(HQueueWait)
	sp.Phase(HRequestRTT)
	sp.SetVersion(5)
	sp.End(HAcquireTotal)

	spans := r.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	rec := spans[0]
	if rec.Op != "acquire" || rec.Site != 2 || rec.Lock != 77 || rec.Version != 5 {
		t.Fatalf("span tags wrong: %+v", rec)
	}
	if rec.StartTick == 0 || rec.EndTick <= rec.StartTick {
		t.Fatalf("span ticks not monotone: start=%d end=%d", rec.StartTick, rec.EndTick)
	}
	if len(rec.Phases) != 2 || rec.Phases[0].Name != "queue_wait" || rec.Phases[1].Name != "request_rtt" {
		t.Fatalf("span phases wrong: %+v", rec.Phases)
	}
	if r.Hist(HQueueWait).Count != 1 || r.Hist(HRequestRTT).Count != 1 || r.Hist(HAcquireTotal).Count != 1 {
		t.Fatal("span phases did not feed the histograms")
	}
	if rec.Total < rec.Phases[0].Dur {
		t.Fatal("total shorter than first phase")
	}
}

func TestSpanRingWraparound(t *testing.T) {
	r := NewRegistry()
	total := spanRingSize + 10
	for i := 0; i < total; i++ {
		sp := r.StartSpan("release", 1, uint64(i))
		sp.End(HReleaseTotal)
	}
	spans := r.Spans()
	if len(spans) != spanRingSize {
		t.Fatalf("got %d spans, want %d", len(spans), spanRingSize)
	}
	// Oldest retained span is number total-spanRingSize, newest total-1.
	if spans[0].Lock != uint64(total-spanRingSize) {
		t.Fatalf("oldest span lock = %d, want %d", spans[0].Lock, total-spanRingSize)
	}
	if spans[len(spans)-1].Lock != uint64(total-1) {
		t.Fatalf("newest span lock = %d, want %d", spans[len(spans)-1].Lock, total-1)
	}
}

func TestSnapshotAndWriters(t *testing.T) {
	r := NewRegistry()
	clock := &netsim.Clock{}
	r.SetClock(clock)
	clock.Tick()
	clock.Tick()
	r.Inc(CGrants)
	r.GaugeSet(GSyncLocks, 2)
	r.ShardDepthAdd(5, 3)
	r.Observe(HApply, 2*time.Millisecond)
	r.StartSpan("acquire", 1, 1).End(HAcquireTotal)

	snap := r.Snapshot()
	if snap.Tick == 0 {
		t.Fatal("snapshot tick not stamped from clock")
	}
	if snap.Counters["mocha_grants_total"] != 1 {
		t.Fatalf("snapshot counter = %d", snap.Counters["mocha_grants_total"])
	}
	if snap.Gauges["mocha_sync_locks"] != 2 {
		t.Fatalf("snapshot gauge = %d", snap.Gauges["mocha_sync_locks"])
	}
	if snap.ShardDepths["5"] != 3 {
		t.Fatalf("snapshot shard depth = %v", snap.ShardDepths)
	}
	if snap.Hists["mocha_apply_seconds"].Count != 1 {
		t.Fatal("snapshot histogram missing")
	}
	if len(snap.Spans) != 1 {
		t.Fatalf("snapshot spans = %d, want 1", len(snap.Spans))
	}

	var jsonBuf strings.Builder
	if err := snap.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"mocha_grants_total": 1`, `"mocha_sync_locks": 2`, `"spans"`} {
		if !strings.Contains(jsonBuf.String(), want) {
			t.Errorf("JSON missing %q", want)
		}
	}

	var promBuf strings.Builder
	if err := snap.WritePrometheus(&promBuf); err != nil {
		t.Fatal(err)
	}
	prom := promBuf.String()
	for _, want := range []string{
		"# TYPE mocha_grants_total counter\nmocha_grants_total 1\n",
		"# TYPE mocha_sync_locks gauge\nmocha_sync_locks 2\n",
		`mocha_sync_shard_queue_depth{shard="5"} 3`,
		"# TYPE mocha_apply_seconds histogram",
		`mocha_apply_seconds_bucket{le="+Inf"} 1`,
		"mocha_apply_seconds_count 1",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("Prometheus output missing %q", want)
		}
	}
	// Cumulative buckets: the 2ms observation is in every le>=2.5ms bucket.
	if !strings.Contains(prom, `mocha_apply_seconds_bucket{le="0.0025"} 1`) {
		t.Error("cumulative bucket for le=2.5ms missing the 2ms observation")
	}
	if !strings.Contains(prom, `mocha_apply_seconds_bucket{le="0.001"} 0`) {
		t.Error("le=1ms bucket should not include the 2ms observation")
	}
}

func TestFields(t *testing.T) {
	s := S("mode", "hybrid")
	i := I("bytes", 4096)
	zero := I("zero", 0)
	if s.Value() != "hybrid" || i.Value() != "4096" || zero.Value() != "0" {
		t.Fatal("field Value rendering wrong")
	}
	if !i.IsInt || s.IsInt {
		t.Fatal("IsInt flags wrong")
	}
	got := FormatFields("transfer", []Field{s, i})
	if got != "transfer mode=hybrid bytes=4096" {
		t.Fatalf("FormatFields = %q", got)
	}
	if FormatFields("bare", nil) != "bare" {
		t.Fatal("FormatFields without fields should return msg unchanged")
	}
	b := AppendFields(nil, []Field{I("n", -7)})
	if string(b) != " n=-7" {
		t.Fatalf("AppendFields = %q", b)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	r.SetClock(&netsim.Clock{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Inc(CMsgsSent)
				r.GaugeAdd(GSyncQueueDepth, 1)
				r.GaugeAdd(GSyncQueueDepth, -1)
				r.ShardDepthAdd(g, 1)
				r.Observe(HApply, time.Duration(i)*time.Microsecond)
				sp := r.StartSpan("acquire", uint32(g), uint64(i))
				sp.Phase(HQueueWait)
				sp.End(HAcquireTotal)
				_ = r.Snapshot()
			}
		}(g)
	}
	wg.Wait()
	if got := r.CounterValue(CMsgsSent); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := r.GaugeValue(GSyncQueueDepth); got != 0 {
		t.Fatalf("gauge drifted to %d", got)
	}
	if got := r.Hist(HAcquireTotal).Count; got != 8*500 {
		t.Fatalf("histogram count = %d, want %d", got, 8*500)
	}
}
