package obs

import (
	"sync/atomic"
	"time"
)

// HistID identifies one fixed-bucket latency histogram. Each protocol
// phase of an operation gets its own histogram, so one acquire decomposes
// into queue-wait → request-RTT → transfer → apply by reading four
// instruments.
type HistID int

const (
	// HAcquireTotal is the whole Lock() round trip.
	HAcquireTotal HistID = iota
	// HQueueWait is the local-gate wait before the request is sent.
	HQueueWait
	// HRequestRTT is request-sent to grant-received.
	HRequestRTT
	// HTransferWait is grant-received to consistent-version-present.
	HTransferWait
	// HApply is the daemon's unmarshal-and-install of arrived payloads.
	HApply
	// HReleaseTotal is the whole Unlock() round trip.
	HReleaseTotal
	// HDisseminate is the release-time UR push fan-out.
	HDisseminate
	// HDaemonPoll is one VERSION poll round trip at the sync thread.
	HDaemonPoll
	// HGrantDeliver is the sync thread's grant send.
	HGrantDeliver
	// HRelayHop is a bucket relay's push-to-aggregated-ack round trip as
	// observed by the releaser.
	HRelayHop
	numHists
)

var histNames = [numHists]string{
	HAcquireTotal: "mocha_acquire_seconds",
	HQueueWait:    "mocha_acquire_queue_wait_seconds",
	HRequestRTT:   "mocha_acquire_request_rtt_seconds",
	HTransferWait: "mocha_acquire_transfer_wait_seconds",
	HApply:        "mocha_apply_seconds",
	HReleaseTotal: "mocha_release_seconds",
	HDisseminate:  "mocha_disseminate_seconds",
	HDaemonPoll:   "mocha_daemon_poll_seconds",
	HGrantDeliver: "mocha_grant_deliver_seconds",
	HRelayHop:     "mocha_relay_hop_seconds",
}

var phaseNames = [numHists]string{
	HAcquireTotal: "acquire",
	HQueueWait:    "queue_wait",
	HRequestRTT:   "request_rtt",
	HTransferWait: "transfer_wait",
	HApply:        "apply",
	HReleaseTotal: "release",
	HDisseminate:  "disseminate",
	HDaemonPoll:   "daemon_poll",
	HGrantDeliver: "grant_deliver",
	HRelayHop:     "relay_hop",
}

// Name returns the histogram's exported name.
func (h HistID) Name() string { return histNames[h] }

// PhaseName returns the short phase label spans tag durations with.
func (h HistID) PhaseName() string { return phaseNames[h] }

// BucketBounds are the shared upper bounds (inclusive) of every latency
// histogram, spanning sub-millisecond native operation up to the paper's
// multi-second WAN transfers; a final implicit +Inf bucket catches the
// rest. Fixed buckets keep observation lock-free: one atomic add.
var BucketBounds = [...]time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2500 * time.Millisecond,
	5 * time.Second,
	10 * time.Second,
	30 * time.Second,
}

// NumBuckets counts the bucket array including the +Inf overflow bucket.
const NumBuckets = len(BucketBounds) + 1

// hist is one lock-free fixed-bucket histogram.
type hist struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [NumBuckets]atomic.Int64
}

// bucketFor maps a duration to its bucket index.
func bucketFor(d time.Duration) int {
	for i, b := range BucketBounds {
		if d <= b {
			return i
		}
	}
	return len(BucketBounds)
}

func (h *hist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.buckets[bucketFor(d)].Add(1)
}

func (h *hist) snapshot() HistSnapshot {
	s := HistSnapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
	}
	if s.Count == 0 {
		return s
	}
	s.Buckets = make([]int64, NumBuckets)
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is one histogram's point-in-time state.
type HistSnapshot struct {
	// Count is the number of observations.
	Count int64 `json:"count"`
	// Sum totals all observations.
	Sum time.Duration `json:"sum_ns"`
	// Buckets holds per-bucket observation counts aligned with
	// BucketBounds plus the final +Inf bucket; nil when Count is 0.
	Buckets []int64 `json:"buckets,omitempty"`
}

// Mean returns the average observation.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns an upper bound on the p-th percentile (0 < p <= 100):
// the bound of the first bucket whose cumulative count reaches the rank.
// Observations past the last bound report the largest bound.
func (s HistSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 || len(s.Buckets) == 0 {
		return 0
	}
	rank := int64(p / 100 * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	if rank > s.Count {
		rank = s.Count
	}
	var cum int64
	for i, c := range s.Buckets {
		cum += c
		if cum >= rank {
			if i < len(BucketBounds) {
				return BucketBounds[i]
			}
			return BucketBounds[len(BucketBounds)-1]
		}
	}
	return BucketBounds[len(BucketBounds)-1]
}
