package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Snapshot is a point-in-time copy of every instrument, safe to inspect,
// serialize, and diff while the registry keeps counting.
type Snapshot struct {
	// Tick is the shared clock's position when the snapshot was taken
	// (0 without a clock), cross-referenceable against history events.
	Tick uint64 `json:"tick"`
	// Counters maps exported counter names to values.
	Counters map[string]int64 `json:"counters"`
	// Gauges maps exported gauge names to values.
	Gauges map[string]int64 `json:"gauges"`
	// ShardDepths maps sync shard index (as text) to queued requests;
	// only nonzero shards appear.
	ShardDepths map[string]int64 `json:"shard_depths,omitempty"`
	// Hists maps exported histogram names to their state.
	Hists map[string]HistSnapshot `json:"hists"`
	// Spans carries the most recent completed operation spans.
	Spans []SpanRecord `json:"spans,omitempty"`
}

// Snapshot copies every instrument. Nil-safe: a nil registry yields the
// zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Tick:     r.now(),
		Counters: make(map[string]int64, int(numCounters)),
		Gauges:   make(map[string]int64, int(numGauges)),
		Hists:    make(map[string]HistSnapshot, int(numHists)),
	}
	for c := Counter(0); c < numCounters; c++ {
		s.Counters[c.Name()] = r.counters[c].Load()
	}
	for g := Gauge(0); g < numGauges; g++ {
		s.Gauges[g.Name()] = r.gauges[g].Load()
	}
	for i := range r.shardDepths {
		if v := r.shardDepths[i].Load(); v != 0 {
			if s.ShardDepths == nil {
				s.ShardDepths = make(map[string]int64)
			}
			s.ShardDepths[strconv.Itoa(i)] = v
		}
	}
	for h := HistID(0); h < numHists; h++ {
		s.Hists[h.Name()] = r.hists[h].snapshot()
	}
	s.Spans = r.Spans()
	return s
}

// WriteJSON emits the snapshot as one JSON object.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WritePrometheus emits the snapshot in the Prometheus text exposition
// format: counters and gauges as single series, histograms as cumulative
// _bucket/_sum/_count series, shard depths as one labeled gauge.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, name := range sortedKeys(s.Counters) {
		p("# TYPE %s counter\n%s %d\n", name, name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		p("# TYPE %s gauge\n%s %d\n", name, name, s.Gauges[name])
	}
	if len(s.ShardDepths) > 0 {
		p("# TYPE mocha_sync_shard_queue_depth gauge\n")
		for _, shard := range sortedKeys(s.ShardDepths) {
			p("mocha_sync_shard_queue_depth{shard=%q} %d\n", shard, s.ShardDepths[shard])
		}
	}
	histNames := make([]string, 0, len(s.Hists))
	for name := range s.Hists {
		histNames = append(histNames, name)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := s.Hists[name]
		p("# TYPE %s histogram\n", name)
		var cum int64
		for i, bound := range BucketBounds {
			if len(h.Buckets) > i {
				cum += h.Buckets[i]
			}
			p("%s_bucket{le=\"%g\"} %d\n", name, bound.Seconds(), cum)
		}
		p("%s_bucket{le=\"+Inf\"} %d\n", name, h.Count)
		p("%s_sum %g\n", name, h.Sum.Seconds())
		p("%s_count %d\n", name, h.Count)
	}
	return err
}

// sortedKeys returns a map's keys in sorted order for stable output.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
