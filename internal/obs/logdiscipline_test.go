package obs

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCoreLogDiscipline is a vet-style check over internal/core: every
// event-log call in the protocol's hot paths must be guarded by an
// enabled check so the disabled plane formats nothing, and no call may
// pre-format with fmt.Sprintf (that defeats lazy formatting even when
// guarded — pass the arguments through instead). The check parses the
// sources, so new unguarded call sites fail CI rather than slipping in as
// silent allocation regressions.
func TestCoreLogDiscipline(t *testing.T) {
	coreDir := filepath.Join("..", "core")
	entries, err := os.ReadDir(coreDir)
	if err != nil {
		t.Fatalf("read core dir: %v", err)
	}
	fset := token.NewFileSet()
	var violations []string
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(coreDir, name)
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		violations = append(violations, checkFile(fset, f)...)
	}
	for _, v := range violations {
		t.Error(v)
	}
}

// checkFile walks one file, tracking whether the current node sits inside
// an if-statement whose condition calls .On() — the guard the event log's
// lazy-formatting contract requires.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var violations []string
	var walk func(n ast.Node, guarded bool)
	walkList := func(list []ast.Stmt, guarded bool) {
		for _, s := range list {
			walk(s, guarded)
		}
	}
	walk = func(n ast.Node, guarded bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.IfStmt:
			g := guarded || condHasOn(n.Cond)
			if n.Init != nil {
				walk(n.Init, guarded)
			}
			walkList(n.Body.List, g)
			if n.Else != nil {
				walk(n.Else, guarded)
			}
			return
		case *ast.BlockStmt:
			walkList(n.List, guarded)
			return
		}
		ast.Inspect(n, func(c ast.Node) bool {
			switch c := c.(type) {
			case *ast.IfStmt, *ast.BlockStmt:
				walk(c.(ast.Node), guarded)
				return false
			case *ast.CallExpr:
				if name, isLog := logCall(c); isLog {
					pos := fset.Position(c.Pos())
					if !guarded {
						violations = append(violations, fmt.Sprintf(
							"%s:%d: %s call not guarded by a .On() check", pos.Filename, pos.Line, name))
					}
					for _, arg := range c.Args {
						if callsSprintf(arg) {
							violations = append(violations, fmt.Sprintf(
								"%s:%d: fmt.Sprintf inside %s defeats lazy formatting; pass the values as arguments",
								pos.Filename, pos.Line, name))
						}
					}
				}
			}
			return true
		})
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Body != nil {
			walk(fn.Body, false)
		}
	}
	return violations
}

// logCall reports whether a call is <expr>.log.Logf(...) / <expr>.log.Log(...)
// or Log().Logf(...) — the event-log emission methods.
func logCall(c *ast.CallExpr) (string, bool) {
	sel, ok := c.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	method := sel.Sel.Name
	if method != "Logf" && method != "Log" {
		return "", false
	}
	// The receiver must be an event-log value: a field or call named
	// "log"/"Log" (node.log, rl.node.log, node.Log()).
	switch recv := sel.X.(type) {
	case *ast.SelectorExpr:
		if recv.Sel.Name == "log" {
			return method, true
		}
	case *ast.CallExpr:
		if rs, ok := recv.Fun.(*ast.SelectorExpr); ok && rs.Sel.Name == "Log" {
			return method, true
		}
	}
	return "", false
}

// condHasOn reports whether an if condition contains a .On() call.
func condHasOn(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if sel, ok := c.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "On" {
				found = true
			}
		}
		return !found
	})
	return found
}

// callsSprintf reports whether an expression contains fmt.Sprintf.
func callsSprintf(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			if sel, ok := c.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && id.Name == "fmt" && sel.Sel.Name == "Sprintf" {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
