// Package obs is Mocha's observability plane: one lock-free metrics
// registry shared by every layer (mnet, transport, core, runtime), with
// named instruments for each protocol phase, per-operation spans tagged
// with (site, lock, version), and the structured-field vocabulary the
// typed event log records in.
//
// The package sits below everything that emits telemetry: it imports only
// netsim (for the shared simulation clock) and the standard library, so
// wire, mnet, transport, core, and eventlog can all depend on it without
// cycles. Every method is nil-safe — a nil *Registry is the disabled
// plane and costs one predictable branch per call site — so callers
// thread the registry through unconditionally.
package obs

import (
	"sync/atomic"
	"time"

	"mocha/internal/netsim"
)

// Counter identifies one monotonic counter instrument.
type Counter int

// Counter instruments, one per protocol event the paper's evaluation
// section (and the PR-1..PR-4 ablations) attribute cost to.
const (
	// CAcquireRequests counts ACQUIRELOCK requests sent by local threads.
	CAcquireRequests Counter = iota
	// CGrants counts GRANTs delivered by the synchronization thread.
	CGrants
	// CReleases counts RELEASELOCK messages sent by releasing holders.
	CReleases
	// CLeaseBreaks counts locks broken by lease expiry (dead holders).
	CLeaseBreaks
	// CBans counts sites banned after a broken lock.
	CBans
	// CDaemonPolls counts VERSION polls the synchronization thread sends.
	CDaemonPolls
	// CPushes counts release-time dissemination pushes attempted.
	CPushes
	// CPushAcks counts PUSHACKs received by releasing holders.
	CPushAcks
	// CTransfersFull counts replica sends that shipped the full copy.
	CTransfersFull
	// CTransfersDelta counts replica sends that shipped a delta.
	CTransfersDelta
	// CDeltaFallbacks counts deltas rejected and retried as full copies.
	CDeltaFallbacks
	// CTransfersHybrid counts replica sends over the hybrid TCP stream.
	CTransfersHybrid
	// CTransfersMNet counts replica sends over the MNet message path.
	CTransfersMNet
	// CTransferBytes totals replica payload bytes sent by this plane.
	CTransferBytes
	// CApplies counts replica payload sets applied by the daemon.
	CApplies
	// CStreamDials counts hybrid stream connections dialed.
	CStreamDials
	// CStreamAccepts counts hybrid stream connections accepted.
	CStreamAccepts
	// CStreamBytesOut totals bytes written to hybrid streams.
	CStreamBytesOut
	// CStreamBytesIn totals bytes read from hybrid streams.
	CStreamBytesIn
	// CMsgsSent counts MNet messages sent.
	CMsgsSent
	// CMsgsDelivered counts MNet messages delivered to handlers.
	CMsgsDelivered
	// CRetransmits counts MNet fragment retransmissions.
	CRetransmits
	// CSendFailures counts MNet sends that exhausted retries.
	CSendFailures
	// CQueueDrops counts MNet inbound messages dropped on full queues.
	CQueueDrops
	// CSendBatches counts per-peer transmit flushes (a flush of one
	// packet still counts, so batch size = packets / batches is honest).
	CSendBatches
	// CSendBatchPkts totals packets moved by transmit flushes.
	CSendBatchPkts
	// CFlushDrops counts outbound packets dropped on a full flush queue;
	// retransmission recovers them.
	CFlushDrops
	// CRelayPushes counts RelayPush frames sent to bucket relays by
	// releasers disseminating through the locality overlay.
	CRelayPushes
	// CRelayAcks counts aggregated RelayAck frames received by releasers.
	CRelayAcks
	// CRelayFanout counts local re-fan pushes performed by bucket relays
	// on behalf of an origin.
	CRelayFanout
	// CRelayFallbacks counts buckets (or bucket members) routed around
	// with direct pushes after a relay failed, timed out, or missed
	// members.
	CRelayFallbacks
	// CHomeMigrations counts locks whose home moved to another manager
	// site because of observed access locality (completed handoffs,
	// counted at the old home).
	CHomeMigrations
	// CHandoffsOut counts HandoffRecord frames shipped by old homes
	// (attempts; CHomeMigrations counts the acked subset).
	CHandoffsOut
	// CHandoffsIn counts lock records installed from a HandoffRecord.
	CHandoffsIn
	// CStandbyUpdates counts lock-record deltas streamed to the ring
	// successor standby.
	CStandbyUpdates
	// CStandbyPromotions counts lock records promoted from standby
	// shadows after a home crash.
	CStandbyPromotions
	// CHomeRedirects counts NackNotHome redirects sent to requesters
	// that routed a lock request to a stale home.
	CHomeRedirects
	numCounters
)

// counterNames are the exported instrument names (Prometheus style).
var counterNames = [numCounters]string{
	CAcquireRequests:   "mocha_acquire_requests_total",
	CGrants:            "mocha_grants_total",
	CReleases:          "mocha_releases_total",
	CLeaseBreaks:       "mocha_lease_breaks_total",
	CBans:              "mocha_bans_total",
	CDaemonPolls:       "mocha_daemon_polls_total",
	CPushes:            "mocha_pushes_total",
	CPushAcks:          "mocha_push_acks_total",
	CTransfersFull:     "mocha_transfers_full_total",
	CTransfersDelta:    "mocha_transfers_delta_total",
	CDeltaFallbacks:    "mocha_delta_fallbacks_total",
	CTransfersHybrid:   "mocha_transfers_hybrid_total",
	CTransfersMNet:     "mocha_transfers_mnet_total",
	CTransferBytes:     "mocha_transfer_bytes_total",
	CApplies:           "mocha_applies_total",
	CStreamDials:       "mocha_stream_dials_total",
	CStreamAccepts:     "mocha_stream_accepts_total",
	CStreamBytesOut:    "mocha_stream_bytes_out_total",
	CStreamBytesIn:     "mocha_stream_bytes_in_total",
	CMsgsSent:          "mocha_mnet_messages_sent_total",
	CMsgsDelivered:     "mocha_mnet_messages_delivered_total",
	CRetransmits:       "mocha_mnet_retransmits_total",
	CSendFailures:      "mocha_mnet_send_failures_total",
	CQueueDrops:        "mocha_mnet_queue_drops_total",
	CSendBatches:       "mocha_mnet_send_batches_total",
	CSendBatchPkts:     "mocha_mnet_send_batch_packets_total",
	CFlushDrops:        "mocha_mnet_flush_drops_total",
	CRelayPushes:       "mocha_relay_pushes_total",
	CRelayAcks:         "mocha_relay_acks_total",
	CRelayFanout:       "mocha_relay_fanout_total",
	CRelayFallbacks:    "mocha_relay_fallbacks_total",
	CHomeMigrations:    "mocha_home_migrations_total",
	CHandoffsOut:       "mocha_home_handoffs_out_total",
	CHandoffsIn:        "mocha_home_handoffs_in_total",
	CStandbyUpdates:    "mocha_standby_updates_total",
	CStandbyPromotions: "mocha_standby_promotions_total",
	CHomeRedirects:     "mocha_home_redirects_total",
}

// Name returns the counter's exported name.
func (c Counter) Name() string { return counterNames[c] }

// Gauge identifies one point-in-time gauge instrument.
type Gauge int

const (
	// GSyncQueueDepth is the total number of acquire requests queued
	// across every sync shard.
	GSyncQueueDepth Gauge = iota
	// GSyncLocks is the number of lock records the synchronization
	// thread currently manages.
	GSyncLocks
	// GWheelTimers is the number of timers armed on the retransmit
	// timer wheel (sampled by the endpoint's gap-sweep job).
	GWheelTimers
	// GFlushQueue is the number of outbound packets waiting in the
	// endpoint's transmit flush queue.
	GFlushQueue
	// GRelayBuckets is the number of locality buckets the dissemination
	// overlay's most recent plan grouped the sharers into.
	GRelayBuckets
	numGauges
)

var gaugeNames = [numGauges]string{
	GSyncQueueDepth: "mocha_sync_queue_depth",
	GSyncLocks:      "mocha_sync_locks",
	GWheelTimers:    "mocha_timer_wheel_timers",
	GFlushQueue:     "mocha_mnet_flush_queue",
	GRelayBuckets:   "mocha_relay_buckets",
}

// Name returns the gauge's exported name.
func (g Gauge) Name() string { return gaugeNames[g] }

// NumShardDepths bounds the per-shard queue-depth gauge array. Shards
// beyond it fold onto earlier slots, which only blurs attribution.
const NumShardDepths = 64

// NumRelayScores bounds the per-site relay-quality gauge array. Sites
// beyond it fold onto earlier slots, which only blurs attribution.
const NumRelayScores = 64

// NumHomeLocks bounds the per-home lock-count gauge array. Manager sites
// beyond it fold onto earlier slots, which only blurs attribution.
const NumHomeLocks = 64

// Registry is the lock-free instrument store. All mutating methods are
// safe for any number of concurrent writers — every instrument is an
// atomic — and all are no-ops on a nil receiver, which is the disabled
// plane. Construct with NewRegistry.
type Registry struct {
	clock atomic.Pointer[netsim.Clock]

	counters    [numCounters]atomic.Int64
	gauges      [numGauges]atomic.Int64
	shardDepths [NumShardDepths]atomic.Int64
	relayScores [NumRelayScores]atomic.Int64
	homeLocks   [NumHomeLocks]atomic.Int64
	hists       [numHists]hist

	spanHead atomic.Uint64
	spans    [spanRingSize]atomic.Pointer[SpanRecord]
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// SetClock shares a simulation clock with the registry so span ticks and
// snapshot ticks land on the same monotonic axis as check.Recorder
// history events (cross-referenceable by seed). Nil-safe; call before
// traffic starts.
func (r *Registry) SetClock(c *netsim.Clock) {
	if r == nil || c == nil {
		return
	}
	r.clock.Store(c)
}

// tick advances and returns the shared clock, or 0 without one.
func (r *Registry) tick() uint64 {
	if c := r.clock.Load(); c != nil {
		return c.Tick()
	}
	return 0
}

// now reads the shared clock without advancing it.
func (r *Registry) now() uint64 {
	if r == nil {
		return 0
	}
	if c := r.clock.Load(); c != nil {
		return c.Now()
	}
	return 0
}

// Inc adds one to a counter.
func (r *Registry) Inc(c Counter) { r.Add(c, 1) }

// Add adds n to a counter.
func (r *Registry) Add(c Counter, n int64) {
	if r == nil {
		return
	}
	r.counters[c].Add(n)
}

// CounterValue reads a counter (0 on a nil registry).
func (r *Registry) CounterValue(c Counter) int64 {
	if r == nil {
		return 0
	}
	return r.counters[c].Load()
}

// GaugeAdd moves a gauge by delta (negative to decrement).
func (r *Registry) GaugeAdd(g Gauge, delta int64) {
	if r == nil {
		return
	}
	r.gauges[g].Add(delta)
}

// GaugeSet overwrites a gauge.
func (r *Registry) GaugeSet(g Gauge, v int64) {
	if r == nil {
		return
	}
	r.gauges[g].Store(v)
}

// GaugeValue reads a gauge (0 on a nil registry).
func (r *Registry) GaugeValue(g Gauge) int64 {
	if r == nil {
		return 0
	}
	return r.gauges[g].Load()
}

// ShardDepthAdd moves one sync shard's queue-depth gauge.
func (r *Registry) ShardDepthAdd(shard int, delta int64) {
	if r == nil {
		return
	}
	if shard < 0 {
		shard = -shard
	}
	r.shardDepths[shard%NumShardDepths].Add(delta)
}

// RelayScoreSet publishes one site's dissemination-relay quality score in
// milli-units (1000 = perfect).
func (r *Registry) RelayScoreSet(site uint32, milli int64) {
	if r == nil {
		return
	}
	r.relayScores[site%NumRelayScores].Store(milli)
}

// RelayScoreValue reads one site's published relay score (0 on a nil
// registry or a never-scored site).
func (r *Registry) RelayScoreValue(site uint32) int64 {
	if r == nil {
		return 0
	}
	return r.relayScores[site%NumRelayScores].Load()
}

// HomeLockAdd moves one manager site's lock-count gauge: the number of
// lock records it currently homes under consistent-hash placement.
func (r *Registry) HomeLockAdd(site uint32, delta int64) {
	if r == nil {
		return
	}
	r.homeLocks[site%NumHomeLocks].Add(delta)
}

// HomeLockValue reads one manager site's homed-lock count (0 on a nil
// registry).
func (r *Registry) HomeLockValue(site uint32) int64 {
	if r == nil {
		return 0
	}
	return r.homeLocks[site%NumHomeLocks].Load()
}

// Observe records one duration into a latency histogram.
func (r *Registry) Observe(h HistID, d time.Duration) {
	if r == nil {
		return
	}
	r.hists[h].observe(d)
}

// Hist snapshots one histogram (zero-valued on a nil registry).
func (r *Registry) Hist(h HistID) HistSnapshot {
	if r == nil {
		return HistSnapshot{}
	}
	return r.hists[h].snapshot()
}
