package transport

import (
	"time"

	"mocha/internal/obs"
)

// Instrument wraps a Stack so every hybrid-protocol stream dial, accept,
// and byte moved is counted in the observability plane. The wrapper is
// transparent: addresses, deadlines, and close semantics pass through
// unchanged. A nil registry returns the stack unwrapped.
func Instrument(s Stack, m *obs.Registry) Stack {
	if s == nil || m == nil {
		return s
	}
	return &instrumentedStack{Stack: s, m: m}
}

type instrumentedStack struct {
	Stack
	m *obs.Registry
}

func (s *instrumentedStack) ListenStream() (Listener, error) {
	l, err := s.Stack.ListenStream()
	if err != nil {
		return nil, err
	}
	return &instrumentedListener{Listener: l, m: s.m}, nil
}

func (s *instrumentedStack) DialStream(addr string) (Conn, error) {
	c, err := s.Stack.DialStream(addr)
	if err != nil {
		return nil, err
	}
	s.m.Inc(obs.CStreamDials)
	return &instrumentedConn{Conn: c, m: s.m}, nil
}

type instrumentedListener struct {
	Listener
	m *obs.Registry
}

func (l *instrumentedListener) Accept() (Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.m.Inc(obs.CStreamAccepts)
	return &instrumentedConn{Conn: c, m: l.m}, nil
}

type instrumentedConn struct {
	Conn
	m *obs.Registry
}

func (c *instrumentedConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if n > 0 {
		c.m.Add(obs.CStreamBytesIn, int64(n))
	}
	return n, err
}

func (c *instrumentedConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	if n > 0 {
		c.m.Add(obs.CStreamBytesOut, int64(n))
	}
	return n, err
}

func (c *instrumentedConn) SetReadDeadline(t time.Time) error {
	return c.Conn.SetReadDeadline(t)
}
