//go:build linux && arm64

package transport

// recvmmsg(2)/sendmmsg(2) numbers for linux/arm64 (generic 64-bit table).
const (
	sysRecvmmsg uintptr = 243
	sysSendmmsg uintptr = 269
)
