//go:build !linux || (!amd64 && !arm64)

package transport

import "net/netip"

// batchState is empty on platforms without batched socket I/O; the batch
// operations degrade to one packet per system call.
type batchState struct{}

// initBatch is a no-op without batch I/O.
func (d *udpDatagram) initBatch() error { return nil }

// recvBatch receives one datagram, blocking until it arrives.
func (d *udpDatagram) recvBatch(bufs [][]byte, sizes []int, addrs []netip.AddrPort) (int, error) {
	n, ap, err := d.conn.ReadFromUDPAddrPort(bufs[0])
	if err != nil {
		return 0, err
	}
	sizes[0] = n
	addrs[0] = ap
	return 1, nil
}

// sendBatch writes the packets one at a time.
func (d *udpDatagram) sendBatch(to netip.AddrPort, pkts [][]byte) (int, error) {
	for i, pkt := range pkts {
		if _, err := d.conn.WriteToUDPAddrPort(pkt, to); err != nil {
			return i, err
		}
	}
	return len(pkts), nil
}
