package transport

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"mocha/internal/netsim"
)

// Packet tags multiplexing datagram and stream traffic over one simulated
// node endpoint.
const (
	tagDatagram byte = 1
	tagStream   byte = 2
)

// simMTU matches a typical Ethernet-minus-headers payload, the unit the
// paper's library fragments messages into.
const simMTU = 1400

// SimNetwork owns a netsim network and hands out one Stack per site.
type SimNetwork struct {
	net *netsim.Network

	mu     sync.Mutex
	stacks map[netsim.NodeID]*SimStack
}

// NewSimNetwork creates a simulated network with the given configuration.
func NewSimNetwork(cfg netsim.Config) *SimNetwork {
	return &SimNetwork{
		net:    netsim.New(cfg),
		stacks: make(map[netsim.NodeID]*SimStack),
	}
}

// Underlying exposes the netsim network for fault injection (partitions,
// node kills, link overrides) and statistics.
func (sn *SimNetwork) Underlying() *netsim.Network { return sn.net }

// Clock exposes the network's shared logical clock for history recording.
func (sn *SimNetwork) Clock() *netsim.Clock { return sn.net.Clock() }

// NewStack creates the communication stack for one simulated site.
func (sn *SimNetwork) NewStack(id netsim.NodeID) (*SimStack, error) {
	node, err := sn.net.AddNode(id)
	if err != nil {
		return nil, fmt.Errorf("transport: add sim node: %w", err)
	}
	s := &SimStack{
		sim:       sn,
		node:      node,
		addr:      strconv.FormatUint(uint64(id), 10),
		listeners: make(map[uint32]*simListener),
		conns:     make(map[uint32]*simConn),
	}
	s.dg = &simDatagram{stack: s}
	node.SetReceiver(s.receive)
	sn.mu.Lock()
	sn.stacks[id] = s
	sn.mu.Unlock()
	return s, nil
}

// Kill silences a site's node, modelling a fail-stop site crash.
func (sn *SimNetwork) Kill(id netsim.NodeID) {
	if node := sn.net.Node(id); node != nil {
		node.Kill()
	}
}

// Restart models the machine at id rebooting at the same address: the old
// stack (whose process died with the machine) is closed and detached, the
// node revived, and a fresh stack installed for the restarted process.
// Directory entries pointing at the address stay valid across the reboot.
func (sn *SimNetwork) Restart(id netsim.NodeID) (*SimStack, error) {
	node := sn.net.Node(id)
	if node == nil {
		return nil, fmt.Errorf("transport: restart of unknown sim node %d", id)
	}
	sn.mu.Lock()
	old := sn.stacks[id]
	delete(sn.stacks, id)
	sn.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	s := &SimStack{
		sim:       sn,
		node:      node,
		addr:      strconv.FormatUint(uint64(id), 10),
		listeners: make(map[uint32]*simListener),
		conns:     make(map[uint32]*simConn),
	}
	s.dg = &simDatagram{stack: s}
	node.SetReceiver(s.receive)
	node.Revive()
	sn.mu.Lock()
	sn.stacks[id] = s
	sn.mu.Unlock()
	return s, nil
}

// Close shuts the whole simulated network down.
func (sn *SimNetwork) Close() error {
	sn.mu.Lock()
	stacks := make([]*SimStack, 0, len(sn.stacks))
	for _, s := range sn.stacks {
		stacks = append(stacks, s)
	}
	sn.mu.Unlock()
	for _, s := range stacks {
		_ = s.Close()
	}
	sn.net.Close()
	return nil
}

// SimStack is one site's endpoints on a simulated network.
type SimStack struct {
	sim  *SimNetwork
	node *netsim.Node
	addr string
	dg   *simDatagram

	mu         sync.Mutex
	closed     bool
	handler    Handler
	nextListen uint32
	nextConn   uint32
	listeners  map[uint32]*simListener
	conns      map[uint32]*simConn
}

var _ Stack = (*SimStack)(nil)

// Datagram implements Stack.
func (s *SimStack) Datagram() Datagram { return s.dg }

// Close implements Stack.
func (s *SimStack) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	listeners := make([]*simListener, 0, len(s.listeners))
	for _, l := range s.listeners {
		listeners = append(listeners, l)
	}
	conns := make([]*simConn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, l := range listeners {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	return nil
}

// receive dispatches an arriving simulated packet by tag.
func (s *SimStack) receive(from netsim.NodeID, pkt []byte) {
	if len(pkt) == 0 {
		return
	}
	switch pkt[0] {
	case tagDatagram:
		s.mu.Lock()
		h := s.handler
		closed := s.closed
		s.mu.Unlock()
		if h != nil && !closed {
			h(strconv.FormatUint(uint64(from), 10), pkt[1:])
		}
	case tagStream:
		s.handleStream(from, pkt[1:])
	}
}

// send transmits a tagged packet to another simulated site. The tagged
// frame is built in a pooled buffer: netsim copies it before queueing, so
// it goes straight back.
func (s *SimStack) send(to netsim.NodeID, tag byte, payload []byte) {
	bp := netsim.GetBuf(len(payload) + 1)
	(*bp)[0] = tag
	copy((*bp)[1:], payload)
	s.node.Send(to, *bp)
	netsim.PutBuf(bp)
}

// simDatagram is the datagram face of a SimStack.
type simDatagram struct {
	stack *SimStack
}

var _ Datagram = (*simDatagram)(nil)

// LocalAddr implements Datagram.
func (d *simDatagram) LocalAddr() string { return d.stack.addr }

// MTU implements Datagram.
func (d *simDatagram) MTU() int { return simMTU }

// SetHandler implements Datagram.
func (d *simDatagram) SetHandler(h Handler) {
	d.stack.mu.Lock()
	defer d.stack.mu.Unlock()
	d.stack.handler = h
}

// Send implements Datagram.
func (d *simDatagram) Send(to string, pkt []byte) error {
	d.stack.mu.Lock()
	closed := d.stack.closed
	d.stack.mu.Unlock()
	if closed {
		return ErrClosed
	}
	if len(pkt) > simMTU {
		return fmt.Errorf("transport: packet of %d bytes exceeds MTU %d", len(pkt), simMTU)
	}
	id, err := parseSimNode(to)
	if err != nil {
		return err
	}
	d.stack.send(id, tagDatagram, pkt)
	return nil
}

// SendBatch implements BatchSender: the whole batch is tagged into pooled
// frames and routed under a single acquisition of the simulated network's
// routing lock via netsim's batched send.
func (d *simDatagram) SendBatch(to string, pkts [][]byte) error {
	d.stack.mu.Lock()
	closed := d.stack.closed
	d.stack.mu.Unlock()
	if closed {
		return ErrClosed
	}
	for _, pkt := range pkts {
		if len(pkt) > simMTU {
			return fmt.Errorf("transport: packet of %d bytes exceeds MTU %d", len(pkt), simMTU)
		}
	}
	id, err := parseSimNode(to)
	if err != nil {
		return err
	}
	tagged := make([][]byte, len(pkts))
	bufs := make([]*[]byte, len(pkts))
	for i, pkt := range pkts {
		bp := netsim.GetBuf(len(pkt) + 1)
		(*bp)[0] = tagDatagram
		copy((*bp)[1:], pkt)
		bufs[i] = bp
		tagged[i] = *bp
	}
	d.stack.node.SendBatch(id, tagged)
	for _, bp := range bufs {
		netsim.PutBuf(bp)
	}
	return nil
}

// Close implements Datagram. Closing the datagram closes the whole stack,
// mirroring a site-manager shutdown.
func (d *simDatagram) Close() error { return d.stack.Close() }

// parseSimNode converts a simulated address ("7") to a node ID.
func parseSimNode(addr string) (netsim.NodeID, error) {
	// Stream addresses look like "7#3"; accept both forms.
	if i := strings.IndexByte(addr, '#'); i >= 0 {
		addr = addr[:i]
	}
	v, err := strconv.ParseUint(addr, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("transport: bad sim address %q: %w", addr, err)
	}
	return netsim.NodeID(v), nil
}
