// Package transport abstracts the two communication channels Mocha uses:
// an unreliable datagram service that the Mocha network object library
// (package mnet) builds reliable sequenced messaging on, and a TCP-style
// stream service that the hybrid protocol moves bulk replica data over.
//
// Two bindings are provided. The simulated binding runs any number of
// sites in one process over a netsim network, giving experiments the
// paper's LAN/WAN timing on a single machine. The real binding uses UDP
// and TCP sockets for actual multi-host deployment via cmd/mochad.
// Addresses are opaque strings owned by the binding.
package transport

import (
	"errors"
	"io"
	"time"
)

// Handler consumes datagrams as they arrive. Handlers run on the
// transport's delivery goroutines and must not block for long. The packet
// buffer is reused for the next receive once the handler returns: handlers
// must copy any bytes they retain.
type Handler func(from string, pkt []byte)

// Datagram is an unreliable, unordered packet service — the substrate the
// paper's network library assumes. Packets may be dropped, duplicated by
// retransmission layers above, or reordered; they are never corrupted.
type Datagram interface {
	// LocalAddr returns the address peers use to reach this endpoint.
	LocalAddr() string
	// Send transmits one packet. nil error means the packet was accepted
	// for (unreliable) delivery, not that it arrived.
	Send(to string, pkt []byte) error
	// SetHandler installs the receive callback. Must be called before
	// packets are expected; packets arriving earlier are dropped.
	SetHandler(h Handler)
	// MTU returns the largest payload Send accepts; larger messages must
	// be fragmented by the caller (that is mnet's job).
	MTU() int
	// Close releases the endpoint.
	Close() error
}

// BatchSender is optionally implemented by Datagram endpoints that can
// hand several packets to the network in one operation — one routing-lock
// acquisition on the simulated binding, one sendmmsg system call on the
// real one. Semantics match calling Send per packet: the buffers belong to
// the caller again when SendBatch returns, and a nil error means the
// packets were accepted for unreliable delivery, not that they arrived.
type BatchSender interface {
	SendBatch(to string, pkts [][]byte) error
}

// Conn is a reliable byte stream (the TCP role in the hybrid protocol).
type Conn interface {
	io.Reader
	io.Writer
	io.Closer
	// SetReadDeadline bounds future Reads; a zero time removes the bound.
	SetReadDeadline(t time.Time) error
}

// Listener accepts incoming streams.
type Listener interface {
	// Accept blocks until a stream arrives or the listener closes.
	Accept() (Conn, error)
	// Addr returns the address to dial, suitable for propagation to the
	// remote side over MNet (the paper's "propagating TCP port numbers").
	Addr() string
	// Close stops accepting; blocked Accepts return ErrClosed.
	Close() error
}

// Stack bundles one site's endpoints: a single datagram endpoint that mnet
// multiplexes all logical traffic onto, plus on-demand stream listeners.
type Stack interface {
	Datagram() Datagram
	// ListenStream opens a new stream listener on this site.
	ListenStream() (Listener, error)
	// DialStream connects to a listener address on another site.
	DialStream(addr string) (Conn, error)
	// Close releases every endpoint of the stack.
	Close() error
}

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// ErrTimeout is returned when a deadline or dial timeout expires. It
// matches errors.Is checks against itself only; callers treat it as a
// retryable failure signal.
var ErrTimeout = errors.New("transport: timeout")
