package transport

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"mocha/internal/netsim"
)

// TestRealUDPBatchLoopback sends a batch over real sockets (sendmmsg on
// Linux, the portable loop elsewhere) and checks every packet arrives
// intact.
func TestRealUDPBatchLoopback(t *testing.T) {
	a, err := NewRealStack("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewRealStack("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	const n = 20
	got := make(chan string, n)
	b.Datagram().SetHandler(func(from string, pkt []byte) { got <- string(pkt) })

	pkts := make([][]byte, n)
	for i := range pkts {
		pkts[i] = []byte{'p', byte('0' + i%10)}
	}
	bs, ok := a.Datagram().(BatchSender)
	if !ok {
		t.Fatal("real datagram does not implement BatchSender")
	}
	if err := bs.SendBatch(b.Datagram().LocalAddr(), pkts); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for i := 0; i < n; i++ {
		select {
		case s := <-got:
			seen[s]++
		case <-time.After(2 * time.Second):
			t.Fatalf("received %d/%d batched packets", i, n)
		}
	}
	for i := 0; i < 10; i++ {
		want := 2
		if got := seen[string([]byte{'p', byte('0' + i)})]; got != want {
			t.Fatalf("payload p%d seen %d times, want %d (%v)", i, got, want, seen)
		}
	}
}

// TestRealUDPBatchOversized checks the MTU guard covers batch sends.
func TestRealUDPBatchOversized(t *testing.T) {
	a, err := NewRealStack("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	bs := a.Datagram().(BatchSender)
	err = bs.SendBatch(a.Datagram().LocalAddr(), [][]byte{{1}, make([]byte, realMTU+1)})
	if err == nil {
		t.Fatal("oversized packet accepted in batch")
	}
}

// TestSimDatagramSendBatch routes a batch through the simulated network
// under one routing-lock acquisition and checks per-packet delivery.
func TestSimDatagramSendBatch(t *testing.T) {
	sn := NewSimNetwork(netsim.Config{Profile: netsim.Perfect(), Seed: 3})
	t.Cleanup(func() { _ = sn.Close() })
	a, err := sn.NewStack(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sn.NewStack(2)
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var got []string
	b.Datagram().SetHandler(func(from string, pkt []byte) {
		mu.Lock()
		got = append(got, string(pkt))
		mu.Unlock()
	})
	bs := a.Datagram().(BatchSender)
	if err := bs.SendBatch("2", [][]byte{[]byte("one"), []byte("two"), []byte("three")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		n := len(got)
		mu.Unlock()
		if n == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("delivered %d/3", n)
		}
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"one", "two", "three"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch delivered %v, want %v", got, want)
		}
	}
}

// TestRealUDPDeliverAllocs pins the steady-state receive path: once the
// source-address string is cached, handing a received packet to the
// handler performs zero allocations. This is the regression gate for the
// fixed receive ring — the old loop allocated a fresh buffer (and
// formatted the source address) per packet.
func TestRealUDPDeliverAllocs(t *testing.T) {
	a, err := NewRealStack("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	d := a.dg
	var count int
	d.SetHandler(func(from string, pkt []byte) { count += len(pkt) })

	from := netip.MustParseAddrPort("127.0.0.1:4242")
	pkt := make([]byte, 64)
	d.deliver(from, pkt) // warm the address cache
	allocs := testing.AllocsPerRun(200, func() {
		d.deliver(from, pkt)
	})
	if allocs != 0 {
		t.Fatalf("deliver allocates %.1f per packet, want 0", allocs)
	}
}
