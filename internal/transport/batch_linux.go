//go:build linux && (amd64 || arm64)

// Batched UDP I/O via recvmmsg(2)/sendmmsg(2). The standard library issues
// one system call per datagram; at the packet rates the load harness drives
// (every lock operation is at least two fragments and two acks), syscall
// entry/exit dominates the real transport's CPU. These wrappers move up to
// a full batch per crossing, using the raw syscall interface directly so
// the repository keeps its zero-dependency build. MSG_DONTWAIT plus
// RawConn.Read/Write keeps the socket inside the Go runtime poller, so
// blocked receives park the goroutine instead of a thread.
package transport

import (
	"net"
	"net/netip"
	"sync"
	"syscall"
	"unsafe"
)

// mmsghdr mirrors struct mmsghdr for linux/amd64 and linux/arm64 (both
// 64-bit ABIs: 8-byte alignment puts 4 bytes of padding after msg_len).
type mmsghdr struct {
	hdr syscall.Msghdr
	len uint32
	_   [4]byte
}

// batchState holds the reusable scatter-gather arrays for one direction of
// batched I/O. The receive side is owned by the readLoop goroutine, the
// send side is guarded by sendMu: sendmmsg itself is atomic per call, but
// the header arrays must not be rebuilt concurrently.
type batchState struct {
	raw    syscall.RawConn
	family uint16 // AF_INET or AF_INET6, fixed by the bound socket

	rhdrs  []mmsghdr
	riovs  []syscall.Iovec
	rnames []syscall.RawSockaddrInet6

	sendMu sync.Mutex
	shdrs  []mmsghdr
	siovs  []syscall.Iovec
}

// initBatch captures the raw connection and the socket family.
func (d *udpDatagram) initBatch() error {
	raw, err := d.conn.SyscallConn()
	if err != nil {
		return err
	}
	d.batch.raw = raw
	d.batch.family = syscall.AF_INET6
	if la, ok := d.conn.LocalAddr().(*net.UDPAddr); ok && la.IP.To4() != nil {
		d.batch.family = syscall.AF_INET
	}
	return nil
}

// recvBatch drains up to len(bufs) datagrams in one recvmmsg call,
// blocking (via the runtime poller) until at least one arrives. It fills
// sizes[i] and addrs[i] for each received packet and returns the count.
func (d *udpDatagram) recvBatch(bufs [][]byte, sizes []int, addrs []netip.AddrPort) (int, error) {
	st := &d.batch
	if len(st.rhdrs) < len(bufs) {
		st.rhdrs = make([]mmsghdr, len(bufs))
		st.riovs = make([]syscall.Iovec, len(bufs))
		st.rnames = make([]syscall.RawSockaddrInet6, len(bufs))
	}
	for i := range bufs {
		st.riovs[i] = syscall.Iovec{Base: &bufs[i][0], Len: uint64(len(bufs[i]))}
		st.rhdrs[i] = mmsghdr{hdr: syscall.Msghdr{
			Name:    (*byte)(unsafe.Pointer(&st.rnames[i])),
			Namelen: uint32(unsafe.Sizeof(st.rnames[i])),
			Iov:     &st.riovs[i],
			Iovlen:  1,
		}}
	}
	var n int
	var opErr error
	err := st.raw.Read(func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall6(sysRecvmmsg,
			fd,
			uintptr(unsafe.Pointer(&st.rhdrs[0])),
			uintptr(len(bufs)),
			uintptr(syscall.MSG_DONTWAIT),
			0, 0)
		switch errno {
		case 0:
			n = int(r1)
			return true
		case syscall.EAGAIN:
			return false // park on the poller until readable
		case syscall.EINTR:
			return false
		default:
			opErr = errno
			return true
		}
	})
	if err != nil {
		return 0, err
	}
	if opErr != nil {
		return 0, opErr
	}
	for i := 0; i < n; i++ {
		sizes[i] = int(st.rhdrs[i].len)
		addrs[i] = sockaddrToAddrPort(&st.rnames[i])
	}
	return n, nil
}

// sendBatch transmits up to len(pkts) packets to one destination in a
// single sendmmsg call, returning how many the kernel accepted; the caller
// loops on partial sends.
func (d *udpDatagram) sendBatch(to netip.AddrPort, pkts [][]byte) (int, error) {
	st := &d.batch
	st.sendMu.Lock()
	defer st.sendMu.Unlock()
	if len(st.shdrs) < len(pkts) {
		st.shdrs = make([]mmsghdr, len(pkts))
		st.siovs = make([]syscall.Iovec, len(pkts))
	}

	// One sockaddr for the whole batch, in the bound socket's family.
	var sa4 syscall.RawSockaddrInet4
	var sa6 syscall.RawSockaddrInet6
	var name *byte
	var namelen uint32
	if st.family == syscall.AF_INET {
		a := to.Addr().Unmap()
		if !a.Is4() {
			return 0, syscall.EAFNOSUPPORT
		}
		sa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Addr: a.As4()}
		putSockPort((*[2]byte)(unsafe.Pointer(&sa4.Port)), to.Port())
		name = (*byte)(unsafe.Pointer(&sa4))
		namelen = uint32(unsafe.Sizeof(sa4))
	} else {
		sa6 = syscall.RawSockaddrInet6{Family: syscall.AF_INET6, Addr: to.Addr().As16()}
		putSockPort((*[2]byte)(unsafe.Pointer(&sa6.Port)), to.Port())
		name = (*byte)(unsafe.Pointer(&sa6))
		namelen = uint32(unsafe.Sizeof(sa6))
	}

	var emptyByte byte
	for i, pkt := range pkts {
		base := &emptyByte
		if len(pkt) > 0 {
			base = &pkt[0]
		}
		st.siovs[i] = syscall.Iovec{Base: base, Len: uint64(len(pkt))}
		st.shdrs[i] = mmsghdr{hdr: syscall.Msghdr{
			Name:    name,
			Namelen: namelen,
			Iov:     &st.siovs[i],
			Iovlen:  1,
		}}
	}

	var n int
	var opErr error
	err := st.raw.Write(func(fd uintptr) bool {
		r1, _, errno := syscall.Syscall6(sysSendmmsg,
			fd,
			uintptr(unsafe.Pointer(&st.shdrs[0])),
			uintptr(len(pkts)),
			uintptr(syscall.MSG_DONTWAIT),
			0, 0)
		switch errno {
		case 0:
			n = int(r1)
			return true
		case syscall.EAGAIN:
			return false // park until the socket buffer drains
		case syscall.EINTR:
			return false
		default:
			opErr = errno
			return true
		}
	})
	if err != nil {
		return 0, err
	}
	if opErr != nil {
		return 0, opErr
	}
	return n, nil
}

// sockaddrToAddrPort decodes the kernel-filled source address of one
// received datagram. IPv4-mapped IPv6 sources are unmapped so one peer has
// one address string.
func sockaddrToAddrPort(sa *syscall.RawSockaddrInet6) netip.AddrPort {
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr),
			getSockPort((*[2]byte)(unsafe.Pointer(&sa4.Port))))
	case syscall.AF_INET6:
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr).Unmap(),
			getSockPort((*[2]byte)(unsafe.Pointer(&sa.Port))))
	default:
		return netip.AddrPort{}
	}
}

// putSockPort stores a port in the network byte order the sockaddr expects.
func putSockPort(p *[2]byte, port uint16) {
	p[0] = byte(port >> 8)
	p[1] = byte(port)
}

// getSockPort loads a network-byte-order sockaddr port.
func getSockPort(p *[2]byte) uint16 {
	return uint16(p[0])<<8 | uint16(p[1])
}
