package transport

import (
	"errors"
	"fmt"
	"net"
	"net/netip"
	"sync"
	"time"
)

// realMTU is a conservative UDP payload size that avoids IP fragmentation
// on typical paths, matching the fragmentation unit the paper's library
// uses.
const realMTU = 1400

// recvBatchSize is how many packets one receive operation can drain from
// the socket. On Linux the whole batch arrives in one recvmmsg system
// call; elsewhere the batch degenerates to one packet per call.
const recvBatchSize = 32

// recvBufSize bounds one received datagram. The stack never sends above
// realMTU; the headroom tolerates foreign packets without truncating the
// MAC trailer off legitimate ones.
const recvBufSize = 2048

// RealStack binds the transport abstractions to actual UDP and TCP
// sockets, for running one Mocha site per process via cmd/mochad. The
// zero value is not usable; construct with NewRealStack.
type RealStack struct {
	dg *udpDatagram

	mu        sync.Mutex
	closed    bool
	listeners []*tcpListener
}

var _ Stack = (*RealStack)(nil)

// NewRealStack opens a UDP endpoint on the given address ("host:port";
// ":0" picks a free port).
func NewRealStack(udpAddr string) (*RealStack, error) {
	laddr, err := net.ResolveUDPAddr("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", udpAddr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp %q: %w", udpAddr, err)
	}
	s := &RealStack{}
	s.dg = &udpDatagram{conn: conn, done: make(chan struct{})}
	if err := s.dg.initBatch(); err != nil {
		_ = conn.Close()
		return nil, fmt.Errorf("transport: batch init: %w", err)
	}
	go s.dg.readLoop()
	return s, nil
}

// Datagram implements Stack.
func (s *RealStack) Datagram() Datagram { return s.dg }

// ListenStream implements Stack: a fresh TCP listener on an ephemeral
// port, whose address the hybrid protocol propagates over MNet.
func (s *RealStack) ListenStream() (Listener, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	host, _, err := net.SplitHostPort(s.dg.conn.LocalAddr().String())
	if err != nil {
		host = ""
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, fmt.Errorf("transport: listen tcp: %w", err)
	}
	l := &tcpListener{ln: ln}
	s.listeners = append(s.listeners, l)
	return l, nil
}

// DialStream implements Stack.
func (s *RealStack) DialStream(addr string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial tcp %q: %w", addr, err)
	}
	return c.(*net.TCPConn), nil
}

// Close implements Stack.
func (s *RealStack) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	listeners := s.listeners
	s.mu.Unlock()
	for _, l := range listeners {
		_ = l.Close()
	}
	return s.dg.Close()
}

// udpDatagram adapts a UDP socket to the Datagram interface.
type udpDatagram struct {
	conn *net.UDPConn
	done chan struct{}

	mu      sync.Mutex
	handler Handler
	closed  bool

	// dests caches destination-string resolution and froms caches the
	// reverse mapping for arriving packets, so the steady-state send and
	// receive paths stop resolving and formatting addresses per packet.
	dests sync.Map // string -> netip.AddrPort
	froms sync.Map // netip.AddrPort -> string

	// batch holds the platform batch-I/O state (scatter-gather headers on
	// Linux; nothing elsewhere). Owned by initBatch and the build-tagged
	// recvBatch/sendBatch implementations.
	batch batchState
}

var (
	_ Datagram    = (*udpDatagram)(nil)
	_ BatchSender = (*udpDatagram)(nil)
)

// LocalAddr implements Datagram.
func (d *udpDatagram) LocalAddr() string { return d.conn.LocalAddr().String() }

// MTU implements Datagram.
func (d *udpDatagram) MTU() int { return realMTU }

// SetHandler implements Datagram.
func (d *udpDatagram) SetHandler(h Handler) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.handler = h
}

// dest resolves a destination address once and caches it. Numeric
// addresses parse directly; hostnames go through the resolver on first use.
func (d *udpDatagram) dest(to string) (netip.AddrPort, error) {
	if v, ok := d.dests.Load(to); ok {
		return v.(netip.AddrPort), nil
	}
	ap, err := netip.ParseAddrPort(to)
	if err != nil {
		raddr, rerr := net.ResolveUDPAddr("udp", to)
		if rerr != nil {
			return netip.AddrPort{}, fmt.Errorf("transport: resolve %q: %w", to, rerr)
		}
		ap = raddr.AddrPort()
	}
	ap = netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port())
	d.dests.Store(to, ap)
	return ap, nil
}

// fromString formats a source address once and caches it, keeping the
// receive path free of per-packet formatting allocations.
func (d *udpDatagram) fromString(ap netip.AddrPort) string {
	if v, ok := d.froms.Load(ap); ok {
		return v.(string)
	}
	s := netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()).String()
	d.froms.Store(ap, s)
	return s
}

// Send implements Datagram.
func (d *udpDatagram) Send(to string, pkt []byte) error {
	if len(pkt) > realMTU {
		return fmt.Errorf("transport: packet of %d bytes exceeds MTU %d", len(pkt), realMTU)
	}
	ap, err := d.dest(to)
	if err != nil {
		return err
	}
	if _, err := d.conn.WriteToUDPAddrPort(pkt, ap); err != nil {
		return fmt.Errorf("transport: udp send: %w", err)
	}
	return nil
}

// SendBatch implements BatchSender: on Linux the whole batch leaves in
// sendmmsg system calls; elsewhere it degenerates to one write per packet.
func (d *udpDatagram) SendBatch(to string, pkts [][]byte) error {
	for _, pkt := range pkts {
		if len(pkt) > realMTU {
			return fmt.Errorf("transport: packet of %d bytes exceeds MTU %d", len(pkt), realMTU)
		}
	}
	ap, err := d.dest(to)
	if err != nil {
		return err
	}
	for len(pkts) > 0 {
		n, err := d.sendBatch(ap, pkts)
		if err != nil {
			return fmt.Errorf("transport: udp send batch: %w", err)
		}
		if n <= 0 {
			n = 1 // defensive: never spin without progress
		}
		pkts = pkts[n:]
	}
	return nil
}

// Close implements Datagram.
func (d *udpDatagram) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	close(d.done)
	return d.conn.Close()
}

// deliver hands one received packet to the handler. The buffer is reused
// for the next receive once the handler returns, per the Handler contract.
func (d *udpDatagram) deliver(from netip.AddrPort, pkt []byte) {
	d.mu.Lock()
	h := d.handler
	d.mu.Unlock()
	if h != nil {
		h(d.fromString(from), pkt)
	}
}

// readLoop pumps arriving packets into the handler. Packet buffers are a
// fixed ring reused across iterations, so the steady-state receive path
// performs no allocations; on Linux each loop iteration drains up to
// recvBatchSize packets in one recvmmsg call.
func (d *udpDatagram) readLoop() {
	bufs := make([][]byte, recvBatchSize)
	for i := range bufs {
		bufs[i] = make([]byte, recvBufSize)
	}
	sizes := make([]int, recvBatchSize)
	addrs := make([]netip.AddrPort, recvBatchSize)
	for {
		n, err := d.recvBatch(bufs, sizes, addrs)
		if err != nil {
			select {
			case <-d.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		for i := 0; i < n; i++ {
			d.deliver(addrs[i], bufs[i][:sizes[i]])
		}
	}
}

// tcpListener adapts net.Listener.
type tcpListener struct {
	ln net.Listener
}

var _ Listener = (*tcpListener)(nil)

// Accept implements Listener.
func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return c.(*net.TCPConn), nil
}

// Addr implements Listener.
func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

// Close implements Listener.
func (l *tcpListener) Close() error { return l.ln.Close() }

// Interface satisfaction checks for the net types used as Conn.
var _ Conn = (*net.TCPConn)(nil)

// SetReadDeadlineConn is a helper for callers holding a Conn that need a
// relative deadline.
func SetReadDeadlineConn(c Conn, d time.Duration) error {
	if d <= 0 {
		return c.SetReadDeadline(time.Time{})
	}
	return c.SetReadDeadline(time.Now().Add(d))
}
