package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// realMTU is a conservative UDP payload size that avoids IP fragmentation
// on typical paths, matching the fragmentation unit the paper's library
// uses.
const realMTU = 1400

// RealStack binds the transport abstractions to actual UDP and TCP
// sockets, for running one Mocha site per process via cmd/mochad. The
// zero value is not usable; construct with NewRealStack.
type RealStack struct {
	dg *udpDatagram

	mu        sync.Mutex
	closed    bool
	listeners []*tcpListener
}

var _ Stack = (*RealStack)(nil)

// NewRealStack opens a UDP endpoint on the given address ("host:port";
// ":0" picks a free port).
func NewRealStack(udpAddr string) (*RealStack, error) {
	laddr, err := net.ResolveUDPAddr("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %q: %w", udpAddr, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp %q: %w", udpAddr, err)
	}
	s := &RealStack{}
	s.dg = &udpDatagram{conn: conn, done: make(chan struct{})}
	go s.dg.readLoop()
	return s, nil
}

// Datagram implements Stack.
func (s *RealStack) Datagram() Datagram { return s.dg }

// ListenStream implements Stack: a fresh TCP listener on an ephemeral
// port, whose address the hybrid protocol propagates over MNet.
func (s *RealStack) ListenStream() (Listener, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	host, _, err := net.SplitHostPort(s.dg.conn.LocalAddr().String())
	if err != nil {
		host = ""
	}
	ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
	if err != nil {
		return nil, fmt.Errorf("transport: listen tcp: %w", err)
	}
	l := &tcpListener{ln: ln}
	s.listeners = append(s.listeners, l)
	return l, nil
}

// DialStream implements Stack.
func (s *RealStack) DialStream(addr string) (Conn, error) {
	c, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("transport: dial tcp %q: %w", addr, err)
	}
	return c.(*net.TCPConn), nil
}

// Close implements Stack.
func (s *RealStack) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	listeners := s.listeners
	s.mu.Unlock()
	for _, l := range listeners {
		_ = l.Close()
	}
	return s.dg.Close()
}

// udpDatagram adapts a UDP socket to the Datagram interface.
type udpDatagram struct {
	conn *net.UDPConn
	done chan struct{}

	mu      sync.Mutex
	handler Handler
	closed  bool
}

var _ Datagram = (*udpDatagram)(nil)

// LocalAddr implements Datagram.
func (d *udpDatagram) LocalAddr() string { return d.conn.LocalAddr().String() }

// MTU implements Datagram.
func (d *udpDatagram) MTU() int { return realMTU }

// SetHandler implements Datagram.
func (d *udpDatagram) SetHandler(h Handler) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.handler = h
}

// Send implements Datagram.
func (d *udpDatagram) Send(to string, pkt []byte) error {
	if len(pkt) > realMTU {
		return fmt.Errorf("transport: packet of %d bytes exceeds MTU %d", len(pkt), realMTU)
	}
	raddr, err := net.ResolveUDPAddr("udp", to)
	if err != nil {
		return fmt.Errorf("transport: resolve %q: %w", to, err)
	}
	if _, err := d.conn.WriteToUDP(pkt, raddr); err != nil {
		return fmt.Errorf("transport: udp send: %w", err)
	}
	return nil
}

// Close implements Datagram.
func (d *udpDatagram) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	d.mu.Unlock()
	close(d.done)
	return d.conn.Close()
}

// readLoop pumps arriving packets into the handler.
func (d *udpDatagram) readLoop() {
	buf := make([]byte, 64*1024)
	for {
		n, raddr, err := d.conn.ReadFromUDP(buf)
		if err != nil {
			select {
			case <-d.done:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		d.mu.Lock()
		h := d.handler
		d.mu.Unlock()
		if h != nil {
			h(raddr.String(), pkt)
		}
	}
}

// tcpListener adapts net.Listener.
type tcpListener struct {
	ln net.Listener
}

var _ Listener = (*tcpListener)(nil)

// Accept implements Listener.
func (l *tcpListener) Accept() (Conn, error) {
	c, err := l.ln.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	return c.(*net.TCPConn), nil
}

// Addr implements Listener.
func (l *tcpListener) Addr() string { return l.ln.Addr().String() }

// Close implements Listener.
func (l *tcpListener) Close() error { return l.ln.Close() }

// Interface satisfaction checks for the net types used as Conn.
var _ Conn = (*net.TCPConn)(nil)

// SetReadDeadlineConn is a helper for callers holding a Conn that need a
// relative deadline.
func SetReadDeadlineConn(c Conn, d time.Duration) error {
	if d <= 0 {
		return c.SetReadDeadline(time.Time{})
	}
	return c.SetReadDeadline(time.Now().Add(d))
}
