package transport

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mocha/internal/netsim"
)

// newSimPair builds a two-site simulated network with a perfect profile.
func newSimPair(t *testing.T) (*SimNetwork, *SimStack, *SimStack) {
	t.Helper()
	sn := NewSimNetwork(netsim.Config{Profile: netsim.Perfect(), Seed: 7})
	a, err := sn.NewStack(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sn.NewStack(2)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = sn.Close() })
	return sn, a, b
}

func TestSimDatagramRoundTrip(t *testing.T) {
	_, a, b := newSimPair(t)
	got := make(chan []byte, 1)
	b.Datagram().SetHandler(func(from string, pkt []byte) {
		if from != "1" {
			t.Errorf("from = %q, want 1", from)
		}
		// Handlers must not retain pkt; copy before parking it.
		got <- append([]byte(nil), pkt...)
	})
	if err := a.Datagram().Send("2", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-got:
		if string(pkt) != "ping" {
			t.Fatalf("payload %q", pkt)
		}
	case <-time.After(time.Second):
		t.Fatal("no delivery")
	}
}

func TestSimDatagramMTU(t *testing.T) {
	_, a, _ := newSimPair(t)
	if err := a.Datagram().Send("2", make([]byte, simMTU+1)); err == nil {
		t.Fatal("oversized packet accepted")
	}
	if err := a.Datagram().Send("2", make([]byte, simMTU)); err != nil {
		t.Fatalf("MTU-sized packet rejected: %v", err)
	}
}

func TestSimDatagramBadAddress(t *testing.T) {
	_, a, _ := newSimPair(t)
	if err := a.Datagram().Send("not-a-node", []byte("x")); err == nil {
		t.Fatal("bad address accepted")
	}
}

func TestSimStreamEcho(t *testing.T) {
	_, a, b := newSimPair(t)
	ln, err := b.ListenStream()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c, err := ln.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		defer c.Close()
		data, err := io.ReadAll(c)
		if err != nil {
			t.Errorf("ReadAll: %v", err)
			return
		}
		if _, err := c.Write(data); err != nil {
			t.Errorf("Write: %v", err)
		}
	}()

	c, err := a.DialStream(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("the quick brown fox")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	// Half-close is not modelled; sender closes after the echo returns in
	// the large-transfer test. Here the acceptor reads until EOF, so close
	// the write side by closing the conn and read the echo on a second
	// conn instead — simpler: use one-direction transfer.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestSimStreamLargeTransfer(t *testing.T) {
	_, a, b := newSimPair(t)
	ln, err := b.ListenStream()
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 300*1024)
	rnd := rand.New(rand.NewSource(9))
	rnd.Read(payload)

	done := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			done <- nil
			return
		}
		defer c.Close()
		data, err := io.ReadAll(c)
		if err != nil {
			t.Errorf("ReadAll: %v", err)
			done <- nil
			return
		}
		done <- data
	}()

	c, err := a.DialStream(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-done:
		if !bytes.Equal(got, payload) {
			t.Fatalf("transfer corrupted: got %d bytes, want %d", len(got), len(payload))
		}
	case <-time.After(5 * time.Second):
		t.Fatal("transfer timed out")
	}
}

func TestSimStreamOrderUnderJitter(t *testing.T) {
	// Jitter can reorder in-flight segments; the stream must still deliver
	// bytes in order.
	sn := NewSimNetwork(netsim.Config{
		Profile: netsim.Profile{PropDelay: 2 * time.Millisecond, Jitter: 3 * time.Millisecond},
		Seed:    11,
	})
	t.Cleanup(func() { _ = sn.Close() })
	a, _ := sn.NewStack(1)
	b, _ := sn.NewStack(2)
	ln, _ := b.ListenStream()

	payload := make([]byte, 64*1024)
	for i := range payload {
		payload[i] = byte(i)
	}
	done := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			done <- nil
			return
		}
		defer c.Close()
		data, _ := io.ReadAll(c)
		done <- data
	}()
	c, err := a.DialStream(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = c.Write(payload)
	_ = c.Close()
	select {
	case got := <-done:
		if !bytes.Equal(got, payload) {
			t.Fatal("reordered delivery")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timed out")
	}
}

func TestSimStreamDialRefused(t *testing.T) {
	_, a, _ := newSimPair(t)
	if _, err := a.DialStream("2#99"); err == nil {
		t.Fatal("dial to missing listener succeeded")
	}
}

func TestSimStreamReadDeadline(t *testing.T) {
	_, a, b := newSimPair(t)
	ln, _ := b.ListenStream()
	accepted := make(chan Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := a.DialStream(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := SetReadDeadlineConn(c, 30*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = c.Read(make([]byte, 16))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Read error = %v, want timeout", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("deadline not honored promptly")
	}
	select {
	case srv := <-accepted:
		_ = srv.Close()
	default:
	}
}

func TestSimStreamListenerClose(t *testing.T) {
	_, _, b := newSimPair(t)
	ln, _ := b.ListenStream()
	errCh := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		errCh <- err
	}()
	_ = ln.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("Accept after close = %v, want ErrClosed", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Accept did not unblock on close")
	}
}

func TestSimStackCloseStopsTraffic(t *testing.T) {
	_, a, b := newSimPair(t)
	var mu sync.Mutex
	delivered := 0
	b.Datagram().SetHandler(func(string, []byte) { mu.Lock(); delivered++; mu.Unlock() })
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Datagram().Send("2", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close = %v, want ErrClosed", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if delivered != 0 {
		t.Fatal("packet delivered after close")
	}
}

func TestKillSilencesSite(t *testing.T) {
	sn, a, b := newSimPair(t)
	got := make(chan struct{}, 8)
	b.Datagram().SetHandler(func(string, []byte) { got <- struct{}{} })
	sn.Kill(2)
	_ = a.Datagram().Send("2", []byte("x"))
	select {
	case <-got:
		t.Fatal("killed site received traffic")
	case <-time.After(50 * time.Millisecond):
	}
}

func TestRealUDPLoopback(t *testing.T) {
	a, err := NewRealStack("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewRealStack("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	got := make(chan []byte, 1)
	b.Datagram().SetHandler(func(from string, pkt []byte) { got <- append([]byte(nil), pkt...) })
	if err := a.Datagram().Send(b.Datagram().LocalAddr(), []byte("over-udp")); err != nil {
		t.Fatal(err)
	}
	select {
	case pkt := <-got:
		if string(pkt) != "over-udp" {
			t.Fatalf("payload %q", pkt)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("udp loopback delivery failed")
	}
}

func TestRealTCPLoopback(t *testing.T) {
	a, err := NewRealStack("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	ln, err := a.ListenStream()
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		data, _ := io.ReadAll(c)
		_, _ = c.Write(data)
	}()

	c, err := a.DialStream(ln.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("tcp-bulk")); err != nil {
		t.Fatal(err)
	}
	if tc, ok := c.(interface{ CloseWrite() error }); ok {
		_ = tc.CloseWrite()
	}
	data, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "tcp-bulk" {
		t.Fatalf("echo %q", data)
	}
}
