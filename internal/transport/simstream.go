package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"mocha/internal/netsim"
)

// Stream ops carried inside tagStream packets. The simulated stream models
// what the hybrid protocol needs from TCP: a connect round trip, reliable
// in-order delivery with the network's bandwidth and propagation behaviour,
// and orderly shutdown. It does not retransmit: simulated packet loss is a
// datagram-layer experiment, and the stream path reports a stalled
// transfer via read deadlines, which the hybrid layer treats as a transfer
// failure exactly as it treats a broken TCP connection.
const (
	opSYN byte = iota + 1
	opSYNACK
	opDATA
	opFIN
	opRST
)

// simMSS is the data payload per simulated stream segment: MTU minus the
// stream tag and the 9-byte segment header.
const simMSS = simMTU - 10

// dialTimeout bounds a simulated connect; far beyond any simulated RTT.
const dialTimeout = 10 * time.Second

// ListenStream implements Stack.
func (s *SimStack) ListenStream() (Listener, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	s.nextListen++
	l := &simListener{
		stack:   s,
		id:      s.nextListen,
		pending: make(chan *simConn, 16),
		done:    make(chan struct{}),
	}
	s.listeners[l.id] = l
	return l, nil
}

// DialStream implements Stack. The address has the form "node#listener".
func (s *SimStack) DialStream(addr string) (Conn, error) {
	node, listenerID, err := parseStreamAddr(addr)
	if err != nil {
		return nil, err
	}
	c := s.newConn(node)

	var syn [9]byte
	syn[0] = opSYN
	binary.BigEndian.PutUint32(syn[1:5], listenerID)
	binary.BigEndian.PutUint32(syn[5:9], c.localID)
	s.send(node, tagStream, syn[:])

	select {
	case <-c.established:
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err != nil {
			s.dropConn(c.localID)
			return nil, err
		}
		return c, nil
	case <-time.After(dialTimeout):
		s.dropConn(c.localID)
		return nil, fmt.Errorf("transport: dial %s: %w", addr, ErrTimeout)
	}
}

// newConn allocates and registers a connection endpoint.
func (s *SimStack) newConn(remote netsim.NodeID) *simConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextConn++
	c := &simConn{
		stack:       s,
		localID:     s.nextConn,
		remote:      remote,
		established: make(chan struct{}),
		incoming:    make(chan []byte, 8192),
		finSeq:      -1,
		reorder:     make(map[uint32][]byte),
	}
	s.conns[c.localID] = c
	return c
}

func (s *SimStack) dropConn(id uint32) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, id)
}

func (s *SimStack) connByID(id uint32) *simConn {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conns[id]
}

// handleStream processes one stream-tagged packet.
func (s *SimStack) handleStream(from netsim.NodeID, b []byte) {
	if len(b) < 5 {
		return
	}
	op := b[0]
	switch op {
	case opSYN:
		if len(b) < 9 {
			return
		}
		listenerID := binary.BigEndian.Uint32(b[1:5])
		dialerID := binary.BigEndian.Uint32(b[5:9])
		s.mu.Lock()
		l := s.listeners[listenerID]
		s.mu.Unlock()
		if l == nil {
			var rst [5]byte
			rst[0] = opRST
			binary.BigEndian.PutUint32(rst[1:5], dialerID)
			s.send(from, tagStream, rst[:])
			return
		}
		c := s.newConn(from)
		c.mu.Lock()
		c.remoteID = dialerID
		c.mu.Unlock()
		var ack [9]byte
		ack[0] = opSYNACK
		binary.BigEndian.PutUint32(ack[1:5], dialerID)
		binary.BigEndian.PutUint32(ack[5:9], c.localID)
		s.send(from, tagStream, ack[:])
		select {
		case l.pending <- c:
		case <-l.done:
			_ = c.Close()
		}
	case opSYNACK:
		if len(b) < 9 {
			return
		}
		dialerID := binary.BigEndian.Uint32(b[1:5])
		acceptorID := binary.BigEndian.Uint32(b[5:9])
		c := s.connByID(dialerID)
		if c == nil {
			return
		}
		c.mu.Lock()
		if c.remoteID == 0 {
			c.remoteID = acceptorID
			close(c.established)
		}
		c.mu.Unlock()
	case opDATA:
		if len(b) < 9 {
			return
		}
		destID := binary.BigEndian.Uint32(b[1:5])
		seq := binary.BigEndian.Uint32(b[5:9])
		c := s.connByID(destID)
		if c == nil {
			return
		}
		payload := make([]byte, len(b)-9)
		copy(payload, b[9:])
		c.deliver(seq, payload)
	case opFIN:
		if len(b) < 9 {
			return
		}
		destID := binary.BigEndian.Uint32(b[1:5])
		finalSeq := binary.BigEndian.Uint32(b[5:9])
		c := s.connByID(destID)
		if c == nil {
			return
		}
		c.finish(int64(finalSeq))
	case opRST:
		destID := binary.BigEndian.Uint32(b[1:5])
		c := s.connByID(destID)
		if c == nil {
			return
		}
		c.mu.Lock()
		if c.remoteID == 0 && c.err == nil {
			c.err = fmt.Errorf("transport: connection refused")
			close(c.established)
		}
		c.mu.Unlock()
	}
}

// simListener accepts simulated streams.
type simListener struct {
	stack   *SimStack
	id      uint32
	pending chan *simConn

	closeOnce sync.Once
	done      chan struct{}
}

var _ Listener = (*simListener)(nil)

// Addr implements Listener.
func (l *simListener) Addr() string {
	return l.stack.addr + "#" + strconv.FormatUint(uint64(l.id), 10)
}

// Accept implements Listener.
func (l *simListener) Accept() (Conn, error) {
	select {
	case c := <-l.pending:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

// Close implements Listener.
func (l *simListener) Close() error {
	l.closeOnce.Do(func() {
		close(l.done)
		l.stack.mu.Lock()
		delete(l.stack.listeners, l.id)
		l.stack.mu.Unlock()
	})
	return nil
}

// simConn is one endpoint of a simulated stream.
type simConn struct {
	stack       *SimStack
	localID     uint32
	remote      netsim.NodeID
	established chan struct{}

	mu       sync.Mutex
	remoteID uint32
	err      error
	closed   bool

	// Send side.
	sendSeq uint32

	// Receive side: segments reordered by seq, then queued in order.
	reorder  map[uint32][]byte
	nextSeq  uint32
	finSeq   int64 // -1 until FIN arrives
	eofSent  bool
	incoming chan []byte
	leftover []byte
	deadline time.Time
}

var _ Conn = (*simConn)(nil)

// deliver accepts one data segment, reorders, and queues ready bytes.
func (c *simConn) deliver(seq uint32, payload []byte) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.reorder[seq] = payload
	c.drainLocked()
	c.mu.Unlock()
}

// finish records the FIN's final sequence number.
func (c *simConn) finish(finalSeq int64) {
	c.mu.Lock()
	c.finSeq = finalSeq
	c.drainLocked()
	c.mu.Unlock()
}

// drainLocked moves in-order segments to the incoming queue and emits the
// EOF sentinel (nil) once all data before the FIN has been queued.
// Called with c.mu held; channel sends may block only if a reader is
// hopelessly behind, bounded by the channel capacity.
func (c *simConn) drainLocked() {
	for {
		payload, ok := c.reorder[c.nextSeq]
		if !ok {
			break
		}
		delete(c.reorder, c.nextSeq)
		c.nextSeq++
		select {
		case c.incoming <- payload:
		default:
			// Receiver queue full: drop the connection rather than block
			// netsim delivery goroutines. The reader sees a reset.
			c.err = fmt.Errorf("transport: stream receive queue overflow")
			return
		}
	}
	if !c.eofSent && c.finSeq >= 0 && int64(c.nextSeq) >= c.finSeq {
		c.eofSent = true
		select {
		case c.incoming <- nil:
		default:
			c.err = fmt.Errorf("transport: stream receive queue overflow")
		}
	}
}

// Read implements Conn.
func (c *simConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	if len(c.leftover) > 0 {
		n := copy(p, c.leftover)
		c.leftover = c.leftover[n:]
		c.mu.Unlock()
		return n, nil
	}
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return 0, err
	}
	deadline := c.deadline
	c.mu.Unlock()

	var timeout <-chan time.Time
	if !deadline.IsZero() {
		d := time.Until(deadline)
		if d <= 0 {
			return 0, ErrTimeout
		}
		t := time.NewTimer(d)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case payload := <-c.incoming:
		if payload == nil {
			c.mu.Lock()
			c.err = io.EOF
			c.mu.Unlock()
			return 0, io.EOF
		}
		n := copy(p, payload)
		if n < len(payload) {
			c.mu.Lock()
			c.leftover = payload[n:]
			c.mu.Unlock()
		}
		return n, nil
	case <-timeout:
		return 0, ErrTimeout
	}
}

// Write implements Conn. Segments enter the simulated network immediately;
// bandwidth and propagation delays are applied by netsim's uplink model,
// and the modelled kernel CPU cost of the TCP path is charged by the
// hybrid layer, not here.
func (c *simConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	remoteID := c.remoteID
	c.mu.Unlock()
	if remoteID == 0 {
		return 0, fmt.Errorf("transport: write before connection established")
	}
	total := 0
	for len(p) > 0 {
		n := len(p)
		if n > simMSS {
			n = simMSS
		}
		seg := make([]byte, 9+n)
		seg[0] = opDATA
		binary.BigEndian.PutUint32(seg[1:5], remoteID)
		c.mu.Lock()
		binary.BigEndian.PutUint32(seg[5:9], c.sendSeq)
		c.sendSeq++
		c.mu.Unlock()
		copy(seg[9:], p[:n])
		c.stack.send(c.remote, tagStream, seg)
		p = p[n:]
		total += n
	}
	return total, nil
}

// SetReadDeadline implements Conn.
func (c *simConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.deadline = t
	return nil
}

// Close implements Conn: sends FIN with the final sequence number so the
// peer can detect completion, then releases local state.
func (c *simConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	remoteID := c.remoteID
	finalSeq := c.sendSeq
	c.mu.Unlock()

	if remoteID != 0 {
		var fin [9]byte
		fin[0] = opFIN
		binary.BigEndian.PutUint32(fin[1:5], remoteID)
		binary.BigEndian.PutUint32(fin[5:9], finalSeq)
		c.stack.send(c.remote, tagStream, fin[:])
	}
	c.stack.dropConn(c.localID)
	return nil
}

// parseStreamAddr splits "node#listener".
func parseStreamAddr(addr string) (netsim.NodeID, uint32, error) {
	i := strings.IndexByte(addr, '#')
	if i < 0 {
		return 0, 0, fmt.Errorf("transport: bad stream address %q", addr)
	}
	node, err := parseSimNode(addr[:i])
	if err != nil {
		return 0, 0, err
	}
	l, err := strconv.ParseUint(addr[i+1:], 10, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("transport: bad stream address %q: %w", addr, err)
	}
	return node, uint32(l), nil
}
