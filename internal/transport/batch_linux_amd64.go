//go:build linux && amd64

package transport

// recvmmsg(2)/sendmmsg(2) numbers for linux/amd64. The syscall package's
// frozen tables predate sendmmsg, so both are spelled out here.
const (
	sysRecvmmsg uintptr = 299
	sysSendmmsg uintptr = 307
)
