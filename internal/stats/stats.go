// Package stats provides the small statistical and table-formatting
// helpers the benchmark harness uses to report measurements the way the
// paper's evaluation section does. The sample/histogram math itself lives
// in the observability plane (internal/obs), shared with the runtime
// metrics registry; this package keeps the formatting helpers and aliases
// the sample type for its existing callers.
package stats

import (
	"fmt"
	"strings"
	"time"

	"mocha/internal/obs"
)

// Sample is a set of duration measurements (see obs.Sample).
type Sample = obs.Sample

// Millis renders a duration as milliseconds with sensible precision, the
// unit the paper reports everything in.
func Millis(d time.Duration) string {
	ms := float64(d) / float64(time.Millisecond)
	switch {
	case ms >= 100:
		return fmt.Sprintf("%.0f", ms)
	case ms >= 10:
		return fmt.Sprintf("%.1f", ms)
	default:
		return fmt.Sprintf("%.2f", ms)
	}
}

// Table formats aligned benchmark output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		row = append(row, fmt.Sprintf("%v", c))
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
