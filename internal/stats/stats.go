// Package stats provides the small statistical and table-formatting
// helpers the benchmark harness uses to report measurements the way the
// paper's evaluation section does.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Sample is a set of duration measurements.
type Sample struct {
	values []time.Duration
}

// Add appends a measurement.
func (s *Sample) Add(d time.Duration) { s.values = append(s.values, d) }

// N reports the number of measurements.
func (s *Sample) N() int { return len(s.values) }

// Mean returns the arithmetic mean.
func (s *Sample) Mean() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	var total time.Duration
	for _, v := range s.values {
		total += v
	}
	return total / time.Duration(len(s.values))
}

// Min returns the smallest measurement.
func (s *Sample) Min() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest measurement.
func (s *Sample) Max() time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	m := s.values[0]
	for _, v := range s.values[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Stddev returns the sample standard deviation.
func (s *Sample) Stddev() time.Duration {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := float64(s.Mean())
	var sum float64
	for _, v := range s.values {
		d := float64(v) - mean
		sum += d * d
	}
	return time.Duration(math.Sqrt(sum / float64(n-1)))
}

// Median returns the middle measurement.
func (s *Sample) Median() time.Duration {
	return s.Percentile(50)
}

// Percentile returns the p-th percentile (nearest rank).
func (s *Sample) Percentile(p float64) time.Duration {
	if len(s.values) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(s.values))
	copy(sorted, s.values)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Millis renders a duration as milliseconds with sensible precision, the
// unit the paper reports everything in.
func Millis(d time.Duration) string {
	ms := float64(d) / float64(time.Millisecond)
	switch {
	case ms >= 100:
		return fmt.Sprintf("%.0f", ms)
	case ms >= 10:
		return fmt.Sprintf("%.1f", ms)
	default:
		return fmt.Sprintf("%.2f", ms)
	}
}

// Table formats aligned benchmark output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		row = append(row, fmt.Sprintf("%v", c))
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return sb.String()
}
