package stats

import (
	"strings"
	"testing"
	"time"
)

func ms(v int) time.Duration { return time.Duration(v) * time.Millisecond }

func TestSampleStatistics(t *testing.T) {
	var s Sample
	for _, v := range []int{10, 20, 30, 40, 50} {
		s.Add(ms(v))
	}
	if s.N() != 5 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); got != ms(30) {
		t.Errorf("Mean = %v", got)
	}
	if got := s.Min(); got != ms(10) {
		t.Errorf("Min = %v", got)
	}
	if got := s.Max(); got != ms(50) {
		t.Errorf("Max = %v", got)
	}
	if got := s.Median(); got != ms(30) {
		t.Errorf("Median = %v", got)
	}
	if got := s.Percentile(100); got != ms(50) {
		t.Errorf("P100 = %v", got)
	}
	if got := s.Percentile(1); got != ms(10) {
		t.Errorf("P1 = %v", got)
	}
	// stddev of 10..50 step 10 is sqrt(250) ~ 15.81ms
	if got := s.Stddev(); got < ms(15) || got > ms(17) {
		t.Errorf("Stddev = %v", got)
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Median() != 0 || s.Stddev() != 0 {
		t.Fatal("empty sample must report zeros")
	}
}

func TestMillis(t *testing.T) {
	tests := []struct {
		d    time.Duration
		want string
	}{
		{d: 5 * time.Millisecond, want: "5.00"},
		{d: 19 * time.Millisecond, want: "19.0"},
		{d: 150 * time.Millisecond, want: "150"},
		{d: 1500 * time.Microsecond, want: "1.50"},
	}
	for _, tt := range tests {
		if got := Millis(tt.d); got != tt.want {
			t.Errorf("Millis(%v) = %q, want %q", tt.d, got, tt.want)
		}
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("sites", "basic (ms)", "hybrid (ms)")
	tb.AddRow(1, "13.5", "20.1")
	tb.AddRow(6, "81.0", "120.9")
	out := tb.String()
	if !strings.Contains(out, "sites") || !strings.Contains(out, "81.0") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[1], "-----") {
		t.Fatalf("separator line: %q", lines[1])
	}
}
