package stats

import (
	"testing"
	"time"

	"mocha/internal/obs"
)

// Sample is re-homed into internal/obs and aliased here; these tests pin
// the alias identity and the edge cases the harness math depends on.

func TestSampleIsObsSample(t *testing.T) {
	var s Sample
	var o *obs.Sample = &s // compile-time alias check
	o.Add(time.Second)
	if s.N() != 1 {
		t.Fatal("stats.Sample and obs.Sample are not the same type")
	}
}

func TestSampleEdgeEmpty(t *testing.T) {
	var s Sample
	if s.N() != 0 || s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 ||
		s.Stddev() != 0 || s.Median() != 0 || s.Percentile(95) != 0 {
		t.Fatal("empty sample must report zeros")
	}
}

func TestSampleEdgeSingle(t *testing.T) {
	var s Sample
	s.Add(3 * time.Millisecond)
	want := 3 * time.Millisecond
	if s.Mean() != want || s.Min() != want || s.Max() != want ||
		s.Median() != want || s.Percentile(1) != want || s.Percentile(100) != want {
		t.Fatal("single-value sample stats must equal the value")
	}
	if s.Stddev() != 0 {
		t.Fatalf("single-value stddev = %v", s.Stddev())
	}
}

func TestSampleEdgePercentileBoundaries(t *testing.T) {
	var s Sample
	for i := 1; i <= 10; i++ {
		s.Add(time.Duration(i) * time.Millisecond)
	}
	cases := []struct {
		p    float64
		want time.Duration
	}{
		{0, 1 * time.Millisecond},    // rank floor
		{10, 1 * time.Millisecond},   // ceil(1.0) = 1
		{10.1, 2 * time.Millisecond}, // ceil(1.01) = 2
		{50, 5 * time.Millisecond},
		{90, 9 * time.Millisecond},
		{100, 10 * time.Millisecond},
		{150, 10 * time.Millisecond}, // rank ceiling
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
}
