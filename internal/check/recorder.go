// Package check is Mocha's correctness-tooling layer: a lock-free history
// recorder the core protocol hooks into, an offline checker that replays a
// recorded history against the entry-consistency specification, and (in the
// package's tests) a seeded schedule explorer that drives randomized
// multi-site workloads under injected faults and checks every run.
//
// The recorder and checker deliberately depend only on wire and netsim —
// the layers below core — so core can record events without an import
// cycle, and any test in any package can attach the oracle.
package check

import (
	"hash/fnv"
	"sync/atomic"

	"mocha/internal/netsim"
	"mocha/internal/wire"
)

// DefaultCapacity bounds a recorder's event buffer when the caller passes
// no explicit capacity: 64k events (a few MB) covers every current
// integration test with a wide margin; overflow is counted, not fatal.
const DefaultCapacity = 1 << 16

// Recorder is a lock-free, append-only event sink. Record is safe for any
// number of concurrent writers and never blocks or allocates: slots are
// claimed with one atomic increment and published with one atomic store, so
// it can run inside the core's per-lock critical sections without changing
// their timing. Events recorded under the same mutex are therefore ordered
// exactly as the protocol state machine applied them.
type Recorder struct {
	clock atomic.Pointer[netsim.Clock]
	own   netsim.Clock // used when no network clock is shared

	next    atomic.Uint64
	dropped atomic.Uint64
	slots   []slot
}

type slot struct {
	ready atomic.Bool
	ev    wire.HistoryEvent
}

// NewRecorder builds a recorder. capacity <= 0 selects DefaultCapacity;
// clock may be nil, in which case the recorder runs its own (the real-
// transport deployments have no netsim network to share one with).
func NewRecorder(capacity int, clock *netsim.Clock) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	r := &Recorder{slots: make([]slot, capacity)}
	if clock == nil {
		clock = &r.own
	}
	r.clock.Store(clock)
	return r
}

// SetClock rebinds the recorder to a shared tick source — the cluster
// wires the simulated network's clock into both the recorder and the
// metrics registry so history events and span records land on one
// monotone axis and can be cross-referenced by tick. Safe to call
// concurrently with Record; a nil clock is ignored.
func (r *Recorder) SetClock(clock *netsim.Clock) {
	if clock != nil {
		r.clock.Store(clock)
	}
}

// Record appends one event, assigning its Seq and Tick. Events past the
// buffer's capacity are counted as dropped rather than blocking the
// protocol.
func (r *Recorder) Record(ev wire.HistoryEvent) {
	i := r.next.Add(1) - 1
	if i >= uint64(len(r.slots)) {
		r.dropped.Add(1)
		return
	}
	ev.Seq = i + 1
	ev.Tick = r.clock.Load().Tick()
	s := &r.slots[i]
	s.ev = ev
	s.ready.Store(true)
}

// Len reports how many events have been recorded (capped at capacity).
func (r *Recorder) Len() int {
	n := r.next.Load()
	if n > uint64(len(r.slots)) {
		n = uint64(len(r.slots))
	}
	return int(n)
}

// Dropped reports how many events overflowed the buffer.
func (r *Recorder) Dropped() uint64 { return r.dropped.Load() }

// Events returns the recorded history in order. Call it only after the
// recorded run has quiesced (nodes closed or workload joined); slots whose
// writers are still mid-store are skipped.
func (r *Recorder) Events() []wire.HistoryEvent {
	n := r.Len()
	out := make([]wire.HistoryEvent, 0, n)
	for i := 0; i < n; i++ {
		if r.slots[i].ready.Load() {
			out = append(out, r.slots[i].ev)
		}
	}
	return out
}

// Fingerprint hashes the history's protocol-relevant fields in order,
// excluding Seq and Tick (which can shift with timer-driven retransmission
// counts), so two runs of a deterministic schedule can be compared cheaply.
// Replaying a seed must reproduce this value.
func (r *Recorder) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, ev := range r.Events() {
		word(uint64(ev.Kind))
		word(uint64(ev.Site))
		word(uint64(ev.Thread))
		word(uint64(ev.Lock))
		word(ev.Version)
		word(ev.AuxVersion)
		var flags uint64
		if ev.Shared {
			flags |= 1
		}
		if ev.Aborted {
			flags |= 2
		}
		if ev.Revised {
			flags |= 4
		}
		flags |= uint64(ev.Flag) << 3
		word(flags)
		for _, s := range ev.Sites.Sites() {
			word(uint64(s))
		}
		for _, d := range ev.Digests {
			word(uint64(d.Sum))
		}
	}
	// Mix the overflow count in last: a truncated history must never
	// fingerprint equal to the intact history it is a prefix of.
	word(r.Dropped())
	return h.Sum64()
}

// Transitions returns the coverage set of the recorded history: which
// protocol transitions (and per-lock transition pairs) the run exercised.
// This is the explorer's novelty currency — see CoverageOf.
func (r *Recorder) Transitions() Coverage { return CoverageOf(r.Events()) }

// Signature reduces the history to one order-independent transition-set
// value: two runs signature-equal iff they exercised the same transitions,
// regardless of how their schedules interleaved them.
func (r *Recorder) Signature() uint64 { return r.Transitions().Signature() }
