package check

import (
	"errors"
	"testing"

	"mocha/internal/wire"
)

// seq numbers a hand-built history the way the recorder would.
func seq(evs []wire.HistoryEvent) []wire.HistoryEvent {
	for i := range evs {
		evs[i].Seq = uint64(i + 1)
	}
	return evs
}

var (
	tA = wire.MakeThreadID(1, 1)
	tB = wire.MakeThreadID(2, 1)
	tC = wire.MakeThreadID(3, 1)
)

// cleanPrefix is a well-formed history: creator seeds v1, thread A takes the
// lock at v1, publishes v2, releases; thread B (whose site applied v2) takes
// it at v2.
func cleanPrefix() []wire.HistoryEvent {
	return []wire.HistoryEvent{
		{Kind: wire.HistRegister, Site: 1, Lock: 9, Version: 1, Note: "creator",
			Digests: []wire.ReplicaDigest{{Name: "x", Sum: 0xa1}}},
		{Kind: wire.HistPublish, Site: 1, Lock: 9, Version: 1, Note: "create",
			Digests: []wire.ReplicaDigest{{Name: "x", Sum: 0xa1}}},
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9, Version: 1,
			Flag: wire.VersionOK, Sites: wire.NewSiteSet(1)},
		{Kind: wire.HistObserve, Site: 1, Thread: tA, Lock: 9, Version: 1, AuxVersion: 1,
			Digests: []wire.ReplicaDigest{{Name: "x", Sum: 0xa1}}},
		{Kind: wire.HistPublish, Site: 1, Thread: tA, Lock: 9, Version: 2,
			Digests: []wire.ReplicaDigest{{Name: "x", Sum: 0xb2}}},
		{Kind: wire.HistApply, Site: 2, Lock: 9, Version: 2, Note: "push",
			Digests: []wire.ReplicaDigest{{Name: "x", Sum: 0xb2}}},
		{Kind: wire.HistRelease, Site: 1, Thread: tA, Lock: 9, Version: 2,
			Sites: wire.NewSiteSet(1, 2)},
		{Kind: wire.HistAcquire, Site: 2, Thread: tB, Lock: 9},
		{Kind: wire.HistGrant, Site: 2, Thread: tB, Lock: 9, Version: 2,
			Flag: wire.VersionOK, Sites: wire.NewSiteSet(1, 2)},
		{Kind: wire.HistObserve, Site: 2, Thread: tB, Lock: 9, Version: 2, AuxVersion: 2,
			Digests: []wire.ReplicaDigest{{Name: "x", Sum: 0xb2}}},
		{Kind: wire.HistRelease, Site: 2, Thread: tB, Lock: 9, Aborted: true},
	}
}

func TestCheckCleanHistory(t *testing.T) {
	if v := Check(seq(cleanPrefix())); v != nil {
		t.Fatalf("clean history flagged: %v", v)
	}
}

// expectViolation runs the checker and asserts the violation class.
func expectViolation(t *testing.T, evs []wire.HistoryEvent, want error) *Violation {
	t.Helper()
	v := Check(seq(evs))
	if v == nil {
		t.Fatalf("history not flagged, want %v", want)
	}
	if !errors.Is(v, want) {
		t.Fatalf("flagged %v, want %v", v, want)
	}
	if v.Error() == "" || len(v.Events) == 0 {
		t.Fatalf("violation carries no report: %#v", v)
	}
	return v
}

func TestCheckDualHolderExclusive(t *testing.T) {
	evs := []wire.HistoryEvent{
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistAcquire, Site: 2, Thread: tB, Lock: 9},
		{Kind: wire.HistGrant, Site: 2, Thread: tB, Lock: 9},
	}
	expectViolation(t, evs, ErrDualHolder)
}

func TestCheckDualHolderAgainstReader(t *testing.T) {
	evs := []wire.HistoryEvent{
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9, Shared: true},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9, Shared: true},
		{Kind: wire.HistAcquire, Site: 2, Thread: tB, Lock: 9},
		{Kind: wire.HistGrant, Site: 2, Thread: tB, Lock: 9},
	}
	expectViolation(t, evs, ErrDualHolder)
}

func TestCheckTwoReadersAllowed(t *testing.T) {
	evs := []wire.HistoryEvent{
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9, Shared: true},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9, Shared: true},
		{Kind: wire.HistAcquire, Site: 2, Thread: tB, Lock: 9, Shared: true},
		{Kind: wire.HistGrant, Site: 2, Thread: tB, Lock: 9, Shared: true},
		{Kind: wire.HistRelease, Site: 1, Thread: tA, Lock: 9, Shared: true},
		{Kind: wire.HistRelease, Site: 2, Thread: tB, Lock: 9, Shared: true},
	}
	if v := Check(seq(evs)); v != nil {
		t.Fatalf("concurrent readers flagged: %v", v)
	}
}

func TestCheckHolderQueued(t *testing.T) {
	evs := []wire.HistoryEvent{
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9},
	}
	expectViolation(t, evs, ErrHolderQueued)
}

func TestCheckOrphanGrant(t *testing.T) {
	evs := []wire.HistoryEvent{
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9},
	}
	expectViolation(t, evs, ErrOrphanGrant)

	// A revised grant must land on an existing hold.
	evs = []wire.HistoryEvent{
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9, Revised: true},
	}
	expectViolation(t, evs, ErrOrphanGrant)
}

func TestCheckVersionRegress(t *testing.T) {
	evs := append(cleanPrefix(),
		wire.HistoryEvent{Kind: wire.HistAcquire, Site: 3, Thread: tC, Lock: 9},
		wire.HistoryEvent{Kind: wire.HistGrant, Site: 3, Thread: tC, Lock: 9, Version: 2,
			Flag: wire.NeedNewVersion},
		wire.HistoryEvent{Kind: wire.HistRelease, Site: 3, Thread: tC, Lock: 9, Version: 2},
	)
	expectViolation(t, evs, ErrVersionRegress)
}

func TestCheckGrantVersion(t *testing.T) {
	evs := []wire.HistoryEvent{
		{Kind: wire.HistRegister, Site: 1, Lock: 9, Version: 1, Note: "creator"},
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9, Version: 2},
	}
	expectViolation(t, evs, ErrGrantVersion)
}

func TestCheckFenceRegress(t *testing.T) {
	// A fresh grant reusing an already-issued token is flagged.
	evs := []wire.HistoryEvent{
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9, AuxVersion: 7},
		{Kind: wire.HistRelease, Site: 1, Thread: tA, Lock: 9, Aborted: true},
		{Kind: wire.HistAcquire, Site: 2, Thread: tB, Lock: 9},
		{Kind: wire.HistGrant, Site: 2, Thread: tB, Lock: 9, AuxVersion: 7},
	}
	expectViolation(t, evs, ErrFenceRegress)

	// A revised grant shrinking its own hold's token is flagged.
	evs = []wire.HistoryEvent{
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9, AuxVersion: 7},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9, AuxVersion: 6, Revised: true},
	}
	expectViolation(t, evs, ErrFenceRegress)
}

func TestCheckFenceMonotoneAllowed(t *testing.T) {
	// Reader A re-issued (revised) with its own older token after reader B
	// minted a newer one is legitimate; so is a promotion-era jump.
	evs := []wire.HistoryEvent{
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9, Shared: true},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9, Shared: true, AuxVersion: 5},
		{Kind: wire.HistAcquire, Site: 2, Thread: tB, Lock: 9, Shared: true},
		{Kind: wire.HistGrant, Site: 2, Thread: tB, Lock: 9, Shared: true, AuxVersion: 6},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9, Shared: true, AuxVersion: 5, Revised: true},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9, Shared: true, AuxVersion: 1 << 32, Revised: true},
		{Kind: wire.HistRelease, Site: 1, Thread: tA, Lock: 9, Shared: true},
		{Kind: wire.HistRelease, Site: 2, Thread: tB, Lock: 9, Shared: true},
		{Kind: wire.HistAcquire, Site: 3, Thread: tC, Lock: 9},
		{Kind: wire.HistGrant, Site: 3, Thread: tC, Lock: 9, AuxVersion: 1<<32 | 1},
	}
	if v := Check(seq(evs)); v != nil {
		t.Fatalf("monotone fence history flagged: %v", v)
	}
}

func TestCheckStaleRead(t *testing.T) {
	// Site 3 installs v2 bytes that differ from what the release published.
	evs := append(cleanPrefix(),
		wire.HistoryEvent{Kind: wire.HistApply, Site: 3, Lock: 9, Version: 2, Note: "transfer",
			Digests: []wire.ReplicaDigest{{Name: "x", Sum: 0xdead}}},
	)
	expectViolation(t, evs, ErrStaleRead)
}

func TestCheckStaleObserve(t *testing.T) {
	// Thread C enters the lock at v2 on a site the history shows receiving
	// v2, but its bytes differ from the version's published bytes.
	evs := append(cleanPrefix(),
		wire.HistoryEvent{Kind: wire.HistAcquire, Site: 2, Thread: tC, Lock: 9},
		wire.HistoryEvent{Kind: wire.HistGrant, Site: 2, Thread: tC, Lock: 9, Version: 2,
			Flag: wire.VersionOK, Sites: wire.NewSiteSet(1, 2)},
		wire.HistoryEvent{Kind: wire.HistObserve, Site: 2, Thread: tC, Lock: 9, Version: 2, AuxVersion: 2,
			Digests: []wire.ReplicaDigest{{Name: "x", Sum: 0xbeef}}},
	)
	expectViolation(t, evs, ErrStaleRead)
}

func TestCheckObserveBelowGrantVersion(t *testing.T) {
	evs := []wire.HistoryEvent{
		{Kind: wire.HistObserve, Site: 2, Thread: tB, Lock: 9, Version: 1, AuxVersion: 2},
	}
	expectViolation(t, evs, ErrStaleRead)
}

func TestCheckUpToDateOverclaim(t *testing.T) {
	// The grant claims site 2 is up to date at v1, but no transfer, push, or
	// publish ever landed v1's bytes there.
	evs := []wire.HistoryEvent{
		{Kind: wire.HistRegister, Site: 1, Lock: 9, Version: 1, Note: "creator"},
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9, Version: 1,
			Flag: wire.VersionOK, Sites: wire.NewSiteSet(1, 2)},
	}
	expectViolation(t, evs, ErrUpToDateOverclaim)
}

func TestCheckReleaseOverclaim(t *testing.T) {
	evs := []wire.HistoryEvent{
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistRelease, Site: 1, Thread: tA, Lock: 9, Version: 1,
			Sites: wire.NewSiteSet(1, 4)},
	}
	expectViolation(t, evs, ErrUpToDateOverclaim)
}

func TestCheckBannedRegrant(t *testing.T) {
	evs := []wire.HistoryEvent{
		{Kind: wire.HistBan, Thread: tA, Note: "lease expired"},
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9},
	}
	expectViolation(t, evs, ErrBannedRegrant)
}

func TestCheckAcquireBeforeBanAllowed(t *testing.T) {
	// A grant for a request queued BEFORE the ban is legitimate: the ban
	// only refuses later requests.
	evs := []wire.HistoryEvent{
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistBan, Thread: tA, Note: "lease expired"},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9},
	}
	if v := Check(seq(evs)); v != nil {
		t.Fatalf("pre-ban grant flagged: %v", v)
	}
}

func TestCheckBreakClearsHold(t *testing.T) {
	evs := []wire.HistoryEvent{
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistBreak, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistAcquire, Site: 2, Thread: tB, Lock: 9},
		{Kind: wire.HistGrant, Site: 2, Thread: tB, Lock: 9},
	}
	if v := Check(seq(evs)); v != nil {
		t.Fatalf("post-break grant flagged: %v", v)
	}
}

func TestCheckOrphanPublishIsWeak(t *testing.T) {
	// A holder whose lease was broken still unlocks locally and publishes
	// v2; the synchronization thread ignores its release. The real v2 comes
	// from thread B with different bytes — no violation.
	evs := []wire.HistoryEvent{
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistBreak, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistPublish, Site: 1, Thread: tA, Lock: 9, Version: 1,
			Digests: []wire.ReplicaDigest{{Name: "x", Sum: 0x1}}},
		{Kind: wire.HistAcquire, Site: 2, Thread: tB, Lock: 9},
		{Kind: wire.HistGrant, Site: 2, Thread: tB, Lock: 9},
		{Kind: wire.HistPublish, Site: 2, Thread: tB, Lock: 9, Version: 1,
			Digests: []wire.ReplicaDigest{{Name: "x", Sum: 0x2}}},
		{Kind: wire.HistRelease, Site: 2, Thread: tB, Lock: 9, Version: 1,
			Sites: wire.NewSiteSet(2)},
	}
	if v := Check(seq(evs)); v != nil {
		t.Fatalf("orphan publish flagged: %v", v)
	}
}

func TestCheckRecoveryRebaseline(t *testing.T) {
	// v2 was committed but every copy died; polling finds v1 at site 2, and
	// the next grant carries v1 with fresh bytes reissued as v2 later.
	evs := append(cleanPrefix(),
		wire.HistoryEvent{Kind: wire.HistRecover, Site: 2, Lock: 9, Version: 1, Note: "poll-best"},
		wire.HistoryEvent{Kind: wire.HistAcquire, Site: 2, Thread: tC, Lock: 9},
		wire.HistoryEvent{Kind: wire.HistGrant, Site: 2, Thread: tC, Lock: 9, Version: 1,
			Flag: wire.NeedNewVersion, Revised: false, Sites: wire.NewSiteSet(2)},
		wire.HistoryEvent{Kind: wire.HistPublish, Site: 2, Thread: tC, Lock: 9, Version: 2,
			Digests: []wire.ReplicaDigest{{Name: "x", Sum: 0xcc}}},
		wire.HistoryEvent{Kind: wire.HistRelease, Site: 2, Thread: tC, Lock: 9, Version: 2,
			Sites: wire.NewSiteSet(2)},
	)
	// The pre-recovery site 2 knows v1 via its apply? No: site 2 applied v2.
	// The poll-best verdict itself establishes site 2 at v1.
	if v := Check(seq(evs)); v != nil {
		t.Fatalf("recovery rebaseline flagged: %v", v)
	}
}

func TestCheckWeakenedLocalRedefines(t *testing.T) {
	// All copies lost; the grantee proceeds with local state, redefining the
	// committed version's bytes.
	evs := append(cleanPrefix(),
		wire.HistoryEvent{Kind: wire.HistRecover, Site: 3, Lock: 9, Version: 2, Note: "weakened-local"},
		wire.HistoryEvent{Kind: wire.HistAcquire, Site: 3, Thread: tC, Lock: 9},
		wire.HistoryEvent{Kind: wire.HistGrant, Site: 3, Thread: tC, Lock: 9, Version: 2,
			Flag: wire.VersionOK, Sites: wire.NewSiteSet(3)},
		wire.HistoryEvent{Kind: wire.HistObserve, Site: 3, Thread: tC, Lock: 9, Version: 2, AuxVersion: 2,
			Digests: []wire.ReplicaDigest{{Name: "x", Sum: 0x77}}},
	)
	if v := Check(seq(evs)); v != nil {
		t.Fatalf("weakened-local history flagged: %v", v)
	}
}

func TestCheckSurrogateRestoreVoidsHolds(t *testing.T) {
	evs := []wire.HistoryEvent{
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistRecover, Site: 2, Lock: 9, Version: 0, Note: "surrogate-restore"},
		// The old holder is gone from the surrogate's state; a new grant is
		// legitimate, not a dual hold.
		{Kind: wire.HistAcquire, Site: 2, Thread: tB, Lock: 9},
		{Kind: wire.HistGrant, Site: 2, Thread: tB, Lock: 9},
	}
	if v := Check(seq(evs)); v != nil {
		t.Fatalf("post-surrogate grant flagged: %v", v)
	}
}
