package check

import (
	"errors"
	"fmt"
	"strings"

	"mocha/internal/wire"
)

// The entry-consistency invariants the checker enforces, as sentinel errors
// so fixtures can assert on the exact violation class.
var (
	// ErrDualHolder: two exclusive holds, or an exclusive hold alongside
	// readers, existed at once.
	ErrDualHolder = errors.New("check: conflicting lock holders")
	// ErrHolderQueued: a thread holding a lock was queued for it again.
	ErrHolderQueued = errors.New("check: holder queued for its own lock")
	// ErrOrphanGrant: a grant was issued with no matching queued acquire or
	// current hold (for revised grants).
	ErrOrphanGrant = errors.New("check: grant without a matching acquire")
	// ErrVersionRegress: a release did not advance the committed version.
	ErrVersionRegress = errors.New("check: committed version regressed")
	// ErrGrantVersion: a grant did not carry the max committed version.
	ErrGrantVersion = errors.New("check: grant version differs from committed version")
	// ErrStaleRead: replica bytes observed under the lock (or installed for
	// a version) differ from the bytes the version's release published.
	ErrStaleRead = errors.New("check: replica bytes diverge from the committed version")
	// ErrUpToDateOverclaim: an up-to-date set named a site that never held
	// the claimed version's bytes.
	ErrUpToDateOverclaim = errors.New("check: up-to-date set exceeds replicas at the version")
	// ErrBannedRegrant: a banned thread's later request was granted.
	ErrBannedRegrant = errors.New("check: banned thread granted a lock")
	// ErrHomeChain: a lock's home moved outside the handoff protocol — a
	// non-home site shipped the record, or a site installed a record no
	// handoff addressed to it.
	ErrHomeChain = errors.New("check: lock home changed outside the handoff chain")
	// ErrTruncatedHistory: the recorder overflowed, so the history is a
	// prefix of the run and any verdict or coverage signature computed
	// from it is unsound.
	ErrTruncatedHistory = errors.New("check: history overflowed the recorder")
	// ErrFenceRegress: a grant carried a fencing token at or below one
	// already issued for the lock — a fenced resource could no longer tell
	// a live holder from a stale one.
	ErrFenceRegress = errors.New("check: fencing token did not advance")
)

// Violation reports the first invariant breach found in a history.
type Violation struct {
	Err    error
	Detail string
	// Events are the offending events: the one that tripped the invariant
	// last, preceded by the earlier events it conflicts with.
	Events []wire.HistoryEvent
}

// Error renders the violation with its offending events.
func (v *Violation) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v: %s", v.Err, v.Detail)
	for _, ev := range v.Events {
		b.WriteString("\n  ")
		b.WriteString(ev.String())
	}
	return b.String()
}

// Unwrap lets errors.Is match the sentinel.
func (v *Violation) Unwrap() error { return v.Err }

// hold is one granted lock session as the checker tracks it.
type hold struct {
	thread wire.ThreadID
	site   wire.SiteID
	grant  wire.HistoryEvent
	// revisedAt is the version the most recent revised (post-recovery)
	// grant re-issued this hold at, 0 if never revised. A recovery can
	// poll the holder's published-but-unreleased version off a replica and
	// adopt it as the committed baseline before the holder releases; the
	// revised grant at that version marks the later same-version release
	// as the commit of an already-adopted version, not a regress.
	revisedAt uint64
	// fence is the fencing token the hold's most recent grant carried.
	// Revised re-issues must never hand this hold a smaller token.
	fence uint64
}

// lockState replays one lock's protocol state.
type lockState struct {
	committed uint64
	// fence is the highest fencing token any grant has carried for this
	// lock. Unlike committed it is never rewound by recovery: tokens must
	// stay monotonic across handoff and standby promotion, or a fenced
	// resource could mistake a stale holder for the live one.
	fence   uint64
	fenceEv wire.HistoryEvent
	holder  *hold
	readers map[wire.ThreadID]*hold
	// pending maps queued threads to their acquire event.
	pending map[wire.ThreadID]wire.HistoryEvent
	// knownAt[v] is the set of sites that have held version v's bytes
	// (publisher, appliers, and recovery survivors).
	knownAt map[uint64]map[wire.SiteID]bool
	// shadow[v][name] is the digest of version v's bytes for one replica —
	// the checker-maintained shadow copy reads are compared against.
	shadow map[uint64]map[string]shadowEntry
}

// shadowEntry is one replica's digest at one version. Entries set by a
// publish or apply (the version's actual bytes moving) are authoritative;
// entries adopted from an observe are weak — a site whose replica set
// includes names the version's publisher never shipped legitimately sees
// local bytes for them, so weak entries provide context but a mismatch is
// only a violation against an authoritative one.
type shadowEntry struct {
	sum  uint32
	auth bool
	src  wire.HistoryEvent
}

func newLockState() *lockState {
	return &lockState{
		readers: make(map[wire.ThreadID]*hold),
		pending: make(map[wire.ThreadID]wire.HistoryEvent),
		knownAt: make(map[uint64]map[wire.SiteID]bool),
		shadow:  make(map[uint64]map[string]shadowEntry),
	}
}

func (ls *lockState) know(v uint64, site wire.SiteID) {
	m := ls.knownAt[v]
	if m == nil {
		m = make(map[wire.SiteID]bool)
		ls.knownAt[v] = m
	}
	m[site] = true
}

// demoteUncommitted weakens every authoritative shadow entry the thread
// published above the committed version: a publish only truly defines its
// version once the matching release commits it, and this thread's hold
// ended without one.
func (ls *lockState) demoteUncommitted(t wire.ThreadID) {
	for ver, sh := range ls.shadow {
		if ver <= ls.committed {
			continue
		}
		for name, e := range sh {
			if e.auth && e.src.Kind == wire.HistPublish && e.src.Thread == t {
				e.auth = false
				sh[name] = e
			}
		}
	}
}

// pruneBelow forgets shadow and known-site state for every version strictly
// below v — the pruneCommitted mode's horizon sweep, run as commits advance
// so the retained versions are only the committed one and any uncommitted
// successors in flight.
func (ls *lockState) pruneBelow(v uint64) {
	for ver := range ls.shadow {
		if ver < v {
			delete(ls.shadow, ver)
		}
	}
	for ver := range ls.knownAt {
		if ver < v {
			delete(ls.knownAt, ver)
		}
	}
}

// dropAbove forgets shadow and known-site state for every version strictly
// above v: a recovery rewound the committed version, so those numbers will
// be reissued with fresh bytes.
func (ls *lockState) dropAbove(v uint64) {
	for ver := range ls.shadow {
		if ver > v {
			delete(ls.shadow, ver)
		}
	}
	for ver := range ls.knownAt {
		if ver > v {
			delete(ls.knownAt, ver)
		}
	}
}

// checkerMode selects how much history-comparison state a checker retains.
type checkerMode int

const (
	// retainAll keeps every version's shadow digests and up-to-date sets
	// for the whole replay — the offline default, maximal detection power.
	retainAll checkerMode = iota
	// pruneCommitted forgets shadow and known-site state strictly below
	// each lock's committed version as commits advance. Detection only
	// weakens for comparisons against long-committed versions (a stale
	// read of ancient bytes may pass); nothing new can be flagged, so the
	// mode never introduces false positives. It bounds memory by live
	// protocol state instead of run length — what lets the online monitor
	// run inside an open-ended load harness.
	pruneCommitted
)

// checker replays a history event by event.
type checker struct {
	mode   checkerMode
	locks  map[wire.LockID]*lockState
	banned map[wire.ThreadID]wire.HistoryEvent
	// home is each lock's current manager site as the home chain
	// (HistHome/HistHandoff events) establishes it.
	home map[wire.LockID]wire.SiteID
	// pendingMove[l] is the destination of an in-flight handoff: the site
	// the next handoff-install for the lock must occur at.
	pendingMove map[wire.LockID]wire.SiteID
	// homeEv remembers the event that set a lock's current home, for
	// violation context.
	homeEv map[wire.LockID]wire.HistoryEvent
}

func newChecker(mode checkerMode) *checker {
	return &checker{
		mode:        mode,
		locks:       make(map[wire.LockID]*lockState),
		banned:      make(map[wire.ThreadID]wire.HistoryEvent),
		home:        make(map[wire.LockID]wire.SiteID),
		pendingMove: make(map[wire.LockID]wire.SiteID),
		homeEv:      make(map[wire.LockID]wire.HistoryEvent),
	}
}

// Check replays a recorded history against the entry-consistency
// specification and returns the first violation, or nil. Events must be in
// recorder order (as returned by Recorder.Events).
func Check(events []wire.HistoryEvent) *Violation {
	c := newChecker(retainAll)
	for _, ev := range events {
		if v := c.step(ev); v != nil {
			return v
		}
	}
	return nil
}

// CheckRecorder checks a recorder's full history, first insisting the
// recorder actually holds the full history: an overflowed recorder returns
// an ErrTruncatedHistory violation instead of a verdict on the surviving
// prefix, because "the prefix was consistent" says nothing about the run —
// and a coverage signature of a clipped history would under-report the
// states the run reached.
func CheckRecorder(r *Recorder) *Violation {
	if d := r.Dropped(); d > 0 {
		return violate(ErrTruncatedHistory,
			fmt.Sprintf("%d events overflowed the %d-slot buffer; raise the recorder capacity", d, len(r.slots)))
	}
	return Check(r.Events())
}

func (c *checker) lock(id wire.LockID) *lockState {
	ls, ok := c.locks[id]
	if !ok {
		ls = newLockState()
		c.locks[id] = ls
	}
	return ls
}

// violate builds a violation from the tripping event and its context.
func violate(err error, detail string, evs ...wire.HistoryEvent) *Violation {
	return &Violation{Err: err, Detail: detail, Events: evs}
}

func (c *checker) step(ev wire.HistoryEvent) *Violation {
	switch ev.Kind {
	case wire.HistAcquire:
		return c.onAcquire(ev)
	case wire.HistGrant:
		return c.onGrant(ev)
	case wire.HistGrantDropped:
		c.lock(ev.Lock).removeHold(ev.Thread)
	case wire.HistNack:
		delete(c.lock(ev.Lock).pending, ev.Thread)
	case wire.HistRelease:
		return c.onRelease(ev)
	case wire.HistRegister:
		// Only a creator's register seeds a version; Version 0 registers
		// merely record interest.
		if ev.Version > 0 {
			ls := c.lock(ev.Lock)
			ls.committed = ev.Version
			ls.know(ev.Version, ev.Site)
		}
	case wire.HistApply:
		ls := c.lock(ev.Lock)
		ls.know(ev.Version, ev.Site)
		return c.matchShadow(ls, ev, true, false, true)
	case wire.HistPublish:
		ls := c.lock(ev.Lock)
		ls.know(ev.Version, ev.Site)
		// A publish from a thread the checker no longer tracks as holding
		// (its hold was broken, or voided by a surrogate restore) is an
		// orphan: the synchronization thread will ignore its release, so its
		// bytes never define the version — record them as weak context only.
		auth := ev.Note == "create" ||
			(ls.holder != nil && ls.holder.thread == ev.Thread) ||
			ls.readers[ev.Thread] != nil
		return c.matchShadow(ls, ev, auth, ev.Note == "create", auth)
	case wire.HistObserve:
		return c.onObserve(ev)
	case wire.HistBreak:
		ls := c.lock(ev.Lock)
		if ls.removeHold(ev.Thread) {
			// The broken holder may have published a new version locally
			// whose release never reached the synchronization thread (its
			// site died mid-release). That version number will be reissued
			// to the next holder with different bytes: the zombie's
			// uncommitted publishes stop defining their versions.
			ls.demoteUncommitted(ev.Thread)
		}
	case wire.HistBan:
		if _, dup := c.banned[ev.Thread]; !dup {
			c.banned[ev.Thread] = ev
		}
	case wire.HistRecover:
		return c.onRecover(ev)
	case wire.HistHome:
		return c.onHome(ev)
	case wire.HistHandoff:
		return c.onHandoff(ev)
	case wire.HistTransferSend, wire.HistCrash, wire.HistFault, wire.HistRelay:
		// Context for reports; no invariant attaches. A relayed push is
		// checked through the members' own HistApply events, so routing a
		// version through a relay cannot weaken version discipline.
	}
	return nil
}

// removeHold drops whatever hold the thread has, reporting whether one
// existed.
func (ls *lockState) removeHold(t wire.ThreadID) bool {
	if ls.holder != nil && ls.holder.thread == t {
		ls.holder = nil
		return true
	}
	if _, ok := ls.readers[t]; ok {
		delete(ls.readers, t)
		return true
	}
	return false
}

func (c *checker) onAcquire(ev wire.HistoryEvent) *Violation {
	ls := c.lock(ev.Lock)
	if ls.holder != nil && ls.holder.thread == ev.Thread {
		return violate(ErrHolderQueued,
			fmt.Sprintf("thread %d queued for lock %d while holding it exclusively", ev.Thread, ev.Lock),
			ls.holder.grant, ev)
	}
	if h, ok := ls.readers[ev.Thread]; ok {
		return violate(ErrHolderQueued,
			fmt.Sprintf("thread %d queued for lock %d while holding it shared", ev.Thread, ev.Lock),
			h.grant, ev)
	}
	ls.pending[ev.Thread] = ev
	return nil
}

func (c *checker) onGrant(ev wire.HistoryEvent) *Violation {
	ls := c.lock(ev.Lock)

	if ev.Revised {
		// A revised grant re-issues an existing hold after recovery; it
		// must land on the current hold, never create one.
		h := ls.holder
		if h == nil || h.thread != ev.Thread {
			h = ls.readers[ev.Thread]
		}
		if h == nil {
			return violate(ErrOrphanGrant,
				fmt.Sprintf("revised grant of lock %d to thread %d, which holds nothing", ev.Lock, ev.Thread), ev)
		}
		h.revisedAt = ev.Version
		// A revised grant re-carries the hold's own token (which may trail
		// the lock's max: a reader re-issued after a later hold minted) or a
		// fresh, larger one (a promotion re-minting under a new epoch). It
		// may never shrink the hold's token.
		if ev.AuxVersion > 0 {
			if ev.AuxVersion < h.fence {
				return violate(ErrFenceRegress,
					fmt.Sprintf("revised grant of lock %d carries fence %d, below the hold's token %d",
						ev.Lock, ev.AuxVersion, h.fence),
					h.grant, ev)
			}
			h.fence = ev.AuxVersion
			if ev.AuxVersion > ls.fence {
				ls.fence = ev.AuxVersion
				ls.fenceEv = ev
			}
		}
	} else {
		acq, ok := ls.pending[ev.Thread]
		if !ok {
			return violate(ErrOrphanGrant,
				fmt.Sprintf("grant of lock %d to thread %d with no queued acquire", ev.Lock, ev.Thread), ev)
		}
		delete(ls.pending, ev.Thread)
		if ban, isBanned := c.banned[ev.Thread]; isBanned && acq.Seq > ban.Seq {
			return violate(ErrBannedRegrant,
				fmt.Sprintf("thread %d was banned at #%d but its later request was granted", ev.Thread, ban.Seq),
				ban, acq, ev)
		}
		if ls.holder != nil {
			return violate(ErrDualHolder,
				fmt.Sprintf("lock %d granted to thread %d while thread %d holds it exclusively",
					ev.Lock, ev.Thread, ls.holder.thread),
				ls.holder.grant, ev)
		}
		if !ev.Shared && len(ls.readers) > 0 {
			for _, r := range ls.readers {
				return violate(ErrDualHolder,
					fmt.Sprintf("lock %d granted exclusively to thread %d while thread %d reads it",
						ev.Lock, ev.Thread, r.thread),
					r.grant, ev)
			}
		}
		// AuxVersion carries the grant's fencing token (0 on histories
		// recorded before fencing existed — those skip the check). A fresh
		// grant must mint a token strictly above every token previously
		// issued for the lock, across handoffs and promotions.
		if ev.AuxVersion > 0 && ev.AuxVersion <= ls.fence {
			return violate(ErrFenceRegress,
				fmt.Sprintf("grant of lock %d carries fence %d, but fence %d was already issued",
					ev.Lock, ev.AuxVersion, ls.fence),
				ls.fenceEv, ev)
		}
		h := &hold{thread: ev.Thread, site: ev.Site, grant: ev, fence: ev.AuxVersion}
		if ev.Shared {
			ls.readers[ev.Thread] = h
		} else {
			ls.holder = h
		}
		if ev.AuxVersion > ls.fence {
			ls.fence = ev.AuxVersion
			ls.fenceEv = ev
		}
	}

	if ev.Version != ls.committed {
		return violate(ErrGrantVersion,
			fmt.Sprintf("grant of lock %d carries v%d, committed version is v%d", ev.Lock, ev.Version, ls.committed), ev)
	}
	if ev.Version > 0 {
		for _, site := range ev.Sites.Sites() {
			if !ls.knownAt[ev.Version][site] {
				return violate(ErrUpToDateOverclaim,
					fmt.Sprintf("grant of lock %d claims site %d is up to date at v%d, but that site never held those bytes",
						ev.Lock, site, ev.Version), ev)
			}
		}
	}
	return nil
}

func (c *checker) onRelease(ev wire.HistoryEvent) *Violation {
	ls := c.lock(ev.Lock)
	// A release at exactly the committed version is legal only when a
	// recovery adopted the holder's published-but-unreleased version off a
	// replica and a revised grant re-issued the hold at it — then this
	// release is the commit of a version already baselined, not a reuse.
	rebased := ls.holder != nil && ls.holder.thread == ev.Thread &&
		ls.holder.revisedAt != 0 && ls.holder.revisedAt == ev.Version
	ls.removeHold(ev.Thread)
	if ev.Aborted || ev.Shared {
		if ev.Aborted && !ev.Shared {
			// The hold ended without committing: any publish the thread
			// recorded for a yet-uncommitted version no longer defines
			// those bytes — the number will be re-issued.
			ls.demoteUncommitted(ev.Thread)
		}
		return nil
	}
	if ev.Version < ls.committed || (ev.Version == ls.committed && !rebased) {
		return violate(ErrVersionRegress,
			fmt.Sprintf("release of lock %d commits v%d, already at v%d", ev.Lock, ev.Version, ls.committed), ev)
	}
	ls.committed = ev.Version
	// The releaser's own publish establishes its bytes — but a recovery
	// between that publish record and this release (a standby promotion
	// rewinding to the pre-publish shadow) drops that knowledge, while the
	// surviving holder's release still legitimately commits the version.
	// The committing release itself proves the site holds the bytes.
	ls.know(ev.Version, ev.Site)
	for _, site := range ev.Sites.Sites() {
		if site == ev.Site {
			continue
		}
		if !ls.knownAt[ev.Version][site] {
			return violate(ErrUpToDateOverclaim,
				fmt.Sprintf("release of lock %d claims site %d holds v%d, but no apply of v%d at that site was recorded",
					ev.Lock, site, ev.Version, ev.Version), ev)
		}
	}
	if c.mode == pruneCommitted {
		ls.pruneBelow(ls.committed)
	}
	return nil
}

// matchShadow compares an event's digests against the shadow copy of its
// version, installing entries for names not yet seen. auth marks the event
// as carrying the version's actual bytes (a publish or apply); observes
// install weak entries and only violate against authoritative ones. With
// redefine set (a creator seeding version 1 locally), existing entries are
// overwritten instead of compared: concurrent creators legitimately race to
// define the initial bytes, and the synchronization thread's single creator
// seed decides whose transfer wins later. With enforce clear, mismatches
// are never flagged and entries only install where none exist — used for
// events whose bytes may legitimately predate a recovery era.
func (c *checker) matchShadow(ls *lockState, ev wire.HistoryEvent, auth, redefine, enforce bool) *Violation {
	if ev.Version == 0 || len(ev.Digests) == 0 {
		return nil
	}
	sh := ls.shadow[ev.Version]
	if sh == nil {
		sh = make(map[string]shadowEntry)
		ls.shadow[ev.Version] = sh
	}
	for _, d := range ev.Digests {
		cur, seen := sh[d.Name]
		if enforce && seen && !redefine && cur.auth && cur.sum != d.Sum {
			return violate(ErrStaleRead,
				fmt.Sprintf("replica %q at lock %d v%d has digest %08x here, but the version's bytes have digest %08x",
					d.Name, ev.Lock, ev.Version, d.Sum, cur.sum),
				cur.src, ev)
		}
		if !seen || redefine || (auth && !cur.auth) {
			sh[d.Name] = shadowEntry{sum: d.Sum, auth: auth, src: ev}
		}
	}
	return nil
}

func (c *checker) onObserve(ev wire.HistoryEvent) *Violation {
	ls := c.lock(ev.Lock)
	if ev.Version < ev.AuxVersion {
		return violate(ErrStaleRead,
			fmt.Sprintf("thread %d entered lock %d at local v%d, below the granted v%d",
				ev.Thread, ev.Lock, ev.Version, ev.AuxVersion), ev)
	}
	// A reader's bytes are only enforced against the shadow copy when the
	// history shows this site receiving this version's bytes (publish,
	// apply, creator seed, or recovery). A site that silently survived a
	// recovery rewind legitimately carries another era's bytes under a
	// reissued version number — weakened consistency, not a violation.
	enforce := ls.knownAt[ev.Version][ev.Site]
	return c.matchShadow(ls, ev, false, false, enforce)
}

// onHandoff checks that only the lock's current home ships its record
// away, and arms the install expectation: the next handoff-install for
// this lock must happen at the handoff's destination.
func (c *checker) onHandoff(ev wire.HistoryEvent) *Violation {
	if cur, ok := c.home[ev.Lock]; ok && cur != ev.Site {
		return violate(ErrHomeChain,
			fmt.Sprintf("site %d shipped lock %d's record away, but site %d is its home", ev.Site, ev.Lock, cur),
			c.homeEv[ev.Lock], ev)
	}
	for _, to := range ev.Sites.Sites() {
		c.pendingMove[ev.Lock] = to
		break
	}
	return nil
}

// onHome replays a home-chain event: a lock's record materialising at a
// manager site. Registration seeds the chain; handoff-install extends it
// (only at the site the preceding HistHandoff named); standby-promote
// repairs it after a home died, so it is accepted from any site, and any
// in-flight handoff expectation is left armed — the old home's send may
// still land at its target afterwards.
func (c *checker) onHome(ev wire.HistoryEvent) *Violation {
	switch ev.Note {
	case "handoff-install":
		want, ok := c.pendingMove[ev.Lock]
		if !ok || want != ev.Site {
			detail := fmt.Sprintf("site %d installed lock %d's record with no handoff addressed to it", ev.Site, ev.Lock)
			if ok {
				detail = fmt.Sprintf("site %d installed lock %d's record, but the handoff named site %d", ev.Site, ev.Lock, want)
			}
			return violate(ErrHomeChain, detail, c.homeEv[ev.Lock], ev)
		}
		delete(c.pendingMove, ev.Lock)
	case "register":
		if cur, ok := c.home[ev.Lock]; ok && cur != ev.Site {
			return violate(ErrHomeChain,
				fmt.Sprintf("lock %d registered a home at site %d while site %d is its home", ev.Lock, ev.Site, cur),
				c.homeEv[ev.Lock], ev)
		}
	}
	c.home[ev.Lock] = ev.Site
	c.homeEv[ev.Lock] = ev
	return nil
}

// onRecover re-baselines the lock after failure handling rewrote its
// committed state: a daemon-poll verdict ("poll-best"), the no-surviving-
// copy fallback ("weakened-local"), or a surrogate restoring from a
// snapshot ("surrogate-restore", which also voids unrecovered holds).
func (c *checker) onRecover(ev wire.HistoryEvent) *Violation {
	ls := c.lock(ev.Lock)
	if ev.Note == "standby-promote" && ev.Version < ls.committed {
		// A standby's shadow may run ahead of the history (release state
		// streams to the successor before it is recorded) but never
		// behind it: promoting a shadow below the committed version means
		// a committed number would be re-issued to the next holder.
		return violate(ErrVersionRegress,
			fmt.Sprintf("standby promotion of lock %d restores v%d behind the committed v%d",
				ev.Lock, ev.Version, ls.committed), ev)
	}
	ls.dropAbove(ev.Version)
	ls.committed = ev.Version
	switch ev.Note {
	case "weakened-local":
		// All copies of the committed version were lost; the survivor's
		// local bytes redefine it.
		delete(ls.shadow, ev.Version)
		ls.knownAt[ev.Version] = map[wire.SiteID]bool{ev.Site: true}
	case "surrogate-restore":
		// Transient state (holds, queue) is deliberately not recovered;
		// surviving threads re-issue their requests.
		ls.holder = nil
		ls.readers = make(map[wire.ThreadID]*hold)
		ls.pending = make(map[wire.ThreadID]wire.HistoryEvent)
		for _, site := range ev.Sites.Sites() {
			ls.know(ev.Version, site)
		}
	case "standby-promote":
		// A ring successor restored the lock from its streamed shadow.
		// Unlike a surrogate restore, leases survive: the shadow carries
		// the holder and readers (ev.Thread names the restored exclusive
		// holder), so matching holds are kept — only the version baseline
		// and up-to-date set re-anchor to the shadow. A tracked holder
		// the shadow does NOT carry did not survive the dead home: either
		// its grant was recorded but never streamed (and delivery follows
		// the stream, so no client holds it), or its release reached the
		// standby without its record. Its uncommitted publishes stop
		// defining their versions, exactly as on a lease break.
		for _, site := range ev.Sites.Sites() {
			ls.know(ev.Version, site)
		}
		if ls.holder != nil && ls.holder.thread != ev.Thread {
			t := ls.holder.thread
			ls.holder = nil
			ls.demoteUncommitted(t)
		}
	default: // "poll-best"
		ls.know(ev.Version, ev.Site)
	}
	if c.mode == pruneCommitted {
		ls.pruneBelow(ls.committed)
	}
	return nil
}
