package check

import (
	"sync"
	"testing"

	"mocha/internal/wire"
)

func TestRecorderConcurrentWriters(t *testing.T) {
	const writers, perWriter = 8, 1000
	r := NewRecorder(writers*perWriter, nil)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Record(wire.HistoryEvent{
					Kind: wire.HistAcquire,
					Site: wire.SiteID(w + 1),
					Lock: wire.LockID(i),
				})
			}
		}()
	}
	wg.Wait()

	evs := r.Events()
	if len(evs) != writers*perWriter {
		t.Fatalf("recorded %d events, want %d", len(evs), writers*perWriter)
	}
	if r.Dropped() != 0 {
		t.Fatalf("dropped %d events with sufficient capacity", r.Dropped())
	}
	// Seq must be the slot order, dense and 1-based.
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has Seq %d", i, ev.Seq)
		}
	}
}

func TestRecorderOverflowCounted(t *testing.T) {
	r := NewRecorder(4, nil)
	for i := 0; i < 10; i++ {
		r.Record(wire.HistoryEvent{Kind: wire.HistAcquire})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped())
	}
	if len(r.Events()) != 4 {
		t.Fatalf("Events returned %d, want 4", len(r.Events()))
	}
}

func TestRecorderFingerprintIgnoresTiming(t *testing.T) {
	mk := func() *Recorder {
		r := NewRecorder(16, nil)
		r.Record(wire.HistoryEvent{Kind: wire.HistAcquire, Site: 1, Lock: 9})
		r.Record(wire.HistoryEvent{Kind: wire.HistGrant, Site: 1, Lock: 9, Version: 3,
			Sites: wire.NewSiteSet(1, 2), Digests: []wire.ReplicaDigest{{Name: "x", Sum: 7}}})
		return r
	}
	a, b := mk(), mk()
	// Burn extra ticks on b's clock: Tick differences must not change the
	// fingerprint.
	b.clock.Load().Tick()
	b.Record(wire.HistoryEvent{Kind: wire.HistRelease, Site: 1, Lock: 9, Version: 4})
	a.Record(wire.HistoryEvent{Kind: wire.HistRelease, Site: 1, Lock: 9, Version: 4})
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("fingerprints differ across identical histories")
	}
	a.Record(wire.HistoryEvent{Kind: wire.HistBan, Thread: 5})
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("fingerprint blind to an extra event")
	}
}
