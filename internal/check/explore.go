package check

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"strings"

	"mocha/internal/netsim"
	"mocha/internal/wire"
)

// This file is the generic half of coverage-guided fault exploration: run
// fingerprints over protocol transitions, encodable fault schedules, a
// novelty-ranked corpus, and the mutation session that drives it. It knows
// nothing about core — fault points appear as their registry names — so the
// package keeps its wire+netsim-only dependency story and any harness
// (the explorer tests, the bench tool) can drive a session.

// Coverage is the set of protocol transitions a run exercised, as hashed
// transition keys. Two keys collide only if fnv-64 collides, so set
// operations on Coverage stand in for set operations on transitions.
type Coverage map[uint64]struct{}

// transitionKey hashes one coverage atom.
func transitionKey(parts ...uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			buf[i] = byte(p >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// evAtom reduces one event to its transition identity: the kind, its mode
// flags, and the note class (fault-point name, nack reason, recovery
// verdict). Site, thread, lock, and version numbers are deliberately
// excluded — coverage is about which protocol transitions ran, not which
// data they ran over, so runs with different cluster shapes still compare.
// Free-text notes embed those numbers too ("lease expired on lock 101 …"),
// so digits are stripped before hashing: without that, every (lock, site)
// pairing of the same transition would masquerade as new coverage.
func evAtom(ev wire.HistoryEvent) uint64 {
	var flags uint64
	if ev.Shared {
		flags |= 1
	}
	if ev.Aborted {
		flags |= 2
	}
	if ev.Revised {
		flags |= 4
	}
	h := fnv.New64a()
	h.Write([]byte{byte(ev.Kind), byte(flags), byte(ev.Flag)})
	var note [64]byte
	n := 0
	for i := 0; i < len(ev.Note) && n < len(note); i++ {
		if c := ev.Note[i]; c < '0' || c > '9' {
			note[n] = c
			n++
		}
	}
	h.Write(note[:n])
	return h.Sum64()
}

// CoverageOf fingerprints a history as its transition set: one key per
// distinct event atom (kind + flags + note class), plus one key per
// distinct per-lock atom bigram — the pairs of consecutive transitions each
// lock's state machine took. The bigrams are what distinguish interesting
// interleavings: a break-then-grant and a grant-then-break contain the same
// atoms but different edges.
func CoverageOf(events []wire.HistoryEvent) Coverage {
	cov := make(Coverage)
	prev := make(map[wire.LockID]uint64)
	for _, ev := range events {
		a := evAtom(ev)
		cov[transitionKey(1, a)] = struct{}{}
		if p, ok := prev[ev.Lock]; ok {
			cov[transitionKey(2, p, a)] = struct{}{}
		}
		prev[ev.Lock] = a
	}
	return cov
}

// Merge folds o into c, returning how many keys were new.
func (c Coverage) Merge(o Coverage) int {
	fresh := 0
	for k := range o {
		if _, ok := c[k]; !ok {
			c[k] = struct{}{}
			fresh++
		}
	}
	return fresh
}

// Signature reduces the coverage set to one order-independent value, so two
// runs reached the same transition set iff their signatures match.
func (c Coverage) Signature() uint64 {
	var sig uint64
	for k := range c {
		// Mix each key before xor-folding so that sets differing by a
		// swap of two related keys don't cancel.
		x := k * 0x9E3779B97F4A7C15
		x ^= x >> 29
		sig ^= x * 0xBF58476D1CE4E5B9
	}
	return sig
}

// OneWayCut schedules an asymmetric partition: the From→To direction goes
// dark AfterMS milliseconds into the workload and heals ForMS later. The
// reverse direction keeps working throughout.
type OneWayCut struct {
	From    uint32 `json:"from"`
	To      uint32 `json:"to"`
	AfterMS int    `json:"after_ms"`
	ForMS   int    `json:"for_ms"`
}

// SiteSkew bounds one site's lease-timer clock drift relative to true time:
// positive MS means that site's manager judges holds MS milliseconds older
// than they are.
type SiteSkew struct {
	Site uint32 `json:"site"`
	MS   int    `json:"ms"`
}

// Schedule is one complete, replayable fault schedule. Seed derives
// everything the schedule does not spell out (cluster shape, workload,
// network seed, base fault plan), exactly as the fixed-seed explorer always
// has; the explicit fields are the dimensions the mutator perturbs. The
// zero values of every explicit field reproduce the pure seed-derived run,
// so the 20-seed baseline is the degenerate schedule {Seed: s}.
type Schedule struct {
	Seed int64 `json:"seed"`
	// Fires overrides the seed-derived fault plan: for each fault-point
	// name, the occurrence indices at which it takes its failure path.
	// A nil map means "use the seed's derived plan"; an empty non-nil map
	// disables all point-firing.
	Fires map[string][]int `json:"fires,omitempty"`
	// DelayMS overrides the seed-derived poll/handoff stall (0 = derived).
	DelayMS int `json:"delay_ms,omitempty"`
	// Victim, when nonzero, fail-stops that site VictimAfterMS into the
	// workload regardless of fault-point traffic.
	Victim        uint32 `json:"victim,omitempty"`
	VictimAfterMS int    `json:"victim_after_ms,omitempty"`
	// Cuts are scheduled one-way partitions.
	Cuts []OneWayCut `json:"cuts,omitempty"`
	// BurstLoss/BurstLen add correlated loss bursts to every link.
	BurstLoss float64 `json:"burst_loss,omitempty"`
	BurstLen  int     `json:"burst_len,omitempty"`
	// Skews are per-site lease-timer clock offsets.
	Skews []SiteSkew `json:"skews,omitempty"`
}

// Dimensions reports which of the mutation-only fault dimensions the
// schedule uses, as the marker notes the harness records for them. Empty
// for every baseline (pure-seed) schedule.
func (s Schedule) Dimensions() []string {
	var dims []string
	if len(s.Cuts) > 0 {
		dims = append(dims, NoteOneWayPartition)
	}
	if len(s.Skews) > 0 {
		dims = append(dims, NoteLeaseSkew)
	}
	if s.BurstLoss > 0 {
		dims = append(dims, NoteBurstLoss)
	}
	return dims
}

// Marker notes a schedule-driving harness records (as HistFault events) when
// arming each mutation-only fault dimension, so a run's coverage provably
// contains the dimensions it ran under.
const (
	NoteOneWayPartition = "one-way-partition"
	NoteOneWayHeal      = "one-way-heal"
	NoteLeaseSkew       = "lease-skew"
	NoteBurstLoss       = "burst-loss"
)

// DimensionKey returns the unigram coverage key a harness-recorded marker
// event with the given note produces, letting tests assert a dimension's
// presence in a coverage set without replaying histories.
func DimensionKey(note string) uint64 {
	return transitionKey(1, evAtom(wire.HistoryEvent{Kind: wire.HistFault, Note: note}))
}

// Encode renders the schedule as one copy-pasteable token (base64url JSON)
// for -schedule replay flags.
func (s Schedule) Encode() string {
	b, err := json.Marshal(s)
	if err != nil {
		// Schedule has no unmarshalable fields; keep the signature clean.
		panic("check: schedule encode: " + err.Error())
	}
	return base64.RawURLEncoding.EncodeToString(b)
}

// DecodeSchedule parses a token produced by Encode.
func DecodeSchedule(tok string) (Schedule, error) {
	var s Schedule
	b, err := base64.RawURLEncoding.DecodeString(strings.TrimSpace(tok))
	if err != nil {
		return s, fmt.Errorf("check: schedule token: %w", err)
	}
	if err := json.Unmarshal(b, &s); err != nil {
		return s, fmt.Errorf("check: schedule token: %w", err)
	}
	return s, nil
}

// String summarizes the schedule for logs.
func (s Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d", s.Seed)
	if len(s.Fires) > 0 {
		names := make([]string, 0, len(s.Fires))
		for n := range s.Fires {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, " %s@%v", n, s.Fires[n])
		}
	}
	if s.DelayMS > 0 {
		fmt.Fprintf(&b, " delay=%dms", s.DelayMS)
	}
	if s.Victim != 0 {
		fmt.Fprintf(&b, " victim=site%d@%dms", s.Victim, s.VictimAfterMS)
	}
	for _, c := range s.Cuts {
		fmt.Fprintf(&b, " cut=%d→%d@%d+%dms", c.From, c.To, c.AfterMS, c.ForMS)
	}
	if s.BurstLoss > 0 {
		fmt.Fprintf(&b, " burst=%.3f×%d", s.BurstLoss, s.BurstLen)
	}
	for _, sk := range s.Skews {
		fmt.Fprintf(&b, " skew=site%d%+dms", sk.Site, sk.MS)
	}
	return b.String()
}

// saltMutate derives a session's mutation stream; distinct from the
// harness-side config/fault/workload salts so guiding a session never
// perturbs what any base seed derives.
const saltMutate = 9

// Mutate returns a perturbed copy of the schedule. The first mutations of
// any schedule reach for the fault dimensions it does not use yet — a
// one-way cut, then lease skew, then burst loss — because an untried
// dimension is the cheapest guaranteed-new coverage there is; once all
// dimensions are in play, mutations perturb what exists (occurrence flips,
// victim redirection, timing). points is the fault-point name registry;
// sites the run's site count (victims and cut endpoints stay in range).
func Mutate(s Schedule, rng *rand.Rand, points []string, sites int) Schedule {
	m := cloneSchedule(s)
	if sites < 2 {
		sites = 2
	}
	site := func() uint32 { return uint32(1 + rng.Intn(sites)) }

	// Untried-dimension-first: see the doc comment.
	added := true
	switch {
	case len(m.Cuts) == 0:
		from := site()
		to := site()
		for to == from {
			to = site()
		}
		m.Cuts = append(m.Cuts, OneWayCut{
			From: from, To: to,
			AfterMS: 10 + rng.Intn(200),
			ForMS:   100 + rng.Intn(600),
		})
	case len(m.Skews) == 0:
		ms := 100 + rng.Intn(900)
		if rng.Intn(2) == 0 {
			ms = -ms
		}
		m.Skews = append(m.Skews, SiteSkew{Site: site(), MS: ms})
	case m.BurstLoss == 0:
		m.BurstLoss = 0.005 + rng.Float64()*0.02
		m.BurstLen = 2 + rng.Intn(6)
	default:
		added = false
	}

	// Stacked perturbations (the havoc half): a single tweak per pick
	// explores too slowly to keep pace with fresh seeds, so each mutation
	// applies several. A newly-added dimension already changes a lot, so
	// those rounds stack fewer.
	n := 1 + rng.Intn(3)
	if added {
		n = rng.Intn(2)
	}
	for i := 0; i < n; i++ {
		switch rng.Intn(8) {
		case 0: // flip a fault-point occurrence on
			if len(points) > 0 {
				p := points[rng.Intn(len(points))]
				if m.Fires == nil {
					m.Fires = make(map[string][]int)
				}
				m.Fires[p] = addOcc(m.Fires[p], rng.Intn(6))
			}
		case 6: // saturate one point: fire at every occurrence. Derived
			// plans never fire a point more than twice, so dense
			// schedules are mutation-only territory.
			if len(points) > 0 {
				p := points[rng.Intn(len(points))]
				if m.Fires == nil {
					m.Fires = make(map[string][]int)
				}
				m.Fires[p] = []int{0, 1, 2, 3, 4, 5}
			}
		case 7: // fault storm: one extra occurrence on every point at once
			if m.Fires == nil {
				m.Fires = make(map[string][]int)
			}
			for _, p := range points {
				m.Fires[p] = addOcc(m.Fires[p], rng.Intn(6))
			}
		case 1: // drop a fault-point occurrence
			for p, occ := range m.Fires { // map order randomness is fine here
				if len(occ) > 0 {
					m.Fires[p] = occ[:len(occ)-1]
					break
				}
			}
		case 2: // retime the stall
			m.DelayMS = 50 + rng.Intn(500)
		case 3: // redirect (or introduce) the timed victim
			m.Victim = site()
			m.VictimAfterMS = 20 + rng.Intn(400)
		case 4: // retime a cut
			c := &m.Cuts[rng.Intn(len(m.Cuts))]
			c.AfterMS = 10 + rng.Intn(200)
			c.ForMS = 100 + rng.Intn(600)
		case 5: // re-aim a skew
			if len(m.Skews) > 0 {
				sk := &m.Skews[rng.Intn(len(m.Skews))]
				sk.Site = site()
				sk.MS = -sk.MS
			}
		}
	}
	return m
}

func addOcc(occ []int, n int) []int {
	for _, o := range occ {
		if o == n {
			return occ
		}
	}
	occ = append(occ, n)
	sort.Ints(occ)
	return occ
}

func cloneSchedule(s Schedule) Schedule {
	m := s
	if s.Fires != nil {
		m.Fires = make(map[string][]int, len(s.Fires))
		for k, v := range s.Fires {
			m.Fires[k] = append([]int(nil), v...)
		}
	}
	m.Cuts = append([]OneWayCut(nil), s.Cuts...)
	m.Skews = append([]SiteSkew(nil), s.Skews...)
	return m
}

// Entry is one corpus member: a schedule that reached coverage no earlier
// run had, ranked by how much was new when it was admitted.
type Entry struct {
	Schedule Schedule
	// Novelty is how many coverage keys the run contributed that the
	// corpus had not seen before it.
	Novelty int
}

// Corpus accumulates the session's global coverage and the schedules that
// grew it.
type Corpus struct {
	global  Coverage
	entries []Entry
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{global: make(Coverage)}
}

// Admit folds a run's coverage into the corpus. If any key is new, the
// schedule is kept as a mutation source; the return value is the number of
// new keys (the entry's novelty, 0 if the run covered nothing new).
func (c *Corpus) Admit(s Schedule, cov Coverage) int {
	fresh := c.global.Merge(cov)
	if fresh > 0 {
		c.entries = append(c.entries, Entry{Schedule: s, Novelty: fresh})
	}
	return fresh
}

// Coverage returns the corpus's accumulated coverage set (shared, not a
// copy — callers must not mutate it).
func (c *Corpus) Coverage() Coverage { return c.global }

// Entries returns the admitted schedules in admission order.
func (c *Corpus) Entries() []Entry { return c.entries }

// Pick selects a mutation source, novelty-weighted: a schedule that opened
// 10 new transitions is 10 times as likely to be mutated as one that opened
// 1. Returns false if the corpus is empty.
func (c *Corpus) Pick(rng *rand.Rand) (Schedule, bool) {
	total := 0
	for _, e := range c.entries {
		total += e.Novelty
	}
	if total == 0 {
		return Schedule{}, false
	}
	n := rng.Intn(total)
	for _, e := range c.entries {
		if n < e.Novelty {
			return e.Schedule, true
		}
		n -= e.Novelty
	}
	return c.entries[len(c.entries)-1].Schedule, true
}

// Session is one coverage-guided exploration loop: it hands out schedules
// (seed-derived baselines first, then mutations of whatever reached new
// coverage) and folds each run's observed coverage back into the corpus.
type Session struct {
	rng    *rand.Rand
	corpus *Corpus
	points []string
	// sitesOf reports a schedule's site count so mutations aim at sites
	// that exist; nil defaults to 3.
	sitesOf func(seed int64) int

	nextSeed  int64
	baselines int // how many pure seeds to run before mutating
	issued    int
}

// NewSession starts a session at the given base seed. points is the
// fault-point registry (by name); baselines is how many consecutive pure
// seeds prime the corpus before mutation begins (the old explorer ran 20 of
// them and nothing else); sitesOf maps a seed to its derived site count.
func NewSession(seed int64, points []string, baselines int, sitesOf func(seed int64) int) *Session {
	if baselines < 1 {
		baselines = 1
	}
	return &Session{
		rng:       rand.New(rand.NewSource(netsim.DeriveSeed(seed, saltMutate))),
		corpus:    NewCorpus(),
		points:    points,
		sitesOf:   sitesOf,
		nextSeed:  seed,
		baselines: baselines,
	}
}

// freshEvery paces the session's exploration after priming: every third
// schedule is a fresh seed (a whole new derived fault plan) rather than a
// mutation. Pure exploitation starves the corpus of the plan-level
// diversity only fresh seeds provide; pure exploration is the baseline the
// session exists to beat.
const freshEvery = 3

// Next returns the next schedule to run: a priming baseline while those
// last, then novelty-picked mutations interleaved with fresh seeds (see
// freshEvery). If the corpus is still empty when mutations should start
// (every priming run crashed or was truncated), it falls back to fresh
// baselines.
func (s *Session) Next() Schedule {
	s.issued++
	if s.issued <= s.baselines || (s.issued-s.baselines)%freshEvery == 0 {
		sched := Schedule{Seed: s.nextSeed}
		s.nextSeed++
		return sched
	}
	if base, ok := s.corpus.Pick(s.rng); ok {
		sites := 3
		if s.sitesOf != nil {
			sites = s.sitesOf(base.Seed)
		}
		m := Mutate(base, s.rng, s.points, sites)
		s.ensureUntriedDimension(&m, sites)
		return m
	}
	sched := Schedule{Seed: s.nextSeed}
	s.nextSeed++
	return sched
}

// ensureUntriedDimension pushes the session toward fault dimensions the
// whole corpus has not covered yet. Mutate's per-schedule untried-first rule
// is not enough on its own: novelty weighting favors the fat baseline
// entries, so every pick of one would re-add a cut and the later dimensions
// would never be reached. Checking the marker keys against the corpus's
// global coverage instead guarantees each dimension enters play within the
// first few mutations.
func (s *Session) ensureUntriedDimension(m *Schedule, sites int) {
	cov := s.corpus.Coverage()
	tried := func(note string) bool {
		_, ok := cov[DimensionKey(note)]
		return ok
	}
	site := func() uint32 { return uint32(1 + s.rng.Intn(sites)) }
	switch {
	case !tried(NoteOneWayPartition) && len(m.Cuts) == 0:
		from, to := site(), site()
		for to == from {
			to = site()
		}
		m.Cuts = append(m.Cuts, OneWayCut{From: from, To: to,
			AfterMS: 10 + s.rng.Intn(200), ForMS: 100 + s.rng.Intn(600)})
	case !tried(NoteLeaseSkew) && len(m.Skews) == 0:
		ms := 100 + s.rng.Intn(900)
		if s.rng.Intn(2) == 0 {
			ms = -ms
		}
		m.Skews = append(m.Skews, SiteSkew{Site: site(), MS: ms})
	case !tried(NoteBurstLoss) && m.BurstLoss == 0:
		m.BurstLoss = 0.005 + s.rng.Float64()*0.02
		m.BurstLen = 2 + s.rng.Intn(6)
	}
}

// Report folds one finished run into the corpus, returning the run's
// novelty. Truncated runs (recorder overflow) are rejected outright: a
// coverage signature computed from a clipped history would claim the run
// reached fewer states than it did, poisoning novelty ranking.
func (s *Session) Report(sched Schedule, cov Coverage, truncated bool) int {
	if truncated {
		return 0
	}
	return s.corpus.Admit(sched, cov)
}

// Corpus exposes the session's corpus.
func (s *Session) Corpus() *Corpus { return s.corpus }
