package check

import (
	"testing"

	"mocha/internal/wire"
)

// TestCheckNegativeTable feeds hand-built violating histories through the
// offline checker and asserts each invariant fires with its sentinel error.
// Each entry appends to an empty or clean prefix; `want == nil` rows pin
// down the legal near-miss next to its violating sibling.
func TestCheckNegativeTable(t *testing.T) {
	homePrefix := func() []wire.HistoryEvent {
		return []wire.HistoryEvent{
			{Kind: wire.HistHome, Site: 1, Lock: 9, Note: "register"},
		}
	}
	tests := []struct {
		name string
		evs  []wire.HistoryEvent
		want error
	}{
		{
			name: "double grant",
			evs: []wire.HistoryEvent{
				{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9},
				{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9},
				{Kind: wire.HistAcquire, Site: 2, Thread: tB, Lock: 9},
				{Kind: wire.HistGrant, Site: 2, Thread: tB, Lock: 9},
			},
			want: ErrDualHolder,
		},
		{
			name: "version regress on release",
			evs: append(cleanPrefix(),
				wire.HistoryEvent{Kind: wire.HistAcquire, Site: 3, Thread: tC, Lock: 9},
				wire.HistoryEvent{Kind: wire.HistGrant, Site: 3, Thread: tC, Lock: 9, Version: 2,
					Sites: wire.NewSiteSet(1, 2)},
				// Commits v1 after v2 already committed.
				wire.HistoryEvent{Kind: wire.HistRelease, Site: 3, Thread: tC, Lock: 9, Version: 1,
					Sites: wire.NewSiteSet(1)},
			),
			want: ErrVersionRegress,
		},
		{
			name: "release re-commits current version without a revised grant",
			evs: append(cleanPrefix(),
				wire.HistoryEvent{Kind: wire.HistAcquire, Site: 3, Thread: tC, Lock: 9},
				wire.HistoryEvent{Kind: wire.HistGrant, Site: 3, Thread: tC, Lock: 9, Version: 2,
					Sites: wire.NewSiteSet(1, 2)},
				wire.HistoryEvent{Kind: wire.HistRelease, Site: 3, Thread: tC, Lock: 9, Version: 2,
					Sites: wire.NewSiteSet(1, 2)},
			),
			want: ErrVersionRegress,
		},
		{
			name: "release commits version a recovery adopted from the holder's publish",
			evs: append(cleanPrefix(),
				wire.HistoryEvent{Kind: wire.HistAcquire, Site: 3, Thread: tC, Lock: 9},
				wire.HistoryEvent{Kind: wire.HistGrant, Site: 3, Thread: tC, Lock: 9, Version: 2,
					Sites: wire.NewSiteSet(1, 2)},
				wire.HistoryEvent{Kind: wire.HistPublish, Site: 3, Thread: tC, Lock: 9, Version: 3,
					Digests: []wire.ReplicaDigest{{Name: "x", Sum: 0xc3}}},
				// Home crashed; recovery polled the replicas and found the
				// holder's published-but-unreleased v3, adopting it.
				wire.HistoryEvent{Kind: wire.HistRecover, Site: 3, Lock: 9, Version: 3, Note: "poll-best"},
				wire.HistoryEvent{Kind: wire.HistGrant, Site: 3, Thread: tC, Lock: 9, Version: 3,
					Revised: true, Sites: wire.NewSiteSet(3)},
				// The release commits the adopted v3: legal, not a regress.
				wire.HistoryEvent{Kind: wire.HistRelease, Site: 3, Thread: tC, Lock: 9, Version: 3,
					Sites: wire.NewSiteSet(3)},
			),
			want: nil,
		},
		{
			name: "stale standby promotion behind committed version",
			evs: append(cleanPrefix(),
				// cleanPrefix committed v2; a standby restoring its shadow at
				// v1 would hand the next holder a committed number again.
				wire.HistoryEvent{Kind: wire.HistRecover, Site: 3, Lock: 9, Version: 1,
					Note: "standby-promote", Sites: wire.NewSiteSet(3)},
			),
			want: ErrVersionRegress,
		},
		{
			name: "standby promotion at committed version is legal",
			evs: append(cleanPrefix(),
				wire.HistoryEvent{Kind: wire.HistRecover, Site: 3, Lock: 9, Version: 2,
					Note: "standby-promote", Sites: wire.NewSiteSet(3)},
			),
			want: nil,
		},
		{
			name: "home chain: handoff from a site that is not home",
			evs: append(homePrefix(),
				wire.HistoryEvent{Kind: wire.HistHandoff, Site: 2, Lock: 9, Sites: wire.NewSiteSet(3)},
			),
			want: ErrHomeChain,
		},
		{
			name: "home chain: install at a site no handoff named",
			evs: append(homePrefix(),
				wire.HistoryEvent{Kind: wire.HistHandoff, Site: 1, Lock: 9, Sites: wire.NewSiteSet(3)},
				wire.HistoryEvent{Kind: wire.HistHome, Site: 4, Lock: 9, Note: "handoff-install"},
			),
			want: ErrHomeChain,
		},
		{
			name: "home chain: install with no handoff at all",
			evs: append(homePrefix(),
				wire.HistoryEvent{Kind: wire.HistHome, Site: 2, Lock: 9, Note: "handoff-install"},
			),
			want: ErrHomeChain,
		},
		{
			name: "home chain: second register while a home is live",
			evs: append(homePrefix(),
				wire.HistoryEvent{Kind: wire.HistHome, Site: 2, Lock: 9, Note: "register"},
			),
			want: ErrHomeChain,
		},
		{
			name: "home chain: complete handoff is legal",
			evs: append(homePrefix(),
				wire.HistoryEvent{Kind: wire.HistHandoff, Site: 1, Lock: 9, Sites: wire.NewSiteSet(3)},
				wire.HistoryEvent{Kind: wire.HistHome, Site: 3, Lock: 9, Note: "handoff-install"},
			),
			want: nil,
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if tc.want == nil {
				if v := Check(seq(tc.evs)); v != nil {
					t.Fatalf("legal history flagged: %v", v)
				}
				return
			}
			expectViolation(t, tc.evs, tc.want)
		})
	}
}
