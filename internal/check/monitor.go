package check

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"mocha/internal/wire"
)

// Sink consumes history events. It is structurally identical to
// core.HistorySink (both packages name the shape independently so neither
// imports the other); Recorder, Monitor, and MultiSink all satisfy it.
type Sink interface {
	Record(ev wire.HistoryEvent)
}

// MultiSink fans one event stream out to several sinks — typically a
// Recorder (for offline replay and fingerprints) alongside a Monitor (for
// online violation detection). Nil sinks are skipped.
func MultiSink(sinks ...Sink) Sink {
	out := make(multiSink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			out = append(out, s)
		}
	}
	return out
}

type multiSink []Sink

func (m multiSink) Record(ev wire.HistoryEvent) {
	for _, s := range m {
		s.Record(ev)
	}
}

// DefaultWindow is how many recent events a monitor retains for violation
// reports when the caller passes no explicit window size.
const DefaultWindow = 1024

// Counterexample is what an online monitor emits on the first invariant
// breach: the violation itself, a snapshot of the recent-event window
// ending at the offending event, and the replay handle the harness
// registered (a seed or an encoded schedule).
type Counterexample struct {
	Violation *Violation
	// Window holds the last events before and including the violating one,
	// oldest first.
	Window []wire.HistoryEvent
	// Replay is the one-command replay string the harness registered via
	// SetReplay (empty if it registered none).
	Replay string
}

// Error renders the counterexample: the violation, the replay command, and
// the tail of the window.
func (cx *Counterexample) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v", cx.Violation)
	if cx.Replay != "" {
		fmt.Fprintf(&b, "\nreplay: %s", cx.Replay)
	}
	n := len(cx.Window)
	show := n
	if show > 16 {
		show = 16
	}
	fmt.Fprintf(&b, "\nlast %d of %d windowed events:", show, n)
	for _, ev := range cx.Window[n-show:] {
		b.WriteString("\n  ")
		b.WriteString(ev.String())
	}
	return b.String()
}

// Unwrap lets errors.Is reach the violation's sentinel.
func (cx *Counterexample) Unwrap() error { return cx.Violation }

// Monitor checks entry consistency online: every Record steps the same
// incremental state machine the offline checker replays, so the full event
// stream is verified as it happens — no sampling, no end-of-run bulk pass —
// at O(1) amortized work per event (a few map operations). State the
// checker only keeps for deep-history comparisons (per-version shadow
// digests and up-to-date sets) is pruned below the committed horizon as
// versions commit, so a monitor's memory is bounded by the live protocol
// state, not the run length: it can sit inside a load harness at thousands
// of operations per second indefinitely.
//
// The first violation latches: Record snapshots the bounded window of
// recent events plus the registered replay handle into a Counterexample,
// and every later Record degrades to one atomic load. Pruning only ever
// forgets comparison baselines for long-committed versions, so anything the
// monitor reports would also be reported by the offline checker on the full
// history — it may miss a stale read against a pruned version, never
// invent one.
type Monitor struct {
	cex atomic.Pointer[Counterexample]

	mu     sync.Mutex
	c      *checker
	seq    uint64
	window []wire.HistoryEvent // ring buffer
	wlen   int                 // filled prefix while warming up
	wpos   int                 // next slot to overwrite
	replay string

	seen atomic.Uint64
}

// NewMonitor builds a monitor retaining the last window events for
// counterexample reports (window <= 0 selects DefaultWindow).
func NewMonitor(window int) *Monitor {
	if window <= 0 {
		window = DefaultWindow
	}
	return &Monitor{
		c:      newChecker(pruneCommitted),
		window: make([]wire.HistoryEvent, window),
	}
}

// SetReplay registers the one-command replay string (a -seed flag, an
// encoded schedule) stamped onto any counterexample this monitor emits.
func (m *Monitor) SetReplay(cmd string) {
	m.mu.Lock()
	m.replay = cmd
	m.mu.Unlock()
}

// Record checks one event. Safe for concurrent writers; events are ordered
// by arrival at the monitor's mutex, which for core's recording sites is
// the order the protocol state machines applied them in (they record under
// the same per-lock mutexes that serialized the transitions).
func (m *Monitor) Record(ev wire.HistoryEvent) {
	m.seen.Add(1)
	if m.cex.Load() != nil {
		return // violation already latched; stay cheap forever after
	}
	m.mu.Lock()
	if m.cex.Load() != nil {
		m.mu.Unlock()
		return
	}
	m.seq++
	ev.Seq = m.seq
	m.window[m.wpos] = ev
	m.wpos = (m.wpos + 1) % len(m.window)
	if m.wlen < len(m.window) {
		m.wlen++
	}
	v := m.c.step(ev)
	if v == nil {
		m.mu.Unlock()
		return
	}
	cx := &Counterexample{
		Violation: v,
		Window:    m.snapshotLocked(),
		Replay:    m.replay,
	}
	m.mu.Unlock()
	m.cex.Store(cx)
}

// snapshotLocked copies the window's events oldest-first. Caller holds m.mu.
func (m *Monitor) snapshotLocked() []wire.HistoryEvent {
	out := make([]wire.HistoryEvent, 0, m.wlen)
	start := 0
	if m.wlen == len(m.window) {
		start = m.wpos
	}
	for i := 0; i < m.wlen; i++ {
		out = append(out, m.window[(start+i)%len(m.window)])
	}
	return out
}

// Err returns the latched counterexample, or nil if every event so far
// satisfied the invariants.
func (m *Monitor) Err() *Counterexample { return m.cex.Load() }

// EventsSeen reports how many events the monitor has received, including
// post-violation arrivals — the harness's proof that the monitor actually
// saw the run it claims to have verified.
func (m *Monitor) EventsSeen() uint64 { return m.seen.Load() }
