package check

import (
	"errors"
	"strings"
	"testing"

	"mocha/internal/wire"
)

func feed(m *Monitor, evs []wire.HistoryEvent) {
	for _, ev := range evs {
		m.Record(ev)
	}
}

func TestMonitorCleanStream(t *testing.T) {
	m := NewMonitor(0)
	evs := cleanPrefix()
	feed(m, evs)
	if cx := m.Err(); cx != nil {
		t.Fatalf("clean stream flagged: %v", cx)
	}
	if got := m.EventsSeen(); got != uint64(len(evs)) {
		t.Fatalf("EventsSeen = %d, want %d", got, len(evs))
	}
}

func TestMonitorCatchesViolationOnline(t *testing.T) {
	m := NewMonitor(8)
	m.SetReplay("go test -run X -seed=42")
	evs := []wire.HistoryEvent{
		{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9},
		{Kind: wire.HistAcquire, Site: 2, Thread: tB, Lock: 9},
		{Kind: wire.HistGrant, Site: 2, Thread: tB, Lock: 9}, // dual holder
	}
	feed(m, evs)
	cx := m.Err()
	if cx == nil {
		t.Fatal("dual grant not caught")
	}
	if !errors.Is(cx, ErrDualHolder) {
		t.Fatalf("caught %v, want ErrDualHolder", cx)
	}
	if len(cx.Window) != 4 {
		t.Fatalf("window holds %d events, want 4", len(cx.Window))
	}
	last := cx.Window[len(cx.Window)-1]
	if last.Kind != wire.HistGrant || last.Thread != tB {
		t.Fatalf("window does not end at the offending event: %v", last)
	}
	if cx.Replay != "go test -run X -seed=42" {
		t.Fatalf("replay = %q", cx.Replay)
	}
	if s := cx.Error(); !strings.Contains(s, "replay:") || !strings.Contains(s, "windowed events") {
		t.Fatalf("report missing replay or window: %s", s)
	}
}

func TestMonitorLatchesFirstViolation(t *testing.T) {
	m := NewMonitor(4)
	feed(m, []wire.HistoryEvent{
		{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9}, // orphan grant
	})
	first := m.Err()
	if first == nil {
		t.Fatal("orphan grant not caught")
	}
	// Later events — even another violation — do not replace the latch, and
	// are still counted.
	feed(m, []wire.HistoryEvent{
		{Kind: wire.HistGrant, Site: 2, Thread: tB, Lock: 9},
		{Kind: wire.HistRelease, Site: 2, Thread: tB, Lock: 9},
	})
	if m.Err() != first {
		t.Fatal("latched counterexample was replaced")
	}
	if m.EventsSeen() != 3 {
		t.Fatalf("EventsSeen = %d, want 3", m.EventsSeen())
	}
}

func TestMonitorWindowBounded(t *testing.T) {
	m := NewMonitor(4)
	// 6 clean events, then a violation: the window must hold only the last 4.
	evs := seq(cleanPrefix())[:6]
	feed(m, evs)
	m.Record(wire.HistoryEvent{Kind: wire.HistGrant, Site: 2, Thread: tB, Lock: 9, Revised: true})
	cx := m.Err()
	if cx == nil {
		t.Fatal("revised orphan grant not caught")
	}
	if len(cx.Window) != 4 {
		t.Fatalf("window holds %d events, want 4", len(cx.Window))
	}
	for i := 1; i < len(cx.Window); i++ {
		if cx.Window[i].Seq != cx.Window[i-1].Seq+1 {
			t.Fatalf("window out of order: %v", cx.Window)
		}
	}
}

// TestMonitorPrunesCommittedState is the O(1)-amortized-memory claim: a
// monitor that has streamed an unbounded run retains per-lock state bounded
// by the live protocol window, not the run length.
func TestMonitorPrunesCommittedState(t *testing.T) {
	m := NewMonitor(16)
	m.Record(wire.HistoryEvent{Kind: wire.HistRegister, Site: 1, Lock: 9, Version: 1, Note: "creator",
		Digests: []wire.ReplicaDigest{{Name: "x", Sum: 1}}})
	const rounds = 5000
	for v := uint64(1); v <= rounds; v++ {
		sum := uint32(v)
		m.Record(wire.HistoryEvent{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9})
		m.Record(wire.HistoryEvent{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9, Version: v,
			Sites: wire.NewSiteSet(1)})
		m.Record(wire.HistoryEvent{Kind: wire.HistPublish, Site: 1, Thread: tA, Lock: 9, Version: v + 1,
			Digests: []wire.ReplicaDigest{{Name: "x", Sum: sum}}})
		m.Record(wire.HistoryEvent{Kind: wire.HistRelease, Site: 1, Thread: tA, Lock: 9, Version: v + 1,
			Sites: wire.NewSiteSet(1)})
	}
	if cx := m.Err(); cx != nil {
		t.Fatalf("clean run flagged: %v", cx)
	}
	ls := m.c.locks[9]
	if ls == nil {
		t.Fatal("lock state missing")
	}
	if len(ls.shadow) > 2 || len(ls.knownAt) > 2 {
		t.Fatalf("monitor retained %d shadow / %d knownAt versions after %d commits; pruning is broken",
			len(ls.shadow), len(ls.knownAt), rounds)
	}
	// The offline checker keeps everything by design.
	c := newChecker(retainAll)
	for v := uint64(1); v <= 10; v++ {
		c.step(wire.HistoryEvent{Kind: wire.HistPublish, Site: 1, Thread: tA, Lock: 9, Version: v,
			Digests: []wire.ReplicaDigest{{Name: "x", Sum: uint32(v)}}})
	}
	if got := len(c.locks[9].shadow); got != 10 {
		t.Fatalf("offline checker pruned: %d shadow versions, want 10", got)
	}
}

func TestMonitorStillCatchesAfterPruning(t *testing.T) {
	// Pruning must not weaken the live-window invariants: a dual grant after
	// thousands of commits is still caught.
	m := NewMonitor(16)
	for v := uint64(1); v <= 1000; v++ {
		m.Record(wire.HistoryEvent{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9})
		m.Record(wire.HistoryEvent{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9, Version: v - 1})
		m.Record(wire.HistoryEvent{Kind: wire.HistRelease, Site: 1, Thread: tA, Lock: 9, Version: v})
	}
	m.Record(wire.HistoryEvent{Kind: wire.HistAcquire, Site: 1, Thread: tA, Lock: 9})
	m.Record(wire.HistoryEvent{Kind: wire.HistGrant, Site: 1, Thread: tA, Lock: 9, Version: 1000})
	m.Record(wire.HistoryEvent{Kind: wire.HistAcquire, Site: 2, Thread: tB, Lock: 9})
	m.Record(wire.HistoryEvent{Kind: wire.HistGrant, Site: 2, Thread: tB, Lock: 9, Version: 1000})
	cx := m.Err()
	if cx == nil {
		t.Fatal("dual grant after pruning not caught")
	}
	if !errors.Is(cx, ErrDualHolder) {
		t.Fatalf("caught %v, want ErrDualHolder", cx)
	}
}

func TestMultiSinkFansOut(t *testing.T) {
	rec := NewRecorder(16, nil)
	mon := NewMonitor(0)
	sink := MultiSink(rec, nil, mon)
	for _, ev := range cleanPrefix() {
		sink.Record(ev)
	}
	if rec.Len() != len(cleanPrefix()) {
		t.Fatalf("recorder saw %d events, want %d", rec.Len(), len(cleanPrefix()))
	}
	if mon.EventsSeen() != uint64(len(cleanPrefix())) {
		t.Fatalf("monitor saw %d events, want %d", mon.EventsSeen(), len(cleanPrefix()))
	}
	if cx := mon.Err(); cx != nil {
		t.Fatalf("fanned-out clean stream flagged: %v", cx)
	}
}

func TestCheckRecorderFailsTruncatedHistory(t *testing.T) {
	r := NewRecorder(4, nil)
	for _, ev := range cleanPrefix() { // 12 events into 4 slots
		r.Record(ev)
	}
	v := CheckRecorder(r)
	if v == nil {
		t.Fatal("truncated history passed")
	}
	if !errors.Is(v, ErrTruncatedHistory) {
		t.Fatalf("flagged %v, want ErrTruncatedHistory", v)
	}
	if !strings.Contains(v.Error(), "8 events overflowed") {
		t.Fatalf("report does not carry the overflow count: %v", v)
	}

	// An intact recorder with the same prefix passes.
	ok := NewRecorder(64, nil)
	for _, ev := range cleanPrefix() {
		ok.Record(ev)
	}
	if v := CheckRecorder(ok); v != nil {
		t.Fatalf("intact history flagged: %v", v)
	}
}

func TestFingerprintReflectsOverflow(t *testing.T) {
	// Two recorders hold identical slot contents, but one dropped events
	// past its capacity: their fingerprints must differ, so a truncated
	// history can never masquerade as the intact run it is a prefix of.
	full := NewRecorder(4, nil)
	over := NewRecorder(4, nil)
	evs := cleanPrefix()
	for _, ev := range evs[:4] {
		full.Record(ev)
	}
	for _, ev := range evs {
		over.Record(ev)
	}
	if full.Fingerprint() == over.Fingerprint() {
		t.Fatal("overflowed recorder fingerprints equal to its intact prefix")
	}
}
