package check_test

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"mocha/internal/check"
	"mocha/internal/core"
	"mocha/internal/eventlog"
	"mocha/internal/marshal"
	"mocha/internal/mnet"
	"mocha/internal/netsim"
	"mocha/internal/transport"
	"mocha/internal/wire"
)

// TestMain raises the default subtest parallelism: an explorer seed spends
// nearly all its wall time waiting on protocol timers, not the CPU, so the
// GOMAXPROCS-derived default serializes the seeds on small machines for no
// benefit. An explicit -test.parallel flag still wins.
func TestMain(m *testing.M) {
	flag.Parse()
	if f := flag.Lookup("test.parallel"); f != nil &&
		f.Value.String() == strconv.Itoa(runtime.GOMAXPROCS(0)) {
		_ = f.Value.Set("10")
	}
	os.Exit(m.Run())
}

// seedFlag replays exactly one explorer seed:
//
//	go test ./internal/check -run 'TestExplore$' -seed=<s>
//
// The seed deterministically derives the cluster shape, network loss and
// jitter, the workload, and the fault schedule, so a replay re-injects the
// same faults at the same named fault points.
var seedFlag = flag.Int64("seed", -1, "replay a single explorer seed")

// exploreSeeds is how many consecutive seeds one full TestExplore run
// covers, starting from MOCHA_TEST_SEED (default 1000).
const exploreSeeds = 20

// runConfig is everything one seed derives.
type runConfig struct {
	sites     int
	locks     int
	workers   int // per site
	ops       int // per worker
	ur        int
	profile   netsim.Profile
	mode      core.TransferMode
	delta     bool
	fanout    int
	placement bool
	netSeed   int64
}

// Derivation salts: each aspect of a run draws from its own stream so that,
// e.g., adding a fault point never perturbs the workload of existing seeds.
const (
	saltNetwork   = 1
	saltFaults    = 2
	saltShape     = 3
	saltPlacement = 4
	saltWorkload  = 100
)

func deriveConfig(seed int64) runConfig {
	rng := rand.New(rand.NewSource(netsim.DeriveSeed(seed, saltShape)))
	cfg := runConfig{
		sites:   3 + rng.Intn(3),
		locks:   1 + rng.Intn(3),
		workers: 1 + rng.Intn(2),
		ops:     3 + rng.Intn(4),
		netSeed: netsim.DeriveSeed(seed, saltNetwork),
	}
	cfg.ur = 1 + rng.Intn(cfg.sites)
	cfg.profile = netsim.Perfect()
	if rng.Intn(2) == 0 {
		cfg.profile.Loss = rng.Float64() * 0.03
	}
	cfg.profile.Jitter = time.Duration(rng.Intn(3)) * time.Millisecond
	cfg.mode = core.ModeMNet
	if rng.Intn(3) == 0 {
		cfg.mode = core.ModeHybrid
	}
	cfg.delta = rng.Intn(2) == 0
	cfg.fanout = rng.Intn(3)
	// Placement draws from its own stream so turning the option on for half
	// the seeds did not reshuffle any existing seed's shape or workload.
	prng := rand.New(rand.NewSource(netsim.DeriveSeed(seed, saltPlacement)))
	cfg.placement = prng.Intn(2) == 0
	return cfg
}

// faultPlan is a seed-derived fault schedule over the named fault-point
// registry: for each point, the occurrence indices (0-based, per point) at
// which it fires. A replay of the same seed counts occurrences the same way
// and so re-injects the same faults.
type faultPlan struct {
	fires map[core.FaultPoint]map[int]bool
	delay time.Duration // poll-reply delay, may exceed the request timeout
}

func deriveFaults(seed int64) *faultPlan {
	rng := rand.New(rand.NewSource(netsim.DeriveSeed(seed, saltFaults)))
	p := &faultPlan{fires: make(map[core.FaultPoint]map[int]bool)}
	for _, fp := range core.FaultPoints() {
		occs := make(map[int]bool)
		for n := rng.Intn(3); n > 0; n-- {
			occs[rng.Intn(6)] = true
		}
		p.fires[fp] = occs
	}
	p.delay = time.Duration(50+rng.Intn(500)) * time.Millisecond
	return p
}

func (p *faultPlan) String() string {
	s := ""
	for _, fp := range core.FaultPoints() {
		occs := p.fires[fp]
		if len(occs) == 0 {
			continue
		}
		s += fmt.Sprintf("  %s at occurrences %v\n", fp, keys(occs))
	}
	if s == "" {
		s = "  (no faults scheduled)\n"
	}
	return s + fmt.Sprintf("  poll delay %v", p.delay)
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for i := 0; i < 8; i++ {
		if m[i] {
			out = append(out, i)
		}
	}
	return out
}

// explorer runs one seed's randomized multi-site workload under the seed's
// fault schedule, recording the history for the checker.
type explorer struct {
	t    *testing.T
	seed int64
	cfg  runConfig
	plan *faultPlan

	sn    *transport.SimNetwork
	rec   *check.Recorder
	nodes map[wire.SiteID]*core.Node
	ctx   context.Context

	mu     sync.Mutex
	counts map[core.FaultPoint]int
	fired  []string
	killed map[wire.SiteID]bool
	kills  int
	doomed map[wire.ThreadID]bool
}

// newExplorer builds the cluster. Fault injection is armed only after the
// workload starts; setup runs fault-free.
func newExplorer(t *testing.T, seed int64, cfg runConfig, plan *faultPlan) *explorer {
	t.Helper()
	sn := transport.NewSimNetwork(netsim.Config{Profile: cfg.profile, Seed: cfg.netSeed})
	e := &explorer{
		t: t, seed: seed, cfg: cfg, plan: plan,
		sn:     sn,
		rec:    check.NewRecorder(0, sn.Clock()),
		nodes:  make(map[wire.SiteID]*core.Node, cfg.sites),
		counts: make(map[core.FaultPoint]int),
		killed: make(map[wire.SiteID]bool),
		doomed: make(map[wire.ThreadID]bool),
	}
	directory := make(map[wire.SiteID]string, cfg.sites)
	stacks := make(map[wire.SiteID]*transport.SimStack, cfg.sites)
	for i := 1; i <= cfg.sites; i++ {
		stack, err := sn.NewStack(netsim.NodeID(i))
		if err != nil {
			t.Fatalf("stack %d: %v", i, err)
		}
		stacks[wire.SiteID(i)] = stack
		directory[wire.SiteID(i)] = stack.Datagram().LocalAddr()
	}
	for i := 1; i <= cfg.sites; i++ {
		site := wire.SiteID(i)
		ep := mnet.NewEndpoint(stacks[site].Datagram(), mnet.Config{RTO: 25 * time.Millisecond, MaxRetries: 4})
		node, err := core.NewNode(core.Config{
			Site:                site,
			Endpoint:            ep,
			Stack:               stacks[site],
			Directory:           directory,
			IsHome:              site == wire.HomeSite,
			HomePlacement:       cfg.placement,
			Mode:                cfg.mode,
			DeltaTransfer:       cfg.delta,
			DisseminationFanout: cfg.fanout,
			RequestTimeout:      300 * time.Millisecond,
			TransferTimeout:     time.Second,
			DefaultLease:        500 * time.Millisecond,
			LeaseSweep:          25 * time.Millisecond,
			Log:                 eventlog.New(1 << 14),
			History:             e.rec,
			FaultHook:           e.hook,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		e.nodes[site] = node
	}
	return e
}

func (e *explorer) hook(fc core.FaultContext) core.FaultDecision {
	e.mu.Lock()
	if e.ctx == nil { // workload not started: setup runs fault-free
		e.mu.Unlock()
		return core.FaultDecision{}
	}
	n := e.counts[fc.Point]
	e.counts[fc.Point] = n + 1
	if !e.plan.fires[fc.Point][n] {
		e.mu.Unlock()
		return core.FaultDecision{}
	}
	e.fired = append(e.fired, fmt.Sprintf("%s occurrence %d: site=%d peer=%d lock=%d thread=%d v%d",
		fc.Point, n, fc.Site, fc.Peer, fc.Lock, fc.Thread, fc.Version))

	var d core.FaultDecision
	switch fc.Point {
	case core.FPDelayDaemonPoll:
		// Hold the poll reply back past the request timeout: the polling
		// recovery treats this daemon's copy as unavailable.
		d.Delay = e.plan.delay
	case core.FPDropMidTransfer:
		d.Drop = true
	case core.FPCrashBeforeGrant:
		// The requester crashes before its grant arrives.
		d.Drop = true
		e.killLocked(fc.Peer)
	case core.FPCrashAfterReleaseBeforePush:
		// The holder's site crashes after committing locally but before
		// pushing or releasing; the lease break must clean up.
		d.Drop = true
		e.killLocked(fc.Site)
	case core.FPKillLockHolder:
		// Only doom the holder if the kill budget allows actually removing
		// its site; the worker abandons the hold without unlocking.
		if e.killLocked(fc.Site) {
			e.doomed[fc.Thread] = true
		}
	case core.FPKillLockHome:
		// Kill the lock's home manager right after a grant left — the
		// window the standby failover must cover. Only meaningful under
		// home placement; in fixed mode the home is the surrogate tests'
		// subject and stays exempt.
		if e.cfg.placement {
			e.killLocked(fc.Site)
		}
	case core.FPDelayHandoff:
		// Stall a home migration's record send past the request timeout:
		// the old home must either unfreeze or commit with insurance.
		d.Delay = e.plan.delay
	}
	e.mu.Unlock()
	return d
}

// killLocked fail-stops a site (asynchronously — the hook runs on protocol
// goroutines) if the budget allows. In fixed-home mode the home site
// survives every schedule: synchronization-thread failover is the
// surrogate tests' subject, not the explorer's. Under home placement every
// manager is fair game — standby promotion is exactly what is under test.
// Caller holds e.mu.
func (e *explorer) killLocked(site wire.SiteID) bool {
	if (site == wire.HomeSite && !e.cfg.placement) || site == 0 || e.killed[site] || e.kills >= 1 {
		return false
	}
	e.killed[site] = true
	e.kills++
	e.rec.Record(wire.HistoryEvent{Kind: wire.HistCrash, Site: site})
	node := e.nodes[site]
	go func() {
		_ = node.Close()
		e.sn.Kill(netsim.NodeID(site))
	}()
	return true
}

func (e *explorer) isKilled(site wire.SiteID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.killed[site]
}

func (e *explorer) isDoomed(t wire.ThreadID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.doomed[t]
}

func lockName(l int) string    { return fmt.Sprintf("obj%d", l) }
func lockID(l int) wire.LockID { return wire.LockID(100 + l) }
func settle(d time.Duration)   { time.Sleep(d) }

// setup creates every lock's replica at the home site and registers the
// sharer sites, fault-free.
func (e *explorer) setup(ctx context.Context) error {
	hc := e.nodes[wire.HomeSite].NewHandle("creator")
	for l := 0; l < e.cfg.locks; l++ {
		r, err := e.nodes[wire.HomeSite].CreateReplica(lockName(l), marshal.Ints([]int32{0, 0}), e.cfg.sites)
		if err != nil {
			return err
		}
		rl := hc.ReplicaLock(lockID(l))
		if err := rl.Associate(ctx, r); err != nil {
			return err
		}
	}
	settle(30 * time.Millisecond)
	return nil
}

// worker is one application thread: it associates with every lock, then
// runs a random mix of exclusive writes and shared reads. Operation errors
// end the worker — under injected faults, liveness is best-effort; safety
// is the checker's job.
func (e *explorer) worker(site wire.SiteID, idx int) {
	rng := rand.New(rand.NewSource(netsim.DeriveSeed(e.seed, saltWorkload+uint64(site)*8+uint64(idx))))
	node := e.nodes[site]
	h := node.NewHandle(fmt.Sprintf("w%d-%d", site, idx))

	rls := make([]*core.ReplicaLock, 0, e.cfg.locks)
	reps := make([]*core.Replica, 0, e.cfg.locks)
	for l := 0; l < e.cfg.locks; l++ {
		if e.isKilled(site) {
			return
		}
		r, err := node.AttachReplica(lockName(l), marshal.Ints(nil))
		if err != nil {
			return
		}
		rl := h.ReplicaLock(lockID(l))
		if err := rl.Associate(e.ctx, r); err != nil {
			return
		}
		rl.SetUpdateReplicas(e.cfg.ur)
		rls = append(rls, rl)
		reps = append(reps, r)
	}

	for op := 0; op < e.cfg.ops; op++ {
		if e.isKilled(site) || e.ctx.Err() != nil {
			return
		}
		l := rng.Intn(len(rls))
		rl, r := rls[l], reps[l]
		// Per-operation deadline: a worker whose grant a fault swallowed
		// gives up quickly instead of pinning the run on the global timeout.
		opCtx, cancel := context.WithTimeout(e.ctx, time.Second)
		ok := func() bool {
			if rng.Intn(3) == 0 {
				if err := rl.LockShared(opCtx); err != nil {
					return false
				}
				_ = r.Content().IntsData()
				if e.isDoomed(h.ID()) {
					return false // site is being killed; abandon the hold
				}
				return rl.Unlock(opCtx) == nil
			}
			if err := rl.Lock(opCtx); err != nil {
				return false
			}
			if e.isDoomed(h.ID()) {
				return false
			}
			data := r.Content().IntsData()
			if len(data) >= 2 {
				data[0]++
				data[1] = data[0] * 2
			}
			return rl.Unlock(opCtx) == nil
		}()
		cancel()
		if !ok {
			return
		}
	}
}

// run executes the seed end to end and returns the recorded history.
func (e *explorer) run() []wire.HistoryEvent {
	defer func() {
		e.mu.Lock()
		for site, node := range e.nodes {
			if !e.killed[site] {
				_ = node.Close()
			}
		}
		e.mu.Unlock()
		_ = e.sn.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := e.setup(ctx); err != nil {
		e.t.Fatalf("seed %d: setup: %v", e.seed, err)
	}

	// Arm fault injection: hooks fire only once e.ctx is set.
	e.mu.Lock()
	e.ctx = ctx
	e.mu.Unlock()

	var wg sync.WaitGroup
	for i := 1; i <= e.cfg.sites; i++ {
		for w := 0; w < e.cfg.workers; w++ {
			site, w := wire.SiteID(i), w
			wg.Add(1)
			go func() {
				defer wg.Done()
				e.worker(site, w)
			}()
		}
	}
	wg.Wait()
	// Let in-flight dissemination and lease housekeeping quiesce before the
	// nodes close, so the recorded history ends at a stable state.
	settle(50 * time.Millisecond)
	return e.rec.Events()
}

// runExplore executes one seed and checks its history.
func runExplore(t *testing.T, seed int64) {
	cfg := deriveConfig(seed)
	plan := deriveFaults(seed)
	e := newExplorer(t, seed, cfg, plan)
	events := e.run()

	e.mu.Lock()
	fired := append([]string(nil), e.fired...)
	e.mu.Unlock()
	t.Logf("seed %d: %d sites, %d locks, %d workers/site, %d ops, UR=%d, mode=%v, delta=%v, fanout=%d, placement=%v, loss=%.3f, %d events, %d faults fired",
		seed, cfg.sites, cfg.locks, cfg.workers, cfg.ops, cfg.ur, cfg.mode, cfg.delta, cfg.fanout, cfg.placement, cfg.profile.Loss, len(events), len(fired))

	if v := check.Check(events); v != nil {
		report := "  (none fired)"
		if len(fired) > 0 {
			report = "  " + fired[0]
			for _, f := range fired[1:] {
				report += "\n  " + f
			}
		}
		t.Fatalf("seed %d violates entry consistency\nschedule:\n%s\nfaults fired:\n%s\nreplay: go test ./internal/check -run 'TestExplore$' -seed=%d\n\n%v",
			seed, plan, report, seed, v)
	}
	if e.rec.Dropped() > 0 {
		t.Fatalf("seed %d: recorder dropped %d events; raise the capacity", seed, e.rec.Dropped())
	}
}

// TestExplore runs the seeded fault-schedule explorer: exploreSeeds
// consecutive seeds, each deriving its own cluster shape, network
// conditions, workload, and fault schedule, with the recorded history of
// every run replayed through the entry-consistency checker. A failure
// prints the seed, the schedule, and the exact replay command.
func TestExplore(t *testing.T) {
	if testing.Short() {
		t.Skip("explorer")
	}
	if *seedFlag >= 0 {
		runExplore(t, *seedFlag)
		return
	}
	base := netsim.SeedFromEnv(1000)
	t.Logf("exploring seeds %d..%d (set %s to shift the window)", base, base+exploreSeeds-1, netsim.SeedEnv)
	for i := 0; i < exploreSeeds; i++ {
		seed := base + int64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runExplore(t, seed)
		})
	}
}

// TestExploreReplayDeterminism runs one seed's workload twice under fully
// deterministic conditions — perfect network, no faults, strictly
// sequential operations — and requires byte-identical histories (by
// fingerprint). This is the anchor for seed replay: whatever a seed's
// history fingerprints to, replaying the seed reproduces it.
func TestExploreReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("explorer")
	}
	seed := netsim.SeedFromEnv(1000)
	run := func() uint64 {
		cfg := runConfig{
			sites: 3, locks: 2, workers: 1, ops: 4, ur: 1,
			profile: netsim.Perfect(), mode: core.ModeMNet,
			netSeed: netsim.DeriveSeed(seed, saltNetwork),
		}
		plan := &faultPlan{fires: make(map[core.FaultPoint]map[int]bool)}
		e := newExplorer(t, seed, cfg, plan)
		defer func() {
			for _, node := range e.nodes {
				_ = node.Close()
			}
			_ = e.sn.Close()
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := e.setup(ctx); err != nil {
			t.Fatalf("setup: %v", err)
		}
		e.mu.Lock()
		e.ctx = ctx
		e.mu.Unlock()
		// Strictly sequential: one worker at a time, with a settle between
		// them so every run interleaves identically.
		for i := 1; i <= cfg.sites; i++ {
			e.worker(wire.SiteID(i), 0)
			settle(20 * time.Millisecond)
		}
		if v := check.Check(e.rec.Events()); v != nil {
			t.Fatalf("deterministic run violates entry consistency: %v", v)
		}
		return e.rec.Fingerprint()
	}
	a := run()
	b := run()
	if a != b {
		t.Fatalf("same seed, different histories: %016x vs %016x", a, b)
	}
}
