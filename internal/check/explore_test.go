package check_test

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"mocha/internal/check"
	"mocha/internal/core"
	"mocha/internal/eventlog"
	"mocha/internal/marshal"
	"mocha/internal/mnet"
	"mocha/internal/netsim"
	"mocha/internal/transport"
	"mocha/internal/wire"
)

// TestMain raises the default subtest parallelism: an explorer seed spends
// nearly all its wall time waiting on protocol timers, not the CPU, so the
// GOMAXPROCS-derived default serializes the seeds on small machines for no
// benefit. An explicit -test.parallel flag still wins.
func TestMain(m *testing.M) {
	flag.Parse()
	if f := flag.Lookup("test.parallel"); f != nil &&
		f.Value.String() == strconv.Itoa(runtime.GOMAXPROCS(0)) {
		_ = f.Value.Set("10")
	}
	os.Exit(m.Run())
}

// seedFlag replays exactly one baseline explorer seed:
//
//	go test ./internal/check -run 'TestExplore$' -seed=<s>
//
// The seed deterministically derives the cluster shape, network loss and
// jitter, the workload, and the fault schedule, so a replay re-injects the
// same faults at the same named fault points.
var seedFlag = flag.Int64("seed", -1, "replay a single explorer seed")

// scheduleFlag replays one encoded schedule — the token a failing guided
// run prints. Unlike -seed, it reproduces mutated schedules: extra fault
// occurrences, one-way cuts, lease skew, burst loss, timed victims.
//
//	go test ./internal/check -run TestExploreGuided -schedule=<token>
var scheduleFlag = flag.String("schedule", "", "replay one encoded fault schedule")

// exploreFlag sets the coverage-guided session's time budget (make explore
// passes 60s; the default keeps ordinary test runs quick).
var exploreFlag = flag.Duration("explore", 0, "coverage-guided exploration time budget")

// exploreSeeds is how many consecutive seeds one full TestExplore run
// covers, starting from MOCHA_TEST_SEED (default 1000).
const exploreSeeds = 20

// runConfig is everything one seed derives.
type runConfig struct {
	sites     int
	locks     int
	workers   int // per site
	ops       int // per worker
	ur        int
	profile   netsim.Profile
	mode      core.TransferMode
	delta     bool
	fanout    int
	placement bool
	netSeed   int64
	// wlSeed pins the workload rng to a fixed seed regardless of the
	// schedule seed; 0 derives it from the schedule as usual. The
	// guided-vs-baseline comparison sets it so the two strategies differ
	// only in their fault schedules, not in what the application does.
	wlSeed int64
}

// Derivation salts: each aspect of a run draws from its own stream so that,
// e.g., adding a fault point never perturbs the workload of existing seeds.
const (
	saltNetwork   = 1
	saltFaults    = 2
	saltShape     = 3
	saltPlacement = 4
	saltWorkload  = 100
)

func deriveConfig(seed int64) runConfig {
	rng := rand.New(rand.NewSource(netsim.DeriveSeed(seed, saltShape)))
	cfg := runConfig{
		sites:   3 + rng.Intn(3),
		locks:   1 + rng.Intn(3),
		workers: 1 + rng.Intn(2),
		ops:     3 + rng.Intn(4),
		netSeed: netsim.DeriveSeed(seed, saltNetwork),
	}
	cfg.ur = 1 + rng.Intn(cfg.sites)
	cfg.profile = netsim.Perfect()
	if rng.Intn(2) == 0 {
		cfg.profile.Loss = rng.Float64() * 0.03
	}
	cfg.profile.Jitter = time.Duration(rng.Intn(3)) * time.Millisecond
	cfg.mode = core.ModeMNet
	if rng.Intn(3) == 0 {
		cfg.mode = core.ModeHybrid
	}
	cfg.delta = rng.Intn(2) == 0
	cfg.fanout = rng.Intn(3)
	// Placement draws from its own stream so turning the option on for half
	// the seeds did not reshuffle any existing seed's shape or workload.
	prng := rand.New(rand.NewSource(netsim.DeriveSeed(seed, saltPlacement)))
	cfg.placement = prng.Intn(2) == 0
	return cfg
}

// faultPlan is a fault schedule over the named fault-point registry: for
// each point, the occurrence indices (0-based, per point) at which it
// fires. A replay of the same schedule counts occurrences the same way and
// so re-injects the same faults.
type faultPlan struct {
	fires map[core.FaultPoint]map[int]bool
	delay time.Duration // poll-reply delay, may exceed the request timeout
}

func deriveFaults(seed int64) *faultPlan {
	rng := rand.New(rand.NewSource(netsim.DeriveSeed(seed, saltFaults)))
	p := &faultPlan{fires: make(map[core.FaultPoint]map[int]bool)}
	for _, fp := range core.FaultPoints() {
		occs := make(map[int]bool)
		for n := rng.Intn(3); n > 0; n-- {
			// Early occurrences only: a point's first firings are reached in
			// nearly every run, so a derived plan's behavior is repeatable.
			// Deep occurrence indices (3-5) are mutation-only territory.
			occs[rng.Intn(3)] = true
		}
		p.fires[fp] = occs
	}
	p.delay = time.Duration(50+rng.Intn(500)) * time.Millisecond
	return p
}

// pointNames lists the fault-point registry for the generic session layer.
func pointNames() []string {
	pts := core.FaultPoints()
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = string(p)
	}
	return out
}

// materialize fills a pure-seed schedule's derived fault plan into its
// explicit fields, so corpus entries carry the plan their run actually used
// and mutations perturb that plan instead of silently discarding it.
// Schedules that already spell out their fires pass through unchanged.
func materialize(s check.Schedule) check.Schedule {
	if s.Fires != nil {
		return s
	}
	plan := deriveFaults(s.Seed)
	s.Fires = make(map[string][]int)
	for fp, occs := range plan.fires {
		if len(occs) > 0 {
			s.Fires[string(fp)] = keys(occs)
		}
	}
	s.DelayMS = int(plan.delay / time.Millisecond)
	return s
}

// planFromSchedule converts a materialized schedule's fires back into the
// hook-side plan.
func planFromSchedule(s check.Schedule) *faultPlan {
	p := &faultPlan{fires: make(map[core.FaultPoint]map[int]bool)}
	for name, occs := range s.Fires {
		m := make(map[int]bool, len(occs))
		for _, o := range occs {
			m[o] = true
		}
		p.fires[core.FaultPoint(name)] = m
	}
	p.delay = time.Duration(s.DelayMS) * time.Millisecond
	if p.delay <= 0 {
		p.delay = 50 * time.Millisecond
	}
	return p
}

func (p *faultPlan) String() string {
	s := ""
	for _, fp := range core.FaultPoints() {
		occs := p.fires[fp]
		if len(occs) == 0 {
			continue
		}
		s += fmt.Sprintf("  %s at occurrences %v\n", fp, keys(occs))
	}
	if s == "" {
		s = "  (no faults scheduled)\n"
	}
	return s + fmt.Sprintf("  poll delay %v", p.delay)
}

func keys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for i := 0; i < 8; i++ {
		if m[i] {
			out = append(out, i)
		}
	}
	return out
}

// explorer runs one schedule's randomized multi-site workload under its
// fault plan, recording the history for the checker and streaming it
// through an online monitor.
type explorer struct {
	t     *testing.T
	sched check.Schedule
	cfg   runConfig
	plan  *faultPlan

	sn    *transport.SimNetwork
	rec   *check.Recorder
	mon   *check.Monitor
	nodes map[wire.SiteID]*core.Node
	ctx   context.Context

	mu     sync.Mutex
	counts map[core.FaultPoint]int
	fired  []string
	killed map[wire.SiteID]bool
	kills  int
	doomed map[wire.ThreadID]bool
}

// newExplorer builds the cluster. Fault injection is armed only after the
// workload starts; setup runs fault-free.
func newExplorer(t *testing.T, sched check.Schedule, cfg runConfig, plan *faultPlan) *explorer {
	t.Helper()
	if sched.BurstLoss > 0 {
		cfg.profile.BurstLoss = sched.BurstLoss
		cfg.profile.BurstLen = sched.BurstLen
	}
	sn := transport.NewSimNetwork(netsim.Config{Profile: cfg.profile, Seed: cfg.netSeed})
	e := &explorer{
		t: t, sched: sched, cfg: cfg, plan: plan,
		sn:     sn,
		rec:    check.NewRecorder(0, sn.Clock()),
		mon:    check.NewMonitor(0),
		nodes:  make(map[wire.SiteID]*core.Node, cfg.sites),
		counts: make(map[core.FaultPoint]int),
		killed: make(map[wire.SiteID]bool),
		doomed: make(map[wire.ThreadID]bool),
	}
	e.mon.SetReplay(fmt.Sprintf("go test ./internal/check -run TestExploreGuided -schedule=%s", sched.Encode()))
	directory := make(map[wire.SiteID]string, cfg.sites)
	stacks := make(map[wire.SiteID]*transport.SimStack, cfg.sites)
	for i := 1; i <= cfg.sites; i++ {
		stack, err := sn.NewStack(netsim.NodeID(i))
		if err != nil {
			t.Fatalf("stack %d: %v", i, err)
		}
		stacks[wire.SiteID(i)] = stack
		directory[wire.SiteID(i)] = stack.Datagram().LocalAddr()
	}
	for i := 1; i <= cfg.sites; i++ {
		site := wire.SiteID(i)
		var skew time.Duration
		for _, sk := range sched.Skews {
			if wire.SiteID(sk.Site) == site {
				skew = time.Duration(sk.MS) * time.Millisecond
			}
		}
		ep := mnet.NewEndpoint(stacks[site].Datagram(), mnet.Config{RTO: 25 * time.Millisecond, MaxRetries: 4})
		node, err := core.NewNode(core.Config{
			Site:                site,
			Endpoint:            ep,
			Stack:               stacks[site],
			Directory:           directory,
			IsHome:              site == wire.HomeSite,
			HomePlacement:       cfg.placement,
			Mode:                cfg.mode,
			DeltaTransfer:       cfg.delta,
			DisseminationFanout: cfg.fanout,
			RequestTimeout:      300 * time.Millisecond,
			TransferTimeout:     time.Second,
			DefaultLease:        500 * time.Millisecond,
			LeaseSweep:          25 * time.Millisecond,
			LeaseSkew:           skew,
			Log:                 eventlog.New(1 << 14),
			History:             check.MultiSink(e.rec, e.mon),
			FaultHook:           e.hook,
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		e.nodes[site] = node
	}
	return e
}

func (e *explorer) hook(fc core.FaultContext) core.FaultDecision {
	e.mu.Lock()
	if e.ctx == nil { // workload not started: setup runs fault-free
		e.mu.Unlock()
		return core.FaultDecision{}
	}
	n := e.counts[fc.Point]
	e.counts[fc.Point] = n + 1
	if !e.plan.fires[fc.Point][n] {
		e.mu.Unlock()
		return core.FaultDecision{}
	}
	e.fired = append(e.fired, fmt.Sprintf("%s occurrence %d: site=%d peer=%d lock=%d thread=%d v%d",
		fc.Point, n, fc.Site, fc.Peer, fc.Lock, fc.Thread, fc.Version))

	var d core.FaultDecision
	switch fc.Point {
	case core.FPDelayDaemonPoll:
		// Hold the poll reply back past the request timeout: the polling
		// recovery treats this daemon's copy as unavailable.
		d.Delay = e.plan.delay
	case core.FPDropMidTransfer:
		d.Drop = true
	case core.FPCrashBeforeGrant:
		// The requester crashes before its grant arrives.
		d.Drop = true
		e.killLocked(fc.Peer)
	case core.FPCrashAfterReleaseBeforePush:
		// The holder's site crashes after committing locally but before
		// pushing or releasing; the lease break must clean up.
		d.Drop = true
		e.killLocked(fc.Site)
	case core.FPKillLockHolder:
		// Only doom the holder if the kill budget allows actually removing
		// its site; the worker abandons the hold without unlocking.
		if e.killLocked(fc.Site) {
			e.doomed[fc.Thread] = true
		}
	case core.FPKillLockHome:
		// Kill the lock's home manager right after a grant left — the
		// window the standby failover must cover. Only meaningful under
		// home placement; in fixed mode the home is the surrogate tests'
		// subject and stays exempt.
		if e.cfg.placement {
			e.killLocked(fc.Site)
		}
	case core.FPDelayHandoff:
		// Stall a home migration's record send past the request timeout:
		// the old home must either unfreeze or commit with insurance.
		d.Delay = e.plan.delay
	}
	e.mu.Unlock()
	return d
}

// killLocked fail-stops a site (asynchronously — the hook runs on protocol
// goroutines) if the budget allows. In fixed-home mode the home site
// survives every schedule: synchronization-thread failover is the
// surrogate tests' subject, not the explorer's. Under home placement every
// manager is fair game — standby promotion is exactly what is under test.
// Caller holds e.mu.
func (e *explorer) killLocked(site wire.SiteID) bool {
	if (site == wire.HomeSite && !e.cfg.placement) || site == 0 || int(site) > e.cfg.sites || e.killed[site] || e.kills >= 1 {
		return false
	}
	e.killed[site] = true
	e.kills++
	e.rec.Record(wire.HistoryEvent{Kind: wire.HistCrash, Site: site})
	node := e.nodes[site]
	go func() {
		_ = node.Close()
		e.sn.Kill(netsim.NodeID(site))
	}()
	return true
}

func (e *explorer) kill(site wire.SiteID) {
	e.mu.Lock()
	e.killLocked(site)
	e.mu.Unlock()
}

func (e *explorer) isKilled(site wire.SiteID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.killed[site]
}

func (e *explorer) isDoomed(t wire.ThreadID) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.doomed[t]
}

// arm enables fault hooks and launches the schedule's timed fault
// dimensions: one-way cuts, the timed victim kill. Each armed dimension
// records its marker event up front, so the run's coverage provably
// contains the dimensions it ran under even when a timer lands after the
// workload drains.
func (e *explorer) arm(ctx context.Context) {
	e.mu.Lock()
	e.ctx = ctx
	e.mu.Unlock()

	net := e.sn.Underlying()
	for _, c := range e.sched.Cuts {
		if c.From == 0 || c.To == 0 || c.From == c.To ||
			int(c.From) > e.cfg.sites || int(c.To) > e.cfg.sites {
			continue
		}
		e.rec.Record(wire.HistoryEvent{
			Kind: wire.HistFault, Site: wire.SiteID(c.From),
			Sites: wire.NewSiteSet(wire.SiteID(c.To)),
			Note:  check.NoteOneWayPartition,
		})
		c := c
		go func() {
			time.Sleep(time.Duration(c.AfterMS) * time.Millisecond)
			net.PartitionOneWay(netsim.NodeID(c.From), netsim.NodeID(c.To), true)
			time.Sleep(time.Duration(c.ForMS) * time.Millisecond)
			net.PartitionOneWay(netsim.NodeID(c.From), netsim.NodeID(c.To), false)
			e.rec.Record(wire.HistoryEvent{
				Kind: wire.HistFault, Site: wire.SiteID(c.From),
				Sites: wire.NewSiteSet(wire.SiteID(c.To)),
				Note:  check.NoteOneWayHeal,
			})
		}()
	}
	for _, sk := range e.sched.Skews {
		if sk.Site == 0 || int(sk.Site) > e.cfg.sites {
			continue
		}
		e.rec.Record(wire.HistoryEvent{
			Kind: wire.HistFault, Site: wire.SiteID(sk.Site),
			Note: check.NoteLeaseSkew,
		})
	}
	if e.sched.BurstLoss > 0 {
		e.rec.Record(wire.HistoryEvent{Kind: wire.HistFault, Note: check.NoteBurstLoss})
	}
	if v := e.sched.Victim; v != 0 && int(v) <= e.cfg.sites {
		go func() {
			time.Sleep(time.Duration(e.sched.VictimAfterMS) * time.Millisecond)
			e.kill(wire.SiteID(v))
		}()
	}
}

func lockName(l int) string    { return fmt.Sprintf("obj%d", l) }
func lockID(l int) wire.LockID { return wire.LockID(100 + l) }
func settle(d time.Duration)   { time.Sleep(d) }

// setup creates every lock's replica at the home site and registers the
// sharer sites, fault-free.
func (e *explorer) setup(ctx context.Context) error {
	hc := e.nodes[wire.HomeSite].NewHandle("creator")
	for l := 0; l < e.cfg.locks; l++ {
		r, err := e.nodes[wire.HomeSite].CreateReplica(lockName(l), marshal.Ints([]int32{0, 0}), e.cfg.sites)
		if err != nil {
			return err
		}
		rl := hc.ReplicaLock(lockID(l))
		if err := rl.Associate(ctx, r); err != nil {
			return err
		}
	}
	settle(30 * time.Millisecond)
	return nil
}

// worker is one application thread: it associates with every lock, then
// runs a random mix of exclusive writes and shared reads. Operation errors
// end the worker — under injected faults, liveness is best-effort; safety
// is the checker's job.
func (e *explorer) worker(site wire.SiteID, idx int) {
	wseed := e.sched.Seed
	if e.cfg.wlSeed != 0 {
		wseed = e.cfg.wlSeed
	}
	rng := rand.New(rand.NewSource(netsim.DeriveSeed(wseed, saltWorkload+uint64(site)*8+uint64(idx))))
	node := e.nodes[site]
	h := node.NewHandle(fmt.Sprintf("w%d-%d", site, idx))

	rls := make([]*core.ReplicaLock, 0, e.cfg.locks)
	reps := make([]*core.Replica, 0, e.cfg.locks)
	for l := 0; l < e.cfg.locks; l++ {
		if e.isKilled(site) {
			return
		}
		r, err := node.AttachReplica(lockName(l), marshal.Ints(nil))
		if err != nil {
			return
		}
		rl := h.ReplicaLock(lockID(l))
		if err := rl.Associate(e.ctx, r); err != nil {
			return
		}
		rl.SetUpdateReplicas(e.cfg.ur)
		rls = append(rls, rl)
		reps = append(reps, r)
	}

	for op := 0; op < e.cfg.ops; op++ {
		if e.isKilled(site) || e.ctx.Err() != nil {
			return
		}
		l := rng.Intn(len(rls))
		rl, r := rls[l], reps[l]
		// Per-operation deadline: a worker whose grant a fault swallowed
		// gives up quickly instead of pinning the run on the global timeout.
		opCtx, cancel := context.WithTimeout(e.ctx, time.Second)
		ok := func() bool {
			if rng.Intn(3) == 0 {
				if err := rl.LockShared(opCtx); err != nil {
					return false
				}
				_ = r.Content().IntsData()
				if e.isDoomed(h.ID()) {
					return false // site is being killed; abandon the hold
				}
				return rl.Unlock(opCtx) == nil
			}
			if err := rl.Lock(opCtx); err != nil {
				return false
			}
			if e.isDoomed(h.ID()) {
				return false
			}
			data := r.Content().IntsData()
			if len(data) >= 2 {
				data[0]++
				data[1] = data[0] * 2
			}
			return rl.Unlock(opCtx) == nil
		}()
		cancel()
		if !ok {
			return
		}
	}
}

// run executes the schedule end to end and returns the recorded history.
func (e *explorer) run() []wire.HistoryEvent {
	defer func() {
		e.mu.Lock()
		for site, node := range e.nodes {
			if !e.killed[site] {
				_ = node.Close()
			}
		}
		e.mu.Unlock()
		_ = e.sn.Close()
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := e.setup(ctx); err != nil {
		// An aggressive mutated schedule (burst loss is live from the first
		// packet) can starve even replica registration. The faults winning
		// before the workload starts is a legitimate — boring — outcome:
		// verify whatever history exists instead of failing the run.
		e.t.Logf("schedule %s: setup aborted, faults won before workload start: %v", e.sched, err)
		settle(50 * time.Millisecond)
		return e.rec.Events()
	}

	// Arm fault injection (hooks fire only once e.ctx is set) and the
	// schedule's timed dimensions.
	e.arm(ctx)

	var wg sync.WaitGroup
	for i := 1; i <= e.cfg.sites; i++ {
		for w := 0; w < e.cfg.workers; w++ {
			site, w := wire.SiteID(i), w
			wg.Add(1)
			go func() {
				defer wg.Done()
				e.worker(site, w)
			}()
		}
	}
	wg.Wait()
	// Let in-flight dissemination and lease housekeeping quiesce before the
	// nodes close, so the recorded history ends at a stable state.
	settle(50 * time.Millisecond)
	return e.rec.Events()
}

// runSchedule executes one (materialized) schedule, verifies it — online
// through the monitor, offline through the full-history checker, including
// the overflow gate — and returns the run's transition coverage. replayCmd
// is printed on failure; empty selects the -schedule token.
func runSchedule(t *testing.T, sched check.Schedule, cfg runConfig, replayCmd string) check.Coverage {
	t.Helper()
	if replayCmd == "" {
		replayCmd = fmt.Sprintf("go test ./internal/check -run TestExploreGuided -schedule=%s", sched.Encode())
	}
	plan := planFromSchedule(sched)
	e := newExplorer(t, sched, cfg, plan)
	events := e.run()

	e.mu.Lock()
	fired := append([]string(nil), e.fired...)
	e.mu.Unlock()
	t.Logf("schedule %s: %d sites, %d locks, %d workers/site, %d ops, UR=%d, mode=%v, delta=%v, fanout=%d, placement=%v, loss=%.3f, %d events, %d faults fired",
		sched, cfg.sites, cfg.locks, cfg.workers, cfg.ops, cfg.ur, cfg.mode, cfg.delta, cfg.fanout, cfg.placement, cfg.profile.Loss, len(events), len(fired))

	report := "  (none fired)"
	if len(fired) > 0 {
		report = "  " + fired[0]
		for _, f := range fired[1:] {
			report += "\n  " + f
		}
	}
	// The online monitor saw the same stream; its counterexample carries
	// the offending window and the replay token.
	if cx := e.mon.Err(); cx != nil {
		t.Fatalf("schedule violates entry consistency (caught online)\nschedule:\n%s\nfaults fired:\n%s\n\n%v",
			plan, report, cx)
	}
	// Offline pass over the recorder: redundant with the monitor for the
	// invariants, but also the overflow gate — a truncated history fails
	// the run rather than feeding a clipped coverage set to the corpus.
	if v := check.CheckRecorder(e.rec); v != nil {
		t.Fatalf("schedule violates entry consistency\nschedule:\n%s\nfaults fired:\n%s\nreplay: %s\n\n%v",
			plan, report, replayCmd, v)
	}
	return check.CoverageOf(events)
}

// runExplore executes one baseline seed and checks its history.
func runExplore(t *testing.T, seed int64) {
	sched := materialize(check.Schedule{Seed: seed})
	cfg := deriveConfig(seed)
	runSchedule(t, sched, cfg,
		fmt.Sprintf("go test ./internal/check -run 'TestExplore$' -seed=%d", seed))
}

// TestExplore runs the seeded fault-schedule explorer baseline: exploreSeeds
// consecutive seeds, each deriving its own cluster shape, network
// conditions, workload, and fault schedule, with the recorded history of
// every run verified online and offline. A failure prints the seed, the
// schedule, and the exact replay command.
func TestExplore(t *testing.T) {
	if testing.Short() {
		t.Skip("explorer")
	}
	if *seedFlag >= 0 {
		runExplore(t, *seedFlag)
		return
	}
	base := netsim.SeedFromEnv(1000)
	t.Logf("exploring seeds %d..%d (set %s to shift the window)", base, base+exploreSeeds-1, netsim.SeedEnv)
	for i := 0; i < exploreSeeds; i++ {
		seed := base + int64(i)
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			runExplore(t, seed)
		})
	}
}

// TestExploreGuided runs the coverage-guided session: a few baseline seeds
// prime the corpus, then mutations of whatever reached novel transition
// coverage — including the dimensions only the mutator can reach (one-way
// cuts, lease skew, loss bursts, timed victims). The budget is wall-clock
// (-explore, default 8s; make explore passes 60s) and the whole session
// honors MOCHA_TEST_SEED. With -schedule it instead replays one encoded
// schedule.
func TestExploreGuided(t *testing.T) {
	if *scheduleFlag != "" {
		sched, err := check.DecodeSchedule(*scheduleFlag)
		if err != nil {
			t.Fatal(err)
		}
		sched = materialize(sched)
		runSchedule(t, sched, deriveConfig(sched.Seed), "")
		return
	}
	if testing.Short() {
		t.Skip("explorer")
	}
	budget := *exploreFlag
	if budget <= 0 {
		budget = 8 * time.Second
	}
	seed := netsim.SeedFromEnv(1000)
	sess := check.NewSession(seed, pointNames(), 3, func(s int64) int { return deriveConfig(s).sites })
	deadline := time.Now().Add(budget)
	runs := 0
	for time.Now().Before(deadline) {
		sched := materialize(sess.Next())
		cov := runSchedule(t, sched, deriveConfig(sched.Seed), "")
		novel := sess.Report(sched, cov, false)
		runs++
		if novel > 0 {
			t.Logf("run %d admitted to corpus with %d novel transitions", runs, novel)
		}
	}
	c := sess.Corpus()
	t.Logf("guided session: %d runs in %v, %d corpus entries, %d transitions covered, signature %016x",
		runs, budget, len(c.Entries()), len(c.Coverage()), c.Coverage().Signature())
	if runs == 0 {
		t.Fatal("budget admitted zero runs")
	}
}

// TestCoverageGuidedBeatsBaseline pits the two strategies against each
// other under an equal run budget on one fixed small cluster shape, so the
// only variable is the fault schedule. The fixed-seed baseline draws
// independent derived schedules forever; the guided session primes on a few
// of the same and then mutates into the dimensions no derived schedule can
// reach. The guided corpus must cover strictly more transitions, and at
// least one mutation-only fault dimension must appear in it.
func TestCoverageGuidedBeatsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("explorer")
	}
	seed := netsim.SeedFromEnv(1000)
	const budget = 20   // runs per strategy (the historical 20-seed window)
	const baselines = 3 // guided session's priming prefix
	const batch = 5     // guided runs issued per corpus round

	smallCfg := func(s int64) runConfig {
		return runConfig{
			sites: 3, locks: 2, workers: 1, ops: 24, ur: 2,
			profile: netsim.Perfect(), mode: core.ModeMNet,
			netSeed: netsim.DeriveSeed(seed, saltNetwork),
			wlSeed:  seed,
		}
	}
	// Runs within a group are independent, so execute them as parallel
	// subtests; the enclosing t.Run is the barrier that waits for a group.
	runGroup := func(name string, scheds []check.Schedule) []check.Coverage {
		covs := make([]check.Coverage, len(scheds))
		t.Run(name, func(t *testing.T) {
			for i, sched := range scheds {
				i, sched := i, sched
				t.Run(fmt.Sprintf("run%d", i), func(t *testing.T) {
					t.Parallel()
					covs[i] = runSchedule(t, sched, smallCfg(sched.Seed), "")
				})
			}
		})
		return covs
	}

	baseScheds := make([]check.Schedule, budget)
	baseTok := make(map[string]int, budget)
	for i := range baseScheds {
		baseScheds[i] = materialize(check.Schedule{Seed: seed + int64(i)})
		baseTok[baseScheds[i].Encode()] = i
	}
	baseCovs := runGroup("baseline", baseScheds)
	baseCov := make(check.Coverage)
	for _, cov := range baseCovs {
		baseCov.Merge(cov)
	}

	// The guided session runs in corpus rounds: issue a batch, run it in
	// parallel, fold the results back, repeat. Mutations in round N draw on
	// everything admitted through round N-1. When the session issues a
	// schedule identical to one of the baseline's (its fresh-seed issues
	// walk the same seed sequence), the baseline's measured coverage is
	// reused instead of re-running it: the same schedule IS the same run,
	// and re-executing it would only add scheduler noise to a comparison
	// whose point is the schedules themselves (common random numbers).
	sess := check.NewSession(seed, pointNames(), baselines, func(int64) int { return 3 })
	for issued, round := 0, 0; issued < budget; round++ {
		n := batch
		if budget-issued < n {
			n = budget - issued
		}
		scheds := make([]check.Schedule, n)
		covs := make([]check.Coverage, n)
		var toRun []check.Schedule
		var runIdx []int
		for j := range scheds {
			scheds[j] = materialize(sess.Next())
			if bi, ok := baseTok[scheds[j].Encode()]; ok {
				covs[j] = baseCovs[bi]
				continue
			}
			toRun = append(toRun, scheds[j])
			runIdx = append(runIdx, j)
		}
		for k, cov := range runGroup(fmt.Sprintf("guided-round%d", round), toRun) {
			covs[runIdx[k]] = cov
		}
		for j := range scheds {
			sess.Report(scheds[j], covs[j], false)
		}
		issued += n
	}
	guidedCov := sess.Corpus().Coverage()

	t.Logf("baseline: %d transitions over %d seeds; guided: %d transitions over %d runs (%d corpus entries)",
		len(baseCov), budget, len(guidedCov), budget, len(sess.Corpus().Entries()))

	// A mutation-only fault dimension must have entered the corpus: both as
	// a schedule using it and as its marker in the coverage set.
	dimmed := false
	for _, e := range sess.Corpus().Entries() {
		if len(e.Schedule.Dimensions()) > 0 {
			dimmed = true
		}
	}
	if !dimmed {
		t.Fatal("no mutated schedule with a new fault dimension was admitted to the corpus")
	}
	sawMarker := false
	for _, note := range []string{check.NoteOneWayPartition, check.NoteLeaseSkew, check.NoteBurstLoss} {
		k := check.DimensionKey(note)
		if _, ok := guidedCov[k]; ok {
			sawMarker = true
			if _, inBase := baseCov[k]; inBase {
				t.Errorf("baseline coverage contains the %s dimension, which no derived schedule can reach", note)
			}
		}
	}
	if !sawMarker {
		t.Fatal("guided coverage contains no mutation-only dimension marker")
	}
	if len(guidedCov) <= len(baseCov) {
		t.Fatalf("guided coverage (%d transitions) does not beat the %d-seed baseline (%d transitions)",
			len(guidedCov), budget, len(baseCov))
	}
}

// TestExploreReplayDeterminism runs one seed's workload twice under fully
// deterministic conditions — perfect network, no faults, strictly
// sequential operations — and requires byte-identical histories (by
// fingerprint) and identical transition signatures. This is the anchor for
// schedule replay: whatever a schedule's history fingerprints to, replaying
// it reproduces it.
func TestExploreReplayDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("explorer")
	}
	seed := netsim.SeedFromEnv(1000)
	run := func() (uint64, uint64) {
		cfg := runConfig{
			sites: 3, locks: 2, workers: 1, ops: 4, ur: 1,
			profile: netsim.Perfect(), mode: core.ModeMNet,
			netSeed: netsim.DeriveSeed(seed, saltNetwork),
		}
		plan := &faultPlan{fires: make(map[core.FaultPoint]map[int]bool)}
		e := newExplorer(t, check.Schedule{Seed: seed, Fires: map[string][]int{}}, cfg, plan)
		defer func() {
			for _, node := range e.nodes {
				_ = node.Close()
			}
			_ = e.sn.Close()
		}()
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := e.setup(ctx); err != nil {
			t.Fatalf("setup: %v", err)
		}
		e.arm(ctx)
		// Strictly sequential: one worker at a time, with a settle between
		// them so every run interleaves identically.
		for i := 1; i <= cfg.sites; i++ {
			e.worker(wire.SiteID(i), 0)
			settle(20 * time.Millisecond)
		}
		if v := check.CheckRecorder(e.rec); v != nil {
			t.Fatalf("deterministic run violates entry consistency: %v", v)
		}
		return e.rec.Fingerprint(), e.rec.Signature()
	}
	fp1, sig1 := run()
	fp2, sig2 := run()
	if fp1 != fp2 {
		t.Fatalf("same seed, different histories: %016x vs %016x", fp1, fp2)
	}
	if sig1 != sig2 {
		t.Fatalf("same seed, different transition signatures: %016x vs %016x", sig1, sig2)
	}
}
