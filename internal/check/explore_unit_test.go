package check

import (
	"math/rand"
	"reflect"
	"testing"

	"mocha/internal/wire"
)

func TestScheduleEncodeDecodeRoundTrip(t *testing.T) {
	s := Schedule{
		Seed:          42,
		Fires:         map[string][]int{"kill-lock-holder": {0, 3}, "drop-mid-transfer": {1}},
		DelayMS:       250,
		Victim:        2,
		VictimAfterMS: 90,
		Cuts:          []OneWayCut{{From: 1, To: 3, AfterMS: 20, ForMS: 400}},
		BurstLoss:     0.01,
		BurstLen:      4,
		Skews:         []SiteSkew{{Site: 2, MS: -300}},
	}
	got, err := DecodeSchedule(s.Encode())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip changed the schedule:\n got %+v\nwant %+v", got, s)
	}
	// The degenerate baseline survives too, with Fires still nil (nil means
	// "seed-derived plan", distinct from the empty map's "no firing").
	base, err := DecodeSchedule(Schedule{Seed: 7}.Encode())
	if err != nil {
		t.Fatalf("decode baseline: %v", err)
	}
	if base.Seed != 7 || base.Fires != nil || len(base.Cuts) != 0 {
		t.Fatalf("baseline round trip: %+v", base)
	}
	if _, err := DecodeSchedule("!!not a token!!"); err == nil {
		t.Fatal("garbage token decoded")
	}
}

func TestScheduleDimensions(t *testing.T) {
	if dims := (Schedule{Seed: 1}).Dimensions(); len(dims) != 0 {
		t.Fatalf("baseline claims dimensions %v", dims)
	}
	s := Schedule{
		Cuts:      []OneWayCut{{From: 1, To: 2}},
		Skews:     []SiteSkew{{Site: 1, MS: 100}},
		BurstLoss: 0.01,
	}
	want := []string{NoteOneWayPartition, NoteLeaseSkew, NoteBurstLoss}
	if got := s.Dimensions(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Dimensions = %v, want %v", got, want)
	}
}

// TestMutateUntriedDimensionFirst pins the heuristic the beats-baseline
// guarantee rests on: the first three mutations of any baseline schedule
// introduce, in order, a one-way cut, a lease skew, and a loss burst.
func TestMutateUntriedDimensionFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points := []string{"kill-lock-holder"}
	s := Schedule{Seed: 5}

	m1 := Mutate(s, rng, points, 4)
	if len(m1.Cuts) != 1 {
		t.Fatalf("first mutation did not add a cut: %+v", m1)
	}
	c := m1.Cuts[0]
	if c.From == c.To || c.From < 1 || c.From > 4 || c.To < 1 || c.To > 4 {
		t.Fatalf("cut endpoints out of range or equal: %+v", c)
	}
	if len(s.Cuts) != 0 {
		t.Fatal("Mutate modified its input")
	}

	m2 := Mutate(m1, rng, points, 4)
	if len(m2.Skews) != 1 || len(m2.Cuts) != 1 {
		t.Fatalf("second mutation did not add a skew: %+v", m2)
	}
	if ms := m2.Skews[0].MS; ms == 0 || ms > 1000 || ms < -1000 {
		t.Fatalf("skew out of range: %+v", m2.Skews[0])
	}

	m3 := Mutate(m2, rng, points, 4)
	if m3.BurstLoss <= 0 || m3.BurstLen < 2 {
		t.Fatalf("third mutation did not add burst loss: %+v", m3)
	}

	// All dimensions in play: further mutations perturb rather than add.
	m4 := Mutate(m3, rng, points, 4)
	if len(m4.Cuts) != 1 || len(m4.Skews) != 1 || m4.BurstLoss == 0 {
		t.Fatalf("perturbing mutation dropped a dimension: %+v", m4)
	}
}

func TestCoverageSignatureOrderIndependent(t *testing.T) {
	evs := seq(cleanPrefix())
	fwd := CoverageOf(evs)
	// Same transition set assembled in a different insertion order.
	again := make(Coverage)
	keys := make([]uint64, 0, len(fwd))
	for k := range fwd {
		keys = append(keys, k)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		again[keys[i]] = struct{}{}
	}
	if fwd.Signature() != again.Signature() {
		t.Fatal("signature depends on insertion order")
	}
	// And it actually discriminates: dropping one key changes it.
	delete(again, keys[0])
	if fwd.Signature() == again.Signature() {
		t.Fatal("signature blind to a missing transition")
	}
}

func TestCoverageBigramsDistinguishOrder(t *testing.T) {
	a := wire.HistoryEvent{Kind: wire.HistBreak, Lock: 9}
	b := wire.HistoryEvent{Kind: wire.HistGrant, Lock: 9}
	ab := CoverageOf([]wire.HistoryEvent{a, b})
	ba := CoverageOf([]wire.HistoryEvent{b, a})
	if ab.Signature() == ba.Signature() {
		t.Fatal("bigrams failed to distinguish break→grant from grant→break")
	}
	// Events on different locks contribute no shared bigram: two unigrams
	// only, where the same pair on one lock would add a third key.
	other := wire.HistoryEvent{Kind: wire.HistGrant, Lock: 8}
	if two := CoverageOf([]wire.HistoryEvent{a, other}); len(two) != 2 {
		t.Fatalf("cross-lock bigram leaked: %d keys", len(two))
	}
}

func TestDimensionKeyMatchesRecordedMarker(t *testing.T) {
	// A harness records the marker as a HistFault with the dimension note;
	// DimensionKey must be exactly that event's unigram key.
	cov := CoverageOf([]wire.HistoryEvent{{Kind: wire.HistFault, Note: NoteLeaseSkew}})
	if _, ok := cov[DimensionKey(NoteLeaseSkew)]; !ok {
		t.Fatal("DimensionKey does not match the recorded marker's coverage key")
	}
	if _, ok := cov[DimensionKey(NoteBurstLoss)]; ok {
		t.Fatal("distinct dimensions collide")
	}
}

func TestCorpusAdmitAndPick(t *testing.T) {
	c := NewCorpus()
	covA := Coverage{1: {}, 2: {}, 3: {}}
	if fresh := c.Admit(Schedule{Seed: 1}, covA); fresh != 3 {
		t.Fatalf("first admit novelty = %d, want 3", fresh)
	}
	// A strict subset contributes nothing and is not kept.
	if fresh := c.Admit(Schedule{Seed: 2}, Coverage{2: {}}); fresh != 0 {
		t.Fatalf("subset admit novelty = %d, want 0", fresh)
	}
	if fresh := c.Admit(Schedule{Seed: 3}, Coverage{3: {}, 4: {}}); fresh != 1 {
		t.Fatalf("overlap admit novelty = %d, want 1", fresh)
	}
	if n := len(c.Entries()); n != 2 {
		t.Fatalf("corpus kept %d entries, want 2 (subset must be dropped)", n)
	}
	if len(c.Coverage()) != 4 {
		t.Fatalf("global coverage has %d keys, want 4", len(c.Coverage()))
	}
	// Novelty weighting: seed 1 (novelty 3) should be picked ~3x as often
	// as seed 3 (novelty 1).
	rng := rand.New(rand.NewSource(7))
	picks := map[int64]int{}
	for i := 0; i < 4000; i++ {
		s, ok := c.Pick(rng)
		if !ok {
			t.Fatal("pick from non-empty corpus failed")
		}
		picks[s.Seed]++
	}
	if picks[1] < 2*picks[3] {
		t.Fatalf("novelty weighting off: picks = %v", picks)
	}
	if _, ok := NewCorpus().Pick(rng); ok {
		t.Fatal("pick from empty corpus succeeded")
	}
}

func TestSessionBaselinesThenMutations(t *testing.T) {
	sess := NewSession(100, []string{"kill-lock-holder"}, 3, func(int64) int { return 4 })
	// First three schedules are pure consecutive baselines.
	for i := 0; i < 3; i++ {
		sched := sess.Next()
		if sched.Seed != int64(100+i) || len(sched.Cuts) != 0 || sched.Fires != nil {
			t.Fatalf("baseline %d = %+v", i, sched)
		}
		sess.Report(sched, Coverage{uint64(i): {}}, false)
	}
	// Fourth is a mutation of a corpus entry: untried-dimension-first means
	// it carries a cut, and its seed is one of the admitted baselines.
	m := sess.Next()
	if len(m.Cuts) != 1 {
		t.Fatalf("first mutation lacks a cut: %+v", m)
	}
	if m.Seed < 100 || m.Seed > 102 {
		t.Fatalf("mutation seed %d not from the corpus", m.Seed)
	}
	// A truncated run is rejected: novelty 0, corpus unchanged.
	if n := sess.Report(m, Coverage{99: {}}, true); n != 0 {
		t.Fatalf("truncated run admitted with novelty %d", n)
	}
	if _, ok := sess.Corpus().Coverage()[99]; ok {
		t.Fatal("truncated run's coverage leaked into the corpus")
	}
}

func TestSessionFallsBackToBaselines(t *testing.T) {
	sess := NewSession(10, nil, 1, nil)
	first := sess.Next()
	// Never reported: the corpus stays empty, so the session keeps issuing
	// fresh baselines rather than mutating nothing.
	second := sess.Next()
	if second.Seed != first.Seed+1 || len(second.Cuts) != 0 {
		t.Fatalf("empty-corpus fallback issued %+v after %+v", second, first)
	}
}
