package eventlog

import (
	"strings"
	"sync"
	"testing"
)

func TestLogAndRetrieve(t *testing.T) {
	l := New(10)
	l.Logf("lock", "grant %d", 7)
	l.Logf("xfer", "sent %d bytes", 1024)
	events := l.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events", len(events))
	}
	if events[0].Category != "lock" || events[0].Text != "grant 7" {
		t.Fatalf("event 0 = %+v", events[0])
	}
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Fatal("sequence numbers wrong")
	}
	if l.CountCategory("xfer") != 1 {
		t.Fatal("CountCategory wrong")
	}
}

func TestRingBounded(t *testing.T) {
	l := New(5)
	for i := 0; i < 20; i++ {
		l.Logf("c", "e%d", i)
	}
	events := l.Events()
	if len(events) != 5 {
		t.Fatalf("ring holds %d", len(events))
	}
	if events[0].Text != "e15" || events[4].Text != "e19" {
		t.Fatalf("wrong retained window: %v..%v", events[0].Text, events[4].Text)
	}
}

func TestFilter(t *testing.T) {
	l := New(10)
	l.EnableOnly("lock")
	l.Logf("lock", "kept")
	l.Logf("xfer", "dropped")
	if got := len(l.Events()); got != 1 {
		t.Fatalf("got %d events", got)
	}
	l.EnableOnly()
	l.Logf("xfer", "kept now")
	if got := len(l.Events()); got != 2 {
		t.Fatalf("got %d events after unfilter", got)
	}
}

func TestSinkAndWriter(t *testing.T) {
	l := New(10)
	var got []Event
	var mu sync.Mutex
	l.SetSink(func(e Event) { mu.Lock(); got = append(got, e); mu.Unlock() })
	var sb strings.Builder
	l.SetWriter(&sb)
	l.Logf("fault", "lock broken")
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 1 || got[0].Category != "fault" {
		t.Fatalf("sink got %v", got)
	}
	if !strings.Contains(sb.String(), "lock broken") {
		t.Fatalf("writer got %q", sb.String())
	}
}

func TestConcurrentLogging(t *testing.T) {
	l := New(1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Logf("c", "x")
			}
		}()
	}
	wg.Wait()
	if got := len(l.Events()); got != 800 {
		t.Fatalf("got %d events, want 800", got)
	}
}
