// Package eventlog provides Mocha's "basic debugging and event logging
// facilities that provide insight into execution of code at remote
// locations": a structured, timestamped per-site event log whose records
// can be inspected locally, streamed to a writer, or shipped to the home
// site's collector as wire.Event messages.
//
// The log is the typed-event front of the observability plane
// (internal/obs): events carry structured obs.Field pairs and are
// rendered to text lazily, only when a writer or renderer actually
// consumes them. A disabled logger (Nop, or any nil *Logger) rejects
// events before any formatting happens; hot paths additionally guard
// call sites with On() so even argument boxing is skipped.
package eventlog

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"mocha/internal/obs"
)

// Event is one log record. Legacy Logf events carry pre-rendered Text;
// typed Log events carry Msg plus structured Fields and render on demand.
type Event struct {
	Seq      uint64
	Time     time.Time
	Category string
	// Text is the pre-rendered message of a Logf event ("" for typed
	// events).
	Text string
	// Msg is a typed event's message; Fields carries its structure.
	Msg    string
	Fields []obs.Field
}

// Render produces the event's human-readable message, formatting typed
// fields on demand.
func (e Event) Render() string {
	if e.Msg == "" {
		return e.Text
	}
	return obs.FormatFields(e.Msg, e.Fields)
}

// String renders the event for human consumption.
func (e Event) String() string {
	return fmt.Sprintf("%s #%d [%s] %s", e.Time.Format("15:04:05.000"), e.Seq, e.Category, e.Render())
}

// Sink receives events as they are logged, e.g. to forward them to the
// home site. Sinks must not block for long.
type Sink func(Event)

// Logger is a bounded in-memory event log. The zero value is unusable;
// construct with New. All methods are safe for concurrent use and
// nil-safe: a nil *Logger is permanently disabled.
type Logger struct {
	// enabled gates every record path with one atomic load, so a
	// disabled logger costs nothing past the check.
	enabled atomic.Bool

	mu     sync.Mutex
	seq    uint64
	ring   []Event
	max    int
	sink   Sink
	writer io.Writer
	filter map[string]bool // nil means all categories enabled
}

// New creates an enabled logger retaining at most max events (default
// 4096 when max <= 0).
func New(max int) *Logger {
	if max <= 0 {
		max = 4096
	}
	l := &Logger{max: max}
	l.enabled.Store(true)
	return l
}

// On reports whether the logger accepts events. Hot paths guard their
// Log/Logf calls with it so a disabled logger costs one branch — no
// formatting, no argument boxing, no allocation.
func (l *Logger) On() bool { return l != nil && l.enabled.Load() }

// SetEnabled flips event acceptance (New starts enabled, Nop disabled).
func (l *Logger) SetEnabled(on bool) {
	if l == nil {
		return
	}
	l.enabled.Store(on)
}

// SetSink installs a forwarding sink (nil disables forwarding).
func (l *Logger) SetSink(s Sink) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = s
}

// SetWriter also writes each event as text to w (nil disables).
func (l *Logger) SetWriter(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.writer = w
}

// EnableOnly restricts logging to the listed categories. An empty call
// re-enables everything.
func (l *Logger) EnableOnly(categories ...string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(categories) == 0 {
		l.filter = nil
		return
	}
	l.filter = make(map[string]bool, len(categories))
	for _, c := range categories {
		l.filter[c] = true
	}
}

// Logf records one pre-formatted event. The format is only rendered when
// the logger is enabled and the category passes the filter.
func (l *Logger) Logf(category, format string, args ...any) {
	if !l.On() {
		return
	}
	l.mu.Lock()
	if l.filter != nil && !l.filter[category] {
		l.mu.Unlock()
		return
	}
	l.record(Event{Category: category, Text: fmt.Sprintf(format, args...)})
}

// Log records one typed event with structured fields. Nothing is
// formatted until a writer or renderer consumes the event.
func (l *Logger) Log(category, msg string, fields ...obs.Field) {
	if !l.On() {
		return
	}
	l.mu.Lock()
	if l.filter != nil && !l.filter[category] {
		l.mu.Unlock()
		return
	}
	l.record(Event{Category: category, Msg: msg, Fields: fields})
}

// record stamps, retains, and fans out one event. Caller holds l.mu;
// record releases it.
func (l *Logger) record(e Event) {
	l.seq++
	e.Seq = l.seq
	e.Time = time.Now()
	l.ring = append(l.ring, e)
	if len(l.ring) > l.max {
		l.ring = l.ring[len(l.ring)-l.max:]
	}
	sink := l.sink
	w := l.writer
	l.mu.Unlock()

	if w != nil {
		fmt.Fprintln(w, e)
	}
	if sink != nil {
		sink(e)
	}
}

// Events returns a copy of the retained events in order.
func (l *Logger) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.ring))
	copy(out, l.ring)
	return out
}

// CountCategory returns how many retained events have the category —
// convenient for tests asserting that a protocol path was exercised.
func (l *Logger) CountCategory(category string) int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.ring {
		if e.Category == category {
			n++
		}
	}
	return n
}

// Nop returns a disabled logger: every record path bails on the enabled
// check before formatting or retaining anything.
func Nop() *Logger {
	l := New(1)
	l.enabled.Store(false)
	return l
}
