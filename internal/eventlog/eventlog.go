// Package eventlog provides Mocha's "basic debugging and event logging
// facilities that provide insight into execution of code at remote
// locations": a structured, timestamped per-site event log whose records
// can be inspected locally, streamed to a writer, or shipped to the home
// site's collector as wire.Event messages.
package eventlog

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one log record.
type Event struct {
	Seq      uint64
	Time     time.Time
	Category string
	Text     string
}

// String renders the event for human consumption.
func (e Event) String() string {
	return fmt.Sprintf("%s #%d [%s] %s", e.Time.Format("15:04:05.000"), e.Seq, e.Category, e.Text)
}

// Sink receives events as they are logged, e.g. to forward them to the
// home site. Sinks must not block for long.
type Sink func(Event)

// Logger is a bounded in-memory event log. The zero value is unusable;
// construct with New. All methods are safe for concurrent use.
type Logger struct {
	mu     sync.Mutex
	seq    uint64
	ring   []Event
	max    int
	sink   Sink
	writer io.Writer
	filter map[string]bool // nil means all categories enabled
}

// New creates a logger retaining at most max events (default 4096 when
// max <= 0).
func New(max int) *Logger {
	if max <= 0 {
		max = 4096
	}
	return &Logger{max: max}
}

// SetSink installs a forwarding sink (nil disables forwarding).
func (l *Logger) SetSink(s Sink) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sink = s
}

// SetWriter also writes each event as text to w (nil disables).
func (l *Logger) SetWriter(w io.Writer) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.writer = w
}

// EnableOnly restricts logging to the listed categories. An empty call
// re-enables everything.
func (l *Logger) EnableOnly(categories ...string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(categories) == 0 {
		l.filter = nil
		return
	}
	l.filter = make(map[string]bool, len(categories))
	for _, c := range categories {
		l.filter[c] = true
	}
}

// Logf records one event.
func (l *Logger) Logf(category, format string, args ...any) {
	l.mu.Lock()
	if l.filter != nil && !l.filter[category] {
		l.mu.Unlock()
		return
	}
	l.seq++
	e := Event{Seq: l.seq, Time: time.Now(), Category: category, Text: fmt.Sprintf(format, args...)}
	l.ring = append(l.ring, e)
	if len(l.ring) > l.max {
		l.ring = l.ring[len(l.ring)-l.max:]
	}
	sink := l.sink
	w := l.writer
	l.mu.Unlock()

	if w != nil {
		fmt.Fprintln(w, e)
	}
	if sink != nil {
		sink(e)
	}
}

// Events returns a copy of the retained events in order.
func (l *Logger) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.ring))
	copy(out, l.ring)
	return out
}

// CountCategory returns how many retained events have the category —
// convenient for tests asserting that a protocol path was exercised.
func (l *Logger) CountCategory(category string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, e := range l.ring {
		if e.Category == category {
			n++
		}
	}
	return n
}

// Nop returns a logger that retains one event (effectively discarding),
// useful as a default.
func Nop() *Logger { return New(1) }
