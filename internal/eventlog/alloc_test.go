package eventlog

import (
	"strings"
	"testing"

	"mocha/internal/obs"
)

func TestTypedLogRenderLazily(t *testing.T) {
	l := New(10)
	l.Log("xfer", "hybrid transfer", obs.I("lock", 4), obs.S("mode", "delta"))
	events := l.Events()
	if len(events) != 1 {
		t.Fatalf("got %d events", len(events))
	}
	e := events[0]
	if e.Text != "" || e.Msg != "hybrid transfer" || len(e.Fields) != 2 {
		t.Fatalf("typed event stored wrong: %+v", e)
	}
	if got := e.Render(); got != "hybrid transfer lock=4 mode=delta" {
		t.Fatalf("Render = %q", got)
	}
	if !strings.Contains(e.String(), "hybrid transfer lock=4 mode=delta") {
		t.Fatalf("String = %q", e.String())
	}
}

func TestDisabledLoggerRecordsNothing(t *testing.T) {
	l := Nop()
	if l.On() {
		t.Fatal("Nop logger reports enabled")
	}
	l.Logf("c", "dropped %d", 1)
	l.Log("c", "dropped", obs.I("n", 1))
	if len(l.Events()) != 0 {
		t.Fatal("disabled logger retained events")
	}
	l.SetEnabled(true)
	if !l.On() {
		t.Fatal("SetEnabled(true) did not enable")
	}
	l.Logf("c", "kept")
	if len(l.Events()) != 1 {
		t.Fatal("re-enabled logger dropped an event")
	}
	var nilLogger *Logger
	if nilLogger.On() {
		t.Fatal("nil logger reports enabled")
	}
	nilLogger.SetEnabled(true) // must not panic
	if nilLogger.On() {
		t.Fatal("nil logger enabled")
	}
}

// TestDisabledGuardedPathAllocatesNothing pins the lazy-formatting
// contract the core's hot paths rely on: with the logger disabled and the
// call site guarded by On() — the shape every internal/core call site
// uses, enforced by the obs package's log-discipline check — logging costs
// zero allocations. The unguarded Logf call still boxes its variadic
// arguments, which is exactly why the guard exists.
func TestDisabledGuardedPathAllocatesNothing(t *testing.T) {
	l := Nop()
	lock, bytes := 17, 4096
	allocs := testing.AllocsPerRun(1000, func() {
		if l.On() {
			l.Logf("xfer", "transfer of lock %d (%d bytes)", lock, bytes)
		}
	})
	if allocs != 0 {
		t.Fatalf("guarded disabled Logf allocates %.1f per op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(1000, func() {
		if l.On() {
			l.Log("xfer", "transfer", obs.I("lock", int64(lock)), obs.I("bytes", int64(bytes)))
		}
	})
	if allocs != 0 {
		t.Fatalf("guarded disabled Log allocates %.1f per op, want 0", allocs)
	}
}

func BenchmarkDisabledGuardedLogf(b *testing.B) {
	l := Nop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if l.On() {
			l.Logf("xfer", "transfer of lock %d v%d (%d bytes)", i, i, i)
		}
	}
}

func BenchmarkDisabledUnguardedLogf(b *testing.B) {
	l := Nop()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Logf("xfer", "transfer of lock %d v%d (%d bytes)", i, i, i)
	}
}

func BenchmarkEnabledTypedLog(b *testing.B) {
	l := New(4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if l.On() {
			l.Log("xfer", "transfer", obs.I("lock", int64(i)), obs.I("bytes", int64(i)))
		}
	}
}
