package netsim

import (
	"sync"
	"time"
)

// Wheel is a hashed timer wheel: deadlines coalesce into fixed-width tick
// buckets, so scheduling, cancelling, and firing a timer are all O(1) and
// one sweep goroutine serves any number of timers. MNet uses it for
// retransmit deadlines (replacing a per-endpoint ticker that scanned every
// in-flight message) and core uses it for stream-listener timeouts
// (replacing one time.AfterFunc goroutine per transfer).
//
// A Wheel advances only when Advance is called. Production wheels call
// Start, which drives Advance from a coarse ticker; tests drive Advance
// with a hand-rolled clock, so timer fire order is deterministic and no
// test waits on wall time. Callbacks run on the advancing goroutine, one
// at a time, without the wheel lock held — they may freely schedule or
// stop timers.
type Wheel struct {
	tick  time.Duration
	mask  int
	start time.Time

	mu sync.Mutex
	// cur is the wheel's tick counter: the number of whole ticks Advance
	// has consumed since start.
	cur    int64
	slots  []wheelSlot
	timers int
	free   *wheelNode

	running bool
	done    chan struct{}
	wg      sync.WaitGroup
}

// wheelSlot anchors one bucket's doubly-linked node list.
type wheelSlot struct {
	head *wheelNode
}

// wheelNode is one scheduled timer. Nodes are recycled through the wheel's
// freelist; gen invalidates stale WheelTimer handles to recycled nodes.
type wheelNode struct {
	prev, next *wheelNode
	slot       int // -1 when detached
	when       int64
	period     int64 // recurring interval in ticks; 0 = one-shot
	gen        uint64
	f          func()
}

// WheelTimer is a handle to one scheduled timer. The zero value is inert:
// Stop on it reports false.
type WheelTimer struct {
	w   *Wheel
	n   *wheelNode
	gen uint64
}

// NewWheel builds a wheel with the given tick width and slot count (rounded
// up to a power of two; values <= 0 select defaults). The wheel does not
// advance until Advance or Start is called; time is measured from the
// moment of construction.
func NewWheel(tick time.Duration, slots int) *Wheel {
	if tick <= 0 {
		tick = 2 * time.Millisecond
	}
	if slots <= 0 {
		slots = 512
	}
	n := 1
	for n < slots {
		n <<= 1
	}
	return &Wheel{
		tick:  tick,
		mask:  n - 1,
		start: time.Now(),
		slots: make([]wheelSlot, n),
	}
}

// Tick returns the wheel's bucket width — the scheduling granularity. A
// timer for duration d fires between d and d+Tick after scheduling (plus
// however late the driver calls Advance).
func (w *Wheel) Tick() time.Duration { return w.tick }

// Len reports the number of scheduled timers (wheel occupancy).
func (w *Wheel) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.timers
}

// AfterFunc schedules f to run once after d. It never fires early: the
// deadline rounds up to the next tick boundary.
func (w *Wheel) AfterFunc(d time.Duration, f func()) WheelTimer {
	return w.schedule(d, 0, f)
}

// Every schedules f to run repeatedly with period d (rounded up to at
// least one tick) until its timer is stopped.
func (w *Wheel) Every(d time.Duration, f func()) WheelTimer {
	p := w.ticksFor(d)
	return w.schedule(d, p, f)
}

// ticksFor converts a duration to a whole tick count, at least 1.
func (w *Wheel) ticksFor(d time.Duration) int64 {
	t := int64((d + w.tick - 1) / w.tick)
	if t < 1 {
		t = 1
	}
	return t
}

// schedule enqueues a node; period 0 means one-shot.
func (w *Wheel) schedule(d time.Duration, period int64, f func()) WheelTimer {
	dt := w.ticksFor(d)
	w.mu.Lock()
	n := w.free
	if n != nil {
		w.free = n.next
		n.next = nil
	} else {
		n = &wheelNode{}
	}
	n.when = w.cur + dt
	n.period = period
	n.f = f
	w.link(n)
	w.timers++
	t := WheelTimer{w: w, n: n, gen: n.gen}
	w.mu.Unlock()
	return t
}

// link places a node in the slot its deadline hashes to. Caller holds w.mu.
func (w *Wheel) link(n *wheelNode) {
	s := &w.slots[int(n.when)&w.mask]
	n.slot = int(n.when) & w.mask
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
}

// unlink detaches a node from its slot. Caller holds w.mu.
func (w *Wheel) unlink(n *wheelNode) {
	s := &w.slots[n.slot]
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	}
	n.prev, n.next = nil, nil
	n.slot = -1
}

// recycle invalidates a detached node and returns it to the freelist.
// Caller holds w.mu.
func (w *Wheel) recycle(n *wheelNode) {
	n.gen++
	n.f = nil
	n.next = w.free
	n.prev = nil
	w.free = n
}

// Stop cancels the timer, reporting whether it was still pending. Stopping
// a fired, stopped, or zero timer reports false. Stop does not wait for a
// concurrently running callback to return.
func (t WheelTimer) Stop() bool {
	if t.w == nil {
		return false
	}
	t.w.mu.Lock()
	defer t.w.mu.Unlock()
	if t.n.gen != t.gen || t.n.slot < 0 {
		return false
	}
	t.w.unlink(t.n)
	t.w.recycle(t.n)
	t.w.timers--
	return true
}

// Advance moves the wheel forward to now, firing every timer whose
// deadline has passed, in deadline order (insertion order within one tick
// bucket is reversed to restore FIFO). It returns the number of callbacks
// run. Callbacks execute on the calling goroutine without the wheel lock.
func (w *Wheel) Advance(now time.Time) int {
	target := int64(now.Sub(w.start) / w.tick)
	fired := 0
	for {
		w.mu.Lock()
		if w.cur >= target {
			w.mu.Unlock()
			return fired
		}
		w.cur++
		// Collect this tick's due nodes. The slot list is LIFO; reverse
		// while collecting so equal-deadline timers fire in the order they
		// were scheduled.
		var due *wheelNode
		n := w.slots[w.cur&int64(w.mask)].head
		for n != nil {
			next := n.next
			if n.when <= w.cur {
				w.unlink(n)
				n.next = due
				due = n
			}
			n = next
		}
		type firing struct {
			f func()
			t WheelTimer
		}
		var run []firing
		for n := due; n != nil; {
			next := n.next
			n.next = nil
			if n.period > 0 {
				n.when = w.cur + n.period
				w.link(n)
				run = append(run, firing{f: n.f, t: WheelTimer{w: w, n: n, gen: n.gen}})
			} else {
				run = append(run, firing{f: n.f})
				w.recycle(n)
				w.timers--
			}
			n = next
		}
		w.mu.Unlock()
		for _, r := range run {
			// A recurring timer stopped between collection and firing must
			// not run a final time: its callback's state may already be
			// torn down.
			if r.t.w != nil {
				w.mu.Lock()
				stopped := r.t.n.gen != r.t.gen
				w.mu.Unlock()
				if stopped {
					continue
				}
			}
			r.f()
			fired++
		}
	}
}

// Start spawns the driver goroutine, which calls Advance on every tick of
// a wall-clock ticker. Idempotent; Close stops it.
func (w *Wheel) Start() {
	w.mu.Lock()
	if w.running {
		w.mu.Unlock()
		return
	}
	w.running = true
	w.done = make(chan struct{})
	done := w.done
	w.mu.Unlock()
	w.wg.Add(1)
	go func() {
		defer w.wg.Done()
		t := time.NewTicker(w.tick)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				w.Advance(now)
			case <-done:
				return
			}
		}
	}()
}

// Close stops the driver goroutine, if any. Scheduled timers remain and
// fire if the wheel is advanced again.
func (w *Wheel) Close() {
	w.mu.Lock()
	if !w.running {
		w.mu.Unlock()
		return
	}
	w.running = false
	done := w.done
	w.mu.Unlock()
	close(done)
	w.wg.Wait()
}

// sharedWheel is the process-wide default wheel, started on first use.
// Sharing one wheel coalesces the retransmit and timeout bookkeeping of
// every endpoint in the process onto a single sweep goroutine — in a
// simulated thousand-site cluster, one driver instead of a thousand
// tickers.
var sharedWheel struct {
	once sync.Once
	w    *Wheel
}

// DefaultWheel returns the shared process-wide wheel, starting its driver
// on first call. It is never closed.
func DefaultWheel() *Wheel {
	sharedWheel.once.Do(func() {
		sharedWheel.w = NewWheel(2*time.Millisecond, 512)
		sharedWheel.w.Start()
	})
	return sharedWheel.w
}
